#!/bin/sh
# benchmeta.sh TARGET — emit one JSON metadata line for a BENCH_*.json
# record: which benchmark target produced it, from what commit, on what
# hardware, and when. Makefile bench targets append this line so every
# recorded trajectory is reproducible ("what machine was this?") without
# guessing from git history.
#
# The line rides along in the test2json stream as a foreign object;
# consumers filtering on .Action ignore it, and jq 'select(.benchmeta)'
# pulls it back out.
set -eu

target=${1:-unknown}

sha=$(git -C "$(dirname "$0")/.." rev-parse --short HEAD 2>/dev/null || echo unknown)
dirty=$(git -C "$(dirname "$0")/.." status --porcelain 2>/dev/null | head -1)
if [ -n "$dirty" ]; then
	sha="$sha-dirty"
fi

cpu=$(awk -F': ' '/^model name/ {print $2; exit}' /proc/cpuinfo 2>/dev/null || true)
if [ -z "${cpu}" ]; then
	cpu=$(uname -m)
fi

procs=${GOMAXPROCS:-$(nproc 2>/dev/null || echo unknown)}
date=$(date -u +%Y-%m-%dT%H:%M:%SZ)
goversion=$(go version 2>/dev/null | awk '{print $3}' || echo unknown)

# Kernel version and egress fast-path capabilities: syscalls-per-datagram
# numbers depend on whether this kernel offers sendmmsg, UDP GSO
# (UDP_SEGMENT, >= 4.18) and io_uring sendmsg, so the stamp keeps records
# from different kernels from being compared silently. The probe is the
# same one the hub runs at creation (skychaos -egress-caps); if the probe
# binary cannot run, the caps are recorded as unknown rather than guessed.
kernel=$(uname -sr 2>/dev/null || echo unknown)
caps=$(cd "$(dirname "$0")/.." && go run ./cmd/skychaos -egress-caps 2>/dev/null || echo unknown)

printf '{"benchmeta":{"target":"%s","commit":"%s","cpu":"%s","gomaxprocs":"%s","go":"%s","kernel":"%s","egresscaps":"%s","date":"%s"}}\n' \
	"$target" "$sha" "$cpu" "$procs" "$goversion" "$kernel" "$caps" "$date"
