// Metropolitan: the hybrid architecture the paper's introduction reports
// "offered the best performance" — a Zipf-popular library where a hot
// prefix gets dedicated periodic-broadcast (SB) channels with guaranteed
// latency and the cold tail is served by scheduled multicast (MQL
// batching). The hybrid optimizer searches partition candidates by full
// simulation and reports the winner against the two pure designs.
package main

import (
	"fmt"
	"log"

	"skyscraper"
)

func main() {
	const (
		libraryTitles = 100
		serverMbps    = 300.0
		requestRate   = 8.0 // requests per minute
		nRequests     = 2000
		patienceMin   = 45.0 // mean patience before reneging
	)

	cat, err := skyscraper.NewCatalog(libraryTitles, skyscraper.ZipfSkew, 120, 1.5)
	if err != nil {
		log.Fatal(err)
	}
	gen, err := skyscraper.NewGenerator(skyscraper.WorkloadConfig{
		RatePerMin: requestRate, Seed: 7, MeanPatienceMin: patienceMin,
	}, cat)
	if err != nil {
		log.Fatal(err)
	}
	reqs := gen.Take(nRequests)

	fmt.Println("== Hybrid metropolitan VoD (periodic broadcast + scheduled multicast) ==")
	fmt.Printf("library   %d titles, Zipf skew %.3f; top 10 carry %.1f%% of demand\n",
		libraryTitles, skyscraper.ZipfSkew, 100*cat.CumulativeProb(10))
	fmt.Printf("server    %.0f Mbit/s = %d channels; %d requests at %g/min, %g-min mean patience\n\n",
		serverMbps, int(serverMbps/1.5), nRequests, requestRate, patienceMin)

	report := func(label string, rep *skyscraper.HybridReport) {
		fmt.Printf("%-28s served %4d  reneged %3d  wait mean %6.2f  p99 %7.2f  max %7.2f min\n",
			label, rep.Served, rep.Reneged, rep.All.Mean(), rep.All.Quantile(0.99), rep.All.Max())
	}

	// Pure batching: every title queued.
	pure, err := skyscraper.BuildHybrid(serverMbps, cat, 0, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	pureRep, err := skyscraper.EvaluateHybrid(pure, cat, reqs)
	if err != nil {
		log.Fatal(err)
	}
	report("pure batching (MQL)", pureRep)

	// A fixed paper-style split: the top 10 titles broadcast.
	fixed, err := skyscraper.BuildHybrid(serverMbps, cat, 10, 52, 0)
	if err != nil {
		log.Fatal(err)
	}
	fixedRep, err := skyscraper.EvaluateHybrid(fixed, cat, reqs)
	if err != nil {
		log.Fatal(err)
	}
	report("hot-10 broadcast + batching", fixedRep)

	// The optimizer's pick.
	bestPlan, bestRep, err := skyscraper.OptimizeHybrid(serverMbps, cat, reqs, nil)
	if err != nil {
		log.Fatal(err)
	}
	report("optimized "+bestPlan.String(), bestRep)

	if bestPlan.SB != nil {
		fmt.Printf("\nbroadcast side detail: %v\n", bestPlan.SB)
		fmt.Printf("  hard latency bound %.1f min for %.0f%% of demand, regardless of audience size\n",
			bestPlan.SB.AccessLatencyMin(), 100*bestPlan.HotDemandFrac)
	}
	fmt.Println("\nunder overload, periodic broadcast turns unbounded queueing (and reneging) into")
	fmt.Println("a hard per-title wait bound - the paper's case for dedicating channels to videos.")
}
