// Tradeoff: Section 5.4's design exercise — "To determine a good W, we can
// cross-examine Figure 7 and Figure 8". This example sweeps the skyscraper
// width at a fixed bandwidth, prints the latency/storage/disk-bandwidth
// frontier, and inverts the latency formula to pick the cheapest width
// meeting a latency target.
package main

import (
	"fmt"
	"log"

	"skyscraper"
)

func main() {
	const serverMbps = 320
	cfg := skyscraper.DefaultConfig(serverMbps)

	fmt.Printf("== Width trade-off at B = %g Mbit/s (K = %d) ==\n\n", float64(serverMbps), cfg.ChannelsPerVideo())
	fmt.Printf("%10s  %14s  %14s  %12s\n", "W", "latency (min)", "buffer (MByte)", "disk bw")
	var prev int64
	for n := 1; n <= 16; n++ {
		w := skyscraper.SkyscraperSeries.At(n)
		if w == prev { // series elements repeat in pairs
			continue
		}
		prev = w
		sb, err := skyscraper.New(cfg, w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10d  %14.4f  %14.1f  %10.1fb\n",
			w, sb.AccessLatencyMin(), sb.BufferMbit()/8, sb.DiskBandwidthMbps()/cfg.RateMbps)
		if sb.EffectiveWidth() < w {
			fmt.Printf("%10s  (cap no longer binds beyond this point)\n", "")
			break
		}
	}

	// Inverting the formula: the cheapest width for a latency target.
	for _, target := range []float64{3.0, 1.0, 0.5, 0.1} {
		w := skyscraper.WidthForLatency(cfg.ChannelsPerVideo(), cfg.LengthMin, target)
		if w == 0 {
			fmt.Printf("\ntarget %.2f min: unreachable at this K\n", target)
			continue
		}
		sb, err := skyscraper.New(cfg, w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ntarget %.2f min: W = %d gives latency %.4f min at %.1f MByte of client disk",
			target, w, sb.AccessLatencyMin(), sb.BufferMbit()/8)
	}
	fmt.Println()

	// The paper's comparison point: what do the baselines cost here?
	fmt.Println("\nbaselines at the same bandwidth:")
	if pb, err := skyscraper.NewPyramid(cfg, skyscraper.PyramidB); err == nil {
		fmt.Printf("  %-6s latency %.4f min, buffer %.0f MByte, disk bw %.1fb\n",
			pb.Name(), pb.AccessLatencyMin(), pb.BufferMbit()/8, pb.DiskBandwidthMbps()/cfg.RateMbps)
	}
	if pp, err := skyscraper.NewPPB(cfg, skyscraper.PPBB); err == nil {
		fmt.Printf("  %-6s latency %.4f min, buffer %.0f MByte, disk bw %.1fb\n",
			pp.Name(), pp.AccessLatencyMin(), pp.BufferMbit()/8, pp.DiskBandwidthMbps()/cfg.RateMbps)
	}
}
