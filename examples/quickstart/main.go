// Quickstart: build a Skyscraper Broadcasting scheme for the paper's
// workload, inspect its fragmentation and client cost model, plan one
// client's reception, and cross-check the plan against the event
// simulator.
package main

import (
	"fmt"
	"log"

	"skyscraper"
)

func main() {
	// The paper's Section 5 workload: M = 10 videos, D = 120 minutes,
	// b = 1.5 Mbit/s, at a 320 Mbit/s server.
	cfg := skyscraper.DefaultConfig(320)
	sb, err := skyscraper.New(cfg, 52) // width W = 52
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Skyscraper Broadcasting quickstart ==")
	fmt.Printf("scheme            %v\n", sb)
	fmt.Printf("channels/video    K = %d (of %d total server channels)\n", sb.K(), cfg.Channels())
	fmt.Printf("fragment sizes    %v  (units of D1)\n", sb.Sizes())
	fmt.Printf("groups            %v\n", sb.Groups())
	fmt.Printf("access latency    %.4f minutes (= D1)\n", sb.AccessLatencyMin())
	fmt.Printf("client buffer     %.1f Mbit = %.1f MByte\n", sb.BufferMbit(), sb.BufferMbit()/8)
	fmt.Printf("client disk bw    %.2f Mbit/s (3b: two loaders + player)\n", sb.DiskBandwidthMbps())

	// Plan a client that starts playback at unit 7 and verify the plan
	// is jitter-free with a bounded buffer.
	plan, err := sb.PlanSchedule(7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nreception plan (playback start = unit 7):")
	for _, d := range plan.Downloads {
		fmt.Printf("  group %-2d %-12v %-4s loader tunes at unit %d\n",
			d.Group.Index, d.Group, d.Loader, d.StartUnit)
	}
	profile, err := sb.Profile(plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("max buffered      %d units (bound: W-1 = %d)\n", profile.Max(), sb.EffectiveWidth()-1)

	// The event simulator measures the same things independently.
	res, err := skyscraper.Sweep(skyscraper.SimulateSB(sb), 500, 1000, cfg.Videos, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsimulated population (500 clients):")
	fmt.Printf("  wait    %s\n", res.WaitMin.String())
	fmt.Printf("  buffer  %s Mbit\n", res.BufferMbit.String())
	fmt.Printf("  worst wait/buffer match the closed forms: %.4f / %.1f\n",
		sb.AccessLatencyMin(), sb.BufferMbit())
}
