// Livewire: the whole protocol over real sockets. Starts an in-process
// broadcast server (loopback UDP data, TCP control), then runs three
// clients that arrive at different times, each receiving and
// byte-verifying a complete video with the paper's two-loader design.
// Video time is compressed: one D1 unit = 40 ms, so a full "two-hour"
// playback takes under a second.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"skyscraper"
)

func main() {
	// Two videos, five channels each, width 2: fragments 1,2,2,2,2.
	cfg := skyscraper.Config{ServerMbps: 1.5 * 10, Videos: 2, LengthMin: 120, RateMbps: 1.5}
	sb, err := skyscraper.New(cfg, 2)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := skyscraper.NewLiveServer(skyscraper.LiveServerConfig{
		Scheme:       sb,
		Unit:         60 * time.Millisecond,
		BytesPerUnit: 4096,
		ChunkBytes:   1024,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	fmt.Println("== Live Skyscraper Broadcasting over loopback UDP ==")
	fmt.Printf("server     %s, %d videos x %d channels, fragments %v\n",
		srv.Addr(), cfg.Videos, sb.K(), sb.Sizes())
	fmt.Printf("unit       60ms of wall time per D1 (a %d-unit video plays in %v)\n",
		sb.TotalUnits(), time.Duration(sb.TotalUnits())*60*time.Millisecond)

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			time.Sleep(time.Duration(i) * 70 * time.Millisecond) // staggered arrivals
			stats, err := skyscraper.WatchLive(skyscraper.LiveClientConfig{
				ServerAddr:   srv.Addr(),
				Video:        i % 2,
				JoinLeadFrac: 0.9,
				SlackFrac:    1.0,
			})
			if err != nil {
				log.Fatalf("client %d: %v", i, err)
			}
			fmt.Printf("client %d   video %d: %d bytes verified, wait %.2f units, "+
				"max buffer %d bytes, late chunks %d\n",
				i, i%2, stats.Bytes, stats.WaitUnits, stats.MaxBufferBytes, stats.LateChunks)
		}()
	}
	wg.Wait()
	fmt.Println("all clients received jitter-free, byte-exact video from shared broadcasts")
	fmt.Printf("server datagrams sent: %d (independent of audience size)\n", srv.Hub().Sent())
}
