GO ?= go

.PHONY: build test vet race chaos verify bench bench-sweep bench-datapath

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The parallel sweep engine, the bench scheme cache, the fault injector,
# and the lock-free hub/frame-cache data path are concurrent; every PR
# must pass the race detector over them.
race:
	$(GO) test -race ./internal/des ./internal/metrics ./internal/sim ./internal/bench \
		./internal/faults ./internal/mcast

# The chaos gate: the fault-injection and loss-recovery suites — seeded
# drop/duplicate/reorder plans, unicast repair, reconnects, idle reaping,
# graceful degradation — under the race detector.
chaos:
	$(GO) test -race -count=1 -run 'Chaos|Fault|Repair|Recover|Degrad|Reconnect|Idle' \
		./internal/faults ./internal/client ./internal/server

# The PR gate: tier-1 build+test, vet, race-checked concurrency, the
# chaos suite, and the data-path benchmark record.
verify: build vet test race chaos bench-datapath

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# Record the sweep/figure benchmark trajectory (see EXPERIMENTS.md).
bench-sweep:
	$(GO) test -bench 'Sweep|Figures' -run '^$$' -json . > BENCH_sweep.json

# Record the broadcast data-path benchmarks — per-chunk encode (seed vs
# cached), word-wise content generation, lock-free hub fan-out — with
# allocation counts (see EXPERIMENTS.md "Data-path throughput").
bench-datapath:
	$(GO) test -bench 'PaceEncode|ContentFill|ContentVerify|HubSend' -benchmem -run '^$$' -json \
		./internal/server ./internal/content ./internal/mcast > BENCH_datapath.json
