GO ?= go

.PHONY: build test vet race verify bench bench-sweep

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The parallel sweep engine and the bench scheme cache are concurrent;
# every PR must pass the race detector over them.
race:
	$(GO) test -race ./internal/des ./internal/metrics ./internal/sim ./internal/bench

# The PR gate: tier-1 build+test, vet, and race-checked concurrency.
verify: build vet test race

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# Record the sweep/figure benchmark trajectory (see EXPERIMENTS.md).
bench-sweep:
	$(GO) test -bench 'Sweep|Figures' -run '^$$' -json . > BENCH_sweep.json
