GO ?= go

# Stamps every BENCH_*.json with one metadata line (commit, CPU model,
# GOMAXPROCS, go version, UTC date) so recorded trajectories say what
# machine produced them.
BENCHMETA = ./scripts/benchmeta.sh

.PHONY: build test vet race chaos test-portable fuzz scale-smoke vulncheck verify bench bench-sweep bench-datapath bench-overload bench-egress bench-scale bench-ingress

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The parallel sweep engine, the bench scheme cache, the fault injector,
# the lock-free hub/frame-cache data path, and the wire codecs (shared by
# every concurrent sender) are concurrent; every PR must pass the race
# detector over them.
race:
	$(GO) test -race ./internal/des ./internal/metrics ./internal/sim ./internal/bench \
		./internal/faults ./internal/mcast ./internal/viewer ./internal/wire

# The chaos gate: the fault-injection, loss-recovery, and overload suites
# — seeded drop/duplicate/reorder plans, unicast repair, reconnects, idle
# reaping, graceful degradation, repair admission, storm coalescing,
# supervised pacers, drain, member eviction, the batched egress
# engine (wheel/pacer golden equivalence, shard panic recovery,
# vectorized/fallback/GSO identity, io_uring submission + teardown,
# catch-up run staging), the ingress ladder (recvmmsg/GRO/single-read
# delivery identity, kill-switch demotion, GRO super-frame splitting,
# read-error backoff), and the proactive FEC stripe (parity encode,
# stripe reassembly, defeat escalation, burst loss) — under the race
# detector.
chaos:
	$(GO) test -race -count=1 \
		-run 'Chaos|Fault|Repair|Recover|Degrad|Reconnect|Idle|Overload|Storm|Drain|PacerPanic|Evict|Busy|Bye|Jitter|Egress|Wheel|Batch|Golden|Cohort|Mux|Nack|GSO|Uring|Catchup|Fec|Parity|Stripe|Recv|Gro|GRO|Ingress' \
		./internal/faults ./internal/client ./internal/server ./internal/mcast ./internal/viewer

# The portable-fallback pin: the whole egress ladder collapsed to plain
# per-datagram writes (no sendmmsg, no GSO) and the ingress ladder to
# plain single-datagram reads (no recvmmsg, no GRO) must still pass the
# mcast suite, proving the fast paths are accelerations of — not
# departures from — the portable semantics every non-Linux build runs.
test-portable:
	SKYSCRAPER_NO_GSO=1 SKYSCRAPER_NO_SENDMMSG=1 \
		SKYSCRAPER_NO_RECVMMSG=1 SKYSCRAPER_NO_GRO=1 \
		$(GO) test -count=1 ./internal/mcast

# Ten seconds of coverage-guided fuzzing per wire decoder (frame and
# control planes): malformed input must error, never panic, and every
# accepted message must survive an encode/decode round trip.
fuzz:
	$(GO) test ./internal/wire -fuzz 'FuzzChunkDecode$$' -fuzztime 10s -run '^$$'
	$(GO) test ./internal/wire -fuzz 'FuzzControlDecode$$' -fuzztime 10s -run '^$$'

# Known-vulnerability scan, skipped quietly where the tool is not
# installed (the repo adds no dependencies, so this guards the stdlib).
vulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "vulncheck: govulncheck not installed; skipping"; \
	fi

# The cohort-repair smoke gate: a fast faulted capacity sweep that fails
# unless every session survives 2% loss undegraded AND unicast repair
# round trips stay under half the per-viewer recovery baseline
# (drop x chunks/session x viewers) — the NACK plane keeping repair
# work O(cohorts), asserted on every verify.
scale-smoke:
	$(GO) run ./cmd/skychaos -scale -viewers 200 -fault-viewers 200,800 \
		-fault-drop 0.02 -unit 50ms -procs 2 -assert-cohort-repair \
		-out /tmp/BENCH_scale_smoke.json

# The PR gate: tier-1 build+test, vet, race-checked concurrency, the
# chaos suite, the portable-fallback pin, fuzzers, the cohort-repair
# smoke sweep, vulnerability scan, and the data-path benchmark record.
verify: build vet test race chaos test-portable fuzz scale-smoke vulncheck bench-datapath

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# Record the sweep/figure benchmark trajectory (see EXPERIMENTS.md).
bench-sweep:
	$(GO) test -bench 'Sweep|Figures' -run '^$$' -json . > BENCH_sweep.json
	$(BENCHMETA) bench-sweep >> BENCH_sweep.json

# Record the broadcast data-path benchmarks — per-chunk encode (seed vs
# cached), word-wise content generation, lock-free hub fan-out — with
# allocation counts (see EXPERIMENTS.md "Data-path throughput").
bench-datapath:
	$(GO) test -bench 'PaceEncode|ContentFill|ContentVerify|HubSend' -benchmem -run '^$$' -json \
		./internal/server ./internal/content ./internal/mcast > BENCH_datapath.json
	$(BENCHMETA) bench-datapath >> BENCH_datapath.json

# Record the overload curve: a fixed repair budget against 1x..3x demand
# (see EXPERIMENTS.md "Overload behavior").
bench-overload:
	$(GO) run ./cmd/skychaos -overload -drops 0.05 -multipliers 1,2,3 -out BENCH_overload.json
	$(BENCHMETA) bench-overload >> BENCH_overload.json

# Record the audience-capacity curves: the lossless base sweep holds
# 1k/10k/100k emulated sessions (two emulator processes, real loopback
# sockets) against one server and records viewers vs {start-latency
# quantiles, repair load, busy rate, degraded sessions, server CPU};
# the faulted contrast sweep replays 500/2k/8k viewers under 2% drop on
# its own server and records the cohort repair plane's ledger (NACKs,
# suppressed windows, multicast heals, FEC stripe heals) next to the
# unicast round trips it replaced. The G=4 parity stripe is on, so the
# record shows the proactive rung absorbing scattered loss before the
# reactive ladder spends any control traffic (see EXPERIMENTS.md
# "Audience capacity").
bench-scale:
	$(GO) run ./cmd/skychaos -scale -viewers 1000,10000,100000 -procs 2 \
		-fault-drop 0.02 -fault-viewers 500,2000,8000 \
		-fec-group 4 -unit 200ms -assert-cohort-repair -out BENCH_scale.json
	$(BENCHMETA) bench-scale >> BENCH_scale.json

# Record the batched egress benchmarks: vectorized vs fallback fan-out
# at 1/8/64 members, GSO super-frames and io_uring submission over the
# same fan-out, the timer wheel's dispatch cycle at 2..2100 channels,
# and padded vs unpadded counter contention (see EXPERIMENTS.md
# "Egress engine").
bench-egress:
	$(GO) test -bench 'EgressFanout|EgressSuperframe|EgressUring|WheelDispatch|CounterParallel' -benchmem -run '^$$' -json \
		./internal/mcast ./internal/server ./internal/metrics > BENCH_egress.json
	$(BENCHMETA) bench-egress >> BENCH_egress.json

# Record the ingress-ladder benchmarks: the shared receiver draining
# 1/8/64-datagram bursts through each rung (single-read, recvmmsg,
# recvmmsg+GRO), reporting datagrams/s, the achieved
# datagrams-per-read-syscall batching factor, GRO segments recovered per
# op, and allocation counts; then the 8k-viewer faulted capacity sweep
# twice — once with the ingress ladder pinned off (the "before"), once
# with it on — so the record shows the ladder's effect on a real
# audience, not just a microbenchmark (see EXPERIMENTS.md "Ingress
# ladder").
bench-ingress:
	$(GO) test -bench 'SharedReceiverDrain' -benchmem -run '^$$' -json \
		./internal/mcast > BENCH_ingress.json
	SKYSCRAPER_NO_RECVMMSG=1 SKYSCRAPER_NO_GRO=1 \
		$(GO) run ./cmd/skychaos -scale -viewers 1000 -procs 2 \
		-fault-drop 0.02 -fault-viewers 8000 -unit 100ms \
		-out /tmp/BENCH_ingress_scale_before.json
	$(GO) run ./cmd/skychaos -scale -viewers 1000 -procs 2 \
		-fault-drop 0.02 -fault-viewers 8000 -unit 100ms \
		-out /tmp/BENCH_ingress_scale_after.json
	@echo '{"Section":"ingress_scale_before","LadderOff":true}' >> BENCH_ingress.json
	@cat /tmp/BENCH_ingress_scale_before.json >> BENCH_ingress.json
	@echo '{"Section":"ingress_scale_after","LadderOff":false}' >> BENCH_ingress.json
	@cat /tmp/BENCH_ingress_scale_after.json >> BENCH_ingress.json
	$(BENCHMETA) bench-ingress >> BENCH_ingress.json
