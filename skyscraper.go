// Package skyscraper is a complete implementation of Skyscraper
// Broadcasting (Hua & Sheu, SIGCOMM 1997), a periodic-broadcast scheme for
// metropolitan video-on-demand, together with the baselines the paper
// compares against (Pyramid Broadcasting and Permutation-Based Pyramid
// Broadcasting), a plain staggered-broadcast baseline, a scheduled-
// multicast batching server for unpopular videos, an event-driven
// simulator that cross-validates every closed form in the paper, and a
// live loopback-UDP broadcast server and client.
//
// The quickest way in:
//
//	cfg := skyscraper.DefaultConfig(320)     // B = 320 Mbit/s, M = 10, D = 120 min, b = 1.5 Mbit/s
//	sb, err := skyscraper.New(cfg, 52)       // width W = 52
//	...
//	fmt.Println(sb.AccessLatencyMin())       // worst wait, minutes
//	fmt.Println(sb.BufferMbit())             // client disk space, Mbit
//	fmt.Println(sb.DiskBandwidthMbps())      // client disk bandwidth, Mbit/s
//
// See the examples directory for runnable programs and cmd/skyfigs for the
// paper's tables and figures.
package skyscraper

import (
	"skyscraper/internal/batch"
	"skyscraper/internal/catalog"
	"skyscraper/internal/client"
	"skyscraper/internal/core"
	"skyscraper/internal/hybrid"
	"skyscraper/internal/ppb"
	"skyscraper/internal/pyramid"
	"skyscraper/internal/series"
	"skyscraper/internal/server"
	"skyscraper/internal/sim"
	"skyscraper/internal/staggered"
	"skyscraper/internal/vod"
	"skyscraper/internal/workload"
)

// Config describes a VoD deployment: server bandwidth B (Mbit/s), video
// count M, video length D (minutes) and display rate b (Mbit/s).
type Config = vod.Config

// Performer is the three-metric surface every scheme exposes (the paper's
// Table 1): access latency, client buffer space, client disk bandwidth.
type Performer = vod.Performer

// ErrInfeasible is wrapped by scheme constructors whose continuity
// constraints cannot be met at the given bandwidth.
var ErrInfeasible = vod.ErrInfeasible

// DefaultConfig returns the paper's Section 5 workload (M = 10 videos of
// 120 minutes at 1.5 Mbit/s) with the given server bandwidth.
func DefaultConfig(serverMbps float64) Config { return vod.DefaultConfig(serverMbps) }

// Scheme is an instantiated Skyscraper Broadcasting configuration — the
// paper's primary contribution. It exposes the analytic model
// (AccessLatencyMin, BufferMbit, DiskBandwidthMbps), the fragmentation
// (Sizes, Groups), and the exact client scheduler (PlanSchedule, Profile,
// WorstCaseBuffer).
type Scheme = core.Scheme

// Schedule is a client's deterministic reception plan; Download one
// tuned transmission group within it.
type (
	Schedule = core.Schedule
	Download = core.Download
)

// Series is a broadcast series: the integer sequence of relative fragment
// sizes. SkyscraperSeries is the paper's; a Scheme may be built over any
// series whose transmission groups alternate parity.
type Series = series.Series

// SkyscraperSeries is the paper's broadcast series 1, 2, 2, 5, 5, 12, 12,
// 25, 25, 52, 52, ...
var SkyscraperSeries Series = series.Skyscraper{}

// New builds the SB scheme for cfg with width W (0 = uncapped).
func New(cfg Config, width int64) (*Scheme, error) { return core.New(cfg, width) }

// NewWithSeries builds an SB-style scheme over a custom broadcast series.
func NewWithSeries(cfg Config, s Series, width int64) (*Scheme, error) {
	return core.NewWithSeries(cfg, s, width)
}

// WidthForLatency returns the smallest width achieving the target access
// latency (minutes) with K channels for a D-minute video, or 0 if
// unreachable — the inversion of the paper's Section 3.2 formula.
func WidthForLatency(k int, lengthMin, targetMin float64) int64 {
	return series.WidthForLatency(series.Skyscraper{}, k, lengthMin, targetMin)
}

// Pyramid Broadcasting (PB) baseline, with its two parameter methods.
type (
	// PyramidScheme is the PB baseline.
	PyramidScheme = pyramid.Scheme
	// PyramidMethod selects PB:a or PB:b.
	PyramidMethod = pyramid.Method
)

// PB parameter methods.
const (
	PyramidA = pyramid.MethodA
	PyramidB = pyramid.MethodB
)

// NewPyramid builds the PB baseline.
func NewPyramid(cfg Config, m PyramidMethod) (*PyramidScheme, error) { return pyramid.New(cfg, m) }

// Permutation-Based Pyramid Broadcasting (PPB) baseline.
type (
	// PPBScheme is the PPB baseline.
	PPBScheme = ppb.Scheme
	// PPBMethod selects PPB:a or PPB:b.
	PPBMethod = ppb.Method
)

// PPB parameter methods.
const (
	PPBA = ppb.MethodA
	PPBB = ppb.MethodB
)

// NewPPB builds the PPB baseline.
func NewPPB(cfg Config, m PPBMethod) (*PPBScheme, error) { return ppb.New(cfg, m) }

// StaggeredScheme is the plain periodic-broadcast baseline.
type StaggeredScheme = staggered.Scheme

// NewStaggered builds the staggered baseline.
func NewStaggered(cfg Config) (*StaggeredScheme, error) { return staggered.New(cfg) }

// Simulation: event-driven clients measuring what the closed forms
// predict.
type (
	// ClientSim simulates single-client receptions for one scheme.
	ClientSim = sim.ClientSim
	// ClientResult is one simulated reception's measurements.
	ClientResult = sim.ClientResult
	// SweepResult aggregates a simulated client population.
	SweepResult = sim.SweepResult
)

// SimulateSB, SimulatePyramid, SimulatePPB and SimulateStaggered wrap a
// scheme for event-driven simulation.
func SimulateSB(s *Scheme) ClientSim                 { return sim.NewSB(s) }
func SimulatePyramid(s *PyramidScheme) ClientSim     { return sim.NewPB(s) }
func SimulatePPB(s *PPBScheme) ClientSim             { return sim.NewPPB(s) }
func SimulateStaggered(s *StaggeredScheme) ClientSim { return sim.NewStaggered(s) }

// Sweep simulates n clients with uniform arrivals over windowMin minutes.
func Sweep(cs ClientSim, n int, windowMin float64, videos int, seed uint64) (*SweepResult, error) {
	return sim.Sweep(cs, n, windowMin, videos, seed)
}

// Catalog and workload: Zipf-popular video libraries and Poisson request
// streams.
type (
	// Catalog is a popularity-ranked video library.
	Catalog = catalog.Catalog
	// Video is one catalog title.
	Video = catalog.Video
	// Request is one client demand.
	Request = workload.Request
	// WorkloadConfig parameterizes request generation.
	WorkloadConfig = workload.Config
	// Generator produces request streams.
	Generator = workload.Generator
)

// ZipfSkew is the movie-popularity skew factor the paper cites (0.271).
const ZipfSkew = catalog.DefaultSkew

// NewCatalog builds an n-title catalog with Zipf skew theta.
func NewCatalog(n int, theta, lengthMin, rateMbps float64) (*Catalog, error) {
	return catalog.New(n, theta, lengthMin, rateMbps)
}

// NewGenerator builds a Poisson/Zipf request generator.
func NewGenerator(cfg WorkloadConfig, cat *Catalog) (*Generator, error) {
	return workload.NewGenerator(cfg, cat)
}

// Scheduled multicast (batching) for the unpopular tail.
type (
	// BatchPolicy selects which queue a freed channel serves.
	BatchPolicy = batch.Policy
	// BatchConfig parameterizes the batching server.
	BatchConfig = batch.ServerConfig
	// BatchStats reports a batching run.
	BatchStats = batch.Stats
)

// Batching policies.
var (
	FCFS BatchPolicy = batch.FCFS{}
	MQL  BatchPolicy = batch.MQL{}
	MFQL BatchPolicy = batch.MFQL{}
)

// RunBatch simulates the scheduled-multicast server over a request
// sequence.
func RunBatch(cfg BatchConfig, p BatchPolicy, reqs []Request) (*BatchStats, error) {
	return batch.Run(cfg, p, reqs)
}

// Live demo: a real broadcast server and client over loopback UDP.
type (
	// LiveServerConfig parameterizes the live server.
	LiveServerConfig = server.Config
	// LiveServer broadcasts fragments over UDP.
	LiveServer = server.Server
	// LiveClientConfig parameterizes a viewing session.
	LiveClientConfig = client.Config
	// LiveStats reports a completed session.
	LiveStats = client.Stats
)

// NewLiveServer validates the configuration and prepares a live server;
// call Start on the result.
func NewLiveServer(cfg LiveServerConfig) (*LiveServer, error) { return server.New(cfg) }

// WatchLive runs one full live viewing session against a running server.
func WatchLive(cfg LiveClientConfig) (*LiveStats, error) { return client.Watch(cfg) }

// Hybrid architecture: SB broadcast for the hot set plus scheduled
// multicast for the tail (the combination the paper's introduction reports
// performs best).
type (
	// HybridPlan is one hot/cold channel partition.
	HybridPlan = hybrid.Plan
	// HybridReport is a plan's measured performance over a request
	// stream.
	HybridReport = hybrid.Report
)

// BuildHybrid partitions serverMbps between an SB hot set of hotTitles
// (given hotChannels of budget; 0 sizes it by demand share) and an MQL
// batching tail.
func BuildHybrid(serverMbps float64, cat *Catalog, hotTitles int, width int64, hotChannels int) (*HybridPlan, error) {
	return hybrid.Build(serverMbps, cat, hotTitles, width, hotChannels)
}

// EvaluateHybrid plays a request stream against a plan.
func EvaluateHybrid(plan *HybridPlan, cat *Catalog, reqs []Request) (*HybridReport, error) {
	return hybrid.Evaluate(plan, cat, reqs)
}

// OptimizeHybrid searches hot-set sizes and widths for the plan
// minimizing mean wait (with reneging penalized) over the request stream.
func OptimizeHybrid(serverMbps float64, cat *Catalog, reqs []Request, widths []int64) (*HybridPlan, *HybridReport, error) {
	return hybrid.Optimize(serverMbps, cat, reqs, widths)
}
