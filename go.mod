module skyscraper

go 1.22
