// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section 5). Each benchmark's reported custom metrics ARE the artifact:
// run with
//
//	go test -bench=. -benchmem
//
// and compare the metric lines against the paper (EXPERIMENTS.md records a
// full paper-vs-measured index). The ns/op numbers additionally document
// how cheap the closed forms and the schedule planner are.
package skyscraper_test

import (
	"runtime"
	"testing"
	"time"

	"skyscraper"
	"skyscraper/internal/bench"
	"skyscraper/internal/core"
	"skyscraper/internal/ppb"
	"skyscraper/internal/pyramid"
	"skyscraper/internal/series"
	"skyscraper/internal/sim"
	"skyscraper/internal/unicast"
	"skyscraper/internal/vod"
)

// BenchmarkTable1Formulas evaluates Table 1's closed forms for all three
// schemes at B = 320 Mbit/s.
func BenchmarkTable1Formulas(b *testing.B) {
	var rows []bench.Table1Row
	for i := 0; i < b.N; i++ {
		rows = bench.Table1(320)
	}
	for _, r := range rows {
		if r.Scheme == "SB" {
			b.ReportMetric(r.LatencyMin, "SB-latency-min")
			b.ReportMetric(vod.MbitToMByte(r.BufferMbit), "SB-buffer-MB")
		}
		if r.Scheme == "PB" {
			b.ReportMetric(vod.MbitToMByte(r.BufferMbit), "PB-buffer-MB")
		}
	}
}

// BenchmarkTable2Parameters determines every scheme's design parameters
// across the whole bandwidth sweep.
func BenchmarkTable2Parameters(b *testing.B) {
	bands := bench.Bandwidths(20)
	var rows []bench.Table2Row
	for i := 0; i < b.N; i++ {
		for _, bb := range bands {
			rows = bench.Table2(bb)
		}
	}
	b.ReportMetric(float64(len(rows)), "schemes-at-600")
}

// benchTransition measures a Figure 1-4 transition: worst-phase buffer in
// units, which the paper's figures derive by hand.
func benchTransition(b *testing.B, width int64, wantUnits int64) {
	sch, err := core.New(vod.DefaultConfig(320), width)
	if err != nil {
		b.Fatal(err)
	}
	var worst bench.TransitionProfile
	for i := 0; i < b.N; i++ {
		_, worst, err = bench.Transitions(sch, 600)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(worst.MaxUnits), "worst-buffer-units")
	b.ReportMetric(float64(wantUnits), "paper-bound-units")
}

// BenchmarkFigure1Transition1: (1) -> (2,2); worst case buffers one unit
// (Figure 1b), best case none (Figure 1a).
func BenchmarkFigure1Transition1(b *testing.B) { benchTransition(b, 2, 1) }

// BenchmarkFigure2Transition2: (2,2) -> (5,5); the paper's bound is
// 60*b*D1*(W-1) with W = 5: four units.
func BenchmarkFigure2Transition2(b *testing.B) { benchTransition(b, 5, 4) }

// BenchmarkFigure3Transition3 and BenchmarkFigure4Transition3: the odd
// transition (5,5) -> (12,12); bound W-1 = 11 units.
func BenchmarkFigure3Transition3(b *testing.B) { benchTransition(b, 12, 11) }

// BenchmarkFigure4Transition3 covers the same transition family at the
// other playback-start parity (Figure 4); the worst case over phases is
// identical.
func BenchmarkFigure4Transition3(b *testing.B) { benchTransition(b, 12, 11) }

// BenchmarkFigure5aParameters regenerates Figure 5(a)'s K and P curves.
func BenchmarkFigure5aParameters(b *testing.B) {
	bands := bench.Bandwidths(20)
	var curves []bench.Curve
	for i := 0; i < b.N; i++ {
		curves = bench.Figure5a(bands)
	}
	last := func(name string) float64 {
		for _, c := range curves {
			if c.Name == name {
				return c.Y[len(c.Y)-1]
			}
		}
		return -1
	}
	b.ReportMetric(last("SB (K)"), "SB-K-at-600")
	b.ReportMetric(last("PB:b (K)"), "PBb-K-at-600")
	b.ReportMetric(last("PPB:a (K)"), "PPBa-K-at-600")
}

// BenchmarkFigure5bAlpha regenerates Figure 5(b)'s alpha curves.
func BenchmarkFigure5bAlpha(b *testing.B) {
	bands := bench.Bandwidths(20)
	var curves []bench.Curve
	for i := 0; i < b.N; i++ {
		curves = bench.Figure5b(bands)
	}
	for _, c := range curves {
		if c.Name == "PB:b (alpha)" {
			b.ReportMetric(c.Y[len(c.Y)-1], "PBb-alpha-at-600")
		}
	}
}

// figureMetric reports one curve's value at one bandwidth for a Figure 6-8
// benchmark.
func figureMetric(b *testing.B, curves []bench.Curve, name string, x float64, metricName string) {
	b.Helper()
	for _, c := range curves {
		if c.Name != name {
			continue
		}
		for i := range c.X {
			if c.X[i] == x {
				b.ReportMetric(c.Y[i], metricName)
				return
			}
		}
	}
	b.Fatalf("curve %q at %v not found", name, x)
}

// BenchmarkFigure6DiskBandwidth regenerates Figure 6: client disk
// bandwidth (MByte/s). Paper shape: PB near 50x display (~10 MB/s), SB
// capped at 3b, PPB comparable to SB.
func BenchmarkFigure6DiskBandwidth(b *testing.B) {
	bands := bench.Bandwidths(20)
	var curves []bench.Curve
	for i := 0; i < b.N; i++ {
		curves = bench.Figure6(bands)
	}
	figureMetric(b, curves, "PB:b", 600, "PBb-MBps-at-600")
	figureMetric(b, curves, "SB:W=52", 600, "SBw52-MBps-at-600")
	figureMetric(b, curves, "PPB:b", 600, "PPBb-MBps-at-600")
}

// BenchmarkFigure7AccessLatency regenerates Figure 7: access latency
// (minutes). Paper shape: PB excellent; PPB needs B >= 300 for < 0.5 min;
// SB tunable via W.
func BenchmarkFigure7AccessLatency(b *testing.B) {
	bands := bench.Bandwidths(20)
	var curves []bench.Curve
	for i := 0; i < b.N; i++ {
		curves = bench.Figure7(bands)
	}
	figureMetric(b, curves, "SB:W=2", 320, "SBw2-min-at-320")
	figureMetric(b, curves, "SB:W=52", 600, "SBw52-min-at-600")
	figureMetric(b, curves, "PPB:b", 320, "PPBb-min-at-320")
	figureMetric(b, curves, "PB:b", 320, "PBb-min-at-320")
}

// BenchmarkFigure8Storage regenerates Figure 8: client storage (MByte).
// Paper shape: PB > 1 GByte, PPB ~150-250 MB, SB:W=2 ~33 MB at 320.
func BenchmarkFigure8Storage(b *testing.B) {
	bands := bench.Bandwidths(20)
	var curves []bench.Curve
	for i := 0; i < b.N; i++ {
		curves = bench.Figure8(bands)
	}
	figureMetric(b, curves, "SB:W=2", 320, "SBw2-MB-at-320")
	figureMetric(b, curves, "SB:W=52", 600, "SBw52-MB-at-600")
	figureMetric(b, curves, "PPB:b", 320, "PPBb-MB-at-320")
	figureMetric(b, curves, "PB:b", 600, "PBb-MB-at-600")
}

// sweepBenchClients sizes the Sweep benchmarks: big enough to span many
// shards, small enough to iterate.
const sweepBenchClients = 2000

func benchSweep(b *testing.B, workers int) {
	b.Helper()
	sch, err := core.New(vod.DefaultConfig(320), 52)
	if err != nil {
		b.Fatal(err)
	}
	cs := sim.NewSB(sch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Sweep(cs, sweepBenchClients, 1000, 10, 42, sim.Workers(workers)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(sweepBenchClients)*float64(b.N)/b.Elapsed().Seconds(), "clients/sec")
}

// BenchmarkSweepSerial is the one-worker baseline of the population sweep.
func BenchmarkSweepSerial(b *testing.B) { benchSweep(b, 1) }

// BenchmarkSweepParallel runs the sweep on the default worker pool
// (GOMAXPROCS) and reports the measured speedup over a serial run of the
// same population — the determinism contract makes the two sweeps
// bit-identical, so the speedup is free.
func BenchmarkSweepParallel(b *testing.B) {
	sch, err := core.New(vod.DefaultConfig(320), 52)
	if err != nil {
		b.Fatal(err)
	}
	cs := sim.NewSB(sch)
	serialStart := time.Now()
	if _, err := sim.Sweep(cs, sweepBenchClients, 1000, 10, 42, sim.Workers(1)); err != nil {
		b.Fatal(err)
	}
	serial := time.Since(serialStart)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Sweep(cs, sweepBenchClients, 1000, 10, 42); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(sweepBenchClients)*float64(b.N)/b.Elapsed().Seconds(), "clients/sec")
	perOp := b.Elapsed().Seconds() / float64(b.N)
	if perOp > 0 {
		b.ReportMetric(serial.Seconds()/perOp, "speedup-vs-serial")
	}
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "workers")
}

// regenerateSweepFigures rebuilds every bandwidth-sweep figure (5a-8).
func regenerateSweepFigures(bands []float64) {
	bench.Figure5a(bands)
	bench.Figure5b(bands)
	bench.Figure6(bands)
	bench.Figure7(bands)
	bench.Figure8(bands)
}

// BenchmarkFiguresCold regenerates Figures 5-8 with a cold scheme cache
// each iteration: every curve's points re-materialize their schemes.
func BenchmarkFiguresCold(b *testing.B) {
	bands := bench.Bandwidths(20)
	before := bench.CacheBuilds()
	for i := 0; i < b.N; i++ {
		bench.ResetCache()
		regenerateSweepFigures(bands)
	}
	b.ReportMetric(float64(bench.CacheBuilds()-before)/float64(b.N), "constructions/op")
}

// BenchmarkFiguresMemoized regenerates Figures 5-8 against a warm
// sweep-level cache: each bandwidth point's schemes were constructed
// exactly once (constructions-per-point = 1), and regeneration itself
// constructs nothing.
func BenchmarkFiguresMemoized(b *testing.B) {
	bands := bench.Bandwidths(20)
	bench.ResetCache()
	warmStart := bench.CacheBuilds()
	regenerateSweepFigures(bands) // warm the cache
	warmed := bench.CacheBuilds() - warmStart
	if warmed != int64(len(bands)) {
		b.Fatalf("warming built %d schemes for %d points, want one each", warmed, len(bands))
	}
	before := bench.CacheBuilds()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		regenerateSweepFigures(bands)
	}
	b.StopTimer()
	if built := bench.CacheBuilds() - before; built != 0 {
		b.Fatalf("memoized regeneration rebuilt %d schemes", built)
	}
	b.ReportMetric(float64(warmed)/float64(len(bands)), "constructions-per-point")
}

// BenchmarkCrossValidation runs the event simulator against the closed
// forms (the EXPERIMENTS.md validation table).
func BenchmarkCrossValidation(b *testing.B) {
	var rows []bench.CrossRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = bench.CrossValidate([]float64{320}, 60)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Scheme == "SB:W=52" {
			b.ReportMetric(r.MeasuredBufferMB, "SBw52-sim-bufMB")
			b.ReportMetric(r.AnalyticBufferMB, "SBw52-formula-bufMB")
		}
	}
}

// BenchmarkAblationWidth quantifies the design choice DESIGN.md calls out:
// the width knob trades latency (down) for buffer (up) while disk
// bandwidth stays capped at 3b — something neither pyramid scheme offers.
func BenchmarkAblationWidth(b *testing.B) {
	cfg := skyscraper.DefaultConfig(320)
	var latRatio, bufRatio float64
	for i := 0; i < b.N; i++ {
		narrow, err := skyscraper.New(cfg, 2)
		if err != nil {
			b.Fatal(err)
		}
		wide, err := skyscraper.New(cfg, 52)
		if err != nil {
			b.Fatal(err)
		}
		latRatio = narrow.AccessLatencyMin() / wide.AccessLatencyMin()
		bufRatio = wide.BufferMbit() / narrow.BufferMbit()
	}
	b.ReportMetric(latRatio, "latency-gain-W2-to-W52")
	b.ReportMetric(bufRatio, "buffer-cost-W2-to-W52")
}

// BenchmarkAblationSeries compares the paper's series against the
// constant (staggered) series under identical machinery: the skyscraper
// fragmentation converts a linear latency/bandwidth curve into a
// near-exponential one.
func BenchmarkAblationSeries(b *testing.B) {
	cfg := skyscraper.DefaultConfig(320)
	var gain float64
	for i := 0; i < b.N; i++ {
		sky, err := core.NewWithSeries(cfg, series.Skyscraper{}, 52)
		if err != nil {
			b.Fatal(err)
		}
		flat, err := core.NewWithSeries(cfg, series.Constant{}, 0)
		if err != nil {
			b.Fatal(err)
		}
		gain = flat.AccessLatencyMin() / sky.AccessLatencyMin()
	}
	b.ReportMetric(gain, "latency-gain-vs-staggered")
}

// BenchmarkSchedulePlanning measures the client admission path: planning
// a full two-loader reception schedule.
func BenchmarkSchedulePlanning(b *testing.B) {
	sch, err := core.New(vod.DefaultConfig(600), 52)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		plan, err := sch.PlanSchedule(int64(i % 3900))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sch.Profile(plan); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSeriesGeneration measures the broadcast-series recurrence.
func BenchmarkSeriesGeneration(b *testing.B) {
	s := series.Skyscraper{}
	b.ReportAllocs()
	var v int64
	for i := 0; i < b.N; i++ {
		v = s.At(40)
	}
	_ = v
}

// BenchmarkSimSBClient measures one full event-simulated SB reception.
func BenchmarkSimSBClient(b *testing.B) {
	sch, err := core.New(vod.DefaultConfig(320), 52)
	if err != nil {
		b.Fatal(err)
	}
	cs := sim.NewSB(sch)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cs.Client(float64(i%1000)*0.37, i%10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimPBClient measures one full event-simulated PB reception.
func BenchmarkSimPBClient(b *testing.B) {
	sch, err := pyramid.New(vod.DefaultConfig(320), pyramid.MethodB)
	if err != nil {
		b.Fatal(err)
	}
	cs := sim.NewPB(sch)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cs.Client(float64(i%1000)*0.37, i%10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimPPBClient measures one full event-simulated PPB reception,
// including the pause/resume burst schedule.
func BenchmarkSimPPBClient(b *testing.B) {
	sch, err := ppb.New(vod.DefaultConfig(320), ppb.MethodB)
	if err != nil {
		b.Fatal(err)
	}
	cs := sim.NewPPB(sch)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cs.Client(float64(i%1000)*0.37, i%10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationTuningPolicy quantifies the lazy-vs-eager design note
// in DESIGN.md: the worst-case buffer under eager tuning versus the lazy
// policy's exactly-tight bound, at B=320, W=52.
func BenchmarkAblationTuningPolicy(b *testing.B) {
	sch, err := core.New(vod.DefaultConfig(320), 52)
	if err != nil {
		b.Fatal(err)
	}
	period := sch.PhasePeriod()
	stride := period/800 + 1
	var lazyWorst, eagerWorst int64
	for i := 0; i < b.N; i++ {
		lazyWorst, eagerWorst = 0, 0
		for phase := int64(0); phase < period; phase += stride {
			lp, err := sch.PlanSchedule(phase)
			if err != nil {
				b.Fatal(err)
			}
			lbp, err := sch.Profile(lp)
			if err != nil {
				b.Fatal(err)
			}
			if m := lbp.Max(); m > lazyWorst {
				lazyWorst = m
			}
			ep, err := sch.PlanScheduleEager(phase)
			if err != nil {
				b.Fatal(err)
			}
			ebp, err := sch.Profile(ep)
			if err != nil {
				b.Fatal(err)
			}
			if m := ebp.Max(); m > eagerWorst {
				eagerWorst = m
			}
		}
	}
	b.ReportMetric(float64(lazyWorst), "lazy-worst-units")
	b.ReportMetric(float64(eagerWorst), "eager-worst-units")
}

// BenchmarkAblationLoaderCount contrasts the tuner requirements of the
// paper's series (2 loaders at any width) against the doubling series,
// which degenerates to receiving from every channel at once.
func BenchmarkAblationLoaderCount(b *testing.B) {
	sky := series.Groups(series.Values(series.Skyscraper{}, 13, 12))
	dbl := series.Groups(series.Values(series.Doubling{}, 6, 0))
	var skyN, dblN int
	for i := 0; i < b.N; i++ {
		skyN = core.MinLoaders(sky, 120, 8)
		dblN = core.MinLoaders(dbl, 64, 8)
	}
	b.ReportMetric(float64(skyN), "skyscraper-loaders")
	b.ReportMetric(float64(dblN), "doubling-loaders")
}

// BenchmarkMotivationUnicastVsBroadcast reproduces the paper's Section 1
// motivation as numbers: at metropolitan demand a stream-per-viewer server
// refuses most of its audience, while the broadcast server's channel usage
// is a constant of the configuration — independent of viewers.
func BenchmarkMotivationUnicastVsBroadcast(b *testing.B) {
	cat, err := skyscraper.NewCatalog(10, skyscraper.ZipfSkew, 120, 1.5)
	if err != nil {
		b.Fatal(err)
	}
	gen, err := skyscraper.NewGenerator(skyscraper.WorkloadConfig{RatePerMin: 4, Seed: 5}, cat)
	if err != nil {
		b.Fatal(err)
	}
	requests := gen.Take(3000)
	var blocking float64
	for i := 0; i < b.N; i++ {
		st, err := unicast.Run(200, 120, requests) // 300 Mbit/s of unicast channels
		if err != nil {
			b.Fatal(err)
		}
		blocking = st.BlockingProb()
	}
	sb, err := skyscraper.New(skyscraper.DefaultConfig(300), 52)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(blocking, "unicast-blocking-prob")
	b.ReportMetric(float64(sb.ServerChannelsUsed()), "broadcast-channels-any-audience")
}
