// Command skychaos runs an in-process chaos sweep against the live
// broadcast stack: for each configured loss rate it starts a server with a
// deterministic fault plan, watches one full video through the recovering
// client, and tabulates the injected faults against the recovery
// statistics — the jitter-free guarantee, demonstrated under loss.
//
// Usage:
//
//	skychaos -M 1 -K 5 -W 2 -unit 80ms -seed 1 -drops 0.01,0.03,0.05
//	skychaos -no-repair -drops 0.25     # graceful degradation instead
//	skychaos -overload -multipliers 1,2,3 -out BENCH_overload.json
//	skychaos -scale -viewers 1000,10000,100000 -procs 2 -out BENCH_scale.json
//
// The -overload mode sweeps repair demand against a fixed admission
// budget: the server's token bucket is provisioned for one session's
// expected repair bandwidth, then 1x, 2x, 3x... concurrent degradable
// clients offer multiples of it. The resulting delivered/degraded/busy
// curves (written as JSON) show the overload-safe repair plane holding
// its budget while every session still terminates.
//
// The -scale mode records the audience capacity curve: one in-process
// server, then for each viewer count it re-execs itself as -emulate
// child processes whose virtual-viewer multiplexers (internal/viewer)
// hold the audience between them over real loopback sockets. Each row
// tabulates viewers vs start-latency quantiles, repair load, busy rate,
// degraded sessions, and the server's own CPU — the paper's claim that
// server cost is independent of the audience, measured.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"skyscraper/internal/client"
	"skyscraper/internal/core"
	"skyscraper/internal/faults"
	"skyscraper/internal/mcast"
	"skyscraper/internal/server"
	"skyscraper/internal/trace"
	"skyscraper/internal/unicast"
	"skyscraper/internal/vod"
	"skyscraper/internal/wire"
)

func main() {
	var (
		videos   = flag.Int("M", 1, "number of videos to broadcast")
		channels = flag.Int("K", 5, "channels per video")
		width    = flag.Int64("W", 2, "skyscraper width")
		unit     = flag.Duration("unit", 80*time.Millisecond, "wall-clock duration of one D1 unit")
		seed     = flag.Uint64("seed", 1, "fault plan seed (same seed, same injured chunks)")
		drops    = flag.String("drops", "0.01,0.03,0.05", "comma-separated chunk drop rates to sweep")
		dup      = flag.Float64("dup", 0.02, "chunk duplication rate")
		reorder  = flag.Float64("reorder", 0.02, "chunk reorder rate")
		delay    = flag.Float64("delay", 0, "chunk delay rate")
		maxDelay = flag.Duration("max-delay", 5*time.Millisecond, "delay upper bound when -delay > 0")
		fecGroup = flag.Int("fec-group", 0,
			"proactive parity stripe group size G: one parity frame per G data chunks (0 = off)")
		fecMode = flag.String("fec-mode", "",
			"parity stripe code when -fec-group > 0: xor (one erasure per group, the default) or rs (two)")
		faultBurst = flag.String("fault-burst", "",
			"Gilbert–Elliott burst loss as enter,exit,drop (e.g. 0.05,0.35,1); empty disables")
		noRepair = flag.Bool("no-repair", false, "disable the repair path; losses degrade the session instead")
		verbose  = flag.Bool("v", false, "log protocol details")
		overload = flag.Bool("overload", false,
			"run the overload sweep: fixed repair budget vs multiples of expected demand")
		multipliers = flag.String("multipliers", "1,2,3", "demand multipliers (concurrent clients) for -overload")
		out         = flag.String("out", "BENCH_overload.json", "JSON output path for -overload/-scale")
		scale       = flag.Bool("scale", false,
			"run the audience capacity sweep: emulator processes of virtual viewers vs one server")
		emulateMode = flag.Bool("emulate", false,
			"child mode for -scale: run one virtual-viewer mux against -server, print its Result JSON")
		serverAddr = flag.String("server", "", "server control address for -emulate")
		viewers    = flag.String("viewers", "1000,10000,100000",
			"comma-separated audience sizes for -scale (single count for -emulate)")
		procs      = flag.Int("procs", 2, "emulator processes per -scale point")
		spread     = flag.Float64("spread", 4, "admission spread in D1 units for the virtual audience")
		muxWorkers = flag.Int("mux-workers", 0, "repair worker pool per emulator (0 = GOMAXPROCS, capped)")
		recvBatch  = flag.Int("recv-batch", 0,
			"datagrams per receive syscall in each emulator's shared receiver (0 = kernel-probed default, 1 pins the single-read path)")
		faultDrop = flag.Float64("fault-drop", 0.02,
			"drop rate for the faulted contrast sweep in -scale (0 disables it)")
		faultViewers = flag.String("fault-viewers", "500,2000,8000",
			"comma-separated audience sizes for the faulted -scale sweep")
		assertCohort = flag.Bool("assert-cohort-repair", false,
			"fail -scale unless every faulted sweep ends undegraded with unicast repairs under half the per-viewer recovery baseline")
		egressCaps = flag.Bool("egress-caps", false,
			"probe this kernel's egress fast paths (sendmmsg, UDP GSO, io_uring), print one capability line, and exit")
	)
	flag.Parse()
	burst, err := parseBurst(*faultBurst)
	if err != nil {
		fmt.Fprintln(os.Stderr, "skychaos:", err)
		os.Exit(2)
	}
	if *egressCaps {
		if err := printEgressCaps(); err != nil {
			fmt.Fprintln(os.Stderr, "skychaos:", err)
			os.Exit(1)
		}
		return
	}
	if *emulateMode {
		n, err := strconv.Atoi(strings.TrimSpace(*viewers))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "skychaos: -emulate needs a single -viewers count, got %q\n", *viewers)
			os.Exit(2)
		}
		if err := emulate(*serverAddr, n, *videos, *spread, *seed, *muxWorkers, *recvBatch, *noRepair, *verbose); err != nil {
			fmt.Fprintln(os.Stderr, "skychaos:", err)
			os.Exit(1)
		}
		return
	}
	if *scale {
		rate := 0.0
		if rs, err := parseRates(*drops); err == nil && len(rs) == 1 {
			rate = rs[0]
		}
		scaleOut := *out
		if scaleOut == "BENCH_overload.json" {
			scaleOut = "BENCH_scale.json"
		}
		counts, err := parseCounts(*viewers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "skychaos:", err)
			os.Exit(2)
		}
		// The base sweep measures pure fan-out cost at -drops (lossless by
		// default); the faulted contrast sweep puts the cohort repair
		// plane under correlated loss on its own server.
		sweeps := []sweepSpec{{drop: rate, counts: counts}}
		if *faultDrop > 0 {
			fcounts, err := parseCounts(*faultViewers)
			if err != nil {
				fmt.Fprintln(os.Stderr, "skychaos:", err)
				os.Exit(2)
			}
			sweeps = append(sweeps, sweepSpec{drop: *faultDrop, counts: fcounts})
		}
		if err := scaleSweep(*videos, *channels, *width, *unit, *seed, sweeps,
			*procs, *muxWorkers, *recvBatch, *spread, *fecGroup, *fecMode, burst,
			*noRepair, *verbose, *assertCohort, scaleOut); err != nil {
			fmt.Fprintln(os.Stderr, "skychaos:", err)
			os.Exit(1)
		}
		return
	}
	if *overload {
		rate := 0.05
		if rs, err := parseRates(*drops); err == nil && len(rs) == 1 {
			rate = rs[0]
		}
		if err := overloadSweep(*videos, *channels, *width, *unit, rate, *seed, *multipliers, *out); err != nil {
			fmt.Fprintln(os.Stderr, "skychaos:", err)
			os.Exit(1)
		}
		return
	}
	rates, err := parseRates(*drops)
	if err != nil {
		fmt.Fprintln(os.Stderr, "skychaos:", err)
		os.Exit(2)
	}
	failed := false
	fmt.Printf("%-6s %9s %9s %9s %9s %9s %8s %6s %6s %9s %s\n",
		"drop", "injected", "fec-heals", "repaired", "requests", "dups", "defeats", "lost", "late", "bytes", "verdict")
	for _, rate := range rates {
		if err := sweep(*videos, *channels, *width, *unit, rate, *dup, *reorder, *delay, *maxDelay,
			*seed, *fecGroup, *fecMode, burst, *noRepair, *verbose); err != nil {
			fmt.Fprintf(os.Stderr, "skychaos: drop %v: %v\n", rate, err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// burstSpec is a parsed -fault-burst triple: the Gilbert–Elliott chain's
// good→bad entry probability, bad→good exit probability, and the drop
// rate while the chain is bad.
type burstSpec struct {
	set               bool
	enter, exit, drop float64
}

// parseBurst parses "enter,exit,drop"; the empty string disables burst
// loss.
func parseBurst(s string) (burstSpec, error) {
	if strings.TrimSpace(s) == "" {
		return burstSpec{}, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return burstSpec{}, fmt.Errorf("bad -fault-burst %q: want enter,exit,drop", s)
	}
	vals := make([]float64, 3)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return burstSpec{}, fmt.Errorf("bad -fault-burst %q: %v", s, err)
		}
		vals[i] = v
	}
	return burstSpec{set: true, enter: vals[0], exit: vals[1], drop: vals[2]}, nil
}

// applyBurst folds a -fault-burst spec into a fault plan. The injector
// maps frame offsets to chunk positions through ChunkBytes, so the plan
// must carry the chunk geometry the server broadcasts with.
func (b burstSpec) applyBurst(p *faults.Plan, chunkBytes int) {
	if !b.set {
		return
	}
	p.BurstEnter, p.BurstExit, p.BurstDrop = b.enter, b.exit, b.drop
	p.ChunkBytes = chunkBytes
}

// parseRates splits "0.01,0.03" into probabilities.
func parseRates(s string) ([]float64, error) {
	var rates []float64
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("bad drop rate %q: %v", f, err)
		}
		rates = append(rates, v)
	}
	if len(rates) == 0 {
		return nil, fmt.Errorf("no drop rates in %q", s)
	}
	return rates, nil
}

// sweep runs one (server, client) pair at one drop rate and prints a table
// row. A failed session dumps the recovery trace before returning the
// error.
func sweep(videos, channels int, width int64, unit time.Duration,
	drop, dup, reorder, delay float64, maxDelay time.Duration,
	seed uint64, fecGroup int, fecMode string, burst burstSpec,
	noRepair, verbose bool) error {
	cfg := vod.Config{
		ServerMbps: 1.5 * float64(videos*channels),
		Videos:     videos,
		LengthMin:  120,
		RateMbps:   1.5,
	}
	sch, err := core.New(cfg, width)
	if err != nil {
		return err
	}
	tb := trace.New(1024)
	plan := &faults.Plan{
		Seed: seed, Drop: drop, Duplicate: dup, Reorder: reorder,
		Delay: delay, MaxDelay: maxDelay, Trace: tb,
	}
	burst.applyBurst(plan, 1024)
	srv, err := server.New(server.Config{
		Scheme:       sch,
		Unit:         unit,
		BytesPerUnit: 4096,
		ChunkBytes:   1024,
		FecGroup:     fecGroup,
		FecMode:      fecMode,
		Faults:       plan,
	})
	if err != nil {
		return err
	}
	if err := srv.Start(); err != nil {
		return err
	}
	defer srv.Close()

	ccfg := client.Config{
		ServerAddr:    srv.Addr(),
		Video:         0,
		JoinLeadFrac:  0.9,
		SlackFrac:     1.0,
		RepairLagFrac: 0.3,
		DisableRepair: noRepair,
		AllowDegraded: noRepair,
		Trace:         tb,
	}
	if verbose {
		ccfg.Logf = log.Printf
	}
	stats, err := client.Watch(ccfg)
	injected := srv.Injector().Counts()
	if err != nil {
		fmt.Fprintf(os.Stderr, "skychaos: recovery trace for drop %v:\n", drop)
		_, _ = tb.WriteTo(os.Stderr)
		return err
	}
	verdict := "recovered"
	if noRepair {
		verdict = "degraded"
	}
	fmt.Printf("%-6v %9d %9d %9d %9d %9d %8d %6d %6d %9d %s\n",
		drop, injected.Dropped+injected.BurstDropped, stats.FecHeals, stats.RepairedChunks,
		stats.RepairRequests, stats.DuplicateChunks, stats.StripeDefeats,
		stats.LostChunks, stats.LateChunks, stats.Bytes, verdict)
	if fecGroup > 0 {
		mode := fecMode
		if mode == "" {
			mode = wire.FecModeXOR
		}
		fmt.Printf("       parity stripe: G=%d mode=%s, %d parity frames (%d bytes) broadcast; "+
			"%d heals with zero control round trips, %d stripe defeats escalated\n",
			fecGroup, mode, srv.ParityFramesSent(), srv.ParityBytesSent(),
			stats.FecHeals, stats.StripeDefeats)
	}

	// The data-path ledger: what the hub actually put on the wire and how
	// much of it the frame cache served without re-encoding.
	hub := srv.Hub()
	cs := srv.FrameCacheStats()
	hitPct := 0.0
	if lookups := cs.Hits + cs.Misses; lookups > 0 {
		hitPct = 100 * float64(cs.Hits) / float64(lookups)
	}
	fmt.Printf("       data path: %d datagrams (%d bytes) sent, %d send failures; "+
		"frame cache %d hits / %d misses (%.1f%% hit, %d bytes resident)\n",
		hub.Sent(), hub.SentBytes(), hub.SendFailures(),
		cs.Hits, cs.Misses, hitPct, cs.Bytes)

	// The egress ledger: how the engine turned those datagrams into
	// wakeups and kernel sends.
	perSyscall := 0.0
	if sc := hub.SendSyscalls(); sc > 0 {
		perSyscall = float64(hub.Sent()) / float64(sc)
	}
	fmt.Printf("       egress: %s engine, %d shards, %d wakeups, %d batches, "+
		"%d syscalls (%.1f datagrams/syscall, vectorized=%v)\n",
		srv.EgressEngine(), srv.EgressShards(), srv.EgressWakeups(),
		hub.Batches(), hub.SendSyscalls(), perSyscall, hub.Vectorized())
	// The super-frame and io_uring rows of the same ledger: how many of
	// those datagrams left as kernel-split super-frames, and how deep the
	// cross-shard submission ring ran.
	segsPerSF := 0.0
	if sf := hub.Superframes(); sf > 0 {
		segsPerSF = float64(hub.GSOSegments()) / float64(sf)
	}
	sqeDepth := 0.0
	if us := hub.UringSubmits(); us > 0 {
		sqeDepth = float64(hub.UringSQEs()) / float64(us)
	}
	fmt.Printf("       superframes: gso=%v, %d superframes carrying %d segments "+
		"(%.1f segments/superframe, %d fallbacks); uring: %d submits, %d sqes (%.1f sqe depth)\n",
		hub.GSO(), hub.Superframes(), hub.GSOSegments(), segsPerSF,
		hub.GSOFallbacks(), hub.UringSubmits(), hub.UringSQEs(), sqeDepth)

	// Put the repair traffic in the paper's terms: the unicast burden of
	// recovering this loss rate, versus one dedicated stream per viewer.
	chunksPerVideo := int(sch.TotalUnits()) * 4096 / 1024
	if load, err := unicast.RepairLoad(drop, chunksPerVideo); err == nil {
		fmt.Printf("       repair load: %.1f requests/session expected, "+
			"%.1f%% of a dedicated unicast stream (user-centered baseline: 100%%)\n",
			load.RequestsPerSession, 100*load.StreamFrac)
	}
	return nil
}

// printEgressCaps probes the kernel's egress and ingress fast paths the
// same way the hub and shared receiver do at creation — sendmmsg
// availability, the UDP_SEGMENT setsockopt trial, an io_uring setup with
// a sendmsg opcode probe, plus the recvmmsg trial and the UDP_GRO
// setsockopt on the receive side — and prints one machine-readable line.
// scripts/benchmeta.sh stamps it into every BENCH_*.json so numbers from
// different kernels are never compared silently.
func printEgressCaps() error {
	h, err := mcast.NewHub()
	if err != nil {
		return err
	}
	defer h.Close()
	uring := h.EnableUring() == nil
	recvmmsg, gro := false, false
	if rcv, err := mcast.NewSharedReceiver(0, func([]byte) (mcast.Group, bool) {
		return mcast.Group{}, false
	}); err == nil {
		recvmmsg, gro = rcv.RecvBatched(), rcv.GRO()
		rcv.Close()
	}
	fmt.Printf("vectorized=%v gso=%v uring=%v recvmmsg=%v gro=%v\n",
		h.Vectorized(), h.GSO(), uring, recvmmsg, gro)
	return nil
}

// overloadRow is one point on the budget-vs-demand curve.
type overloadRow struct {
	Multiplier        int     `json:"multiplier"`
	Clients           int     `json:"clients"`
	BudgetBytesPerSec float64 `json:"budget_bytes_per_sec"`
	ElapsedSec        float64 `json:"elapsed_sec"`
	BytesDelivered    int64   `json:"bytes_delivered"`
	RepairedChunks    int64   `json:"repaired_chunks"`
	LostChunks        int64   `json:"lost_chunks"`
	DegradedSessions  int     `json:"degraded_sessions"`
	BusyReplies       int64   `json:"busy_replies"`
	RepairBytesServed int64   `json:"repair_bytes_served"`
	StormResends      int64   `json:"storm_resends"`
	SuppressedRepairs int64   `json:"suppressed_repairs"`
}

// overloadReport is the BENCH_overload.json document.
type overloadReport struct {
	Videos    int           `json:"videos"`
	Channels  int           `json:"channels"`
	Width     int64         `json:"width"`
	UnitNanos int64         `json:"unit_nanos"`
	DropRate  float64       `json:"drop_rate"`
	Seed      uint64        `json:"seed"`
	Rows      []overloadRow `json:"rows"`
}

// overloadSweep provisions the server's repair token bucket for ONE
// session's expected repair bandwidth (plus 20% slack), then offers it
// multiples of that demand as concurrent degradable clients. Within
// budget every loss is repaired; beyond it the bucket answers Busy, the
// clients back off on desynchronized jittered schedules, and the surplus
// degrades gracefully instead of extracting unbounded unicast bytes.
func overloadSweep(videos, channels int, width int64, unit time.Duration,
	drop float64, seed uint64, multipliers, out string) error {
	var ms []int
	for _, f := range strings.Split(multipliers, ",") {
		if f = strings.TrimSpace(f); f == "" {
			continue
		}
		m, err := strconv.Atoi(f)
		if err != nil || m <= 0 {
			return fmt.Errorf("bad multiplier %q", f)
		}
		ms = append(ms, m)
	}
	if len(ms) == 0 {
		return fmt.Errorf("no multipliers in %q", multipliers)
	}
	cfg := vod.Config{
		ServerMbps: 1.5 * float64(videos*channels),
		Videos:     videos,
		LengthMin:  120,
		RateMbps:   1.5,
	}
	sch, err := core.New(cfg, width)
	if err != nil {
		return err
	}
	// Expected repair demand of one session, in the token bucket's own
	// currency: lost chunks * chunk bytes over the session's wall time.
	chunksPerVideo := int(sch.TotalUnits()) * 4096 / 1024
	playbackSec := float64(sch.TotalUnits()) * unit.Seconds()
	perSession, err := unicast.RepairBandwidthBytes(drop, chunksPerVideo, 1024, playbackSec, 1)
	if err != nil {
		return err
	}
	budget := 1.2 * perSession

	report := overloadReport{
		Videos: videos, Channels: channels, Width: width,
		UnitNanos: int64(unit), DropRate: drop, Seed: seed,
	}
	fmt.Printf("%-6s %8s %12s %10s %9s %6s %9s %9s %12s\n",
		"mult", "clients", "budget(B/s)", "delivered", "repaired", "lost", "degraded", "busy", "repair-bytes")
	for _, m := range ms {
		row, err := overloadPoint(sch, unit, drop, seed, budget, m)
		if err != nil {
			return fmt.Errorf("multiplier %d: %w", m, err)
		}
		fmt.Printf("%-6d %8d %12.0f %10d %9d %6d %9d %9d %12d\n",
			row.Multiplier, row.Clients, row.BudgetBytesPerSec, row.BytesDelivered,
			row.RepairedChunks, row.LostChunks, row.DegradedSessions,
			row.BusyReplies, row.RepairBytesServed)
		report.Rows = append(report.Rows, *row)
	}
	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("skychaos: wrote %s\n", out)
	return nil
}

// overloadPoint runs one server with the fixed budget against m
// concurrent clients and tallies the curve point. The burst is sized to
// one session's expected total repair bytes: a single in-budget client
// rides the burst through its correlated loss spikes, while surplus
// demand drains the bucket and meets Busy.
func overloadPoint(sch *core.Scheme, unit time.Duration, drop float64,
	seed uint64, budget float64, m int) (*overloadRow, error) {
	chunksPerVideo := int(sch.TotalUnits()) * 4096 / 1024
	burst := int64(drop*float64(chunksPerVideo)*1024) + 1024
	srv, err := server.New(server.Config{
		Scheme:           sch,
		Unit:             unit,
		BytesPerUnit:     4096,
		ChunkBytes:       1024,
		RepairBandwidth:  int64(budget),
		RepairBurstBytes: burst,
		StormThreshold:   4,
		Faults:           &faults.Plan{Seed: seed, Drop: drop},
	})
	if err != nil {
		return nil, err
	}
	if err := srv.Start(); err != nil {
		return nil, err
	}
	defer srv.Close()

	row := &overloadRow{Multiplier: m, Clients: m, BudgetBytesPerSec: budget}
	start := time.Now()
	var (
		wg sync.WaitGroup
		mu sync.Mutex
	)
	errs := make([]error, m)
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			stats, err := client.Watch(client.Config{
				ServerAddr:    srv.Addr(),
				Video:         0,
				JoinLeadFrac:  0.9,
				SlackFrac:     1.0,
				RepairLagFrac: 0.3,
				AllowDegraded: true,
				Seed:          seed<<8 + uint64(i) + 1,
			})
			errs[i] = err
			if stats == nil {
				return
			}
			mu.Lock()
			defer mu.Unlock()
			row.BytesDelivered += stats.Bytes
			row.RepairedChunks += stats.RepairedChunks
			row.LostChunks += stats.LostChunks
			row.BusyReplies += stats.BusyReplies
			if stats.LostChunks > 0 {
				row.DegradedSessions++
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("client %d: %w", i, err)
		}
	}
	row.ElapsedSec = time.Since(start).Seconds()
	row.RepairBytesServed = srv.RepairBytesServed()
	row.StormResends = srv.StormResends()
	row.SuppressedRepairs = srv.SuppressedRepairs()
	return row, nil
}
