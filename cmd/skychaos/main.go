// Command skychaos runs an in-process chaos sweep against the live
// broadcast stack: for each configured loss rate it starts a server with a
// deterministic fault plan, watches one full video through the recovering
// client, and tabulates the injected faults against the recovery
// statistics — the jitter-free guarantee, demonstrated under loss.
//
// Usage:
//
//	skychaos -M 1 -K 5 -W 2 -unit 80ms -seed 1 -drops 0.01,0.03,0.05
//	skychaos -no-repair -drops 0.25     # graceful degradation instead
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"skyscraper/internal/client"
	"skyscraper/internal/core"
	"skyscraper/internal/faults"
	"skyscraper/internal/server"
	"skyscraper/internal/trace"
	"skyscraper/internal/unicast"
	"skyscraper/internal/vod"
)

func main() {
	var (
		videos   = flag.Int("M", 1, "number of videos to broadcast")
		channels = flag.Int("K", 5, "channels per video")
		width    = flag.Int64("W", 2, "skyscraper width")
		unit     = flag.Duration("unit", 80*time.Millisecond, "wall-clock duration of one D1 unit")
		seed     = flag.Uint64("seed", 1, "fault plan seed (same seed, same injured chunks)")
		drops    = flag.String("drops", "0.01,0.03,0.05", "comma-separated chunk drop rates to sweep")
		dup      = flag.Float64("dup", 0.02, "chunk duplication rate")
		reorder  = flag.Float64("reorder", 0.02, "chunk reorder rate")
		delay    = flag.Float64("delay", 0, "chunk delay rate")
		maxDelay = flag.Duration("max-delay", 5*time.Millisecond, "delay upper bound when -delay > 0")
		noRepair = flag.Bool("no-repair", false, "disable the repair path; losses degrade the session instead")
		verbose  = flag.Bool("v", false, "log protocol details")
	)
	flag.Parse()
	rates, err := parseRates(*drops)
	if err != nil {
		fmt.Fprintln(os.Stderr, "skychaos:", err)
		os.Exit(2)
	}
	failed := false
	fmt.Printf("%-6s %9s %9s %9s %9s %6s %6s %9s %s\n",
		"drop", "injected", "repaired", "requests", "dups", "lost", "late", "bytes", "verdict")
	for _, rate := range rates {
		if err := sweep(*videos, *channels, *width, *unit, rate, *dup, *reorder, *delay, *maxDelay,
			*seed, *noRepair, *verbose); err != nil {
			fmt.Fprintf(os.Stderr, "skychaos: drop %v: %v\n", rate, err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// parseRates splits "0.01,0.03" into probabilities.
func parseRates(s string) ([]float64, error) {
	var rates []float64
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("bad drop rate %q: %v", f, err)
		}
		rates = append(rates, v)
	}
	if len(rates) == 0 {
		return nil, fmt.Errorf("no drop rates in %q", s)
	}
	return rates, nil
}

// sweep runs one (server, client) pair at one drop rate and prints a table
// row. A failed session dumps the recovery trace before returning the
// error.
func sweep(videos, channels int, width int64, unit time.Duration,
	drop, dup, reorder, delay float64, maxDelay time.Duration,
	seed uint64, noRepair, verbose bool) error {
	cfg := vod.Config{
		ServerMbps: 1.5 * float64(videos*channels),
		Videos:     videos,
		LengthMin:  120,
		RateMbps:   1.5,
	}
	sch, err := core.New(cfg, width)
	if err != nil {
		return err
	}
	tb := trace.New(1024)
	srv, err := server.New(server.Config{
		Scheme:       sch,
		Unit:         unit,
		BytesPerUnit: 4096,
		ChunkBytes:   1024,
		Faults: &faults.Plan{
			Seed: seed, Drop: drop, Duplicate: dup, Reorder: reorder,
			Delay: delay, MaxDelay: maxDelay, Trace: tb,
		},
	})
	if err != nil {
		return err
	}
	if err := srv.Start(); err != nil {
		return err
	}
	defer srv.Close()

	ccfg := client.Config{
		ServerAddr:    srv.Addr(),
		Video:         0,
		JoinLeadFrac:  0.9,
		SlackFrac:     1.0,
		RepairLagFrac: 0.3,
		DisableRepair: noRepair,
		AllowDegraded: noRepair,
		Trace:         tb,
	}
	if verbose {
		ccfg.Logf = log.Printf
	}
	stats, err := client.Watch(ccfg)
	injected := srv.Injector().Counts()
	if err != nil {
		fmt.Fprintf(os.Stderr, "skychaos: recovery trace for drop %v:\n", drop)
		_, _ = tb.WriteTo(os.Stderr)
		return err
	}
	verdict := "recovered"
	if noRepair {
		verdict = "degraded"
	}
	fmt.Printf("%-6v %9d %9d %9d %9d %6d %6d %9d %s\n",
		drop, injected.Dropped, stats.RepairedChunks, stats.RepairRequests,
		stats.DuplicateChunks, stats.LostChunks, stats.LateChunks, stats.Bytes, verdict)

	// The data-path ledger: what the hub actually put on the wire and how
	// much of it the frame cache served without re-encoding.
	hub := srv.Hub()
	cs := srv.FrameCacheStats()
	hitPct := 0.0
	if lookups := cs.Hits + cs.Misses; lookups > 0 {
		hitPct = 100 * float64(cs.Hits) / float64(lookups)
	}
	fmt.Printf("       data path: %d datagrams (%d bytes) sent, %d send failures; "+
		"frame cache %d hits / %d misses (%.1f%% hit, %d bytes resident)\n",
		hub.Sent(), hub.SentBytes(), hub.SendFailures(),
		cs.Hits, cs.Misses, hitPct, cs.Bytes)

	// Put the repair traffic in the paper's terms: the unicast burden of
	// recovering this loss rate, versus one dedicated stream per viewer.
	chunksPerVideo := int(sch.TotalUnits()) * 4096 / 1024
	if load, err := unicast.RepairLoad(drop, chunksPerVideo); err == nil {
		fmt.Printf("       repair load: %.1f requests/session expected, "+
			"%.1f%% of a dedicated unicast stream (user-centered baseline: 100%%)\n",
			load.RequestsPerSession, 100*load.StreamFrac)
	}
	return nil
}
