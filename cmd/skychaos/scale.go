package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"skyscraper/internal/core"
	"skyscraper/internal/des"
	"skyscraper/internal/faults"
	"skyscraper/internal/server"
	"skyscraper/internal/viewer"
	"skyscraper/internal/vod"
)

// scaleRow is one point on the audience-size capacity curve: N virtual
// viewers (split over emulator processes) against one server, with the
// per-viewer outcome sums, the admission-latency quantiles, and the
// server's own cost ledger for the window.
type scaleRow struct {
	Viewers int `json:"viewers"`
	Procs   int `json:"procs"`
	Cohorts int `json:"cohorts"`
	// PeakViewers and PeakCohorts are summed emulator-side concurrency
	// high-water marks (the mux's padded gauges).
	PeakViewers int64   `json:"peak_viewers"`
	PeakCohorts int64   `json:"peak_cohorts"`
	ElapsedSec  float64 `json:"elapsed_sec"`
	// P50WaitUnits / P99WaitUnits are start-latency quantiles in D1
	// units, from the merged per-viewer admission-wait histograms.
	P50WaitUnits float64 `json:"p50_wait_units"`
	P99WaitUnits float64 `json:"p99_wait_units"`
	// Viewer-side outcome sums across all emulators.
	Bytes            int64 `json:"bytes"`
	RepairRequests   int64 `json:"repair_requests"`
	RepairedChunks   int64 `json:"repaired_chunks"`
	BusyReplies      int64 `json:"busy_replies"`
	LostChunks       int64 `json:"lost_chunks"`
	LateChunks       int64 `json:"late_chunks"`
	DegradedSessions int   `json:"degraded_sessions"`
	// BusyRate is BusyReplies / RepairRequests (0 when no requests).
	BusyRate float64 `json:"busy_rate"`
	// Datagrams / RecvDropped are shared-receiver deliveries and ring
	// drops across emulators — per subscribed datagram, not per viewer.
	Datagrams   int64 `json:"datagrams"`
	RecvDropped int64 `json:"recv_dropped"`
	// Server-side deltas over the window: CPU burned by the server
	// process, datagrams put on the wire, unicast repairs answered, and
	// the control-session high-water mark (audience-independence: bounded
	// by the emulators' connection pools, not by Viewers).
	ServerCPUSec        float64 `json:"server_cpu_sec"`
	ServerDatagrams     int64   `json:"server_datagrams"`
	ServerRepairs       int64   `json:"server_repairs"`
	ControlSessionsPeak int64   `json:"control_sessions_peak"`
}

// scaleReport is the BENCH_scale.json document.
type scaleReport struct {
	Videos      int        `json:"videos"`
	Channels    int        `json:"channels"`
	Width       int64      `json:"width"`
	UnitNanos   int64      `json:"unit_nanos"`
	DropRate    float64    `json:"drop_rate"`
	Seed        uint64     `json:"seed"`
	SpreadUnits float64    `json:"spread_units"`
	Rows        []scaleRow `json:"rows"`
}

// emulate is the child-process mode: run one virtual-viewer mux against
// the given server and print the viewer.Result as JSON on stdout. The
// parent merges the documents; a degraded run still reports before the
// non-zero exit.
func emulate(serverAddr string, viewers, videos int, spread float64, seed uint64,
	workers int, noRepair, verbose bool) error {
	cfg := viewer.MuxConfig{
		ServerAddr:    serverAddr,
		Viewers:       viewers,
		Videos:        videos,
		SpreadUnits:   spread,
		Seed:          seed,
		Workers:       workers,
		JoinLeadFrac:  0.9,
		SlackFrac:     1.0,
		RepairLagFrac: 0.3,
		DisableRepair: noRepair,
	}
	if verbose {
		cfg.Logf = log.Printf
	}
	res, runErr := viewer.Run(cfg)
	if res != nil {
		if err := json.NewEncoder(os.Stdout).Encode(res); err != nil {
			return err
		}
	}
	return runErr
}

// scaleSweep is the parent mode: one in-process server, then for each
// audience size N it forks -emulate children (os.Executable re-exec) that
// hold N virtual viewers between them over real loopback sockets, and
// records the viewers-vs-{start latency, repair load, busy rate,
// degradation, server CPU} capacity curve.
func scaleSweep(videos, channels int, width int64, unit time.Duration,
	drop float64, seed uint64, viewersList string, procs, muxWorkers int,
	spread float64, noRepair, verbose bool, out string) error {
	var counts []int
	for _, f := range strings.Split(viewersList, ",") {
		if f = strings.TrimSpace(f); f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n <= 0 {
			return fmt.Errorf("bad viewer count %q", f)
		}
		counts = append(counts, n)
	}
	if len(counts) == 0 {
		return fmt.Errorf("no viewer counts in %q", viewersList)
	}
	if procs <= 0 {
		procs = 1
	}
	cfg := vod.Config{
		ServerMbps: 1.5 * float64(videos*channels),
		Videos:     videos,
		LengthMin:  120,
		RateMbps:   1.5,
	}
	sch, err := core.New(cfg, width)
	if err != nil {
		return err
	}
	scfg := server.Config{
		Scheme:       sch,
		Unit:         unit,
		BytesPerUnit: 4096,
		ChunkBytes:   1024,
	}
	if drop > 0 {
		scfg.Faults = &faults.Plan{Seed: seed, Drop: drop}
	}
	if verbose {
		scfg.Logf = log.Printf
	}
	srv, err := server.New(scfg)
	if err != nil {
		return err
	}
	if err := srv.Start(); err != nil {
		return err
	}
	defer srv.Close()
	statusURL, err := srv.ServeStatus()
	if err != nil {
		return err
	}

	report := scaleReport{
		Videos: videos, Channels: channels, Width: width,
		UnitNanos: int64(unit), DropRate: drop, Seed: seed, SpreadUnits: spread,
	}
	fmt.Printf("%-9s %5s %7s %9s %9s %9s %7s %8s %9s %9s %8s %9s\n",
		"viewers", "procs", "cohorts", "p50-wait", "p99-wait", "repairs", "busy%", "degraded",
		"datagrams", "srv-cpu-s", "srv-dgs", "sessions")
	for _, n := range counts {
		row, err := scalePoint(srv, statusURL, n, procs, videos, spread, seed, muxWorkers, noRepair, verbose)
		if err != nil {
			return fmt.Errorf("viewers %d: %w", n, err)
		}
		fmt.Printf("%-9d %5d %7d %9.3f %9.3f %9d %7.2f %8d %9d %9.2f %8d %9d\n",
			row.Viewers, row.Procs, row.Cohorts, row.P50WaitUnits, row.P99WaitUnits,
			row.RepairRequests, 100*row.BusyRate, row.DegradedSessions,
			row.Datagrams, row.ServerCPUSec, row.ServerDatagrams, row.ControlSessionsPeak)
		report.Rows = append(report.Rows, *row)
	}
	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("skychaos: wrote %s\n", out)
	return nil
}

// scalePoint runs one audience size: procs emulator processes splitting n
// viewers, measured against the server's CPU and wire ledgers.
func scalePoint(srv *server.Server, statusURL string, n, procs, videos int,
	spread float64, seed uint64, muxWorkers int, noRepair, verbose bool) (*scaleRow, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	if procs > n {
		procs = n
	}
	cpu0 := cpuSeconds()
	dg0 := srv.Hub().Sent()
	rp0 := srv.RepairsServed()
	start := time.Now()

	var wg sync.WaitGroup
	outs := make([]bytes.Buffer, procs)
	errs := make([]error, procs)
	per := n / procs
	for i := 0; i < procs; i++ {
		nv := per
		if i == procs-1 {
			nv = n - per*(procs-1)
		}
		args := []string{
			"-emulate",
			"-server", srv.Addr(),
			"-viewers", strconv.Itoa(nv),
			"-M", strconv.Itoa(videos),
			"-spread", strconv.FormatFloat(spread, 'g', -1, 64),
			// Each emulator holds a distinct viewer population: a derived
			// seed keeps its arrival and jitter substreams disjoint.
			"-seed", strconv.FormatUint(des.SubSeed(seed, uint64(i+1)), 10),
		}
		if muxWorkers > 0 {
			args = append(args, "-mux-workers", strconv.Itoa(muxWorkers))
		}
		if noRepair {
			args = append(args, "-no-repair")
		}
		if verbose {
			args = append(args, "-v")
		}
		cmd := exec.Command(exe, args...)
		cmd.Stdout = &outs[i]
		cmd.Stderr = os.Stderr
		wg.Add(1)
		go func(i int, cmd *exec.Cmd) {
			defer wg.Done()
			errs[i] = cmd.Run()
		}(i, cmd)
	}
	wg.Wait()

	elapsed := time.Since(start)
	cpu := cpuSeconds() - cpu0
	row := &scaleRow{Viewers: n, Procs: procs, ElapsedSec: elapsed.Seconds(), ServerCPUSec: cpu}
	var hists [][]viewer.WaitBucket
	for i := 0; i < procs; i++ {
		if errs[i] != nil {
			return nil, fmt.Errorf("emulator %d: %v (output %q)", i, errs[i], outs[i].String())
		}
		var res viewer.Result
		if err := json.Unmarshal(outs[i].Bytes(), &res); err != nil {
			return nil, fmt.Errorf("emulator %d output: %v", i, err)
		}
		row.Cohorts += res.Cohorts
		row.PeakViewers += res.PeakViewers
		row.PeakCohorts += res.PeakCohorts
		row.Bytes += res.Bytes
		row.RepairRequests += res.RepairRequests
		row.RepairedChunks += res.RepairedChunks
		row.BusyReplies += res.BusyReplies
		row.LostChunks += res.LostChunks
		row.LateChunks += res.LateChunks
		row.DegradedSessions += res.Degraded
		row.Datagrams += res.Datagrams
		row.RecvDropped += res.RecvDropped
		hists = append(hists, res.WaitHist)
	}
	merged := viewer.MergeWaitHists(hists...)
	row.P50WaitUnits = viewer.WaitQuantile(merged, int64(n), 0.50)
	row.P99WaitUnits = viewer.WaitQuantile(merged, int64(n), 0.99)
	if row.RepairRequests > 0 {
		row.BusyRate = float64(row.BusyReplies) / float64(row.RepairRequests)
	}
	row.ServerDatagrams = srv.Hub().Sent() - dg0
	row.ServerRepairs = srv.RepairsServed() - rp0

	resp, err := http.Get(statusURL + "/status")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var snap server.StatusSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, err
	}
	row.ControlSessionsPeak = snap.ControlSessionsPeak
	return row, nil
}

// cpuSeconds is this process's user+system CPU time — with the server
// in-process and the emulators forked out, it is the server's cost.
func cpuSeconds() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano()).Seconds()
}
