package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"skyscraper/internal/core"
	"skyscraper/internal/des"
	"skyscraper/internal/faults"
	"skyscraper/internal/server"
	"skyscraper/internal/viewer"
	"skyscraper/internal/vod"
)

// scaleRow is one point on the audience-size capacity curve: N virtual
// viewers (split over emulator processes) against one server, with the
// per-viewer outcome sums, the admission-latency quantiles, and the
// server's own cost ledger for the window.
type scaleRow struct {
	Viewers int `json:"viewers"`
	Procs   int `json:"procs"`
	Cohorts int `json:"cohorts"`
	// PeakViewers and PeakCohorts are summed emulator-side concurrency
	// high-water marks (the mux's padded gauges).
	PeakViewers int64   `json:"peak_viewers"`
	PeakCohorts int64   `json:"peak_cohorts"`
	ElapsedSec  float64 `json:"elapsed_sec"`
	// P50WaitUnits / P99WaitUnits are start-latency quantiles in D1
	// units, from the merged per-viewer admission-wait histograms.
	P50WaitUnits float64 `json:"p50_wait_units"`
	P99WaitUnits float64 `json:"p99_wait_units"`
	// Viewer-side outcome sums across all emulators.
	Bytes            int64 `json:"bytes"`
	RepairRequests   int64 `json:"repair_requests"`
	RepairedChunks   int64 `json:"repaired_chunks"`
	BusyReplies      int64 `json:"busy_replies"`
	LostChunks       int64 `json:"lost_chunks"`
	LateChunks       int64 `json:"late_chunks"`
	DegradedSessions int   `json:"degraded_sessions"`
	// The cohort repair plane: NACK control messages sent (one per cohort
	// aggregation window, not per viewer), windows suppressed because the
	// gap healed first, and chunks healed by multicast re-sends (summed
	// over viewers — the audience-side harvest of each re-send).
	NacksSent        int64 `json:"nacks_sent"`
	NacksSuppressed  int64 `json:"nack_suppressed"`
	MulticastRepairs int64 `json:"multicast_repairs"`
	// The proactive repair rung below the ladder: chunks reconstructed
	// locally from the parity stripe (summed over viewers, zero control
	// round trips each) and cohort-level stripe defeats that escalated.
	FecHeals      int64 `json:"fec_heals"`
	StripeDefeats int64 `json:"stripe_defeats"`
	// Server-side parity overhead over the window: frames and bytes the
	// stripe added to the broadcast (bounded by 1/G of the data frames).
	ServerParityFrames int64 `json:"server_parity_frames"`
	ServerParityBytes  int64 `json:"server_parity_bytes"`
	// BusyRate is BusyReplies / RepairRequests (0 when no requests).
	BusyRate float64 `json:"busy_rate"`
	// Datagrams / RecvDropped are shared-receiver deliveries and ring
	// drops across emulators — per subscribed datagram, not per viewer.
	Datagrams   int64 `json:"datagrams"`
	RecvDropped int64 `json:"recv_dropped"`
	// The ingress ladder ledger, summed across emulators: datagrams
	// delivered through the recvmmsg rung, kernel receive invocations
	// (batched_reads/read_syscalls is the achieved ingress batching
	// factor), wire datagrams split out of UDP_GRO super-frames, declined
	// or demoted rungs, and backoff-throttled receive failures.
	BatchedReads int64 `json:"batched_reads"`
	ReadSyscalls int64 `json:"read_syscalls"`
	GroSegments  int64 `json:"gro_segments"`
	GroFallbacks int64 `json:"gro_fallbacks,omitempty"`
	ReadErrors   int64 `json:"read_errors,omitempty"`
	// Server-side deltas over the window: CPU burned by the server
	// process, datagrams put on the wire, unicast repairs answered, and
	// the control-session high-water mark (audience-independence: bounded
	// by the emulators' connection pools, not by Viewers).
	ServerCPUSec        float64 `json:"server_cpu_sec"`
	ServerDatagrams     int64   `json:"server_datagrams"`
	ServerRepairs       int64   `json:"server_repairs"`
	ServerNackResends   int64   `json:"server_nack_resends"`
	ControlSessionsPeak int64   `json:"control_sessions_peak"`
}

// sweepSpec is one capacity sweep: a drop rate and the audience sizes to
// walk through it. The lossless base sweep measures pure fan-out cost;
// a faulted sweep contrasts it with the repair plane under correlated
// loss, where the cohort NACK path must keep repair work O(cohorts).
type sweepSpec struct {
	drop   float64
	counts []int
}

// scaleSweepResult is one sweep's slice of the report.
type scaleSweepResult struct {
	DropRate float64    `json:"drop_rate"`
	Rows     []scaleRow `json:"rows"`
}

// scaleReport is the BENCH_scale.json document.
type scaleReport struct {
	Videos      int     `json:"videos"`
	Channels    int     `json:"channels"`
	Width       int64   `json:"width"`
	UnitNanos   int64   `json:"unit_nanos"`
	Seed        uint64  `json:"seed"`
	SpreadUnits float64 `json:"spread_units"`
	// FecGroup/FecMode record the parity stripe the server broadcast with
	// (0/"" when off), and Burst the Gilbert–Elliott loss triple, so rows
	// from different repair configurations are never compared silently.
	FecGroup int                `json:"fec_group"`
	FecMode  string             `json:"fec_mode,omitempty"`
	Burst    string             `json:"burst,omitempty"`
	Sweeps   []scaleSweepResult `json:"sweeps"`
}

// emulate is the child-process mode: run one virtual-viewer mux against
// the given server and print the viewer.Result as JSON on stdout. The
// parent merges the documents; a degraded run still reports before the
// non-zero exit.
func emulate(serverAddr string, viewers, videos int, spread float64, seed uint64,
	workers, recvBatch int, noRepair, verbose bool) error {
	cfg := viewer.MuxConfig{
		ServerAddr:   serverAddr,
		Viewers:      viewers,
		Videos:       videos,
		SpreadUnits:  spread,
		Seed:         seed,
		Workers:      workers,
		RecvBatch:    recvBatch,
		JoinLeadFrac: 0.9,
		// Two units of slack (matching the chaos-suite clients): the NACK
		// ladder only engages on chunks with a multicast round's worth of
		// deadline headroom, so the one-unit budget would silently disable
		// the cohort repair plane this harness is meant to measure.
		SlackFrac:     2.0,
		RepairLagFrac: 0.3,
		DisableRepair: noRepair,
	}
	if verbose {
		cfg.Logf = log.Printf
	}
	res, runErr := viewer.Run(cfg)
	if res != nil {
		if err := json.NewEncoder(os.Stdout).Encode(res); err != nil {
			return err
		}
	}
	return runErr
}

// parseCounts splits "500,2000,8000" into audience sizes.
func parseCounts(s string) ([]int, error) {
	var counts []int
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad viewer count %q", f)
		}
		counts = append(counts, n)
	}
	if len(counts) == 0 {
		return nil, fmt.Errorf("no viewer counts in %q", s)
	}
	return counts, nil
}

// scaleSweep is the parent mode: for each sweep (a drop rate and its
// audience sizes) it starts a fresh in-process server, then for each
// audience size N forks -emulate children (os.Executable re-exec) that
// hold N virtual viewers between them over real loopback sockets, and
// records the viewers-vs-{start latency, repair load, busy rate,
// degradation, server CPU} capacity curve. Faulted sweeps additionally
// record the cohort repair plane's ledger: NACKs, suppressed windows,
// and multicast re-send heals. With assertCohort set, every faulted
// sweep must come back undegraded with sublinear unicast-repair growth —
// the O(cohorts)-not-O(viewers) property, enforced.
func scaleSweep(videos, channels int, width int64, unit time.Duration,
	seed uint64, sweeps []sweepSpec, procs, muxWorkers, recvBatch int,
	spread float64, fecGroup int, fecMode string, burst burstSpec,
	noRepair, verbose, assertCohort bool, out string) error {
	if procs <= 0 {
		procs = 1
	}
	cfg := vod.Config{
		ServerMbps: 1.5 * float64(videos*channels),
		Videos:     videos,
		LengthMin:  120,
		RateMbps:   1.5,
	}
	sch, err := core.New(cfg, width)
	if err != nil {
		return err
	}
	report := scaleReport{
		Videos: videos, Channels: channels, Width: width,
		UnitNanos: int64(unit), Seed: seed, SpreadUnits: spread,
		FecGroup: fecGroup, FecMode: fecMode,
	}
	if burst.set {
		report.Burst = fmt.Sprintf("%g,%g,%g", burst.enter, burst.exit, burst.drop)
	}
	for _, sw := range sweeps {
		res, err := runScaleSweep(sch, unit, seed, sw, procs, videos, muxWorkers, recvBatch, spread, fecGroup, fecMode, burst, noRepair, verbose)
		if err != nil {
			return err
		}
		report.Sweeps = append(report.Sweeps, *res)
	}
	if assertCohort {
		chunksPerViewer := int(sch.TotalUnits()) * 4096 / 1024
		if err := assertCohortRepair(&report, chunksPerViewer); err != nil {
			return err
		}
		fmt.Println("skychaos: cohort-repair assertion held on every faulted sweep")
	}
	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("skychaos: wrote %s\n", out)
	return nil
}

// runScaleSweep runs one sweep against its own server, so each drop rate
// gets a clean fault plan and cost ledger.
func runScaleSweep(sch *core.Scheme, unit time.Duration, seed uint64, sw sweepSpec,
	procs, videos, muxWorkers, recvBatch int, spread float64, fecGroup int, fecMode string,
	burst burstSpec, noRepair, verbose bool) (*scaleSweepResult, error) {
	scfg := server.Config{
		Scheme:       sch,
		Unit:         unit,
		BytesPerUnit: 4096,
		ChunkBytes:   1024,
		FecGroup:     fecGroup,
		FecMode:      fecMode,
	}
	if sw.drop > 0 || burst.set {
		plan := &faults.Plan{Seed: seed, Drop: sw.drop}
		burst.applyBurst(plan, 1024)
		scfg.Faults = plan
	}
	if verbose {
		scfg.Logf = log.Printf
	}
	srv, err := server.New(scfg)
	if err != nil {
		return nil, err
	}
	if err := srv.Start(); err != nil {
		return nil, err
	}
	defer srv.Close()
	statusURL, err := srv.ServeStatus()
	if err != nil {
		return nil, err
	}

	res := &scaleSweepResult{DropRate: sw.drop}
	fmt.Printf("sweep: drop=%v\n", sw.drop)
	fmt.Printf("%-9s %5s %7s %9s %9s %9s %9s %8s %7s %8s %7s %8s %9s %9s %8s %9s\n",
		"viewers", "procs", "cohorts", "p50-wait", "p99-wait", "fec-heals", "repairs", "defeats", "busy%", "degraded",
		"nacks", "mc-heals", "datagrams", "srv-cpu-s", "srv-dgs", "sessions")
	for _, n := range sw.counts {
		row, err := scalePoint(srv, statusURL, n, procs, videos, spread, seed, muxWorkers, recvBatch, noRepair, verbose)
		if err != nil {
			return nil, fmt.Errorf("drop %v viewers %d: %w", sw.drop, n, err)
		}
		fmt.Printf("%-9d %5d %7d %9.3f %9.3f %9d %9d %8d %7.2f %8d %7d %8d %9d %9.2f %8d %9d\n",
			row.Viewers, row.Procs, row.Cohorts, row.P50WaitUnits, row.P99WaitUnits,
			row.FecHeals, row.RepairRequests, row.StripeDefeats,
			100*row.BusyRate, row.DegradedSessions,
			row.NacksSent, row.MulticastRepairs,
			row.Datagrams, row.ServerCPUSec, row.ServerDatagrams, row.ControlSessionsPeak)
		res.Rows = append(res.Rows, *row)
	}
	// The sweep's ingress ledger: how the emulators' shared receivers
	// turned kernel receive invocations back into wire datagrams.
	var br, rs, gs, gf, re int64
	for _, row := range res.Rows {
		br += row.BatchedReads
		rs += row.ReadSyscalls
		gs += row.GroSegments
		gf += row.GroFallbacks
		re += row.ReadErrors
	}
	perRead := 0.0
	if rs > 0 {
		perRead = float64(br) / float64(rs)
	}
	fmt.Printf("       ingress: %d batched reads over %d read syscalls "+
		"(%.1f datagrams/readsyscall), %d gro segments, %d fallbacks, %d read errors\n",
		br, rs, perRead, gs, gf, re)
	return res, nil
}

// assertCohortRepair enforces the repair plane's scaling contract on
// every faulted sweep: no session may degrade, and unicast repair round
// trips must stay well under the per-viewer recovery baseline of
// drop x chunks/session x viewers — what O(viewers) recovery would
// spend (PR 6 measured exactly that: ~1 round trip per viewer at 2%
// drop). Half the baseline is the failure line: generous enough that
// deadline-forced unicast fallback on a stalled CI box (a legitimate
// ladder escalation) passes, while a ladder that stopped aggregating —
// every injured viewer pulling its own chunk — lands at ~1x baseline
// and fails every row.
func assertCohortRepair(report *scaleReport, chunksPerViewer int) error {
	asserted := false
	for _, sw := range report.Sweeps {
		if sw.DropRate == 0 || len(sw.Rows) == 0 {
			continue
		}
		asserted = true
		for _, row := range sw.Rows {
			if row.DegradedSessions > 0 {
				return fmt.Errorf("cohort-repair assertion: drop %v, %d viewers: %d degraded sessions",
					sw.DropRate, row.Viewers, row.DegradedSessions)
			}
			baseline := sw.DropRate * float64(chunksPerViewer) * float64(row.Viewers)
			if float64(row.RepairRequests) >= baseline/2 {
				return fmt.Errorf("cohort-repair assertion: drop %v, %d viewers: %d unicast repairs vs a per-viewer baseline of %.0f — repair work is scaling with viewers, not cohorts",
					sw.DropRate, row.Viewers, row.RepairRequests, baseline)
			}
		}
	}
	if !asserted {
		return fmt.Errorf("cohort-repair assertion: no faulted sweep (drop_rate > 0) to assert on")
	}
	return nil
}

// scalePoint runs one audience size: procs emulator processes splitting n
// viewers, measured against the server's CPU and wire ledgers.
func scalePoint(srv *server.Server, statusURL string, n, procs, videos int,
	spread float64, seed uint64, muxWorkers, recvBatch int, noRepair, verbose bool) (*scaleRow, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	if procs > n {
		procs = n
	}
	cpu0 := cpuSeconds()
	dg0 := srv.Hub().Sent()
	rp0 := srv.RepairsServed()
	nr0 := srv.NackResends() + srv.StormResends()
	pf0, pb0 := srv.ParityFramesSent(), srv.ParityBytesSent()
	start := time.Now()

	var wg sync.WaitGroup
	outs := make([]bytes.Buffer, procs)
	errs := make([]error, procs)
	per := n / procs
	for i := 0; i < procs; i++ {
		nv := per
		if i == procs-1 {
			nv = n - per*(procs-1)
		}
		args := []string{
			"-emulate",
			"-server", srv.Addr(),
			"-viewers", strconv.Itoa(nv),
			"-M", strconv.Itoa(videos),
			"-spread", strconv.FormatFloat(spread, 'g', -1, 64),
			// Each emulator holds a distinct viewer population: a derived
			// seed keeps its arrival and jitter substreams disjoint.
			"-seed", strconv.FormatUint(des.SubSeed(seed, uint64(i+1)), 10),
		}
		if muxWorkers > 0 {
			args = append(args, "-mux-workers", strconv.Itoa(muxWorkers))
		}
		if recvBatch > 0 {
			args = append(args, "-recv-batch", strconv.Itoa(recvBatch))
		}
		if noRepair {
			args = append(args, "-no-repair")
		}
		if verbose {
			args = append(args, "-v")
		}
		cmd := exec.Command(exe, args...)
		cmd.Stdout = &outs[i]
		cmd.Stderr = os.Stderr
		wg.Add(1)
		go func(i int, cmd *exec.Cmd) {
			defer wg.Done()
			errs[i] = cmd.Run()
		}(i, cmd)
	}
	wg.Wait()

	elapsed := time.Since(start)
	cpu := cpuSeconds() - cpu0
	row := &scaleRow{Viewers: n, Procs: procs, ElapsedSec: elapsed.Seconds(), ServerCPUSec: cpu}
	var hists [][]viewer.WaitBucket
	for i := 0; i < procs; i++ {
		if errs[i] != nil {
			return nil, fmt.Errorf("emulator %d: %v (output %q)", i, errs[i], outs[i].String())
		}
		var res viewer.Result
		if err := json.Unmarshal(outs[i].Bytes(), &res); err != nil {
			return nil, fmt.Errorf("emulator %d output: %v", i, err)
		}
		row.Cohorts += res.Cohorts
		row.PeakViewers += res.PeakViewers
		row.PeakCohorts += res.PeakCohorts
		row.Bytes += res.Bytes
		row.RepairRequests += res.RepairRequests
		row.RepairedChunks += res.RepairedChunks
		row.BusyReplies += res.BusyReplies
		row.LostChunks += res.LostChunks
		row.LateChunks += res.LateChunks
		row.DegradedSessions += res.Degraded
		row.NacksSent += res.NacksSent
		row.NacksSuppressed += res.NacksSuppressed
		row.MulticastRepairs += res.MulticastRepairs
		row.FecHeals += res.FecHeals
		row.StripeDefeats += res.StripeDefeats
		row.Datagrams += res.Datagrams
		row.RecvDropped += res.RecvDropped
		row.BatchedReads += res.BatchedReads
		row.ReadSyscalls += res.ReadSyscalls
		row.GroSegments += res.GroSegments
		row.GroFallbacks += res.GroFallbacks
		row.ReadErrors += res.ReadErrors
		hists = append(hists, res.WaitHist)
	}
	merged := viewer.MergeWaitHists(hists...)
	row.P50WaitUnits = viewer.WaitQuantile(merged, int64(n), 0.50)
	row.P99WaitUnits = viewer.WaitQuantile(merged, int64(n), 0.99)
	if row.RepairRequests > 0 {
		row.BusyRate = float64(row.BusyReplies) / float64(row.RepairRequests)
	}
	row.ServerDatagrams = srv.Hub().Sent() - dg0
	row.ServerRepairs = srv.RepairsServed() - rp0
	row.ServerNackResends = srv.NackResends() + srv.StormResends() - nr0
	row.ServerParityFrames = srv.ParityFramesSent() - pf0
	row.ServerParityBytes = srv.ParityBytesSent() - pb0

	resp, err := http.Get(statusURL + "/status")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var snap server.StatusSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, err
	}
	row.ControlSessionsPeak = snap.ControlSessionsPeak
	return row, nil
}

// cpuSeconds is this process's user+system CPU time — with the server
// in-process and the emulators forked out, it is the server's cost.
func cpuSeconds() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano()).Seconds()
}
