// Command skyserver runs the live Skyscraper Broadcasting server: M videos
// of synthetic content, K channels each, broadcast over loopback UDP with
// a TCP control port for clients (see cmd/skyclient).
//
// Usage:
//
//	skyserver -M 2 -K 6 -W 5 -unit 50ms
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"skyscraper/internal/core"
	"skyscraper/internal/server"
	"skyscraper/internal/vod"
)

func main() {
	var (
		videos   = flag.Int("M", 2, "number of videos to broadcast")
		channels = flag.Int("K", 6, "channels per video")
		width    = flag.Int64("W", 5, "skyscraper width")
		unit     = flag.Duration("unit", 50*time.Millisecond, "wall-clock duration of one D1 unit")
		bpu      = flag.Int("bytes-per-unit", 4096, "payload bytes per unit")
		chunk    = flag.Int("chunk", 1024, "chunk payload bytes (must divide bytes-per-unit)")
		fecGroup = flag.Int("fec-group", 0,
			"proactive parity stripe group size G: one parity frame per G data chunks, ~1/G bandwidth overhead (0 = off)")
		fecMode = flag.String("fec-mode", "",
			"parity stripe code when -fec-group > 0: xor (heals one erasure per group, the default) or rs (P+Q, heals two)")
		status = flag.Bool("status", true, "serve an HTTP /status endpoint")
		cacheB   = flag.Int64("frame-cache-bytes", 0,
			"frame cache budget in bytes (0 = default, negative = disable frame residency)")
		pprofOn  = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ on the status endpoint")
		repairBW = flag.Int64("repair-bandwidth", 0,
			"repair-plane admission budget in bytes/sec (0 = unlimited); size it with unicast.RepairBandwidthBytes")
		drainTO = flag.Duration("drain-timeout", 10*time.Second,
			"how long a SIGTERM/SIGINT drain waits for in-flight control handlers before forcing shutdown")
		sndbuf = flag.Int("sndbuf", 4<<20,
			"kernel send-buffer bytes for the broadcast socket (SetWriteBuffer); batched egress bursts up to 64 datagrams per syscall, and the default 4 MiB absorbs such bursts at every tested scale (0 = OS default)")
		rcvbuf = flag.Int("rcvbuf", 0,
			"kernel receive-buffer bytes for the broadcast socket (SetReadBuffer); only error traffic lands there (0 = OS default)")
		engine = flag.String("egress", server.EngineWheel,
			"egress engine: 'wheel' (sharded timer wheel + batched fan-out), 'uring' (wheel + shared io_uring submission ring batching across shards; falls back to wheel with a logged notice where the kernel lacks io_uring), or 'pacer' (legacy goroutine per channel). UDP GSO super-frames are probed and used automatically on the wheel/uring engines; set SKYSCRAPER_NO_GSO=1 to disable them")
	)
	flag.Parse()
	if err := run(*videos, *channels, *width, *unit, *bpu, *chunk, *fecGroup, *fecMode, *status, *cacheB, *pprofOn, *repairBW, *drainTO, *sndbuf, *rcvbuf, *engine); err != nil {
		fmt.Fprintln(os.Stderr, "skyserver:", err)
		os.Exit(1)
	}
}

func run(videos, channels int, width int64, unit time.Duration, bpu, chunk, fecGroup int, fecMode string, status bool, cacheBytes int64, pprofOn bool, repairBW int64, drainTO time.Duration, sndbuf, rcvbuf int, engine string) error {
	cfg := vod.Config{
		ServerMbps: 1.5 * float64(videos*channels),
		Videos:     videos,
		LengthMin:  120,
		RateMbps:   1.5,
	}
	sch, err := core.New(cfg, width)
	if err != nil {
		return err
	}
	srv, err := server.New(server.Config{
		Scheme:          sch,
		Unit:            unit,
		BytesPerUnit:    bpu,
		ChunkBytes:      chunk,
		FecGroup:        fecGroup,
		FecMode:         fecMode,
		FrameCacheBytes: cacheBytes,
		EnablePprof:     pprofOn,
		RepairBandwidth: repairBW,
		EgressEngine:    engine,
		SendBufBytes:    sndbuf,
		RecvBufBytes:    rcvbuf,
		Logf:            log.Printf,
	})
	if err != nil {
		return err
	}
	if err := srv.Start(); err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("skyserver: control address %s\n", srv.Addr())
	if status {
		url, err := srv.ServeStatus()
		if err != nil {
			return err
		}
		fmt.Printf("skyserver: status at %s/status\n", url)
	}
	fmt.Printf("skyserver: %d videos x %d channels, fragments %v (units of %v)\n",
		videos, sch.K(), sch.Sizes(), unit)
	fmt.Println("skyserver: ctrl-C to drain and stop")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	// Graceful drain: stop accepting, send bye to connected clients
	// (they finish on broadcast data alone), wait for in-flight control
	// handlers up to the deadline, then tear the broadcast down.
	fmt.Printf("skyserver: draining (up to %v)\n", drainTO)
	ctx, cancel := context.WithTimeout(context.Background(), drainTO)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Println("skyserver: drained")
	return nil
}
