// Command skysim runs the event-driven broadcast simulator for one scheme
// and reports measured access latency, client buffer occupancy and stream
// concurrency over a population of clients.
//
// Usage:
//
//	skysim -scheme sb -B 320 -W 52 -clients 2000
//	skysim -scheme ppb:b -B 320
//	skysim -scheme batch -policy mql -channels 10 -rate 5
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"skyscraper/internal/batch"
	"skyscraper/internal/catalog"
	"skyscraper/internal/core"
	"skyscraper/internal/ppb"
	"skyscraper/internal/pyramid"
	"skyscraper/internal/sim"
	"skyscraper/internal/staggered"
	"skyscraper/internal/trace"
	"skyscraper/internal/vod"
	"skyscraper/internal/workload"
)

func main() {
	var (
		scheme    = flag.String("scheme", "sb", "sb, pb:a, pb:b, ppb:a, ppb:b, staggered or batch")
		bandwidth = flag.Float64("B", 320, "server network-I/O bandwidth, Mbit/s")
		width     = flag.Int64("W", 52, "skyscraper width (0 = uncapped)")
		videos    = flag.Int("M", 10, "number of broadcast videos")
		length    = flag.Float64("D", 120, "video length, minutes")
		rate      = flag.Float64("b", 1.5, "display rate, Mbit/s")
		clients   = flag.Int("clients", 1000, "simulated clients")
		window    = flag.Float64("window", 1000, "arrival window, minutes")
		seed      = flag.Uint64("seed", 1, "workload seed")
		workers   = flag.Int("workers", 0, "sweep worker pool size (0 = GOMAXPROCS); results are identical for any value")
		policy    = flag.String("policy", "mql", "batching policy: fcfs, mql or mfql")
		channels  = flag.Int("channels", 10, "batching channels")
		reqRate   = flag.Float64("rate", 2, "batching arrival rate, requests/minute")
		patience  = flag.Float64("patience", 0, "mean client patience, minutes (0 = infinite)")
		traceN    = flag.Int("trace", 0, "dump the last N batching events (batch scheme only)")
	)
	flag.Parse()
	cfg := vod.Config{ServerMbps: *bandwidth, Videos: *videos, LengthMin: *length, RateMbps: *rate}
	if err := run(*scheme, cfg, *width, *clients, *window, *seed, *workers, *policy, *channels, *reqRate, *patience, *traceN); err != nil {
		fmt.Fprintln(os.Stderr, "skysim:", err)
		os.Exit(1)
	}
}

func run(scheme string, cfg vod.Config, width int64, clients int, window float64, seed uint64,
	workers int, policy string, channels int, reqRate, patience float64, traceN int) error {
	if scheme == "batch" {
		return runBatch(cfg, policy, channels, reqRate, patience, clients, seed, traceN)
	}
	cs, perf, err := buildScheme(scheme, cfg, width)
	if err != nil {
		return err
	}
	res, err := sim.Sweep(cs, clients, window, cfg.Videos, seed, sim.Workers(workers))
	if err != nil {
		return err
	}
	fmt.Printf("scheme        %s  (B=%g Mbit/s, M=%d, D=%g min, b=%g Mbit/s)\n",
		res.Scheme, cfg.ServerMbps, cfg.Videos, cfg.LengthMin, cfg.RateMbps)
	fmt.Printf("clients       %d over %g minutes\n", res.Clients, window)
	fmt.Printf("wait (min)    %s   [analytic worst %.4f]\n", res.WaitMin.String(), perf.AccessLatencyMin())
	fmt.Printf("buffer (Mbit) %s   [analytic worst %.4f]\n", res.BufferMbit.String(), perf.BufferMbit())
	fmt.Printf("streams       max %g\n", res.Streams.Max())
	fmt.Printf("disk bw       %.4f Mbit/s (analytic)\n", perf.DiskBandwidthMbps())
	return nil
}

func buildScheme(name string, cfg vod.Config, width int64) (sim.ClientSim, vod.Performer, error) {
	switch strings.ToLower(name) {
	case "sb":
		s, err := core.New(cfg, width)
		if err != nil {
			return nil, nil, err
		}
		return sim.NewSB(s), s, nil
	case "pb:a", "pb:b":
		m := pyramid.MethodA
		if name == "pb:b" {
			m = pyramid.MethodB
		}
		s, err := pyramid.New(cfg, m)
		if err != nil {
			return nil, nil, err
		}
		return sim.NewPB(s), s, nil
	case "ppb:a", "ppb:b":
		m := ppb.MethodA
		if name == "ppb:b" {
			m = ppb.MethodB
		}
		s, err := ppb.New(cfg, m)
		if err != nil {
			return nil, nil, err
		}
		return sim.NewPPB(s), s, nil
	case "staggered":
		s, err := staggered.New(cfg)
		if err != nil {
			return nil, nil, err
		}
		return sim.NewStaggered(s), s, nil
	default:
		return nil, nil, fmt.Errorf("unknown scheme %q", name)
	}
}

func runBatch(cfg vod.Config, policyName string, channels int, reqRate, patience float64, clients int, seed uint64, traceN int) error {
	pol, err := batch.PolicyByName(policyName)
	if err != nil {
		return err
	}
	cat, err := catalog.New(cfg.Videos, catalog.DefaultSkew, cfg.LengthMin, cfg.RateMbps)
	if err != nil {
		return err
	}
	gen, err := workload.NewGenerator(workload.Config{RatePerMin: reqRate, Seed: seed, MeanPatienceMin: patience}, cat)
	if err != nil {
		return err
	}
	probs := make([]float64, cfg.Videos)
	for i := range probs {
		probs[i] = cat.Prob(i)
	}
	var tr *trace.Buffer
	if traceN > 0 {
		tr = trace.New(traceN)
	}
	st, err := batch.Run(batch.ServerConfig{
		Channels: channels, Videos: cfg.Videos, LengthMin: cfg.LengthMin, Popularity: probs, Trace: tr,
	}, pol, gen.Take(clients))
	if err != nil {
		return err
	}
	fmt.Printf("policy        %s  (%d channels, %g req/min, %d videos)\n", pol.Name(), channels, reqRate, cfg.Videos)
	fmt.Printf("served        %d   reneged %d   pending %d\n", st.Served, st.Reneged, st.Pending)
	fmt.Printf("wait (min)    %s\n", st.WaitMin.String())
	fmt.Printf("batch size    %s\n", st.BatchSize.String())
	fmt.Printf("channel util  %.1f%%\n", 100*st.ChannelBusyFrac)
	if tr != nil {
		fmt.Println("\nevent journal:")
		if _, err := tr.WriteTo(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}
