// Command skyfigs regenerates every table and figure of the paper's
// evaluation section from this repository's implementations.
//
// Usage:
//
//	skyfigs -figure 7            # one figure (1 2 3 4 5a 5b 6 7 8)
//	skyfigs -table 1 -B 320      # one table at a bandwidth
//	skyfigs -all                 # everything
//	skyfigs -figure 8 -csv       # machine-readable output
//	skyfigs -crossvalidate       # simulation vs closed forms
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"time"

	"skyscraper/internal/bench"
	"skyscraper/internal/core"
	"skyscraper/internal/textplot"
	"skyscraper/internal/vod"
)

func main() {
	var (
		figure    = flag.String("figure", "", "figure to regenerate: 1, 2, 3, 4, 5a, 5b, 6, 7 or 8")
		table     = flag.Int("table", 0, "table to regenerate: 1 or 2")
		all       = flag.Bool("all", false, "regenerate everything")
		bandwidth = flag.Float64("B", 320, "bandwidth (Mbit/s) for tables and transition figures")
		step      = flag.Float64("step", 20, "bandwidth sweep step (Mbit/s) for figures 5-8")
		csv       = flag.Bool("csv", false, "emit CSV instead of ASCII plots")
		crossVal  = flag.Bool("crossvalidate", false, "print simulation-vs-analysis table")
		parallel  = flag.Bool("parallel", true, "evaluate a figure's bandwidth points concurrently (values are identical either way)")
	)
	flag.Parse()
	bench.SetParallel(*parallel)
	start := time.Now()
	if err := run(*figure, *table, *all, *bandwidth, *step, *csv, *crossVal); err != nil {
		fmt.Fprintln(os.Stderr, "skyfigs:", err)
		os.Exit(1)
	}
	// Wall-clock goes to stderr so CSV output stays machine-readable; it
	// makes the scheme-cache and parallel-point wins visible from the CLI.
	fmt.Fprintf(os.Stderr, "skyfigs: regenerated in %v (parallel=%v, %d scheme constructions)\n",
		time.Since(start).Round(time.Microsecond), *parallel, bench.CacheBuilds())
}

func run(figure string, table int, all bool, bandwidth, step float64, csv, crossVal bool) error {
	if all {
		for _, f := range []string{"1", "2", "3", "4", "5a", "5b", "6", "7", "8"} {
			if err := emitFigure(f, bandwidth, step, csv); err != nil {
				return err
			}
		}
		for _, t := range []int{1, 2} {
			if err := emitTable(t, bandwidth); err != nil {
				return err
			}
		}
		return nil
	}
	if crossVal {
		return emitCrossValidation(step)
	}
	if figure != "" {
		return emitFigure(figure, bandwidth, step, csv)
	}
	if table != 0 {
		return emitTable(table, bandwidth)
	}
	flag.Usage()
	return fmt.Errorf("nothing to do: pass -figure, -table, -all or -crossvalidate")
}

func emitFigure(fig string, bandwidth, step float64, csv bool) error {
	switch fig {
	case "1", "2", "3", "4":
		return emitTransitionFigure(fig, bandwidth)
	}
	bands := bench.Bandwidths(step)
	var (
		curves []bench.Curve
		title  string
		ylab   string
		logY   bool
	)
	switch fig {
	case "5a":
		curves, title, ylab = bench.Figure5a(bands), "Figure 5(a): values of K and P", "parameter value"
	case "5b":
		curves, title, ylab = bench.Figure5b(bands), "Figure 5(b): value of alpha", "alpha"
	case "6":
		curves, title, ylab, logY = bench.Figure6(bands), "Figure 6: disk bandwidth requirement", "MByte/s", true
	case "7":
		curves, title, ylab, logY = bench.Figure7(bands), "Figure 7: access latency", "minutes", true
	case "8":
		curves, title, ylab, logY = bench.Figure8(bands), "Figure 8: storage requirement", "MByte", true
	default:
		return fmt.Errorf("unknown figure %q", fig)
	}
	if csv {
		fmt.Printf("# %s\n", title)
		fmt.Print("bandwidthMbps")
		for _, c := range curves {
			fmt.Printf(",%s", c.Name)
		}
		fmt.Println()
		for i, b := range bands {
			fmt.Printf("%g", b)
			for _, c := range curves {
				if math.IsNaN(c.Y[i]) {
					fmt.Print(",")
				} else {
					fmt.Printf(",%g", c.Y[i])
				}
			}
			fmt.Println()
		}
		return nil
	}
	series := make([]textplot.Series, len(curves))
	for i, c := range curves {
		series[i] = textplot.Series{Name: c.Name, X: c.X, Y: c.Y}
	}
	p := textplot.Plot{Title: title, XLabel: "network-I/O bandwidth (Mb/s)", YLabel: ylab, LogY: logY, Series: series, Width: 76, Height: 22}
	fmt.Println(p.Render())
	return nil
}

// emitTransitionFigure renders the Figure 1-4 family: buffer occupancy
// across group transitions at the best and worst arrival phases.
func emitTransitionFigure(fig string, bandwidth float64) error {
	// Pick a width that makes the figure's transition the last one of
	// the fragmentation, as the paper's analysis does.
	widths := map[string]int64{"1": 2, "2": 5, "3": 12, "4": 12}
	titles := map[string]string{
		"1": "Figure 1: transition (1) -> (2,2)",
		"2": "Figure 2: transition (A,A) -> (2A+1,2A+1), A even",
		"3": "Figure 3: transition (A,A) -> (2A+2,2A+2), even start",
		"4": "Figure 4: transition (A,A) -> (2A+2,2A+2), odd start",
	}
	sch, err := core.New(vod.DefaultConfig(bandwidth), widths[fig])
	if err != nil {
		return err
	}
	best, worst, err := bench.Transitions(sch, 4000)
	if err != nil {
		return err
	}
	fmt.Printf("%s  (K=%d, W=%d, D1=%.4f min)\n", titles[fig], sch.K(), widths[fig], sch.UnitMinutes())
	fmt.Printf("  best phase %d: max buffer %d units (%g Mbit)\n",
		best.Phase, best.MaxUnits, float64(best.MaxUnits)*60*sch.Config().RateMbps*sch.UnitMinutes())
	fmt.Printf("  worst phase %d: max buffer %d units (%g Mbit); bound 60*b*D1*(W-1) = %g Mbit\n",
		worst.Phase, worst.MaxUnits,
		float64(worst.MaxUnits)*60*sch.Config().RateMbps*sch.UnitMinutes(), sch.BufferMbit())
	// Render the worst-phase occupancy curve like the paper's hand-drawn
	// "overall effect" plot.
	xs := make([]float64, len(worst.Points))
	ys := make([]float64, len(worst.Points))
	for i, pt := range worst.Points {
		xs[i] = float64(pt.Unit - worst.Phase)
		ys[i] = float64(pt.Occupancy)
	}
	p := textplot.Plot{
		Title:  "  buffer occupancy at the worst phase (units of 60*b*D1)",
		XLabel: "time since playback start (D1 units)",
		YLabel: "buffered units",
		Series: []textplot.Series{{Name: "overall effect", X: xs, Y: ys}},
		Width:  76, Height: 14,
	}
	fmt.Println(p.Render())
	return nil
}

func emitTable(n int, bandwidth float64) error {
	switch n {
	case 1:
		rows := bench.Table1(bandwidth)
		out := make([][]string, len(rows))
		for i, r := range rows {
			out[i] = []string{
				r.Scheme, r.IOFormula, fmtNaN(r.IOMbps), r.LatencyFormula, fmtNaN(r.LatencyMin),
				r.BufferFormula, fmtNaN(r.BufferMbit),
			}
		}
		fmt.Printf("Table 1: performance computation at B = %g Mbit/s (M=10, D=120, b=1.5)\n", bandwidth)
		fmt.Println(textplot.Table(
			[]string{"scheme", "I/O bw formula", "Mb/s", "latency formula", "min", "buffer formula", "Mbit"}, out))
	case 2:
		rows := bench.Table2(bandwidth)
		out := make([][]string, len(rows))
		for i, r := range rows {
			p := "-"
			if r.P > 0 {
				p = strconv.Itoa(r.P)
			}
			a := "-"
			if r.Alpha > 0 {
				a = fmt.Sprintf("%.4f", r.Alpha)
			}
			out[i] = []string{r.Scheme, r.KRule, strconv.Itoa(r.K), r.PRule, p, r.ARule, a, r.Comment}
		}
		fmt.Printf("Table 2: design parameter determination at B = %g Mbit/s\n", bandwidth)
		fmt.Println(textplot.Table(
			[]string{"scheme", "K rule", "K", "P rule", "P", "alpha rule", "alpha", "notes"}, out))
	default:
		return fmt.Errorf("unknown table %d", n)
	}
	return nil
}

func emitCrossValidation(step float64) error {
	if step < 50 {
		step = 100
	}
	rows, err := bench.CrossValidate(bench.Bandwidths(step), 120)
	if err != nil {
		return err
	}
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			r.Scheme, fmt.Sprintf("%g", r.Bandwidth),
			fmt.Sprintf("%.4f", r.AnalyticLatency), fmt.Sprintf("%.4f", r.MeasuredLatency),
			fmt.Sprintf("%.2f", r.AnalyticBufferMB), fmt.Sprintf("%.2f", r.MeasuredBufferMB),
			strconv.Itoa(r.MeasuredMaxStream),
		}
	}
	fmt.Println("Simulation vs closed forms (measured values are worst cases over sampled arrival phases)")
	fmt.Println(textplot.Table(
		[]string{"scheme", "B", "latency(formula)", "latency(sim)", "bufMB(formula)", "bufMB(sim)", "streams"}, out))
	return nil
}

func fmtNaN(v float64) string {
	if math.IsNaN(v) {
		return "infeasible"
	}
	return fmt.Sprintf("%.4g", v)
}
