// Command skyclient joins a running skyserver, receives one full video
// with the paper's two-loader client, verifies every byte, and reports the
// session's latency, buffer and jitter statistics.
//
// Usage:
//
//	skyclient -server 127.0.0.1:PORT -video 0
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"skyscraper/internal/client"
	"skyscraper/internal/wire"
)

func main() {
	var (
		addr      = flag.String("server", "", "server control address (required)")
		video     = flag.Int("video", 0, "video index to watch")
		verbose   = flag.Bool("v", false, "log protocol details")
		queryFlag = flag.Bool("stats", false, "query server stats instead of watching")
		rcvbuf    = flag.Int("rcvbuf", 0,
			"kernel receive-buffer bytes per tuner socket (SetReadBuffer); the server's batched egress delivers in bursts, so size this to absorb one (0 = 4 MiB default)")
	)
	flag.Parse()
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "skyclient: -server is required")
		flag.Usage()
		os.Exit(2)
	}
	if *queryFlag {
		if err := queryStats(*addr); err != nil {
			fmt.Fprintln(os.Stderr, "skyclient:", err)
			os.Exit(1)
		}
		return
	}
	cfg := client.Config{ServerAddr: *addr, Video: *video, RecvBufBytes: *rcvbuf}
	if *verbose {
		cfg.Logf = log.Printf
	}
	stats, err := client.Watch(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "skyclient:", err)
		os.Exit(1)
	}
	fmt.Printf("video %d received and verified\n", *video)
	fmt.Printf("  wait            %.3f units of D1\n", stats.WaitUnits)
	fmt.Printf("  bytes           %d (all content-verified)\n", stats.Bytes)
	fmt.Printf("  groups          %d\n", stats.Groups)
	fmt.Printf("  max buffer      %d bytes\n", stats.MaxBufferBytes)
	fmt.Printf("  late chunks     %d\n", stats.LateChunks)
	fmt.Printf("  duplicates      %d\n", stats.DuplicateChunks)
	// Stripe ledger — absent when the server broadcasts no parity.
	if stats.FecHeals > 0 || stats.StripeDefeats > 0 {
		fmt.Printf("  fec heals       %d (zero control round trips)\n", stats.FecHeals)
		fmt.Printf("  stripe defeats  %d (escalated to the repair ladder)\n", stats.StripeDefeats)
	}
}

// queryStats asks the server for its operational snapshot.
func queryStats(addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := wire.WriteControl(conn, &wire.Control{Kind: wire.KindStats}); err != nil {
		return err
	}
	m, err := wire.ReadControl(bufio.NewReader(conn))
	if err != nil {
		return err
	}
	if m.Kind != wire.KindStatsOK || m.Stats == nil {
		return fmt.Errorf("unexpected reply %q: %s", m.Kind, m.Error)
	}
	fmt.Printf("uptime          %v\n", time.Duration(m.Stats.UptimeNanos).Round(time.Millisecond))
	fmt.Printf("channel pacers  %d\n", m.Stats.Channels)
	fmt.Printf("memberships     %d\n", m.Stats.Members)
	fmt.Printf("datagrams sent  %d\n", m.Stats.DatagramsSent)
	// Egress ledger — absent (zero) when talking to an older server.
	if m.Stats.EgressShards > 0 {
		fmt.Printf("egress shards   %d\n", m.Stats.EgressShards)
		fmt.Printf("egress wakeups  %d\n", m.Stats.EgressWakeups)
	}
	if m.Stats.EgressSyscalls > 0 {
		fmt.Printf("egress batches  %d (%d bytes batched)\n", m.Stats.EgressBatches, m.Stats.BatchedBytes)
		fmt.Printf("send syscalls   %d (%.1f datagrams/syscall)\n",
			m.Stats.EgressSyscalls,
			float64(m.Stats.DatagramsSent)/float64(m.Stats.EgressSyscalls))
	}
	// Super-frame and io_uring rows — absent (zero) when the kernel lacks
	// the fast path or the server predates it.
	if m.Stats.Superframes > 0 {
		fmt.Printf("superframes     %d carrying %d segments (%.1f segments/superframe)\n",
			m.Stats.Superframes, m.Stats.GSOSegments,
			float64(m.Stats.GSOSegments)/float64(m.Stats.Superframes))
	}
	if m.Stats.GSOFallbacks > 0 {
		fmt.Printf("gso fallbacks   %d\n", m.Stats.GSOFallbacks)
	}
	if m.Stats.UringSubmits > 0 {
		fmt.Printf("uring submits   %d carrying %d sqes (%.1f sqe depth)\n",
			m.Stats.UringSubmits, m.Stats.UringSQEs,
			float64(m.Stats.UringSQEs)/float64(m.Stats.UringSubmits))
	}
	// Parity stripe row — absent (zero) when FEC is off or the server
	// predates it.
	if m.Stats.ParityFrames > 0 {
		fmt.Printf("parity frames   %d (%d bytes) broadcast proactively\n",
			m.Stats.ParityFrames, m.Stats.ParityBytes)
	}
	// Ingress ladder rows — absent (zero) on a pure egress server or one
	// that predates the receive-side ledger.
	if m.Stats.ReadSyscalls > 0 {
		fmt.Printf("read syscalls   %d (%.1f datagrams/readsyscall)\n",
			m.Stats.ReadSyscalls,
			float64(m.Stats.BatchedReads)/float64(m.Stats.ReadSyscalls))
	}
	if m.Stats.GroSegments > 0 {
		fmt.Printf("gro segments    %d split from coalesced super-frames\n", m.Stats.GroSegments)
	}
	if m.Stats.GroFallbacks > 0 {
		fmt.Printf("gro fallbacks   %d\n", m.Stats.GroFallbacks)
	}
	if m.Stats.ReadErrors > 0 {
		fmt.Printf("read errors     %d (backoff-throttled)\n", m.Stats.ReadErrors)
	}
	return nil
}
