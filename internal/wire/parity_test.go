package wire

import (
	"bytes"
	"errors"
	"testing"
)

func mustParityFrame(t testing.TB, count int, block []byte, index uint8) []byte {
	t.Helper()
	payload := AppendParityPayload(nil, count, block)
	frame, err := EncodeParityFrame(nil, 3, 2, 7, 8192, 65536, index, payload, PayloadCRC(payload))
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

func TestParityRoundTrip(t *testing.T) {
	block := bytes.Repeat([]byte{0xC3}, 1024)
	frame := mustParityFrame(t, 8, block, 0)
	if !IsParity(frame) {
		t.Fatal("IsParity = false on an encoded parity frame")
	}
	p, err := DecodeParity(frame)
	if err != nil {
		t.Fatal(err)
	}
	if p.Video != 3 || p.Channel != 2 || p.Seq != 7 || p.Base != 8192 || p.Total != 65536 {
		t.Fatalf("header fields: %+v", p)
	}
	if p.Index != 0 || p.Count != 8 || !bytes.Equal(p.Block, block) {
		t.Fatalf("stripe fields: index %d count %d block %d bytes", p.Index, p.Count, len(p.Block))
	}
	for i := 0; i < 8; i++ {
		if !p.Covers(i) {
			t.Fatalf("stripe does not cover chunk %d", i)
		}
	}
	if p.Covers(8) || p.Covers(-1) {
		t.Fatal("stripe covers out-of-range chunk")
	}
}

// TestParityRejectedByDataDecoder pins the compatibility story: a parity
// frame presented to the data-chunk decoder fails with ErrBadReserved
// (old receivers drop it as garbage rather than mis-parse it), and the
// identity peek the injector and mux route on still works.
func TestParityRejectedByDataDecoder(t *testing.T) {
	frame := mustParityFrame(t, 4, make([]byte, 64), 1)
	if _, err := Decode(frame); !errors.Is(err, ErrBadReserved) {
		t.Fatalf("Decode(parity) = %v, want ErrBadReserved", err)
	}
	video, channel, seq, offset, ok := PeekID(frame)
	if !ok || video != 3 || channel != 2 || seq != 7 || offset != 8192 {
		t.Fatalf("PeekID(parity) = %d/%d seq %d off %d ok %v", video, channel, seq, offset, ok)
	}
	if err := PatchSeq(frame, 42); err != nil {
		t.Fatal(err)
	}
	p, err := DecodeParity(frame)
	if err != nil || p.Seq != 42 {
		t.Fatalf("after PatchSeq: seq %d err %v", p.Seq, err)
	}
	if IsParity(make([]byte, HeaderSize)) {
		t.Fatal("IsParity accepted an all-zero header")
	}
}

func TestParityDecodeRejectsMalformed(t *testing.T) {
	good := mustParityFrame(t, 8, make([]byte, 32), 0)
	cases := map[string]func() []byte{
		"zero count": func() []byte {
			payload := append([]byte{0}, make([]byte, 33)...)
			f, _ := EncodeParityFrame(nil, 1, 1, 0, 0, 0, 0, payload, PayloadCRC(payload))
			return f
		},
		"count past cap": func() []byte {
			payload := append([]byte{MaxFecGroup + 1}, make([]byte, 64)...)
			f, _ := EncodeParityFrame(nil, 1, 1, 0, 0, 0, 0, payload, PayloadCRC(payload))
			return f
		},
		"short payload": func() []byte {
			payload := []byte{8, 0xFF} // bitmap but no block
			f, _ := EncodeParityFrame(nil, 1, 1, 0, 0, 0, 0, payload, PayloadCRC(payload))
			return f
		},
		"bits past count": func() []byte {
			payload := append([]byte{4, 0xFF}, make([]byte, 16)...) // count 4, bits 4..7 set
			f, _ := EncodeParityFrame(nil, 1, 1, 0, 0, 0, 0, payload, PayloadCRC(payload))
			return f
		},
		"bad crc": func() []byte {
			f := append([]byte(nil), good...)
			f[len(f)-1] ^= 1
			return f
		},
	}
	for name, mk := range cases {
		frame := mk()
		if _, err := DecodeParity(frame); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := EncodeParityFrame(nil, 1, 1, 0, 0, 0, 2, []byte{1, 1, 0}, 0); err == nil {
		t.Error("encoder accepted parity index 2")
	}
}

// TestParityShortTailBitmap checks the canonical all-ones bitmap for a
// count that does not fill its final byte.
func TestParityShortTailBitmap(t *testing.T) {
	payload := AppendParityPayload(nil, 11, make([]byte, 8))
	if payload[0] != 11 || payload[1] != 0xFF || payload[2] != 0x07 {
		t.Fatalf("payload prefix = %x", payload[:3])
	}
	frame, err := EncodeParityFrame(nil, 1, 1, 0, 0, 0, 0, payload, PayloadCRC(payload))
	if err != nil {
		t.Fatal(err)
	}
	p, err := DecodeParity(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Covers(10) || p.Covers(11) {
		t.Fatal("coverage bitmap wrong at the tail")
	}
}

// TestGfField pins the GF(256) arithmetic the Q parity rests on:
// mul/div inverses, the generator's order, and the accumulate helpers
// against a byte-wise reference.
func TestGfField(t *testing.T) {
	if GfExpPow(0) != 1 || GfExpPow(255) != 1 {
		t.Fatal("alpha^0 or alpha^255 != 1")
	}
	for a := 1; a < 256; a++ {
		for _, b := range []int{1, 2, 29, 127, 255} {
			m := GfMul(byte(a), byte(b))
			if GfDiv(m, byte(b)) != byte(a) {
				t.Fatalf("div(mul(%d,%d),%d) != %d", a, b, b, a)
			}
		}
		if GfMul(byte(a), 0) != 0 || GfMul(0, byte(a)) != 0 {
			t.Fatal("mul by zero != zero")
		}
	}
	// Distributivity over XOR, the property erasure solving uses:
	// c·(x^y) == c·x ^ c·y.
	for _, c := range []byte{2, 7, 0x1d, 0xFF} {
		for x := 0; x < 256; x += 17 {
			for y := 0; y < 256; y += 23 {
				if GfMul(c, byte(x)^byte(y)) != GfMul(c, byte(x))^GfMul(c, byte(y)) {
					t.Fatalf("distributivity fails at c=%d x=%d y=%d", c, x, y)
				}
			}
		}
	}
	dst := make([]byte, 37) // odd length exercises the word/byte split
	src := make([]byte, 37)
	ref := make([]byte, 37)
	for i := range src {
		src[i] = byte(i * 7)
		dst[i] = byte(i * 13)
		ref[i] = dst[i]
	}
	XorAccum(dst, src)
	for i := range ref {
		ref[i] ^= src[i]
	}
	if !bytes.Equal(dst, ref) {
		t.Fatal("XorAccum disagrees with byte-wise reference")
	}
	GfMulAccum(dst, src, 0x1d)
	for i := range ref {
		ref[i] ^= GfMul(0x1d, src[i])
	}
	if !bytes.Equal(dst, ref) {
		t.Fatal("GfMulAccum disagrees with byte-wise reference")
	}
}

// TestParityOverhead pins the payload-size arithmetic the frame cache
// budgets with.
func TestParityOverhead(t *testing.T) {
	for _, tc := range []struct{ count, block, want int }{
		{1, 1024, 1 + 1 + 1024},
		{8, 1024, 1 + 1 + 1024},
		{9, 1024, 1 + 2 + 1024},
		{64, 512, 1 + 8 + 512},
	} {
		if got := ParityOverhead(tc.count, tc.block); got != tc.want {
			t.Errorf("ParityOverhead(%d,%d) = %d, want %d", tc.count, tc.block, got, tc.want)
		}
		payload := AppendParityPayload(nil, tc.count, make([]byte, tc.block))
		if len(payload) != tc.want {
			t.Errorf("AppendParityPayload(%d,%d) = %d bytes, want %d", tc.count, tc.block, len(payload), tc.want)
		}
	}
}
