package wire

import (
	"bufio"
	"bytes"
	"testing"
)

// FuzzDecode feeds arbitrary frames to the chunk decoder: it must never
// panic, and anything it accepts must re-encode to the identical frame.
// `go test` runs the seed corpus; `go test -fuzz=FuzzDecode` explores.
func FuzzDecode(f *testing.F) {
	good, err := (&Chunk{Video: 1, Channel: 2, Seq: 3, Offset: 4, Total: 99, Payload: []byte("seed")}).Encode(nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add(good[:headerSize])
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Decode(data)
		if err != nil {
			return
		}
		re, err := c.Encode(nil)
		if err != nil {
			t.Fatalf("accepted chunk failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not idempotent:\n in: %x\nout: %x", data, re)
		}
	})
}

// FuzzChunkDecode fuzzes the data-chunk decoder through the full cached-
// frame life cycle: any accepted frame must survive Encode → PatchSeq →
// Decode with only the Seq field changed — the property the server's
// repetition-invariant frame cache rests on. Seeds cover the boundary
// payload sizes (0, 1, MaxPayload).
func FuzzChunkDecode(f *testing.F) {
	for _, n := range []int{0, 1, MaxPayload} {
		payload := make([]byte, n)
		for i := range payload {
			payload[i] = byte(i)
		}
		frame, err := (&Chunk{Video: 1, Channel: 2, Seq: 3, Offset: 4, Total: uint32(n), Payload: payload}).Encode(nil)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame, uint32(n)*7)
	}
	f.Add([]byte{}, uint32(0))
	f.Add(bytes.Repeat([]byte{0xA5}, headerSize), uint32(1))
	f.Fuzz(func(t *testing.T, data []byte, seq uint32) {
		c, err := Decode(data)
		if err != nil {
			// Rejected frames must also be rejected by the patcher unless
			// only their payload is damaged (PatchSeq never reads it).
			return
		}
		re, err := c.Encode(nil)
		if err != nil {
			t.Fatalf("accepted chunk failed to re-encode: %v", err)
		}
		if err := PatchSeq(re, seq); err != nil {
			t.Fatalf("PatchSeq on a fresh encode: %v", err)
		}
		got, err := Decode(re)
		if err != nil {
			t.Fatalf("patched frame stopped decoding: %v", err)
		}
		if got.Seq != seq {
			t.Fatalf("patched Seq = %d, want %d", got.Seq, seq)
		}
		if got.Video != c.Video || got.Channel != c.Channel || got.Offset != c.Offset ||
			got.Total != c.Total || !bytes.Equal(got.Payload, c.Payload) {
			t.Fatalf("PatchSeq disturbed a non-Seq field: %+v vs %+v", got, c)
		}
	})
}

// FuzzReadControl feeds arbitrary lines to the control decoder: no panics,
// and accepted messages must carry a kind.
func FuzzReadControl(f *testing.F) {
	f.Add([]byte(`{"kind":"hello"}` + "\n"))
	f.Add([]byte(`{"kind":"join","video":1,"channel":2,"port":3}` + "\n"))
	f.Add([]byte(`{"kind":"repair","repair":{"video":1,"channel":2,"seq":7,"offset":1024,"length":512}}` + "\n"))
	f.Add([]byte(`{"kind":"repairok","repair":{"video":1,"channel":2,"seq":7,"offset":1024,"length":4,"data":"3q2+7w=="}}` + "\n"))
	f.Add([]byte(`{"kind":"repair","repair":{"offset":-9223372036854775808,"length":-1}}` + "\n"))
	f.Add([]byte(`{"kind":"repair"`)) // truncated mid-message
	f.Add([]byte("garbage\n"))
	f.Add([]byte("{}\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadControl(bufio.NewReader(bytes.NewReader(data)))
		if err == nil && m.Kind == "" {
			t.Fatal("accepted a kindless control message")
		}
	})
}
