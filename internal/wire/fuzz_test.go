package wire

import (
	"bufio"
	"bytes"
	"reflect"
	"testing"
)

// FuzzDecode feeds arbitrary frames to the chunk decoder: it must never
// panic, and anything it accepts must re-encode to the identical frame.
// `go test` runs the seed corpus; `go test -fuzz=FuzzDecode` explores.
func FuzzDecode(f *testing.F) {
	good, err := (&Chunk{Video: 1, Channel: 2, Seq: 3, Offset: 4, Total: 99, Payload: []byte("seed")}).Encode(nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add(good[:headerSize])
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Decode(data)
		if err != nil {
			return
		}
		re, err := c.Encode(nil)
		if err != nil {
			t.Fatalf("accepted chunk failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not idempotent:\n in: %x\nout: %x", data, re)
		}
	})
}

// FuzzChunkDecode fuzzes the data-chunk decoder through the full cached-
// frame life cycle: any accepted frame must survive Encode → PatchSeq →
// Decode with only the Seq field changed — the property the server's
// repetition-invariant frame cache rests on. Seeds cover the boundary
// payload sizes (0, 1, MaxPayload) plus KindParity frames, which share
// the header layout: the data decoder must reject them (reserved byte),
// the parity decoder must accept them, and an accepted parity frame
// must survive the same encode → PatchSeq → decode cycle, since parity
// frames live in the same cache and ride the same batched egress.
func FuzzChunkDecode(f *testing.F) {
	for _, n := range []int{0, 1, MaxPayload} {
		payload := make([]byte, n)
		for i := range payload {
			payload[i] = byte(i)
		}
		frame, err := (&Chunk{Video: 1, Channel: 2, Seq: 3, Offset: 4, Total: uint32(n), Payload: payload}).Encode(nil)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame, uint32(n)*7)
	}
	for _, count := range []int{1, 8, MaxFecGroup} {
		payload := AppendParityPayload(nil, count, bytes.Repeat([]byte{0x5A}, 64))
		frame, err := EncodeParityFrame(nil, 1, 2, 3, 4096, 65536, 0, payload, PayloadCRC(payload))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame, uint32(count)*11)
	}
	f.Add([]byte{}, uint32(0))
	f.Add(bytes.Repeat([]byte{0xA5}, headerSize), uint32(1))
	f.Fuzz(func(t *testing.T, data []byte, seq uint32) {
		if p, err := DecodeParity(data); err == nil {
			if _, err := Decode(data); err == nil {
				t.Fatal("frame accepted as both data chunk and parity")
			}
			re, err := EncodeParityFrame(nil, p.Video, p.Channel, p.Seq, p.Base, p.Total, p.Index, data[headerSize:], PayloadCRC(data[headerSize:]))
			if err != nil {
				t.Fatalf("accepted parity failed to re-encode: %v", err)
			}
			if !bytes.Equal(re, data) {
				t.Fatalf("parity decode/encode not idempotent:\n in: %x\nout: %x", data, re)
			}
			if err := PatchSeq(re, seq); err != nil {
				t.Fatalf("PatchSeq on a fresh parity encode: %v", err)
			}
			got, err := DecodeParity(re)
			if err != nil {
				t.Fatalf("patched parity stopped decoding: %v", err)
			}
			if got.Seq != seq {
				t.Fatalf("patched parity Seq = %d, want %d", got.Seq, seq)
			}
			if got.Video != p.Video || got.Channel != p.Channel || got.Base != p.Base ||
				got.Total != p.Total || got.Index != p.Index || got.Count != p.Count ||
				!bytes.Equal(got.Bitmap, p.Bitmap) || !bytes.Equal(got.Block, p.Block) {
				t.Fatalf("PatchSeq disturbed a non-Seq parity field: %+v vs %+v", got, p)
			}
		}
		c, err := Decode(data)
		if err != nil {
			// Rejected frames must also be rejected by the patcher unless
			// only their payload is damaged (PatchSeq never reads it).
			return
		}
		if IsParity(data) {
			t.Fatal("data decoder accepted a parity-marked frame")
		}
		re, err := c.Encode(nil)
		if err != nil {
			t.Fatalf("accepted chunk failed to re-encode: %v", err)
		}
		if err := PatchSeq(re, seq); err != nil {
			t.Fatalf("PatchSeq on a fresh encode: %v", err)
		}
		got, err := Decode(re)
		if err != nil {
			t.Fatalf("patched frame stopped decoding: %v", err)
		}
		if got.Seq != seq {
			t.Fatalf("patched Seq = %d, want %d", got.Seq, seq)
		}
		if got.Video != c.Video || got.Channel != c.Channel || got.Offset != c.Offset ||
			got.Total != c.Total || !bytes.Equal(got.Payload, c.Payload) {
			t.Fatalf("PatchSeq disturbed a non-Seq field: %+v vs %+v", got, c)
		}
	})
}

// FuzzControlDecode fuzzes the control-verb parse path the server's
// handler loop runs on every request line, mirroring FuzzChunkDecode: any
// accepted message — truncated, garbage, or hostile field values — must
// survive a canonical re-encode (WriteControl) and re-decode to the
// identical message, so nothing a peer can say desynchronizes the two
// ends' view of a verb. Seeded with every control kind, including the
// Busy admission reply.
func FuzzControlDecode(f *testing.F) {
	seeds := []*Control{
		{Kind: KindHello},
		{Kind: KindWelcome, Welcome: &Welcome{Videos: 2, ChannelsPerVideo: 5, Width: 2,
			UnitNanos: 8e7, EpochUnixNano: 1234, SizeUnits: []int64{1, 2, 2, 2, 2}, BytesPerUnit: 4096, ChunkBytes: 1024}},
		// KindParity is a data-plane frame kind, not a control verb, but
		// the capability that announces it travels here: seed the Welcome
		// that advertises each stripe mode.
		{Kind: KindWelcome, Welcome: &Welcome{Videos: 1, ChannelsPerVideo: 3, Width: 2,
			UnitNanos: 8e7, EpochUnixNano: 1234, SizeUnits: []int64{1, 2, 2}, BytesPerUnit: 4096, ChunkBytes: 1024,
			NackRepair: true, FecGroup: 8, FecMode: FecModeXOR}},
		{Kind: KindWelcome, Welcome: &Welcome{Videos: 1, ChannelsPerVideo: 3, Width: 2,
			UnitNanos: 8e7, EpochUnixNano: 1234, SizeUnits: []int64{1, 2, 2}, BytesPerUnit: 4096, ChunkBytes: 1024,
			NackRepair: true, FecGroup: 16, FecMode: FecModeRS}},
		{Kind: KindJoin, Video: 1, Channel: 2, Port: 45678},
		{Kind: KindJoined, Video: 1, Channel: 2},
		{Kind: KindLeave, Video: 1, Channel: 2},
		{Kind: KindError, Error: "join: no channel 9/9"},
		{Kind: KindBye},
		{Kind: KindStats},
		{Kind: KindStatsOK, Stats: &Stats{UptimeNanos: 5, DatagramsSent: 6, Channels: 7, Members: 8,
			RepairsServed: 9, RepairBytes: 10, BusyReplies: 11, StormResends: 12, SuppressedRepairs: 13,
			RepairTokens: 14, PacerRestarts: 15, PacerDriftEvents: 16, Draining: true}},
		{Kind: KindRepair, Repair: &Repair{Video: 1, Channel: 2, Seq: 7, Offset: 1024, Length: 512}},
		{Kind: KindRepairOK, Repair: &Repair{Video: 1, Channel: 2, Seq: 7, Offset: 1024, Length: 4, Data: []byte{0xDE, 0xAD, 0xBE, 0xEF}}},
		{Kind: KindBusy, RetryAfterNanos: 25e6},
		{Kind: KindBusy}, // Busy(0): re-listen after a coalesced multicast re-send
		{Kind: KindNack, Nack: NackFromChunks(1, 2, 7, []int{3, 4, 9})},
		{Kind: KindNackOK, Nack: &Nack{Video: 1, Channel: 2, Seq: 7, BaseChunk: 3, Bitmap: []byte{0x43}}},
		{Kind: KindNackOK, Nack: &Nack{Video: 1, Channel: 2, Seq: 7, BaseChunk: 3, Bitmap: []byte{0, 0}}}, // nothing accepted
	}
	for _, m := range seeds {
		var buf bytes.Buffer
		if err := WriteControl(&buf, m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte(`{"kind":"busy","retryAfterNanos":-1}` + "\n"))
	f.Add([]byte(`{"kind":"repair"`)) // truncated mid-message
	f.Add([]byte(`{"kind":"repair","repair":{"offset":-9223372036854775808,"length":-1}}` + "\n"))
	// Malformed gap bitmaps: missing payload, empty, non-canonical
	// trailing zero, negative base, oversized. All must be rejected with
	// a typed error, never accepted or panicked on.
	f.Add([]byte(`{"kind":"nack"}` + "\n"))
	f.Add([]byte(`{"kind":"nack","nack":{"video":1,"channel":2,"bitmap":""}}` + "\n"))
	f.Add([]byte(`{"kind":"nack","nack":{"video":1,"channel":2,"baseChunk":0,"bitmap":"AQA="}}` + "\n"))
	f.Add([]byte(`{"kind":"nack","nack":{"baseChunk":-1,"bitmap":"AQ=="}}` + "\n"))
	f.Add([]byte(`{"kind":"nackok","nack":{"baseChunk":3,"bitmap":"AAA="}}` + "\n"))
	f.Add([]byte("garbage\n"))
	f.Add([]byte("{}\n"))
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	// A binary KindParity frame arriving on the control line is garbage
	// to this parser; it must be rejected, never mis-parsed.
	parityPayload := AppendParityPayload(nil, 8, bytes.Repeat([]byte{0x5A}, 32))
	if parityFrame, err := EncodeParityFrame(nil, 1, 2, 3, 0, 65536, 0, parityPayload, PayloadCRC(parityPayload)); err == nil {
		f.Add(append(parityFrame, '\n'))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadControl(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		if m.Kind == "" {
			t.Fatal("accepted a kindless control message")
		}
		var buf bytes.Buffer
		if err := WriteControl(&buf, m); err != nil {
			t.Fatalf("accepted message failed to re-encode: %v", err)
		}
		again, err := ReadControl(bufio.NewReader(&buf))
		if err != nil {
			t.Fatalf("canonical re-encode stopped decoding: %v", err)
		}
		if !reflect.DeepEqual(m, again) {
			t.Fatalf("decode/encode/decode not idempotent:\n 1st: %+v\n 2nd: %+v", m, again)
		}
	})
}

// FuzzReadControl feeds arbitrary lines to the control decoder: no panics,
// and accepted messages must carry a kind.
func FuzzReadControl(f *testing.F) {
	f.Add([]byte(`{"kind":"hello"}` + "\n"))
	f.Add([]byte(`{"kind":"join","video":1,"channel":2,"port":3}` + "\n"))
	f.Add([]byte(`{"kind":"repair","repair":{"video":1,"channel":2,"seq":7,"offset":1024,"length":512}}` + "\n"))
	f.Add([]byte(`{"kind":"repairok","repair":{"video":1,"channel":2,"seq":7,"offset":1024,"length":4,"data":"3q2+7w=="}}` + "\n"))
	f.Add([]byte(`{"kind":"nack","nack":{"video":1,"channel":2,"seq":7,"baseChunk":3,"bitmap":"Qw=="}}` + "\n"))
	f.Add([]byte(`{"kind":"nack","nack":{"baseChunk":-1,"bitmap":"AQ=="}}` + "\n"))
	f.Add([]byte(`{"kind":"repair","repair":{"offset":-9223372036854775808,"length":-1}}` + "\n"))
	f.Add([]byte(`{"kind":"repair"`)) // truncated mid-message
	f.Add([]byte("garbage\n"))
	f.Add([]byte("{}\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadControl(bufio.NewReader(bytes.NewReader(data)))
		if err == nil && m.Kind == "" {
			t.Fatal("accepted a kindless control message")
		}
	})
}
