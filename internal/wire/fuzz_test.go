package wire

import (
	"bufio"
	"bytes"
	"testing"
)

// FuzzDecode feeds arbitrary frames to the chunk decoder: it must never
// panic, and anything it accepts must re-encode to the identical frame.
// `go test` runs the seed corpus; `go test -fuzz=FuzzDecode` explores.
func FuzzDecode(f *testing.F) {
	good, err := (&Chunk{Video: 1, Channel: 2, Seq: 3, Offset: 4, Total: 99, Payload: []byte("seed")}).Encode(nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add(good[:headerSize])
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Decode(data)
		if err != nil {
			return
		}
		re, err := c.Encode(nil)
		if err != nil {
			t.Fatalf("accepted chunk failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not idempotent:\n in: %x\nout: %x", data, re)
		}
	})
}

// FuzzReadControl feeds arbitrary lines to the control decoder: no panics,
// and accepted messages must carry a kind.
func FuzzReadControl(f *testing.F) {
	f.Add([]byte(`{"kind":"hello"}` + "\n"))
	f.Add([]byte(`{"kind":"join","video":1,"channel":2,"port":3}` + "\n"))
	f.Add([]byte(`{"kind":"repair","repair":{"video":1,"channel":2,"seq":7,"offset":1024,"length":512}}` + "\n"))
	f.Add([]byte(`{"kind":"repairok","repair":{"video":1,"channel":2,"seq":7,"offset":1024,"length":4,"data":"3q2+7w=="}}` + "\n"))
	f.Add([]byte(`{"kind":"repair","repair":{"offset":-9223372036854775808,"length":-1}}` + "\n"))
	f.Add([]byte(`{"kind":"repair"`)) // truncated mid-message
	f.Add([]byte("garbage\n"))
	f.Add([]byte("{}\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadControl(bufio.NewReader(bytes.NewReader(data)))
		if err == nil && m.Kind == "" {
			t.Fatal("accepted a kindless control message")
		}
	})
}
