package wire

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
)

func TestChunkRoundTrip(t *testing.T) {
	c := Chunk{Video: 3, Channel: 7, Seq: 42, Offset: 1024, Total: 9000, Payload: []byte("fragment data")}
	frame, err := c.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(frame) != EncodedSize(len(c.Payload)) {
		t.Errorf("frame %d bytes, want %d", len(frame), EncodedSize(len(c.Payload)))
	}
	got, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.Video != c.Video || got.Channel != c.Channel || got.Seq != c.Seq ||
		got.Offset != c.Offset || got.Total != c.Total || !bytes.Equal(got.Payload, c.Payload) {
		t.Errorf("round trip mismatch: %+v vs %+v", got, c)
	}
}

func TestChunkRoundTripProperty(t *testing.T) {
	f := func(video, channel uint16, seq, offset, total uint32, payload []byte) bool {
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		c := Chunk{Video: video, Channel: channel, Seq: seq, Offset: offset, Total: total, Payload: payload}
		frame, err := c.Encode(nil)
		if err != nil {
			return false
		}
		got, err := Decode(frame)
		if err != nil {
			return false
		}
		return got.Video == video && got.Channel == channel && got.Seq == seq &&
			got.Offset == offset && got.Total == total && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEncodeAppends(t *testing.T) {
	c := Chunk{Payload: []byte("xyz")}
	prefix := []byte("prefix")
	frame, err := c.Encode(prefix)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(frame, []byte("prefix")) {
		t.Error("Encode did not append to dst")
	}
	if _, err := Decode(frame[len(prefix):]); err != nil {
		t.Errorf("appended frame does not decode: %v", err)
	}
}

func TestDecodeErrors(t *testing.T) {
	good, err := (&Chunk{Payload: []byte("data")}).Encode(nil)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := Decode(good[:10]); !errors.Is(err, ErrShortFrame) {
		t.Errorf("short frame: %v", err)
	}

	bad := append([]byte(nil), good...)
	bad[0] = 0xFF
	if _, err := Decode(bad); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: %v", err)
	}

	bad = append([]byte(nil), good...)
	bad[2] = 99
	if _, err := Decode(bad); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version: %v", err)
	}

	// Corrupt payload byte: CRC must catch it.
	bad = append([]byte(nil), good...)
	bad[len(bad)-1] ^= 0x01
	if _, err := Decode(bad); !errors.Is(err, ErrBadCRC) {
		t.Errorf("corruption: %v", err)
	}

	// Truncated payload: length disagreement.
	if _, err := Decode(good[:len(good)-2]); !errors.Is(err, ErrBadLength) {
		t.Errorf("truncation: %v", err)
	}
}

func TestEncodeRejectsOversize(t *testing.T) {
	c := Chunk{Payload: make([]byte, MaxPayload+1)}
	if _, err := c.Encode(nil); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversize: %v", err)
	}
}

func TestControlRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := []*Control{
		{Kind: KindHello},
		{Kind: KindWelcome, Welcome: &Welcome{
			Videos: 10, ChannelsPerVideo: 6, Width: 12,
			UnitNanos: 50e6, EpochUnixNano: 12345,
			SizeUnits: []int64{1, 2, 2, 5, 5, 12}, BytesPerUnit: 4096, ChunkBytes: 1024,
		}},
		{Kind: KindJoin, Video: 2, Channel: 3, Port: 40001},
		{Kind: KindJoined, Video: 2, Channel: 3},
		{Kind: KindLeave, Video: 2, Channel: 3},
		{Kind: KindError, Error: "no such video"},
		{Kind: KindBye},
	}
	for _, m := range msgs {
		if err := WriteControl(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	r := bufio.NewReader(&buf)
	for i, want := range msgs {
		got, err := ReadControl(r)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if got.Kind != want.Kind || got.Video != want.Video || got.Channel != want.Channel ||
			got.Port != want.Port || got.Error != want.Error {
			t.Errorf("message %d: %+v vs %+v", i, got, want)
		}
		if want.Welcome != nil {
			if got.Welcome == nil || got.Welcome.ChannelsPerVideo != 6 || len(got.Welcome.SizeUnits) != 6 {
				t.Errorf("welcome payload lost: %+v", got.Welcome)
			}
		}
	}
}

func TestReadControlRejectsGarbage(t *testing.T) {
	r := bufio.NewReader(bytes.NewBufferString("not json\n"))
	if _, err := ReadControl(r); !errors.Is(err, ErrBadControl) {
		t.Errorf("garbage: got %v, want ErrBadControl", err)
	}
	r = bufio.NewReader(bytes.NewBufferString("{}\n"))
	if _, err := ReadControl(r); !errors.Is(err, ErrBadControl) {
		t.Errorf("kindless message: got %v, want ErrBadControl", err)
	}
}

func TestReadControlTruncated(t *testing.T) {
	// A line cut off before its newline is a connection dying mid-message:
	// callers should see ErrTruncated, distinct from a clean EOF.
	r := bufio.NewReader(bytes.NewBufferString(`{"kind":"hel`))
	if _, err := ReadControl(r); !errors.Is(err, ErrTruncated) {
		t.Errorf("mid-line cut: got %v, want ErrTruncated", err)
	}
	// Clean EOF between messages passes through untouched.
	r = bufio.NewReader(bytes.NewBufferString(""))
	if _, err := ReadControl(r); !errors.Is(err, io.EOF) {
		t.Errorf("clean close: got %v, want io.EOF", err)
	}
}

func TestRepairRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	req := &Control{Kind: KindRepair, Repair: &Repair{
		Video: 4, Channel: 2, Seq: 17, Offset: 3072, Length: 1024,
	}}
	reply := &Control{Kind: KindRepairOK, Repair: &Repair{
		Video: 4, Channel: 2, Seq: 17, Offset: 3072, Length: 1024,
		Data: bytes.Repeat([]byte{0xAB, 0x5C}, 512),
	}}
	for _, m := range []*Control{req, reply} {
		if err := WriteControl(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	r := bufio.NewReader(&buf)
	for i, want := range []*Control{req, reply} {
		got, err := ReadControl(r)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if got.Kind != want.Kind || got.Repair == nil {
			t.Fatalf("message %d: %+v vs %+v", i, got, want)
		}
		gr, wr := got.Repair, want.Repair
		if gr.Video != wr.Video || gr.Channel != wr.Channel || gr.Seq != wr.Seq ||
			gr.Offset != wr.Offset || gr.Length != wr.Length || !bytes.Equal(gr.Data, wr.Data) {
			t.Errorf("message %d repair payload: %+v vs %+v", i, gr, wr)
		}
	}
}

func TestPeekID(t *testing.T) {
	c := Chunk{Video: 9, Channel: 3, Seq: 1234, Offset: 4096, Total: 8192, Payload: []byte("peek")}
	frame, err := c.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	video, channel, seq, offset, ok := PeekID(frame)
	if !ok || video != c.Video || channel != c.Channel || seq != c.Seq || offset != c.Offset {
		t.Errorf("PeekID = %d/%d seq %d off %d ok=%v, want %d/%d seq %d off %d",
			video, channel, seq, offset, ok, c.Video, c.Channel, c.Seq, c.Offset)
	}
	if _, _, _, _, ok := PeekID(frame[:headerSize-1]); ok {
		t.Error("PeekID accepted a short frame")
	}
	bad := append([]byte(nil), frame...)
	bad[0] = 0xFF
	if _, _, _, _, ok := PeekID(bad); ok {
		t.Error("PeekID accepted a bad magic")
	}
}

func TestPatchSeq(t *testing.T) {
	c := Chunk{Video: 5, Channel: 2, Seq: 0, Offset: 2048, Total: 8192, Payload: []byte("repetition-invariant")}
	frame, err := c.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, seq := range []uint32{0, 1, 7, 1<<32 - 1} {
		if err := PatchSeq(frame, seq); err != nil {
			t.Fatalf("PatchSeq(%d): %v", seq, err)
		}
		got, err := Decode(frame)
		if err != nil {
			t.Fatalf("decode after PatchSeq(%d): %v", seq, err)
		}
		if got.Seq != seq {
			t.Errorf("Seq = %d, want %d", got.Seq, seq)
		}
		// Everything but Seq is untouched.
		want := c
		want.Seq = seq
		ref, err := want.Encode(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(frame, ref) {
			t.Errorf("patched frame diverges from a fresh encode at seq %d", seq)
		}
	}
}

func TestPatchSeqRejectsBadFrames(t *testing.T) {
	good, err := (&Chunk{Payload: []byte("x")}).Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := PatchSeq(good[:headerSize-1], 1); !errors.Is(err, ErrShortFrame) {
		t.Errorf("short frame: %v", err)
	}
	bad := append([]byte(nil), good...)
	bad[0] = 0xFF
	if err := PatchSeq(bad, 1); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: %v", err)
	}
	bad = append([]byte(nil), good...)
	bad[2] = 9
	if err := PatchSeq(bad, 1); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version: %v", err)
	}
}

func TestEncodeWithCRC(t *testing.T) {
	c := Chunk{Video: 1, Channel: 4, Seq: 3, Offset: 512, Total: 4096, Payload: []byte("cached crc")}
	ref, err := c.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.EncodeWithCRC(nil, PayloadCRC(c.Payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref) {
		t.Error("EncodeWithCRC(PayloadCRC(p)) differs from Encode")
	}
	// A stale CRC produces a frame the decoder rejects — the contract that
	// keeps cache bugs loud.
	stale, err := c.EncodeWithCRC(nil, PayloadCRC(c.Payload)+1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(stale); !errors.Is(err, ErrBadCRC) {
		t.Errorf("mismatched CRC decoded: %v", err)
	}
	if _, err := c.EncodeWithCRC(nil, 0); err != nil {
		t.Fatal(err)
	}
	big := Chunk{Payload: make([]byte, MaxPayload+1)}
	if _, err := big.EncodeWithCRC(nil, 0); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversize: %v", err)
	}
}

func TestDecodeRejectsReservedByte(t *testing.T) {
	good, err := (&Chunk{Payload: []byte("x")}).Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), good...)
	bad[3] = 1
	if _, err := Decode(bad); !errors.Is(err, ErrBadReserved) {
		t.Errorf("reserved byte: %v", err)
	}
}
