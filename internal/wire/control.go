package wire

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Control message kinds exchanged over the TCP control connection.
const (
	KindHello    = "hello"
	KindWelcome  = "welcome"
	KindJoin     = "join"
	KindJoined   = "joined"
	KindLeave    = "leave"
	KindError    = "error"
	KindBye      = "bye"
	KindStats    = "stats"
	KindStatsOK  = "statsok"
	KindRepair   = "repair"
	KindRepairOK = "repairok"
	// KindBusy is the server's admission-control pushback: the repair
	// plane is over budget (or the request was coalesced into a multicast
	// re-send). RetryAfterNanos carries the earliest useful retry time; a
	// zero hint means "re-listen to the broadcast group" — the answer is
	// already in flight as a multicast re-send.
	KindBusy = "busy"
	// KindNack reports a burst of losses on one channel as a compact gap
	// bitmap (see Nack); the server answers with KindNackOK whose bitmap
	// marks the chunks it accepted for a multicast re-send on the
	// channel's broadcast group. Chunks left unmarked were refused
	// (budget) and fall back to unicast KindRepair.
	KindNack   = "nack"
	KindNackOK = "nackok"
)

// Errors returned by ReadControl, so callers can distinguish a connection
// cut off mid-message (retryable after reconnect) from a peer speaking
// garbage (corruption; not retryable).
var (
	// ErrTruncated reports a control line that ended before its newline
	// delimiter: the connection died mid-message.
	ErrTruncated = errors.New("wire: truncated control message")
	// ErrBadControl reports a complete line that is not a valid control
	// message.
	ErrBadControl = errors.New("wire: malformed control message")
)

// Control is the envelope for every control message; unused fields are
// omitted from the JSON encoding.
type Control struct {
	Kind string `json:"kind"`
	// Error text for KindError.
	Error string `json:"error,omitempty"`
	// Welcome payload.
	Welcome *Welcome `json:"welcome,omitempty"`
	// Join/Joined/Leave payload.
	Video   int `json:"video,omitempty"`
	Channel int `json:"channel,omitempty"`
	// Port is the client's UDP port for Join.
	Port int `json:"port,omitempty"`
	// Stats payload for KindStatsOK.
	Stats *Stats `json:"stats,omitempty"`
	// Repair payload for KindRepair/KindRepairOK.
	Repair *Repair `json:"repair,omitempty"`
	// Nack payload for KindNack/KindNackOK.
	Nack *Nack `json:"nack,omitempty"`
	// RetryAfterNanos is the KindBusy retry hint; zero means the request
	// was answered via a multicast re-send and the client should
	// re-listen instead of re-pulling.
	RetryAfterNanos int64 `json:"retryAfterNanos,omitempty"`
}

// Repair is a unicast chunk-repair round trip: a client that detected a
// gap in a channel's broadcast asks the server to retransmit one chunk
// over the control connection. The request leaves Data empty; the reply
// echoes the identifying fields and fills Data with the chunk bytes.
type Repair struct {
	// Video and Channel identify the fragment, exactly as in a Join.
	Video   int `json:"video"`
	Channel int `json:"channel"`
	// Seq is the broadcast repetition the lost chunk belonged to. Chunk
	// content is repetition-independent, but echoing it lets the client
	// match replies to the reception it is recovering.
	Seq uint32 `json:"seq"`
	// Offset is the byte offset of the chunk within the fragment.
	Offset int64 `json:"offset"`
	// Length is the number of chunk bytes requested.
	Length int `json:"length"`
	// Data carries the chunk bytes in a KindRepairOK reply (base64 in
	// the JSON encoding).
	Data []byte `json:"data,omitempty"`
}

// Stats is the server's operational snapshot, returned for KindStats.
type Stats struct {
	// UptimeNanos is time since the broadcast epoch.
	UptimeNanos int64 `json:"uptimeNanos"`
	// DatagramsSent counts data chunks written to receivers.
	DatagramsSent int64 `json:"datagramsSent"`
	// Channels is the number of active channel pacers.
	Channels int `json:"channels"`
	// Members is the current total group memberships.
	Members int `json:"members"`
	// RepairsServed counts unicast chunk repairs answered.
	RepairsServed int64 `json:"repairsServed,omitempty"`
	// RepairBytes counts the payload bytes those repairs carried.
	RepairBytes int64 `json:"repairBytes,omitempty"`
	// BusyReplies counts repair requests pushed back with KindBusy
	// (admission denials and storm suppressions combined).
	BusyReplies int64 `json:"busyReplies,omitempty"`
	// StormResends counts coalesced repair storms answered once via a
	// multicast re-send on the chunk's broadcast group;
	// SuppressedRepairs the individual unicast requests those re-sends
	// absorbed.
	StormResends      int64 `json:"stormResends,omitempty"`
	SuppressedRepairs int64 `json:"suppressedRepairs,omitempty"`
	// NacksServed counts gap-bitmap NACK messages answered; NackResends
	// the multicast re-sends those NACKs triggered; NackSuppressed the
	// NACKed chunks absorbed because a re-send within the storm window
	// was already in flight (the client just re-listens).
	NacksServed    int64 `json:"nacksServed,omitempty"`
	NackResends    int64 `json:"nackResends,omitempty"`
	NackSuppressed int64 `json:"nackSuppressed,omitempty"`
	// RepairDatagrams counts multicast repair re-sends (storm- and
	// NACK-triggered) put on the wire by the hub, so the egress ledger
	// distinguishes repair traffic from schedule traffic.
	RepairDatagrams int64 `json:"repairDatagrams,omitempty"`
	// RepairTokens is the current level of the repair token bucket in
	// bytes, -1 when the budget is unlimited.
	RepairTokens int64 `json:"repairTokens,omitempty"`
	// PacerRestarts counts channel pacers restarted by the supervisor
	// after a panic; PacerDriftEvents counts broadcasts that missed
	// their absolute schedule by more than one unit.
	PacerRestarts    int64 `json:"pacerRestarts,omitempty"`
	PacerDriftEvents int64 `json:"pacerDriftEvents,omitempty"`
	// The egress ledger (absent under the legacy per-pacer engine or on
	// an idle server). EgressShards is how many shard goroutines drive
	// all channel schedules; EgressWakeups their timer wakeups, each
	// dispatching every chunk due in its tick; EgressBatches the batched
	// hub dispatches and BatchedBytes the payload bytes they carried;
	// EgressSyscalls the kernel send invocations (sendmmsg calls on the
	// vectorized path, per-datagram writes otherwise), so
	// DatagramsSent/EgressSyscalls is the achieved batching factor.
	EgressShards   int   `json:"egressShards,omitempty"`
	EgressWakeups  int64 `json:"egressWakeups,omitempty"`
	EgressBatches  int64 `json:"egressBatches,omitempty"`
	BatchedBytes   int64 `json:"batchedBytes,omitempty"`
	EgressSyscalls int64 `json:"egressSyscalls,omitempty"`
	// The super-frame (UDP GSO) ledger. Superframes counts GSO
	// super-datagrams put on the wire — each one syscall slot the kernel
	// split into several wire datagrams; GSOSegments the wire datagrams
	// they carried, so GSOSegments/Superframes is the coalescing factor;
	// GSOFallbacks how many times the GSO path was declined or abandoned
	// (probe failure, kill-switch, runtime demotion).
	Superframes  int64 `json:"superframes,omitempty"`
	GSOSegments  int64 `json:"gsoSegments,omitempty"`
	GSOFallbacks int64 `json:"gsoFallbacks,omitempty"`
	// The io_uring ledger. UringSubmits counts io_uring_enter calls of
	// the shared cross-shard submission ring; UringSQEs the send SQEs
	// they carried, so UringSQEs/UringSubmits is the achieved SQE depth.
	UringSubmits int64 `json:"uringSubmits,omitempty"`
	UringSQEs    int64 `json:"uringSqes,omitempty"`
	// The proactive FEC ledger. ParityFrames counts parity frames put
	// on the wire alongside the broadcast schedule; ParityBytes their
	// total encoded bytes, so ParityBytes/BatchedBytes bounds the
	// stripe's bandwidth overhead (≤ 1/G by construction).
	ParityFrames int64 `json:"parityFrames,omitempty"`
	ParityBytes  int64 `json:"parityBytes,omitempty"`
	// The ingress ledger, summed over every shared receiver the process
	// has opened (absent on a process that never receives).
	// BatchedReads counts datagrams drained through the recvmmsg rung
	// (after GRO splitting); ReadSyscalls every kernel receive
	// invocation, so BatchedReads/ReadSyscalls is the achieved ingress
	// batching factor; GroSegments frames recovered from coalesced GRO
	// super-frames; GroFallbacks declines/demotions of the GRO rung;
	// ReadErrors failed socket reads.
	BatchedReads int64 `json:"batchedReads,omitempty"`
	ReadSyscalls int64 `json:"readSyscalls,omitempty"`
	GroSegments  int64 `json:"groSegments,omitempty"`
	GroFallbacks int64 `json:"groFallbacks,omitempty"`
	ReadErrors   int64 `json:"readErrors,omitempty"`
	// Draining reports a server in graceful shutdown: no new
	// connections, in-flight repairs finishing.
	Draining bool `json:"draining,omitempty"`
}

// Welcome describes the broadcast the server is running, everything a
// client needs to compute its reception schedule locally: the SB
// parameters, the shared epoch, and the fragment layout.
type Welcome struct {
	// Videos is M; ChannelsPerVideo is K; Width is W.
	Videos           int   `json:"videos"`
	ChannelsPerVideo int   `json:"channelsPerVideo"`
	Width            int64 `json:"width"`
	// UnitNanos is the real-time duration of one D1 unit (the demo
	// compresses video minutes into short wall-clock intervals).
	UnitNanos int64 `json:"unitNanos"`
	// EpochUnixNano anchors all channels' broadcast grids: channel i's
	// broadcasts start at Epoch + n*Sizes[i-1]*Unit.
	EpochUnixNano int64 `json:"epochUnixNano"`
	// SizeUnits are the fragment sizes in D1 units, channel order.
	SizeUnits []int64 `json:"sizeUnits"`
	// BytesPerUnit is the fragment payload density: a fragment of s
	// units carries s*BytesPerUnit bytes.
	BytesPerUnit int `json:"bytesPerUnit"`
	// ChunkBytes is the data-chunk payload size the server uses.
	ChunkBytes int `json:"chunkBytes"`
	// NackRepair advertises the cohort-aware repair plane: the server
	// answers KindNack gap bitmaps with multicast re-sends. Clients only
	// send NACKs when this is set, so old servers (and test fakes) keep
	// seeing pure unicast KindRepair traffic.
	NackRepair bool `json:"nackRepair,omitempty"`
	// FecGroup advertises the proactive parity stripe: the broadcast
	// interleaves one parity frame per group of FecGroup data chunks
	// (see KindParity). Zero means no stripe — receivers then never see
	// parity frames and run the PR-8 reactive ladder unchanged.
	FecGroup int `json:"fecGroup,omitempty"`
	// FecMode is the stripe kind: FecModeXOR (one P frame, heals one
	// erasure per group) or FecModeRS (P+Q, heals two). Empty when
	// FecGroup is zero.
	FecMode string `json:"fecMode,omitempty"`
}

// WriteControl writes one newline-delimited JSON control message.
func WriteControl(w io.Writer, m *Control) error {
	buf, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("wire: encoding control %q: %w", m.Kind, err)
	}
	buf = append(buf, '\n')
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("wire: writing control %q: %w", m.Kind, err)
	}
	return nil
}

// ReadControl reads one newline-delimited JSON control message. A read
// that ends cleanly between messages returns the underlying error (io.EOF
// on an orderly close); one that ends mid-line returns ErrTruncated, and a
// complete but undecodable line returns ErrBadControl.
func ReadControl(r *bufio.Reader) (*Control, error) {
	line, err := r.ReadBytes('\n')
	if err != nil {
		if len(line) > 0 {
			return nil, fmt.Errorf("%w: %d bytes then %v", ErrTruncated, len(line), err)
		}
		return nil, err
	}
	var m Control
	if err := json.Unmarshal(line, &m); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadControl, err)
	}
	if m.Kind == "" {
		return nil, fmt.Errorf("%w: missing kind", ErrBadControl)
	}
	// Gap bitmaps are validated at decode so a malformed NACK surfaces as
	// a typed error here, not as a panic deep in the storm table.
	switch m.Kind {
	case KindNack:
		if m.Nack == nil {
			return nil, fmt.Errorf("%w: nack without payload", ErrBadControl)
		}
		if err := validateNack(m.Nack, true); err != nil {
			return nil, err
		}
	case KindNackOK:
		if m.Nack == nil {
			return nil, fmt.Errorf("%w: nackok without payload", ErrBadControl)
		}
		if err := validateNack(m.Nack, false); err != nil {
			return nil, err
		}
	}
	return &m, nil
}
