// Proactive FEC parity frames. The broadcast interleaves one parity
// frame per transmission group of G data chunks so a receiver heals a
// single lost datagram locally — no control round trip, no server
// re-send — and only burst loss that defeats the stripe escalates to
// the NACK ladder.
//
// A parity frame reuses the 28-byte chunk header verbatim. The reserved
// pad byte (frame[3]), which Decode requires to be zero for data
// chunks, becomes the frame-kind discriminator: its high nibble is
// KindParity and its low nibble selects the parity index within the
// stripe (0 = P, the plain XOR parity; 1 = Q, the GF(256)-weighted
// parity of the optional Reed-Solomon mode, which together with P heals
// two erasures). Because PatchSeq and PeekID ignore the reserved byte,
// a cached parity frame enjoys the exact affordances of a cached data
// frame: 4-byte Seq re-patching across repetitions, identity peeking on
// the fault-injection and mux-routing paths, and a place in the same
// batched egress dispatch. Old receivers reject parity frames with
// ErrBadReserved rather than mis-parsing them as data.
//
// Header field reuse: Offset carries the byte offset of the group's
// first data chunk (the group base), Total the fragment size, Length
// and CRC the parity payload exactly as for data. The payload is
//
//	[1 byte count][coverage bitmap, (count+7)/8 bytes][parity block]
//
// where count is the number of data chunks the stripe covers (the last
// group of a fragment may be short), the bitmap marks covered chunks
// LSB-first from the group base, and the parity block is the XOR (P)
// or GF-weighted sum (Q) of the covered chunk payloads. All of it is a
// pure function of (video, channel, group) — repetition-invariant —
// so the server's frame cache holds parity frames in dedicated slots
// beside the data frames they protect.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// KindParity is the frame-kind marker in the high nibble of the
// reserved header byte. A zero reserved byte remains a data chunk;
// KindParity|index marks parity index 0 (P/XOR) or 1 (Q/RS).
const KindParity = 0x50

// parityKindMask extracts the frame-kind nibble from the reserved byte.
const parityKindMask = 0xF0

// MaxFecGroup bounds the stripe width G. 64 keeps the coverage bitmap
// in one word on the reassembly path and matches the egress batch run
// cap (wheelMaxRun / the UDP GSO segment limit), so one catch-up run
// never spans more than one full stripe per group boundary.
const MaxFecGroup = 64

// FEC stripe modes advertised in Welcome and configured on the server.
const (
	// FecModeXOR emits one P parity frame per group: heals any single
	// erasure among the covered chunks (or a lost P costs nothing).
	FecModeXOR = "xor"
	// FecModeRS emits P and Q parity frames per group: a 2-erasure
	// Reed-Solomon stripe (RAID-6 P+Q over GF(256), polynomial 0x11d).
	FecModeRS = "rs"
)

// ErrBadParity reports a frame whose parity-kind byte is set but whose
// payload violates the stripe layout (count, bitmap, or block bounds).
var ErrBadParity = errors.New("wire: malformed parity frame")

// Parity is one decoded parity frame.
type Parity struct {
	// Video and Channel identify the fragment, exactly as in a Chunk.
	Video   uint16
	Channel uint16
	// Seq is the broadcast repetition, patched per re-send like a data
	// chunk's.
	Seq uint32
	// Base is the byte offset of the group's first data chunk.
	Base uint32
	// Total is the full fragment size in bytes.
	Total uint32
	// Index selects the parity within the stripe: 0 = P (XOR),
	// 1 = Q (GF-weighted).
	Index uint8
	// Count is the number of data chunks the stripe covers.
	Count int
	// Bitmap marks covered chunks, bit i (LSB-first) for the chunk at
	// Base + i*chunkBytes. Aliases the decoded frame.
	Bitmap []byte
	// Block is the parity bytes: XOR (P) or GF-weighted sum (Q) of the
	// covered chunk payloads. Aliases the decoded frame.
	Block []byte
}

// ParityOverhead is the payload size of a parity frame covering count
// chunks of blockBytes each: count byte + coverage bitmap + block.
func ParityOverhead(count, blockBytes int) int {
	return 1 + (count+7)/8 + blockBytes
}

// IsParity reports whether an encoded frame carries the parity kind
// marker. Like PeekID it trusts only magic and version; a true return
// means DecodeParity is the right parser, not that the frame is valid.
func IsParity(frame []byte) bool {
	return len(frame) >= headerSize &&
		binary.BigEndian.Uint16(frame[0:]) == Magic &&
		frame[2] == Version &&
		frame[3]&parityKindMask == KindParity
}

// ParityIndexOf returns the parity index (0 = P/XOR, 1 = Q/RS) of a
// frame IsParity accepted. It reads only the reserved byte; callers
// must have checked IsParity first.
func ParityIndexOf(frame []byte) int { return int(frame[3] &^ parityKindMask) }

// ParityCountOf returns the coverage count byte of a frame IsParity
// accepted, or 0 when the frame is too short to carry one. Like
// ParityIndexOf it is a peek, not a validation.
func ParityCountOf(frame []byte) int {
	if len(frame) <= headerSize {
		return 0
	}
	return int(frame[headerSize])
}

// EncodeParityFrame appends the wire form of a parity frame to dst. The
// payload must already be assembled in stripe layout (see
// AppendParityPayload); crc is PayloadCRC(payload), precomputed so a
// cached parity frame costs no checksum work to re-send (the frame
// cache's currency, same as Chunk.EncodeWithCRC).
func EncodeParityFrame(dst []byte, video, channel uint16, seq, base, total uint32, index uint8, payload []byte, crc uint32) ([]byte, error) {
	if len(payload) > MaxPayload {
		return nil, fmt.Errorf("%w: %d bytes", ErrTooLarge, len(payload))
	}
	if index > 1 {
		return nil, fmt.Errorf("%w: parity index %d", ErrBadParity, index)
	}
	var h [headerSize]byte
	binary.BigEndian.PutUint16(h[0:], Magic)
	h[2] = Version
	h[3] = KindParity | index
	binary.BigEndian.PutUint16(h[4:], video)
	binary.BigEndian.PutUint16(h[6:], channel)
	binary.BigEndian.PutUint32(h[seqOffset:], seq)
	binary.BigEndian.PutUint32(h[12:], base)
	binary.BigEndian.PutUint32(h[16:], total)
	binary.BigEndian.PutUint32(h[20:], uint32(len(payload)))
	binary.BigEndian.PutUint32(h[24:], crc)
	dst = append(dst, h[:]...)
	return append(dst, payload...), nil
}

// AppendParityPayload appends the stripe payload prefix — count byte
// plus an all-ones coverage bitmap for chunks [0, count) — followed by
// the parity block. The proactive stripe always covers every chunk of
// its group; sparse coverage is representable on the wire but never
// emitted.
func AppendParityPayload(dst []byte, count int, block []byte) []byte {
	dst = append(dst, byte(count))
	bl := (count + 7) / 8
	for i := 0; i < bl; i++ {
		b := byte(0xFF)
		if rem := count - i*8; rem < 8 {
			b = byte(1<<rem - 1)
		}
		dst = append(dst, b)
	}
	return append(dst, block...)
}

// DecodeParity parses a parity frame. The returned Bitmap and Block
// alias frame; copy them if the buffer will be reused. Header checks
// mirror Decode; payload checks enforce the stripe layout, including
// canonical trailing-zero bits past count in the bitmap.
func DecodeParity(frame []byte) (Parity, error) {
	var p Parity
	if len(frame) < headerSize {
		return p, fmt.Errorf("%w: %d bytes", ErrShortFrame, len(frame))
	}
	if binary.BigEndian.Uint16(frame[0:]) != Magic {
		return p, ErrBadMagic
	}
	if frame[2] != Version {
		return p, fmt.Errorf("%w: %d", ErrBadVersion, frame[2])
	}
	if frame[3]&parityKindMask != KindParity {
		return p, fmt.Errorf("%w: reserved byte %#02x is not a parity kind", ErrBadParity, frame[3])
	}
	p.Index = frame[3] &^ parityKindMask
	if p.Index > 1 {
		return p, fmt.Errorf("%w: parity index %d", ErrBadParity, p.Index)
	}
	p.Video = binary.BigEndian.Uint16(frame[4:])
	p.Channel = binary.BigEndian.Uint16(frame[6:])
	p.Seq = binary.BigEndian.Uint32(frame[8:])
	p.Base = binary.BigEndian.Uint32(frame[12:])
	p.Total = binary.BigEndian.Uint32(frame[16:])
	n := binary.BigEndian.Uint32(frame[20:])
	if n > MaxPayload {
		return p, fmt.Errorf("%w: %d bytes", ErrTooLarge, n)
	}
	if int(n) != len(frame)-headerSize {
		return p, fmt.Errorf("%w: header says %d, frame carries %d", ErrBadLength, n, len(frame)-headerSize)
	}
	payload := frame[headerSize:]
	if PayloadCRC(payload) != binary.BigEndian.Uint32(frame[24:]) {
		return p, ErrBadCRC
	}
	if len(payload) < 2 {
		return p, fmt.Errorf("%w: %d-byte payload", ErrBadParity, len(payload))
	}
	p.Count = int(payload[0])
	if p.Count == 0 || p.Count > MaxFecGroup {
		return p, fmt.Errorf("%w: stripe covers %d chunks (cap %d)", ErrBadParity, p.Count, MaxFecGroup)
	}
	bl := (p.Count + 7) / 8
	if len(payload) < 1+bl+1 {
		return p, fmt.Errorf("%w: payload too short for %d-chunk bitmap", ErrBadParity, p.Count)
	}
	p.Bitmap = payload[1 : 1+bl]
	if rem := p.Count % 8; rem != 0 && p.Bitmap[bl-1]&^byte(1<<rem-1) != 0 {
		return p, fmt.Errorf("%w: bitmap bits set past count %d", ErrBadParity, p.Count)
	}
	p.Block = payload[1+bl:]
	return p, nil
}

// Covers reports whether the stripe's coverage bitmap marks chunk i of
// the group (0-based from Base).
func (p *Parity) Covers(i int) bool {
	return i >= 0 && i < p.Count && p.Bitmap[i/8]&(1<<(i%8)) != 0
}

// GF(256) arithmetic for the Q parity, polynomial 0x11d (the RAID-6 /
// Reed-Solomon field). Log/exp tables cost 768 bytes and make every
// per-byte multiply two lookups and an add.
var (
	gfExp [510]byte
	gfLog [256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfExp[i+255] = byte(x)
		gfLog[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= 0x11d
		}
	}
}

// GfExpPow returns alpha^i — the Q-parity coefficient of the chunk at
// stripe position i.
func GfExpPow(i int) byte { return gfExp[i%255] }

// GfMul multiplies in GF(256).
func GfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

// GfDiv divides in GF(256). b must be non-zero.
func GfDiv(a, b byte) byte {
	if a == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+255-int(gfLog[b])]
}

// XorAccum folds src into dst byte-wise (dst ^= src), word-at-a-time on
// the common aligned-length prefix. Lengths may differ; the shorter
// bound applies — callers accumulate fixed-size chunk payloads, so in
// practice the lengths match.
func XorAccum(dst, src []byte) {
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	i := 0
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(dst[i:])^binary.LittleEndian.Uint64(src[i:]))
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
}

// GfMulAccum folds c·src into dst (dst ^= c·src in GF(256)). c == 0 is
// a no-op; c == 1 degenerates to XorAccum.
func GfMulAccum(dst, src []byte, c byte) {
	switch c {
	case 0:
		return
	case 1:
		XorAccum(dst, src)
		return
	}
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	lc := int(gfLog[c])
	for i := 0; i < n; i++ {
		if s := src[i]; s != 0 {
			dst[i] ^= gfExp[lc+int(gfLog[s])]
		}
	}
}
