package wire

import (
	"bufio"
	"bytes"
	"encoding/base64"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// TestNackChunksRoundTrip: packing a chunk list and expanding the bitmap
// are inverses, for dense bursts, sparse gaps, and byte-boundary spans.
func TestNackChunksRoundTrip(t *testing.T) {
	for _, chunks := range [][]int{
		{0},
		{5},
		{3, 4, 9},
		{0, 1, 2, 3, 4, 5, 6, 7},
		{0, 8},    // exactly two bytes
		{7, 8},    // straddles a byte boundary
		{10, 100}, // sparse: bitmap still based at the first index
	} {
		n := NackFromChunks(1, 2, 7, chunks)
		if n.BaseChunk != chunks[0] {
			t.Errorf("NackFromChunks(%v).BaseChunk = %d, want %d", chunks, n.BaseChunk, chunks[0])
		}
		if err := validateNack(n, true); err != nil {
			t.Errorf("NackFromChunks(%v) not canonical: %v", chunks, err)
		}
		if got := n.Chunks(); !reflect.DeepEqual(got, chunks) {
			t.Errorf("Chunks() = %v, want %v", got, chunks)
		}
		for _, c := range chunks {
			if !n.Has(c) {
				t.Errorf("Has(%d) = false after packing %v", c, chunks)
			}
		}
		if n.Has(chunks[0]-1) || n.Has(chunks[len(chunks)-1]+1) {
			t.Errorf("Has reports chunks outside %v", chunks)
		}
	}
}

// TestNackSet: Set marks in-range chunks and ignores out-of-range ones
// (the server builds its accepted reply this way on a zeroed same-shape
// bitmap).
func TestNackSet(t *testing.T) {
	n := &Nack{BaseChunk: 3, Bitmap: make([]byte, 2)}
	n.Set(3)
	n.Set(10)
	n.Set(2)  // below base: ignored
	n.Set(19) // past the bitmap: ignored
	if got, want := n.Chunks(), []int{3, 10}; !reflect.DeepEqual(got, want) {
		t.Errorf("Chunks() = %v, want %v", got, want)
	}
}

// TestNackDecodeRejectsMalformed: the control decoder rejects malformed
// gap bitmaps with the typed ErrBadBitmap, and ErrBadControl still covers
// them for callers that only classify.
func TestNackDecodeRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, line string
	}{
		{"missing payload", `{"kind":"nack"}`},
		{"empty bitmap", `{"kind":"nack","nack":{"video":1,"channel":2,"bitmap":""}}`},
		{"negative base", `{"kind":"nack","nack":{"baseChunk":-1,"bitmap":"AQ=="}}`},
		{"trailing zero", `{"kind":"nack","nack":{"baseChunk":0,"bitmap":"AQA="}}`},
		{"oversized", fmt.Sprintf(`{"kind":"nack","nack":{"baseChunk":0,"bitmap":"%s"}}`,
			base64Bytes(MaxNackBitmapBytes+1))},
		{"reply missing payload", `{"kind":"nackok"}`},
		{"reply negative base", `{"kind":"nackok","nack":{"baseChunk":-1,"bitmap":"AQ=="}}`},
	}
	for _, tc := range cases {
		_, err := ReadControl(bufio.NewReader(strings.NewReader(tc.line + "\n")))
		if err == nil {
			t.Errorf("%s: accepted %s", tc.name, tc.line)
			continue
		}
		if !errors.Is(err, ErrBadControl) {
			t.Errorf("%s: error %v does not wrap ErrBadControl", tc.name, err)
		}
		if tc.name != "missing payload" && tc.name != "reply missing payload" && !errors.Is(err, ErrBadBitmap) {
			t.Errorf("%s: error %v does not wrap ErrBadBitmap", tc.name, err)
		}
	}
}

// TestNackReplyAllZerosAccepted: a KindNackOK reply may accept nothing —
// the all-zero bitmap is the unicast-fallback signal, not an error.
func TestNackReplyAllZerosAccepted(t *testing.T) {
	var buf bytes.Buffer
	reply := &Control{Kind: KindNackOK, Nack: &Nack{Video: 1, Channel: 2, Seq: 7, BaseChunk: 3, Bitmap: []byte{0, 0}}}
	if err := WriteControl(&buf, reply); err != nil {
		t.Fatal(err)
	}
	m, err := ReadControl(bufio.NewReader(&buf))
	if err != nil {
		t.Fatalf("all-zero accepted bitmap rejected: %v", err)
	}
	if len(m.Nack.Chunks()) != 0 {
		t.Errorf("all-zero bitmap expands to %v, want none", m.Nack.Chunks())
	}
	for _, c := range []int{2, 3, 4, 18} {
		if m.Nack.Has(c) {
			t.Errorf("Has(%d) = true on an all-zero bitmap", c)
		}
	}
}

// base64Bytes returns the standard-base64 encoding of n 0x01 bytes, for
// building oversized-bitmap JSON.
func base64Bytes(n int) string {
	return base64.StdEncoding.EncodeToString(bytes.Repeat([]byte{1}, n))
}
