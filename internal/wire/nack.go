package wire

import "fmt"

// MaxNackBitmapBytes bounds the gap bitmap of one NACK. At 8 chunks per
// byte this covers 32768 chunks — far beyond any fragment the demo
// broadcasts — while keeping a hostile control line from ballooning the
// decode.
const MaxNackBitmapBytes = 4096

// ErrBadBitmap reports a NACK whose gap bitmap is malformed: empty,
// oversized, negative base, or (for a request) non-canonical with a
// trailing zero byte. It wraps ErrBadControl so existing callers that
// only distinguish truncation from garbage keep working.
var ErrBadBitmap = fmt.Errorf("%w: malformed nack gap bitmap", ErrBadControl)

// Nack reports a burst of losses on one channel in a single control
// message: a base chunk index plus a bitmap of missing chunks relative to
// it. One NACK replaces one KindRepair round trip per chunk, and the
// server answers the whole bitmap with multicast re-sends on the
// channel's broadcast group where it can.
type Nack struct {
	// Video and Channel identify the fragment, exactly as in a Join.
	Video   int `json:"video"`
	Channel int `json:"channel"`
	// Seq is the broadcast repetition the lost chunks belonged to; the
	// re-sends are patched to it so receivers filtering on their wanted
	// repetition accept them.
	Seq uint32 `json:"seq"`
	// BaseChunk is the fragment-relative index of bit 0 of the bitmap.
	BaseChunk int `json:"baseChunk"`
	// Bitmap marks missing chunks: bit i (LSB-first within each byte)
	// set means chunk BaseChunk+i is missing. In a KindNack request the
	// final byte must be non-zero (canonical form); a KindNackOK reply
	// reuses the shape to mark which chunks were accepted for multicast
	// re-send, and may be all zeros (nothing accepted: unicast fallback).
	Bitmap []byte `json:"bitmap"`
}

// validateNack enforces the bitmap invariants. Requests must be canonical
// (non-zero final byte) so two NACKs for the same gap set compare equal;
// replies may legitimately accept nothing.
func validateNack(n *Nack, request bool) error {
	switch {
	case n.BaseChunk < 0:
		return fmt.Errorf("%w: negative base chunk %d", ErrBadBitmap, n.BaseChunk)
	case len(n.Bitmap) == 0:
		return fmt.Errorf("%w: empty bitmap", ErrBadBitmap)
	case len(n.Bitmap) > MaxNackBitmapBytes:
		return fmt.Errorf("%w: %d bytes exceeds cap %d", ErrBadBitmap, len(n.Bitmap), MaxNackBitmapBytes)
	case request && n.Bitmap[len(n.Bitmap)-1] == 0:
		return fmt.Errorf("%w: trailing zero byte (non-canonical)", ErrBadBitmap)
	}
	return nil
}

// NackFromChunks packs ascending fragment-relative chunk indices into a
// canonical Nack. The chunk list must be non-empty and sorted ascending;
// the bitmap is based at the first index so sparse gaps stay compact.
func NackFromChunks(video, channel int, seq uint32, chunks []int) *Nack {
	base := chunks[0]
	span := chunks[len(chunks)-1] - base + 1
	bm := make([]byte, (span+7)/8)
	for _, c := range chunks {
		off := c - base
		bm[off/8] |= 1 << (off % 8)
	}
	return &Nack{Video: video, Channel: channel, Seq: seq, BaseChunk: base, Bitmap: bm}
}

// Chunks expands the gap bitmap into absolute chunk indices, ascending.
func (n *Nack) Chunks() []int {
	var out []int
	for i, b := range n.Bitmap {
		for bit := 0; b != 0; bit, b = bit+1, b>>1 {
			if b&1 != 0 {
				out = append(out, n.BaseChunk+i*8+bit)
			}
		}
	}
	return out
}

// Has reports whether the bitmap marks the given absolute chunk index.
func (n *Nack) Has(chunk int) bool {
	off := chunk - n.BaseChunk
	if off < 0 || off/8 >= len(n.Bitmap) {
		return false
	}
	return n.Bitmap[off/8]&(1<<(off%8)) != 0
}

// Set marks the given absolute chunk index in the bitmap, if in range.
func (n *Nack) Set(chunk int) {
	off := chunk - n.BaseChunk
	if off < 0 || off/8 >= len(n.Bitmap) {
		return
	}
	n.Bitmap[off/8] |= 1 << (off % 8)
}
