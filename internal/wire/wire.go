// Package wire defines the on-the-wire representation of the live
// Skyscraper Broadcasting demo: a compact binary framing for video data
// chunks carried over UDP, and JSON-encoded control messages exchanged over
// TCP between a client and the broadcast server (the join/leave signalling
// a real deployment would delegate to IP multicast group management).
//
// Data chunks are self-describing — video, channel, broadcast repetition,
// byte offset — so a receiver can tune into any channel at a broadcast
// boundary and reassemble the fragment without per-packet state on the
// server, exactly the receiver model of Section 3.3.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Magic identifies skyscraper data chunks; Version is the protocol
// revision.
const (
	Magic   = 0x5B5C // "skyscraper broadcast"
	Version = 1
)

// MaxPayload bounds chunk payloads so frames fit comfortably in a UDP
// datagram on loopback.
const MaxPayload = 32 * 1024

// HeaderSize is the fixed encoded size before the payload:
// magic(2) version(1) pad(1) video(2) channel(2) seq(4) offset(4) total(4)
// length(4) crc(4).
const HeaderSize = 28

const headerSize = HeaderSize

// seqOffset locates the 4-byte Seq field within an encoded header. Seq is
// the only header field that changes between broadcast repetitions, and it
// is deliberately excluded from the payload CRC, so a cached frame can be
// re-sent forever with a 4-byte patch (PatchSeq).
const seqOffset = 8

// Chunk is one datagram's worth of a fragment broadcast.
type Chunk struct {
	// Video is the catalog index of the video.
	Video uint16
	// Channel is the 1-based logical channel (= fragment index).
	Channel uint16
	// Seq numbers the channel's broadcast repetitions from 0, so
	// receivers can detect tuning mid-broadcast.
	Seq uint32
	// Offset is the byte offset of Payload within the fragment.
	Offset uint32
	// Total is the full fragment size in bytes.
	Total uint32
	// Payload carries the fragment bytes at Offset.
	Payload []byte
}

// Errors returned by Decode.
var (
	ErrShortFrame  = errors.New("wire: frame shorter than header")
	ErrBadMagic    = errors.New("wire: bad magic")
	ErrBadVersion  = errors.New("wire: unsupported version")
	ErrBadReserved = errors.New("wire: reserved header byte not zero")
	ErrBadLength   = errors.New("wire: length field disagrees with frame size")
	ErrBadCRC      = errors.New("wire: payload CRC mismatch")
	ErrTooLarge    = errors.New("wire: payload exceeds MaxPayload")
)

// PayloadCRC returns the checksum Encode stores in the header for the
// given payload. Exposed so a caller that broadcasts the same payload
// repeatedly (the server's channel pacers) can compute it once and reuse it
// through EncodeWithCRC.
func PayloadCRC(payload []byte) uint32 { return crc32.ChecksumIEEE(payload) }

// Encode appends the chunk's wire form to dst and returns the extended
// slice.
func (c *Chunk) Encode(dst []byte) ([]byte, error) {
	if len(c.Payload) > MaxPayload {
		return nil, fmt.Errorf("%w: %d bytes", ErrTooLarge, len(c.Payload))
	}
	return c.appendFrame(dst, crc32.ChecksumIEEE(c.Payload)), nil
}

// EncodeWithCRC is Encode with a precomputed payload CRC (see PayloadCRC).
// The caller owns the invariant that crc matches c.Payload; a mismatch
// produces frames every receiver rejects with ErrBadCRC.
func (c *Chunk) EncodeWithCRC(dst []byte, crc uint32) ([]byte, error) {
	if len(c.Payload) > MaxPayload {
		return nil, fmt.Errorf("%w: %d bytes", ErrTooLarge, len(c.Payload))
	}
	return c.appendFrame(dst, crc), nil
}

func (c *Chunk) appendFrame(dst []byte, crc uint32) []byte {
	var h [headerSize]byte
	binary.BigEndian.PutUint16(h[0:], Magic)
	h[2] = Version
	h[3] = 0
	binary.BigEndian.PutUint16(h[4:], c.Video)
	binary.BigEndian.PutUint16(h[6:], c.Channel)
	binary.BigEndian.PutUint32(h[seqOffset:], c.Seq)
	binary.BigEndian.PutUint32(h[12:], c.Offset)
	binary.BigEndian.PutUint32(h[16:], c.Total)
	binary.BigEndian.PutUint32(h[20:], uint32(len(c.Payload)))
	binary.BigEndian.PutUint32(h[24:], crc)
	dst = append(dst, h[:]...)
	return append(dst, c.Payload...)
}

// PatchSeq rewrites the Seq field of an encoded frame in place. The payload
// CRC covers only the payload, so a repetition-invariant frame cached once
// can be re-broadcast under any repetition number with this 4-byte patch
// and no re-encode. The frame must start with a valid chunk header.
func PatchSeq(frame []byte, seq uint32) error {
	if len(frame) < headerSize {
		return fmt.Errorf("%w: %d bytes", ErrShortFrame, len(frame))
	}
	if binary.BigEndian.Uint16(frame[0:]) != Magic {
		return ErrBadMagic
	}
	if frame[2] != Version {
		return fmt.Errorf("%w: %d", ErrBadVersion, frame[2])
	}
	binary.BigEndian.PutUint32(frame[seqOffset:], seq)
	return nil
}

// Decode parses a frame. The returned chunk's Payload aliases frame; copy
// it if the buffer will be reused.
func Decode(frame []byte) (Chunk, error) {
	var c Chunk
	if len(frame) < headerSize {
		return c, fmt.Errorf("%w: %d bytes", ErrShortFrame, len(frame))
	}
	if binary.BigEndian.Uint16(frame[0:]) != Magic {
		return c, ErrBadMagic
	}
	if frame[2] != Version {
		return c, fmt.Errorf("%w: %d", ErrBadVersion, frame[2])
	}
	if frame[3] != 0 {
		return c, ErrBadReserved
	}
	c.Video = binary.BigEndian.Uint16(frame[4:])
	c.Channel = binary.BigEndian.Uint16(frame[6:])
	c.Seq = binary.BigEndian.Uint32(frame[8:])
	c.Offset = binary.BigEndian.Uint32(frame[12:])
	c.Total = binary.BigEndian.Uint32(frame[16:])
	n := binary.BigEndian.Uint32(frame[20:])
	if n > MaxPayload {
		return c, fmt.Errorf("%w: %d bytes", ErrTooLarge, n)
	}
	if int(n) != len(frame)-headerSize {
		return c, fmt.Errorf("%w: header says %d, frame carries %d", ErrBadLength, n, len(frame)-headerSize)
	}
	c.Payload = frame[headerSize:]
	if crc32.ChecksumIEEE(c.Payload) != binary.BigEndian.Uint32(frame[24:]) {
		return c, ErrBadCRC
	}
	return c, nil
}

// EncodedSize returns the frame size for a payload of n bytes.
func EncodedSize(n int) int { return headerSize + n }

// PeekID extracts a chunk's identity — video, channel, broadcast
// repetition, fragment offset — from an encoded frame without touching the
// payload or its CRC. The fault injector (internal/faults) keys its
// per-chunk decisions on this, so injection costs no checksum work. ok is
// false when the frame is too short or carries the wrong magic or version.
func PeekID(frame []byte) (video, channel uint16, seq, offset uint32, ok bool) {
	if len(frame) < headerSize || binary.BigEndian.Uint16(frame[0:]) != Magic || frame[2] != Version {
		return 0, 0, 0, 0, false
	}
	return binary.BigEndian.Uint16(frame[4:]), binary.BigEndian.Uint16(frame[6:]),
		binary.BigEndian.Uint32(frame[8:]), binary.BigEndian.Uint32(frame[12:]), true
}
