package metrics

import "sync/atomic"

// cacheLine is the assumed coherence-granule size. 64 bytes covers x86-64
// and almost every ARM server part; padding is sized so that two adjacent
// PaddedCounters can never land on one line even on parts that prefetch
// line pairs.
const cacheLine = 64

// PaddedCounter is AtomicCounter insulated against false sharing: the hot
// word is padded onto its own cache line(s), so a struct or array of
// PaddedCounters updated by different cores does not bounce a shared line
// between them on every increment. Use it for counters that sit on
// per-datagram or per-chunk hot paths and are bumped concurrently with
// *other* counters declared next to them (the mcast hub's egress ledger,
// the server's repair and pacing counters); plain AtomicCounter remains
// the right choice for cold or isolated counts.
//
// The zero value is ready to use and must not be copied after first use.
type PaddedCounter struct {
	_ [cacheLine]byte
	n atomic.Int64
	_ [cacheLine - 8]byte
}

// Inc adds one.
func (c *PaddedCounter) Inc() { c.n.Add(1) }

// Add adds delta, which must be non-negative, and returns the new count
// (so rate-limited logging can key off the value it produced without a
// second atomic load).
func (c *PaddedCounter) Add(delta int64) int64 {
	if delta < 0 {
		panic("metrics: PaddedCounter.Add of negative delta")
	}
	return c.n.Add(delta)
}

// Value returns the current count.
func (c *PaddedCounter) Value() int64 { return c.n.Load() }

// PaddedGauge is a concurrent level — live viewers, active cohorts, open
// control sessions — that rises and falls, padded against false sharing
// exactly like PaddedCounter. Unlike Gauge (a single-threaded,
// virtual-time integral for the simulator), PaddedGauge is lock-free and
// wall-clock-free: Inc/Dec/Add are single atomic adds, so it can sit on
// per-session and per-datagram hot paths next to other hot words. The
// high-water mark is maintained with a CAS loop that almost always
// settles on the first read.
//
// The zero value is ready to use and must not be copied after first use.
type PaddedGauge struct {
	_    [cacheLine]byte
	n    atomic.Int64
	high atomic.Int64
	_    [cacheLine - 16]byte
}

// Inc adds one and returns the new level.
func (g *PaddedGauge) Inc() int64 { return g.Add(1) }

// Dec subtracts one and returns the new level.
func (g *PaddedGauge) Dec() int64 { return g.Add(-1) }

// Add adds delta (of either sign) and returns the new level.
func (g *PaddedGauge) Add(delta int64) int64 {
	v := g.n.Add(delta)
	if delta > 0 {
		for {
			h := g.high.Load()
			if v <= h || g.high.CompareAndSwap(h, v) {
				break
			}
		}
	}
	return v
}

// Set forces the level to v (for levels computed elsewhere and mirrored
// here for export).
func (g *PaddedGauge) Set(v int64) {
	g.n.Store(v)
	for {
		h := g.high.Load()
		if v <= h || g.high.CompareAndSwap(h, v) {
			break
		}
	}
}

// Value returns the current level.
func (g *PaddedGauge) Value() int64 { return g.n.Load() }

// High returns the high-water mark of the level.
func (g *PaddedGauge) High() int64 { return g.high.Load() }
