package metrics

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.Count() != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Quantile(0.5) != 0 {
		t.Error("zero Summary not all-zero")
	}
	for _, v := range []float64{5, 1, 3, 2, 4} {
		s.Observe(v)
	}
	if s.Count() != 5 || s.Sum() != 15 || s.Mean() != 3 {
		t.Errorf("count/sum/mean = %d/%v/%v", s.Count(), s.Sum(), s.Mean())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
	if s.Quantile(0.5) != 3 {
		t.Errorf("median = %v, want 3", s.Quantile(0.5))
	}
	if s.Quantile(1) != 5 || s.Quantile(0) != 1 {
		t.Errorf("extreme quantiles %v %v", s.Quantile(0), s.Quantile(1))
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestSummaryObserveAfterSort(t *testing.T) {
	var s Summary
	s.Observe(10)
	_ = s.Max() // forces sort
	s.Observe(1)
	if s.Min() != 1 {
		t.Errorf("Min after post-sort Observe = %v, want 1", s.Min())
	}
}

func TestSummaryStdDev(t *testing.T) {
	var s Summary
	s.Observe(2)
	if s.StdDev() != 0 {
		t.Error("stddev of one observation not 0")
	}
	s.Observe(4)
	if math.Abs(s.StdDev()-1) > 1e-12 {
		t.Errorf("stddev = %v, want 1", s.StdDev())
	}
}

func TestSummaryQuantilePanics(t *testing.T) {
	var s Summary
	s.Observe(1)
	defer func() {
		if recover() == nil {
			t.Error("Quantile(2) did not panic")
		}
	}()
	s.Quantile(2)
}

func TestQuantileOrderProperty(t *testing.T) {
	f := func(vals []float64, a, b uint8) bool {
		var s Summary
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			s.Observe(v)
		}
		qa := float64(a%101) / 100
		qb := float64(b%101) / 100
		if qa > qb {
			qa, qb = qb, qa
		}
		return s.Quantile(qa) <= s.Quantile(qb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummaryMerge(t *testing.T) {
	var a, b Summary
	for _, v := range []float64{5, 1, 3} {
		a.Observe(v)
	}
	_ = a.Max() // force a sort; Merge must invalidate it
	for _, v := range []float64{4, 2} {
		b.Observe(v)
	}
	a.Merge(&b)
	if a.Count() != 5 || a.Sum() != 15 || a.Mean() != 3 {
		t.Errorf("merged count/sum/mean = %d/%v/%v", a.Count(), a.Sum(), a.Mean())
	}
	if a.Min() != 1 || a.Max() != 5 || a.Quantile(0.5) != 3 {
		t.Errorf("merged min/max/median = %v/%v/%v", a.Min(), a.Max(), a.Quantile(0.5))
	}
	// other is unchanged, and nil/empty merges are no-ops.
	if b.Count() != 2 || b.Sum() != 6 {
		t.Errorf("Merge mutated its argument: %d/%v", b.Count(), b.Sum())
	}
	before := a.Count()
	a.Merge(nil)
	a.Merge(&Summary{})
	if a.Count() != before {
		t.Error("empty merge changed the summary")
	}
}

func TestSummaryMergeMatchesObserve(t *testing.T) {
	// Bulk Merge must match per-element Observe: exactly for the
	// order-insensitive statistics, and within floating-point grouping
	// noise for the sum (Merge adds two partial sums where Observe adds
	// element by element; addition is not associative).
	f := func(xs, ys []float64) bool {
		var viaMerge, viaObserve, other Summary
		for _, v := range xs {
			if math.IsNaN(v) || math.Abs(v) > 1e12 {
				return true
			}
			viaMerge.Observe(v)
			viaObserve.Observe(v)
		}
		for _, v := range ys {
			if math.IsNaN(v) || math.Abs(v) > 1e12 {
				return true
			}
			other.Observe(v)
			viaObserve.Observe(v)
		}
		viaMerge.Merge(&other)
		scale := 1.0
		for _, v := range viaMerge.values {
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
		sumClose := math.Abs(viaMerge.Sum()-viaObserve.Sum()) <=
			1e-9*scale*float64(viaMerge.Count()+1)
		return viaMerge.Count() == viaObserve.Count() &&
			sumClose &&
			viaMerge.Min() == viaObserve.Min() &&
			viaMerge.Max() == viaObserve.Max() &&
			viaMerge.Quantile(0.5) == viaObserve.Quantile(0.5)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummaryReserveHint(t *testing.T) {
	var s Summary
	s.ReserveHint(100)
	if s.Count() != 0 {
		t.Error("ReserveHint recorded observations")
	}
	s.Observe(1)
	p := &s.values[0]
	for i := 0; i < 99; i++ {
		s.Observe(float64(i))
	}
	if &s.values[0] != p {
		t.Error("reserved summary reallocated within its hinted capacity")
	}
	s.ReserveHint(0)
	s.ReserveHint(-5)
	if s.Count() != 100 {
		t.Error("no-op hints changed the summary")
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(0, 2)
	g.Add(10, 3) // level 5 from t=10
	g.Add(20, -4)
	if g.Level() != 1 {
		t.Errorf("level = %v, want 1", g.Level())
	}
	if g.High() != 5 {
		t.Errorf("high = %v, want 5", g.High())
	}
	// Integral: 2*10 + 5*10 = 70 over [0,20]; plus 1*10 over [20,30].
	if avg := g.TimeAverage(30); math.Abs(avg-80.0/30) > 1e-12 {
		t.Errorf("time average = %v, want %v", avg, 80.0/30)
	}
}

func TestGaugeMonotonicTime(t *testing.T) {
	var g Gauge
	g.Set(5, 1)
	defer func() {
		if recover() == nil {
			t.Error("time regression did not panic")
		}
	}()
	g.Set(4, 2)
}

func TestGaugeBeforeStart(t *testing.T) {
	var g Gauge
	if g.TimeAverage(10) != 0 {
		t.Error("unstarted gauge average not 0")
	}
	g.Set(5, 3)
	if g.TimeAverage(5) != 3 {
		t.Error("average at start time should be the level")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	defer func() {
		if recover() == nil {
			t.Error("negative Add did not panic")
		}
	}()
	c.Add(-1)
}

func TestAtomicCounter(t *testing.T) {
	var c AtomicCounter
	if c.Value() != 0 {
		t.Errorf("zero value = %d", c.Value())
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
			c.Add(500)
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8*1500 {
		t.Errorf("Value = %d, want %d", got, 8*1500)
	}
	defer func() {
		if recover() == nil {
			t.Error("negative Add did not panic")
		}
	}()
	c.Add(-1)
}

// TestTokenBucket drives the bucket on a synthetic clock: spends succeed
// until the burst is gone, retry-after hints are exact, and refill is
// linear in elapsed time and capped at the burst.
func TestTokenBucket(t *testing.T) {
	t0 := time.Unix(1000, 0)
	b := NewTokenBucket(100, 50) // 100 tokens/s, depth 50
	if b.Rate() != 100 || b.Burst() != 50 {
		t.Fatalf("rate/burst = %v/%v", b.Rate(), b.Burst())
	}
	if ok, _ := b.Take(t0, 30); !ok {
		t.Fatal("fresh bucket refused a within-burst spend")
	}
	if ok, _ := b.Take(t0, 20); !ok {
		t.Fatal("exact drain refused")
	}
	ok, retry := b.Take(t0, 10)
	if ok {
		t.Fatal("empty bucket admitted a spend")
	}
	if retry != 100*time.Millisecond { // 10 tokens at 100/s
		t.Errorf("retry-after = %v, want 100ms", retry)
	}
	if b.Denied() != 1 {
		t.Errorf("Denied = %d, want 1", b.Denied())
	}
	// Refill honors the hint exactly.
	if ok, _ := b.Take(t0.Add(retry), 10); !ok {
		t.Error("spend refused after waiting the advertised retry-after")
	}
	// Refill caps at the burst: after a long idle, one burst is available
	// but no more.
	late := t0.Add(time.Hour)
	if ok, _ := b.Take(late, 50); !ok {
		t.Error("full burst unavailable after long idle")
	}
	if ok, _ := b.Take(late, 1); ok {
		t.Error("refill overshot the burst")
	}
	// A spend beyond the burst can never succeed but still yields a
	// finite hint.
	if ok, retry := b.Take(late.Add(time.Hour), 80); ok || retry <= 0 {
		t.Errorf("over-burst spend: ok=%v retry=%v", ok, retry)
	}
	if b.Level(late.Add(2*time.Hour)) != 50 {
		t.Errorf("Level = %v, want 50", b.Level(late.Add(2*time.Hour)))
	}
}

// TestTokenBucketConcurrent hammers one bucket from many goroutines; the
// admitted total must never exceed burst + elapsed*rate (no token is ever
// minted twice). Run under -race via make race.
func TestTokenBucketConcurrent(t *testing.T) {
	b := NewTokenBucket(1e6, 1000)
	start := time.Now()
	var admitted AtomicCounter
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				if ok, _ := b.Take(time.Now(), 10); ok {
					admitted.Add(10)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	if max := 1000 + elapsed*1e6 + 1; float64(admitted.Value()) > max {
		t.Errorf("admitted %d tokens, budget allowed at most %v", admitted.Value(), max)
	}
}

func TestTokenBucketValidation(t *testing.T) {
	for _, args := range [][2]float64{{0, 1}, {1, 0}, {-1, 1}, {1, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewTokenBucket(%v, %v) did not panic", args[0], args[1])
				}
			}()
			NewTokenBucket(args[0], args[1])
		}()
	}
}
