// Package metrics provides the statistics primitives the simulator and the
// live client use to report the paper's three performance metrics — access
// latency, client buffer space and client disk bandwidth — plus the server
// throughput measures of the batching substrate.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Summary accumulates scalar observations and reports count, mean, min,
// max and quantiles. The zero value is ready to use. Summary is not safe
// for concurrent use; wrap it with a mutex or aggregate per goroutine.
type Summary struct {
	values []float64
	sorted bool
	sum    float64
}

// Observe records one value.
func (s *Summary) Observe(v float64) {
	s.values = append(s.values, v)
	s.sorted = false
	s.sum += v
}

// Count returns the number of observations.
func (s *Summary) Count() int { return len(s.values) }

// Sum returns the total of all observations.
func (s *Summary) Sum() float64 { return s.sum }

// Mean returns the average, or 0 with no observations.
func (s *Summary) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	return s.sum / float64(len(s.values))
}

// Min returns the smallest observation, or 0 with none.
func (s *Summary) Min() float64 {
	if len(s.values) == 0 {
		return 0
	}
	s.sort()
	return s.values[0]
}

// Max returns the largest observation, or 0 with none.
func (s *Summary) Max() float64 {
	if len(s.values) == 0 {
		return 0
	}
	s.sort()
	return s.values[len(s.values)-1]
}

// Quantile returns the q-quantile (0 <= q <= 1) using nearest-rank on the
// sorted observations, or 0 with none.
func (s *Summary) Quantile(q float64) float64 {
	if len(s.values) == 0 {
		return 0
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("metrics: Quantile(%v): q outside [0, 1]", q))
	}
	s.sort()
	i := int(math.Ceil(q*float64(len(s.values)))) - 1
	if i < 0 {
		i = 0
	}
	return s.values[i]
}

// StdDev returns the population standard deviation, or 0 with fewer than
// two observations.
func (s *Summary) StdDev() float64 {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, v := range s.values {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// ReserveHint grows s's capacity so that n further observations (via
// Observe or Merge) append without reallocating. It records nothing.
func (s *Summary) ReserveHint(n int) {
	if n <= 0 {
		return
	}
	if need := len(s.values) + n; cap(s.values) < need {
		grown := make([]float64, len(s.values), need)
		copy(grown, s.values)
		s.values = grown
	}
}

// Merge absorbs every observation of other into s. It bulk-appends the
// raw observations and adds the running sums — one copy and one add
// rather than a per-element Observe loop — since it sits on the parallel
// sweep's shard-merge hot path. other is unchanged.
func (s *Summary) Merge(other *Summary) {
	if other == nil || len(other.values) == 0 {
		return
	}
	s.values = append(s.values, other.values...)
	s.sorted = false
	s.sum += other.sum
}

func (s *Summary) sort() {
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
}

// String renders a one-line summary.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g min=%.4g p50=%.4g p99=%.4g max=%.4g",
		s.Count(), s.Mean(), s.Min(), s.Quantile(0.5), s.Quantile(0.99), s.Max())
}

// Gauge tracks a level that rises and falls over (virtual) time, reporting
// its high-water mark and its time-weighted average. The zero value starts
// at level 0 at time 0.
type Gauge struct {
	level     float64
	lastT     float64
	started   bool
	startT    float64
	high      float64
	weightSum float64 // integral of level over time
}

// Set records that the level changed to v at time t. Times must be
// non-decreasing.
func (g *Gauge) Set(t, v float64) {
	if !g.started {
		g.started = true
		g.startT = t
		g.lastT = t
	}
	if t < g.lastT {
		panic(fmt.Sprintf("metrics: Gauge.Set at t=%v before last update %v", t, g.lastT))
	}
	g.weightSum += g.level * (t - g.lastT)
	g.lastT = t
	g.level = v
	if v > g.high {
		g.high = v
	}
}

// Add records a delta at time t.
func (g *Gauge) Add(t, delta float64) { g.Set(t, g.level+delta) }

// Level returns the current level.
func (g *Gauge) Level() float64 { return g.level }

// High returns the high-water mark.
func (g *Gauge) High() float64 { return g.high }

// TimeAverage returns the time-weighted mean level up to time t.
func (g *Gauge) TimeAverage(t float64) float64 {
	if !g.started || t <= g.startT {
		return g.level
	}
	return (g.weightSum + g.level*(t-g.lastT)) / (t - g.startT)
}

// AtomicCounter is a monotone event counter safe for concurrent use. It
// sits on the live data path's hot loops (hub fan-out, frame cache), so
// increments are single atomic adds with no locking; unlike Counter it may
// be updated from many goroutines at once. The zero value is ready to use
// and must not be copied after first use.
type AtomicCounter struct{ n atomic.Int64 }

// Inc adds one.
func (c *AtomicCounter) Inc() { c.n.Add(1) }

// Add adds delta, which must be non-negative.
func (c *AtomicCounter) Add(delta int64) {
	if delta < 0 {
		panic("metrics: AtomicCounter.Add of negative delta")
	}
	c.n.Add(delta)
}

// Value returns the current count.
func (c *AtomicCounter) Value() int64 { return c.n.Load() }

// TokenBucket is a continuously refilled token bucket, the admission
// primitive of the server's overload-safe repair plane: capacity refills
// at rate tokens/second up to burst, and each admitted request spends its
// cost up front. Take never sleeps — a denied caller receives the earliest
// retry-after delay at which the spend could succeed, so pushback can be
// propagated to remote clients instead of queued locally. Safe for
// concurrent use; time is supplied by the caller, which keeps the bucket
// fully deterministic under test clocks.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // bucket depth
	tokens float64
	last   time.Time
	denied AtomicCounter
}

// NewTokenBucket returns a full bucket refilling at rate tokens/second up
// to burst. It panics if rate or burst is not positive — an unlimited
// resource is represented by no bucket at all, not a degenerate one.
func NewTokenBucket(rate, burst float64) *TokenBucket {
	if rate <= 0 || burst <= 0 {
		panic(fmt.Sprintf("metrics: NewTokenBucket(%v, %v): rate and burst must be positive", rate, burst))
	}
	return &TokenBucket{rate: rate, burst: burst, tokens: burst}
}

// refillLocked advances the bucket to now. Callers hold mu.
func (b *TokenBucket) refillLocked(now time.Time) {
	if b.last.IsZero() {
		b.last = now
		return
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(b.burst, b.tokens+dt*b.rate)
		b.last = now
	}
}

// Take attempts to spend n tokens at time now. On success it returns
// (true, 0); on refusal, (false, d) where d is how long the caller should
// wait before the same spend could succeed. A spend larger than the burst
// can never succeed; its retry-after still reports the time to fill the
// deficit so callers degrade instead of spinning.
func (b *TokenBucket) Take(now time.Time, n float64) (bool, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(now)
	if n <= b.tokens {
		b.tokens -= n
		return true, 0
	}
	b.denied.Inc()
	return false, time.Duration((n - b.tokens) / b.rate * float64(time.Second))
}

// Level returns the token count at time now (for observability).
func (b *TokenBucket) Level(now time.Time) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(now)
	return b.tokens
}

// Denied returns how many Take calls have been refused.
func (b *TokenBucket) Denied() int64 { return b.denied.Value() }

// Rate returns the refill rate in tokens/second.
func (b *TokenBucket) Rate() float64 { return b.rate }

// Burst returns the bucket depth.
func (b *TokenBucket) Burst() float64 { return b.burst }

// Counter is a monotone event counter.
type Counter struct{ n int64 }

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds delta, which must be non-negative.
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic("metrics: Counter.Add of negative delta")
	}
	c.n += delta
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n }
