package metrics

import (
	"sync"
	"sync/atomic"
	"testing"
	"unsafe"
)

func TestPaddedCounter(t *testing.T) {
	var c PaddedCounter
	c.Inc()
	if got := c.Add(4); got != 5 {
		t.Errorf("Add returned %d, want 5", got)
	}
	if c.Value() != 5 {
		t.Errorf("Value = %d, want 5", c.Value())
	}
	defer func() {
		if recover() == nil {
			t.Error("negative Add did not panic")
		}
	}()
	c.Add(-1)
}

// TestPaddedCounterLayout pins the anti-false-sharing property the type
// exists for: in an array (or adjacent struct fields), consecutive hot
// words are at least two cache lines apart.
func TestPaddedCounterLayout(t *testing.T) {
	var pair [2]PaddedCounter
	d := uintptr(unsafe.Pointer(&pair[1].n)) - uintptr(unsafe.Pointer(&pair[0].n))
	if d < 2*cacheLine {
		t.Errorf("adjacent counters %d bytes apart, want >= %d", d, 2*cacheLine)
	}
}

func TestPaddedGauge(t *testing.T) {
	var g PaddedGauge
	if got := g.Inc(); got != 1 {
		t.Errorf("Inc returned %d, want 1", got)
	}
	if got := g.Add(4); got != 5 {
		t.Errorf("Add returned %d, want 5", got)
	}
	if got := g.Dec(); got != 4 {
		t.Errorf("Dec returned %d, want 4", got)
	}
	if g.Value() != 4 {
		t.Errorf("Value = %d, want 4", g.Value())
	}
	if g.High() != 5 {
		t.Errorf("High = %d, want 5 (peak before the Dec)", g.High())
	}
	g.Set(2)
	if g.Value() != 2 || g.High() != 5 {
		t.Errorf("after Set(2): Value=%d High=%d, want 2/5", g.Value(), g.High())
	}
	g.Set(9)
	if g.High() != 9 {
		t.Errorf("Set did not raise high-water mark: High=%d, want 9", g.High())
	}
}

// TestPaddedGaugeConcurrentHigh: the high-water mark is exact under
// concurrent churn — N goroutines each raise and lower the level; the
// recorded peak must equal the true maximum concurrency reached at some
// moment, which is at least 1 and at most N, and the final level must
// return to zero.
func TestPaddedGaugeConcurrentHigh(t *testing.T) {
	var g PaddedGauge
	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Inc()
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if g.Value() != 0 {
		t.Errorf("final level = %d, want 0", g.Value())
	}
	if h := g.High(); h < 1 || h > n {
		t.Errorf("high-water mark = %d, want within [1, %d]", h, n)
	}
}

// TestPaddedGaugeLayout pins the same anti-false-sharing property as
// TestPaddedCounterLayout.
func TestPaddedGaugeLayout(t *testing.T) {
	var pair [2]PaddedGauge
	d := uintptr(unsafe.Pointer(&pair[1].n)) - uintptr(unsafe.Pointer(&pair[0].n))
	if d < 2*cacheLine {
		t.Errorf("adjacent gauges %d bytes apart, want >= %d", d, 2*cacheLine)
	}
}

// The parallel-increment benchmarks demonstrate the padding win: one
// goroutine per core hammering its *own* counter, with the counters laid
// out adjacently. Unpadded, every increment invalidates the line holding
// its neighbors' counters; padded, each core owns its line outright.

const benchCounters = 64

func BenchmarkCounterParallelUnpadded(b *testing.B) {
	var cs [benchCounters]AtomicCounter
	var next atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		c := &cs[int(next.Add(1)-1)%benchCounters]
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkCounterParallelPadded(b *testing.B) {
	var cs [benchCounters]PaddedCounter
	var next atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		c := &cs[int(next.Add(1)-1)%benchCounters]
		for pb.Next() {
			c.Inc()
		}
	})
}

// unpaddedGauge is PaddedGauge's hot words without the insulation — the
// baseline the gauge benchmarks compare against.
type unpaddedGauge struct{ n, high atomic.Int64 }

func (g *unpaddedGauge) add(delta int64) {
	v := g.n.Add(delta)
	if delta > 0 {
		for {
			h := g.high.Load()
			if v <= h || g.high.CompareAndSwap(h, v) {
				break
			}
		}
	}
}

// The gauge benchmarks mirror the counter pair for the session-churn
// workload: each core raising and lowering its own adjacent gauge, the
// shape of per-worker viewer/cohort levels in the scale harness.

func BenchmarkGaugeParallelUnpadded(b *testing.B) {
	var gs [benchCounters]unpaddedGauge
	var next atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		g := &gs[int(next.Add(1)-1)%benchCounters]
		for pb.Next() {
			g.add(1)
			g.add(-1)
		}
	})
}

func BenchmarkGaugeParallelPadded(b *testing.B) {
	var gs [benchCounters]PaddedGauge
	var next atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		g := &gs[int(next.Add(1)-1)%benchCounters]
		for pb.Next() {
			g.Inc()
			g.Dec()
		}
	})
}
