package metrics

import (
	"sync/atomic"
	"testing"
	"unsafe"
)

func TestPaddedCounter(t *testing.T) {
	var c PaddedCounter
	c.Inc()
	if got := c.Add(4); got != 5 {
		t.Errorf("Add returned %d, want 5", got)
	}
	if c.Value() != 5 {
		t.Errorf("Value = %d, want 5", c.Value())
	}
	defer func() {
		if recover() == nil {
			t.Error("negative Add did not panic")
		}
	}()
	c.Add(-1)
}

// TestPaddedCounterLayout pins the anti-false-sharing property the type
// exists for: in an array (or adjacent struct fields), consecutive hot
// words are at least two cache lines apart.
func TestPaddedCounterLayout(t *testing.T) {
	var pair [2]PaddedCounter
	d := uintptr(unsafe.Pointer(&pair[1].n)) - uintptr(unsafe.Pointer(&pair[0].n))
	if d < 2*cacheLine {
		t.Errorf("adjacent counters %d bytes apart, want >= %d", d, 2*cacheLine)
	}
}

// The parallel-increment benchmarks demonstrate the padding win: one
// goroutine per core hammering its *own* counter, with the counters laid
// out adjacently. Unpadded, every increment invalidates the line holding
// its neighbors' counters; padded, each core owns its line outright.

const benchCounters = 64

func BenchmarkCounterParallelUnpadded(b *testing.B) {
	var cs [benchCounters]AtomicCounter
	var next atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		c := &cs[int(next.Add(1)-1)%benchCounters]
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkCounterParallelPadded(b *testing.B) {
	var cs [benchCounters]PaddedCounter
	var next atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		c := &cs[int(next.Add(1)-1)%benchCounters]
		for pb.Next() {
			c.Inc()
		}
	})
}
