package content

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestDeterministic(t *testing.T) {
	if ByteAt(3, 1000) != ByteAt(3, 1000) {
		t.Error("ByteAt not deterministic")
	}
	if ByteAt(3, 1000) == ByteAt(4, 1000) && ByteAt(3, 1001) == ByteAt(4, 1001) && ByteAt(3, 1002) == ByteAt(4, 1002) {
		t.Error("videos 3 and 4 share a 3-byte run; videos should decorrelate")
	}
}

func TestFillMatchesByteAt(t *testing.T) {
	buf := make([]byte, 256)
	Fill(buf, 7, 5000)
	for i, b := range buf {
		if b != ByteAt(7, 5000+int64(i)) {
			t.Fatalf("Fill[%d] mismatch", i)
		}
	}
}

func TestVerify(t *testing.T) {
	buf := make([]byte, 128)
	Fill(buf, 2, 64)
	if bad := Verify(buf, 2, 64); bad != -1 {
		t.Errorf("clean buffer failed verification at %d", bad)
	}
	buf[100] ^= 0xFF
	if bad := Verify(buf, 2, 64); bad != 100 {
		t.Errorf("corruption located at %d, want 100", bad)
	}
	// Wrong offset must fail early.
	if bad := Verify(buf, 2, 65); bad == -1 {
		t.Error("offset-shifted buffer verified")
	}
}

func TestFillSplitsAgree(t *testing.T) {
	// Filling in two halves equals filling at once (offset math).
	f := func(video uint8, off uint32, n uint8) bool {
		total := int(n) + 2
		whole := make([]byte, total)
		Fill(whole, int(video), int64(off))
		half := total / 2
		a := make([]byte, half)
		b := make([]byte, total-half)
		Fill(a, int(video), int64(off))
		Fill(b, int(video), int64(off)+int64(half))
		return bytes.Equal(whole, append(a, b...))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueSpread(t *testing.T) {
	// The pattern is noise-like: all 256 byte values appear in 64 KiB.
	seen := map[byte]bool{}
	for off := int64(0); off < 65536; off++ {
		seen[ByteAt(0, off)] = true
	}
	if len(seen) != 256 {
		t.Errorf("only %d distinct byte values in 64 KiB", len(seen))
	}
}
