package content

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestDeterministic(t *testing.T) {
	if ByteAt(3, 1000) != ByteAt(3, 1000) {
		t.Error("ByteAt not deterministic")
	}
	if ByteAt(3, 1000) == ByteAt(4, 1000) && ByteAt(3, 1001) == ByteAt(4, 1001) && ByteAt(3, 1002) == ByteAt(4, 1002) {
		t.Error("videos 3 and 4 share a 3-byte run; videos should decorrelate")
	}
}

func TestFillMatchesByteAt(t *testing.T) {
	buf := make([]byte, 256)
	Fill(buf, 7, 5000)
	for i, b := range buf {
		if b != ByteAt(7, 5000+int64(i)) {
			t.Fatalf("Fill[%d] mismatch", i)
		}
	}
}

func TestVerify(t *testing.T) {
	buf := make([]byte, 128)
	Fill(buf, 2, 64)
	if bad := Verify(buf, 2, 64); bad != -1 {
		t.Errorf("clean buffer failed verification at %d", bad)
	}
	buf[100] ^= 0xFF
	if bad := Verify(buf, 2, 64); bad != 100 {
		t.Errorf("corruption located at %d, want 100", bad)
	}
	// Wrong offset must fail early.
	if bad := Verify(buf, 2, 65); bad == -1 {
		t.Error("offset-shifted buffer verified")
	}
}

func TestFillSplitsAgree(t *testing.T) {
	// Filling in two halves equals filling at once (offset math).
	f := func(video uint8, off uint32, n uint8) bool {
		total := int(n) + 2
		whole := make([]byte, total)
		Fill(whole, int(video), int64(off))
		half := total / 2
		a := make([]byte, half)
		b := make([]byte, total-half)
		Fill(a, int(video), int64(off))
		Fill(b, int(video), int64(off)+int64(half))
		return bytes.Equal(whole, append(a, b...))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueSpread(t *testing.T) {
	// The pattern is noise-like: all 256 byte values appear in 64 KiB.
	seen := map[byte]bool{}
	for off := int64(0); off < 65536; off++ {
		seen[ByteAt(0, off)] = true
	}
	if len(seen) != 256 {
		t.Errorf("only %d distinct byte values in 64 KiB", len(seen))
	}
}

// fillReference is the byte-at-a-time seed implementation, kept as the
// oracle for the word-wise fast paths.
func fillReference(dst []byte, video int, offset int64) {
	for i := range dst {
		dst[i] = ByteAt(video, offset+int64(i))
	}
}

// TestFillDifferential sweeps randomized (video, offset, length) triples —
// including unaligned offsets, zero lengths and sub-word tails — asserting
// the word-wise Fill agrees with the ByteAt reference byte for byte.
func TestFillDifferential(t *testing.T) {
	f := func(video uint8, off uint64, n uint16) bool {
		length := int(n % 512)
		offset := int64(off % (1 << 40))
		got := make([]byte, length)
		want := make([]byte, length)
		Fill(got, int(video), offset)
		fillReference(want, int(video), offset)
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	// Deterministic edge sweep: every (alignment, length) pair around the
	// word size, plus zero-length at every alignment.
	for align := int64(0); align < 8; align++ {
		for length := 0; length <= 24; length++ {
			got := make([]byte, length)
			want := make([]byte, length)
			Fill(got, 3, 1000+align)
			fillReference(want, 3, 1000+align)
			if !bytes.Equal(got, want) {
				t.Fatalf("Fill(len=%d, off=%d) diverges from ByteAt", length, 1000+align)
			}
		}
	}
}

// TestVerifyDifferential flips one byte at a random position and asserts
// the word-wise Verify locates exactly it, across unaligned offsets and
// sub-word tails.
func TestVerifyDifferential(t *testing.T) {
	f := func(video uint8, off uint64, n uint16, pos uint16) bool {
		length := int(n%512) + 1
		offset := int64(off % (1 << 40))
		buf := make([]byte, length)
		Fill(buf, int(video), offset)
		if Verify(buf, int(video), offset) != -1 {
			return false
		}
		p := int(pos) % length
		buf[p] ^= 0x5A
		return Verify(buf, int(video), offset) == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	// Zero-length buffers verify trivially at any alignment.
	for align := int64(0); align < 8; align++ {
		if Verify(nil, 1, align) != -1 {
			t.Errorf("Verify(nil) at alignment %d != -1", align)
		}
	}
}

func BenchmarkContentFill(b *testing.B) {
	buf := make([]byte, 1024)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Fill(buf, 1, int64(i)*1024)
	}
}

func BenchmarkContentFillReference(b *testing.B) {
	buf := make([]byte, 1024)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fillReference(buf, 1, int64(i)*1024)
	}
}

func BenchmarkContentVerify(b *testing.B) {
	buf := make([]byte, 1024)
	Fill(buf, 1, 4096)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if Verify(buf, 1, 4096) != -1 {
			b.Fatal("clean buffer failed verification")
		}
	}
}
