// Package content generates and verifies the synthetic video payloads of
// the live demo. The paper's MPEG-1 videos are replaced by deterministic
// byte patterns — a keyed function of (video, absolute byte offset) — so a
// client can verify every received byte end-to-end without the server
// shipping reference data out of band. Broadcast scheduling is agnostic to
// payload contents, so this substitution preserves all protocol behavior.
package content

// ByteAt returns the payload byte of the given video at the given absolute
// offset. The mixing constants are odd so consecutive offsets and adjacent
// videos decorrelate; this is a checksum pattern, not cryptography.
func ByteAt(video int, offset int64) byte {
	x := uint64(offset)*0x9E3779B97F4A7C15 + uint64(video)*0xBF58476D1CE4E5B9 + 0x94D049BB133111EB
	x ^= x >> 31
	x *= 0xD6E8FEB86659FD93
	x ^= x >> 27
	return byte(x)
}

// Fill writes the video's bytes for [offset, offset+len(dst)) into dst.
func Fill(dst []byte, video int, offset int64) {
	for i := range dst {
		dst[i] = ByteAt(video, offset+int64(i))
	}
}

// Verify reports the index of the first byte of got that disagrees with
// the video's content at the given offset, or -1 if all match.
func Verify(got []byte, video int, offset int64) int {
	for i, b := range got {
		if b != ByteAt(video, offset+int64(i)) {
			return i
		}
	}
	return -1
}
