// Package content generates and verifies the synthetic video payloads of
// the live demo. The paper's MPEG-1 videos are replaced by deterministic
// byte patterns — a keyed function of (video, absolute byte offset) — so a
// client can verify every received byte end-to-end without the server
// shipping reference data out of band. Broadcast scheduling is agnostic to
// payload contents, so this substitution preserves all protocol behavior.
//
// The pattern is defined on 8-byte words: word w of a video is one
// SplitMix64-style mix of (video, w), and the byte at absolute offset o is
// byte o%8 (little-endian) of word o/8. Fill and Verify exploit this to
// move one word per mix on the aligned body of a buffer — the hot path of
// every channel pacer and of client-side verification — while ByteAt
// remains the one-byte reference definition both are tested against.
package content

import "encoding/binary"

// word returns 8 bytes of the video's pattern: the word covering absolute
// offsets [w*8, w*8+8). The word index rides a golden-ratio Weyl sequence
// keyed by the video, and mix is a single multiply-fold — two multiplies
// per 8 output bytes in total. The constants are odd so consecutive words
// and adjacent videos decorrelate; this is a checksum pattern, not
// cryptography, and the scrambler is sized to what the pattern's contract
// actually needs (determinism, video decorrelation, full byte-value
// spread — all asserted by tests) so the broadcast data path pays for
// nothing more.
func word(video int, w int64) uint64 {
	return mix(uint64(w)*0x9E3779B97F4A7C15 + uint64(video)*0xBF58476D1CE4E5B9 + 0x94D049BB133111EB)
}

// mix is the output scrambler shared by the scalar and word-wise paths:
// one multiply to diffuse the Weyl increment across the word, one fold to
// bring the high-half entropy down into the low bytes.
func mix(x uint64) uint64 {
	x *= 0xD6E8FEB86659FD93
	x ^= x >> 32
	return x
}

// ByteAt returns the payload byte of the given video at the given absolute
// offset. It is the reference definition: Fill and Verify must agree with
// it byte for byte at every offset.
func ByteAt(video int, offset int64) byte {
	return byte(word(video, offset>>3) >> (uint(offset&7) * 8))
}

// Fill writes the video's bytes for [offset, offset+len(dst)) into dst.
// The aligned body is generated a word at a time; a head before the first
// word boundary and a sub-word tail fall back to byte extraction.
func Fill(dst []byte, video int, offset int64) {
	i := 0
	if r := uint(offset & 7); r != 0 {
		w := word(video, offset>>3) >> (r * 8)
		for ; r < 8 && i < len(dst); r, i = r+1, i+1 {
			dst[i] = byte(w)
			w >>= 8
		}
	}
	wi := (offset + int64(i)) >> 3
	// Hot loop: the video term is loop-invariant, eight independent mixes
	// per iteration keep the multiply units saturated, and the re-sliced
	// body lets the compiler drop the per-store bounds checks. The loop
	// carries only (body, k); the word index resumes from the re-slice
	// distance afterwards.
	h := uint64(video)*0xBF58476D1CE4E5B9 + 0x94D049BB133111EB
	body := dst[i:]
	bodyWords := len(body) >> 3
	const golden = uint64(0x9E3779B97F4A7C15)
	k := uint64(wi)*golden + h
	g1 := golden // in variables so the stride sums wrap at run time
	g2 := g1 + g1
	g3 := g2 + g1
	g4 := g2 + g2
	g5 := g4 + g1
	g6 := g4 + g2
	g7 := g4 + g3
	g8 := g4 + g4
	for len(body) >= 64 {
		binary.LittleEndian.PutUint64(body[0:8], mix(k))
		binary.LittleEndian.PutUint64(body[8:16], mix(k+g1))
		binary.LittleEndian.PutUint64(body[16:24], mix(k+g2))
		binary.LittleEndian.PutUint64(body[24:32], mix(k+g3))
		binary.LittleEndian.PutUint64(body[32:40], mix(k+g4))
		binary.LittleEndian.PutUint64(body[40:48], mix(k+g5))
		binary.LittleEndian.PutUint64(body[48:56], mix(k+g6))
		binary.LittleEndian.PutUint64(body[56:64], mix(k+g7))
		body = body[64:]
		k += g8
	}
	for len(body) >= 8 {
		binary.LittleEndian.PutUint64(body[0:8], mix(k))
		body = body[8:]
		k += g1
	}
	if len(body) > 0 {
		w := word(video, wi+int64(bodyWords))
		for j := range body {
			body[j] = byte(w)
			w >>= 8
		}
	}
}

// Verify reports the index of the first byte of got that disagrees with
// the video's content at the given offset, or -1 if all match. Like Fill
// it compares the aligned body a word at a time, narrowing to the byte
// only when a word mismatches.
func Verify(got []byte, video int, offset int64) int {
	i := 0
	if r := uint(offset & 7); r != 0 {
		w := word(video, offset>>3) >> (r * 8)
		for ; r < 8 && i < len(got); r, i = r+1, i+1 {
			if got[i] != byte(w) {
				return i
			}
			w >>= 8
		}
	}
	wi := (offset + int64(i)) >> 3
	for ; i+8 <= len(got); i, wi = i+8, wi+1 {
		w := word(video, wi)
		if binary.LittleEndian.Uint64(got[i:]) == w {
			continue
		}
		for j := 0; j < 8; j++ {
			if got[i+j] != byte(w) {
				return i + j
			}
			w >>= 8
		}
	}
	if i < len(got) {
		w := word(video, wi)
		for ; i < len(got); i++ {
			if got[i] != byte(w) {
				return i
			}
			w >>= 8
		}
	}
	return -1
}
