//go:build race

package client

// See race_off_test.go.
const raceEnabled = true
