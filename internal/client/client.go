// Package client implements the receiving end of the live Skyscraper
// Broadcasting demo: the three service routines of Section 3.3 — an Odd
// Loader, an Even Loader, and a Video Player — over real sockets. Each
// loader is one tuner (one UDP socket) that joins its transmission groups'
// channels in video order, always at a broadcast beginning; the player
// verifies every byte against the deterministic content function and
// checks the jitter-freeness the paper proves.
//
// The paper proves that guarantee over a lossless channel; this client
// additionally survives a lossy one. Each loader detects gaps in the
// broadcast via the wire sequence numbering and chunk offsets, requests
// the missing chunks over unicast (the REPAIR control verb) with
// exponential backoff and capped retries, and bounds every recovery
// attempt by the chunk's scheduled playback time. Chunks that cannot be
// recovered in time degrade into counted losses instead of a wedged
// session, and a broken control connection is re-dialed with backoff.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"skyscraper/internal/content"
	"skyscraper/internal/core"
	"skyscraper/internal/mcast"
	"skyscraper/internal/series"
	"skyscraper/internal/trace"
	"skyscraper/internal/viewer"
	"skyscraper/internal/wire"
)

// maxRepairAttempts caps the unicast round trips spent on one chunk.
const maxRepairAttempts = viewer.DefaultMaxRepairAttempts

// errServerDraining reports a server-initiated bye: the server is shutting
// down gracefully and will answer no further requests on this session.
var errServerDraining = errors.New("client: server draining (bye received)")

// errBusy is the server's admission pushback on a repair request; it is
// flow control, not failure.
type errBusy struct{ retryAfter time.Duration }

func (e *errBusy) Error() string {
	if e.retryAfter <= 0 {
		return "client: server busy (re-listen to broadcast)"
	}
	return fmt.Sprintf("client: server busy (retry after %v)", e.retryAfter)
}

// Config parameterizes one viewing session.
type Config struct {
	// ServerAddr is the server's TCP control address.
	ServerAddr string
	// Video is the catalog index to watch.
	Video int
	// JoinLeadFrac is how early, as a fraction of one unit, a loader
	// sends its join before the broadcast it wants (covers control RTT).
	// Defaults to 0.5.
	JoinLeadFrac float64
	// SlackFrac is the fraction of one unit a chunk may arrive after its
	// scheduled playback before it counts as jitter. Defaults to 0.5.
	SlackFrac float64
	// RepairLagFrac is how long after a chunk's expected arrival, as a
	// fraction of one unit, a loader waits before requesting a unicast
	// repair (absorbs pacing drift and reordering before declaring a
	// gap). Defaults to 0.5.
	RepairLagFrac float64
	// DisableRepair turns the loss-recovery path off: missing chunks are
	// never requested from the server and become LostChunks when their
	// playback deadline passes.
	DisableRepair bool
	// DisableNack turns off the multicast-first NACK ladder: gaps go
	// straight to unicast KindRepair round trips. The ladder is on by
	// default whenever the server advertises it (Welcome.NackRepair), so
	// a burst of losses costs one aggregated gap-bitmap NACK and heals
	// off one multicast re-send shared by the whole injured audience.
	DisableNack bool
	// AllowDegraded lets a session complete, with losses and jitter
	// counted in Stats, instead of failing when chunks could not be
	// recovered before their playback deadline. Content-verification
	// errors always fail the session.
	AllowDegraded bool
	// Seed keys the session's deterministic backoff jitter: every repair
	// retry and control reconnect sleeps a full-jitter delay drawn from a
	// substream of this seed, so two clients with different seeds
	// desynchronize their retry schedules instead of re-storming the
	// server in lockstep — while a given seed always reproduces the same
	// schedule.
	Seed uint64
	// ControlTimeout bounds each control round trip (join acks, repair
	// replies) and each reconnect dial. Defaults to 5 seconds.
	ControlTimeout time.Duration
	// MaxBufferBytes, when positive, is the client's disk capacity; the
	// session fails if reception would exceed it. Provision it from the
	// scheme's 60*b*D1*(W-1) bound (in the live demo's units:
	// (W-1)*BytesPerUnit plus one chunk of arrival granularity).
	MaxBufferBytes int64
	// RecvBufBytes sizes the kernel receive buffer of the client's UDP
	// socket (SetReadBuffer). The server's batched egress delivers chunks
	// in deliberate bursts, so the buffer must absorb a whole burst while
	// the loader goroutine is scheduled out. Zero selects
	// mcast.DefaultRecvBufBytes (4 MiB).
	RecvBufBytes int
	// Trace, when non-nil, journals recovery events — gaps, repair round
	// trips, losses, reconnects — on the wall-minutes scale of the
	// broadcast epoch, so a failing chaos run can explain itself.
	Trace *trace.Buffer
	// Logf, when non-nil, receives diagnostic output.
	Logf func(format string, args ...any)
}

// Stats reports a completed session.
type Stats struct {
	// WaitUnits is the access latency in D1 units (bounded by 1 plus the
	// configured join lead).
	WaitUnits float64
	// Bytes is the total payload received and verified.
	Bytes int64
	// ByteErrors counts content-verification mismatches (must be 0).
	ByteErrors int64
	// LateChunks counts payload chunks that arrived after their
	// scheduled playback time plus slack (jitter; 0 when the paper's
	// guarantee holds).
	LateChunks int64
	// DuplicateChunks counts retransmissions discarded (tuning overlap
	// or injected duplication).
	DuplicateChunks int64
	// LostChunks counts chunks neither broadcast nor repaired before
	// their playback deadline (0 in a healthy or repairable session).
	LostChunks int64
	// RepairedChunks counts chunks recovered over unicast REPAIR.
	RepairedChunks int64
	// RepairRequests counts REPAIR round trips issued, retries included.
	RepairRequests int64
	// NacksSent counts gap-bitmap NACK round trips issued (one may cover
	// a burst of losses); NacksSuppressed aggregation windows that closed
	// with nothing left to report; MulticastRepairs chunks healed by a
	// NACK-triggered multicast re-send rather than a unicast pull.
	NacksSent        int64
	NacksSuppressed  int64
	MulticastRepairs int64
	// FecHeals counts chunks reconstructed locally from the proactive
	// parity stripe — zero control round trips; StripeDefeats gaps the
	// stripe could not cover (burst loss) that escalated to the NACK
	// ladder.
	FecHeals      int64
	StripeDefeats int64
	// BusyReplies counts repair requests the server pushed back with Busy
	// (admission control or storm suppression).
	BusyReplies int64
	// Reconnects counts control-connection re-dials that succeeded.
	Reconnects int64
	// MaxBufferBytes is the high-water mark of downloaded-but-unplayed
	// data.
	MaxBufferBytes int64
	// Groups is the number of transmission groups received.
	Groups int
}

// Watch runs a full viewing session: handshake, two-loader reception of
// every fragment, loss recovery, byte verification, and jitter accounting.
// It returns when the whole video has been received and its playback
// window has passed.
func Watch(cfg Config) (*Stats, error) {
	if cfg.JoinLeadFrac <= 0 {
		cfg.JoinLeadFrac = 0.5
	}
	if cfg.SlackFrac <= 0 {
		cfg.SlackFrac = 0.5
	}
	if cfg.RepairLagFrac <= 0 {
		cfg.RepairLagFrac = 0.5
	}
	if cfg.ControlTimeout <= 0 {
		cfg.ControlTimeout = 5 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}

	conn, err := net.DialTimeout("tcp", cfg.ServerAddr, cfg.ControlTimeout)
	if err != nil {
		return nil, fmt.Errorf("client: dialing control: %w", err)
	}
	r := bufio.NewReader(conn)
	w, err := handshake(conn, r, cfg.ControlTimeout)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if cfg.Video < 0 || cfg.Video >= w.Videos {
		conn.Close()
		return nil, fmt.Errorf("client: video %d outside catalog 0..%d", cfg.Video, w.Videos-1)
	}
	if len(w.SizeUnits) != w.ChannelsPerVideo || w.ChannelsPerVideo == 0 {
		conn.Close()
		return nil, fmt.Errorf("client: malformed welcome: %d sizes for %d channels", len(w.SizeUnits), w.ChannelsPerVideo)
	}
	if w.FecGroup < 0 || w.FecGroup > wire.MaxFecGroup {
		conn.Close()
		return nil, fmt.Errorf("client: malformed welcome: FEC group %d outside [0, %d]", w.FecGroup, wire.MaxFecGroup)
	}

	sess := &session{
		cfg:   cfg,
		w:     w,
		unit:  time.Duration(w.UnitNanos),
		epoch: time.Unix(0, w.EpochUnixNano),
		conn:  conn,
		cr:    r,
	}
	defer sess.closeControl()
	return sess.run()
}

// handshake sends hello and reads the server's welcome, bounding the round
// trip with timeout.
func handshake(conn net.Conn, r *bufio.Reader, timeout time.Duration) (*wire.Welcome, error) {
	if timeout > 0 {
		_ = conn.SetDeadline(time.Now().Add(timeout))
		defer conn.SetDeadline(time.Time{})
	}
	if err := wire.WriteControl(conn, &wire.Control{Kind: wire.KindHello}); err != nil {
		return nil, err
	}
	m, err := wire.ReadControl(r)
	if err != nil {
		return nil, fmt.Errorf("client: reading welcome: %w", err)
	}
	if m.Kind != wire.KindWelcome || m.Welcome == nil {
		return nil, fmt.Errorf("client: expected welcome, got %q (%s)", m.Kind, m.Error)
	}
	return m.Welcome, nil
}

// session carries one Watch invocation's state.
type session struct {
	cfg   Config
	w     *wire.Welcome
	unit  time.Duration
	epoch time.Time

	cmu  sync.Mutex // serializes control round trips and reconnects
	conn net.Conn   // nil after an unrecovered break
	cr   *bufio.Reader

	// playStartUnit anchors playback; byte x of the video plays at
	// unitTime(playStartUnit) + x * unit/BytesPerUnit.
	playStartUnit int64

	// Counters shared by the two loader goroutines.
	downloaded, bytes, byteErrors, lateChunks, dupChunks, maxBuffer atomic.Int64
	lost, repaired, repairReqs, reconnects, busyReplies             atomic.Int64
	nacks, nackSuppressed, nackRepaired                             atomic.Int64
	fecHeals, stripeDefeats                                         atomic.Int64

	// serverBye latches a server-initiated bye (graceful drain): no
	// further repairs are attempted; pending chunks ride the broadcast.
	serverBye atomic.Bool
	// redials numbers reconnect sleeps across the whole session, so each
	// draws from a fresh jitter substream.
	redials atomic.Int64
}

// jitterKeyReconnect is the jitter substream key for control reconnects;
// repair retries key on (channel, chunk) via repairJitterKey, so no two
// retry sites share a stream.
const jitterKeyReconnect = ^uint64(0)

func repairJitterKey(channel, idx int) uint64 {
	return viewer.RepairJitterKey(channel, idx)
}

// jitterIn returns a deterministic full-jitter delay: uniform in
// (0, window], bounded below by 1ms so retries never spin, drawn from the
// substream of the session seed identified by (key, stream). The formula
// lives in viewer.JitterIn so the virtual-viewer multiplexer draws
// bit-identical schedules for the seeds its viewers would have used here.
func (s *session) jitterIn(key, stream uint64, window time.Duration) time.Duration {
	return viewer.JitterIn(s.cfg.Seed, key, stream, window)
}

// maxInt64 raises the atomic to at least v.
func maxInt64(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// unitTime converts an absolute unit index to wall time.
func (s *session) unitTime(u int64) time.Time {
	return s.epoch.Add(time.Duration(u) * s.unit)
}

// tracef journals one recovery event on the broadcast epoch's wall scale.
func (s *session) tracef(kind, format string, args ...any) {
	s.cfg.Trace.Addf(trace.Wall(s.epoch, time.Now()), kind, format, args...)
}

func (s *session) closeControl() {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	if s.conn != nil {
		s.conn.Close()
		s.conn = nil
		s.cr = nil
	}
}

// redialLocked replaces a broken control connection, re-handshaking and
// verifying the peer still runs the same broadcast. Callers hold cmu.
func (s *session) redialLocked() error {
	if s.conn != nil {
		s.conn.Close()
		s.conn = nil
		s.cr = nil
	}
	var lastErr error
	for attempt := 0; attempt < 4; attempt++ {
		if attempt > 0 {
			// Full-jitter backoff with a doubling window: after a server
			// restart every client of the old process re-dials at once,
			// and jitter spreads the reconnect wave. The stream index is
			// session-global so repeated redial rounds stay uncorrelated.
			window := 10 * time.Millisecond << (attempt - 1)
			time.Sleep(s.jitterIn(jitterKeyReconnect, uint64(s.redials.Add(1)), window))
		}
		conn, err := net.DialTimeout("tcp", s.cfg.ServerAddr, s.cfg.ControlTimeout)
		if err != nil {
			lastErr = err
			continue
		}
		r := bufio.NewReader(conn)
		w, err := handshake(conn, r, s.cfg.ControlTimeout)
		if err != nil {
			conn.Close()
			lastErr = err
			continue
		}
		if w.EpochUnixNano != s.w.EpochUnixNano {
			conn.Close()
			return errors.New("client: server restarted (broadcast epoch changed); session cannot continue")
		}
		s.conn, s.cr = conn, r
		s.reconnects.Add(1)
		s.tracef("reconnect", "control connection re-established (attempt %d)", attempt+1)
		s.cfg.Logf("client: control connection re-established")
		return nil
	}
	return fmt.Errorf("client: reconnecting control: %w", lastErr)
}

// roundTrip performs one control request (and, when wantReply, reads the
// server's answer) under the control lock, transparently re-dialing a
// broken connection with backoff. Protocol-level rejections are returned
// as the reply, not as an error; only transport failures are retried.
func (s *session) roundTrip(msg *wire.Control, wantReply bool) (*wire.Control, error) {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		if s.conn == nil {
			if !wantReply {
				return nil, nil // fire-and-forget on a dead link: drop it
			}
			if err := s.redialLocked(); err != nil {
				return nil, err
			}
		}
		reply, err := s.tryLocked(msg, wantReply)
		if err == nil {
			if wantReply && reply.Kind == wire.KindBye {
				// Server-initiated bye: the server is draining. Latch it,
				// drop the connection (the server closes it right after),
				// and let the session degrade onto the broadcast alone.
				s.serverBye.Store(true)
				s.tracef("server-bye", "server draining; disabling repairs")
				s.cfg.Logf("client: server draining (bye); continuing without repairs")
				s.conn.Close()
				s.conn, s.cr = nil, nil
				return nil, errServerDraining
			}
			return reply, nil
		}
		lastErr = err
		s.tracef("control-error", "%s round trip: %v", msg.Kind, err)
		s.conn.Close()
		s.conn, s.cr = nil, nil
	}
	return nil, lastErr
}

// tryLocked is one deadline-bounded write (and optional reply read) on the
// current connection. Callers hold cmu and have a non-nil conn.
func (s *session) tryLocked(msg *wire.Control, wantReply bool) (*wire.Control, error) {
	_ = s.conn.SetDeadline(time.Now().Add(s.cfg.ControlTimeout))
	defer s.conn.SetDeadline(time.Time{})
	if err := wire.WriteControl(s.conn, msg); err != nil {
		return nil, err
	}
	if !wantReply {
		return nil, nil
	}
	return wire.ReadControl(s.cr)
}

// control performs one join or leave; joins wait for the ack so the
// membership is in place before the broadcast starts.
func (s *session) control(kind string, video, channel, port int) error {
	msg := &wire.Control{Kind: kind, Video: video, Channel: channel, Port: port}
	if kind != wire.KindJoin {
		_, err := s.roundTrip(msg, false)
		return err
	}
	reply, err := s.roundTrip(msg, true)
	if err != nil {
		return fmt.Errorf("client: waiting for join ack: %w", err)
	}
	if reply.Kind != wire.KindJoined {
		return fmt.Errorf("client: join rejected: %s", reply.Error)
	}
	return nil
}

// repairChunk asks the server to retransmit one chunk over unicast.
func (s *session) repairChunk(channel int, seq uint32, offset int64, length int) ([]byte, error) {
	s.repairReqs.Add(1)
	req := &wire.Repair{Video: s.cfg.Video, Channel: channel, Seq: seq, Offset: offset, Length: length}
	reply, err := s.roundTrip(&wire.Control{Kind: wire.KindRepair, Repair: req}, true)
	if err != nil {
		return nil, err
	}
	if reply.Kind == wire.KindBusy {
		s.busyReplies.Add(1)
		return nil, &errBusy{retryAfter: time.Duration(reply.RetryAfterNanos)}
	}
	if reply.Kind != wire.KindRepairOK || reply.Repair == nil {
		return nil, fmt.Errorf("repair rejected: %s", reply.Error)
	}
	rp := reply.Repair
	if rp.Video != req.Video || rp.Channel != req.Channel || rp.Offset != req.Offset || len(rp.Data) != length {
		return nil, fmt.Errorf("repair reply mismatch: got %d/%d@%d (%d bytes)", rp.Video, rp.Channel, rp.Offset, len(rp.Data))
	}
	return rp.Data, nil
}

// nackChunks reports a burst of losses as one gap-bitmap NACK and returns
// a predicate over the chunks the server accepted for multicast re-send
// (the rest fall back to unicast). A transport or protocol failure
// returns an error; the caller escalates every chunk.
func (s *session) nackChunks(channel int, seq uint32, chunks []int) (func(idx int) bool, error) {
	s.nacks.Add(1)
	req := wire.NackFromChunks(s.cfg.Video, channel, seq, chunks)
	reply, err := s.roundTrip(&wire.Control{Kind: wire.KindNack, Nack: req}, true)
	if err != nil {
		return nil, err
	}
	if reply.Kind == wire.KindBusy {
		s.busyReplies.Add(1)
		return nil, &errBusy{retryAfter: time.Duration(reply.RetryAfterNanos)}
	}
	if reply.Kind != wire.KindNackOK {
		return nil, fmt.Errorf("nack rejected: %s", reply.Error)
	}
	acc := reply.Nack
	if acc == nil {
		return func(int) bool { return false }, nil
	}
	return acc.Has, nil
}

func (s *session) run() (*Stats, error) {
	groups := series.Groups(s.w.SizeUnits)

	// Admission: playback starts at the next unit boundary that leaves
	// room for the join round-trip.
	arrival := time.Since(s.epoch)
	arrivalUnits := float64(arrival) / float64(s.unit)
	s.playStartUnit = int64(math.Ceil(arrivalUnits + s.cfg.JoinLeadFrac))
	waitUnits := float64(s.playStartUnit) - arrivalUnits

	plan, err := core.PlanForGroups(groups, s.playStartUnit)
	if err != nil {
		return nil, fmt.Errorf("client: planning reception: %w", err)
	}

	// One tuner (socket + goroutine) per loader, exactly as in the
	// paper's client design.
	byLoader := map[core.LoaderID][]core.Download{}
	for _, d := range plan.Downloads {
		byLoader[d.Loader] = append(byLoader[d.Loader], d)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for _, ld := range []core.LoaderID{core.OddLoader, core.EvenLoader} {
		downloads := byLoader[ld]
		if len(downloads) == 0 {
			continue
		}
		wg.Add(1)
		go func(ld core.LoaderID, downloads []core.Download) {
			defer wg.Done()
			if err := s.loader(ld, downloads); err != nil {
				errs <- fmt.Errorf("client: %v loader: %w", ld, err)
			}
		}(ld, downloads)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return nil, err
	}
	_, _ = s.roundTrip(&wire.Control{Kind: wire.KindBye}, false)

	stats := &Stats{
		WaitUnits:        waitUnits,
		Bytes:            s.bytes.Load(),
		ByteErrors:       s.byteErrors.Load(),
		LateChunks:       s.lateChunks.Load(),
		DuplicateChunks:  s.dupChunks.Load(),
		LostChunks:       s.lost.Load(),
		RepairedChunks:   s.repaired.Load(),
		RepairRequests:   s.repairReqs.Load(),
		NacksSent:        s.nacks.Load(),
		NacksSuppressed:  s.nackSuppressed.Load(),
		MulticastRepairs: s.nackRepaired.Load(),
		FecHeals:         s.fecHeals.Load(),
		StripeDefeats:    s.stripeDefeats.Load(),
		BusyReplies:      s.busyReplies.Load(),
		Reconnects:       s.reconnects.Load(),
		MaxBufferBytes:   s.maxBuffer.Load(),
		Groups:           len(groups),
	}
	if stats.ByteErrors > 0 {
		return stats, fmt.Errorf("client: %d byte verification errors", stats.ByteErrors)
	}
	if !s.cfg.AllowDegraded {
		if stats.LostChunks > 0 {
			return stats, fmt.Errorf("client: %d chunks lost (unrepaired before playback)", stats.LostChunks)
		}
		if stats.LateChunks > 0 {
			return stats, fmt.Errorf("client: jitter: %d chunks arrived after their playback time", stats.LateChunks)
		}
	}
	return stats, nil
}

// tuneEntry is one fragment on a loader's tuning schedule: which channel
// to receive, when its join lead opens, and whether the join has fired —
// possibly early, from inside the previous fragment's receive loop (the
// tuner handoff in receiveFragment).
type tuneEntry struct {
	channel  int
	g        series.Group
	j        int
	tuneUnit int64
	wantSeq  uint32
	joinAt   time.Time
	joined   bool
	// handoff holds this fragment's datagrams read by the predecessor's
	// loop during the handoff overlap; booked before the first deadline
	// pass of this fragment's own loop.
	handoff []handoffChunk
}

// handoffChunk is one successor-fragment datagram read by the
// predecessor's loop — data or parity, copied raw out of the shared read
// buffer and stamped with its read time so booking is faithful to
// arrival. The successor decodes it itself, exactly as if it had read it
// off the socket.
type handoffChunk struct {
	frame []byte
	at    time.Time
}

// loader receives this loader's transmission groups in order on one tuner.
func (s *session) loader(ld core.LoaderID, downloads []core.Download) error {
	rcv, err := mcast.NewReceiverSized(s.cfg.RecvBufBytes)
	if err != nil {
		return err
	}
	defer rcv.Close()
	port := rcv.Addr().Port

	// Flatten the schedule so each fragment's receive loop can see its
	// successor: consecutive broadcast windows on a skyscraper loader abut
	// exactly, so the handoff between them must not hinge on how fast the
	// previous fragment's repair tail drains.
	lead := time.Duration(s.cfg.JoinLeadFrac * float64(s.unit))
	var entries []*tuneEntry
	for _, d := range downloads {
		for j := 0; j < d.Group.Count; j++ {
			tuneUnit := d.FragmentStart(j)
			entries = append(entries, &tuneEntry{
				channel:  d.Group.First + j,
				g:        d.Group,
				j:        j,
				tuneUnit: tuneUnit,
				wantSeq:  uint32(tuneUnit / d.Group.Size),
				joinAt:   s.unitTime(tuneUnit).Add(-lead),
			})
		}
	}
	for i, e := range entries {
		var next *tuneEntry
		if i+1 < len(entries) {
			next = entries[i+1]
		}
		if err := s.receiveFragment(rcv, port, e, next); err != nil {
			return fmt.Errorf("group %d %v channel %d: %w", e.g.Index, e.g, e.channel, err)
		}
	}
	return nil
}

// accountPayload verifies and books one received or repaired chunk
// payload. Jitter (late-arrival) accounting lives in the loader state
// machine, which sees every resolution; this handles what the machine
// cannot: the bytes themselves.
func (s *session) accountPayload(payload []byte, videoOffset int64, now time.Time) error {
	if bad := content.Verify(payload, s.cfg.Video, videoOffset); bad >= 0 {
		s.byteErrors.Add(1)
	}
	s.bytes.Add(int64(len(payload)))

	// Buffer accounting: downloaded minus played, sampled at arrivals
	// (the high-water mark occurs at an arrival).
	d := s.downloaded.Add(int64(len(payload)))
	lvl := d - s.playedBytes(now)
	maxInt64(&s.maxBuffer, lvl)
	if s.cfg.MaxBufferBytes > 0 && lvl > s.cfg.MaxBufferBytes {
		return fmt.Errorf("buffer capacity exceeded: %d > %d bytes", lvl, s.cfg.MaxBufferBytes)
	}
	return nil
}

// receiveFragment tunes one channel at a broadcast beginning and collects
// the complete fragment, recovering gaps over unicast as playback
// deadlines approach. The gap-detection/repair/loss policy lives in the
// shared loader state machine (viewer.Machine); this method supplies its
// wall clock, socket, and control plane.
//
// When next is non-nil it is the successor fragment on the same tuner,
// and this loop performs the handoff itself: it fires next's join once
// its lead opens, and any successor datagram it then reads off the
// shared socket is queued on next's entry instead of discarded. On a
// skyscraper loader consecutive broadcast windows abut exactly, so the
// successor's first chunks can land while this fragment's repair tail is
// still draining; the handoff makes catching them independent of how
// fast this loop exits.
func (s *session) receiveFragment(rcv *mcast.Receiver, port int, e, next *tuneEntry) error {
	channel, g, j, tuneUnit := e.channel, e.g, e.j, e.tuneUnit
	size := g.Size
	totalBytes := int(size) * s.w.BytesPerUnit
	videoBase := g.StartUnit*int64(s.w.BytesPerUnit) + int64(j)*size*int64(s.w.BytesPerUnit)
	wantSeq := uint32(tuneUnit / size) // broadcast repetition starting at tuneUnit
	m := viewer.NewMachine(viewer.FragmentParams{
		Video:        s.cfg.Video,
		Channel:      channel,
		Size:         size,
		TuneUnit:     tuneUnit,
		PlayUnit:     s.playStartUnit + g.StartUnit + int64(j)*size,
		TotalBytes:   totalBytes,
		ChunkBytes:   s.w.ChunkBytes,
		BytesPerUnit: s.w.BytesPerUnit,
		Epoch:        s.epoch,
		Unit:         s.unit,
		Slack:        time.Duration(s.cfg.SlackFrac * float64(s.unit)),
		Lag:          time.Duration(s.cfg.RepairLagFrac * float64(s.unit)),

		DisableRepair:  s.cfg.DisableRepair,
		RepairsEnabled: func() bool { return !s.serverBye.Load() },
		NackEnabled:    s.w.NackRepair && !s.cfg.DisableNack,
		FecGroup:       s.w.FecGroup,
		Jitter:         s.jitterIn,
		OnLost: func(idx, attempts int) {
			s.tracef("chunk-lost", "ch %d seq %d chunk %d lost (%d repair attempts)", channel, wantSeq, idx, attempts)
			s.cfg.Logf("client: ch %d chunk %d lost after %d repair attempts", channel, idx, attempts)
		},
	})
	buf := make([]byte, wire.EncodedSize(wire.MaxPayload))

	// The stripe reassembly buffer (nil when the server broadcasts no
	// parity): every accepted data chunk and every parity frame folds in,
	// and a completed group with one hole (two, under RS) hands the
	// missing payload back with zero control round trips.
	stripe := viewer.NewStripe(s.w.FecGroup, s.w.FecMode, s.w.ChunkBytes, totalBytes/s.w.ChunkBytes)
	var heals []viewer.Heal
	bookHeals := func(now time.Time) error {
		for _, h := range heals {
			if m.FecHealed(h.Idx, now) == viewer.Duplicate {
				continue
			}
			s.tracef("fec-heal", "ch %d seq %d chunk %d reconstructed from parity", channel, wantSeq, h.Idx)
			off := int64(h.Idx) * int64(s.w.ChunkBytes)
			if err := s.accountPayload(h.Payload[:m.ChunkLen(h.Idx)], videoBase+off, now); err != nil {
				return err
			}
		}
		heals = heals[:0]
		return nil
	}

	// Join ahead of the broadcast start — unless the previous fragment's
	// receive loop already fired this join during its handoff overlap.
	if !e.joined {
		if d := time.Until(e.joinAt); d > 0 {
			time.Sleep(d)
		}
		if err := s.control(wire.KindJoin, s.cfg.Video, channel, port); err != nil {
			return err
		}
		e.joined = true
	}
	defer func() { _ = s.control(wire.KindLeave, s.cfg.Video, channel, 0) }()

	// Book datagrams the predecessor's loop read for this fragment during
	// the handoff overlap — before the machine's first deadline pass, so
	// a boundary chunk that already arrived can never be mistaken for a
	// gap, however late this loop starts.
	for _, h := range e.handoff {
		if stripe != nil && wire.IsParity(h.frame) {
			p, err := wire.DecodeParity(h.frame)
			if err != nil || int(p.Video) != s.cfg.Video || int(p.Channel) != channel || p.Seq != wantSeq {
				continue
			}
			heals = stripe.Parity(&p, heals)
			if err := bookHeals(h.at); err != nil {
				return err
			}
			continue
		}
		c, err := wire.Decode(h.frame)
		if err != nil {
			if errors.Is(err, wire.ErrBadCRC) {
				s.byteErrors.Add(1)
				continue
			}
			return err
		}
		if int(c.Total) != totalBytes || int(c.Offset)%s.w.ChunkBytes != 0 || int(c.Offset) >= totalBytes {
			return fmt.Errorf("inconsistent handoff chunk: offset %d", c.Offset)
		}
		idx := int(c.Offset) / s.w.ChunkBytes
		if m.Chunk(idx, h.at) == viewer.Duplicate {
			continue
		}
		if err := s.accountPayload(c.Payload, videoBase+int64(c.Offset), h.at); err != nil {
			return err
		}
		heals = stripe.Data(idx, c.Payload, heals)
		if err := bookHeals(h.at); err != nil {
			return err
		}
	}
	e.handoff = nil

	for !m.Done() {
		now := time.Now()
		// Tuner handoff: once the successor's join lead opens, fire its
		// join from here, so whether its first chunks are caught off the
		// broadcast no longer depends on how fast this loop exits.
		if next != nil && !next.joined && !now.Before(next.joinAt) {
			if err := s.control(wire.KindJoin, s.cfg.Video, next.channel, port); err != nil {
				return err
			}
			next.joined = true
		}
		act := m.Next(now)
		if act.Kind == viewer.ActRepair {
			idx := act.Idx
			off := int64(idx) * int64(s.w.ChunkBytes)
			s.tracef("repair-req", "ch %d seq %d chunk %d (attempt %d)", channel, wantSeq, idx, act.Attempt)
			data, err := s.repairChunk(channel, wantSeq, off, m.ChunkLen(idx))
			now = time.Now()
			outcome, retryAfter := viewer.RepairOK, time.Duration(0)
			if err != nil {
				var busy *errBusy
				switch {
				case errors.As(err, &busy):
					// Admission pushback is flow control, not failure: the
					// chunk stays eligible until its playback deadline.
					s.tracef("repair-busy", "ch %d seq %d chunk %d: %v", channel, wantSeq, idx, err)
					outcome, retryAfter = viewer.RepairBusy, busy.retryAfter
				case errors.Is(err, errServerDraining):
					// No further repairs this session; the chunk rides the
					// broadcast until its deadline.
					s.tracef("repair-off", "ch %d seq %d chunk %d: %v", channel, wantSeq, idx, err)
					outcome = viewer.RepairDisabled
				default:
					s.tracef("repair-fail", "ch %d seq %d chunk %d: %v", channel, wantSeq, idx, err)
					outcome = viewer.RepairFailed
				}
			}
			if m.RepairResult(idx, outcome, retryAfter, now) == viewer.Repaired {
				s.tracef("repair-ok", "ch %d seq %d chunk %d repaired (attempt %d)", channel, wantSeq, idx, m.Attempts(idx))
				if err := s.accountPayload(data, videoBase+off, now); err != nil {
					return err
				}
			}
			continue
		}
		if act.Kind == viewer.ActNack {
			// Multicast-first recovery: one aggregated gap bitmap for the
			// burst; accepted chunks heal off the broadcast group, refused
			// ones escalate to unicast.
			s.tracef("nack", "ch %d seq %d: %d chunks", channel, wantSeq, len(act.Chunks))
			accepted, err := s.nackChunks(channel, wantSeq, act.Chunks)
			now = time.Now()
			if err != nil {
				s.tracef("nack-fail", "ch %d seq %d: %v", channel, wantSeq, err)
				accepted = nil
			}
			m.NackResult(act.Chunks, accepted, now)
			continue
		}

		// Block on the broadcast until the next recovery deadline (or the
		// successor's join lead, whichever opens sooner).
		wake := act.Wake
		if next != nil && !next.joined && next.joinAt.Before(wake) {
			wake = next.joinAt
		}
		if earliest := now.Add(time.Millisecond); wake.Before(earliest) {
			wake = earliest
		}
		if err := rcv.Conn.SetReadDeadline(wake); err != nil {
			return err
		}
		n, _, err := rcv.Conn.ReadFromUDPAddrPort(buf)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue // run another recovery pass
			}
			return fmt.Errorf("receiving (%d chunks outstanding): %w", outstanding(m), err)
		}
		now = time.Now()
		if stripe != nil && wire.IsParity(buf[:n]) {
			// A parity frame: fold it into its group's accumulator and book
			// whatever it completes. Damaged or stray parity is dropped —
			// it is redundancy, never worth failing a session over — except
			// a successor parity frame read during the handoff overlap,
			// which is queued raw for the successor's loop just like its
			// data: the successor's first group must not lose its stripe to
			// tuner-handoff timing.
			p, err := wire.DecodeParity(buf[:n])
			if err != nil || int(p.Video) != s.cfg.Video || int(p.Channel) != channel || p.Seq != wantSeq {
				if err == nil && next != nil && next.joined && int(p.Video) == s.cfg.Video &&
					int(p.Channel) == next.channel && p.Seq == next.wantSeq {
					next.handoff = append(next.handoff, handoffChunk{
						frame: append([]byte(nil), buf[:n]...),
						at:    now,
					})
				}
				continue
			}
			heals = stripe.Parity(&p, heals)
			if err := bookHeals(now); err != nil {
				return err
			}
			continue
		}
		c, err := wire.Decode(buf[:n])
		if err != nil {
			if errors.Is(err, wire.ErrBadCRC) {
				s.byteErrors.Add(1)
				continue
			}
			return err
		}
		if int(c.Video) != s.cfg.Video || int(c.Channel) != channel || c.Seq != wantSeq {
			// A successor datagram read during the handoff overlap is
			// queued for the successor's own loop (the payload is copied:
			// the read buffer is reused). Anything else is a stray from an
			// earlier membership or repetition.
			if next != nil && next.joined && int(c.Video) == s.cfg.Video &&
				int(c.Channel) == next.channel && c.Seq == next.wantSeq {
				next.handoff = append(next.handoff, handoffChunk{
					frame: append([]byte(nil), buf[:n]...),
					at:    now,
				})
			}
			continue
		}
		if int(c.Total) != totalBytes || int(c.Offset)%s.w.ChunkBytes != 0 || int(c.Offset) >= totalBytes {
			return fmt.Errorf("inconsistent chunk: offset %d total %d", c.Offset, c.Total)
		}
		idx := int(c.Offset) / s.w.ChunkBytes
		if m.Chunk(idx, now) == viewer.Duplicate {
			continue
		}
		if err := s.accountPayload(c.Payload, videoBase+int64(c.Offset), now); err != nil {
			return err
		}
		heals = stripe.Data(idx, c.Payload, heals)
		if err := bookHeals(now); err != nil {
			return err
		}
	}

	// Fold the machine's recovery ledger into the session counters.
	st := m.Stats()
	s.lateChunks.Add(st.Late)
	s.dupChunks.Add(st.Duplicates)
	s.lost.Add(st.Lost)
	s.repaired.Add(st.Repaired)
	s.nackSuppressed.Add(st.NacksSuppressed)
	s.nackRepaired.Add(st.NackRepaired)
	s.fecHeals.Add(st.FecHeals)
	s.stripeDefeats.Add(st.StripeDefeats)
	return nil
}

// outstanding counts the chunks a machine has not yet resolved.
func outstanding(m *viewer.Machine) int {
	n := 0
	for idx := 0; idx < m.NChunks(); idx++ {
		if !m.Have(idx) {
			n++
		}
	}
	return n
}

// playedBytes returns how many bytes the player has consumed by time t
// under its fixed schedule.
func (s *session) playedBytes(t time.Time) int64 {
	elapsed := t.Sub(s.unitTime(s.playStartUnit))
	if elapsed <= 0 {
		return 0
	}
	units := float64(elapsed) / float64(s.unit)
	var total int64
	for _, sz := range s.w.SizeUnits {
		total += sz
	}
	played := int64(units * float64(s.w.BytesPerUnit))
	if max := total * int64(s.w.BytesPerUnit); played > max {
		return max
	}
	return played
}
