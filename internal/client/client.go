// Package client implements the receiving end of the live Skyscraper
// Broadcasting demo: the three service routines of Section 3.3 — an Odd
// Loader, an Even Loader, and a Video Player — over real sockets. Each
// loader is one tuner (one UDP socket) that joins its transmission groups'
// channels in video order, always at a broadcast beginning; the player
// verifies every byte against the deterministic content function and
// checks the jitter-freeness the paper proves.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"skyscraper/internal/content"
	"skyscraper/internal/core"
	"skyscraper/internal/mcast"
	"skyscraper/internal/series"
	"skyscraper/internal/wire"
)

// Config parameterizes one viewing session.
type Config struct {
	// ServerAddr is the server's TCP control address.
	ServerAddr string
	// Video is the catalog index to watch.
	Video int
	// JoinLeadFrac is how early, as a fraction of one unit, a loader
	// sends its join before the broadcast it wants (covers control RTT).
	// Defaults to 0.5.
	JoinLeadFrac float64
	// SlackFrac is the fraction of one unit a chunk may arrive after its
	// scheduled playback before it counts as jitter. Defaults to 0.5.
	SlackFrac float64
	// MaxBufferBytes, when positive, is the client's disk capacity; the
	// session fails if reception would exceed it. Provision it from the
	// scheme's 60*b*D1*(W-1) bound (in the live demo's units:
	// (W-1)*BytesPerUnit plus one chunk of arrival granularity).
	MaxBufferBytes int64
	// Logf, when non-nil, receives diagnostic output.
	Logf func(format string, args ...any)
}

// Stats reports a completed session.
type Stats struct {
	// WaitUnits is the access latency in D1 units (bounded by 1 plus the
	// configured join lead).
	WaitUnits float64
	// Bytes is the total payload received and verified.
	Bytes int64
	// ByteErrors counts content-verification mismatches (must be 0).
	ByteErrors int64
	// LateChunks counts payload chunks that arrived after their
	// scheduled playback time plus slack (jitter; must be 0).
	LateChunks int64
	// DuplicateChunks counts retransmissions discarded (tuning overlap).
	DuplicateChunks int64
	// MaxBufferBytes is the high-water mark of downloaded-but-unplayed
	// data.
	MaxBufferBytes int64
	// Groups is the number of transmission groups received.
	Groups int
}

// Watch runs a full viewing session: handshake, two-loader reception of
// every fragment, byte verification, and jitter accounting. It returns
// when the whole video has been received and its playback window has
// passed.
func Watch(cfg Config) (*Stats, error) {
	if cfg.JoinLeadFrac <= 0 {
		cfg.JoinLeadFrac = 0.5
	}
	if cfg.SlackFrac <= 0 {
		cfg.SlackFrac = 0.5
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}

	conn, err := net.Dial("tcp", cfg.ServerAddr)
	if err != nil {
		return nil, fmt.Errorf("client: dialing control: %w", err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	if err := wire.WriteControl(conn, &wire.Control{Kind: wire.KindHello}); err != nil {
		return nil, err
	}
	m, err := wire.ReadControl(r)
	if err != nil {
		return nil, fmt.Errorf("client: reading welcome: %w", err)
	}
	if m.Kind != wire.KindWelcome || m.Welcome == nil {
		return nil, fmt.Errorf("client: expected welcome, got %q (%s)", m.Kind, m.Error)
	}
	w := m.Welcome
	if cfg.Video < 0 || cfg.Video >= w.Videos {
		return nil, fmt.Errorf("client: video %d outside catalog 0..%d", cfg.Video, w.Videos-1)
	}
	if len(w.SizeUnits) != w.ChannelsPerVideo || w.ChannelsPerVideo == 0 {
		return nil, fmt.Errorf("client: malformed welcome: %d sizes for %d channels", len(w.SizeUnits), w.ChannelsPerVideo)
	}

	sess := &session{
		cfg:   cfg,
		w:     w,
		unit:  time.Duration(w.UnitNanos),
		epoch: time.Unix(0, w.EpochUnixNano),
		conn:  conn,
		cr:    r,
	}
	return sess.run()
}

// session carries one Watch invocation's state.
type session struct {
	cfg   Config
	w     *wire.Welcome
	unit  time.Duration
	epoch time.Time

	conn net.Conn
	cr   *bufio.Reader
	cmu  sync.Mutex // serializes control writes and joined replies

	// playStartUnit anchors playback; byte x of the video plays at
	// unitTime(playStartUnit) + x * unit/BytesPerUnit.
	playStartUnit int64

	// Counters shared by the two loader goroutines.
	downloaded, bytes, byteErrors, lateChunks, dupChunks, maxBuffer atomic.Int64
}

// maxInt64 raises the atomic to at least v.
func maxInt64(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// unitTime converts an absolute unit index to wall time.
func (s *session) unitTime(u int64) time.Time {
	return s.epoch.Add(time.Duration(u) * s.unit)
}

// control performs one join or leave round-trip; joins wait for the ack so
// the membership is in place before the broadcast starts.
func (s *session) control(kind string, video, channel, port int) error {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	msg := &wire.Control{Kind: kind, Video: video, Channel: channel, Port: port}
	if err := wire.WriteControl(s.conn, msg); err != nil {
		return err
	}
	if kind != wire.KindJoin {
		return nil
	}
	reply, err := wire.ReadControl(s.cr)
	if err != nil {
		return fmt.Errorf("client: waiting for join ack: %w", err)
	}
	if reply.Kind != wire.KindJoined {
		return fmt.Errorf("client: join rejected: %s", reply.Error)
	}
	return nil
}

func (s *session) run() (*Stats, error) {
	groups := series.Groups(s.w.SizeUnits)

	// Admission: playback starts at the next unit boundary that leaves
	// room for the join round-trip.
	arrival := time.Since(s.epoch)
	arrivalUnits := float64(arrival) / float64(s.unit)
	s.playStartUnit = int64(math.Ceil(arrivalUnits + s.cfg.JoinLeadFrac))
	waitUnits := float64(s.playStartUnit) - arrivalUnits

	plan, err := core.PlanForGroups(groups, s.playStartUnit)
	if err != nil {
		return nil, fmt.Errorf("client: planning reception: %w", err)
	}

	// One tuner (socket + goroutine) per loader, exactly as in the
	// paper's client design.
	byLoader := map[core.LoaderID][]core.Download{}
	for _, d := range plan.Downloads {
		byLoader[d.Loader] = append(byLoader[d.Loader], d)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for _, ld := range []core.LoaderID{core.OddLoader, core.EvenLoader} {
		downloads := byLoader[ld]
		if len(downloads) == 0 {
			continue
		}
		wg.Add(1)
		go func(ld core.LoaderID, downloads []core.Download) {
			defer wg.Done()
			if err := s.loader(ld, downloads); err != nil {
				errs <- fmt.Errorf("client: %v loader: %w", ld, err)
			}
		}(ld, downloads)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return nil, err
	}
	_ = wire.WriteControl(s.conn, &wire.Control{Kind: wire.KindBye})

	stats := &Stats{
		WaitUnits:       waitUnits,
		Bytes:           s.bytes.Load(),
		ByteErrors:      s.byteErrors.Load(),
		LateChunks:      s.lateChunks.Load(),
		DuplicateChunks: s.dupChunks.Load(),
		MaxBufferBytes:  s.maxBuffer.Load(),
		Groups:          len(groups),
	}
	if stats.ByteErrors > 0 {
		return stats, fmt.Errorf("client: %d byte verification errors", stats.ByteErrors)
	}
	if stats.LateChunks > 0 {
		return stats, fmt.Errorf("client: jitter: %d chunks arrived after their playback time", stats.LateChunks)
	}
	return stats, nil
}

// loader receives this loader's transmission groups in order on one tuner.
func (s *session) loader(ld core.LoaderID, downloads []core.Download) error {
	rcv, err := mcast.NewReceiver()
	if err != nil {
		return err
	}
	defer rcv.Close()
	port := rcv.Addr().Port

	for _, d := range downloads {
		for j := 0; j < d.Group.Count; j++ {
			channel := d.Group.First + j
			tuneUnit := d.FragmentStart(j)
			if err := s.receiveFragment(rcv, port, channel, d.Group, j, tuneUnit); err != nil {
				return fmt.Errorf("group %d %v channel %d: %w", d.Group.Index, d.Group, channel, err)
			}
		}
	}
	return nil
}

// receiveFragment tunes one channel at a broadcast beginning and collects
// the complete fragment.
func (s *session) receiveFragment(rcv *mcast.Receiver, port, channel int, g series.Group, j int, tuneUnit int64) error {
	var (
		size       = g.Size
		totalBytes = int(size) * s.w.BytesPerUnit
		wantSeq    = uint32(tuneUnit / size) // broadcast repetition starting at tuneUnit
		start      = s.unitTime(tuneUnit)
		// Receive cutoff: the broadcast nominally ends at
		// tuneUnit+size; several units of grace absorb server pacing
		// drift on a loaded machine (late data is still accounted as
		// jitter by the slack check — this deadline only bounds how
		// long to wait before concluding data was lost outright).
		deadline = s.unitTime(tuneUnit + size).Add(6 * s.unit)
		have     = make([]bool, (totalBytes+s.w.ChunkBytes-1)/s.w.ChunkBytes)
		got      = 0
		buf      = make([]byte, wire.EncodedSize(wire.MaxPayload))
		slack    = time.Duration(s.cfg.SlackFrac * float64(s.unit))
	)
	// Playback timing of this fragment.
	playUnit := s.playStartUnit + g.StartUnit + int64(j)*size
	videoBase := g.StartUnit*int64(s.w.BytesPerUnit) + int64(j)*size*int64(s.w.BytesPerUnit)

	// Join ahead of the broadcast start.
	lead := time.Duration(s.cfg.JoinLeadFrac * float64(s.unit))
	if d := time.Until(start.Add(-lead)); d > 0 {
		time.Sleep(d)
	}
	if err := s.control(wire.KindJoin, s.cfg.Video, channel, port); err != nil {
		return err
	}
	defer func() { _ = s.control(wire.KindLeave, s.cfg.Video, channel, 0) }()

	for got < len(have) {
		if err := rcv.Conn.SetReadDeadline(deadline); err != nil {
			return err
		}
		n, _, err := rcv.Conn.ReadFromUDP(buf)
		if err != nil {
			return fmt.Errorf("receiving (have %d/%d chunks): %w", got, len(have), err)
		}
		now := time.Now()
		c, err := wire.Decode(buf[:n])
		if err != nil {
			if errors.Is(err, wire.ErrBadCRC) {
				s.byteErrors.Add(1)
				continue
			}
			return err
		}
		if int(c.Video) != s.cfg.Video || int(c.Channel) != channel || c.Seq != wantSeq {
			continue // stray datagram from an earlier membership or repetition
		}
		if int(c.Total) != totalBytes || int(c.Offset)%s.w.ChunkBytes != 0 || int(c.Offset) >= totalBytes {
			return fmt.Errorf("inconsistent chunk: offset %d total %d", c.Offset, c.Total)
		}
		idx := int(c.Offset) / s.w.ChunkBytes
		if have[idx] {
			s.dupChunks.Add(1)
			continue
		}
		have[idx] = true
		got++

		// Verify payload bytes end to end.
		if bad := content.Verify(c.Payload, s.cfg.Video, videoBase+int64(c.Offset)); bad >= 0 {
			s.byteErrors.Add(1)
		}
		s.bytes.Add(int64(len(c.Payload)))

		// Jitter check: the chunk's bytes play back starting at
		// playUnit plus its proportional offset.
		playAt := s.unitTime(playUnit).Add(time.Duration(float64(c.Offset) / float64(s.w.BytesPerUnit) * float64(s.unit)))
		if now.After(playAt.Add(slack)) {
			s.lateChunks.Add(1)
		}

		// Buffer accounting: downloaded minus played, sampled at
		// arrivals (the high-water mark occurs at an arrival).
		d := s.downloaded.Add(int64(len(c.Payload)))
		lvl := d - s.playedBytes(now)
		maxInt64(&s.maxBuffer, lvl)
		if s.cfg.MaxBufferBytes > 0 && lvl > s.cfg.MaxBufferBytes {
			return fmt.Errorf("buffer capacity exceeded: %d > %d bytes", lvl, s.cfg.MaxBufferBytes)
		}
	}
	return nil
}

// playedBytes returns how many bytes the player has consumed by time t
// under its fixed schedule.
func (s *session) playedBytes(t time.Time) int64 {
	elapsed := t.Sub(s.unitTime(s.playStartUnit))
	if elapsed <= 0 {
		return 0
	}
	units := float64(elapsed) / float64(s.unit)
	var total int64
	for _, sz := range s.w.SizeUnits {
		total += sz
	}
	played := int64(units * float64(s.w.BytesPerUnit))
	if max := total * int64(s.w.BytesPerUnit); played > max {
		return max
	}
	return played
}
