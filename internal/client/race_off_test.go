//go:build !race

package client

// raceEnabled lets alloc-count assertions stand down under the race
// detector: AllocsPerRun is unreliable there.
const raceEnabled = false
