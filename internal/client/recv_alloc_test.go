package client

import (
	"net"
	"testing"

	"skyscraper/internal/wire"
)

// TestClientRecvZeroAlloc pins the loader's per-datagram receive cost:
// the ReadFromUDPAddrPort + Decode pair at the heart of receiveFragment
// must not allocate. The old ReadFromUDP path built a *net.UDPAddr per
// datagram — a million-viewer deployment's worth of garbage for an
// address nobody reads.
func TestClientRecvZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is unreliable under the race detector")
	}
	rcv, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer rcv.Close()
	snd, err := net.DialUDP("udp4", nil, rcv.LocalAddr().(*net.UDPAddr))
	if err != nil {
		t.Fatal(err)
	}
	defer snd.Close()

	payload := make([]byte, 1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	frame, err := (&wire.Chunk{Video: 1, Channel: 2, Seq: 3, Total: uint32(len(payload)), Payload: payload}).Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, wire.EncodedSize(wire.MaxPayload))
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := snd.Write(frame); err != nil {
			t.Fatal(err)
		}
		n, _, err := rcv.ReadFromUDPAddrPort(buf)
		if err != nil {
			t.Fatal(err)
		}
		c, err := wire.Decode(buf[:n])
		if err != nil {
			t.Fatal(err)
		}
		if c.Seq != 3 {
			t.Fatalf("seq = %d, want 3", c.Seq)
		}
	})
	if allocs != 0 {
		t.Errorf("receive path allocates %v objects per datagram, want 0", allocs)
	}
}
