package client

import (
	"bufio"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"skyscraper/internal/content"
	"skyscraper/internal/faults"
	"skyscraper/internal/mcast"
	"skyscraper/internal/wire"
)

// fakeServer speaks just enough of the control protocol to drive Watch,
// with programmable data-plane faults.
type fakeServer struct {
	t  *testing.T
	ln net.Listener
	// layout
	sizes        []int64
	bytesPerUnit int
	chunkBytes   int
	unit         time.Duration
	epoch        time.Time
	// faults
	corruptCRC     atomic.Bool // flip a payload bit, keep stale CRC
	corruptContent atomic.Bool // valid CRC over wrong bytes
	duplicate      atomic.Bool // send every chunk twice
	refuseJoins    atomic.Bool
	refuseRepairs  atomic.Bool
	garbleWelcome  atomic.Bool
	// busyFirst answers that many repair requests with Busy (and a 5ms
	// retry hint) before serving normally; alwaysBusy answers every
	// repair with a zero-hint Busy (re-listen); byeOnRepair answers the
	// first repair with a server-initiated bye and hangs up.
	busyFirst   atomic.Int32
	alwaysBusy  atomic.Bool
	byeOnRepair atomic.Bool
	// closeAfterJoins, when positive, drops the control connection after
	// that many joins, exercising the client's reconnect path.
	closeAfterJoins atomic.Int32
	// plan, when set (before any client connects), routes every data
	// chunk through a deterministic fault injector.
	plan *faults.Plan
}

// udpSender adapts a (socket, destination) pair to mcast.Sender so the
// fake's data plane can run through the same faults.Injector the real
// server uses.
type udpSender struct {
	udp *net.UDPConn
	dst *net.UDPAddr
}

func (u udpSender) Send(_ mcast.Group, frame []byte) (int, error) {
	return u.udp.WriteToUDP(frame, u.dst)
}

func newFakeServer(t *testing.T) *fakeServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	f := &fakeServer{
		t:            t,
		ln:           ln,
		sizes:        []int64{1, 2}, // groups (1) odd, (2) even
		bytesPerUnit: 64,
		chunkBytes:   32,
		unit:         30 * time.Millisecond,
		epoch:        time.Now(),
	}
	go f.accept()
	t.Cleanup(func() { ln.Close() })
	return f
}

func (f *fakeServer) addr() string { return f.ln.Addr().String() }

func (f *fakeServer) accept() {
	for {
		conn, err := f.ln.Accept()
		if err != nil {
			return
		}
		go f.serve(conn)
	}
}

func (f *fakeServer) serve(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	udp, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return
	}
	defer udp.Close()
	for {
		m, err := wire.ReadControl(r)
		if err != nil {
			return
		}
		switch m.Kind {
		case wire.KindHello:
			w := &wire.Welcome{
				Videos:           1,
				ChannelsPerVideo: len(f.sizes),
				Width:            2,
				UnitNanos:        int64(f.unit),
				EpochUnixNano:    f.epoch.UnixNano(),
				SizeUnits:        append([]int64(nil), f.sizes...),
				BytesPerUnit:     f.bytesPerUnit,
				ChunkBytes:       f.chunkBytes,
			}
			if f.garbleWelcome.Load() {
				w.SizeUnits = w.SizeUnits[:1] // disagree with ChannelsPerVideo
			}
			_ = wire.WriteControl(conn, &wire.Control{Kind: wire.KindWelcome, Welcome: w})
		case wire.KindJoin:
			if f.refuseJoins.Load() {
				_ = wire.WriteControl(conn, &wire.Control{Kind: wire.KindError, Error: "no capacity"})
				continue
			}
			dst := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: m.Port}
			_ = wire.WriteControl(conn, &wire.Control{Kind: wire.KindJoined, Video: m.Video, Channel: m.Channel})
			go f.sendFragment(udp, dst, m.Channel)
			if n := f.closeAfterJoins.Load(); n > 0 && f.closeAfterJoins.Add(-1) == 0 {
				return // hang up; the client must reconnect
			}
		case wire.KindRepair:
			rp := m.Repair
			if rp == nil || rp.Channel < 1 || rp.Channel > len(f.sizes) || rp.Length <= 0 || f.refuseRepairs.Load() {
				_ = wire.WriteControl(conn, &wire.Control{Kind: wire.KindError, Error: "repair refused"})
				continue
			}
			if f.byeOnRepair.Load() {
				_ = wire.WriteControl(conn, &wire.Control{Kind: wire.KindBye})
				return
			}
			if f.alwaysBusy.Load() {
				_ = wire.WriteControl(conn, &wire.Control{Kind: wire.KindBusy})
				continue
			}
			if f.busyFirst.Load() > 0 && f.busyFirst.Add(-1) >= 0 {
				_ = wire.WriteControl(conn, &wire.Control{Kind: wire.KindBusy,
					RetryAfterNanos: int64(5 * time.Millisecond)})
				continue
			}
			var base int64
			for _, s := range f.sizes[:rp.Channel-1] {
				base += s
			}
			reply := *rp
			reply.Data = make([]byte, rp.Length)
			content.Fill(reply.Data, rp.Video, base*int64(f.bytesPerUnit)+rp.Offset)
			_ = wire.WriteControl(conn, &wire.Control{Kind: wire.KindRepairOK, Repair: &reply})
		case wire.KindLeave, wire.KindBye:
			if m.Kind == wire.KindBye {
				return
			}
		}
	}
}

// sendFragment blasts the chunks of several upcoming repetitions of the
// channel's fragment; the client filters to the repetition it wants, and
// early arrival is legal (broadcast data may be prefetched, never late).
func (f *fakeServer) sendFragment(udp *net.UDPConn, dst *net.UDPAddr, channel int) {
	size := f.sizes[channel-1]
	var base int64
	for _, s := range f.sizes[:channel-1] {
		base += s
	}
	var snd mcast.Sender = udpSender{udp: udp, dst: dst}
	if f.plan != nil {
		inj, err := faults.New(snd, *f.plan)
		if err != nil {
			f.t.Errorf("fake server fault plan: %v", err)
			return
		}
		snd = inj
		defer inj.Flush()
	}
	baseBytes := base * int64(f.bytesPerUnit)
	total := int(size) * f.bytesPerUnit
	nowUnits := int64(time.Since(f.epoch) / f.unit)
	startSeq := uint32(nowUnits / size)
	for seq := startSeq; seq < startSeq+8; seq++ {
		for off := 0; off < total; off += f.chunkBytes {
			payload := make([]byte, f.chunkBytes)
			content.Fill(payload, 0, baseBytes+int64(off))
			if f.corruptContent.Load() && off == 0 {
				payload[3] ^= 0xFF
			}
			c := wire.Chunk{
				Video:   0,
				Channel: uint16(channel),
				Seq:     seq,
				Offset:  uint32(off),
				Total:   uint32(total),
				Payload: payload,
			}
			frame, err := c.Encode(nil)
			if err != nil {
				f.t.Errorf("fake server encode: %v", err)
				return
			}
			if f.corruptCRC.Load() && off == 0 {
				bad := append([]byte(nil), frame...)
				bad[len(bad)-1] ^= 0x01
				_, _ = udp.WriteToUDP(bad, dst)
			}
			_, _ = snd.Send(mcast.Group{}, frame)
			if f.duplicate.Load() {
				_, _ = snd.Send(mcast.Group{}, frame)
			}
		}
	}
}

func TestWatchAgainstFakeServer(t *testing.T) {
	f := newFakeServer(t)
	stats, err := Watch(Config{ServerAddr: f.addr(), Video: 0})
	if err != nil {
		t.Fatalf("watch: %v (stats %+v)", err, stats)
	}
	if want := int64(3 * f.bytesPerUnit); stats.Bytes != want {
		t.Errorf("bytes = %d, want %d", stats.Bytes, want)
	}
	if stats.Groups != 2 {
		t.Errorf("groups = %d, want 2", stats.Groups)
	}
}

func TestWatchDetectsCorruptCRC(t *testing.T) {
	f := newFakeServer(t)
	f.corruptCRC.Store(true)
	stats, err := Watch(Config{ServerAddr: f.addr(), Video: 0})
	if err == nil {
		t.Fatal("corrupted frames went unnoticed")
	}
	if stats == nil || stats.ByteErrors == 0 {
		t.Errorf("ByteErrors = %+v, want > 0", stats)
	}
}

func TestWatchDetectsWrongContent(t *testing.T) {
	f := newFakeServer(t)
	f.corruptContent.Store(true)
	stats, err := Watch(Config{ServerAddr: f.addr(), Video: 0})
	if err == nil || !strings.Contains(err.Error(), "verification") {
		t.Fatalf("wrong payload bytes went unnoticed: %v", err)
	}
	if stats.ByteErrors == 0 {
		t.Error("ByteErrors not counted")
	}
}

func TestWatchDiscardsDuplicates(t *testing.T) {
	f := newFakeServer(t)
	f.duplicate.Store(true)
	stats, err := Watch(Config{ServerAddr: f.addr(), Video: 0})
	if err != nil {
		t.Fatalf("watch with duplicates: %v", err)
	}
	if stats.DuplicateChunks == 0 {
		t.Error("duplicates not detected")
	}
	if want := int64(3 * f.bytesPerUnit); stats.Bytes != want {
		t.Errorf("bytes = %d (duplicates double-counted?), want %d", stats.Bytes, want)
	}
}

func TestWatchJoinRejected(t *testing.T) {
	f := newFakeServer(t)
	f.refuseJoins.Store(true)
	if _, err := Watch(Config{ServerAddr: f.addr(), Video: 0}); err == nil || !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("rejected join not surfaced: %v", err)
	}
}

func TestWatchMalformedWelcome(t *testing.T) {
	f := newFakeServer(t)
	f.garbleWelcome.Store(true)
	if _, err := Watch(Config{ServerAddr: f.addr(), Video: 0}); err == nil || !strings.Contains(err.Error(), "malformed") {
		t.Fatalf("malformed welcome accepted: %v", err)
	}
}

func TestWatchBadVideo(t *testing.T) {
	f := newFakeServer(t)
	if _, err := Watch(Config{ServerAddr: f.addr(), Video: 7}); err == nil {
		t.Fatal("out-of-catalog video accepted")
	}
}

func TestWatchNoServer(t *testing.T) {
	if _, err := Watch(Config{ServerAddr: "127.0.0.1:1"}); err == nil {
		t.Fatal("dial to dead port succeeded")
	}
}

func TestPlayedBytes(t *testing.T) {
	s := &session{
		w:     &wire.Welcome{SizeUnits: []int64{1, 2}, BytesPerUnit: 100},
		unit:  time.Second,
		epoch: time.Unix(1000, 0),
	}
	s.playStartUnit = 10
	start := s.unitTime(10)
	if got := s.playedBytes(start.Add(-time.Second)); got != 0 {
		t.Errorf("before start: %d", got)
	}
	if got := s.playedBytes(start.Add(1500 * time.Millisecond)); got != 150 {
		t.Errorf("1.5 units in: %d, want 150", got)
	}
	if got := s.playedBytes(start.Add(time.Hour)); got != 300 {
		t.Errorf("past end: %d, want 300 (capped)", got)
	}
}

func TestMaxInt64(t *testing.T) {
	var a atomic.Int64
	maxInt64(&a, 5)
	maxInt64(&a, 3)
	maxInt64(&a, 9)
	if a.Load() != 9 {
		t.Errorf("maxInt64 = %d, want 9", a.Load())
	}
}

// signature is the deterministic subset of Stats: the fields that depend
// only on the fault plan's decisions, not on wall-clock timing (WaitUnits
// and MaxBufferBytes vary run to run; repair retries may too).
type signature struct {
	bytes, byteErrors, lost, repaired, dups int64
	groups                                  int
}

func sig(s *Stats) signature {
	return signature{
		bytes: s.Bytes, byteErrors: s.ByteErrors, lost: s.LostChunks,
		repaired: s.RepairedChunks, dups: s.DuplicateChunks, groups: s.Groups,
	}
}

// faultyWatch runs one session against a fake with the given plan,
// using timing loose enough that every repair window is comfortable.
func faultyWatch(t *testing.T, plan faults.Plan, cfg Config) (*Stats, error) {
	t.Helper()
	f := newFakeServer(t)
	f.unit = 80 * time.Millisecond // widen repair windows vs the 30ms default
	f.plan = &plan
	cfg.ServerAddr = f.addr()
	cfg.SlackFrac = 1.0
	return Watch(cfg)
}

// TestWatchRecoversFromFaultPlans is the client-side chaos table: under
// seeded drop, duplication, reordering, and delay the session must still
// complete with every byte verified, zero losses, zero jitter — and the
// recovery statistics must be identical for identical seeds.
func TestWatchRecoversFromFaultPlans(t *testing.T) {
	plans := []struct {
		name string
		plan faults.Plan
	}{
		{"drop-only", faults.Plan{Drop: 0.3}},
		{"duplicate-only", faults.Plan{Duplicate: 0.4}},
		{"reorder-only", faults.Plan{Reorder: 0.4}},
		{"combined", faults.Plan{Drop: 0.2, Duplicate: 0.2, Reorder: 0.2, Delay: 0.2, MaxDelay: 5 * time.Millisecond}},
	}
	var totalRepaired, totalDups int64
	for _, tc := range plans {
		for _, seed := range []uint64{1, 11} {
			t.Run(tc.name, func(t *testing.T) {
				plan := tc.plan
				plan.Seed = seed
				var sigs [2]signature
				for run := 0; run < 2; run++ {
					stats, err := faultyWatch(t, plan, Config{Video: 0})
					if err != nil {
						t.Fatalf("seed %d run %d: %v (stats %+v)", seed, run, err, stats)
					}
					if stats.ByteErrors != 0 || stats.LostChunks != 0 || stats.LateChunks != 0 {
						t.Fatalf("seed %d run %d degraded: %+v", seed, run, stats)
					}
					if want := int64(3 * 64); stats.Bytes != want {
						t.Errorf("seed %d run %d: bytes = %d, want %d", seed, run, stats.Bytes, want)
					}
					sigs[run] = sig(stats)
					totalRepaired += stats.RepairedChunks
					totalDups += stats.DuplicateChunks
				}
				if sigs[0] != sigs[1] {
					t.Errorf("seed %d: runs diverge: %+v vs %+v", seed, sigs[0], sigs[1])
				}
			})
		}
	}
	// Across the whole table the faults must actually have fired: some
	// chunk was repaired and some duplicate discarded.
	if totalRepaired == 0 {
		t.Error("no chunk was ever repaired across all drop plans")
	}
	if totalDups == 0 {
		t.Error("no duplicate was ever discarded across all duplicate plans")
	}
}

// TestWatchDegradesWithoutRepair: with the recovery path disabled, losses
// must degrade the session gracefully — counted, not hung or panicked.
func TestWatchDegradesWithoutRepair(t *testing.T) {
	stats, err := faultyWatch(t, faults.Plan{Seed: 11, Drop: 0.3},
		Config{Video: 0, DisableRepair: true, AllowDegraded: true})
	if err != nil {
		t.Fatalf("degraded session failed outright: %v (stats %+v)", err, stats)
	}
	if stats.LostChunks == 0 {
		t.Fatal("a 30% drop plan lost nothing; seed choice broken")
	}
	if stats.RepairRequests != 0 || stats.RepairedChunks != 0 {
		t.Errorf("repairs issued despite DisableRepair: %+v", stats)
	}
	if want := int64(3*64) - stats.LostChunks*32; stats.Bytes != want {
		t.Errorf("bytes = %d, want %d (total minus %d lost chunks)", stats.Bytes, want, stats.LostChunks)
	}
}

// TestWatchStrictModeFailsOnLoss: the default (non-degraded) mode must
// surface unrepaired losses as an error.
func TestWatchStrictModeFailsOnLoss(t *testing.T) {
	stats, err := faultyWatch(t, faults.Plan{Seed: 11, Drop: 0.3},
		Config{Video: 0, DisableRepair: true})
	if err == nil || !strings.Contains(err.Error(), "lost") {
		t.Fatalf("losses not surfaced: %v (stats %+v)", err, stats)
	}
}

// TestWatchReconnectsControl: the server hangs up the control connection
// after the first join; the client must re-dial, re-handshake, and still
// complete the session — including repairs over the new connection.
func TestWatchReconnectsControl(t *testing.T) {
	f := newFakeServer(t)
	f.unit = 80 * time.Millisecond
	f.plan = &faults.Plan{Seed: 11, Drop: 0.3}
	f.closeAfterJoins.Store(1)
	stats, err := Watch(Config{ServerAddr: f.addr(), Video: 0, SlackFrac: 1.0})
	if err != nil {
		t.Fatalf("session did not survive a control hangup: %v (stats %+v)", err, stats)
	}
	if stats.Reconnects == 0 {
		t.Error("no reconnect counted after server hangup")
	}
	if stats.ByteErrors != 0 || stats.LostChunks != 0 {
		t.Errorf("degraded after reconnect: %+v", stats)
	}
	if want := int64(3 * 64); stats.Bytes != want {
		t.Errorf("bytes = %d, want %d", stats.Bytes, want)
	}
}

// TestWatchRepairRefused: a server that refuses repairs must not wedge the
// client — capped retries, then counted losses in degraded mode.
func TestWatchRepairRefused(t *testing.T) {
	f := newFakeServer(t)
	f.unit = 80 * time.Millisecond
	f.plan = &faults.Plan{Seed: 11, Drop: 0.3}
	f.refuseRepairs.Store(true)
	stats, err := Watch(Config{ServerAddr: f.addr(), Video: 0, SlackFrac: 1.0, AllowDegraded: true})
	if err != nil {
		t.Fatalf("refused repairs wedged the session: %v", err)
	}
	if stats.LostChunks == 0 {
		t.Error("refused repairs produced no losses")
	}
	if stats.RepairRequests == 0 {
		t.Error("no repair was ever attempted")
	}
}

func TestWatchBufferCapacity(t *testing.T) {
	f := newFakeServer(t)
	// The fake blasts several repetitions at once, so a tiny capacity
	// must trip; a generous one must not.
	if _, err := Watch(Config{ServerAddr: f.addr(), Video: 0, MaxBufferBytes: 1}); err == nil ||
		!strings.Contains(err.Error(), "capacity") {
		t.Fatalf("1-byte disk accepted a broadcast: %v", err)
	}
	if _, err := Watch(Config{ServerAddr: f.addr(), Video: 0, MaxBufferBytes: 1 << 20}); err != nil {
		t.Fatalf("generous disk failed: %v", err)
	}
}

// TestBackoffJitterDesync: the anti-storm property of Config.Seed. Two
// sessions with different seeds must draw different backoff schedules from
// the same retry sites (so a shared fault or a shared Busy release time
// does not re-synchronize them), while the same seed must reproduce the
// same schedule exactly, and every delay must respect (0, window] with the
// 1ms anti-spin floor.
func TestBackoffJitterDesync(t *testing.T) {
	const window = 80 * time.Millisecond
	schedule := func(seed uint64) []time.Duration {
		s := &session{cfg: Config{Seed: seed}}
		var ds []time.Duration
		for stream := uint64(1); stream <= 8; stream++ {
			ds = append(ds,
				s.jitterIn(jitterKeyReconnect, stream, window),
				s.jitterIn(repairJitterKey(3, 7), stream, window))
		}
		return ds
	}
	a, b, again := schedule(1), schedule(2), schedule(1)
	for i := range a {
		if a[i] != again[i] {
			t.Fatalf("seed 1 not reproducible at slot %d: %v vs %v", i, a[i], again[i])
		}
		if a[i] < time.Millisecond || a[i] > window {
			t.Errorf("slot %d delay %v outside [1ms, %v]", i, a[i], window)
		}
	}
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > len(a)/4 {
		t.Errorf("seeds 1 and 2 collide on %d/%d backoff slots; schedules not desynchronized", same, len(a))
	}
	// Distinct retry sites under one seed must also not share a stream.
	s := &session{cfg: Config{Seed: 1}}
	if s.jitterIn(jitterKeyReconnect, 1, window) == s.jitterIn(repairJitterKey(1, 1), 1, window) {
		t.Error("reconnect and repair sites drew identical jitter from one seed")
	}
}

// TestWatchHonorsBusyBackoff: admission pushback with a retry hint is flow
// control, not failure — the client backs off for the hinted interval and
// the retried repair then succeeds, so the session still completes with
// every byte intact.
func TestWatchHonorsBusyBackoff(t *testing.T) {
	f := newFakeServer(t)
	f.unit = 80 * time.Millisecond
	f.plan = &faults.Plan{Seed: 11, Drop: 0.3}
	f.busyFirst.Store(2)
	stats, err := Watch(Config{ServerAddr: f.addr(), Video: 0, SlackFrac: 1.0, Seed: 7})
	if err != nil {
		t.Fatalf("busy replies failed the session: %v (stats %+v)", err, stats)
	}
	if stats.BusyReplies == 0 {
		t.Error("no Busy reply counted despite the server sending them")
	}
	if stats.RepairedChunks == 0 {
		t.Error("no chunk repaired after backoff")
	}
	if stats.LostChunks != 0 || stats.ByteErrors != 0 {
		t.Errorf("degraded despite transient busy: %+v", stats)
	}
	if want := int64(3 * 64); stats.Bytes != want {
		t.Errorf("bytes = %d, want %d", stats.Bytes, want)
	}
}

// TestWatchDegradesUnderPersistentBusy: a server that never admits repairs
// (zero-hint Busy: "re-listen to the broadcast") must not wedge the client
// — dropped chunks run out their deadlines and are counted as losses in
// degraded mode, with no repair ever marked successful.
func TestWatchDegradesUnderPersistentBusy(t *testing.T) {
	f := newFakeServer(t)
	f.unit = 80 * time.Millisecond
	f.plan = &faults.Plan{Seed: 11, Drop: 0.3}
	f.alwaysBusy.Store(true)
	stats, err := Watch(Config{ServerAddr: f.addr(), Video: 0, SlackFrac: 1.0, AllowDegraded: true, Seed: 7})
	if err != nil {
		t.Fatalf("persistent busy wedged the session: %v (stats %+v)", err, stats)
	}
	if stats.BusyReplies == 0 {
		t.Error("no Busy reply counted")
	}
	if stats.RepairedChunks != 0 {
		t.Errorf("repairs succeeded against an always-busy server: %+v", stats)
	}
	if stats.LostChunks == 0 {
		t.Error("no losses counted; drop plan or deadline accounting broken")
	}
}

// TestWatchStopsRepairsOnBye: a server-initiated bye (graceful drain)
// latches for the whole session — no loader issues further repairs, and
// the session completes degraded on broadcast data alone.
func TestWatchStopsRepairsOnBye(t *testing.T) {
	f := newFakeServer(t)
	f.unit = 80 * time.Millisecond
	f.plan = &faults.Plan{Seed: 11, Drop: 0.3}
	f.byeOnRepair.Store(true)
	stats, err := Watch(Config{ServerAddr: f.addr(), Video: 0, SlackFrac: 1.0, AllowDegraded: true, Seed: 7})
	if err != nil {
		t.Fatalf("server bye wedged the session: %v (stats %+v)", err, stats)
	}
	if stats.RepairRequests == 0 {
		t.Error("no repair was ever attempted, so the bye path never ran")
	}
	if stats.RepairedChunks != 0 {
		t.Errorf("repairs succeeded after the server said bye: %+v", stats)
	}
	if stats.LostChunks == 0 {
		t.Error("no losses counted after repairs were cut off")
	}
}
