// Package bench regenerates every table and figure of the paper's
// evaluation (Section 5) from this repository's implementations: the
// parameter-determination plots (Figure 5), the three metric comparisons
// (Figures 6-8: client disk bandwidth, access latency, client storage), the
// correctness/storage transition diagrams (Figures 1-4), and the formula
// tables (Tables 1-2). Each generator returns plain data that cmd/skyfigs
// renders and bench_test.go exercises as benchmarks.
package bench

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"skyscraper/internal/core"
	"skyscraper/internal/ppb"
	"skyscraper/internal/pyramid"
	"skyscraper/internal/sim"
	"skyscraper/internal/vod"
)

// Widths are the skyscraper widths studied in Section 5: "2, 52, 1705, and
// 54612 ... the values of the 2-nd, 10-th, 20-th and 30-th elements of the
// broadcast series", plus 0 for the W = infinity curves.
var Widths = []int64{2, 52, 1705, 54612, 0}

// WidthName renders a width the way the paper labels its curves.
func WidthName(w int64) string {
	if w == 0 {
		return "SB:W=infinite"
	}
	return fmt.Sprintf("SB:W=%d", w)
}

// Curve is one named line on a figure; Y is NaN where the scheme is
// infeasible (PB/PPB below ~90 Mbit/s).
type Curve struct {
	Name string
	X, Y []float64
}

// Bandwidths returns the network-I/O sweep of Section 5.1: 100 to 600
// Mbit/s ("First, PB and PPB do not work if the server bandwidth is less
// than 90 Mbits/sec. Second, 600 Mbits/sec is large enough to show the
// trends").
func Bandwidths(step float64) []float64 {
	if step <= 0 {
		step = 20
	}
	var out []float64
	for b := 100.0; b <= 600+1e-9; b += step {
		out = append(out, b)
	}
	return out
}

// schemes materializes every scheme variant at one bandwidth; entries for
// infeasible variants are nil.
type schemes struct {
	sb   map[int64]*core.Scheme // by width
	pbA  *pyramid.Scheme
	pbB  *pyramid.Scheme
	ppbA *ppb.Scheme
	ppbB *ppb.Scheme
}

func at(bandwidth float64) schemes {
	cfg := vod.DefaultConfig(bandwidth)
	s := schemes{sb: make(map[int64]*core.Scheme, len(Widths))}
	for _, w := range Widths {
		if sch, err := core.New(cfg, w); err == nil {
			s.sb[w] = sch
		}
	}
	s.pbA, _ = pyramid.New(cfg, pyramid.MethodA)
	s.pbB, _ = pyramid.New(cfg, pyramid.MethodB)
	s.ppbA, _ = ppb.New(cfg, ppb.MethodA)
	s.ppbB, _ = ppb.New(cfg, ppb.MethodB)
	return s
}

// cacheEntry holds one bandwidth point's materialized schemes; the Once
// makes construction happen exactly once even under concurrent misses.
type cacheEntry struct {
	once sync.Once
	s    schemes
}

// schemeCache memoizes at() per bandwidth. Every curve of every figure —
// Figures 5-8 sweep the same points for nine variants each — and
// CrossValidate share it, so a full regeneration constructs each schemes
// value once per bandwidth point instead of once per (curve, point). The
// entries are immutable after construction and safe to share across the
// goroutines evaluating points concurrently.
var schemeCache = struct {
	mu     sync.Mutex
	m      map[float64]*cacheEntry
	builds atomic.Int64
}{m: make(map[float64]*cacheEntry)}

// cachedAt returns the memoized schemes for one bandwidth point.
func cachedAt(bandwidth float64) schemes {
	schemeCache.mu.Lock()
	e := schemeCache.m[bandwidth]
	if e == nil {
		e = &cacheEntry{}
		schemeCache.m[bandwidth] = e
	}
	schemeCache.mu.Unlock()
	e.once.Do(func() {
		e.s = at(bandwidth)
		schemeCache.builds.Add(1)
	})
	return e.s
}

// ResetCache discards every memoized bandwidth point (benchmarks use it to
// measure cold regeneration).
func ResetCache() {
	schemeCache.mu.Lock()
	schemeCache.m = make(map[float64]*cacheEntry)
	schemeCache.mu.Unlock()
}

// CacheBuilds reports how many times a schemes value has been constructed
// since process start (ResetCache does not reset it), so callers can
// assert the once-per-point guarantee.
func CacheBuilds() int64 { return schemeCache.builds.Load() }

// parallelOff disables concurrent point evaluation when set (the
// default is concurrent; cmd/skyfigs exposes this as -parallel).
var parallelOff atomic.Bool

// SetParallel toggles concurrent evaluation of a figure's bandwidth
// points. Results are identical either way — each point writes its own
// slot — only wall-clock changes.
func SetParallel(on bool) { parallelOff.Store(!on) }

// ParallelEnabled reports whether point evaluation runs concurrently.
func ParallelEnabled() bool { return !parallelOff.Load() }

// metric builds one curve over the bandwidth sweep, with eval returning
// NaN for infeasible points. Points are independent, so they are evaluated
// concurrently (unless SetParallel(false)); every point hits the
// sweep-level scheme cache.
func metric(name string, bands []float64, eval func(s schemes) float64) Curve {
	c := Curve{Name: name, X: bands, Y: make([]float64, len(bands))}
	workers := runtime.GOMAXPROCS(0)
	if parallelOff.Load() {
		workers = 1
	} else if workers > len(bands) {
		workers = len(bands)
	}
	if workers == 1 {
		for i, b := range bands {
			c.Y[i] = eval(cachedAt(b))
		}
		return c
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= len(bands) {
					return
				}
				c.Y[i] = eval(cachedAt(bands[i]))
			}
		}()
	}
	wg.Wait()
	return c
}

func orNaN(p vod.Performer, f func(vod.Performer) float64) float64 {
	if p == nil || (isNilPtr(p)) {
		return math.NaN()
	}
	return f(p)
}

// isNilPtr reports whether a Performer interface holds a typed nil.
func isNilPtr(p vod.Performer) bool {
	switch v := p.(type) {
	case *core.Scheme:
		return v == nil
	case *pyramid.Scheme:
		return v == nil
	case *ppb.Scheme:
		return v == nil
	default:
		return false
	}
}

// Figure5a reproduces Figure 5(a): the values of K (all schemes) and P
// (PPB) under different network-I/O bandwidths.
func Figure5a(bands []float64) []Curve {
	return []Curve{
		metric("SB (K)", bands, func(s schemes) float64 {
			if sch := s.sb[52]; sch != nil {
				return float64(sch.K())
			}
			return math.NaN()
		}),
		metric("PB:a (K)", bands, func(s schemes) float64 {
			if s.pbA == nil {
				return math.NaN()
			}
			return float64(s.pbA.K())
		}),
		metric("PB:b (K)", bands, func(s schemes) float64 {
			if s.pbB == nil {
				return math.NaN()
			}
			return float64(s.pbB.K())
		}),
		metric("PPB:a (K)", bands, func(s schemes) float64 {
			if s.ppbA == nil {
				return math.NaN()
			}
			return float64(s.ppbA.K())
		}),
		metric("PPB:a (P)", bands, func(s schemes) float64 {
			if s.ppbA == nil {
				return math.NaN()
			}
			return float64(s.ppbA.P())
		}),
		metric("PPB:b (P)", bands, func(s schemes) float64 {
			if s.ppbB == nil {
				return math.NaN()
			}
			return float64(s.ppbB.P())
		}),
	}
}

// Figure5b reproduces Figure 5(b): the value of alpha for the
// pyramid-based schemes.
func Figure5b(bands []float64) []Curve {
	return []Curve{
		metric("PB:a (alpha)", bands, func(s schemes) float64 {
			if s.pbA == nil {
				return math.NaN()
			}
			return s.pbA.Alpha()
		}),
		metric("PB:b (alpha)", bands, func(s schemes) float64 {
			if s.pbB == nil {
				return math.NaN()
			}
			return s.pbB.Alpha()
		}),
		metric("PPB:a (alpha)", bands, func(s schemes) float64 {
			if s.ppbA == nil {
				return math.NaN()
			}
			return s.ppbA.Alpha()
		}),
		metric("PPB:b (alpha)", bands, func(s schemes) float64 {
			if s.ppbB == nil {
				return math.NaN()
			}
			return s.ppbB.Alpha()
		}),
	}
}

// performers lists every curve of Figures 6-8 in the paper's order.
func performers(s schemes) []vod.Performer {
	out := []vod.Performer{}
	for _, w := range Widths {
		if sch := s.sb[w]; sch != nil {
			out = append(out, sch)
		} else {
			out = append(out, (*core.Scheme)(nil))
		}
	}
	out = append(out, s.pbA, s.pbB, s.ppbA, s.ppbB)
	return out
}

// performerNames matches performers' order.
func performerNames() []string {
	names := []string{}
	for _, w := range Widths {
		names = append(names, WidthName(w))
	}
	return append(names, "PB:a", "PB:b", "PPB:a", "PPB:b")
}

// figureOver builds the Figure 6-8 family: one curve per scheme variant.
func figureOver(bands []float64, f func(vod.Performer) float64) []Curve {
	names := performerNames()
	curves := make([]Curve, len(names))
	for i, n := range names {
		i := i
		curves[i] = metric(n, bands, func(s schemes) float64 {
			return orNaN(performers(s)[i], f)
		})
	}
	return curves
}

// Figure6 reproduces Figure 6: client disk bandwidth requirement in
// MByte/s versus network-I/O bandwidth.
func Figure6(bands []float64) []Curve {
	return figureOver(bands, func(p vod.Performer) float64 {
		return vod.MbpsToMBps(p.DiskBandwidthMbps())
	})
}

// Figure7 reproduces Figure 7: access latency in minutes versus
// network-I/O bandwidth.
func Figure7(bands []float64) []Curve {
	return figureOver(bands, func(p vod.Performer) float64 {
		return p.AccessLatencyMin()
	})
}

// Figure8 reproduces Figure 8: client storage requirement in MBytes versus
// network-I/O bandwidth.
func Figure8(bands []float64) []Curve {
	return figureOver(bands, func(p vod.Performer) float64 {
		return vod.MbitToMByte(p.BufferMbit())
	})
}

// TransitionProfile is a Figure 1-4 style diagram: the client buffer
// occupancy (in units of 60*b*D1) across a group transition, for one
// playback-start phase.
type TransitionProfile struct {
	Phase  int64
	Points []core.ProfilePoint
	// MaxUnits is the profile's high-water mark.
	MaxUnits int64
}

// Transitions reproduces the storage analysis of Figures 1-4: for the
// given scheme it evaluates every playback-start phase and returns the
// no-buffer phase (Figure 1a), the worst phase (the 60*b*D1*(W-1) case the
// figures derive), and the observed maximum.
func Transitions(sch *core.Scheme, maxPhases int64) (best, worst TransitionProfile, err error) {
	period := sch.PhasePeriod()
	stride := int64(1)
	if maxPhases > 0 && period > maxPhases {
		stride = (period + maxPhases - 1) / maxPhases
	}
	first := true
	for phase := int64(0); phase < period; phase += stride {
		plan, perr := sch.PlanSchedule(phase)
		if perr != nil {
			return best, worst, perr
		}
		bp, perr := sch.Profile(plan)
		if perr != nil {
			return best, worst, perr
		}
		p := TransitionProfile{Phase: phase, Points: bp.Points, MaxUnits: bp.Max()}
		if first || p.MaxUnits < best.MaxUnits {
			best = p
		}
		if first || p.MaxUnits > worst.MaxUnits {
			worst = p
		}
		first = false
	}
	return best, worst, nil
}

// CrossRow is one line of the simulation-versus-analysis validation table
// recorded in EXPERIMENTS.md: the closed forms of Table 1 against what the
// event simulator measures.
type CrossRow struct {
	Scheme            string
	Bandwidth         float64
	AnalyticLatency   float64
	MeasuredLatency   float64
	AnalyticBufferMB  float64
	MeasuredBufferMB  float64
	MeasuredMaxStream int
}

// CrossValidate measures worst-case latency and buffer over sampled
// arrival phases for every feasible scheme at every bandwidth, pairing
// them with the closed forms.
func CrossValidate(bands []float64, phases int) ([]CrossRow, error) {
	var rows []CrossRow
	for _, b := range bands {
		s := cachedAt(b)
		type pair struct {
			p vod.Performer
			c sim.ClientSim
		}
		var pairs []pair
		if sch := s.sb[2]; sch != nil {
			pairs = append(pairs, pair{sch, sim.NewSB(sch)})
		}
		if sch := s.sb[52]; sch != nil {
			pairs = append(pairs, pair{sch, sim.NewSB(sch)})
		}
		if s.pbA != nil {
			pairs = append(pairs, pair{s.pbA, sim.NewPB(s.pbA)})
		}
		if s.pbB != nil {
			pairs = append(pairs, pair{s.pbB, sim.NewPB(s.pbB)})
		}
		if s.ppbA != nil {
			pairs = append(pairs, pair{s.ppbA, sim.NewPPB(s.ppbA)})
		}
		if s.ppbB != nil {
			pairs = append(pairs, pair{s.ppbB, sim.NewPPB(s.ppbB)})
		}
		for _, pr := range pairs {
			row := CrossRow{
				Scheme:           pr.c.Name(),
				Bandwidth:        b,
				AnalyticLatency:  pr.p.AccessLatencyMin(),
				AnalyticBufferMB: vod.MbitToMByte(pr.p.BufferMbit()),
			}
			lat := pr.p.AccessLatencyMin()
			for i := 0; i < phases; i++ {
				// Golden-ratio stride covers arrival phases
				// quasi-uniformly across many latency periods
				// (SB's buffer worst case needs phases spread over
				// its whole broadcast period, not just one D1).
				arrival := float64(i) * lat * 1.61803398875
				res, err := pr.c.Client(arrival, 0)
				if err != nil {
					return nil, fmt.Errorf("bench: %s at B=%v: %w", pr.c.Name(), b, err)
				}
				row.MeasuredLatency = math.Max(row.MeasuredLatency, res.WaitMin)
				row.MeasuredBufferMB = math.Max(row.MeasuredBufferMB, vod.MbitToMByte(res.MaxBufferMbit))
				if res.MaxStreams > row.MeasuredMaxStream {
					row.MeasuredMaxStream = res.MaxStreams
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}
