package bench

import (
	"fmt"
	"math"

	"skyscraper/internal/vod"
)

// Table1Row is one row of the paper's Table 1: a scheme's closed-form
// performance expressions, evaluated at a concrete bandwidth.
type Table1Row struct {
	Scheme string
	// The symbolic forms, as printed in the paper (this repository's
	// readings of them; see DESIGN.md for OCR notes).
	IOFormula, LatencyFormula, BufferFormula string
	// The evaluations (NaN when infeasible at this bandwidth).
	IOMbps, LatencyMin, BufferMbit float64
}

// Table1 evaluates the Table 1 formulas at the given bandwidth for the
// paper's default workload.
func Table1(bandwidth float64) []Table1Row {
	s := cachedAt(bandwidth)
	rows := []Table1Row{}
	add := func(name, iof, lf, bf string, p vod.Performer) {
		r := Table1Row{Scheme: name, IOFormula: iof, LatencyFormula: lf, BufferFormula: bf,
			IOMbps: math.NaN(), LatencyMin: math.NaN(), BufferMbit: math.NaN()}
		if p != nil && !isNilPtr(p) {
			r.IOMbps = p.DiskBandwidthMbps()
			r.LatencyMin = p.AccessLatencyMin()
			r.BufferMbit = p.BufferMbit()
		}
		rows = append(rows, r)
	}
	add("PB", "b + 2B/K", "D1*M*K*b/B = D1/alpha", "60b(D_{K-1} + D_K(1 - bK/B))", s.pbB)
	add("PPB", "b + B/(KPM)", "D1*M*K*b/B = D1/(P+alpha)", "60b(D_{K-1}+D_K)*MKb/B", s.ppbB)
	add("SB", "b | 2b | 3b (by W, K)", "D1 = D / sum min(f(i),W)", "60*b*D1*(W-1)", s.sb[52])
	return rows
}

// Table2Row is one row of Table 2: how each scheme determines its design
// parameters.
type Table2Row struct {
	Scheme  string
	KRule   string
	PRule   string
	ARule   string
	K       int
	P       int // 0 = not applicable
	Alpha   float64
	Comment string
}

// Table2 evaluates the parameter rules at the given bandwidth.
func Table2(bandwidth float64) []Table2Row {
	s := cachedAt(bandwidth)
	rows := []Table2Row{}
	if s.pbA != nil {
		rows = append(rows, Table2Row{Scheme: "PB:a", KRule: "ceil(B/(bMe))", PRule: "n/a",
			ARule: "B/(bMK)", K: s.pbA.K(), Alpha: s.pbA.Alpha(), Comment: "alpha <= e"})
	}
	if s.pbB != nil {
		rows = append(rows, Table2Row{Scheme: "PB:b", KRule: "floor(B/(bMe))", PRule: "n/a",
			ARule: "B/(bMK)", K: s.pbB.K(), Alpha: s.pbB.Alpha(), Comment: "alpha >= e"})
	}
	if s.ppbA != nil {
		rows = append(rows, Table2Row{Scheme: "PPB:a", KRule: "max K in [2,7] feasible", PRule: "floor(B/(KMb) - 2)",
			ARule: "B/(KMb) - P", K: s.ppbA.K(), P: s.ppbA.P(), Alpha: s.ppbA.Alpha()})
	}
	if s.ppbB != nil {
		rows = append(rows, Table2Row{Scheme: "PPB:b", KRule: "max K in [2,7] feasible", PRule: "max(2, floor(B/(KMb)) - 2)",
			ARule: "B/(KMb) - P", K: s.ppbB.K(), P: s.ppbB.P(), Alpha: s.ppbB.Alpha()})
	}
	if sb := s.sb[52]; sb != nil {
		rows = append(rows, Table2Row{Scheme: "SB", KRule: "floor(B/(bM))", PRule: "n/a", ARule: "n/a (series + W)",
			K: sb.K(), Comment: fmt.Sprintf("W tunable; D1 = %.4f min at W=52", sb.UnitMinutes())})
	}
	return rows
}
