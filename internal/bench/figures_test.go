package bench

import (
	"math"
	"testing"

	"skyscraper/internal/core"
	"skyscraper/internal/vod"
)

func curveByName(t *testing.T, curves []Curve, name string) Curve {
	t.Helper()
	for _, c := range curves {
		if c.Name == name {
			return c
		}
	}
	t.Fatalf("no curve %q (have %v)", name, func() []string {
		var n []string
		for _, c := range curves {
			n = append(n, c.Name)
		}
		return n
	}())
	return Curve{}
}

func valueAt(t *testing.T, c Curve, x float64) float64 {
	t.Helper()
	for i := range c.X {
		if c.X[i] == x {
			return c.Y[i]
		}
	}
	t.Fatalf("curve %q has no x = %v", c.Name, x)
	return 0
}

func TestBandwidths(t *testing.T) {
	b := Bandwidths(100)
	if len(b) != 6 || b[0] != 100 || b[5] != 600 {
		t.Errorf("Bandwidths(100) = %v", b)
	}
	if got := Bandwidths(0); len(got) < 20 {
		t.Errorf("default step yields %d points", len(got))
	}
}

// TestFigure5Shapes checks the parameter plot: SB's K values are "much
// larger ... under various network-I/O conditions" than the pyramid
// schemes' (Section 5.1), and PPB's K saturates at 7.
func TestFigure5Shapes(t *testing.T) {
	bands := Bandwidths(100)
	f5a := Figure5a(bands)
	sbK := curveByName(t, f5a, "SB (K)")
	pbK := curveByName(t, f5a, "PB:b (K)")
	ppbK := curveByName(t, f5a, "PPB:a (K)")
	for i, b := range bands {
		if sbK.Y[i] <= pbK.Y[i] {
			t.Errorf("B=%v: SB K %v not larger than PB K %v", b, sbK.Y[i], pbK.Y[i])
		}
		if ppbK.Y[i] > 7 {
			t.Errorf("B=%v: PPB K = %v > 7", b, ppbK.Y[i])
		}
	}
	if got := valueAt(t, sbK, 600); got != 40 {
		t.Errorf("SB K at 600 = %v, want 40", got)
	}

	f5b := Figure5b(bands)
	for _, name := range []string{"PB:a (alpha)", "PB:b (alpha)", "PPB:a (alpha)", "PPB:b (alpha)"} {
		c := curveByName(t, f5b, name)
		for i, y := range c.Y {
			if !math.IsNaN(y) && y <= 1 {
				t.Errorf("%s at B=%v: alpha = %v <= 1", name, bands[i], y)
			}
		}
	}
}

// TestFigure6Shapes checks Section 5.2: PB needs about 50x the display
// rate (about 10 MByte/s) while SB needs at most 3b regardless of W, and
// PPB is comparable to SB.
func TestFigure6Shapes(t *testing.T) {
	bands := Bandwidths(100)
	f6 := Figure6(bands)
	bMBps := vod.MbpsToMBps(1.5)
	pb := curveByName(t, f6, "PB:b")
	if got := valueAt(t, pb, 600); got < 8 || got > 13 {
		t.Errorf("PB:b disk bw at 600 = %v MByte/s, want about 10", got)
	}
	for _, name := range []string{"SB:W=2", "SB:W=52", "SB:W=1705", "SB:W=54612", "SB:W=infinite"} {
		c := curveByName(t, f6, name)
		for i, y := range c.Y {
			if y > 3*bMBps+1e-9 {
				t.Errorf("%s at B=%v: disk bw %v exceeds 3b", name, bands[i], y)
			}
		}
	}
	ppb := curveByName(t, f6, "PPB:b")
	for i, y := range ppb.Y {
		if !math.IsNaN(y) && y > 5*bMBps {
			t.Errorf("PPB:b at B=%v: disk bw %v not comparable to SB", bands[i], y)
		}
	}
}

// TestFigure7Shapes checks Section 5.3: PB's latency is excellent, PPB
// needs at least ~300 Mbit/s for sub-half-minute latency, and larger W
// keeps SB's latency low.
func TestFigure7Shapes(t *testing.T) {
	bands := Bandwidths(100)
	f7 := Figure7(bands)
	if got := valueAt(t, curveByName(t, f7, "PB:b"), 300); got > 0.1 {
		t.Errorf("PB:b latency at 300 = %v, want < 0.1", got)
	}
	if got := valueAt(t, curveByName(t, f7, "PPB:a"), 200); got < 0.5 {
		t.Errorf("PPB:a latency at 200 = %v, want > 0.5", got)
	}
	if got := valueAt(t, curveByName(t, f7, "PPB:a"), 300); got > 0.5 {
		t.Errorf("PPB:a latency at 300 = %v, want <= 0.5", got)
	}
	// Larger W means lower (or equal) SB latency at every bandwidth.
	w2 := curveByName(t, f7, "SB:W=2")
	w52 := curveByName(t, f7, "SB:W=52")
	inf := curveByName(t, f7, "SB:W=infinite")
	for i := range bands {
		if w52.Y[i] > w2.Y[i]+1e-12 || inf.Y[i] > w52.Y[i]+1e-12 {
			t.Errorf("B=%v: SB latency not monotone in W: %v %v %v", bands[i], w2.Y[i], w52.Y[i], inf.Y[i])
		}
	}
	// SB:W=52 offers about 0.1 min beyond 200 Mbit/s (Section 5.4).
	if got := valueAt(t, w52, 300); got > 0.2 {
		t.Errorf("SB:W=52 latency at 300 = %v, want about 0.1", got)
	}
}

// TestFigure8Shapes checks Section 5.4: PB needs > 1 GByte, PPB about
// 150-250 MByte, SB:W=2 about 33 MByte at 320 Mbit/s.
func TestFigure8Shapes(t *testing.T) {
	bands := Bandwidths(20)
	f8 := Figure8(bands)
	if got := valueAt(t, curveByName(t, f8, "PB:b"), 600); got < 1000 {
		t.Errorf("PB:b storage at 600 = %v MByte, want > 1000", got)
	}
	if got := valueAt(t, curveByName(t, f8, "PPB:b"), 320); got < 100 || got > 200 {
		t.Errorf("PPB:b storage at 320 = %v MByte, want about 150", got)
	}
	if got := valueAt(t, curveByName(t, f8, "SB:W=2"), 320); math.Abs(got-33) > 1 {
		t.Errorf("SB:W=2 storage at 320 = %v MByte, want about 33", got)
	}
	if got := valueAt(t, curveByName(t, f8, "SB:W=52"), 600); math.Abs(got-40.5) > 2 {
		t.Errorf("SB:W=52 storage at 600 = %v MByte, want about 40", got)
	}
}

// TestCombinedWin checks the paper's summary claim: "While PB and PPB must
// make trade-offs between access latency, storage costs, and disk
// bandwidth requirement, the proposed scheme allows the flexibility to win
// on all three metrics" — at 600 Mbit/s, SB:W=52 beats PPB on all three
// and matches PB's only strength within an uninteresting margin.
func TestCombinedWin(t *testing.T) {
	bands := []float64{600.0}
	f6, f7, f8 := Figure6(bands), Figure7(bands), Figure8(bands)
	get := func(curves []Curve, name string) float64 { return valueAt(t, curveByName(t, curves, name), 600) }
	// Latency: below the threshold Section 5.3 calls practically
	// significant ("improving the latency to well below 0.3 minutes is
	// practically insignificant") — PB's and PPB:a's smaller numbers buy
	// nothing.
	if get(f7, "SB:W=52") > 0.3 {
		t.Errorf("SB:W=52 latency %v above the practically-significant threshold", get(f7, "SB:W=52"))
	}
	for _, rival := range []string{"PPB:a", "PPB:b"} {
		// Disk bandwidth: within the same small-multiple-of-b class as
		// PPB (Section 5.2: "SB and PPB have similar disk bandwidth
		// requirements").
		if sb, rv := get(f6, "SB:W=52"), get(f6, rival); sb > rv*1.1 {
			t.Errorf("SB:W=52 disk bw %v not comparable to %s %v", sb, rival, rv)
		}
		// Storage: several times smaller than PPB's (40 vs 150-250
		// MByte — the "many folds better" combined benefit).
		if sb, rv := get(f8, "SB:W=52"), get(f8, rival); sb > rv/2 {
			t.Errorf("SB:W=52 storage %v not well below %s %v", sb, rival, rv)
		}
	}
}

// TestSchemeCacheBuildsOncePerPoint: regenerating every sweep figure
// constructs each bandwidth point's schemes exactly once, no matter how
// many curves and figures share it or whether points run concurrently.
func TestSchemeCacheBuildsOncePerPoint(t *testing.T) {
	for _, parallel := range []bool{true, false} {
		SetParallel(parallel)
		ResetCache()
		before := CacheBuilds()
		bands := Bandwidths(50)
		Figure5a(bands)
		Figure5b(bands)
		Figure6(bands)
		Figure7(bands)
		Figure8(bands)
		if got := CacheBuilds() - before; got != int64(len(bands)) {
			t.Errorf("parallel=%v: %d constructions for %d bandwidth points, want one each",
				parallel, got, len(bands))
		}
	}
	SetParallel(true)
	ResetCache()
}

// TestParallelPointsIdentical: concurrent point evaluation changes only
// wall-clock, never values.
func TestParallelPointsIdentical(t *testing.T) {
	bands := Bandwidths(100)
	figs := []func([]float64) []Curve{Figure5a, Figure5b, Figure6, Figure7, Figure8}
	for fi, fig := range figs {
		SetParallel(false)
		serial := fig(bands)
		SetParallel(true)
		parallel := fig(bands)
		if len(serial) != len(parallel) {
			t.Fatalf("figure %d: curve counts differ", fi)
		}
		for ci := range serial {
			if serial[ci].Name != parallel[ci].Name {
				t.Fatalf("figure %d curve %d: names differ", fi, ci)
			}
			for i := range serial[ci].Y {
				sv, pv := serial[ci].Y[i], parallel[ci].Y[i]
				if sv != pv && !(math.IsNaN(sv) && math.IsNaN(pv)) {
					t.Errorf("figure %d %s at B=%v: serial %v != parallel %v",
						fi, serial[ci].Name, bands[i], sv, pv)
				}
			}
		}
	}
}

func TestTransitions(t *testing.T) {
	sch, err := core.New(vod.DefaultConfig(45), 2) // K=3: Figure 1's layout
	if err != nil {
		t.Fatal(err)
	}
	best, worst, err := Transitions(sch, 0)
	if err != nil {
		t.Fatal(err)
	}
	if best.MaxUnits != 0 {
		t.Errorf("Figure 1(a) phase buffers %d units, want 0", best.MaxUnits)
	}
	if worst.MaxUnits != 1 {
		t.Errorf("Figure 1(b) phase buffers %d units, want 1", worst.MaxUnits)
	}
	if len(worst.Points) == 0 {
		t.Error("no profile points")
	}
}

func TestTable1(t *testing.T) {
	rows := Table1(320)
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Scheme == "" || r.IOFormula == "" || r.LatencyFormula == "" || r.BufferFormula == "" {
			t.Errorf("incomplete row %+v", r)
		}
		if math.IsNaN(r.LatencyMin) {
			t.Errorf("%s infeasible at 320", r.Scheme)
		}
	}
	// Below feasibility, PB and PPB rows must be NaN but present.
	rows = Table1(50)
	if !math.IsNaN(rows[0].LatencyMin) || !math.IsNaN(rows[1].LatencyMin) {
		t.Error("PB/PPB not marked infeasible at 50 Mbit/s")
	}
	if math.IsNaN(rows[2].LatencyMin) {
		t.Error("SB should be feasible at 50 Mbit/s")
	}
}

func TestTable2(t *testing.T) {
	rows := Table2(320)
	if len(rows) != 5 {
		t.Fatalf("%d rows at 320", len(rows))
	}
	for _, r := range rows {
		if r.K <= 0 {
			t.Errorf("%s: K = %d", r.Scheme, r.K)
		}
	}
	// At 30 Mbit/s only SB remains (PB:a's ceiling rule keeps it
	// marginally alive down to ~41 Mbit/s; see DESIGN.md).
	rows = Table2(30)
	if len(rows) != 1 || rows[0].Scheme != "SB" {
		t.Errorf("rows at 30 = %+v", rows)
	}
}

func TestCrossValidate(t *testing.T) {
	rows, err := CrossValidate([]float64{100, 320}, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r.MeasuredLatency > r.AnalyticLatency*1.0001 {
			t.Errorf("%s B=%v: measured latency %v exceeds analytic %v", r.Scheme, r.Bandwidth, r.MeasuredLatency, r.AnalyticLatency)
		}
		if r.MeasuredBufferMB > r.AnalyticBufferMB*1.0001 {
			t.Errorf("%s B=%v: measured buffer %v exceeds analytic %v", r.Scheme, r.Bandwidth, r.MeasuredBufferMB, r.AnalyticBufferMB)
		}
		if r.MeasuredLatency < r.AnalyticLatency*0.3 {
			t.Errorf("%s B=%v: measured latency %v far below analytic %v; sweep broken?", r.Scheme, r.Bandwidth, r.MeasuredLatency, r.AnalyticLatency)
		}
	}
}
