package server_test

import (
	"testing"
	"time"

	"skyscraper/internal/mcast"
	"skyscraper/internal/server"
	"skyscraper/internal/wire"
)

// TestNackMulticastResend drives the cohort repair verb at the protocol
// level: one gap bitmap is answered by a NackOK marking every chunk
// accepted, the re-sends land on the channel's broadcast group patched to
// the NACK's repetition, and a second NACK for the same chunks inside the
// storm window is absorbed without another re-send — the property that
// keeps repair work O(cohorts) instead of O(viewers).
func TestNackMulticastResend(t *testing.T) {
	if testing.Short() {
		t.Skip("live network test")
	}
	sch := liveScheme(t, 1, 3, 2)
	srv := startChaosServer(t, sch, 50*time.Millisecond, server.Config{
		StormWindow: 2 * time.Second,
	})

	// A group member to witness the multicast re-sends. Channel 2's
	// fragment is 2 units x 4096 bytes = 8 chunks.
	rcv, err := mcast.NewReceiver()
	if err != nil {
		t.Fatal(err)
	}
	defer rcv.Close()
	g := mcast.Group{Video: 0, Channel: 2}
	if err := srv.Hub().Join(g, rcv.Addr()); err != nil {
		t.Fatal(err)
	}

	// The cohort's aggregated NACK: chunks 1 and 3, one bitmap. Seq 777
	// cannot collide with the live pacer's repetitions within this test.
	conn, r := dialRaw(t, srv.Addr())
	defer conn.Close()
	req := wire.NackFromChunks(0, 2, 777, []int{1, 3})
	if err := wire.WriteControl(conn, &wire.Control{Kind: wire.KindNack, Nack: req}); err != nil {
		t.Fatal(err)
	}
	m, err := wire.ReadControl(r)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != wire.KindNackOK {
		t.Fatalf("NACK answered %q (%s), want %q", m.Kind, m.Error, wire.KindNackOK)
	}
	if !m.Nack.Has(1) || !m.Nack.Has(3) {
		t.Fatalf("accepted bitmap %v, want chunks 1 and 3", m.Nack.Chunks())
	}
	if got := srv.NacksServed(); got != 1 {
		t.Errorf("NacksServed = %d, want 1", got)
	}
	if got := srv.NackResends(); got != 2 {
		t.Errorf("NackResends = %d, want 2 (one per accepted chunk)", got)
	}

	// Both re-sends reach the group, tagged with the NACK's seq and
	// carrying the frame-cache bytes at the right offsets.
	want := map[uint32]bool{1 * 1024: false, 3 * 1024: false}
	deadline := time.Now().Add(3 * time.Second)
	for remaining := len(want); remaining > 0; {
		_ = rcv.Conn.SetReadDeadline(deadline)
		buf := make([]byte, wire.EncodedSize(wire.MaxPayload))
		n, _, err := rcv.Conn.ReadFromUDPAddrPort(buf)
		if err != nil {
			t.Fatalf("multicast re-sends never reached the group (still missing %d)", remaining)
		}
		c, err := wire.Decode(buf[:n])
		if err != nil || c.Seq != 777 {
			continue // a regular pacer broadcast; keep looking
		}
		seen, ok := want[c.Offset]
		if !ok {
			t.Fatalf("re-send at unrequested offset %d", c.Offset)
		}
		if len(c.Payload) != 1024 {
			t.Fatalf("re-send at offset %d carries %d bytes, want 1024", c.Offset, len(c.Payload))
		}
		if !seen {
			want[c.Offset] = true
			remaining--
		}
	}

	// A second cohort NACKing the same chunks inside the window is told
	// "accepted" — its viewers keep re-listening — but triggers no second
	// re-send.
	conn2, r2 := dialRaw(t, srv.Addr())
	defer conn2.Close()
	if err := wire.WriteControl(conn2, &wire.Control{Kind: wire.KindNack, Nack: req}); err != nil {
		t.Fatal(err)
	}
	m2, err := wire.ReadControl(r2)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Kind != wire.KindNackOK || !m2.Nack.Has(1) || !m2.Nack.Has(3) {
		t.Fatalf("suppressed NACK answered %+v, want NackOK accepting both chunks", m2)
	}
	if got := srv.NackResends(); got != 2 {
		t.Errorf("NackResends after suppressed NACK = %d, want still 2", got)
	}
	if got := srv.NackSuppressed(); got != 2 {
		t.Errorf("NackSuppressed = %d, want 2", got)
	}

	// A bitmap reaching past the fragment is rejected with a control
	// error, not a crash or a partial re-send.
	bad := wire.NackFromChunks(0, 2, 777, []int{5, 8})
	if err := wire.WriteControl(conn2, &wire.Control{Kind: wire.KindNack, Nack: bad}); err != nil {
		t.Fatal(err)
	}
	m3, err := wire.ReadControl(r2)
	if err != nil {
		t.Fatal(err)
	}
	if m3.Kind != wire.KindError {
		t.Fatalf("out-of-range NACK answered %q, want %q", m3.Kind, wire.KindError)
	}
}

// TestNackRefusedOverBudget starves the repair byte budget and proves the
// degraded path: the NackOK's bitmap leaves the chunks unmarked — the
// client's cue to fall back to (equally budget-gated) unicast — and no
// re-send is dispatched.
func TestNackRefusedOverBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("live network test")
	}
	sch := liveScheme(t, 1, 3, 2)
	srv := startChaosServer(t, sch, 50*time.Millisecond, server.Config{
		// A one-byte budget with a one-byte burst can never cover a chunk.
		RepairBandwidth:  1,
		RepairBurstBytes: 1,
	})
	conn, r := dialRaw(t, srv.Addr())
	defer conn.Close()
	req := wire.NackFromChunks(0, 2, 777, []int{2})
	if err := wire.WriteControl(conn, &wire.Control{Kind: wire.KindNack, Nack: req}); err != nil {
		t.Fatal(err)
	}
	m, err := wire.ReadControl(r)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != wire.KindNackOK {
		t.Fatalf("NACK answered %q, want %q (refusal is in the bitmap, not an error)", m.Kind, wire.KindNackOK)
	}
	if m.Nack.Has(2) {
		t.Fatal("over-budget NACK still accepted the chunk")
	}
	if got := srv.NackResends(); got != 0 {
		t.Errorf("NackResends = %d, want 0 (budget refused)", got)
	}
}
