// Repair-plane admission control: the storm-coalescing table that turns
// correlated unicast repair bursts back into multicast, and the server-side
// re-send it triggers.
//
// The paper's core argument is that per-client unicast collapses under
// metropolitan load; the repair plane inherits the same failure mode in
// miniature. A transient fault that hits a whole neighborhood (a dropped
// broadcast datagram reaches nobody) makes every affected client pull the
// same chunk over TCP at once. Instead of serving N identical unicasts, the
// server answers the storm once on the chunk's own broadcast group and
// tells the queued clients to re-listen — restoring the multicast economics
// the scheme is built on.
package server

import (
	"sync"
	"time"

	"skyscraper/internal/mcast"
	"skyscraper/internal/wire"
)

// stormKey identifies one broadcast chunk: the unit of storm coalescing.
// Only chunk-aligned, full-chunk repair requests participate — exactly the
// shape a client recovering a lost datagram sends.
type stormKey struct {
	video   int
	channel int
	chunk   int
}

// stormVerdict is the admission decision for one repair request.
type stormVerdict int

const (
	// stormPass: below threshold; serve the unicast normally.
	stormPass stormVerdict = iota
	// stormResend: this request crossed the threshold — answer the whole
	// storm with one multicast re-send and tell this client to re-listen.
	stormResend
	// stormSuppress: the window's re-send already happened; tell this
	// client to re-listen without re-sending again.
	stormSuppress
)

// stormTableCap bounds the table; reaching it triggers a sweep of expired
// windows so a long-running server's table cannot grow without bound.
const stormTableCap = 4096

// stormState is one chunk's active coalescing window.
type stormState struct {
	windowStart time.Time
	// conns are the distinct control connections that asked for the chunk
	// this window: the storm signal is many *clients*, not one client
	// retrying.
	conns  map[int64]struct{}
	resent bool
}

// stormTable counts distinct-client repair requests per chunk within a
// sliding window and decides when a burst should coalesce into one
// multicast re-send. Safe for concurrent use.
type stormTable struct {
	mu        sync.Mutex
	threshold int
	window    time.Duration
	states    map[stormKey]*stormState
}

func newStormTable(threshold int, window time.Duration) *stormTable {
	return &stormTable{
		threshold: threshold,
		window:    window,
		states:    make(map[stormKey]*stormState),
	}
}

// note records that connID requested k at now and returns the admission
// verdict for that request.
func (t *stormTable) note(k stormKey, connID int64, now time.Time) stormVerdict {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.states[k]
	if st == nil || now.Sub(st.windowStart) > t.window {
		if len(t.states) >= stormTableCap {
			t.sweepLocked(now)
		}
		st = &stormState{windowStart: now, conns: make(map[int64]struct{}, t.threshold)}
		t.states[k] = st
	}
	st.conns[connID] = struct{}{}
	if len(st.conns) < t.threshold {
		return stormPass
	}
	if !st.resent {
		st.resent = true
		return stormResend
	}
	return stormSuppress
}

// noteNack records a NACK for chunk k and reports whether the server
// should multicast a re-send now. Unlike note, it needs no distinct-client
// threshold: a NACK is already the aggregated voice of a whole cohort, so
// the first one in a window triggers the re-send and every later one for
// the same chunk is absorbed — the requester just keeps re-listening. A
// window opened by unicast requests counts too: if its re-send already
// happened, the NACK rides it.
func (t *stormTable) noteNack(k stormKey, now time.Time) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.states[k]
	if st == nil || now.Sub(st.windowStart) > t.window {
		if len(t.states) >= stormTableCap {
			t.sweepLocked(now)
		}
		st = &stormState{windowStart: now, conns: make(map[int64]struct{})}
		t.states[k] = st
	}
	if st.resent {
		return false
	}
	st.resent = true
	return true
}

// sweepLocked drops expired windows. Callers hold mu.
func (t *stormTable) sweepLocked(now time.Time) {
	for k, st := range t.states {
		if now.Sub(st.windowStart) > t.window {
			delete(t.states, k)
		}
	}
}

// stormResend answers a coalesced repair storm once, on the chunk's own
// broadcast group. Two deliberate asymmetries with the normal data path:
//
//   - It sends through the hub directly, not s.send: the fault injector's
//     drop decisions are deterministic per chunk position, so routing the
//     re-send through it would re-drop exactly the chunk whose loss caused
//     the storm.
//   - It patches a private copy of the frame: resident cache frames are
//     patch-owned by their channel pacer, which may be mid-broadcast on
//     another goroutine.
//
// The dispatch goes through the hub's repair batch path, so storm
// re-sends share the sendmmsg/batching ledger with scheduled egress and
// show up in the repair-datagram ledger.
func (s *Server) stormResend(video, channel, chunk int, seq uint32, scratch *frameScratch) {
	cc := s.cache.channel(video, channel)
	frame := append([]byte(nil), s.cache.acquire(cc, chunk, scratch)...)
	if err := wire.PatchSeq(frame, seq); err != nil {
		s.cfg.Logf("server: storm re-send video%d/ch%d chunk %d: %v", video, channel, chunk, err)
		return
	}
	g := mcast.Group{Video: video, Channel: channel}
	if _, err := s.hub.SendRepairBatch([]mcast.BatchEntry{{Group: g, Frame: frame}}); err != nil {
		s.cfg.Logf("server: storm re-send %v: %v", g, err)
	}
	s.stormResends.Inc()
}

// nackResend answers one NACK's accepted chunks with a batched multicast
// re-send on the channel's broadcast group: one vectorized dispatch heals
// the whole injured audience. It shares stormResend's two asymmetries
// (injector bypass, private frame copies) for the same reasons.
func (s *Server) nackResend(video, channel int, seq uint32, chunks []int, scratch *frameScratch) {
	cc := s.cache.channel(video, channel)
	g := mcast.Group{Video: video, Channel: channel}
	entries := make([]mcast.BatchEntry, 0, len(chunks))
	for _, chunk := range chunks {
		frame := append([]byte(nil), s.cache.acquire(cc, chunk, scratch)...)
		if err := wire.PatchSeq(frame, seq); err != nil {
			s.cfg.Logf("server: nack re-send video%d/ch%d chunk %d: %v", video, channel, chunk, err)
			continue
		}
		entries = append(entries, mcast.BatchEntry{Group: g, Frame: frame})
	}
	if len(entries) == 0 {
		return
	}
	if _, err := s.hub.SendRepairBatch(entries); err != nil {
		s.cfg.Logf("server: nack re-send %v: %v", g, err)
	}
	s.nackResends.Add(int64(len(entries)))
}
