// The batched egress engine: a sharded hierarchical timer wheel that
// drives every (video, channel) broadcast schedule from a small fixed
// pool of shard goroutines.
//
// The per-pacer engine (pace, supervisor.go) keeps one goroutine and one
// timer per channel: M videos × K channels means M·K timers firing
// independently, M·K wakeups per chunk interval, and one Send — itself
// one syscall per member before the vectorized hub — per chunk. The
// wheel inverts that: each shard owns a fixed subset of the channels,
// hashes their next-due instants into a timer wheel quantized to the
// channels' chunk spacing, and sleeps until the earliest due tick. One
// wakeup collects *every* chunk due in that tick across all the shard's
// channels and hands them to the hub as a single batch
// (mcast.BatchSender), which puts them on the wire in sendmmsg batches.
// Steady state is therefore one timer wakeup and a handful of syscalls
// per tick per shard, independent of how many channels share the tick —
// the paper's O(channels) server cost with the constant actually small.
//
// Everything the per-pacer engine guarantees is preserved:
//
//   - The absolute epoch-anchored grid: entry positions are derived from
//     the wall clock (resync), never from send counts, so chunk c of
//     repetition n is sent at epoch + n*period_i + c*spacing_i exactly as
//     pace computes it — the golden equivalence test pins the two engines
//     to the same (rep, chunk) sequence.
//   - Supervision: a shard runs under the same panic-recovery/backoff
//     loop as a pacer (runWheelShard mirrors runPacer); a restarted shard
//     resyncs every entry from the clock and rejoins the grid
//     mid-repetition instead of replaying a burst.
//   - The drift watchdog: every chunk dispatched more than one unit after
//     its scheduled instant counts a drift event, same threshold, same
//     rate-limited logging.
package server

import (
	"runtime"
	"runtime/debug"
	"time"

	"skyscraper/internal/mcast"
	"skyscraper/internal/wire"
)

// Egress engine names for Config.EgressEngine.
const (
	// EngineWheel is the default: sharded timer wheel + batched fan-out.
	EngineWheel = "wheel"
	// EnginePacer is the legacy goroutine-per-channel engine, kept
	// selectable for A/B comparison and the golden equivalence test.
	EnginePacer = "pacer"
	// EngineUring is the wheel engine with the hub's shared io_uring
	// submission path armed: shards enqueue their expanded destination
	// vectors to one ring whose submitter coalesces them into single
	// io_uring_enter calls, batching egress across shards. Opt-in;
	// where the kernel lacks io_uring the server logs one notice and
	// resolves to the wheel engine.
	EngineUring = "uring"
)

// wheelMaxRun caps how many chunks one entry may stage into a single
// dispatch when catching up. 64 matches the kernel's UDP GSO segment cap
// (UDP_MAX_SEGMENTS), so a maximal catch-up run coalesces into exactly
// one super-frame on the GSO path.
const wheelMaxRun = 64

// wheelSlots is the fan-out of each wheel level: 256 level-0 slots of one
// quantum each, 256 level-1 slots of wheelSlots quanta each, and an
// overflow list beyond that horizon.
const wheelSlots = 256

// Bounds on the wheel quantum. The quantum tracks the finest chunk
// spacing so same-tick chunks batch without adding schedule error beyond
// one spacing; the floor keeps a pathological spacing from turning the
// wheel into a busy loop, the ceiling keeps idle boundary scans frequent
// enough that a sparse wheel still cascades promptly.
const (
	minWheelQuantum = 50 * time.Microsecond
	maxWheelQuantum = time.Second
)

// wheelEntry is one channel's place in the broadcast schedule: its static
// geometry (period, spacing, chunk count) and its cursor (repetition n,
// chunk c, and the absolute due offset from the epoch).
type wheelEntry struct {
	video   int
	channel int
	group   mcast.Group
	cc      *channelCache
	// scratch is per-entry so every frame staged into one batch is backed
	// by distinct memory even when its chunk is not cache-resident.
	scratch *frameScratch

	period  time.Duration
	spacing time.Duration
	chunks  int

	n   uint32
	c   int
	due time.Duration // offset of the next send from the epoch
	// firstDue remembers the due offset of the first chunk staged in the
	// current dispatch — the most-late one — for the post-send drift
	// check, since catch-up staging advances due before the batch leaves.
	firstDue time.Duration
	// dead marks a channel whose frames can no longer be patched (the
	// same condition that makes pace return); it is dropped from the
	// rotation.
	dead bool
}

// resync points the entry at the next chunk at or after elapsed on the
// absolute grid — the identical floor arithmetic pace uses to resume, so
// a shard restart rejoins the schedule exactly where a pacer would.
func (e *wheelEntry) resync(elapsed time.Duration) {
	if elapsed < 0 {
		elapsed = 0
	}
	n := elapsed / e.period
	c := int((elapsed % e.period) / e.spacing)
	if c >= e.chunks {
		n, c = n+1, 0
	}
	e.n = uint32(n)
	e.c = c
	e.due = time.Duration(e.n)*e.period + time.Duration(e.c)*e.spacing
}

// advance moves the cursor to the next chunk. The due offset is always
// recomputed from (n, c) — not incremented by spacing — because spacing
// is the floor of period/chunks, and accumulating it would let the
// schedule creep off the repetition boundaries the clients compute.
func (e *wheelEntry) advance() {
	e.c++
	if e.c >= e.chunks {
		e.c = 0
		e.n++
	}
	e.due = time.Duration(e.n)*e.period + time.Duration(e.c)*e.spacing
}

// timerWheel is a two-level hierarchical timer wheel over epoch offsets.
// Level 0 resolves single ticks across a 256-tick window starting at cur;
// level 1 resolves 256-tick windows across a 65536-tick horizon; entries
// beyond that wait in overflow. Slots hold entry pointers in reused
// slices, so steady-state insert/collect allocates nothing.
type timerWheel struct {
	quantum  time.Duration
	cur      int64 // next tick not yet collected
	level0   [wheelSlots][]*wheelEntry
	level1   [wheelSlots][]*wheelEntry
	overflow []*wheelEntry
}

// reset re-arms the wheel at the tick containing now, clearing all slots
// (their capacity is kept).
func (w *timerWheel) reset(quantum time.Duration, now time.Duration) {
	w.quantum = quantum
	w.cur = int64(now / quantum)
	for i := range w.level0 {
		w.level0[i] = w.level0[i][:0]
		w.level1[i] = w.level1[i][:0]
	}
	w.overflow = w.overflow[:0]
}

// insert files e by its due tick. Past-due entries land in the current
// tick and come out on the next collect.
func (w *timerWheel) insert(e *wheelEntry) {
	t := int64(e.due / w.quantum)
	if t < w.cur {
		t = w.cur
	}
	switch dt := t - w.cur; {
	case dt < wheelSlots:
		w.level0[t%wheelSlots] = append(w.level0[t%wheelSlots], e)
	case dt < wheelSlots*wheelSlots:
		w.level1[(t/wheelSlots)%wheelSlots] = append(w.level1[(t/wheelSlots)%wheelSlots], e)
	default:
		w.overflow = append(w.overflow, e)
	}
}

// collect advances the wheel to the tick containing now, appending every
// entry due in the crossed ticks to out (one tick's entries dispatch
// together — that is the batching). Level-1 windows cascade into level 0
// as cur crosses their boundaries, and overflow is re-filed once per
// level-1 lap.
func (w *timerWheel) collect(now time.Duration, out []*wheelEntry) []*wheelEntry {
	target := int64(now / w.quantum)
	for w.cur <= target {
		if w.cur%wheelSlots == 0 {
			w.cascade()
		}
		slot := &w.level0[w.cur%wheelSlots]
		out = append(out, *slot...)
		*slot = (*slot)[:0]
		w.cur++
	}
	return out
}

// cascade re-files the level-1 slot covering the window that starts at
// cur, and — once per level-1 lap — the overflow list. An entry whose due
// tick is a whole lap ahead goes back where it was and waits for the next
// cascade; everything else drops into level 0.
func (w *timerWheel) cascade() {
	slot := &w.level1[(w.cur/wheelSlots)%wheelSlots]
	pending := *slot
	*slot = (*slot)[:0]
	for _, e := range pending {
		w.insert(e)
	}
	if w.cur%(wheelSlots*wheelSlots) == 0 {
		pending = w.overflow
		w.overflow = w.overflow[:0]
		for _, e := range pending {
			w.insert(e)
		}
	}
}

// nextDue returns the epoch offset the shard should sleep until: the
// earliest due entry in the level-0 window if there is one, otherwise the
// next cascade boundary (at which closer entries may surface from level 1
// or overflow). ok is false when the wheel is empty.
func (w *timerWheel) nextDue() (next time.Duration, ok bool) {
	boundary := (w.cur/wheelSlots + 1) * wheelSlots
	best := time.Duration(-1)
	for t := w.cur; t < boundary+wheelSlots; t++ {
		slot := w.level0[t%wheelSlots]
		if len(slot) == 0 {
			continue
		}
		best = slot[0].due
		for _, e := range slot[1:] {
			if e.due < best {
				best = e.due
			}
		}
		// A past-due entry (clamped into this slot by insert) keeps its
		// stale due offset, but collect only releases the slot once the
		// clock enters tick t. Waking any earlier would spin — timer
		// fires, collect crosses no tick, nothing dispatches, repeat —
		// burning the core exactly when the schedule is already behind.
		if bt := time.Duration(t) * w.quantum; best < bt {
			best = bt
		}
		break
	}
	more := len(w.overflow) > 0
	for i := 0; !more && i < wheelSlots; i++ {
		more = len(w.level1[i]) > 0
	}
	if more {
		if bt := time.Duration(boundary) * w.quantum; best < 0 || bt < best {
			// Level-0 slots past the boundary can hold later entries than
			// an uncascaded level-1 window; waking at the boundary keeps
			// the scan cheap and never oversleeps a due entry.
			best = bt
		}
	}
	return best, best >= 0
}

// wheelShard owns a fixed subset of the channel entries and runs their
// schedule from one goroutine. due and batch are reused across wakeups.
type wheelShard struct {
	s       *Server
	id      int
	entries []*wheelEntry
	wheel   timerWheel
	due     []*wheelEntry
	batch   []mcast.BatchEntry
	// spares back the frames of catch-up runs: cache.acquire encodes a
	// non-resident chunk into the scratch it is handed, so every chunk
	// staged into one batch needs distinct backing memory. The first
	// chunk of an entry uses the entry's own scratch; further chunks of
	// the same dispatch draw from this lazily-grown shard pool (steady
	// state stages one chunk per entry and never touches it).
	spares   []*frameScratch
	spareIdx int
	// pspares back the parity frames of a dispatch the same way: each
	// parity frame staged into one batch needs distinct memory when the
	// cache budget is spent. Empty while the stripe is off.
	pspares   []*parityScratch
	pspareIdx int
}

// nextSpare hands out the next spare scratch of the current dispatch,
// growing the pool only when a dispatch stages deeper than any before.
func (sh *wheelShard) nextSpare() *frameScratch {
	if sh.spareIdx == len(sh.spares) {
		sh.spares = append(sh.spares, newFrameScratch(sh.s.cfg.ChunkBytes))
	}
	sp := sh.spares[sh.spareIdx]
	sh.spareIdx++
	return sp
}

// nextParitySpare is nextSpare for parity scratch.
func (sh *wheelShard) nextParitySpare() *parityScratch {
	if sh.pspareIdx == len(sh.pspares) {
		sh.pspares = append(sh.pspares, newParityScratch(sh.s.cfg.ChunkBytes))
	}
	sp := sh.pspares[sh.pspareIdx]
	sh.pspareIdx++
	return sp
}

// newWheelEntry builds the schedule state for (video v, channel i) — the
// same geometry pace derives.
func (s *Server) newWheelEntry(v, i int) *wheelEntry {
	size := s.cfg.Scheme.Sizes()[i-1]
	period := time.Duration(size) * s.cfg.Unit
	chunks := s.fragmentBytes(i) / s.cfg.ChunkBytes
	return &wheelEntry{
		video:   v,
		channel: i,
		group:   mcast.Group{Video: v, Channel: i},
		cc:      s.cache.channel(v, i),
		scratch: newFrameScratch(s.cfg.ChunkBytes),
		period:  period,
		spacing: period / time.Duration(chunks),
		chunks:  chunks,
	}
}

// startWheel launches the egress shards: every (video, channel) entry is
// dealt round-robin across min(GOMAXPROCS, channels) shards, each
// supervised like a pacer.
func (s *Server) startWheel() {
	sch := s.cfg.Scheme
	var entries []*wheelEntry
	for v := 0; v < sch.Config().Videos; v++ {
		for i := 1; i <= sch.K(); i++ {
			entries = append(entries, s.newWheelEntry(v, i))
		}
	}
	n := runtime.GOMAXPROCS(0)
	if n > len(entries) {
		n = len(entries)
	}
	s.shards = n
	for si := 0; si < n; si++ {
		sh := &wheelShard{s: s, id: si}
		for j := si; j < len(entries); j += n {
			sh.entries = append(sh.entries, entries[j])
		}
		s.wg.Add(1)
		go s.runWheelShard(sh)
	}
}

// runWheelShard supervises one shard exactly as runPacer supervises one
// pacer: panics are recovered, the shard restarts with exponential
// backoff, and a stable run earns the backoff reset. Restarts land in the
// same pacerRestarts counter — a shard restart is the wheel engine's
// pacer restart.
func (s *Server) runWheelShard(sh *wheelShard) {
	defer s.wg.Done()
	backoff := pacerRestartBase
	for {
		started := time.Now()
		if sh.runRecovering() {
			return // orderly exit: server stopping
		}
		d := s.pacerRestarts.Add(1)
		if time.Since(started) > pacerStableAfter {
			backoff = pacerRestartBase
		}
		s.cfg.Logf("server: restarting egress shard %d (%d channels) in %v (restart #%d)",
			sh.id, len(sh.entries), backoff, d)
		select {
		case <-s.stop:
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > pacerRestartMax {
			backoff = pacerRestartMax
		}
	}
}

// runRecovering runs one shard attempt, converting a panic into a false
// return so the supervisor restarts it. An orderly return reports true.
func (sh *wheelShard) runRecovering() (done bool) {
	defer func() {
		if r := recover(); r != nil {
			sh.s.cfg.Logf("server: egress shard %d panicked: %v\n%s", sh.id, r, debug.Stack())
		}
	}()
	sh.run()
	return true
}

// quantum picks the shard's wheel resolution: the finest chunk spacing
// among its entries, clamped to [minWheelQuantum, maxWheelQuantum].
func (sh *wheelShard) quantum() time.Duration {
	q := maxWheelQuantum
	for _, e := range sh.entries {
		if e.spacing < q {
			q = e.spacing
		}
	}
	if q < minWheelQuantum {
		q = minWheelQuantum
	}
	return q
}

// run is the shard dispatch loop: sleep to the earliest due tick, collect
// everything due, dispatch it as one batch, re-file the entries. Entered
// fresh after every restart, it rebuilds the wheel from the wall clock so
// the shard rejoins the absolute grid.
func (sh *wheelShard) run() {
	s := sh.s
	sh.wheel.reset(sh.quantum(), time.Since(s.epoch))
	live := 0
	for _, e := range sh.entries {
		if e.dead {
			continue
		}
		e.resync(time.Since(s.epoch))
		sh.wheel.insert(e)
		live++
	}
	if live == 0 {
		<-s.stop
		return
	}
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		wait := time.Hour
		if next, ok := sh.wheel.nextDue(); ok {
			wait = time.Until(s.epoch.Add(next))
		}
		timer.Reset(wait)
		select {
		case <-s.stop:
			return
		case <-timer.C:
		}
		s.wheelWakeups.Inc()
		sh.due = sh.wheel.collect(time.Since(s.epoch), sh.due[:0])
		if len(sh.due) > 0 {
			sh.dispatch()
		}
	}
}

// dispatch sends one tick's worth of chunks. Frame preparation is
// identical to pace — hook, cache acquire, 4-byte Seq patch — but the
// prepared frames leave as one hub batch when the sender supports it
// (it does not when a fault injector is interposed, which must keep
// deciding chunk by chunk; those go through per-chunk Send unchanged).
//
// Catch-up shaping: when an entry has fallen behind — a stalled shard,
// a restart, a dense schedule — every chunk already due is staged in
// the same dispatch as one same-group contiguous run (capped at
// wheelMaxRun and at the repetition boundary), instead of one chunk per
// wakeup. The run order is the
// schedule order, so per-channel (rep, chunk) sequences stay exactly
// what the pacer engine produces, and the contiguous same-group shape
// is precisely what the hub's GSO path coalesces into super-frames.
func (sh *wheelShard) dispatch() {
	s := sh.s
	hook := s.cfg.PacerHook
	bs, batching := s.send.(mcast.BatchSender)
	sh.batch = sh.batch[:0]
	sh.spareIdx = 0
	sh.pspareIdx = 0
	elapsed := time.Since(s.epoch)
	for _, e := range sh.due {
		e.firstDue = e.due
		staged := 0
		for {
			if hook != nil {
				hook(e.video, e.channel, e.n, e.c)
			}
			scratch := e.scratch
			if staged > 0 {
				scratch = sh.nextSpare()
			}
			n, c := e.n, e.c
			frame := s.cache.acquire(e.cc, c, scratch)
			if err := wire.PatchSeq(frame, n); err != nil {
				// The channel cannot broadcast coherent frames; retire it,
				// as pace does by returning.
				s.cfg.Logf("server: patching %v seq %d: %v", e.group, n, err)
				e.dead = true
				break
			}
			staged++
			if batching {
				sh.batch = append(sh.batch, mcast.BatchEntry{Group: e.group, Frame: frame})
			} else if _, err := s.send.Send(e.group, frame); err != nil {
				sh.logSendErr(e, err)
			}
			e.advance()
			// The stripe: parity frames follow the last data chunk of every
			// transmission group, staged into the same batch so they ride
			// the same sendmmsg/GSO egress. A parity frame is larger than a
			// data frame, which ends any GSO run by the size rule — parity
			// never corrupts super-frame coalescing, it just books ends of
			// groups.
			if g := s.cfg.FecGroup; g > 0 && ((c+1)%g == 0 || c+1 == e.chunks) {
				sh.stageParity(e, c/g, n, batching)
			}
			// A run ends when the entry is caught up, at the wheelMaxRun
			// cap, or at a repetition boundary. The boundary stop is an
			// aliasing guard: chunk indices within one repetition are
			// distinct, but across the wrap the same chunk recurs, and a
			// cache-resident frame is one shared buffer whose Seq patch
			// would retroactively corrupt the earlier staged entry. A
			// still-behind entry re-files at the current tick and the next
			// wakeup continues the catch-up.
			if !batching || e.due > elapsed || staged >= wheelMaxRun || e.c == 0 {
				break
			}
		}
	}
	if batching && len(sh.batch) > 0 {
		if _, err := bs.SendBatch(sh.batch); err != nil {
			sh.logSendErr(sh.due[0], err)
		}
	}
	for _, e := range sh.due {
		if e.dead {
			continue
		}
		// One drift sample per entry per dispatch, taken against the
		// first (most-late) chunk staged — the chunk the old
		// one-chunk-per-wakeup engine would have sampled.
		if late := time.Since(s.epoch.Add(e.firstDue)); late > s.cfg.Unit {
			if d := s.driftEvents.Add(1); d == 1 || d%256 == 0 {
				s.cfg.Logf("server: pacing drift: %v seq %d chunk %d sent %v late (%d drift events)",
					e.group, e.n, e.c, late, d)
			}
		}
		sh.wheel.insert(e)
	}
}

// stageParity stages (or, without a batching sender, sends) stripe group
// pg's parity frame(s) for repetition n on entry e's channel.
func (sh *wheelShard) stageParity(e *wheelEntry, pg int, n uint32, batching bool) {
	s := sh.s
	for pi := 0; pi < s.cache.nparity; pi++ {
		frame := s.cache.acquireParity(e.cc, pg, pi, sh.nextParitySpare())
		if err := wire.PatchSeq(frame, n); err != nil {
			s.cfg.Logf("server: patching %v parity seq %d: %v", e.group, n, err)
			return
		}
		if batching {
			sh.batch = append(sh.batch, mcast.BatchEntry{Group: e.group, Frame: frame})
		} else if _, err := s.send.Send(e.group, frame); err != nil {
			sh.logSendErr(e, err)
			continue
		}
		s.parityFrames.Inc()
		s.parityBytes.Add(int64(len(frame)))
	}
}

// logSendErr reports a send failure unless the server is stopping (whose
// socket teardown makes trailing sends fail by design).
func (sh *wheelShard) logSendErr(e *wheelEntry, err error) {
	select {
	case <-sh.s.stop:
	default:
		sh.s.cfg.Logf("server: sending %v seq %d: %v", e.group, e.n, err)
	}
}
