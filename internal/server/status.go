package server

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"skyscraper/internal/faults"
	"skyscraper/internal/mcast"
)

// StatusSnapshot is the JSON document served at /status.
type StatusSnapshot struct {
	// Videos and ChannelsPerVideo describe the broadcast layout.
	Videos           int   `json:"videos"`
	ChannelsPerVideo int   `json:"channelsPerVideo"`
	Width            int64 `json:"width"`
	// SizeUnits are the fragment sizes in D1 units.
	SizeUnits []int64 `json:"sizeUnits"`
	// UnitMillis is the wall duration of one D1 unit.
	UnitMillis float64 `json:"unitMillis"`
	// UptimeMillis is time since the broadcast epoch.
	UptimeMillis float64 `json:"uptimeMillis"`
	// DatagramsSent counts chunks written to receivers so far;
	// DatagramBytes the bytes those datagrams carried, and SendFailures
	// the member writes that failed (the rest of the group still got the
	// datagram).
	DatagramsSent int64 `json:"datagramsSent"`
	DatagramBytes int64 `json:"datagramBytes"`
	SendFailures  int64 `json:"sendFailures"`
	// Memberships is the current total of (client, channel) joins.
	Memberships int `json:"memberships"`
	// ControlSessions is the live control-connection count and
	// ControlSessionsPeak its high-water mark — with the virtual-viewer
	// multiplexer, one session can stand for a whole cohort of viewers.
	ControlSessions     int64 `json:"controlSessions"`
	ControlSessionsPeak int64 `json:"controlSessionsPeak"`
	// RepairsServed counts unicast chunk repairs answered; RepairBytes
	// the payload bytes they carried.
	RepairsServed int64 `json:"repairsServed"`
	RepairBytes   int64 `json:"repairBytes"`
	// BusyReplies counts repair requests pushed back with Busy;
	// StormResends coalesced storms answered by one multicast re-send;
	// SuppressedRepairs the unicast requests those re-sends absorbed.
	BusyReplies       int64 `json:"busyReplies"`
	StormResends      int64 `json:"stormResends"`
	SuppressedRepairs int64 `json:"suppressedRepairs"`
	// NacksServed counts gap-bitmap NACK messages answered; NackResends
	// the multicast re-sends they triggered; NackSuppressed the NACKed
	// chunks absorbed by a re-send already in flight; RepairDatagrams
	// the multicast repair re-sends (storm- and NACK-triggered) on the
	// wire, so repair traffic is distinguishable from schedule traffic.
	NacksServed     int64 `json:"nacksServed"`
	NackResends     int64 `json:"nackResends"`
	NackSuppressed  int64 `json:"nackSuppressed"`
	RepairDatagrams int64 `json:"repairDatagrams"`
	// FecGroup/FecMode echo the configured parity stripe (0/"" when
	// off); ParityFrames/ParityBytes count the stripe's broadcast
	// overhead — the proactive repair the control-plane counters above
	// never see.
	FecGroup     int    `json:"fecGroup,omitempty"`
	FecMode      string `json:"fecMode,omitempty"`
	ParityFrames int64  `json:"parityFrames,omitempty"`
	ParityBytes  int64  `json:"parityBytes,omitempty"`
	// RepairTokens is the repair budget's current level in bytes, -1 when
	// unlimited.
	RepairTokens int64 `json:"repairTokens"`
	// PacerRestarts counts supervisor restarts after pacer panics;
	// PacerDriftEvents broadcasts more than one unit behind schedule.
	PacerRestarts    int64 `json:"pacerRestarts"`
	PacerDriftEvents int64 `json:"pacerDriftEvents"`
	// EgressEngine names the resolved engine driving the channel
	// schedules ("wheel", "pacer", or "uring" while the shared io_uring
	// ring is armed); EgressShards how many shard goroutines the wheel
	// runs (0 under the per-pacer engine); EgressWakeups their timer
	// wakeups, each dispatching every chunk due in its tick.
	EgressEngine  string `json:"egressEngine"`
	EgressShards  int    `json:"egressShards"`
	EgressWakeups int64  `json:"egressWakeups"`
	// EgressBatches counts batched hub dispatches and BatchedBytes the
	// payload bytes they carried; EgressSyscalls the kernel send
	// invocations (sendmmsg calls on the vectorized path, per-datagram
	// writes otherwise) — DatagramsSent/EgressSyscalls is the achieved
	// batching factor. Vectorized reports whether the sendmmsg fast path
	// is active.
	EgressBatches  int64 `json:"egressBatches"`
	BatchedBytes   int64 `json:"batchedBytes"`
	EgressSyscalls int64 `json:"egressSyscalls"`
	Vectorized     bool  `json:"vectorized"`
	// The super-frame (UDP GSO) ledger. GSO reports whether the
	// UDP_SEGMENT path is active; Superframes counts super-datagrams put
	// on the wire (one syscall slot each, split by the kernel);
	// GSOSegments the wire datagrams they carried;
	// SegmentsPerSuperframe the achieved coalescing factor
	// (GSOSegments/Superframes); SegmentsPerSyscall the wire datagrams
	// per GSO-path sendmmsg call; GSOFallbacks how many times the path
	// was declined or abandoned (probe failure, SKYSCRAPER_NO_GSO,
	// runtime demotion).
	GSO                   bool    `json:"gso"`
	Superframes           int64   `json:"superframes"`
	GSOSegments           int64   `json:"gsoSegments"`
	SegmentsPerSuperframe float64 `json:"segmentsPerSuperframe"`
	SegmentsPerSyscall    float64 `json:"segmentsPerSyscall"`
	GSOFallbacks          int64   `json:"gsoFallbacks"`
	// The ingress ladder ledger, summed over every shared receiver this
	// process has opened (zero on a pure egress server). BatchedReads
	// counts datagrams delivered through the recvmmsg rung; ReadSyscalls
	// every kernel receive invocation on either rung —
	// BatchedReads/ReadSyscalls is the achieved ingress batching factor.
	// GroSegments counts wire datagrams recovered by splitting UDP_GRO
	// super-frames; GroFallbacks how many times a rung was declined or
	// abandoned; ReadErrors counted (and backoff-throttled) receive
	// failures.
	BatchedReads    int64   `json:"batchedReads,omitempty"`
	ReadSyscalls    int64   `json:"readSyscalls,omitempty"`
	ReadsPerSyscall float64 `json:"readsPerSyscall,omitempty"`
	GroSegments     int64   `json:"groSegments,omitempty"`
	GroFallbacks    int64   `json:"groFallbacks,omitempty"`
	ReadErrors      int64   `json:"readErrors,omitempty"`
	// The io_uring ledger. UringSubmits counts io_uring_enter calls of
	// the shared cross-shard submission ring; UringSQEs the send SQEs
	// they carried; SQEDepth the achieved depth per submit
	// (UringSQEs/UringSubmits) — cross-shard coalescing pushes it above
	// any single shard's batch size.
	UringSubmits int64   `json:"uringSubmits"`
	UringSQEs    int64   `json:"uringSqes"`
	SQEDepth     float64 `json:"sqeDepth"`
	// MembersEvicted counts group members removed after consecutive send
	// failures.
	MembersEvicted int64 `json:"membersEvicted"`
	// Draining reports a server in graceful shutdown.
	Draining bool `json:"draining"`
	// FrameCache reports the broadcast frame cache's hit rate and
	// resident footprint.
	FrameCache CacheStats `json:"frameCache"`
	// FaultsInjected summarizes the fault injector's activity when a
	// chaos plan is configured; absent otherwise.
	FaultsInjected *faults.Counts `json:"faultsInjected,omitempty"`
	// ControlAddr is the TCP control address clients dial.
	ControlAddr string `json:"controlAddr"`
}

// snapshot assembles the current status.
func (s *Server) snapshot() StatusSnapshot {
	sch := s.cfg.Scheme
	var injected *faults.Counts
	if s.inj != nil {
		c := s.inj.Counts()
		injected = &c
	}
	ratio := func(num, den int64) float64 {
		if den == 0 {
			return 0
		}
		return float64(num) / float64(den)
	}
	superframes, gsoSegments := s.hub.Superframes(), s.hub.GSOSegments()
	uringSubmits, uringSQEs := s.hub.UringSubmits(), s.hub.UringSQEs()
	ing := mcast.IngressStats()
	return StatusSnapshot{
		RepairsServed:         s.repairs.Value(),
		RepairBytes:           s.repairBytes.Value(),
		BusyReplies:           s.busyReplies.Value(),
		StormResends:          s.stormResends.Value(),
		SuppressedRepairs:     s.suppressed.Value(),
		NacksServed:           s.nacksServed.Value(),
		NackResends:           s.nackResends.Value(),
		NackSuppressed:        s.nackSuppressed.Value(),
		RepairDatagrams:       s.hub.RepairDatagrams(),
		FecGroup:              s.cfg.FecGroup,
		FecMode:               s.cfg.FecMode,
		ParityFrames:          s.parityFrames.Value(),
		ParityBytes:           s.parityBytes.Value(),
		RepairTokens:          s.RepairTokens(),
		PacerRestarts:         s.pacerRestarts.Value(),
		PacerDriftEvents:      s.driftEvents.Value(),
		EgressEngine:          s.EgressEngine(),
		EgressShards:          s.shards,
		EgressWakeups:         s.wheelWakeups.Value(),
		EgressBatches:         s.hub.Batches(),
		BatchedBytes:          s.hub.BatchedBytes(),
		EgressSyscalls:        s.hub.SendSyscalls(),
		Vectorized:            s.hub.Vectorized(),
		GSO:                   s.hub.GSO(),
		Superframes:           superframes,
		GSOSegments:           gsoSegments,
		SegmentsPerSuperframe: ratio(gsoSegments, superframes),
		SegmentsPerSyscall:    ratio(gsoSegments, s.hub.GSOSyscalls()),
		GSOFallbacks:          s.hub.GSOFallbacks(),
		UringSubmits:          uringSubmits,
		UringSQEs:             uringSQEs,
		SQEDepth:              ratio(uringSQEs, uringSubmits),
		BatchedReads:          ing.BatchedReads,
		ReadSyscalls:          ing.ReadSyscalls,
		ReadsPerSyscall:       ratio(ing.BatchedReads, ing.ReadSyscalls),
		GroSegments:           ing.GROSegments,
		GroFallbacks:          ing.GROFallbacks,
		ReadErrors:            ing.ReadErrors,
		MembersEvicted:        s.hub.Evictions(),
		Draining:              s.draining.Load(),
		FaultsInjected:        injected,
		Videos:                sch.Config().Videos,
		ChannelsPerVideo:      sch.K(),
		Width:                 sch.Width(),
		SizeUnits:             append([]int64(nil), sch.Sizes()...),
		UnitMillis:            float64(s.cfg.Unit) / float64(time.Millisecond),
		UptimeMillis:          float64(time.Since(s.epoch)) / float64(time.Millisecond),
		DatagramsSent:         s.hub.Sent(),
		DatagramBytes:         s.hub.SentBytes(),
		SendFailures:          s.hub.SendFailures(),
		Memberships:           s.hub.TotalMembers(),
		ControlSessions:       s.controlSessions.Value(),
		ControlSessionsPeak:   s.controlSessions.High(),
		FrameCache:            s.cache.stats(),
		ControlAddr:           s.Addr(),
	}
}

// ServeStatus starts an HTTP status endpoint on a loopback ephemeral port,
// returning its base URL. It serves:
//
//	GET /status    the StatusSnapshot as JSON
//	GET /healthz   200 "ok" while the server runs
//
// With Config.EnablePprof it additionally serves the net/http/pprof
// handlers under /debug/pprof/. The endpoint stops when the server is
// closed.
func (s *Server) ServeStatus() (string, error) {
	if s.hub == nil {
		return "", fmt.Errorf("server: ServeStatus before Start")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", fmt.Errorf("server: status listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(s.snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		// A draining server fails its health check so load balancers stop
		// routing new viewers to it while existing sessions wind down.
		if s.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	if s.cfg.EnablePprof {
		// Registered by hand rather than importing the pprof side effects
		// into http.DefaultServeMux, which this endpoint does not use.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	srv := &http.Server{Handler: mux}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		_ = srv.Serve(ln)
	}()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		<-s.stop
		_ = srv.Close()
	}()
	return "http://" + ln.Addr().String(), nil
}
