package server_test

import (
	"bufio"
	"context"
	"encoding/json"
	"math"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"skyscraper/internal/client"
	"skyscraper/internal/core"
	"skyscraper/internal/mcast"
	"skyscraper/internal/server"
	"skyscraper/internal/vod"
	"skyscraper/internal/wire"
)

// liveScheme builds a small broadcast: M videos, K channels each, W = 2.
// With B = 1.5*M*K the config yields exactly K channels per video.
func liveScheme(t *testing.T, m, k int, w int64) *core.Scheme {
	t.Helper()
	cfg := vod.Config{ServerMbps: 1.5 * float64(m*k), Videos: m, LengthMin: 120, RateMbps: 1.5}
	sch, err := core.New(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if sch.K() != k {
		t.Fatalf("K = %d, want %d", sch.K(), k)
	}
	return sch
}

// robustClient returns client settings tolerant of shared-machine
// scheduling noise: a scheduling *bug* misplaces data by at least one
// whole unit, so one unit of slack keeps jitter detection meaningful.
func robustClient(addr string, video int) client.Config {
	return client.Config{ServerAddr: addr, Video: video, JoinLeadFrac: 0.9, SlackFrac: 1.0}
}

func startServer(t *testing.T, sch *core.Scheme, unit time.Duration) *server.Server {
	t.Helper()
	srv, err := server.New(server.Config{
		Scheme:       sch,
		Unit:         unit,
		BytesPerUnit: 4096,
		ChunkBytes:   1024,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

// TestLiveEndToEnd plays one full "two-hour video" (compressed to tens of
// milliseconds per unit) through the real server over real UDP sockets,
// verifying every byte, jitter-freeness and the latency bound.
func TestLiveEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("live network test")
	}
	sch := liveScheme(t, 2, 5, 2) // fragments 1,2,2,2,2 - 9 units per playback
	srv := startServer(t, sch, 60*time.Millisecond)

	cfg := robustClient(srv.Addr(), 1)
	cfg.Logf = t.Logf
	stats, err := client.Watch(cfg)
	if err != nil {
		t.Fatalf("watch failed: %v (stats %+v)", err, stats)
	}
	wantBytes := int64(sch.TotalUnits()) * 4096
	if stats.Bytes != wantBytes {
		t.Errorf("received %d bytes, want %d", stats.Bytes, wantBytes)
	}
	if stats.ByteErrors != 0 || stats.LateChunks != 0 {
		t.Errorf("byte errors %d, late chunks %d", stats.ByteErrors, stats.LateChunks)
	}
	if stats.WaitUnits > 1.95 { // 1 unit + join lead (0.9)
		t.Errorf("wait = %v units, want <= 1.95", stats.WaitUnits)
	}
	// Buffer bound: (W-1) units of data plus one chunk of arrival
	// granularity.
	bound := (sch.EffectiveWidth()-1)*4096 + 1024
	if stats.MaxBufferBytes > bound {
		t.Errorf("max buffer %d bytes exceeds bound %d", stats.MaxBufferBytes, bound)
	}
}

// TestLiveConcurrentClients runs several staggered clients on different
// videos against one server — the whole point of broadcast is that server
// load is independent of the audience.
func TestLiveConcurrentClients(t *testing.T) {
	if testing.Short() {
		t.Skip("live network test")
	}
	sch := liveScheme(t, 2, 4, 2) // fragments 1,2,2,2 - 7 units
	srv := startServer(t, sch, 100*time.Millisecond)

	const n = 4
	var wg sync.WaitGroup
	errs := make([]error, n)
	stats := make([]*client.Stats, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			time.Sleep(time.Duration(i) * 25 * time.Millisecond)
			stats[i], errs[i] = client.Watch(robustClient(srv.Addr(), i%2))
		}()
	}
	wg.Wait()
	want := int64(sch.TotalUnits()) * 4096
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Errorf("client %d: %v", i, errs[i])
			continue
		}
		if stats[i].Bytes != want {
			t.Errorf("client %d received %d bytes, want %d", i, stats[i].Bytes, want)
		}
	}
}

// TestLiveWiderSkyscraper exercises a multi-group schedule (W = 5) with a
// capped tail, the shape that stresses loader hand-off between channels.
func TestLiveWiderSkyscraper(t *testing.T) {
	if testing.Short() {
		t.Skip("live network test")
	}
	sch := liveScheme(t, 1, 6, 5) // fragments 1,2,2,5,5,5 - 20 units
	srv := startServer(t, sch, 80*time.Millisecond)

	stats, err := client.Watch(robustClient(srv.Addr(), 0))
	if err != nil {
		t.Fatalf("watch failed: %v (stats %+v)", err, stats)
	}
	if want := int64(sch.TotalUnits()) * 4096; stats.Bytes != want {
		t.Errorf("received %d bytes, want %d", stats.Bytes, want)
	}
	if stats.Groups != 3 {
		t.Errorf("groups = %d, want 3", stats.Groups)
	}
}

func TestServerConfigValidation(t *testing.T) {
	sch := liveScheme(t, 1, 3, 2)
	bad := []server.Config{
		{Scheme: nil, Unit: time.Second, BytesPerUnit: 4096, ChunkBytes: 1024},
		{Scheme: sch, Unit: 0, BytesPerUnit: 4096, ChunkBytes: 1024},
		{Scheme: sch, Unit: time.Second, BytesPerUnit: 0, ChunkBytes: 1024},
		{Scheme: sch, Unit: time.Second, BytesPerUnit: 4096, ChunkBytes: 0},
		{Scheme: sch, Unit: time.Second, BytesPerUnit: 4096, ChunkBytes: 1000}, // does not divide
		{Scheme: sch, Unit: time.Second, BytesPerUnit: 4096, ChunkBytes: wire.MaxPayload * 2},
	}
	for i, cfg := range bad {
		if _, err := server.New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

// TestControlProtocolErrors drives the control port directly and checks
// the server rejects malformed requests without dying.
func TestControlProtocolErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("live network test")
	}
	sch := liveScheme(t, 1, 3, 2)
	srv := startServer(t, sch, 50*time.Millisecond)

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)

	// Join for a channel that does not exist.
	if err := wire.WriteControl(conn, &wire.Control{Kind: wire.KindJoin, Video: 0, Channel: 99, Port: 12345}); err != nil {
		t.Fatal(err)
	}
	m, err := wire.ReadControl(r)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != wire.KindError {
		t.Errorf("bad join answered with %q", m.Kind)
	}

	// Bad port.
	if err := wire.WriteControl(conn, &wire.Control{Kind: wire.KindJoin, Video: 0, Channel: 1, Port: -1}); err != nil {
		t.Fatal(err)
	}
	if m, err = wire.ReadControl(r); err != nil || m.Kind != wire.KindError {
		t.Errorf("bad port: %v %v", m, err)
	}

	// Unknown kind.
	if err := wire.WriteControl(conn, &wire.Control{Kind: "subscribe"}); err != nil {
		t.Fatal(err)
	}
	if m, err = wire.ReadControl(r); err != nil || m.Kind != wire.KindError {
		t.Errorf("unknown kind: %v %v", m, err)
	}

	// The connection still works: hello succeeds.
	if err := wire.WriteControl(conn, &wire.Control{Kind: wire.KindHello}); err != nil {
		t.Fatal(err)
	}
	if m, err = wire.ReadControl(r); err != nil || m.Kind != wire.KindWelcome {
		t.Errorf("hello after errors: %v %v", m, err)
	}
	if m.Welcome.ChannelsPerVideo != 3 || math.Abs(float64(m.Welcome.UnitNanos)-50e6) > 1 {
		t.Errorf("welcome payload %+v", m.Welcome)
	}
}

// TestDisconnectCleansMemberships verifies that dropping the control
// connection removes the client's group memberships.
func TestDisconnectCleansMemberships(t *testing.T) {
	if testing.Short() {
		t.Skip("live network test")
	}
	sch := liveScheme(t, 1, 3, 2)
	srv := startServer(t, sch, 50*time.Millisecond)

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(conn)
	if err := wire.WriteControl(conn, &wire.Control{Kind: wire.KindJoin, Video: 0, Channel: 1, Port: 23456}); err != nil {
		t.Fatal(err)
	}
	if m, err := wire.ReadControl(r); err != nil || m.Kind != wire.KindJoined {
		t.Fatalf("join: %v %v", m, err)
	}
	conn.Close()
	// The server reaps the membership when the control loop notices.
	deadline := time.Now().Add(3 * time.Second)
	for {
		if srv.Hub().Members(mcast.Group{Video: 0, Channel: 1}) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("membership survived disconnect")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStatsEndpoint queries the server's operational snapshot over the
// control protocol.
func TestStatsEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("live network test")
	}
	sch := liveScheme(t, 2, 3, 2)
	srv := startServer(t, sch, 50*time.Millisecond)

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	if err := wire.WriteControl(conn, &wire.Control{Kind: wire.KindJoin, Video: 0, Channel: 1, Port: 33333}); err != nil {
		t.Fatal(err)
	}
	if m, err := wire.ReadControl(r); err != nil || m.Kind != wire.KindJoined {
		t.Fatalf("join: %v %v", m, err)
	}
	time.Sleep(120 * time.Millisecond) // let the pacers send something
	if err := wire.WriteControl(conn, &wire.Control{Kind: wire.KindStats}); err != nil {
		t.Fatal(err)
	}
	m, err := wire.ReadControl(r)
	if err != nil || m.Kind != wire.KindStatsOK || m.Stats == nil {
		t.Fatalf("stats: %+v %v", m, err)
	}
	if m.Stats.Channels != 6 {
		t.Errorf("channels = %d, want 6", m.Stats.Channels)
	}
	if m.Stats.Members != 1 {
		t.Errorf("members = %d, want 1", m.Stats.Members)
	}
	if m.Stats.DatagramsSent == 0 {
		t.Error("no datagrams counted despite an active membership")
	}
	if m.Stats.UptimeNanos <= 0 {
		t.Error("non-positive uptime")
	}
}

// TestStatusHTTP exercises the ops-facing HTTP endpoint.
func TestStatusHTTP(t *testing.T) {
	if testing.Short() {
		t.Skip("live network test")
	}
	sch := liveScheme(t, 1, 4, 2)
	srv := startServer(t, sch, 50*time.Millisecond)
	base, err := srv.ServeStatus()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("healthz status %d", resp.StatusCode)
	}
	resp, err = http.Get(base + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap server.StatusSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Videos != 1 || snap.ChannelsPerVideo != 4 || len(snap.SizeUnits) != 4 {
		t.Errorf("snapshot %+v", snap)
	}
	if snap.ControlAddr != srv.Addr() {
		t.Errorf("control addr %q != %q", snap.ControlAddr, srv.Addr())
	}
	if snap.UnitMillis != 50 {
		t.Errorf("unit %v ms", snap.UnitMillis)
	}
	// Unknown path is a 404.
	resp, err = http.Get(base + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("unknown path status %d", resp.StatusCode)
	}
	// ServeStatus before Start is rejected.
	raw, err := server.New(server.Config{Scheme: sch, Unit: 50 * time.Millisecond, BytesPerUnit: 4096, ChunkBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw.ServeStatus(); err == nil {
		t.Error("ServeStatus before Start accepted")
	}
}

// TestCloseDrainRace races Drain against concurrent Close calls while
// control handlers are mid-request and pacers are broadcasting. Under
// -race this is the shutdown plane's memory-safety proof; functionally,
// every shutdown path must return and every handler must terminate.
func TestCloseDrainRace(t *testing.T) {
	if testing.Short() {
		t.Skip("live network test")
	}
	for round := 0; round < 3; round++ {
		sch := liveScheme(t, 1, 3, 2)
		srv := startServer(t, sch, 20*time.Millisecond)

		// Keep several control sessions busy with round trips so the
		// shutdown hits handlers at every phase: reading, serving,
		// writing.
		var cwg sync.WaitGroup
		for i := 0; i < 4; i++ {
			conn, err := net.Dial("tcp", srv.Addr())
			if err != nil {
				t.Fatal(err)
			}
			cwg.Add(1)
			go func() {
				defer cwg.Done()
				defer conn.Close()
				r := bufio.NewReader(conn)
				for {
					_ = conn.SetDeadline(time.Now().Add(2 * time.Second))
					if err := wire.WriteControl(conn, &wire.Control{Kind: wire.KindStats}); err != nil {
						return
					}
					if _, err := wire.ReadControl(r); err != nil {
						return
					}
				}
			}()
		}
		time.Sleep(30 * time.Millisecond) // let traffic and pacing start

		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		var swg sync.WaitGroup
		swg.Add(3)
		go func() { defer swg.Done(); _ = srv.Drain(ctx) }()
		go func() { defer swg.Done(); srv.Close() }()
		go func() { defer swg.Done(); srv.Close() }()

		shutdownDone := make(chan struct{})
		go func() { swg.Wait(); cwg.Wait(); close(shutdownDone) }()
		select {
		case <-shutdownDone:
		case <-time.After(10 * time.Second):
			t.Fatalf("round %d: shutdown deadlocked", round)
		}
		cancel()
	}
}
