package server

import (
	"sync/atomic"

	"skyscraper/internal/content"
	"skyscraper/internal/core"
	"skyscraper/internal/metrics"
	"skyscraper/internal/wire"
)

// frameCache exploits the paper's central observation — channel i
// rebroadcasts the same fragment forever — to make the per-chunk broadcast
// cost approach a single patched header word. Everything in a chunk's wire
// frame depends only on (video, channel, offset); the sole per-repetition
// field is Seq, which the payload CRC deliberately excludes. So the cache
// keeps, per (video, channel, chunk):
//
//   - the payload CRC, always (4 bytes per chunk), so a non-resident chunk
//     re-encodes without rehashing its payload;
//   - the fully encoded frame, while the configured byte budget lasts, so
//     a resident chunk re-broadcasts with a 4-byte wire.PatchSeq and zero
//     allocation.
//
// Residency is first-come: frames are built lazily on first broadcast (or
// first repair) and stay forever — the working set is the whole catalog
// and every chunk repeats every period, so there is nothing to evict to.
// The unicast REPAIR path reads payload bytes straight out of resident
// frames; a pacer only ever writes the 4 Seq bytes of its own channel's
// frames, so the two never touch the same memory.
type frameCache struct {
	chunkBytes int
	// budget caps the total bytes of resident encoded frames; <= 0 means
	// no frames are cached (CRCs still are).
	budget int64
	used   atomic.Int64

	hits   metrics.AtomicCounter
	misses metrics.AtomicCounter

	// chans is indexed [video*K + (channel-1)]; built once, read-only.
	chans []*channelCache
	k     int

	// fecGroup is the parity stripe width G (0 = no stripe); nparity how
	// many parity frames each group carries (1 = XOR, 2 = RS P+Q). A
	// parity frame is as repetition-invariant as the chunks it covers —
	// a pure function of (video, channel, group) — so it gets the same
	// treatment: CRC always cached, encoded frame resident while the
	// budget lasts, Seq patched per send.
	fecGroup int
	nparity  int
}

// channelCache is one channel's slice of the cache.
type channelCache struct {
	video   uint16
	channel uint16
	// base is the absolute byte offset of the channel's fragment within
	// the video; total is the fragment size in bytes.
	base  int64
	total uint32
	// crcs[c] holds crcSet|crc once chunk c's payload CRC is known; zero
	// means not yet computed. Writes of the same value may race benignly.
	crcs []atomic.Uint64
	// frames[c] holds chunk c's encoded frame once resident.
	frames []atomic.Pointer[[]byte]
	// Parity slots, indexed [group*nparity + parityIndex]; empty when the
	// stripe is off.
	pcrcs   []atomic.Uint64
	pframes []atomic.Pointer[[]byte]
}

// crcSet marks a crcs slot as populated (a CRC of zero is legitimate).
const crcSet = 1 << 32

// newFrameCache lays out the cache for a scheme: one channelCache per
// (video, channel), chunk slots sized from the fragment geometry, plus
// nparity parity slots per stripe group when fecGroup > 0.
func newFrameCache(sch *core.Scheme, bytesPerUnit, chunkBytes int, budget int64, fecGroup, nparity int) *frameCache {
	k := sch.K()
	videos := sch.Config().Videos
	if fecGroup <= 0 {
		fecGroup, nparity = 0, 0
	}
	fc := &frameCache{chunkBytes: chunkBytes, budget: budget, k: k,
		chans: make([]*channelCache, videos*k), fecGroup: fecGroup, nparity: nparity}
	sizes := sch.Sizes()
	for v := 0; v < videos; v++ {
		var base int64
		for i := 1; i <= k; i++ {
			total := int(sizes[i-1]) * bytesPerUnit
			chunks := total / chunkBytes
			cc := &channelCache{
				video:   uint16(v),
				channel: uint16(i),
				base:    base,
				total:   uint32(total),
				crcs:    make([]atomic.Uint64, chunks),
				frames:  make([]atomic.Pointer[[]byte], chunks),
			}
			if fecGroup > 0 {
				groups := (chunks + fecGroup - 1) / fecGroup
				cc.pcrcs = make([]atomic.Uint64, groups*nparity)
				cc.pframes = make([]atomic.Pointer[[]byte], groups*nparity)
			}
			fc.chans[v*k+i-1] = cc
			base += int64(total)
		}
	}
	return fc
}

// channel returns the cache slice for (video v, channel i).
func (fc *frameCache) channel(v, i int) *channelCache { return fc.chans[v*fc.k+i-1] }

// CacheStats reports the frame cache's activity and occupancy.
type CacheStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Bytes is the resident encoded-frame footprint; Budget its cap.
	Bytes  int64 `json:"bytes"`
	Budget int64 `json:"budget"`
}

func (fc *frameCache) stats() CacheStats {
	return CacheStats{
		Hits:   fc.hits.Value(),
		Misses: fc.misses.Value(),
		Bytes:  fc.used.Load(),
		Budget: fc.budget,
	}
}

// crc returns chunk c's cached payload CRC.
func (cc *channelCache) crc(c int) (uint32, bool) {
	v := cc.crcs[c].Load()
	return uint32(v), v&crcSet != 0
}

// encode regenerates chunk c's frame into dst (reusing its capacity):
// payload from the content function, CRC from the cache when present —
// computed and cached when not. Seq is left zero; callers patch it.
func (cc *channelCache) encode(fc *frameCache, c int, dst, payload []byte) []byte {
	off := c * fc.chunkBytes
	content.Fill(payload, int(cc.video), cc.base+int64(off))
	crc, ok := cc.crc(c)
	if !ok {
		crc = wire.PayloadCRC(payload)
		cc.crcs[c].Store(crcSet | uint64(crc))
	}
	ch := wire.Chunk{
		Video:   cc.video,
		Channel: cc.channel,
		Offset:  uint32(off),
		Total:   cc.total,
		Payload: payload,
	}
	// chunkBytes <= wire.MaxPayload is validated at server construction,
	// so EncodeWithCRC cannot fail.
	frame, _ := ch.EncodeWithCRC(dst[:0], crc)
	return frame
}

// acquire returns chunk c's encoded frame: the resident one on a hit, or
// a fresh encode on a miss — installed into the cache while the budget
// lasts, otherwise built in the caller's scratch buffer. The returned
// frame's Seq field is unspecified; broadcast callers must wire.PatchSeq
// it, repair callers read only the payload. Only the owning pacer may
// patch a resident frame.
func (fc *frameCache) acquire(cc *channelCache, c int, scratch *frameScratch) []byte {
	slot := &cc.frames[c]
	if p := slot.Load(); p != nil {
		fc.hits.Inc()
		return *p
	}
	fc.misses.Inc()
	if fc.budget > 0 {
		// Reserve first, encode after: concurrent misses may each reserve,
		// but whoever loses backs its reservation out, so occupancy never
		// overshoots the budget by more than the in-flight encodes.
		size := int64(wire.EncodedSize(fc.chunkBytes))
		if fc.used.Add(size) <= fc.budget {
			frame := cc.encode(fc, c, make([]byte, 0, size), scratch.payload)
			if slot.CompareAndSwap(nil, &frame) {
				return frame
			}
			// Another goroutine (a concurrent repair) installed first;
			// theirs is canonical and ours returns its reservation.
			fc.used.Add(-size)
			return *slot.Load()
		}
		fc.used.Add(-size)
	}
	scratch.frame = cc.encode(fc, c, scratch.frame, scratch.payload)
	return scratch.frame
}

// groupCount is how many data chunks stripe group g of this channel
// covers (the tail group may be short).
func (cc *channelCache) groupCount(fc *frameCache, g int) int {
	count := len(cc.frames) - g*fc.fecGroup
	if count > fc.fecGroup {
		count = fc.fecGroup
	}
	return count
}

// encodeParity regenerates the parity frame (group g, index pi) into
// dst, folding the group's chunk payloads — read straight out of
// resident data frames where the cache holds them, regenerated into
// scratch.tmp where it does not — so the common steady-state encode is
// cache-resident and allocation-free. Seq is left zero; callers patch
// it, exactly as for data frames.
func (cc *channelCache) encodeParity(fc *frameCache, g, pi int, dst []byte, scratch *parityScratch) []byte {
	count := cc.groupCount(fc, g)
	payload := wire.AppendParityPayload(scratch.payload[:0], count, nil)
	payload = payload[:len(payload)+fc.chunkBytes]
	block := payload[len(payload)-fc.chunkBytes:]
	clear(block)
	first := g * fc.fecGroup
	off := first * fc.chunkBytes
	for j := 0; j < count; j++ {
		src := scratch.tmp
		if p := cc.frames[first+j].Load(); p != nil {
			src = (*p)[wire.HeaderSize:]
		} else {
			content.Fill(scratch.tmp, int(cc.video), cc.base+int64((first+j)*fc.chunkBytes))
		}
		if pi == 0 {
			wire.XorAccum(block, src)
		} else {
			wire.GfMulAccum(block, src, wire.GfExpPow(j))
		}
	}
	slot := g*fc.nparity + pi
	crc64 := cc.pcrcs[slot].Load()
	crc := uint32(crc64)
	if crc64&crcSet == 0 {
		crc = wire.PayloadCRC(payload)
		cc.pcrcs[slot].Store(crcSet | uint64(crc))
	}
	// The payload is bounded by ParityOverhead(MaxFecGroup, chunkBytes)
	// and chunkBytes <= wire.MaxPayload is validated at construction, so
	// the encoder cannot fail.
	frame, _ := wire.EncodeParityFrame(dst[:0], cc.video, cc.channel, 0, uint32(off), cc.total, uint8(pi), payload, crc)
	return frame
}

// acquireParity returns the encoded parity frame for (group g, index
// pi), mirroring acquire: resident hit, budget-bounded install on miss,
// caller scratch when the budget is spent. The returned frame's Seq is
// unspecified; broadcast callers wire.PatchSeq it.
func (fc *frameCache) acquireParity(cc *channelCache, g, pi int, scratch *parityScratch) []byte {
	slot := &cc.pframes[g*fc.nparity+pi]
	if p := slot.Load(); p != nil {
		fc.hits.Inc()
		return *p
	}
	fc.misses.Inc()
	if fc.budget > 0 {
		size := int64(wire.EncodedSize(wire.ParityOverhead(cc.groupCount(fc, g), fc.chunkBytes)))
		if fc.used.Add(size) <= fc.budget {
			frame := cc.encodeParity(fc, g, pi, make([]byte, 0, size), scratch)
			if slot.CompareAndSwap(nil, &frame) {
				return frame
			}
			fc.used.Add(-size)
			return *slot.Load()
		}
		fc.used.Add(-size)
	}
	scratch.frame = cc.encodeParity(fc, g, pi, scratch.frame, scratch)
	return scratch.frame
}

// frameScratch is a caller's reusable build space for non-resident
// chunks: a payload buffer for the content function and a frame buffer
// for the encoder. Each pacer and each control connection owns one, so
// cache misses cost no steady-state allocation either.
type frameScratch struct {
	payload []byte
	frame   []byte
}

func newFrameScratch(chunkBytes int) *frameScratch {
	return &frameScratch{
		payload: make([]byte, chunkBytes),
		frame:   make([]byte, 0, wire.EncodedSize(chunkBytes)),
	}
}

// parityScratch is the parity encoder's reusable build space: the
// assembled stripe payload, a regeneration buffer for non-resident
// chunk payloads, and a frame buffer for budget-spent encodes.
type parityScratch struct {
	payload []byte
	tmp     []byte
	frame   []byte
}

func newParityScratch(chunkBytes int) *parityScratch {
	size := wire.ParityOverhead(wire.MaxFecGroup, chunkBytes)
	return &parityScratch{
		payload: make([]byte, 0, size),
		tmp:     make([]byte, chunkBytes),
		frame:   make([]byte, 0, wire.EncodedSize(size)),
	}
}
