// Pacer supervision and the graceful-shutdown path.
//
// A channel pacer is the one goroutine a video cannot survive losing: if it
// dies, every client of that channel starves on a rigid schedule nobody
// else keeps. The supervisor converts a pacer panic into a logged restart
// with exponential backoff; because pacers derive their position from the
// absolute broadcast grid (epoch + n*period), a restarted pacer rejoins the
// schedule mid-stream instead of replaying from the epoch in a burst.
package server

import (
	"context"
	"fmt"
	"net"
	"runtime/debug"
	"time"

	"skyscraper/internal/wire"
)

const (
	// pacerRestartBase and pacerRestartMax bound the supervisor's
	// exponential restart backoff. A pacer that stays up longer than
	// pacerStableAfter earns its backoff reset.
	pacerRestartBase = 5 * time.Millisecond
	pacerRestartMax  = 500 * time.Millisecond
	pacerStableAfter = time.Second
)

// runPacer supervises one channel pacer: it runs pace under panic
// recovery, restarting it with backoff until the server stops.
func (s *Server) runPacer(v, i int) {
	defer s.wg.Done()
	backoff := pacerRestartBase
	for {
		started := time.Now()
		if s.paceRecovering(v, i) {
			return // orderly exit: server stopping
		}
		d := s.pacerRestarts.Add(1)
		if time.Since(started) > pacerStableAfter {
			backoff = pacerRestartBase
		}
		s.cfg.Logf("server: restarting pacer video%d/ch%d in %v (restart #%d)",
			v, i, backoff, d)
		select {
		case <-s.stop:
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > pacerRestartMax {
			backoff = pacerRestartMax
		}
	}
}

// paceRecovering runs one pace attempt, converting a panic into a false
// return so the supervisor restarts it. An orderly return reports true.
func (s *Server) paceRecovering(v, i int) (done bool) {
	defer func() {
		if r := recover(); r != nil {
			s.cfg.Logf("server: pacer video%d/ch%d panicked: %v\n%s", v, i, r, debug.Stack())
		}
	}()
	s.pace(v, i)
	return true
}

// Drain shuts the server down gracefully: it stops accepting connections,
// notifies every control client with a server-initiated bye (so clients
// switch to degraded playback instead of retrying repairs against a dying
// server), lets in-flight control handlers finish, then closes. If ctx
// expires first, remaining handlers are cut off by Close and the context
// error is returned. Drain is idempotent and safe to race with Close.
func (s *Server) Drain(ctx context.Context) error {
	first := !s.draining.Swap(true)
	s.ln.Close() // stop accepting; acceptLoop exits

	s.mu.Lock()
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if first {
		s.cfg.Logf("server: draining: closed listener, notifying %d control clients", len(conns))
	}
	for _, c := range conns {
		// The bye is one write syscall, serialized with any in-flight
		// handler reply by the socket's write lock, so lines never
		// interleave. The immediate read deadline then wakes a handler
		// blocked in ReadControl; one mid-request keeps running and
		// finishes its reply under its own write deadline.
		_ = c.SetWriteDeadline(time.Now().Add(s.cfg.ControlWriteTimeout))
		_ = wire.WriteControl(c, &wire.Control{Kind: wire.KindBye})
		_ = c.SetReadDeadline(time.Now())
	}

	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = fmt.Errorf("server: drain: %w", ctx.Err())
	}
	s.Close()
	return err
}
