//go:build !race

package server

// raceEnabled reports whether the race detector instruments this build;
// real-time throughput assertions skip under it (see race_on_test.go).
const raceEnabled = false
