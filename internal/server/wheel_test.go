package server

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"skyscraper/internal/core"
	"skyscraper/internal/mcast"
	"skyscraper/internal/vod"
)

// wheelScheme builds an M-video, K-channel broadcast (W = 2), the same
// construction the live tests use.
func wheelScheme(t testing.TB, m, k int) *core.Scheme {
	t.Helper()
	cfg := vod.Config{ServerMbps: 1.5 * float64(m*k), Videos: m, LengthMin: 120, RateMbps: 1.5}
	sch, err := core.New(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sch.K() != k {
		t.Fatalf("K = %d, want %d", sch.K(), k)
	}
	return sch
}

// chanKey identifies one channel in the recorded event logs.
type chanKey struct{ video, channel int }

// event is one hook observation: repetition n, chunk c.
type event struct {
	n uint32
	c int
}

// recordEngine runs one server on the given engine for d, recording every
// (video, channel, rep, chunk) the engine dispatched, in order, per
// channel.
func recordEngine(t *testing.T, engine string, sch *core.Scheme, unit, d time.Duration) map[chanKey][]event {
	t.Helper()
	var mu sync.Mutex
	events := make(map[chanKey][]event)
	srv, err := New(Config{
		Scheme:       sch,
		Unit:         unit,
		BytesPerUnit: 4096,
		ChunkBytes:   1024,
		EgressEngine: engine,
		PacerHook: func(v, i int, n uint32, c int) {
			mu.Lock()
			k := chanKey{v, i}
			events[k] = append(events[k], event{n, c})
			mu.Unlock()
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	if engine == EnginePacer && srv.EgressShards() != 0 {
		t.Errorf("pacer engine reports %d shards, want 0", srv.EgressShards())
	}
	if engine == EngineWheel && srv.EgressShards() == 0 {
		t.Error("wheel engine reports 0 shards")
	}
	time.Sleep(d)
	srv.Close()
	return events
}

// checkContiguous asserts a channel's event sequence walks the broadcast
// grid one chunk at a time: after (n, c) comes (n, c+1), or (n+1, 0) at
// the repetition boundary.
func checkContiguous(t *testing.T, k chanKey, evs []event, chunks int) {
	t.Helper()
	for j := 1; j < len(evs); j++ {
		prev, cur := evs[j-1], evs[j]
		want := event{prev.n, prev.c + 1}
		if want.c >= chunks {
			want = event{prev.n + 1, 0}
		}
		if cur != want {
			t.Fatalf("video%d/ch%d event %d: got (rep %d, chunk %d), want (rep %d, chunk %d) after (rep %d, chunk %d)",
				k.video, k.channel, j, cur.n, cur.c, want.n, want.c, prev.n, prev.c)
		}
	}
}

// TestWheelGoldenEquivalence is the schedule half of the golden
// equivalence gate: for every channel, the wheel engine must emit exactly
// the (rep, chunk) sequence the per-pacer engine emits — the same
// absolute grid, walked contiguously, from the epoch. Start jitter can
// shift where a sequence begins by a chunk or two on a loaded machine, so
// the sequences are aligned on the later start before the element-wise
// comparison; contiguity pins everything after it.
func TestWheelGoldenEquivalence(t *testing.T) {
	sch := wheelScheme(t, 2, 3)
	const unit = 25 * time.Millisecond
	wheel := recordEngine(t, EngineWheel, sch, unit, time.Second)
	pacer := recordEngine(t, EnginePacer, sch, unit, time.Second)

	for v := 0; v < 2; v++ {
		for i := 1; i <= 3; i++ {
			k := chanKey{v, i}
			chunks := int(sch.Sizes()[i-1]) * 4096 / 1024
			we, pe := wheel[k], pacer[k]
			if len(we) < 8 || len(pe) < 8 {
				t.Fatalf("video%d/ch%d: too few events (wheel %d, pacer %d)", v, i, len(we), len(pe))
			}
			checkContiguous(t, k, we, chunks)
			checkContiguous(t, k, pe, chunks)
			// Both engines resume from the wall clock, so each sequence
			// must start within a couple of chunks of the epoch.
			for name, first := range map[string]event{"wheel": we[0], "pacer": pe[0]} {
				if first.n != 0 || first.c > 2 {
					t.Fatalf("video%d/ch%d: %s starts at (rep %d, chunk %d), want near (0, 0)",
						v, i, name, first.n, first.c)
				}
			}
			// Align on the later start; contiguity makes slot arithmetic
			// exact from there.
			for len(we) > 0 && len(pe) > 0 && we[0] != pe[0] {
				if a, b := we[0], pe[0]; a.n < b.n || (a.n == b.n && a.c < b.c) {
					we = we[1:]
				} else {
					pe = pe[1:]
				}
			}
			n := len(we)
			if len(pe) < n {
				n = len(pe)
			}
			if n < 8 {
				t.Fatalf("video%d/ch%d: only %d aligned events", v, i, n)
			}
			for j := 0; j < n; j++ {
				if we[j] != pe[j] {
					t.Fatalf("video%d/ch%d aligned event %d: wheel (rep %d, chunk %d), pacer (rep %d, chunk %d)",
						v, i, j, we[j].n, we[j].c, pe[j].n, pe[j].c)
				}
			}
		}
	}
}

// TestWheelSustainsManyChannels is the scale gate: 100 videos × 21
// channels driven from at most GOMAXPROCS shard goroutines, with the
// drift watchdog silent and wakeups far below the chunk count.
func TestWheelSustainsManyChannels(t *testing.T) {
	if testing.Short() {
		t.Skip("2,100-channel sustain test in -short mode")
	}
	if raceEnabled {
		// This test asserts a real-time property — 2,100 channels kept
		// on schedule with a silent drift watchdog — and the race
		// detector's 5-20x dispatch slowdown makes that workload
		// infeasible on small hosts: the wheel falls permanently behind
		// and every tick counts as drift. Wheel correctness under -race
		// is covered by the golden-equivalence, panic-recovery, and
		// mechanics tests.
		t.Skip("real-time sustain assertion is meaningless under the race detector")
	}
	sch := wheelScheme(t, 100, 21)
	srv, err := New(Config{
		Scheme:       sch,
		Unit:         100 * time.Millisecond,
		BytesPerUnit: 4096,
		ChunkBytes:   1024,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Second)
	shards, wakeups, drift := srv.EgressShards(), srv.EgressWakeups(), srv.PacerDriftEvents()
	srv.Close()

	if max := runtime.GOMAXPROCS(0); shards < 1 || shards > max {
		t.Errorf("EgressShards = %d, want in [1, %d]", shards, max)
	}
	if wakeups == 0 {
		t.Error("EgressWakeups = 0, want > 0")
	}
	if drift != 0 {
		t.Errorf("PacerDriftEvents = %d, want 0 (watchdog must stay silent at 2,100 channels)", drift)
	}
	// 2,100 channels each due every unit/4 for 2s is ~168,000 chunk
	// dispatches; per-channel timers would take one wakeup each. The
	// wheel must do it in roughly ticks×shards wakeups.
	if limit := int64(400 * shards); wakeups > limit {
		t.Errorf("EgressWakeups = %d for ~80 ticks on %d shards, want <= %d", wakeups, shards, limit)
	}
	t.Logf("sustain: %d shards, %d wakeups, %d drift events", shards, wakeups, drift)
}

// TestWheelShardPanicRecovered mirrors the pacer supervisor test at the
// shard level: a hook panic kills a whole shard (many channels), the
// supervisor restarts it, and every channel on it rejoins the absolute
// grid — verified by per-channel contiguity holding no worse than one
// gap across the restart.
func TestWheelShardPanicRecovered(t *testing.T) {
	sch := wheelScheme(t, 2, 3)
	var mu sync.Mutex
	events := make(map[chanKey][]event)
	panicked := false
	srv, err := New(Config{
		Scheme:       sch,
		Unit:         25 * time.Millisecond,
		BytesPerUnit: 4096,
		ChunkBytes:   1024,
		PacerHook: func(v, i int, n uint32, c int) {
			mu.Lock()
			events[chanKey{v, i}] = append(events[chanKey{v, i}], event{n, c})
			doPanic := v == 0 && i == 2 && n >= 1 && !panicked
			if doPanic {
				panicked = true
			}
			mu.Unlock()
			if doPanic {
				panic("wheel_test: injected shard panic")
			}
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(1200 * time.Millisecond)
	restarts := srv.PacerRestarts()
	srv.Close()

	if restarts < 1 {
		t.Fatalf("PacerRestarts = %d, want >= 1 after injected panic", restarts)
	}
	mu.Lock()
	defer mu.Unlock()
	for k, evs := range events {
		if len(evs) < 2 {
			t.Errorf("video%d/ch%d: only %d events", k.video, k.channel, len(evs))
			continue
		}
		// Across the restart the grid may skip chunks that fell into the
		// backoff window, and may re-send the slot that was current when
		// the panic hit (resync floors to the current slot, exactly as
		// pace's resume does — duplicates are idempotent to clients). It
		// must never go backwards.
		for j := 1; j < len(evs); j++ {
			prev, cur := evs[j-1], evs[j]
			if cur.n < prev.n || (cur.n == prev.n && cur.c < prev.c) {
				t.Fatalf("video%d/ch%d event %d: (rep %d, chunk %d) after (rep %d, chunk %d) — schedule went backwards",
					k.video, k.channel, j, cur.n, cur.c, prev.n, prev.c)
			}
		}
		// The panicked channel must have resumed after its restart.
		if k == (chanKey{0, 2}) {
			last := evs[len(evs)-1]
			if last.n < 1 || len(evs) < 3 {
				t.Errorf("video0/ch2 did not resume after panic: %d events, last (rep %d, chunk %d)",
					len(evs), last.n, last.c)
			}
		}
	}
}

// TestTimerWheelMechanics pins the wheel data structure itself: entries
// surface exactly at their due ticks, level-1 windows cascade into level
// 0, and the overflow list re-files once per lap.
func TestTimerWheelMechanics(t *testing.T) {
	q := time.Millisecond
	var w timerWheel
	w.reset(q, 0)
	mk := func(due time.Duration) *wheelEntry {
		return &wheelEntry{due: due, period: time.Hour, spacing: time.Hour, chunks: 1}
	}
	near := mk(3 * q)                   // level 0
	mid := mk(300 * q)                  // level 1
	far := mk(time.Duration(70000) * q) // overflow (beyond 65,536 ticks)
	past := mk(-5 * q)                  // clamped to the current tick
	for _, e := range []*wheelEntry{near, mid, far, past} {
		w.insert(e)
	}

	got := w.collect(0, nil)
	if len(got) != 1 || got[0] != past {
		t.Fatalf("collect(0) = %v entries, want just the past-due entry", len(got))
	}
	if next, ok := w.nextDue(); !ok || next != 3*q {
		t.Fatalf("nextDue = %v, %v; want %v, true", next, ok, 3*q)
	}
	got = w.collect(3*q, nil)
	if len(got) != 1 || got[0] != near {
		t.Fatalf("collect(3q) = %v entries, want the near entry", len(got))
	}
	if got = w.collect(299*q, nil); len(got) != 0 {
		t.Fatalf("collect(299q) returned %d entries early", len(got))
	}
	got = w.collect(300*q, nil)
	if len(got) != 1 || got[0] != mid {
		t.Fatalf("collect(300q) = %d entries, want the cascaded level-1 entry", len(got))
	}
	got = w.collect(70000*q, nil)
	if len(got) != 1 || got[0] != far {
		t.Fatalf("collect(70000q) = %d entries, want the overflow entry", len(got))
	}
	if _, ok := w.nextDue(); ok {
		t.Error("nextDue reports work on an empty wheel")
	}
}

// TestWheelEntryResyncMatchesPace pins resync to pace's resume
// arithmetic: next chunk at or after elapsed on the absolute grid.
func TestWheelEntryResyncMatchesPace(t *testing.T) {
	e := &wheelEntry{period: 80 * time.Millisecond, spacing: 10 * time.Millisecond, chunks: 8}
	for _, tc := range []struct {
		elapsed time.Duration
		n       uint32
		c       int
	}{
		{0, 0, 0},
		{9 * time.Millisecond, 0, 0}, // mid-slot floors to the slot
		{10 * time.Millisecond, 0, 1},
		{79 * time.Millisecond, 0, 7},
		{80 * time.Millisecond, 1, 0},
		{845 * time.Millisecond, 10, 4},
	} {
		e.resync(tc.elapsed)
		if e.n != tc.n || e.c != tc.c {
			t.Errorf("resync(%v) = (rep %d, chunk %d), want (rep %d, chunk %d)",
				tc.elapsed, e.n, e.c, tc.n, tc.c)
		}
		want := time.Duration(tc.n)*e.period + time.Duration(tc.c)*e.spacing
		if e.due != want {
			t.Errorf("resync(%v) due = %v, want %v", tc.elapsed, e.due, want)
		}
	}
}

// recordingBatchSender captures every batch a shard dispatches, for
// direct dispatch() tests that bypass the hub.
type recordingBatchSender struct {
	batches [][]mcast.BatchEntry
}

func (r *recordingBatchSender) Send(g mcast.Group, frame []byte) (int, error) { return 1, nil }

func (r *recordingBatchSender) SendBatch(entries []mcast.BatchEntry) (int, error) {
	r.batches = append(r.batches, append([]mcast.BatchEntry(nil), entries...))
	return len(entries), nil
}

// catchupDispatch builds a two-channel shard whose epoch sits behind the
// wall clock by the given offset, runs one dispatch, and returns what it
// staged: the recorded batches, the hook's per-channel (rep, chunk)
// events, the shard's entries, and the drift-event count.
func catchupDispatch(t *testing.T, chunkBytes int, behind time.Duration) (*recordingBatchSender, map[chanKey][]event, []*wheelEntry, int64) {
	t.Helper()
	sch := wheelScheme(t, 1, 3)
	events := make(map[chanKey][]event)
	srv, err := New(Config{
		Scheme:       sch,
		Unit:         250 * time.Millisecond,
		BytesPerUnit: 4096,
		ChunkBytes:   chunkBytes,
		PacerHook: func(v, i int, n uint32, c int) {
			events[chanKey{v, i}] = append(events[chanKey{v, i}], event{n, c})
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := &recordingBatchSender{}
	srv.send = rec
	srv.epoch = time.Now().Add(-behind)
	sh := &wheelShard{s: srv, id: 0}
	sh.wheel.reset(time.Millisecond, 0)
	for _, ch := range []int{1, 2} {
		e := srv.newWheelEntry(0, ch)
		e.resync(0)
		sh.entries = append(sh.entries, e)
		sh.due = append(sh.due, e)
	}
	sh.dispatch()
	return rec, events, sh.entries, srv.driftEvents.Value()
}

// TestWheelCatchupStagesRuns pins the catch-up shaping dispatch feeds
// the GSO path: a behind-schedule entry stages every due chunk as ONE
// contiguous same-group run in a single batch, in schedule order, with
// each staged frame backed by distinct memory; runs stop at the
// repetition boundary (the resident-frame aliasing guard) and at
// wheelMaxRun; a healthy entry stages exactly one chunk.
func TestWheelCatchupStagesRuns(t *testing.T) {
	k1, k2 := chanKey{0, 1}, chanKey{0, 2}

	t.Run("steady", func(t *testing.T) {
		rec, events, _, drift := catchupDispatch(t, 1024, 0)
		if len(rec.batches) != 1 || len(rec.batches[0]) != 2 {
			t.Fatalf("staged %d batches (first %d entries), want 1 batch of 2", len(rec.batches), len(rec.batches[0]))
		}
		for _, k := range []chanKey{k1, k2} {
			if evs := events[k]; len(evs) != 1 || evs[0] != (event{0, 0}) {
				t.Errorf("video%d/ch%d staged %v, want [(0, 0)]", k.video, k.channel, evs)
			}
		}
		if drift != 0 {
			t.Errorf("driftEvents = %d on a healthy dispatch, want 0", drift)
		}
	})

	t.Run("behind", func(t *testing.T) {
		// 375 ms behind at 62.5 ms spacing: channel 1 (4 chunks per
		// repetition) must stop its run at the repetition boundary with
		// chunks 0-3 of rep 0; channel 2 (8 chunks) stages all 7 due.
		rec, events, entries, drift := catchupDispatch(t, 1024, 375*time.Millisecond)
		if len(rec.batches) != 1 {
			t.Fatalf("staged %d batches, want 1", len(rec.batches))
		}
		batch := rec.batches[0]
		if len(batch) != 11 {
			t.Fatalf("staged %d entries, want 11 (4 + 7)", len(batch))
		}
		switches := 0
		for i := 1; i < len(batch); i++ {
			if batch[i].Group != batch[i-1].Group {
				switches++
			}
		}
		if switches != 1 {
			t.Errorf("batch switches groups %d times, want 1 (one contiguous run per channel)", switches)
		}
		if evs := events[k1]; len(evs) != 4 || evs[0] != (event{0, 0}) || evs[3] != (event{0, 3}) {
			t.Errorf("video0/ch1 staged %v, want rep 0 chunks 0-3", evs)
		}
		checkContiguous(t, k1, events[k1], 4)
		if evs := events[k2]; len(evs) != 7 || evs[0] != (event{0, 0}) {
			t.Errorf("video0/ch2 staged %v, want rep 0 chunks 0-6", evs)
		}
		checkContiguous(t, k2, events[k2], 8)
		// Distinct backing memory per staged frame: the boundary stop and
		// the spare-scratch pool together guarantee no two entries of one
		// batch share a buffer (a shared resident frame patched twice
		// would corrupt the earlier entry's Seq).
		seen := make(map[*byte]bool)
		for _, be := range batch {
			p := &be.Frame[0]
			if seen[p] {
				t.Fatal("two staged frames share one backing buffer")
			}
			seen[p] = true
		}
		// The boundary-stopped entry re-enters the rotation still behind,
		// poised at the next repetition's first chunk.
		if e1 := entries[0]; e1.n != 1 || e1.c != 0 {
			t.Errorf("channel 1 cursor at (rep %d, chunk %d) after boundary stop, want (1, 0)", e1.n, e1.c)
		}
		if drift != 2 {
			t.Errorf("driftEvents = %d, want 2 (one per late entry per dispatch)", drift)
		}
	})

	t.Run("capped", func(t *testing.T) {
		// 64-byte chunks give the channels 64 and 128 chunks per
		// repetition; 450 ms behind is over 64 spacings for both, so each
		// run stops at exactly wheelMaxRun — the GSO segment cap.
		rec, events, _, _ := catchupDispatch(t, 64, 450*time.Millisecond)
		if len(rec.batches) != 1 {
			t.Fatalf("staged %d batches, want 1", len(rec.batches))
		}
		if len(rec.batches[0]) != 2*wheelMaxRun {
			t.Fatalf("staged %d entries, want %d", len(rec.batches[0]), 2*wheelMaxRun)
		}
		for _, k := range []chanKey{k1, k2} {
			if got := len(events[k]); got != wheelMaxRun {
				t.Errorf("video%d/ch%d staged %d chunks, want the %d cap", k.video, k.channel, got, wheelMaxRun)
			}
			checkContiguous(t, k, events[k], 64*64) // chunks ≥ cap; contiguity is what matters
		}
	})
}

// BenchmarkWheelDispatch measures the scheduling machinery alone: one
// tick's collect → advance → re-insert cycle with every channel due, at
// the configured channel counts. This is the per-tick overhead the wheel
// engine adds on top of frame preparation and the send itself.
func BenchmarkWheelDispatch(b *testing.B) {
	for _, channels := range []int{2, 100, 2100} {
		b.Run(fmt.Sprintf("channels=%d", channels), func(b *testing.B) {
			const spacing = 25 * time.Millisecond
			entries := make([]*wheelEntry, channels)
			for i := range entries {
				entries[i] = &wheelEntry{
					period:  spacing * 8,
					spacing: spacing,
					chunks:  8,
				}
			}
			var w timerWheel
			w.reset(spacing, 0)
			for _, e := range entries {
				e.resync(0)
				w.insert(e)
			}
			var due []*wheelEntry
			now := time.Duration(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				now += spacing
				due = w.collect(now, due[:0])
				for _, e := range due {
					e.advance()
					w.insert(e)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(channels), "channels/tick")
		})
	}
}
