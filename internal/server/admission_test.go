package server

import (
	"testing"
	"time"
)

// TestStormTableSweepAtCap proves a long-running server's storm table
// cannot grow without bound: hitting stormTableCap sweeps expired windows
// on the next insert (for both the unicast note and the NACK path), live
// windows survive the sweep, and verdicts stay correct across it — a
// swept-and-reopened window starts counting distinct clients from zero.
func TestStormTableSweepAtCap(t *testing.T) {
	tbl := newStormTable(3, time.Second)
	base := time.Unix(1000, 0)

	// Fill to the cap with distinct chunks, one client each: all pass.
	for i := 0; i < stormTableCap; i++ {
		if v := tbl.note(stormKey{chunk: i}, 1, base); v != stormPass {
			t.Fatalf("fill %d: verdict %v, want stormPass", i, v)
		}
	}
	if len(tbl.states) != stormTableCap {
		t.Fatalf("after fill: %d states, want %d", len(tbl.states), stormTableCap)
	}

	// At the cap with every window still live, the sweep reclaims nothing
	// — the table grows past the cap transiently rather than dropping an
	// active window, and the new request still gets a correct verdict.
	if v := tbl.note(stormKey{chunk: stormTableCap}, 1, base.Add(500*time.Millisecond)); v != stormPass {
		t.Fatalf("insert at cap: verdict %v, want stormPass", v)
	}
	if len(tbl.states) != stormTableCap+1 {
		t.Fatalf("live windows swept: %d states, want %d", len(tbl.states), stormTableCap+1)
	}

	// Build a storm two-thirds of the way on chunk 0 before everything
	// expires; the sweep must not leak its distinct-client count into the
	// window that later replaces it.
	tbl.note(stormKey{chunk: 0}, 2, base.Add(500*time.Millisecond))

	// Past the window, the next insert sweeps every expired entry and
	// keeps only itself.
	later := base.Add(2 * time.Second)
	if v := tbl.note(stormKey{chunk: -1}, 1, later); v != stormPass {
		t.Fatalf("post-expiry insert: verdict %v, want stormPass", v)
	}
	if len(tbl.states) != 1 {
		t.Fatalf("after sweep: %d states, want 1", len(tbl.states))
	}

	// The swept chunk-0 storm restarts from zero: three distinct clients
	// again walk pass, pass, resend.
	k := stormKey{chunk: 0}
	if v := tbl.note(k, 10, later); v != stormPass {
		t.Fatalf("reopened window client 1: %v, want stormPass", v)
	}
	if v := tbl.note(k, 11, later); v != stormPass {
		t.Fatalf("reopened window client 2: %v, want stormPass", v)
	}
	if v := tbl.note(k, 12, later); v != stormResend {
		t.Fatalf("reopened window client 3: %v, want stormResend", v)
	}

	// The NACK path sweeps too: refill to the cap, expire it all, and the
	// next noteNack reclaims the table while answering correctly.
	for i := 0; i < stormTableCap; i++ {
		tbl.note(stormKey{video: 1, chunk: i}, 1, later)
	}
	if len(tbl.states) < stormTableCap {
		t.Fatalf("refill: %d states, want >= %d", len(tbl.states), stormTableCap)
	}
	final := later.Add(2 * time.Second)
	nk := stormKey{video: 2, chunk: 7}
	if !tbl.noteNack(nk, final) {
		t.Fatal("first NACK in a fresh window must trigger the re-send")
	}
	if len(tbl.states) != 1 {
		t.Fatalf("after noteNack sweep: %d states, want 1", len(tbl.states))
	}
	if tbl.noteNack(nk, final.Add(100*time.Millisecond)) {
		t.Fatal("second NACK in the window must be absorbed")
	}
	// A unicast storm on the same chunk rides the NACK's re-send: the
	// threshold-crossing client is suppressed, not answered with another
	// multicast.
	tbl.note(nk, 20, final.Add(200*time.Millisecond))
	tbl.note(nk, 21, final.Add(200*time.Millisecond))
	if v := tbl.note(nk, 22, final.Add(200*time.Millisecond)); v != stormSuppress {
		t.Fatalf("storm after NACK re-send: %v, want stormSuppress", v)
	}
}

// TestStormTableWindowExpiryResets: an expired window is replaced in
// place even far below the cap, so stale distinct-client counts never
// trigger a re-send across quiet gaps.
func TestStormTableWindowExpiryResets(t *testing.T) {
	tbl := newStormTable(2, time.Second)
	base := time.Unix(2000, 0)
	k := stormKey{video: 3, channel: 1, chunk: 4}
	if v := tbl.note(k, 1, base); v != stormPass {
		t.Fatalf("client 1: %v, want stormPass", v)
	}
	// 1.5s later the window is stale: a second distinct client opens a
	// fresh one instead of crossing the threshold.
	if v := tbl.note(k, 2, base.Add(1500*time.Millisecond)); v != stormPass {
		t.Fatalf("client 2 after expiry: %v, want stormPass (fresh window)", v)
	}
	if v := tbl.note(k, 3, base.Add(1600*time.Millisecond)); v != stormResend {
		t.Fatalf("client 3 in fresh window: %v, want stormResend", v)
	}
}
