// Package server implements the live Skyscraper Broadcasting server of the
// demo: for each of the M videos it runs K channel pacers, each repeatedly
// broadcasting its fragment — chunked, framed (internal/wire) and fanned
// out through the multicast hub (internal/mcast) — on a rigid absolute
// schedule: channel i's broadcasts start at epoch + n*size_i*unit for all
// n, which is the alignment property the client's two-loader reception
// plan depends on. A TCP control port handles the hello/join/leave
// signalling a real deployment would delegate to IGMP.
//
// Video minutes are compressed into short wall-clock units so examples and
// tests can play whole "two-hour" videos in seconds.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"skyscraper/internal/content"
	"skyscraper/internal/core"
	"skyscraper/internal/faults"
	"skyscraper/internal/mcast"
	"skyscraper/internal/wire"
)

// Config parameterizes a live broadcast server.
type Config struct {
	// Scheme is the SB configuration to broadcast (K channels per video,
	// fragment sizes, M videos).
	Scheme *core.Scheme
	// Unit is the wall-clock duration of one D1 unit.
	Unit time.Duration
	// BytesPerUnit is the payload density: a fragment of s units carries
	// s*BytesPerUnit bytes.
	BytesPerUnit int
	// ChunkBytes is the data-chunk payload size; it must divide
	// BytesPerUnit so chunk boundaries never straddle units.
	ChunkBytes int
	// Faults, when non-nil, interposes the deterministic fault injector
	// of internal/faults between the channel pacers and the multicast
	// hub: chunks are dropped, duplicated, reordered, or delayed per the
	// plan, so the client's loss-recovery path can be exercised.
	Faults *faults.Plan
	// ControlIdleTimeout bounds how long a control connection may sit
	// idle between requests before the server reaps it (and its group
	// memberships); a half-open client therefore cannot pin a handler
	// goroutine forever. Defaults to 2 minutes.
	ControlIdleTimeout time.Duration
	// ControlWriteTimeout bounds each control reply write. Defaults to
	// 10 seconds.
	ControlWriteTimeout time.Duration
	// FrameCacheBytes caps the resident bytes of the repetition-invariant
	// frame cache (see frameCache): fully encoded chunk frames are cached
	// until the budget is spent, after which chunks fall back to a
	// cached-CRC re-encode per send. 0 means DefaultFrameCacheBytes;
	// negative disables frame residency (per-chunk CRCs are still cached).
	FrameCacheBytes int64
	// EnablePprof registers net/http/pprof's profiling handlers on the
	// status endpoint's mux (ServeStatus) under /debug/pprof/.
	EnablePprof bool
	// Logf, when non-nil, receives diagnostic output.
	Logf func(format string, args ...any)
}

// DefaultFrameCacheBytes is the frame-cache budget when Config leaves
// FrameCacheBytes zero: enough for ~64K resident chunk frames at the
// default 1 KiB chunk size, far beyond what examples and tests broadcast.
const DefaultFrameCacheBytes = 64 << 20

func (c Config) validate() error {
	switch {
	case c.Scheme == nil:
		return errors.New("server: nil scheme")
	case c.Unit < time.Millisecond:
		return fmt.Errorf("server: unit %v too small to pace over UDP", c.Unit)
	case c.BytesPerUnit <= 0:
		return fmt.Errorf("server: BytesPerUnit = %d must be positive", c.BytesPerUnit)
	case c.ChunkBytes <= 0 || c.ChunkBytes > wire.MaxPayload:
		return fmt.Errorf("server: ChunkBytes = %d outside (0, %d]", c.ChunkBytes, wire.MaxPayload)
	case c.BytesPerUnit%c.ChunkBytes != 0:
		return fmt.Errorf("server: ChunkBytes %d must divide BytesPerUnit %d", c.ChunkBytes, c.BytesPerUnit)
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return fmt.Errorf("server: %w", err)
		}
	}
	return nil
}

// Server is a running broadcast server. Create with New, start with Start,
// stop with Close.
type Server struct {
	cfg   Config
	hub   *mcast.Hub
	send  mcast.Sender
	inj   *faults.Injector
	cache *frameCache
	ln    net.Listener
	epoch time.Time

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}

	// repairs counts unicast chunk repairs answered.
	repairs atomic.Int64

	stop chan struct{}
	wg   sync.WaitGroup
}

// New validates the configuration and prepares a server.
func New(cfg Config) (*Server, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.ControlIdleTimeout <= 0 {
		cfg.ControlIdleTimeout = 2 * time.Minute
	}
	if cfg.ControlWriteTimeout <= 0 {
		cfg.ControlWriteTimeout = 10 * time.Second
	}
	if cfg.FrameCacheBytes == 0 {
		cfg.FrameCacheBytes = DefaultFrameCacheBytes
	}
	s := &Server{cfg: cfg, stop: make(chan struct{}), conns: make(map[net.Conn]struct{})}
	s.cache = newFrameCache(cfg.Scheme, cfg.BytesPerUnit, cfg.ChunkBytes, cfg.FrameCacheBytes)
	return s, nil
}

// Start opens the control listener and launches every channel pacer. The
// broadcast epoch is the moment Start returns.
func (s *Server) Start() error {
	hub, err := mcast.NewHub()
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		hub.Close()
		return fmt.Errorf("server: control listener: %w", err)
	}
	s.hub = hub
	s.send = hub
	if s.cfg.Faults != nil {
		inj, err := faults.New(hub, *s.cfg.Faults)
		if err != nil {
			ln.Close()
			hub.Close()
			return err
		}
		s.inj = inj
		s.send = inj
		s.cfg.Logf("server: fault injection enabled: %+v", *s.cfg.Faults)
	}
	s.ln = ln
	s.epoch = time.Now()

	sch := s.cfg.Scheme
	for v := 0; v < sch.Config().Videos; v++ {
		for i := 1; i <= sch.K(); i++ {
			s.wg.Add(1)
			go s.pace(v, i)
		}
	}
	s.wg.Add(1)
	go s.acceptLoop()
	s.cfg.Logf("server: broadcasting %d videos x %d channels on %s (unit %v)",
		sch.Config().Videos, sch.K(), ln.Addr(), s.cfg.Unit)
	return nil
}

// Addr returns the control address to dial, e.g. "127.0.0.1:41234".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Epoch returns the broadcast time origin.
func (s *Server) Epoch() time.Time { return s.epoch }

// Hub exposes the multicast hub (for tests and stats).
func (s *Server) Hub() *mcast.Hub { return s.hub }

// Injector exposes the fault injector when a chaos plan is configured,
// nil otherwise (for tests and cmd/skychaos).
func (s *Server) Injector() *faults.Injector { return s.inj }

// RepairsServed returns how many unicast chunk repairs have been answered.
func (s *Server) RepairsServed() int64 { return s.repairs.Load() }

// FrameCacheStats reports the frame cache's hits, misses and occupancy
// (for tests, /status and cmd/skychaos).
func (s *Server) FrameCacheStats() CacheStats { return s.cache.stats() }

// Close stops all pacers, the listener, and open control connections.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	close(s.stop)
	s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	if s.inj != nil {
		s.inj.Flush()
	}
	s.hub.Close()
}

// fragmentBytes returns the byte size of channel i's fragment.
func (s *Server) fragmentBytes(i int) int {
	return int(s.cfg.Scheme.Sizes()[i-1]) * s.cfg.BytesPerUnit
}

// fragmentBase returns the absolute byte offset of channel i's fragment
// within the video.
func (s *Server) fragmentBase(i int) int64 {
	var units int64
	for _, sz := range s.cfg.Scheme.Sizes()[:i-1] {
		units += sz
	}
	return units * int64(s.cfg.BytesPerUnit)
}

// pace runs one channel: video v, channel i. Chunks of repetition n are
// sent evenly across [epoch + n*period, epoch + (n+1)*period).
//
// Per chunk the pacer acquires the repetition-invariant frame from the
// cache — a pointer load once resident — patches the 4-byte Seq field in
// place and hands it to the fan-out: the steady-state broadcast cost is a
// header patch plus the sends, with zero allocation and no payload or CRC
// recomputation. Non-resident chunks (budget exhausted or first touch)
// re-encode into pacer-owned scratch with their cached CRC.
func (s *Server) pace(v, i int) {
	defer s.wg.Done()
	var (
		size    = s.cfg.Scheme.Sizes()[i-1]
		period  = time.Duration(size) * s.cfg.Unit
		total   = s.fragmentBytes(i)
		chunks  = total / s.cfg.ChunkBytes
		spacing = period / time.Duration(chunks)
		group   = mcast.Group{Video: v, Channel: i}
		cc      = s.cache.channel(v, i)
		scratch = newFrameScratch(s.cfg.ChunkBytes)
		timer   = time.NewTimer(0)
	)
	defer timer.Stop()
	if !timer.Stop() {
		<-timer.C
	}
	for n := uint32(0); ; n++ {
		repStart := s.epoch.Add(time.Duration(n) * period)
		for c := 0; c < chunks; c++ {
			at := repStart.Add(time.Duration(c) * spacing)
			timer.Reset(time.Until(at))
			select {
			case <-s.stop:
				return
			case <-timer.C:
			}
			frame := s.cache.acquire(cc, c, scratch)
			if err := wire.PatchSeq(frame, n); err != nil {
				s.cfg.Logf("server: patching %v seq %d: %v", group, n, err)
				return
			}
			if _, err := s.send.Send(group, frame); err != nil {
				select {
				case <-s.stop:
					return
				default:
				}
				s.cfg.Logf("server: sending %v seq %d: %v", group, n, err)
			}
		}
	}
}

// fillRange copies the broadcast bytes of [off, off+len(dst)) of channel
// i's fragment into dst, serving from the frame cache when the range sits
// inside one chunk (the shape every client repair request has) and
// falling back to the content function for ranges that straddle chunks.
func (s *Server) fillRange(video, channel int, off int64, dst []byte, scratch *frameScratch) {
	cc := s.cache.channel(video, channel)
	cb := int64(s.cfg.ChunkBytes)
	if c := off / cb; off+int64(len(dst)) <= (c+1)*cb {
		frame := s.cache.acquire(cc, int(c), scratch)
		lo := wire.HeaderSize + int(off-c*cb)
		copy(dst, frame[lo:lo+len(dst)])
		return
	}
	content.Fill(dst, video, cc.base+off)
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveControl(conn)
	}
}

// serveControl handles one client's control session, tracking its group
// memberships so a dropped connection cleans up after itself.
func (s *Server) serveControl(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	joined := make(map[mcast.Group]*net.UDPAddr)
	defer func() {
		for g, a := range joined {
			s.hub.Leave(g, a)
		}
	}()
	// Build space for repairs of non-resident chunks; one per connection
	// so concurrent control sessions never contend.
	scratch := newFrameScratch(s.cfg.ChunkBytes)

	sch := s.cfg.Scheme
	r := bufio.NewReader(conn)
	// Every reply write is deadline-bounded so a client that stops
	// draining its socket cannot wedge the handler.
	write := func(m *wire.Control) error {
		_ = conn.SetWriteDeadline(time.Now().Add(s.cfg.ControlWriteTimeout))
		return wire.WriteControl(conn, m)
	}
	fail := func(format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		s.cfg.Logf("server: %v: %s", conn.RemoteAddr(), msg)
		_ = write(&wire.Control{Kind: wire.KindError, Error: msg})
	}
	for {
		// Idle reaping: a half-open or silent client times out here, the
		// handler returns, and the deferred cleanup drops its
		// memberships.
		_ = conn.SetReadDeadline(time.Now().Add(s.cfg.ControlIdleTimeout))
		m, err := wire.ReadControl(r)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				s.cfg.Logf("server: reaping idle control connection %v (%d memberships)",
					conn.RemoteAddr(), len(joined))
			}
			return // disconnect
		}
		switch m.Kind {
		case wire.KindHello:
			w := &wire.Welcome{
				Videos:           sch.Config().Videos,
				ChannelsPerVideo: sch.K(),
				Width:            sch.Width(),
				UnitNanos:        int64(s.cfg.Unit),
				EpochUnixNano:    s.epoch.UnixNano(),
				SizeUnits:        append([]int64(nil), sch.Sizes()...),
				BytesPerUnit:     s.cfg.BytesPerUnit,
				ChunkBytes:       s.cfg.ChunkBytes,
			}
			if err := write(&wire.Control{Kind: wire.KindWelcome, Welcome: w}); err != nil {
				return
			}
		case wire.KindJoin:
			if m.Video < 0 || m.Video >= sch.Config().Videos || m.Channel < 1 || m.Channel > sch.K() {
				fail("join: no channel %d/%d", m.Video, m.Channel)
				continue
			}
			if m.Port <= 0 || m.Port > 65535 {
				fail("join: bad port %d", m.Port)
				continue
			}
			g := mcast.Group{Video: m.Video, Channel: m.Channel}
			addr := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: m.Port}
			if err := s.hub.Join(g, addr); err != nil {
				fail("join: %v", err)
				continue
			}
			joined[g] = addr
			if err := write(&wire.Control{Kind: wire.KindJoined, Video: m.Video, Channel: m.Channel}); err != nil {
				return
			}
		case wire.KindRepair:
			rp := m.Repair
			if rp == nil {
				fail("repair: missing parameters")
				continue
			}
			if rp.Video < 0 || rp.Video >= sch.Config().Videos || rp.Channel < 1 || rp.Channel > sch.K() {
				fail("repair: no channel %d/%d", rp.Video, rp.Channel)
				continue
			}
			total := s.fragmentBytes(rp.Channel)
			if rp.Length <= 0 || rp.Length > wire.MaxPayload || rp.Offset < 0 || rp.Offset+int64(rp.Length) > int64(total) {
				fail("repair: bad range [%d, %d) of %d-byte fragment", rp.Offset, rp.Offset+int64(rp.Length), total)
				continue
			}
			// The frame cache (or, for ranges it cannot serve, the content
			// function) regenerates any chunk on demand, so repairs need
			// no retransmission buffer.
			reply := *rp
			reply.Data = make([]byte, rp.Length)
			s.fillRange(rp.Video, rp.Channel, rp.Offset, reply.Data, scratch)
			s.repairs.Add(1)
			if err := write(&wire.Control{Kind: wire.KindRepairOK, Repair: &reply}); err != nil {
				return
			}
		case wire.KindStats:
			st := &wire.Stats{
				UptimeNanos:   int64(time.Since(s.epoch)),
				DatagramsSent: s.hub.Sent(),
				Channels:      sch.Config().Videos * sch.K(),
				Members:       s.hub.TotalMembers(),
				RepairsServed: s.repairs.Load(),
			}
			if err := write(&wire.Control{Kind: wire.KindStatsOK, Stats: st}); err != nil {
				return
			}
		case wire.KindLeave:
			g := mcast.Group{Video: m.Video, Channel: m.Channel}
			if a, ok := joined[g]; ok {
				s.hub.Leave(g, a)
				delete(joined, g)
			}
		case wire.KindBye:
			return
		default:
			fail("unknown control kind %q", m.Kind)
		}
	}
}
