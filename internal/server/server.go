// Package server implements the live Skyscraper Broadcasting server of the
// demo: for each of the M videos it runs K channel pacers, each repeatedly
// broadcasting its fragment — chunked, framed (internal/wire) and fanned
// out through the multicast hub (internal/mcast) — on a rigid absolute
// schedule: channel i's broadcasts start at epoch + n*size_i*unit for all
// n, which is the alignment property the client's two-loader reception
// plan depends on. A TCP control port handles the hello/join/leave
// signalling a real deployment would delegate to IGMP.
//
// Video minutes are compressed into short wall-clock units so examples and
// tests can play whole "two-hour" videos in seconds.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"skyscraper/internal/content"
	"skyscraper/internal/core"
	"skyscraper/internal/faults"
	"skyscraper/internal/mcast"
	"skyscraper/internal/metrics"
	"skyscraper/internal/wire"
)

// Config parameterizes a live broadcast server.
type Config struct {
	// Scheme is the SB configuration to broadcast (K channels per video,
	// fragment sizes, M videos).
	Scheme *core.Scheme
	// Unit is the wall-clock duration of one D1 unit.
	Unit time.Duration
	// BytesPerUnit is the payload density: a fragment of s units carries
	// s*BytesPerUnit bytes.
	BytesPerUnit int
	// ChunkBytes is the data-chunk payload size; it must divide
	// BytesPerUnit so chunk boundaries never straddle units.
	ChunkBytes int
	// Faults, when non-nil, interposes the deterministic fault injector
	// of internal/faults between the channel pacers and the multicast
	// hub: chunks are dropped, duplicated, reordered, or delayed per the
	// plan, so the client's loss-recovery path can be exercised.
	Faults *faults.Plan
	// ControlIdleTimeout bounds how long a control connection may sit
	// idle between requests before the server reaps it (and its group
	// memberships); a half-open client therefore cannot pin a handler
	// goroutine forever. Defaults to 2 minutes.
	ControlIdleTimeout time.Duration
	// ControlWriteTimeout bounds each control reply write. Defaults to
	// 10 seconds.
	ControlWriteTimeout time.Duration
	// FrameCacheBytes caps the resident bytes of the repetition-invariant
	// frame cache (see frameCache): fully encoded chunk frames are cached
	// until the budget is spent, after which chunks fall back to a
	// cached-CRC re-encode per send. 0 means DefaultFrameCacheBytes;
	// negative disables frame residency (per-chunk CRCs are still cached).
	FrameCacheBytes int64
	// EnablePprof registers net/http/pprof's profiling handlers on the
	// status endpoint's mux (ServeStatus) under /debug/pprof/.
	EnablePprof bool

	// RepairBandwidth caps the unicast repair plane at this many repair
	// payload bytes per second, enforced by a token bucket; an over-budget
	// request is refused with a Busy reply carrying a retry-after hint
	// instead of being queued. 0 means unlimited. Size it with
	// unicast.RepairBandwidthBytes from the expected loss rate and session
	// count.
	RepairBandwidth int64
	// RepairBurstBytes is the repair token bucket's depth. Defaults to a
	// quarter second of RepairBandwidth, but at least one chunk.
	RepairBurstBytes int64
	// RepairPerConnPerSec caps repair requests per control connection per
	// second, so one broken client cannot consume the shared repair
	// budget. 0 means unlimited.
	RepairPerConnPerSec float64
	// StormThreshold coalesces repair storms: when this many distinct
	// clients request the same chunk within StormWindow, the server
	// answers once with a multicast re-send on the chunk's broadcast group
	// and replies Busy(0) to the unicasts so the clients re-listen.
	// 0 disables coalescing.
	StormThreshold int
	// StormWindow is the storm-coalescing window. Defaults to 2*Unit.
	StormWindow time.Duration

	// EgressEngine selects how channel schedules are driven: EngineWheel
	// (the default when empty) runs all M·K channels from a small pool of
	// sharded timer-wheel goroutines with batched fan-out; EngineUring is
	// the wheel plus the hub's shared io_uring submission ring, batching
	// egress across shards (opt-in; falls back to the wheel with one
	// logged notice where the kernel lacks io_uring); EnginePacer is
	// the legacy goroutine-per-channel engine, kept for A/B comparison
	// and the golden equivalence test. All emit the identical broadcast
	// sequence on the identical absolute grid.
	EgressEngine string
	// SendBufBytes sizes the multicast hub's kernel send buffer
	// (SetWriteBuffer); batched egress hands the kernel bursts of up to
	// 64 datagrams per syscall, and a default-sized buffer drops burst
	// tails under load. 0 leaves the OS default.
	SendBufBytes int
	// RecvBufBytes sizes the hub socket's kernel receive buffer
	// (SetReadBuffer); only error traffic lands there. 0 leaves the OS
	// default.
	RecvBufBytes int

	// FecGroup enables the proactive parity stripe: every transmission
	// group of FecGroup data chunks is followed by parity frames
	// (wire.KindParity) built from the same repetition-invariant cache the
	// chunks live in, so a receiver heals single-datagram loss locally
	// with zero control round trips. 0 (the default) disables the stripe;
	// otherwise it must lie in [2, wire.MaxFecGroup]. Receivers learn the
	// stripe geometry from the Welcome banner.
	FecGroup int
	// FecMode selects the stripe's code when FecGroup > 0:
	// wire.FecModeXOR (the default when empty) emits one XOR parity frame
	// per group and heals one erasure; wire.FecModeRS adds a second
	// GF(256) Reed-Solomon parity (RAID-6 P+Q) and heals two.
	FecMode string

	// PacerHook, when non-nil, is called for each chunk after the
	// engine's timer fires and before the chunk is sent — test
	// instrumentation; a hook that panics exercises the pacer/shard
	// supervisor.
	PacerHook func(video, channel int, rep uint32, chunk int)

	// Logf, when non-nil, receives diagnostic output.
	Logf func(format string, args ...any)
}

// DefaultFrameCacheBytes is the frame-cache budget when Config leaves
// FrameCacheBytes zero: enough for ~64K resident chunk frames at the
// default 1 KiB chunk size, far beyond what examples and tests broadcast.
const DefaultFrameCacheBytes = 64 << 20

func (c Config) validate() error {
	switch {
	case c.Scheme == nil:
		return errors.New("server: nil scheme")
	case c.Unit < time.Millisecond:
		return fmt.Errorf("server: unit %v too small to pace over UDP", c.Unit)
	case c.BytesPerUnit <= 0:
		return fmt.Errorf("server: BytesPerUnit = %d must be positive", c.BytesPerUnit)
	case c.ChunkBytes <= 0 || c.ChunkBytes > wire.MaxPayload:
		return fmt.Errorf("server: ChunkBytes = %d outside (0, %d]", c.ChunkBytes, wire.MaxPayload)
	case c.BytesPerUnit%c.ChunkBytes != 0:
		return fmt.Errorf("server: ChunkBytes %d must divide BytesPerUnit %d", c.ChunkBytes, c.BytesPerUnit)
	case c.RepairBandwidth < 0:
		return fmt.Errorf("server: RepairBandwidth = %d must be non-negative", c.RepairBandwidth)
	case c.RepairBurstBytes < 0:
		return fmt.Errorf("server: RepairBurstBytes = %d must be non-negative", c.RepairBurstBytes)
	case c.RepairPerConnPerSec < 0:
		return fmt.Errorf("server: RepairPerConnPerSec = %v must be non-negative", c.RepairPerConnPerSec)
	case c.StormThreshold < 0:
		return fmt.Errorf("server: StormThreshold = %d must be non-negative", c.StormThreshold)
	case c.StormWindow < 0:
		return fmt.Errorf("server: StormWindow = %v must be non-negative", c.StormWindow)
	case c.EgressEngine != "" && c.EgressEngine != EngineWheel && c.EgressEngine != EnginePacer && c.EgressEngine != EngineUring:
		return fmt.Errorf("server: EgressEngine = %q, want %q, %q or %q", c.EgressEngine, EngineWheel, EnginePacer, EngineUring)
	case c.SendBufBytes < 0:
		return fmt.Errorf("server: SendBufBytes = %d must be non-negative", c.SendBufBytes)
	case c.RecvBufBytes < 0:
		return fmt.Errorf("server: RecvBufBytes = %d must be non-negative", c.RecvBufBytes)
	case c.FecGroup != 0 && (c.FecGroup < 2 || c.FecGroup > wire.MaxFecGroup):
		return fmt.Errorf("server: FecGroup = %d outside {0} ∪ [2, %d]", c.FecGroup, wire.MaxFecGroup)
	case c.FecMode != "" && c.FecMode != wire.FecModeXOR && c.FecMode != wire.FecModeRS:
		return fmt.Errorf("server: FecMode = %q, want %q or %q", c.FecMode, wire.FecModeXOR, wire.FecModeRS)
	case c.FecMode != "" && c.FecGroup == 0:
		return fmt.Errorf("server: FecMode = %q requires FecGroup > 0", c.FecMode)
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return fmt.Errorf("server: %w", err)
		}
	}
	return nil
}

// nparity is how many parity frames each stripe group carries under the
// configured mode: 0 with the stripe off, 1 for XOR, 2 for RS P+Q.
func (c Config) nparity() int {
	switch {
	case c.FecGroup <= 0:
		return 0
	case c.FecMode == wire.FecModeRS:
		return 2
	default:
		return 1
	}
}

// Server is a running broadcast server. Create with New, start with Start,
// stop with Close.
type Server struct {
	cfg   Config
	hub   *mcast.Hub
	send  mcast.Sender
	inj   *faults.Injector
	cache *frameCache
	ln    net.Listener
	epoch time.Time

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}

	// repairBudget is the repair plane's shared token bucket (nil when
	// RepairBandwidth is 0); storms is the coalescing table — always
	// present, because NACK re-send dedup needs it even when the
	// unicast storm threshold (StormThreshold > 0) is off.
	repairBudget *metrics.TokenBucket
	storms       *stormTable

	// draining marks a server in graceful shutdown (Drain); connSeq hands
	// out control-connection IDs for the storm table's distinct-client
	// counting.
	draining atomic.Bool
	connSeq  atomic.Int64

	// repairs counts unicast chunk repairs answered; repairBytes their
	// payload bytes; busyReplies the requests pushed back with Busy;
	// suppressed the unicasts absorbed by storm re-sends (stormResends).
	// Padded: they sit next to each other and are bumped from concurrent
	// control handlers and egress shards.
	repairs      metrics.PaddedCounter
	repairBytes  metrics.PaddedCounter
	busyReplies  metrics.PaddedCounter
	stormResends metrics.PaddedCounter
	suppressed   metrics.PaddedCounter
	// nacksServed counts gap-bitmap NACK messages answered; nackResends
	// the multicast re-sends they triggered; nackSuppressed the NACKed
	// chunks absorbed because a re-send was already in flight.
	nacksServed    metrics.PaddedCounter
	nackResends    metrics.PaddedCounter
	nackSuppressed metrics.PaddedCounter

	// parityFrames counts stripe parity frames put on the wire;
	// parityBytes their encoded bytes — the stripe's bandwidth overhead,
	// bounded by nparity/FecGroup of the broadcast by construction.
	parityFrames metrics.PaddedCounter
	parityBytes  metrics.PaddedCounter

	// pacerRestarts counts supervisor restarts after pacer (or egress
	// shard) panics; driftEvents broadcasts that missed their schedule by
	// over one unit; wheelWakeups timer wakeups of the wheel engine's
	// shards — each one dispatches every chunk due in its tick.
	pacerRestarts metrics.PaddedCounter
	driftEvents   metrics.PaddedCounter
	wheelWakeups  metrics.PaddedCounter

	// controlSessions is the live control-connection level with its
	// high-water mark — the server-side audience size a scale run reads
	// off /status. Padded: it is bumped on every session open/close next
	// to the hot counters above.
	controlSessions metrics.PaddedGauge

	// shards is how many egress shard goroutines the wheel engine runs
	// (0 under EnginePacer); set once in Start.
	shards int

	stop chan struct{}
	// wg tracks the pacer supervisors and the accept loop; connWG the
	// per-connection control handlers. They are separate so Drain can wait
	// for in-flight handlers alone, and Close waits wg first — acceptLoop
	// is the only connWG.Add site, so once it exits connWG cannot grow.
	wg     sync.WaitGroup
	connWG sync.WaitGroup
}

// New validates the configuration and prepares a server.
func New(cfg Config) (*Server, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.ControlIdleTimeout <= 0 {
		cfg.ControlIdleTimeout = 2 * time.Minute
	}
	if cfg.ControlWriteTimeout <= 0 {
		cfg.ControlWriteTimeout = 10 * time.Second
	}
	if cfg.FrameCacheBytes == 0 {
		cfg.FrameCacheBytes = DefaultFrameCacheBytes
	}
	if cfg.StormWindow == 0 {
		cfg.StormWindow = 2 * cfg.Unit
	}
	if cfg.RepairBandwidth > 0 && cfg.RepairBurstBytes == 0 {
		cfg.RepairBurstBytes = cfg.RepairBandwidth / 4
		if min := int64(cfg.ChunkBytes); cfg.RepairBurstBytes < min {
			cfg.RepairBurstBytes = min
		}
	}
	if cfg.FecGroup > 0 && cfg.FecMode == "" {
		cfg.FecMode = wire.FecModeXOR
	}
	s := &Server{cfg: cfg, stop: make(chan struct{}), conns: make(map[net.Conn]struct{})}
	s.cache = newFrameCache(cfg.Scheme, cfg.BytesPerUnit, cfg.ChunkBytes, cfg.FrameCacheBytes, cfg.FecGroup, cfg.nparity())
	if cfg.RepairBandwidth > 0 {
		s.repairBudget = metrics.NewTokenBucket(float64(cfg.RepairBandwidth), float64(cfg.RepairBurstBytes))
	}
	s.storms = newStormTable(cfg.StormThreshold, cfg.StormWindow)
	return s, nil
}

// Start opens the control listener and launches every channel pacer. The
// broadcast epoch is the moment Start returns.
func (s *Server) Start() error {
	hub, err := mcast.NewHubConfigured(mcast.HubConfig{
		SendBufBytes: s.cfg.SendBufBytes,
		RecvBufBytes: s.cfg.RecvBufBytes,
		Logf:         s.cfg.Logf,
	})
	if err != nil {
		return err
	}
	if s.cfg.EgressEngine == EngineUring {
		if err := hub.EnableUring(); err != nil {
			s.cfg.Logf("server: io_uring egress unavailable (%v); using the wheel engine", err)
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		hub.Close()
		return fmt.Errorf("server: control listener: %w", err)
	}
	s.hub = hub
	s.send = hub
	if s.cfg.Faults != nil {
		inj, err := faults.New(hub, *s.cfg.Faults)
		if err != nil {
			ln.Close()
			hub.Close()
			return err
		}
		s.inj = inj
		s.send = inj
		s.cfg.Logf("server: fault injection enabled: %+v", *s.cfg.Faults)
	}
	s.ln = ln
	s.epoch = time.Now()

	sch := s.cfg.Scheme
	if s.cfg.EgressEngine == EnginePacer {
		for v := 0; v < sch.Config().Videos; v++ {
			for i := 1; i <= sch.K(); i++ {
				s.wg.Add(1)
				go s.runPacer(v, i)
			}
		}
	} else {
		s.startWheel()
	}
	s.wg.Add(1)
	go s.acceptLoop()
	s.cfg.Logf("server: broadcasting %d videos x %d channels on %s (unit %v, engine %s, %d shards, vectorized=%v, gso=%v)",
		sch.Config().Videos, sch.K(), ln.Addr(), s.cfg.Unit, s.EgressEngine(), s.shards, hub.Vectorized(), hub.GSO())
	return nil
}

// Addr returns the control address to dial, e.g. "127.0.0.1:41234".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Epoch returns the broadcast time origin.
func (s *Server) Epoch() time.Time { return s.epoch }

// Hub exposes the multicast hub (for tests and stats).
func (s *Server) Hub() *mcast.Hub { return s.hub }

// Injector exposes the fault injector when a chaos plan is configured,
// nil otherwise (for tests and cmd/skychaos).
func (s *Server) Injector() *faults.Injector { return s.inj }

// RepairsServed returns how many unicast chunk repairs have been answered.
func (s *Server) RepairsServed() int64 { return s.repairs.Value() }

// ParityFramesSent returns how many proactive parity frames have been
// broadcast; ParityBytesSent the wire bytes they cost (the stripe's
// overhead, bounded by ~1/G of the broadcast).
func (s *Server) ParityFramesSent() int64 { return s.parityFrames.Value() }
func (s *Server) ParityBytesSent() int64  { return s.parityBytes.Value() }

// RepairBytesServed returns the payload bytes those repairs carried.
func (s *Server) RepairBytesServed() int64 { return s.repairBytes.Value() }

// BusyReplies returns how many repair requests were pushed back with Busy
// (admission denials plus storm suppressions).
func (s *Server) BusyReplies() int64 { return s.busyReplies.Value() }

// StormResends returns how many coalesced repair storms were answered via
// a multicast re-send; SuppressedRepairs the unicast requests absorbed.
func (s *Server) StormResends() int64      { return s.stormResends.Value() }
func (s *Server) SuppressedRepairs() int64 { return s.suppressed.Value() }

// NacksServed returns how many gap-bitmap NACK messages were answered;
// NackResends how many multicast re-sends those NACKs triggered;
// NackSuppressed how many NACKed chunks were absorbed because a re-send
// within the storm window was already in flight.
func (s *Server) NacksServed() int64    { return s.nacksServed.Value() }
func (s *Server) NackResends() int64    { return s.nackResends.Value() }
func (s *Server) NackSuppressed() int64 { return s.nackSuppressed.Value() }

// RepairTokens returns the repair token bucket's current level in bytes,
// or -1 when the budget is unlimited.
func (s *Server) RepairTokens() int64 {
	if s.repairBudget == nil {
		return -1
	}
	return int64(s.repairBudget.Level(time.Now()))
}

// PacerRestarts returns how many pacer (or egress shard) panics the
// supervisor has absorbed; PacerDriftEvents how many broadcasts missed
// their absolute schedule by more than one unit.
func (s *Server) PacerRestarts() int64    { return s.pacerRestarts.Value() }
func (s *Server) PacerDriftEvents() int64 { return s.driftEvents.Value() }

// EgressEngine returns the resolved engine name driving the broadcast
// schedules. EngineUring is reported only while the hub's ring is
// actually armed — a failed EnableUring (old kernel) or a runtime
// teardown resolves honestly to the wheel.
func (s *Server) EgressEngine() string {
	if s.cfg.EgressEngine == EnginePacer {
		return EnginePacer
	}
	if s.hub != nil && s.hub.UringActive() {
		return EngineUring
	}
	return EngineWheel
}

// EgressShards returns how many shard goroutines the wheel engine drives
// all channels from (0 under the legacy per-pacer engine); EgressWakeups
// how many timer wakeups those shards have taken — each wakeup dispatches
// every chunk due in its tick, so wakeups ≪ chunks is the wheel working.
func (s *Server) EgressShards() int    { return s.shards }
func (s *Server) EgressWakeups() int64 { return s.wheelWakeups.Value() }

// Draining reports whether the server is in graceful shutdown.
func (s *Server) Draining() bool { return s.draining.Load() }

// FrameCacheStats reports the frame cache's hits, misses and occupancy
// (for tests, /status and cmd/skychaos).
func (s *Server) FrameCacheStats() CacheStats { return s.cache.stats() }

// Close stops all pacers, the listener, and open control connections.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	close(s.stop)
	s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	// Pacer supervisors and the accept loop first: acceptLoop is the only
	// place connWG grows, so after wg drains the handler count is final.
	s.wg.Wait()
	s.connWG.Wait()
	if s.inj != nil {
		s.inj.Flush()
	}
	s.hub.Close()
}

// fragmentBytes returns the byte size of channel i's fragment.
func (s *Server) fragmentBytes(i int) int {
	return int(s.cfg.Scheme.Sizes()[i-1]) * s.cfg.BytesPerUnit
}

// fragmentBase returns the absolute byte offset of channel i's fragment
// within the video.
func (s *Server) fragmentBase(i int) int64 {
	var units int64
	for _, sz := range s.cfg.Scheme.Sizes()[:i-1] {
		units += sz
	}
	return units * int64(s.cfg.BytesPerUnit)
}

// pace runs one channel: video v, channel i. Chunks of repetition n are
// sent evenly across [epoch + n*period, epoch + (n+1)*period). It runs
// under the supervisor (runPacer): a panic is recovered and pace is
// re-entered, so the starting position is derived from the wall clock and
// the absolute broadcast grid — a restarted pacer rejoins the schedule
// mid-repetition instead of replaying missed chunks in a burst.
//
// Per chunk the pacer acquires the repetition-invariant frame from the
// cache — a pointer load once resident — patches the 4-byte Seq field in
// place and hands it to the fan-out: the steady-state broadcast cost is a
// header patch plus the sends, with zero allocation and no payload or CRC
// recomputation. Non-resident chunks (budget exhausted or first touch)
// re-encode into pacer-owned scratch with their cached CRC.
//
// A drift watchdog counts every chunk sent more than one unit after its
// scheduled instant: sustained drift means the host cannot keep the grid
// and clients will see schedule misses as losses.
func (s *Server) pace(v, i int) {
	var (
		size    = s.cfg.Scheme.Sizes()[i-1]
		period  = time.Duration(size) * s.cfg.Unit
		total   = s.fragmentBytes(i)
		chunks  = total / s.cfg.ChunkBytes
		spacing = period / time.Duration(chunks)
		group   = mcast.Group{Video: v, Channel: i}
		cc      = s.cache.channel(v, i)
		scratch = newFrameScratch(s.cfg.ChunkBytes)
		timer   = time.NewTimer(0)
	)
	var pscratch *parityScratch
	if s.cfg.FecGroup > 0 {
		pscratch = newParityScratch(s.cfg.ChunkBytes)
	}
	defer timer.Stop()
	if !timer.Stop() {
		<-timer.C
	}
	// Resume position: the next chunk at or after now on the absolute
	// grid. At first start elapsed is ~0, so this is (n=0, c=0).
	n, c := uint32(0), 0
	if elapsed := time.Since(s.epoch); elapsed > 0 {
		n = uint32(elapsed / period)
		c = int((elapsed % period) / spacing)
		if c >= chunks {
			n, c = n+1, 0
		}
	}
	for ; ; n++ {
		repStart := s.epoch.Add(time.Duration(n) * period)
		for ; c < chunks; c++ {
			at := repStart.Add(time.Duration(c) * spacing)
			timer.Reset(time.Until(at))
			select {
			case <-s.stop:
				return
			case <-timer.C:
			}
			if hook := s.cfg.PacerHook; hook != nil {
				hook(v, i, n, c)
			}
			frame := s.cache.acquire(cc, c, scratch)
			if err := wire.PatchSeq(frame, n); err != nil {
				s.cfg.Logf("server: patching %v seq %d: %v", group, n, err)
				return
			}
			if _, err := s.send.Send(group, frame); err != nil {
				select {
				case <-s.stop:
					return
				default:
				}
				s.cfg.Logf("server: sending %v seq %d: %v", group, n, err)
			}
			// The stripe: one (or two, in RS mode) parity frames follow the
			// last data chunk of every transmission group, Seq-patched to
			// the same repetition.
			if g := s.cfg.FecGroup; g > 0 && ((c+1)%g == 0 || c == chunks-1) {
				s.sendParity(group, cc, c/g, n, pscratch)
			}
			if late := time.Since(at); late > s.cfg.Unit {
				if d := s.driftEvents.Add(1); d == 1 || d%256 == 0 {
					s.cfg.Logf("server: pacing drift: %v seq %d chunk %d sent %v late (%d drift events)",
						group, n, c, late, d)
				}
			}
		}
		c = 0
	}
}

// sendParity broadcasts stripe group pg's parity frame(s) for repetition
// n, immediately behind the group's last data chunk. Parity frames are
// as repetition-invariant as the chunks they cover, so the steady state
// is the same acquire + 4-byte Seq patch the data path pays.
func (s *Server) sendParity(g mcast.Group, cc *channelCache, pg int, n uint32, scratch *parityScratch) {
	for pi := 0; pi < s.cache.nparity; pi++ {
		frame := s.cache.acquireParity(cc, pg, pi, scratch)
		if err := wire.PatchSeq(frame, n); err != nil {
			s.cfg.Logf("server: patching %v parity seq %d: %v", g, n, err)
			return
		}
		if _, err := s.send.Send(g, frame); err != nil {
			select {
			case <-s.stop:
				return
			default:
			}
			s.cfg.Logf("server: sending %v parity seq %d: %v", g, n, err)
			continue
		}
		s.parityFrames.Inc()
		s.parityBytes.Add(int64(len(frame)))
	}
}

// fillRange copies the broadcast bytes of [off, off+len(dst)) of channel
// i's fragment into dst, serving from the frame cache when the range sits
// inside one chunk (the shape every client repair request has) and
// falling back to the content function for ranges that straddle chunks.
func (s *Server) fillRange(video, channel int, off int64, dst []byte, scratch *frameScratch) {
	cc := s.cache.channel(video, channel)
	cb := int64(s.cfg.ChunkBytes)
	if c := off / cb; off+int64(len(dst)) <= (c+1)*cb {
		frame := s.cache.acquire(cc, int(c), scratch)
		lo := wire.HeaderSize + int(off-c*cb)
		copy(dst, frame[lo:lo+len(dst)])
		return
	}
	content.Fill(dst, video, cc.base+off)
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed || s.draining.Load() {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.connWG.Add(1)
		go s.serveControl(conn)
	}
}

// serveControl handles one client's control session, tracking its group
// memberships so a dropped connection cleans up after itself.
func (s *Server) serveControl(conn net.Conn) {
	defer s.connWG.Done()
	s.controlSessions.Inc()
	defer s.controlSessions.Dec()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	joined := make(map[mcast.Group]*net.UDPAddr)
	defer func() {
		for g, a := range joined {
			s.hub.Leave(g, a)
		}
	}()
	// Build space for repairs of non-resident chunks; one per connection
	// so concurrent control sessions never contend.
	scratch := newFrameScratch(s.cfg.ChunkBytes)

	// connID feeds the storm table's distinct-client counting; the
	// per-connection limiter rations this client's repair request rate.
	connID := s.connSeq.Add(1)
	var connLimit *metrics.TokenBucket
	if rate := s.cfg.RepairPerConnPerSec; rate > 0 {
		burst := rate
		if burst < 1 {
			burst = 1
		}
		connLimit = metrics.NewTokenBucket(rate, burst)
	}

	sch := s.cfg.Scheme
	r := bufio.NewReader(conn)
	// Every reply write is deadline-bounded so a client that stops
	// draining its socket cannot wedge the handler.
	write := func(m *wire.Control) error {
		_ = conn.SetWriteDeadline(time.Now().Add(s.cfg.ControlWriteTimeout))
		return wire.WriteControl(conn, m)
	}
	fail := func(format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		s.cfg.Logf("server: %v: %s", conn.RemoteAddr(), msg)
		_ = write(&wire.Control{Kind: wire.KindError, Error: msg})
	}
	busy := func(retry time.Duration) error {
		s.busyReplies.Inc()
		return write(&wire.Control{Kind: wire.KindBusy, RetryAfterNanos: int64(retry)})
	}
	for {
		// Idle reaping: a half-open or silent client times out here, the
		// handler returns, and the deferred cleanup drops its
		// memberships.
		_ = conn.SetReadDeadline(time.Now().Add(s.cfg.ControlIdleTimeout))
		m, err := wire.ReadControl(r)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				s.cfg.Logf("server: reaping idle control connection %v (%d memberships)",
					conn.RemoteAddr(), len(joined))
			}
			return // disconnect
		}
		switch m.Kind {
		case wire.KindHello:
			w := &wire.Welcome{
				Videos:           sch.Config().Videos,
				ChannelsPerVideo: sch.K(),
				Width:            sch.Width(),
				UnitNanos:        int64(s.cfg.Unit),
				EpochUnixNano:    s.epoch.UnixNano(),
				SizeUnits:        append([]int64(nil), sch.Sizes()...),
				BytesPerUnit:     s.cfg.BytesPerUnit,
				ChunkBytes:       s.cfg.ChunkBytes,
				NackRepair:       true,
				FecGroup:         s.cfg.FecGroup,
				FecMode:          s.cfg.FecMode,
			}
			if err := write(&wire.Control{Kind: wire.KindWelcome, Welcome: w}); err != nil {
				return
			}
		case wire.KindJoin:
			if m.Video < 0 || m.Video >= sch.Config().Videos || m.Channel < 1 || m.Channel > sch.K() {
				fail("join: no channel %d/%d", m.Video, m.Channel)
				continue
			}
			if m.Port <= 0 || m.Port > 65535 {
				fail("join: bad port %d", m.Port)
				continue
			}
			g := mcast.Group{Video: m.Video, Channel: m.Channel}
			addr := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: m.Port}
			if err := s.hub.Join(g, addr); err != nil {
				fail("join: %v", err)
				continue
			}
			joined[g] = addr
			if err := write(&wire.Control{Kind: wire.KindJoined, Video: m.Video, Channel: m.Channel}); err != nil {
				return
			}
		case wire.KindRepair:
			rp := m.Repair
			if rp == nil {
				fail("repair: missing parameters")
				continue
			}
			if rp.Video < 0 || rp.Video >= sch.Config().Videos || rp.Channel < 1 || rp.Channel > sch.K() {
				fail("repair: no channel %d/%d", rp.Video, rp.Channel)
				continue
			}
			total := s.fragmentBytes(rp.Channel)
			if rp.Length <= 0 || rp.Length > wire.MaxPayload || rp.Offset < 0 || rp.Offset+int64(rp.Length) > int64(total) {
				fail("repair: bad range [%d, %d) of %d-byte fragment", rp.Offset, rp.Offset+int64(rp.Length), total)
				continue
			}
			// Admission, cheapest gate first. 1: this connection's request
			// rate.
			now := time.Now()
			if connLimit != nil {
				if ok, retry := connLimit.Take(now, 1); !ok {
					if err := busy(retry); err != nil {
						return
					}
					continue
				}
			}
			// 2: storm coalescing — many distinct clients pulling the same
			// chunk are answered once, by multicast, on the chunk's own
			// group. Only chunk-aligned full-chunk requests (the shape a
			// lost datagram produces) participate.
			if cb := int64(s.cfg.ChunkBytes); s.cfg.StormThreshold > 0 && rp.Length == s.cfg.ChunkBytes && rp.Offset%cb == 0 {
				k := stormKey{video: rp.Video, channel: rp.Channel, chunk: int(rp.Offset / cb)}
				switch s.storms.note(k, connID, now) {
				case stormResend:
					s.stormResend(k.video, k.channel, k.chunk, rp.Seq, scratch)
					fallthrough
				case stormSuppress:
					s.suppressed.Inc()
					// Busy(0): the answer is (already) in flight on the
					// broadcast group; re-listen instead of re-pulling.
					if err := busy(0); err != nil {
						return
					}
					continue
				}
			}
			// 3: the shared repair byte budget.
			if s.repairBudget != nil {
				if ok, retry := s.repairBudget.Take(now, float64(rp.Length)); !ok {
					if err := busy(retry); err != nil {
						return
					}
					continue
				}
			}
			// The frame cache (or, for ranges it cannot serve, the content
			// function) regenerates any chunk on demand, so repairs need
			// no retransmission buffer.
			reply := *rp
			reply.Data = make([]byte, rp.Length)
			s.fillRange(rp.Video, rp.Channel, rp.Offset, reply.Data, scratch)
			s.repairs.Inc()
			s.repairBytes.Add(int64(rp.Length))
			if err := write(&wire.Control{Kind: wire.KindRepairOK, Repair: &reply}); err != nil {
				return
			}
		case wire.KindNack:
			// Cohort-aware repair: one gap bitmap reports a burst of
			// losses, and the accepted chunks are answered with a batched
			// multicast re-send on the channel's own broadcast group —
			// one dispatch heals every injured member. ReadControl has
			// already validated the bitmap shape.
			nk := m.Nack
			if nk.Video < 0 || nk.Video >= sch.Config().Videos || nk.Channel < 1 || nk.Channel > sch.K() {
				fail("nack: no channel %d/%d", nk.Video, nk.Channel)
				continue
			}
			nchunks := (s.fragmentBytes(nk.Channel) + s.cfg.ChunkBytes - 1) / s.cfg.ChunkBytes
			chunks := nk.Chunks()
			if last := chunks[len(chunks)-1]; last >= nchunks {
				fail("nack: chunk %d outside %d-chunk fragment", last, nchunks)
				continue
			}
			now := time.Now()
			// One NACK costs one per-connection token regardless of how
			// many chunks it reports: aggregation must not be taxed.
			if connLimit != nil {
				if ok, retry := connLimit.Take(now, 1); !ok {
					if err := busy(retry); err != nil {
						return
					}
					continue
				}
			}
			s.nacksServed.Inc()
			accepted := &wire.Nack{Video: nk.Video, Channel: nk.Channel, Seq: nk.Seq,
				BaseChunk: nk.BaseChunk, Bitmap: make([]byte, len(nk.Bitmap))}
			resend := chunks[:0]
			for _, chunk := range chunks {
				k := stormKey{video: nk.Video, channel: nk.Channel, chunk: chunk}
				if !s.storms.noteNack(k, now) {
					// A re-send within the window is already in flight;
					// the client just keeps re-listening.
					s.nackSuppressed.Inc()
					accepted.Set(chunk)
					continue
				}
				// The re-send spends the shared repair byte budget like
				// any repair; a refused chunk stays unmarked and the
				// client falls back to unicast (which is budget-gated
				// too, so an over-budget plane degrades, not amplifies).
				clen := s.cfg.ChunkBytes
				if rem := s.fragmentBytes(nk.Channel) - chunk*s.cfg.ChunkBytes; rem < clen {
					clen = rem
				}
				if s.repairBudget != nil {
					if ok, _ := s.repairBudget.Take(now, float64(clen)); !ok {
						continue
					}
				}
				accepted.Set(chunk)
				resend = append(resend, chunk)
			}
			if len(resend) > 0 {
				s.nackResend(nk.Video, nk.Channel, nk.Seq, resend, scratch)
			}
			if err := write(&wire.Control{Kind: wire.KindNackOK, Nack: accepted}); err != nil {
				return
			}
		case wire.KindStats:
			st := &wire.Stats{
				UptimeNanos:       int64(time.Since(s.epoch)),
				DatagramsSent:     s.hub.Sent(),
				Channels:          sch.Config().Videos * sch.K(),
				Members:           s.hub.TotalMembers(),
				RepairsServed:     s.repairs.Value(),
				RepairBytes:       s.repairBytes.Value(),
				BusyReplies:       s.busyReplies.Value(),
				StormResends:      s.stormResends.Value(),
				SuppressedRepairs: s.suppressed.Value(),
				NacksServed:       s.nacksServed.Value(),
				NackResends:       s.nackResends.Value(),
				NackSuppressed:    s.nackSuppressed.Value(),
				RepairDatagrams:   s.hub.RepairDatagrams(),
				RepairTokens:      s.RepairTokens(),
				PacerRestarts:     s.pacerRestarts.Value(),
				PacerDriftEvents:  s.driftEvents.Value(),
				EgressShards:      s.shards,
				EgressWakeups:     s.wheelWakeups.Value(),
				EgressBatches:     s.hub.Batches(),
				BatchedBytes:      s.hub.BatchedBytes(),
				EgressSyscalls:    s.hub.SendSyscalls(),
				Superframes:       s.hub.Superframes(),
				GSOSegments:       s.hub.GSOSegments(),
				GSOFallbacks:      s.hub.GSOFallbacks(),
				UringSubmits:      s.hub.UringSubmits(),
				UringSQEs:         s.hub.UringSQEs(),
				ParityFrames:      s.parityFrames.Value(),
				ParityBytes:       s.parityBytes.Value(),
				Draining:          s.draining.Load(),
			}
			// The ingress ledger covers every shared receiver this process
			// opened — zero on a pure egress server, live on a relay or a
			// co-located emulation.
			ing := mcast.IngressStats()
			st.BatchedReads = ing.BatchedReads
			st.ReadSyscalls = ing.ReadSyscalls
			st.GroSegments = ing.GROSegments
			st.GroFallbacks = ing.GROFallbacks
			st.ReadErrors = ing.ReadErrors
			if err := write(&wire.Control{Kind: wire.KindStatsOK, Stats: st}); err != nil {
				return
			}
		case wire.KindLeave:
			g := mcast.Group{Video: m.Video, Channel: m.Channel}
			if a, ok := joined[g]; ok {
				s.hub.Leave(g, a)
				delete(joined, g)
			}
		case wire.KindBye:
			return
		default:
			fail("unknown control kind %q", m.Kind)
		}
	}
}
