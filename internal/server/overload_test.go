package server_test

import (
	"bufio"
	"context"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"skyscraper/internal/client"
	"skyscraper/internal/faults"
	"skyscraper/internal/mcast"
	"skyscraper/internal/server"
	"skyscraper/internal/trace"
	"skyscraper/internal/wire"
)

// dialRaw opens one raw control connection for protocol-level tests.
func dialRaw(t *testing.T, addr string) (net.Conn, *bufio.Reader) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn, bufio.NewReader(conn)
}

// TestOverloadRepairBudget hammers the repair plane at several times its
// byte budget from concurrent connections: the acceptance property is
// that the server holds the line — unicast repair bytes served stay
// within 10% above rate*elapsed + burst, the over-budget remainder is
// refused with Busy replies carrying positive retry-after hints, and no
// request hangs.
func TestOverloadRepairBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("live network test")
	}
	const (
		rate  = 64 << 10 // 64 KiB/s repair budget
		burst = 16 << 10
	)
	sch := liveScheme(t, 1, 3, 2) // fragments 1,2,2
	srv := startChaosServer(t, sch, 50*time.Millisecond, server.Config{
		RepairBandwidth:  rate,
		RepairBurstBytes: burst,
	})

	// 3 connections pulling 1 KiB chunks flat out: locally a round trip is
	// well under a millisecond, so raw demand is far above 3x the budget.
	const (
		hammers = 3
		dur     = 700 * time.Millisecond
	)
	var busies, hung atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for h := 0; h < hammers; h++ {
		conn, r := dialRaw(t, srv.Addr())
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := &wire.Repair{Video: 0, Channel: 2, Seq: 1, Offset: 0, Length: 1024}
			for time.Since(start) < dur {
				_ = conn.SetDeadline(time.Now().Add(2 * time.Second))
				if err := wire.WriteControl(conn, &wire.Control{Kind: wire.KindRepair, Repair: req}); err != nil {
					hung.Add(1)
					return
				}
				m, err := wire.ReadControl(r)
				if err != nil {
					hung.Add(1)
					return
				}
				switch m.Kind {
				case wire.KindRepairOK:
				case wire.KindBusy:
					busies.Add(1)
					if m.RetryAfterNanos <= 0 {
						t.Errorf("budget Busy with non-positive retry hint %d", m.RetryAfterNanos)
						return
					}
					// An obedient client would sleep the hint; the hammer
					// deliberately does not, to prove the bucket alone
					// bounds the served bytes.
				default:
					t.Errorf("unexpected reply %q", m.Kind)
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	if hung.Load() != 0 {
		t.Fatalf("%d hammer connections timed out or died", hung.Load())
	}
	served := srv.RepairBytesServed()
	ceiling := 1.1 * (rate*elapsed + burst)
	if float64(served) > ceiling {
		t.Errorf("served %d repair bytes in %.3fs, budget ceiling %.0f", served, elapsed, ceiling)
	}
	// The budget must also actually be spent: demand was far above it.
	if floor := 0.5 * rate * elapsed; float64(served) < floor {
		t.Errorf("served only %d repair bytes, expected at least %.0f under saturation", served, floor)
	}
	if busies.Load() == 0 {
		t.Error("demand at several times the budget produced no Busy replies")
	}
	if srv.BusyReplies() != busies.Load() {
		t.Errorf("server counted %d Busy replies, clients saw %d", srv.BusyReplies(), busies.Load())
	}
	if tokens := srv.RepairTokens(); tokens < 0 || tokens > burst {
		t.Errorf("RepairTokens = %d outside [0, %d]", tokens, burst)
	}
}

// TestOverloadClientsTerminate runs real client sessions against a
// starved repair budget under injected loss: every session must
// terminate — degraded, with losses counted — rather than hang retrying.
func TestOverloadClientsTerminate(t *testing.T) {
	if testing.Short() {
		t.Skip("live network test")
	}
	sch := liveScheme(t, 1, 4, 2) // fragments 1,2,2,2
	srv := startChaosServer(t, sch, 80*time.Millisecond, server.Config{
		Faults: &faults.Plan{Seed: 3, Drop: 0.08},
		// A budget of one chunk per second with a one-chunk burst: far
		// below the repair demand of 8% loss, so most repairs are refused.
		RepairBandwidth:  1024,
		RepairBurstBytes: 1024,
	})

	const n = 3
	var wg sync.WaitGroup
	errs := make([]error, n)
	stats := make([]*client.Stats, n)
	tbs := make([]*trace.Buffer, n)
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		i := i
		tbs[i] = trace.New(256)
		cfg := chaosClient(srv.Addr(), 0, tbs[i])
		cfg.AllowDegraded = true
		cfg.Seed = uint64(i + 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			stats[i], errs[i] = client.Watch(cfg)
		}()
	}
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("a client hung under repair-budget starvation")
	}
	var sawBusy int64
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			dumpTrace(t, tbs[i])
			t.Fatalf("client %d failed instead of degrading: %v (stats %+v)", i, errs[i], stats[i])
		}
		if stats[i].ByteErrors != 0 {
			t.Errorf("client %d: %d byte errors", i, stats[i].ByteErrors)
		}
		sawBusy += stats[i].BusyReplies
	}
	if sawBusy == 0 {
		t.Error("no client saw a Busy reply despite the starved budget")
	}
	if srv.BusyReplies() == 0 {
		t.Error("server issued no Busy replies despite the starved budget")
	}
}

// TestStormCoalescing drives the storm path at the protocol level: when
// StormThreshold distinct connections pull the same chunk inside the
// window, the threshold-crossing request is answered once by a multicast
// re-send on the chunk's broadcast group, and it plus every later
// request get Busy(0) — re-listen, don't re-pull.
func TestStormCoalescing(t *testing.T) {
	if testing.Short() {
		t.Skip("live network test")
	}
	sch := liveScheme(t, 1, 3, 2)
	srv := startChaosServer(t, sch, 50*time.Millisecond, server.Config{
		StormThreshold: 3,
		StormWindow:    2 * time.Second,
	})

	// A group member to witness the multicast re-send.
	rcv, err := mcast.NewReceiver()
	if err != nil {
		t.Fatal(err)
	}
	defer rcv.Close()
	g := mcast.Group{Video: 0, Channel: 2}
	if err := srv.Hub().Join(g, rcv.Addr()); err != nil {
		t.Fatal(err)
	}

	// The storm: 4 distinct connections request the same chunk (seq 777
	// cannot collide with the live pacer's repetition numbers within this
	// test's lifetime).
	req := &wire.Repair{Video: 0, Channel: 2, Seq: 777, Offset: 1024, Length: 1024}
	wantKinds := []string{wire.KindRepairOK, wire.KindRepairOK, wire.KindBusy, wire.KindBusy}
	for i, want := range wantKinds {
		conn, r := dialRaw(t, srv.Addr())
		if err := wire.WriteControl(conn, &wire.Control{Kind: wire.KindRepair, Repair: req}); err != nil {
			t.Fatal(err)
		}
		m, err := wire.ReadControl(r)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if m.Kind != want {
			t.Fatalf("request %d answered %q, want %q", i, m.Kind, want)
		}
		if m.Kind == wire.KindBusy && m.RetryAfterNanos != 0 {
			t.Errorf("storm Busy carries retry hint %d, want 0 (re-listen)", m.RetryAfterNanos)
		}
		conn.Close()
	}
	if srv.StormResends() != 1 {
		t.Errorf("StormResends = %d, want 1 (one re-send per window)", srv.StormResends())
	}
	if srv.SuppressedRepairs() != 2 {
		t.Errorf("SuppressedRepairs = %d, want 2", srv.SuppressedRepairs())
	}
	if srv.BusyReplies() != 2 {
		t.Errorf("BusyReplies = %d, want 2", srv.BusyReplies())
	}

	// The re-send reached the group, tagged with the storm's seq and
	// carrying the frame-cache bytes of the requested chunk.
	deadline := time.Now().Add(3 * time.Second)
	for {
		_ = rcv.Conn.SetReadDeadline(deadline)
		buf := make([]byte, wire.EncodedSize(wire.MaxPayload))
		n, _, err := rcv.Conn.ReadFromUDPAddrPort(buf)
		if err != nil {
			t.Fatal("multicast re-send never reached the group")
		}
		c, err := wire.Decode(buf[:n])
		if err != nil || c.Seq != 777 {
			continue // a regular pacer broadcast; keep looking
		}
		if int(c.Offset) != 1024 || len(c.Payload) != 1024 {
			t.Fatalf("re-send frame mismatch: offset %d, %d payload bytes", c.Offset, len(c.Payload))
		}
		break
	}
}

// TestPacerPanicRecovered injects a panic into one channel pacer
// mid-broadcast; the supervisor must absorb it and restart the pacer on
// its absolute schedule, so a concurrent viewing session still completes
// with verified bytes and the server keeps answering control traffic.
func TestPacerPanicRecovered(t *testing.T) {
	if testing.Short() {
		t.Skip("live network test")
	}
	sch := liveScheme(t, 1, 4, 2)
	var fired atomic.Bool
	srv := startChaosServer(t, sch, 80*time.Millisecond, server.Config{
		PacerHook: func(video, channel int, rep uint32, chunk int) {
			// One panic, in the steady state of the widest channel.
			if video == 0 && channel == 4 && rep >= 1 && !fired.Swap(true) {
				panic("injected pacer fault")
			}
		},
	})

	tb := trace.New(256)
	cfg := chaosClient(srv.Addr(), 0, tb)
	cfg.AllowDegraded = true // the panic window may cost chunks; never a hang
	stats, err := client.Watch(cfg)
	if err != nil {
		dumpTrace(t, tb)
		t.Fatalf("watch across pacer panic: %v (stats %+v)", err, stats)
	}
	if stats.ByteErrors != 0 {
		t.Errorf("byte errors across restart: %d", stats.ByteErrors)
	}
	if !fired.Load() {
		t.Fatal("panic hook never fired; the supervisor went untested")
	}
	if srv.PacerRestarts() < 1 {
		t.Errorf("PacerRestarts = %d, want >= 1", srv.PacerRestarts())
	}
	// The server is alive: a fresh control round trip still works.
	conn, r := dialRaw(t, srv.Addr())
	if err := wire.WriteControl(conn, &wire.Control{Kind: wire.KindStats}); err != nil {
		t.Fatal(err)
	}
	m, err := wire.ReadControl(r)
	if err != nil || m.Kind != wire.KindStatsOK {
		t.Fatalf("stats after restart: %+v %v", m, err)
	}
	if m.Stats.PacerRestarts < 1 {
		t.Errorf("stats report %d pacer restarts, want >= 1", m.Stats.PacerRestarts)
	}
}

// TestDrainGraceful: Drain stops accepting, notifies control clients with
// a server-initiated bye, reports itself draining, and returns once
// handlers finish — well before the context deadline.
func TestDrainGraceful(t *testing.T) {
	if testing.Short() {
		t.Skip("live network test")
	}
	sch := liveScheme(t, 1, 3, 2)
	srv := startChaosServer(t, sch, 50*time.Millisecond, server.Config{})
	base, err := srv.ServeStatus()
	if err != nil {
		t.Fatal(err)
	}

	conn, r := dialRaw(t, srv.Addr())
	if err := wire.WriteControl(conn, &wire.Control{Kind: wire.KindJoin, Video: 0, Channel: 1, Port: 23457}); err != nil {
		t.Fatal(err)
	}
	if m, err := wire.ReadControl(r); err != nil || m.Kind != wire.KindJoined {
		t.Fatalf("join: %v %v", m, err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(ctx) }()

	// The client hears the server-initiated bye before the connection
	// dies.
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	m, err := wire.ReadControl(r)
	if err != nil || m.Kind != wire.KindBye {
		t.Fatalf("expected server bye, got %+v %v", m, err)
	}
	if !srv.Draining() {
		t.Error("bye received but server does not report draining")
	}
	// Health flips out of rotation: 503 while draining, or the endpoint
	// already torn down by the completed drain — never a healthy 200.
	if resp, err := http.Get(base + "/healthz"); err == nil {
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Error("healthz still 200 during drain")
		}
	}

	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(8 * time.Second):
		t.Fatal("Drain did not return")
	}
	// Fully closed: no new control connections.
	if c, err := net.DialTimeout("tcp", srv.Addr(), time.Second); err == nil {
		c.Close()
		t.Error("control port still accepting after drain")
	}
}
