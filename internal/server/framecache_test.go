package server

import (
	"bytes"
	"testing"

	"skyscraper/internal/content"
	"skyscraper/internal/core"
	"skyscraper/internal/mcast"
	"skyscraper/internal/vod"
	"skyscraper/internal/wire"
)

const (
	testBytesPerUnit = 4096
	testChunkBytes   = 1024
)

func cacheScheme(t testing.TB, m, k int, w int64) *core.Scheme {
	t.Helper()
	cfg := vod.Config{ServerMbps: 1.5 * float64(m*k), Videos: m, LengthMin: 120, RateMbps: 1.5}
	sch, err := core.New(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if sch.K() != k {
		t.Fatalf("K = %d, want %d", sch.K(), k)
	}
	return sch
}

// seedEncode is the pre-cache broadcast path, reproduced verbatim as the
// golden reference: fill the chunk's payload from the content function and
// encode the frame from scratch, CRC and all, every time.
func seedEncode(dst, payload []byte, cc *channelCache, c int, seq uint32) []byte {
	off := c * testChunkBytes
	content.Fill(payload, int(cc.video), cc.base+int64(off))
	ch := wire.Chunk{
		Video:   cc.video,
		Channel: cc.channel,
		Seq:     seq,
		Offset:  uint32(off),
		Total:   cc.total,
		Payload: payload,
	}
	frame, err := ch.Encode(dst[:0])
	if err != nil {
		panic(err)
	}
	return frame
}

// TestFrameCacheGoldenEquivalence asserts the zero-recompute path —
// cache acquire plus PatchSeq — emits byte-identical frames to the old
// fill-and-encode path for every (video, channel, chunk, seq), both for
// resident frames and for the budget-exhausted scratch fallback.
func TestFrameCacheGoldenEquivalence(t *testing.T) {
	sch := cacheScheme(t, 2, 4, 2) // fragments 1,2,2,2 per video
	for _, tc := range []struct {
		name   string
		budget int64
	}{
		{"resident", 64 << 20},
		{"fallback", -1}, // no frame residency; CRCs still cached
	} {
		t.Run(tc.name, func(t *testing.T) {
			fc := newFrameCache(sch, testBytesPerUnit, testChunkBytes, tc.budget, 0, 0)
			scratch := newFrameScratch(testChunkBytes)
			payload := make([]byte, testChunkBytes)
			var golden []byte
			for v := 0; v < sch.Config().Videos; v++ {
				for i := 1; i <= sch.K(); i++ {
					cc := fc.channel(v, i)
					chunks := int(cc.total) / testChunkBytes
					for c := 0; c < chunks; c++ {
						for seq := uint32(0); seq < 3; seq++ {
							golden = seedEncode(golden, payload, cc, c, seq)
							got := fc.acquire(cc, c, scratch)
							if err := wire.PatchSeq(got, seq); err != nil {
								t.Fatal(err)
							}
							if !bytes.Equal(got, golden) {
								t.Fatalf("%s: video %d ch %d chunk %d seq %d: cached frame differs from golden encode",
									tc.name, v, i, c, seq)
							}
						}
					}
				}
			}
			st := fc.stats()
			if tc.budget > 0 && st.Bytes == 0 {
				t.Fatalf("resident cache holds no bytes after full sweep: %+v", st)
			}
			if tc.budget < 0 && st.Bytes != 0 {
				t.Fatalf("disabled cache reports %d resident bytes", st.Bytes)
			}
		})
	}
}

// TestFrameCacheBudget pins the reserve-then-back-out accounting: with a
// budget of exactly two frames only two chunks become resident, later
// chunks keep missing into scratch, and the occupancy never exceeds the
// budget.
func TestFrameCacheBudget(t *testing.T) {
	sch := cacheScheme(t, 1, 3, 2)
	size := int64(wire.EncodedSize(testChunkBytes))
	fc := newFrameCache(sch, testBytesPerUnit, testChunkBytes, 2*size, 0, 0)
	scratch := newFrameScratch(testChunkBytes)
	cc := fc.channel(0, 3) // largest fragment: 2 units = 8 chunks
	chunks := int(cc.total) / testChunkBytes
	if chunks < 3 {
		t.Fatalf("fragment too small for the test: %d chunks", chunks)
	}
	for pass := 0; pass < 2; pass++ {
		for c := 0; c < chunks; c++ {
			fc.acquire(cc, c, scratch)
		}
	}
	st := fc.stats()
	if st.Bytes != 2*size {
		t.Fatalf("resident bytes = %d, want exactly the %d-byte budget", st.Bytes, 2*size)
	}
	// Second pass: chunks 0 and 1 hit, the rest miss again.
	wantHits, wantMisses := int64(2), int64(2*chunks-2)
	if st.Hits != wantHits || st.Misses != wantMisses {
		t.Fatalf("hits/misses = %d/%d, want %d/%d", st.Hits, st.Misses, wantHits, wantMisses)
	}
}

// TestPatchedResendZeroAlloc is the acceptance gate for the steady-state
// broadcast path: once a frame is resident, acquire + PatchSeq + hub Send
// must allocate nothing.
func TestPatchedResendZeroAlloc(t *testing.T) {
	sch := cacheScheme(t, 1, 3, 2)
	fc := newFrameCache(sch, testBytesPerUnit, testChunkBytes, 64<<20, 0, 0)
	scratch := newFrameScratch(testChunkBytes)
	cc := fc.channel(0, 1)
	fc.acquire(cc, 0, scratch) // warm

	hub, err := mcast.NewHub()
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	recv, err := mcast.NewReceiver()
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	g := mcast.Group{Video: 0, Channel: 1}
	if err := hub.Join(g, recv.Addr()); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, wire.EncodedSize(testChunkBytes))
		for {
			if _, err := recv.Conn.Read(buf); err != nil {
				return
			}
		}
	}()

	seq := uint32(0)
	allocs := testing.AllocsPerRun(100, func() {
		frame := fc.acquire(cc, 0, scratch)
		if err := wire.PatchSeq(frame, seq); err != nil {
			t.Fatal(err)
		}
		seq++
		if _, err := hub.Send(g, frame); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("patched re-send allocates %v times per chunk, want 0", allocs)
	}
	recv.Close()
	<-done
}

// TestParityGoldenEncode pins the parity encoder against an independent
// reference: for every group of every channel, the cached parity frame
// must decode to exactly the XOR (index 0) and GF(256)-weighted sum
// (index 1) of the group's content-function chunks — whether the data
// frames are cache-resident (payloads folded straight out of the cache)
// or regenerated into scratch (budget -1), and the tail group's short
// coverage must be declared exactly.
func TestParityGoldenEncode(t *testing.T) {
	sch := cacheScheme(t, 1, 3, 2)
	const fecGroup = 3 // channel 3 has 8 chunks: groups of 3, 3, 2
	for _, tc := range []struct {
		name   string
		budget int64
	}{
		{"resident", 64 << 20},
		{"fallback", -1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fc := newFrameCache(sch, testBytesPerUnit, testChunkBytes, tc.budget, fecGroup, 2)
			fs := newFrameScratch(testChunkBytes)
			ps := newParityScratch(testChunkBytes)
			payload := make([]byte, testChunkBytes)
			for i := 1; i <= sch.K(); i++ {
				cc := fc.channel(0, i)
				chunks := int(cc.total) / testChunkBytes
				if tc.budget > 0 {
					for c := 0; c < chunks; c++ {
						fc.acquire(cc, c, fs) // make the data frames resident
					}
				}
				for g := 0; g*fecGroup < chunks; g++ {
					count := chunks - g*fecGroup
					if count > fecGroup {
						count = fecGroup
					}
					for pi := 0; pi < 2; pi++ {
						want := make([]byte, testChunkBytes)
						for j := 0; j < count; j++ {
							content.Fill(payload, 0, cc.base+int64((g*fecGroup+j)*testChunkBytes))
							if pi == 0 {
								wire.XorAccum(want, payload)
							} else {
								wire.GfMulAccum(want, payload, wire.GfExpPow(j))
							}
						}
						frame := fc.acquireParity(cc, g, pi, ps)
						if !wire.IsParity(frame) {
							t.Fatalf("ch %d group %d index %d: frame not recognized as parity", i, g, pi)
						}
						if err := wire.PatchSeq(frame, 7); err != nil {
							t.Fatal(err)
						}
						p, err := wire.DecodeParity(frame)
						if err != nil {
							t.Fatalf("ch %d group %d index %d: %v", i, g, pi, err)
						}
						if p.Seq != 7 || int(p.Base) != g*fecGroup*testChunkBytes || p.Count != count || int(p.Index) != pi {
							t.Fatalf("ch %d group %d index %d: decoded header %+v", i, g, pi, p)
						}
						if !bytes.Equal(p.Block[:testChunkBytes], want) {
							t.Fatalf("%s: ch %d group %d index %d: parity block differs from reference fold",
								tc.name, i, g, pi)
						}
					}
				}
			}
		})
	}
}

// TestParityEncodeZeroAlloc is the acceptance gate for the stripe's
// broadcast cost: once the parity frame is resident, acquire + PatchSeq
// allocates nothing — parity rides the pacer's steady state exactly
// like a cached data frame.
func TestParityEncodeZeroAlloc(t *testing.T) {
	sch := cacheScheme(t, 1, 3, 2)
	fc := newFrameCache(sch, testBytesPerUnit, testChunkBytes, 64<<20, 4, 1)
	ps := newParityScratch(testChunkBytes)
	cc := fc.channel(0, 3)
	fc.acquireParity(cc, 0, 0, ps) // warm
	seq := uint32(0)
	allocs := testing.AllocsPerRun(100, func() {
		frame := fc.acquireParity(cc, 0, 0, ps)
		if err := wire.PatchSeq(frame, seq); err != nil {
			t.Fatal(err)
		}
		seq++
	})
	if allocs != 0 {
		t.Fatalf("parity encode allocates %v times per group, want 0", allocs)
	}
	// The scratch fallback (budget spent) must also be allocation-free in
	// steady state: the fold reuses the caller's buffers.
	fcNoBudget := newFrameCache(sch, testBytesPerUnit, testChunkBytes, -1, 4, 1)
	cc = fcNoBudget.channel(0, 3)
	fcNoBudget.acquireParity(cc, 0, 0, ps) // size scratch buffers
	allocs = testing.AllocsPerRun(100, func() {
		frame := fcNoBudget.acquireParity(cc, 0, 0, ps)
		if err := wire.PatchSeq(frame, seq); err != nil {
			t.Fatal(err)
		}
		seq++
	})
	if allocs != 0 {
		t.Fatalf("scratch parity encode allocates %v times per group, want 0", allocs)
	}
}

// BenchmarkPaceEncode measures the per-chunk broadcast encoding cost:
// "seed" is the original path (content fill + full encode per send),
// "cached" the zero-recompute path (cache acquire + 4-byte Seq patch).
func BenchmarkPaceEncode(b *testing.B) {
	sch := cacheScheme(b, 1, 3, 2)
	fc := newFrameCache(sch, testBytesPerUnit, testChunkBytes, 64<<20, 0, 0)
	scratch := newFrameScratch(testChunkBytes)
	cc := fc.channel(0, 3)
	chunks := int(cc.total) / testChunkBytes

	b.Run("seed", func(b *testing.B) {
		payload := make([]byte, testChunkBytes)
		var frame []byte
		b.SetBytes(testChunkBytes)
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			frame = seedEncode(frame, payload, cc, n%chunks, uint32(n))
		}
	})
	b.Run("cached", func(b *testing.B) {
		for c := 0; c < chunks; c++ {
			fc.acquire(cc, c, scratch) // warm
		}
		b.SetBytes(testChunkBytes)
		b.ReportAllocs()
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			frame := fc.acquire(cc, n%chunks, scratch)
			if err := wire.PatchSeq(frame, uint32(n)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
