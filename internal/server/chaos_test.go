package server_test

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"testing"
	"time"

	"skyscraper/internal/client"
	"skyscraper/internal/content"
	"skyscraper/internal/core"
	"skyscraper/internal/faults"
	"skyscraper/internal/server"
	"skyscraper/internal/trace"
	"skyscraper/internal/wire"
)

// startChaosServer is startServer with a fault plan and hardened-control
// knobs.
func startChaosServer(t *testing.T, sch *core.Scheme, unit time.Duration, cfg server.Config) *server.Server {
	t.Helper()
	cfg.Scheme = sch
	cfg.Unit = unit
	cfg.BytesPerUnit = 4096
	cfg.ChunkBytes = 1024
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

// chaosClient is robustClient plus an earlier repair trigger and two
// units of slack, so a recovery round trip fits inside the tightest
// (channel-1) playback window even when a loaded test machine stalls the
// schedule for ~100ms. The strict one-unit jitter proof stays with the
// lossless live tests.
func chaosClient(addr string, video int, tb *trace.Buffer) client.Config {
	cfg := robustClient(addr, video)
	cfg.SlackFrac = 2.0
	cfg.RepairLagFrac = 0.3
	cfg.Trace = tb
	// These suites prove the unicast repair plane specifically; the
	// NACK ladder has its own coverage (nack_test.go, live_test.go).
	cfg.DisableNack = true
	return cfg
}

// dumpTrace prints the recovery journal when a chaos assertion fails.
func dumpTrace(t *testing.T, tb *trace.Buffer) {
	t.Helper()
	for _, e := range tb.Events() {
		t.Logf("trace: %v", e)
	}
}

// TestChaosSweepRecovers is the acceptance sweep: under seeded chunk loss
// up to 5% plus duplication and reordering, a session must complete with
// every byte verified, zero jitter and zero unrepaired losses — the
// paper's guarantee, restored by the repair path.
func TestChaosSweepRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("live network test")
	}
	var totalRepaired int64
	for _, drop := range []float64{0.01, 0.03, 0.05} {
		t.Run(fmt.Sprintf("drop=%v", drop), func(t *testing.T) {
			sch := liveScheme(t, 1, 5, 2) // fragments 1,2,2,2,2 - 36 chunk positions
			srv := startChaosServer(t, sch, 80*time.Millisecond, server.Config{
				Faults: &faults.Plan{Seed: 1, Drop: drop, Duplicate: 0.02, Reorder: 0.02},
			})
			tb := trace.New(256)
			stats, err := client.Watch(chaosClient(srv.Addr(), 0, tb))
			if err != nil {
				dumpTrace(t, tb)
				t.Fatalf("watch under %v drop: %v (stats %+v)", drop, err, stats)
			}
			if stats.ByteErrors != 0 || stats.LateChunks != 0 || stats.LostChunks != 0 {
				dumpTrace(t, tb)
				t.Fatalf("degraded under %v drop: %+v", drop, stats)
			}
			if want := int64(sch.TotalUnits()) * 4096; stats.Bytes != want {
				t.Errorf("received %d bytes, want %d", stats.Bytes, want)
			}
			totalRepaired += stats.RepairedChunks
			if c := srv.Injector().Counts(); c.Dropped == 0 {
				t.Errorf("injector dropped nothing at rate %v (counts %+v)", drop, c)
			}
		})
	}
	if totalRepaired == 0 {
		t.Error("no chunk was repaired across the whole sweep; the loss path went unexercised")
	}
}

// TestChaosDeterministicStats: two sessions against the same faulty
// broadcast — tuning at different wall times, hence different repetitions
// — must report identical recovery statistics, because fault decisions
// are keyed on chunk position, never on repetition or time. The plan uses
// drop and duplication only: a reordered chunk is released one pacing slot
// late, which races the repair trigger — whichever wins is correct but
// shifts a chunk between RepairedChunks and DuplicateChunks, so reorder
// determinism is asserted at the injector layer (internal/faults) instead.
func TestChaosDeterministicStats(t *testing.T) {
	if testing.Short() {
		t.Skip("live network test")
	}
	sch := liveScheme(t, 1, 5, 2)
	srv := startChaosServer(t, sch, 80*time.Millisecond, server.Config{
		Faults: &faults.Plan{Seed: 1, Drop: 0.05, Duplicate: 0.05},
	})
	type signature struct {
		bytes, byteErrors, lost, repaired, dups int64
		groups                                  int
	}
	session := func(run int) signature {
		tb := trace.New(256)
		cfg := chaosClient(srv.Addr(), 0, tb)
		// A full unit of repair lag: only chunks that are *truly* gone
		// trigger repair, so a merely-slow broadcast chunk on a loaded
		// machine cannot shift a chunk between the repaired and
		// duplicate columns and break run-to-run equality.
		cfg.RepairLagFrac = 1.0
		stats, err := client.Watch(cfg)
		if err != nil {
			dumpTrace(t, tb)
			t.Fatalf("run %d: %v (stats %+v)", run, err, stats)
		}
		return signature{
			bytes: stats.Bytes, byteErrors: stats.ByteErrors, lost: stats.LostChunks,
			repaired: stats.RepairedChunks, dups: stats.DuplicateChunks, groups: stats.Groups,
		}
	}
	// The repair trigger races the wall clock: a scheduler stall longer
	// than the repair lag fires a repair for a chunk still in flight and
	// shifts the signature by one (the same race the comment above
	// concedes for reorder). A seed-keyed nondeterminism would reproduce
	// in every pair of sessions, a stall artifact will not — so compare
	// up to three pairs and fail only if none of them match.
	var sigs [2]signature
	for attempt := 0; attempt < 3; attempt++ {
		sigs[0] = session(2 * attempt)
		sigs[1] = session(2*attempt + 1)
		if sigs[0] == sigs[1] {
			break
		}
		t.Logf("attempt %d: diverging stats %+v vs %+v (retrying: busy-host stall or real nondeterminism?)",
			attempt, sigs[0], sigs[1])
	}
	if sigs[0] != sigs[1] {
		t.Errorf("identical seed, diverging stats in three consecutive session pairs: %+v vs %+v", sigs[0], sigs[1])
	}
	if sigs[0].repaired == 0 {
		t.Error("seed 1 at 5% drop repaired nothing; determinism claim untested")
	}
	if srv.RepairsServed() == 0 {
		t.Error("server served no repairs")
	}
}

// TestChaosDegradedWithoutRepair: with repair off and heavy loss, the
// session must end gracefully — losses counted, bytes short by exactly
// the lost chunks, no hang, no panic.
func TestChaosDegradedWithoutRepair(t *testing.T) {
	if testing.Short() {
		t.Skip("live network test")
	}
	sch := liveScheme(t, 1, 5, 2)
	srv := startChaosServer(t, sch, 80*time.Millisecond, server.Config{
		Faults: &faults.Plan{Seed: 1, Drop: 0.25},
	})
	cfg := chaosClient(srv.Addr(), 0, nil)
	cfg.DisableRepair = true
	cfg.AllowDegraded = true
	stats, err := client.Watch(cfg)
	if err != nil {
		t.Fatalf("degraded session failed outright: %v (stats %+v)", err, stats)
	}
	if stats.LostChunks == 0 {
		t.Fatal("a 25% drop plan lost nothing")
	}
	if stats.RepairRequests != 0 {
		t.Errorf("repairs issued despite DisableRepair: %+v", stats)
	}
	if want := int64(sch.TotalUnits())*4096 - stats.LostChunks*1024; stats.Bytes != want {
		t.Errorf("bytes = %d, want %d (total minus %d lost chunks)", stats.Bytes, want, stats.LostChunks)
	}
	if srv.RepairsServed() != 0 {
		t.Errorf("server served %d repairs to a repair-disabled client", srv.RepairsServed())
	}
}

// TestControlIdleReaped: a half-open client that joins and then goes
// silent must not pin its server goroutine or its memberships forever.
func TestControlIdleReaped(t *testing.T) {
	if testing.Short() {
		t.Skip("live network test")
	}
	sch := liveScheme(t, 1, 3, 2)
	srv := startChaosServer(t, sch, 50*time.Millisecond, server.Config{
		ControlIdleTimeout: 60 * time.Millisecond,
	})
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	if err := wire.WriteControl(conn, &wire.Control{Kind: wire.KindJoin, Video: 0, Channel: 1, Port: 45678}); err != nil {
		t.Fatal(err)
	}
	if m, err := wire.ReadControl(r); err != nil || m.Kind != wire.KindJoined {
		t.Fatalf("join: %v %v", m, err)
	}
	// Go silent. The server must reap the connection: our next read sees
	// it closed, and the membership disappears.
	_ = conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	if _, err := wire.ReadControl(r); err == nil {
		t.Fatal("idle connection still open after the idle timeout")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("server never closed the idle connection")
	}
	deadline := time.Now().Add(3 * time.Second)
	for srv.Hub().TotalMembers() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("membership survived idle reaping")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRepairProtocol drives the REPAIR verb directly: a valid request
// returns exactly the bytes the broadcast would have carried; malformed
// ones are rejected without killing the connection.
func TestRepairProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("live network test")
	}
	sch := liveScheme(t, 1, 3, 2) // fragments 1,2,2
	srv := startChaosServer(t, sch, 50*time.Millisecond, server.Config{})
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)

	// Channel 2's fragment covers video bytes [1*4096, 3*4096); ask for
	// the chunk at fragment offset 1024.
	req := &wire.Repair{Video: 0, Channel: 2, Seq: 9, Offset: 1024, Length: 1024}
	if err := wire.WriteControl(conn, &wire.Control{Kind: wire.KindRepair, Repair: req}); err != nil {
		t.Fatal(err)
	}
	m, err := wire.ReadControl(r)
	if err != nil || m.Kind != wire.KindRepairOK || m.Repair == nil {
		t.Fatalf("repair: %+v %v", m, err)
	}
	if m.Repair.Channel != 2 || m.Repair.Seq != 9 || m.Repair.Offset != 1024 || len(m.Repair.Data) != 1024 {
		t.Fatalf("repair echo mismatch: %+v", m.Repair)
	}
	want := make([]byte, 1024)
	content.Fill(want, 0, 1*4096+1024)
	if !bytes.Equal(m.Repair.Data, want) {
		t.Error("repair bytes differ from the broadcast content function")
	}

	// Out-of-range and malformed repairs are errors, not disconnects.
	bad := []*wire.Control{
		{Kind: wire.KindRepair}, // no payload
		{Kind: wire.KindRepair, Repair: &wire.Repair{Video: 0, Channel: 9, Offset: 0, Length: 1024}},
		{Kind: wire.KindRepair, Repair: &wire.Repair{Video: 0, Channel: 2, Offset: 2 * 4096, Length: 1024}},
		{Kind: wire.KindRepair, Repair: &wire.Repair{Video: 0, Channel: 2, Offset: 0, Length: -5}},
	}
	for i, b := range bad {
		if err := wire.WriteControl(conn, b); err != nil {
			t.Fatal(err)
		}
		if m, err := wire.ReadControl(r); err != nil || m.Kind != wire.KindError {
			t.Errorf("bad repair %d answered with %+v %v", i, m, err)
		}
	}

	// The connection still works, and the stats count the one good repair.
	if err := wire.WriteControl(conn, &wire.Control{Kind: wire.KindStats}); err != nil {
		t.Fatal(err)
	}
	if m, err := wire.ReadControl(r); err != nil || m.Kind != wire.KindStatsOK || m.Stats.RepairsServed != 1 {
		t.Errorf("stats after repairs: %+v %v", m, err)
	}
	if srv.RepairsServed() != 1 {
		t.Errorf("RepairsServed = %d, want 1", srv.RepairsServed())
	}
}
