package server_test

import (
	"testing"
	"time"

	"skyscraper/internal/client"
	"skyscraper/internal/faults"
	"skyscraper/internal/server"
	"skyscraper/internal/trace"
	"skyscraper/internal/wire"
)

// fecClient is chaosClient with the NACK ladder left on: the FEC suite
// proves escalation ordering (stripe first, then NACK, then unicast), so
// every rung stays armed.
func fecClient(addr string, video int, tb *trace.Buffer) client.Config {
	cfg := robustClient(addr, video)
	cfg.SlackFrac = 3.0
	cfg.RepairLagFrac = 1.125
	cfg.Trace = tb
	return cfg
}

// TestFecStripeHealsIidLoss: under scattered single-datagram loss the
// parity stripe reconstructs gaps locally with zero control round trips.
// Drops on chunks whose loss deadline precedes their group's parity
// frame (the just-in-time channels' first chunks) still escalate to the
// reactive ladder — that ordering is the point — so the assertion is
// that the stripe carries real heals, not that the ladder never fires.
func TestFecStripeHealsIidLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("live network test")
	}
	sch := liveScheme(t, 1, 5, 2) // 36 chunk positions per playback
	srv := startChaosServer(t, sch, 200*time.Millisecond, server.Config{
		FecGroup: 4,
		Faults:   &faults.Plan{Seed: 3, Drop: 0.08},
	})
	tb := trace.New(256)
	stats, err := client.Watch(fecClient(srv.Addr(), 0, tb))
	if err != nil {
		dumpTrace(t, tb)
		t.Fatalf("watch under fec: %v (stats %+v)", err, stats)
	}
	if stats.ByteErrors != 0 || stats.LateChunks != 0 || stats.LostChunks != 0 {
		dumpTrace(t, tb)
		t.Fatalf("degraded under fec: %+v", stats)
	}
	if stats.FecHeals == 0 {
		dumpTrace(t, tb)
		t.Fatalf("stripe healed nothing under 8%% iid drop: %+v", stats)
	}
	if srv.ParityFramesSent() == 0 {
		t.Error("server sent no parity frames with FecGroup=4")
	}
	// Overhead bound: the schedule emits exactly one parity frame per G
	// data chunks (enforced structurally by the pacer), so the stripe's
	// byte overhead is 1/G times the per-frame ratio — which must stay
	// within the bitmap-and-count header's few extra bytes of a data
	// frame, or the ≤1/G overhead claim in the ledgers would be off.
	dataFrame := int64(wire.EncodedSize(1024))
	if perFrame := srv.ParityBytesSent() / srv.ParityFramesSent(); perFrame > dataFrame+dataFrame/8 {
		t.Errorf("parity frame averages %d bytes vs %d-byte data frames; overhead claim broken", perFrame, dataFrame)
	}
}

// TestFecRSHealsDoubleErasure: in Reed-Solomon mode the P+Q stripe
// recovers two losses per group, so a loss rate that defeats the XOR
// stripe still finishes without escalation.
func TestFecRSHealsDoubleErasure(t *testing.T) {
	if testing.Short() {
		t.Skip("live network test")
	}
	sch := liveScheme(t, 1, 5, 2)
	srv := startChaosServer(t, sch, 80*time.Millisecond, server.Config{
		FecGroup: 8,
		FecMode:  wire.FecModeRS,
		Faults:   &faults.Plan{Seed: 9, Drop: 0.12},
	})
	tb := trace.New(256)
	stats, err := client.Watch(fecClient(srv.Addr(), 0, tb))
	if err != nil {
		dumpTrace(t, tb)
		t.Fatalf("watch under rs fec: %v (stats %+v)", err, stats)
	}
	if stats.ByteErrors != 0 || stats.LateChunks != 0 || stats.LostChunks != 0 {
		dumpTrace(t, tb)
		t.Fatalf("degraded under rs fec: %+v", stats)
	}
	if stats.FecHeals == 0 {
		t.Fatalf("rs stripe healed nothing under 12%% drop: %+v", stats)
	}
}

// TestFecBurstDefeatsStripeLadderEngages: a Gilbert–Elliott burst takes
// out more chunks per group than the stripe covers; the hold expires,
// the defeat is counted, and the NACK/unicast ladder — anchored at
// stripe-defeat time — still restores the session.
func TestFecBurstDefeatsStripeLadderEngages(t *testing.T) {
	if testing.Short() {
		t.Skip("live network test")
	}
	sch := liveScheme(t, 1, 5, 2)
	srv := startChaosServer(t, sch, 80*time.Millisecond, server.Config{
		FecGroup: 8,
		Faults: &faults.Plan{
			Seed: 5, ChunkBytes: 1024,
			BurstEnter: 0.06, BurstExit: 0.35, BurstDrop: 1,
		},
	})
	tb := trace.New(512)
	stats, err := client.Watch(fecClient(srv.Addr(), 0, tb))
	if err != nil {
		dumpTrace(t, tb)
		t.Fatalf("watch under burst: %v (stats %+v)", err, stats)
	}
	if stats.ByteErrors != 0 || stats.LateChunks != 0 || stats.LostChunks != 0 {
		dumpTrace(t, tb)
		t.Fatalf("degraded under burst: %+v", stats)
	}
	if stats.StripeDefeats == 0 {
		t.Fatalf("burst plan never defeated the stripe: %+v (injector %+v)", stats, srv.Injector().Counts())
	}
	if stats.NacksSent+stats.RepairedChunks == 0 {
		t.Errorf("stripe defeated but the reactive ladder never engaged: %+v", stats)
	}
}

// TestFecOffNoParityOnWire is the FEC-off golden gate's wire half: with
// FecGroup unset the server emits no parity frames and the client books
// no stripe activity — the legacy broadcast is bit-identical (the
// recovery-path golden gates live in the existing chaos and viewer
// equivalence suites, which run with FEC off).
func TestFecOffNoParityOnWire(t *testing.T) {
	if testing.Short() {
		t.Skip("live network test")
	}
	sch := liveScheme(t, 1, 5, 2)
	srv := startChaosServer(t, sch, 80*time.Millisecond, server.Config{
		Faults: &faults.Plan{Seed: 1, Drop: 0.05},
	})
	tb := trace.New(256)
	stats, err := client.Watch(fecClient(srv.Addr(), 0, tb))
	if err != nil {
		dumpTrace(t, tb)
		t.Fatalf("watch: %v (stats %+v)", err, stats)
	}
	if srv.ParityFramesSent() != 0 || srv.ParityBytesSent() != 0 {
		t.Errorf("FEC-off server sent %d parity frames (%d bytes)",
			srv.ParityFramesSent(), srv.ParityBytesSent())
	}
	if stats.FecHeals != 0 || stats.StripeDefeats != 0 {
		t.Errorf("FEC-off client booked stripe activity: %+v", stats)
	}
	if stats.NacksSent+stats.RepairedChunks+stats.MulticastRepairs == 0 {
		t.Error("no reactive recovery at 5% drop; the FEC-off gate is vacuous")
	}
}
