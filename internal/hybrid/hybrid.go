// Package hybrid implements the architecture the paper's introduction
// singles out as best (citing Dan et al.): "a fraction of the server
// channels is reserved and preallocated for periodic broadcast of the
// popular videos. The remaining channels are used to serve the rest of the
// videos using some scheduled multicast technique."
//
// Given a server bandwidth and a Zipf catalog, the package partitions
// channels between a Skyscraper Broadcasting hot set and an MQL batching
// tail, evaluates a partition against a concrete request stream, and
// searches the partition space for the one minimizing expected service
// latency.
package hybrid

import (
	"fmt"
	"math"

	"skyscraper/internal/batch"
	"skyscraper/internal/catalog"
	"skyscraper/internal/core"
	"skyscraper/internal/metrics"
	"skyscraper/internal/sim"
	"skyscraper/internal/vod"
	"skyscraper/internal/workload"
)

// Plan is one hot/cold partition of the server's channels.
type Plan struct {
	// HotTitles is the catalog prefix broadcast with SB; 0 means a pure
	// batching system.
	HotTitles int
	// Width is the skyscraper width of the broadcast side.
	Width int64
	// SB is the broadcast scheme (nil when HotTitles is 0).
	SB *core.Scheme
	// BatchChannels is what remains for scheduled multicast.
	BatchChannels int
	// HotDemandFrac is the fraction of demand landing on the hot set.
	HotDemandFrac float64
}

// String summarizes the plan.
func (p *Plan) String() string {
	if p.SB == nil {
		return fmt.Sprintf("hybrid{pure batching, %d channels}", p.BatchChannels)
	}
	return fmt.Sprintf("hybrid{hot=%d W=%d K=%d (%d ch) + batch %d ch, %.0f%% demand broadcast}",
		p.HotTitles, p.Width, p.SB.K(), p.SB.ServerChannelsUsed(), p.BatchChannels, 100*p.HotDemandFrac)
}

// Build constructs the plan that dedicates hotTitles catalog prefixes to
// SB with the given width, handing every remaining channel to batching.
// hotChannels is the channel budget for the broadcast side (it is rounded
// down to a multiple of hotTitles); pass 0 to size it proportionally to
// the hot set's demand share, which balances queueing pressure between the
// two sides. Build fails when the bandwidth cannot support at least one
// channel per hot video plus one batching channel for a non-empty tail.
func Build(serverMbps float64, cat *catalog.Catalog, hotTitles int, width int64, hotChannels int) (*Plan, error) {
	if cat == nil {
		return nil, fmt.Errorf("hybrid: nil catalog")
	}
	if hotTitles < 0 || hotTitles > cat.Len() {
		return nil, fmt.Errorf("hybrid: hot set %d outside catalog 0..%d", hotTitles, cat.Len())
	}
	rate := cat.Video(0).RateMbps
	length := cat.Video(0).LengthMin
	total := int(serverMbps / rate)
	plan := &Plan{HotTitles: hotTitles, Width: width, HotDemandFrac: cat.CumulativeProb(hotTitles)}
	if hotTitles > 0 {
		reserve := 0
		if hotTitles < cat.Len() {
			reserve = 1
		}
		if hotChannels <= 0 {
			hotChannels = int(float64(total) * plan.HotDemandFrac)
		}
		if hotChannels > total-reserve {
			hotChannels = total - reserve
		}
		k := hotChannels / hotTitles
		if k < 1 {
			return nil, fmt.Errorf("hybrid: %d hot channels cannot broadcast %d titles", hotChannels, hotTitles)
		}
		cfg := vod.Config{
			ServerMbps: float64(k*hotTitles) * rate,
			Videos:     hotTitles,
			LengthMin:  length,
			RateMbps:   rate,
		}
		sb, err := core.New(cfg, width)
		if err != nil {
			return nil, fmt.Errorf("hybrid: broadcast side: %w", err)
		}
		plan.SB = sb
	}
	used := 0
	if plan.SB != nil {
		used = plan.SB.ServerChannelsUsed()
	}
	plan.BatchChannels = total - used
	if hotTitles < cat.Len() && plan.BatchChannels < 1 {
		return nil, fmt.Errorf("hybrid: no channels left for the %d-title tail", cat.Len()-hotTitles)
	}
	return plan, nil
}

// Report is a plan's measured performance over a request stream.
type Report struct {
	Plan *Plan
	// Hot and Cold summarize waiting times (minutes) on each side; All
	// combines them (reneged cold requests are excluded from All, and
	// counted in Reneged).
	Hot, Cold, All metrics.Summary
	// Served and Reneged count requests by outcome.
	Served, Reneged int
}

// Evaluate plays a request stream against the plan: hot requests are
// simulated individually under SB (their wait is deterministic given the
// arrival phase), cold requests run through the MQL batching server.
func Evaluate(plan *Plan, cat *catalog.Catalog, reqs []workload.Request) (*Report, error) {
	if plan == nil || cat == nil {
		return nil, fmt.Errorf("hybrid: nil plan or catalog")
	}
	rep := &Report{Plan: plan}
	var sbSim *sim.SB
	if plan.SB != nil {
		sbSim = sim.NewSB(plan.SB)
	}
	var coldReqs []workload.Request
	for _, r := range reqs {
		if r.VideoRank < plan.HotTitles {
			res, err := sbSim.Client(r.ArrivalMin, r.VideoRank)
			if err != nil {
				return nil, fmt.Errorf("hybrid: hot request %d: %w", r.ID, err)
			}
			rep.Hot.Observe(res.WaitMin)
			rep.All.Observe(res.WaitMin)
			rep.Served++
			continue
		}
		r.VideoRank -= plan.HotTitles
		coldReqs = append(coldReqs, r)
	}
	if len(coldReqs) > 0 {
		tail := cat.Len() - plan.HotTitles
		probs := make([]float64, tail)
		for i := range probs {
			probs[i] = cat.Prob(plan.HotTitles + i)
		}
		st, err := batch.Run(batch.ServerConfig{
			Channels:   plan.BatchChannels,
			Videos:     tail,
			LengthMin:  cat.Video(0).LengthMin,
			Popularity: probs,
		}, batch.MQL{}, coldReqs)
		if err != nil {
			return nil, fmt.Errorf("hybrid: cold side: %w", err)
		}
		rep.Cold = st.WaitMin
		rep.Served += st.Served
		rep.Reneged += st.Reneged
		rep.All.Merge(&st.WaitMin)
	}
	return rep, nil
}

// Optimize searches hot-set sizes (and the width ladder) for the plan
// minimizing the mean wait over the given request stream. It evaluates
// every candidate by full simulation — the stream should be a
// representative sample, not the production feed.
func Optimize(serverMbps float64, cat *catalog.Catalog, reqs []workload.Request, widths []int64) (*Plan, *Report, error) {
	if len(widths) == 0 {
		widths = []int64{2, 12, 52}
	}
	var bestPlan *Plan
	var bestRep *Report
	best := math.Inf(1)
	total := int(serverMbps / cat.Video(0).RateMbps)
	try := func(hot int, w int64, hotCh int) error {
		plan, err := Build(serverMbps, cat, hot, w, hotCh)
		if err != nil {
			return nil // infeasible partitions are skipped, not fatal
		}
		rep, err := Evaluate(plan, cat, reqs)
		if err != nil {
			return err
		}
		// Penalize reneging: a lost request is a full-length wait.
		score := rep.All.Sum() + float64(rep.Reneged)*cat.Video(0).LengthMin
		score /= float64(rep.Served + rep.Reneged)
		if score < best {
			best, bestPlan, bestRep = score, plan, rep
		}
		return nil
	}
	if err := try(0, 0, 0); err != nil {
		return nil, nil, err
	}
	candidates := []int{}
	for hot := 1; hot < cat.Len(); hot *= 2 {
		candidates = append(candidates, hot)
	}
	candidates = append(candidates, cat.Len()) // whole-library broadcast
	for _, hot := range candidates {
		share := cat.CumulativeProb(hot)
		for _, w := range widths {
			// Sweep the hot side's channel budget around its
			// demand-proportional share.
			for _, boost := range []float64{0.5, 1, 1.5, 2} {
				hotCh := int(float64(total) * share * boost)
				if err := try(hot, w, hotCh); err != nil {
					return nil, nil, err
				}
			}
		}
	}
	if bestPlan == nil {
		return nil, nil, fmt.Errorf("hybrid: no feasible plan for %g Mbit/s over %d titles", serverMbps, cat.Len())
	}
	return bestPlan, bestRep, nil
}
