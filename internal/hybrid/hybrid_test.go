package hybrid

import (
	"strings"
	"testing"

	"skyscraper/internal/catalog"
	"skyscraper/internal/workload"
)

func testCatalog(t *testing.T, n int) *catalog.Catalog {
	t.Helper()
	c, err := catalog.New(n, catalog.DefaultSkew, 120, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func testRequests(t *testing.T, cat *catalog.Catalog, n int, rate, patience float64) []workload.Request {
	t.Helper()
	g, err := workload.NewGenerator(workload.Config{RatePerMin: rate, Seed: 11, MeanPatienceMin: patience}, cat)
	if err != nil {
		t.Fatal(err)
	}
	return g.Take(n)
}

func TestBuildAccounting(t *testing.T) {
	cat := testCatalog(t, 50)
	plan, err := Build(600, cat, 10, 52, 0)
	if err != nil {
		t.Fatal(err)
	}
	total := int(600 / 1.5)
	if plan.SB == nil {
		t.Fatal("no broadcast side")
	}
	if got := plan.SB.ServerChannelsUsed() + plan.BatchChannels; got != total {
		t.Errorf("channels %d + %d != %d", plan.SB.ServerChannelsUsed(), plan.BatchChannels, total)
	}
	if plan.BatchChannels < 1 {
		t.Error("no batching channels despite a tail")
	}
	if plan.HotDemandFrac <= 0 || plan.HotDemandFrac >= 1 {
		t.Errorf("hot demand fraction %v", plan.HotDemandFrac)
	}
	if !strings.Contains(plan.String(), "hot=10") {
		t.Errorf("String() = %q", plan.String())
	}
}

func TestBuildPureBatching(t *testing.T) {
	cat := testCatalog(t, 20)
	plan, err := Build(150, cat, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.SB != nil || plan.BatchChannels != 100 {
		t.Errorf("pure batching plan: %+v", plan)
	}
	if !strings.Contains(plan.String(), "pure batching") {
		t.Errorf("String() = %q", plan.String())
	}
}

func TestBuildWholeLibraryBroadcast(t *testing.T) {
	cat := testCatalog(t, 5)
	plan, err := Build(150, cat, 5, 2, 100) // all 100 channels for 5 titles: K = 20
	if err != nil {
		t.Fatal(err)
	}
	if plan.SB.K() != 20 {
		t.Errorf("K = %d, want 20", plan.SB.K())
	}
	if plan.HotDemandFrac != 1 {
		t.Errorf("whole-library demand fraction %v", plan.HotDemandFrac)
	}
}

func TestBuildErrors(t *testing.T) {
	cat := testCatalog(t, 50)
	if _, err := Build(600, nil, 5, 2, 0); err == nil {
		t.Error("nil catalog accepted")
	}
	if _, err := Build(600, cat, 51, 2, 0); err == nil {
		t.Error("hot set beyond catalog accepted")
	}
	if _, err := Build(600, cat, -1, 2, 0); err == nil {
		t.Error("negative hot set accepted")
	}
	// 10 channels cannot broadcast 40 titles.
	if _, err := Build(15, cat, 40, 2, 0); err == nil {
		t.Error("overcommitted broadcast accepted")
	}
}

func TestEvaluateSplitsTraffic(t *testing.T) {
	cat := testCatalog(t, 30)
	plan, err := Build(450, cat, 8, 12, 0)
	if err != nil {
		t.Fatal(err)
	}
	reqs := testRequests(t, cat, 600, 2, 0)
	rep, err := Evaluate(plan, cat, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Hot.Count() == 0 || rep.Cold.Count() == 0 {
		t.Fatalf("traffic not split: hot %d cold %d", rep.Hot.Count(), rep.Cold.Count())
	}
	if rep.Hot.Count()+rep.Cold.Count() != 600 {
		t.Errorf("requests lost: %d + %d != 600", rep.Hot.Count(), rep.Cold.Count())
	}
	if rep.All.Count() != rep.Served {
		t.Errorf("All has %d waits for %d served", rep.All.Count(), rep.Served)
	}
	// The broadcast side honors its hard bound.
	if rep.Hot.Max() > plan.SB.AccessLatencyMin()+1e-9 {
		t.Errorf("hot wait %v exceeds SB bound %v", rep.Hot.Max(), plan.SB.AccessLatencyMin())
	}
	// The broadcast side's bound is sub-minute at this scale, while the
	// cold side has no bound at all (only averages).
	if rep.Hot.Max() >= 1 {
		t.Errorf("hot worst wait %v, want sub-minute", rep.Hot.Max())
	}
}

func TestOptimizePrefersBroadcastUnderSkewedLoad(t *testing.T) {
	cat := testCatalog(t, 40)
	reqs := testRequests(t, cat, 800, 4, 60)
	plan, rep, err := Optimize(600, cat, reqs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.HotTitles == 0 {
		t.Error("optimizer chose pure batching under heavy skewed load")
	}
	if rep == nil || rep.Served == 0 {
		t.Error("empty report")
	}
	// The chosen plan must beat pure batching on the same stream.
	pure, err := Build(600, cat, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	pureRep, err := Evaluate(pure, cat, reqs)
	if err != nil {
		t.Fatal(err)
	}
	score := func(r *Report) float64 {
		return (r.All.Sum() + float64(r.Reneged)*120) / float64(r.Served+r.Reneged)
	}
	if score(rep) > score(pureRep) {
		t.Errorf("optimizer score %v worse than pure batching %v", score(rep), score(pureRep))
	}
}

func TestEvaluateErrors(t *testing.T) {
	cat := testCatalog(t, 10)
	if _, err := Evaluate(nil, cat, nil); err == nil {
		t.Error("nil plan accepted")
	}
	plan, err := Build(300, cat, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Evaluate(plan, nil, nil); err == nil {
		t.Error("nil catalog accepted")
	}
}
