package staggered

import (
	"math"
	"strings"
	"testing"

	"skyscraper/internal/vod"
)

func TestLinearLatency(t *testing.T) {
	// Section 1's critique: "the service latency can only be improved
	// linearly with the increases in the server bandwidth."
	s1, err := New(vod.DefaultConfig(150)) // N = 10
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(vod.DefaultConfig(300)) // N = 20
	if err != nil {
		t.Fatal(err)
	}
	if got := s1.AccessLatencyMin(); math.Abs(got-12) > 1e-12 {
		t.Errorf("latency at N=10 = %v, want 12", got)
	}
	if r := s1.AccessLatencyMin() / s2.AccessLatencyMin(); math.Abs(r-2) > 1e-12 {
		t.Errorf("doubling B improved latency %vx, want exactly 2x (linear)", r)
	}
}

func TestNoClientCost(t *testing.T) {
	s, err := New(vod.DefaultConfig(300))
	if err != nil {
		t.Fatal(err)
	}
	if s.BufferMbit() != 0 {
		t.Errorf("buffer = %v, want 0", s.BufferMbit())
	}
	if s.DiskBandwidthMbps() != 1.5 {
		t.Errorf("disk bw = %v, want b", s.DiskBandwidthMbps())
	}
	if s.Streams() != 20 {
		t.Errorf("streams = %d, want 20", s.Streams())
	}
	if s.Name() != "Staggered" {
		t.Errorf("name = %q", s.Name())
	}
	if !strings.Contains(s.String(), "N=20") {
		t.Errorf("String() = %q", s.String())
	}
	var _ vod.Performer = s
}

func TestBadConfig(t *testing.T) {
	if _, err := New(vod.Config{}); err == nil {
		t.Error("New accepted zero config")
	}
}
