// Package staggered implements the earliest periodic broadcast scheme the
// paper discusses (Section 1, citing Dan, Sitaram and Shahabuddin): each
// video is broadcast in its entirety on N = floor(B/(b*M)) channels whose
// start times are staggered by D/N minutes. Service latency improves only
// linearly with server bandwidth — the weakness that motivated the pyramid
// family and Skyscraper Broadcasting — but clients need no extra disk at
// all: they tune to one stream and play it straight through.
package staggered

import (
	"fmt"

	"skyscraper/internal/vod"
)

// Scheme is an instantiated staggered ("plain periodic") broadcast
// configuration.
type Scheme struct {
	cfg vod.Config
	n   int
}

// New builds the staggered scheme for cfg: N = floor(B/(b*M)) phase-shifted
// full-file streams per video.
func New(cfg vod.Config) (*Scheme, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Scheme{cfg: cfg, n: cfg.ChannelsPerVideo()}, nil
}

// Config returns the system parameters the scheme was built for.
func (s *Scheme) Config() vod.Config { return s.cfg }

// Streams returns N, the number of staggered streams per video.
func (s *Scheme) Streams() int { return s.n }

// BatchingIntervalMin returns the stagger between consecutive streams of
// one video, D/N minutes — the paper's batching interval "B minutes".
func (s *Scheme) BatchingIntervalMin() float64 {
	return s.cfg.LengthMin / float64(s.n)
}

// Name implements vod.Performer.
func (s *Scheme) Name() string { return "Staggered" }

// AccessLatencyMin implements vod.Performer: the worst wait is one full
// batching interval.
func (s *Scheme) AccessLatencyMin() float64 { return s.BatchingIntervalMin() }

// BufferMbit implements vod.Performer: a staggered client consumes its
// stream directly and buffers nothing.
func (s *Scheme) BufferMbit() float64 { return 0 }

// DiskBandwidthMbps implements vod.Performer: one stream at the display
// rate passes through the client.
func (s *Scheme) DiskBandwidthMbps() float64 { return s.cfg.RateMbps }

// String summarizes the scheme.
func (s *Scheme) String() string {
	return fmt.Sprintf("Staggered{N=%d interval=%.2fmin}", s.n, s.BatchingIntervalMin())
}
