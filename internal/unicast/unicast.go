// Package unicast implements the user-centered baseline the paper's
// introduction argues against: "dedicating a stream for each viewer will
// quickly exhaust the network-I/O bandwidth at the server communication
// ports" (Section 1, citing the bottleneck observed in Time Warner's Full
// Service Network and Microsoft's Tiger fileserver). Each admitted request
// occupies one server channel for the whole video; arrivals finding every
// channel busy are refused (the classic Erlang loss model VoD trials ran
// into). It exists so the broadcast schemes' motivation is reproducible,
// not just quoted.
package unicast

import (
	"fmt"

	"skyscraper/internal/des"
	"skyscraper/internal/metrics"
	"skyscraper/internal/workload"
)

// Stats reports a unicast run.
type Stats struct {
	// Served requests got a dedicated channel immediately; Blocked found
	// none free.
	Served, Blocked int
	// BusyFrac is the time-averaged fraction of channels occupied.
	BusyFrac float64
	// PeakBusy is the maximum simultaneous streams.
	PeakBusy int
}

// BlockingProb returns the fraction of requests refused.
func (s *Stats) BlockingProb() float64 {
	if s.Served+s.Blocked == 0 {
		return 0
	}
	return float64(s.Blocked) / float64(s.Served+s.Blocked)
}

// RepairLoadStats estimates the unicast burden that chunk repair places on
// a broadcast server, in the same channel currency as Run.
type RepairLoadStats struct {
	// RequestsPerSession is the expected number of repair round trips one
	// viewing session issues.
	RequestsPerSession float64
	// StreamFrac is the expected fraction of one full unicast stream the
	// repairs amount to: repaired bytes over video bytes. It equals the
	// loss rate, which is the point — at loss rate p, repair costs p of a
	// dedicated channel, while the user-centered baseline costs a whole
	// one.
	StreamFrac float64
	// ChannelsPer100 is the dedicated-channel equivalent of repairing 100
	// concurrent sessions (100 * StreamFrac).
	ChannelsPer100 float64
}

// RepairLoad estimates the unicast repair load of the loss-recovery path:
// at chunk-loss probability p, a session covering chunksPerVideo chunks
// requests p*chunksPerVideo repairs, each carrying one chunk — so the
// server spends only a fraction p of a dedicated stream per viewer. This
// quantifies why a repair path does not resurrect the bandwidth bottleneck
// the paper's Section 1 attributes to user-centered (one stream per
// viewer) service.
func RepairLoad(p float64, chunksPerVideo int) (*RepairLoadStats, error) {
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("unicast: loss probability %v outside [0, 1]", p)
	}
	if chunksPerVideo <= 0 {
		return nil, fmt.Errorf("unicast: chunksPerVideo %d must be positive", chunksPerVideo)
	}
	reqs := p * float64(chunksPerVideo)
	return &RepairLoadStats{
		RequestsPerSession: reqs,
		StreamFrac:         p,
		ChannelsPer100:     100 * p,
	}, nil
}

// RepairBandwidthBytes converts the RepairLoad estimate into a concrete
// repair-plane budget in bytes per second, the unit of the live server's
// Config.RepairBandwidth token bucket: sessions concurrent viewers, each
// losing fraction p of chunksPerVideo chunks of chunkBytes each, spread
// over the playbackSeconds a video takes to stream. Provisioning the
// bucket at (a small multiple of) this rate admits the expected repair
// demand while bounding the unicast bytes a correlated-loss burst can
// extract from the server.
func RepairBandwidthBytes(p float64, chunksPerVideo, chunkBytes int, playbackSeconds float64, sessions int) (float64, error) {
	load, err := RepairLoad(p, chunksPerVideo)
	if err != nil {
		return 0, err
	}
	if chunkBytes <= 0 {
		return 0, fmt.Errorf("unicast: chunkBytes %d must be positive", chunkBytes)
	}
	if playbackSeconds <= 0 {
		return 0, fmt.Errorf("unicast: playbackSeconds %v must be positive", playbackSeconds)
	}
	if sessions <= 0 {
		return 0, fmt.Errorf("unicast: sessions %d must be positive", sessions)
	}
	perSession := load.RequestsPerSession * float64(chunkBytes) / playbackSeconds
	return perSession * float64(sessions), nil
}

// Run simulates a user-centered server: channels dedicated streams, each
// request served instantly or refused.
func Run(channels int, lengthMin float64, reqs []workload.Request) (*Stats, error) {
	if channels <= 0 {
		return nil, fmt.Errorf("unicast: need at least one channel, got %d", channels)
	}
	if lengthMin <= 0 {
		return nil, fmt.Errorf("unicast: video length %v must be positive", lengthMin)
	}
	var (
		sim  des.Sim
		st   Stats
		busy metrics.Gauge
		used int
		last float64
	)
	for _, r := range reqs {
		if r.ArrivalMin < last {
			return nil, fmt.Errorf("unicast: request %d arrives at %v before its predecessor", r.ID, r.ArrivalMin)
		}
		last = r.ArrivalMin
		sim.At(r.ArrivalMin, func(now float64) {
			if used == channels {
				st.Blocked++
				return
			}
			used++
			st.Served++
			if used > st.PeakBusy {
				st.PeakBusy = used
			}
			busy.Set(now, float64(used))
			sim.After(lengthMin, func(end float64) {
				used--
				busy.Set(end, float64(used))
			})
		})
	}
	sim.RunAll()
	st.BusyFrac = busy.TimeAverage(sim.Now()) / float64(channels)
	return &st, nil
}
