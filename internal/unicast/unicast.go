// Package unicast implements the user-centered baseline the paper's
// introduction argues against: "dedicating a stream for each viewer will
// quickly exhaust the network-I/O bandwidth at the server communication
// ports" (Section 1, citing the bottleneck observed in Time Warner's Full
// Service Network and Microsoft's Tiger fileserver). Each admitted request
// occupies one server channel for the whole video; arrivals finding every
// channel busy are refused (the classic Erlang loss model VoD trials ran
// into). It exists so the broadcast schemes' motivation is reproducible,
// not just quoted.
package unicast

import (
	"fmt"

	"skyscraper/internal/des"
	"skyscraper/internal/metrics"
	"skyscraper/internal/workload"
)

// Stats reports a unicast run.
type Stats struct {
	// Served requests got a dedicated channel immediately; Blocked found
	// none free.
	Served, Blocked int
	// BusyFrac is the time-averaged fraction of channels occupied.
	BusyFrac float64
	// PeakBusy is the maximum simultaneous streams.
	PeakBusy int
}

// BlockingProb returns the fraction of requests refused.
func (s *Stats) BlockingProb() float64 {
	if s.Served+s.Blocked == 0 {
		return 0
	}
	return float64(s.Blocked) / float64(s.Served+s.Blocked)
}

// Run simulates a user-centered server: channels dedicated streams, each
// request served instantly or refused.
func Run(channels int, lengthMin float64, reqs []workload.Request) (*Stats, error) {
	if channels <= 0 {
		return nil, fmt.Errorf("unicast: need at least one channel, got %d", channels)
	}
	if lengthMin <= 0 {
		return nil, fmt.Errorf("unicast: video length %v must be positive", lengthMin)
	}
	var (
		sim  des.Sim
		st   Stats
		busy metrics.Gauge
		used int
		last float64
	)
	for _, r := range reqs {
		if r.ArrivalMin < last {
			return nil, fmt.Errorf("unicast: request %d arrives at %v before its predecessor", r.ID, r.ArrivalMin)
		}
		last = r.ArrivalMin
		sim.At(r.ArrivalMin, func(now float64) {
			if used == channels {
				st.Blocked++
				return
			}
			used++
			st.Served++
			if used > st.PeakBusy {
				st.PeakBusy = used
			}
			busy.Set(now, float64(used))
			sim.After(lengthMin, func(end float64) {
				used--
				busy.Set(end, float64(used))
			})
		})
	}
	sim.RunAll()
	st.BusyFrac = busy.TimeAverage(sim.Now()) / float64(channels)
	return &st, nil
}
