package unicast

import (
	"math"
	"testing"

	"skyscraper/internal/catalog"
	"skyscraper/internal/workload"
)

func reqs(t *testing.T, n int, rate float64, seed uint64) []workload.Request {
	t.Helper()
	cat, err := catalog.New(20, catalog.DefaultSkew, 120, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	g, err := workload.NewGenerator(workload.Config{RatePerMin: rate, Seed: seed}, cat)
	if err != nil {
		t.Fatal(err)
	}
	return g.Take(n)
}

func TestNoBlockingUnderLightLoad(t *testing.T) {
	// Offered load = rate * length = 0.2 * 120 = 24 Erlangs against 100
	// channels: essentially no blocking.
	st, err := Run(100, 120, reqs(t, 500, 0.2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if st.BlockingProb() > 0.01 {
		t.Errorf("blocking %v at 24 Erlangs on 100 channels", st.BlockingProb())
	}
	if st.Served+st.Blocked != 500 {
		t.Errorf("requests unaccounted: %d + %d", st.Served, st.Blocked)
	}
}

// TestNetworkIOBottleneck reproduces the paper's Section 1 motivation: at
// metropolitan demand, a stream-per-viewer server refuses a large share of
// its audience, while a broadcast server at the same bandwidth has zero
// refusals by construction (its channel count is fixed regardless of
// viewers).
func TestNetworkIOBottleneck(t *testing.T) {
	// 200 channels (= 300 Mbit/s at 1.5 Mbit/s), 4 requests/minute,
	// 120-minute videos: 480 Erlangs offered against 200 servers.
	st, err := Run(200, 120, reqs(t, 3000, 4, 2))
	if err != nil {
		t.Fatal(err)
	}
	if st.BlockingProb() < 0.5 {
		t.Errorf("blocking %v, want the paper's bottleneck (> 0.5 at 2.4x overload)", st.BlockingProb())
	}
	if st.PeakBusy != 200 {
		t.Errorf("peak busy %d, want saturation at 200", st.PeakBusy)
	}
	// The time average includes the initial fill ramp and the final
	// drain, so "saturated" means well above 0.8, not 1.0.
	if st.BusyFrac < 0.8 {
		t.Errorf("busy fraction %v, want near saturation", st.BusyFrac)
	}
}

func TestErlangShape(t *testing.T) {
	// Blocking must be monotone in offered load.
	prev := -1.0
	for _, rate := range []float64{0.5, 1, 2, 4} {
		st, err := Run(100, 120, reqs(t, 2000, rate, 3))
		if err != nil {
			t.Fatal(err)
		}
		if p := st.BlockingProb(); p < prev-0.02 {
			t.Errorf("blocking not monotone: %v after %v at rate %v", p, prev, rate)
		} else {
			prev = p
		}
	}
}

func TestValidation(t *testing.T) {
	if _, err := Run(0, 120, nil); err == nil {
		t.Error("accepted 0 channels")
	}
	if _, err := Run(1, 0, nil); err == nil {
		t.Error("accepted 0 length")
	}
	unordered := []workload.Request{{ID: 0, ArrivalMin: 5}, {ID: 1, ArrivalMin: 1}}
	if _, err := Run(1, 10, unordered); err == nil {
		t.Error("accepted unordered arrivals")
	}
}

func TestBlockingProbEmpty(t *testing.T) {
	var st Stats
	if st.BlockingProb() != 0 {
		t.Error("empty stats blocking not 0")
	}
	if got, err := Run(5, 10, nil); err != nil || got.Served != 0 {
		t.Errorf("empty run: %+v %v", got, err)
	}
	if math.IsNaN((&Stats{Served: 1}).BlockingProb()) {
		t.Error("NaN blocking")
	}
}

func TestRepairLoad(t *testing.T) {
	// At 5% chunk loss over a 1200-chunk video, repair costs 60 unicast
	// round trips and 5% of a dedicated stream per viewer — versus the
	// 100% a user-centered server pays.
	st, err := RepairLoad(0.05, 1200)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.RequestsPerSession-60) > 1e-9 {
		t.Errorf("RequestsPerSession = %v, want 60", st.RequestsPerSession)
	}
	if math.Abs(st.StreamFrac-0.05) > 1e-9 {
		t.Errorf("StreamFrac = %v, want 0.05", st.StreamFrac)
	}
	if math.Abs(st.ChannelsPer100-5) > 1e-9 {
		t.Errorf("ChannelsPer100 = %v, want 5", st.ChannelsPer100)
	}
	// Lossless channel: repair is free.
	if st, err = RepairLoad(0, 100); err != nil || st.RequestsPerSession != 0 || st.StreamFrac != 0 {
		t.Errorf("lossless: %+v %v", st, err)
	}
}

func TestRepairBandwidthBytes(t *testing.T) {
	// 5% loss, 1200 chunks of 1 KiB, a 600-second playback, 100 viewers:
	// 60 repairs/session * 1024 B / 600 s * 100 = 10240 B/s.
	bps, err := RepairBandwidthBytes(0.05, 1200, 1024, 600, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bps-10240) > 1e-9 {
		t.Errorf("RepairBandwidthBytes = %v, want 10240", bps)
	}
	// Lossless: no repair bandwidth at all.
	if bps, err = RepairBandwidthBytes(0, 1200, 1024, 600, 100); err != nil || bps != 0 {
		t.Errorf("lossless: %v, %v", bps, err)
	}
	for _, bad := range [][5]float64{
		{-0.1, 1200, 1024, 600, 100},
		{0.05, 0, 1024, 600, 100},
		{0.05, 1200, 0, 600, 100},
		{0.05, 1200, 1024, 0, 100},
		{0.05, 1200, 1024, 600, 0},
	} {
		if _, err := RepairBandwidthBytes(bad[0], int(bad[1]), int(bad[2]), bad[3], int(bad[4])); err == nil {
			t.Errorf("RepairBandwidthBytes(%v) accepted invalid input", bad)
		}
	}
}

func TestRepairLoadValidation(t *testing.T) {
	if _, err := RepairLoad(-0.1, 100); err == nil {
		t.Error("accepted negative loss rate")
	}
	if _, err := RepairLoad(1.1, 100); err == nil {
		t.Error("accepted loss rate above 1")
	}
	if _, err := RepairLoad(0.1, 0); err == nil {
		t.Error("accepted 0 chunks")
	}
}
