package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"skyscraper/internal/vod"
)

// allPhases runs fn for every distinct playback-start phase of the scheme,
// capped for very long periods.
func allPhases(t *testing.T, s *Scheme, cap int64, fn func(phase int64, plan *Schedule, bp *BufferProfile)) {
	t.Helper()
	period := s.PhasePeriod()
	stride := int64(1)
	if cap > 0 && period > cap {
		stride = (period + cap - 1) / cap
	}
	for phase := int64(0); phase < period; phase += stride {
		plan, err := s.PlanSchedule(phase)
		if err != nil {
			t.Fatalf("phase %d: %v", phase, err)
		}
		bp, err := s.Profile(plan)
		if err != nil {
			t.Fatalf("phase %d: %v", phase, err)
		}
		fn(phase, plan, bp)
	}
}

// TestJitterFreeAllPhases is the paper's central correctness claim
// (Section 4): for every arrival phase the player never starves and every
// group is tuned by its deadline.
func TestJitterFreeAllPhases(t *testing.T) {
	for _, tc := range []struct {
		serverMbps float64
		width      int64
	}{
		{100, 2}, {150, 5}, {320, 2}, {320, 12}, {320, 52},
		{600, 2}, {600, 52}, {600, 0}, {45, 2}, {15, 1},
	} {
		s := mustScheme(t, tc.serverMbps, tc.width)
		allPhases(t, s, 2000, func(phase int64, plan *Schedule, bp *BufferProfile) {
			if bp.Final() != 0 {
				t.Fatalf("B=%v W=%d phase %d: buffer not drained at end: %d",
					tc.serverMbps, tc.width, phase, bp.Final())
			}
		})
	}
}

// TestTwoLoadersSuffice asserts the Section 4 argument that a client never
// needs a third concurrent download stream.
func TestTwoLoadersSuffice(t *testing.T) {
	for _, tc := range []struct {
		serverMbps float64
		width      int64
	}{
		{320, 2}, {320, 52}, {600, 52}, {600, 0}, {100, 5},
	} {
		s := mustScheme(t, tc.serverMbps, tc.width)
		allPhases(t, s, 4000, func(phase int64, plan *Schedule, _ *BufferProfile) {
			if n := plan.MaxConcurrentDownloads(); n > 2 {
				t.Fatalf("B=%v W=%d phase %d: %d concurrent downloads", tc.serverMbps, tc.width, phase, n)
			}
		})
	}
}

// TestBufferBoundTight asserts the storage analysis of Section 4: the
// worst-case buffer over all phases is exactly (W_eff - 1) units, i.e.
// 60*b*D1*(W-1) Mbit.
func TestBufferBoundTight(t *testing.T) {
	for _, tc := range []struct {
		serverMbps float64
		width      int64
	}{
		{100, 2}, {320, 2}, {320, 5}, {320, 12}, {320, 25}, {320, 52},
		{600, 52}, {150, 12}, {90, 5},
	} {
		s := mustScheme(t, tc.serverMbps, tc.width)
		wc, err := s.WorstCaseBuffer(0) // exact enumeration
		if err != nil {
			t.Fatalf("B=%v W=%d: %v", tc.serverMbps, tc.width, err)
		}
		want := s.EffectiveWidth() - 1
		if wc.BufferUnits != want {
			t.Errorf("B=%v W=%d: worst buffer = %d units (phase %d), want %d",
				tc.serverMbps, tc.width, wc.BufferUnits, wc.BufferPhase, want)
		}
		// Cross-check the Mbit conversion against the closed form.
		gotMbit := float64(wc.BufferUnits) * 60 * s.Config().RateMbps * s.UnitMinutes()
		if math.Abs(gotMbit-s.BufferMbit()) > 1e-9 {
			t.Errorf("B=%v W=%d: measured %v Mbit != analytic %v Mbit", tc.serverMbps, tc.width, gotMbit, s.BufferMbit())
		}
	}
}

// TestFigure1Scenarios reproduces Figure 1: the (1) -> (2,2) transition has
// exactly two behaviors. Playback starting at an odd unit needs no buffer
// for group 2; starting at an even unit prefetches one unit.
func TestFigure1Scenarios(t *testing.T) {
	s := mustScheme(t, 45, 2) // K = 3: fragments 1,2,2 - precisely Figure 1
	// Odd start: no disk required.
	planOdd, err := s.PlanSchedule(3)
	if err != nil {
		t.Fatal(err)
	}
	bpOdd, err := s.Profile(planOdd)
	if err != nil {
		t.Fatal(err)
	}
	if bpOdd.Max() != 0 {
		t.Errorf("odd start: max buffer %d units, want 0 (Figure 1a)", bpOdd.Max())
	}
	// Even start: one unit of prefetch.
	planEven, err := s.PlanSchedule(4)
	if err != nil {
		t.Fatal(err)
	}
	bpEven, err := s.Profile(planEven)
	if err != nil {
		t.Fatal(err)
	}
	if bpEven.Max() != 1 {
		t.Errorf("even start: max buffer %d units, want 1 = 60*b*D1 (Figure 1b)", bpEven.Max())
	}
}

func TestScheduleDeterministicAndOrdered(t *testing.T) {
	s := mustScheme(t, 320, 52)
	plan, err := s.PlanSchedule(17)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Downloads) != len(s.Groups()) {
		t.Fatalf("%d downloads for %d groups", len(plan.Downloads), len(s.Groups()))
	}
	freeAt := map[LoaderID]int64{}
	for i, d := range plan.Downloads {
		if d.Group.Index != i+1 {
			t.Errorf("download %d is for group %d", i, d.Group.Index)
		}
		if d.StartUnit%d.Group.Size != 0 {
			t.Errorf("group %d tuned at %d, not aligned to its period %d", d.Group.Index, d.StartUnit, d.Group.Size)
		}
		if d.StartUnit < plan.PlayStartUnit {
			t.Errorf("group %d tuned at %d before playback start %d", d.Group.Index, d.StartUnit, plan.PlayStartUnit)
		}
		if d.StartUnit < freeAt[d.Loader] {
			t.Errorf("group %d overlaps its loader's previous group", d.Group.Index)
		}
		freeAt[d.Loader] = d.EndUnit()
		if want := LoaderFor(d.Group); d.Loader != want {
			t.Errorf("group %d on %v loader, want %v", d.Group.Index, d.Loader, want)
		}
	}
}

func TestScheduleShiftInvariance(t *testing.T) {
	// Shifting the playback start by the phase period shifts the whole
	// plan rigidly.
	s := mustScheme(t, 150, 5)
	period := s.PhasePeriod()
	for phase := int64(0); phase < period; phase++ {
		a, err := s.PlanSchedule(phase)
		if err != nil {
			t.Fatal(err)
		}
		b, err := s.PlanSchedule(phase + period)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Downloads {
			if a.Downloads[i].StartUnit+period != b.Downloads[i].StartUnit {
				t.Fatalf("phase %d group %d: %d + period != %d",
					phase, i+1, a.Downloads[i].StartUnit, b.Downloads[i].StartUnit)
			}
		}
	}
}

func TestPlanScheduleRejectsNegative(t *testing.T) {
	s := mustScheme(t, 150, 2)
	if _, err := s.PlanSchedule(-1); err == nil {
		t.Error("PlanSchedule(-1) succeeded")
	}
}

func TestPhasePeriod(t *testing.T) {
	s := mustScheme(t, 150, 12) // sizes 1,2,2,5,5,12,12,12,12,12 -> lcm(1,2,5,12)=60
	if got := s.PhasePeriod(); got != 60 {
		t.Errorf("PhasePeriod = %d, want 60", got)
	}
}

func TestErrScheduleMessage(t *testing.T) {
	e := &ErrSchedule{Earliest: 10, Deadline: 5}
	if e.Error() == "" {
		t.Error("empty error message")
	}
	var target *ErrSchedule
	if !errors.As(error(e), &target) {
		t.Error("errors.As failed")
	}
}

func TestLoaderString(t *testing.T) {
	if OddLoader.String() != "odd" || EvenLoader.String() != "even" {
		t.Error("LoaderID String values wrong")
	}
}

// TestScheduleProperty drives the scheduler with random (B, W, phase)
// triples and asserts the full invariant bundle.
func TestScheduleProperty(t *testing.T) {
	widths := []int64{1, 2, 5, 12, 25, 52}
	f := func(bSel, wSel uint8, phase uint16) bool {
		serverMbps := 90 + float64(bSel%52)*10 // 90..600
		w := widths[int(wSel)%len(widths)]
		s, err := New(vod.DefaultConfig(serverMbps), w)
		if err != nil {
			return false
		}
		plan, err := s.PlanSchedule(int64(phase))
		if err != nil {
			return false
		}
		bp, err := s.Profile(plan)
		if err != nil {
			return false
		}
		return bp.Max() <= s.EffectiveWidth()-1 && plan.MaxConcurrentDownloads() <= 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestWorstCaseBufferSampled checks that sampling produces a lower bound of
// the exact value.
func TestWorstCaseBufferSampled(t *testing.T) {
	s := mustScheme(t, 320, 12)
	exact, err := s.WorstCaseBuffer(0)
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := s.WorstCaseBuffer(7)
	if err != nil {
		t.Fatal(err)
	}
	if sampled.BufferUnits > exact.BufferUnits {
		t.Errorf("sampled %d > exact %d", sampled.BufferUnits, exact.BufferUnits)
	}
	if sampled.Phases > 8 {
		t.Errorf("sampled %d phases, wanted about 7", sampled.Phases)
	}
}

func TestBreakPoints(t *testing.T) {
	s := mustScheme(t, 45, 2)
	plan, err := s.PlanSchedule(4)
	if err != nil {
		t.Fatal(err)
	}
	bp, err := s.Profile(plan)
	if err != nil {
		t.Fatal(err)
	}
	pts := bp.BreakPoints()
	if len(pts) == 0 {
		t.Fatal("no breakpoints in a profile with prefetching")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i] <= pts[i-1] {
			t.Errorf("breakpoints not strictly increasing: %v", pts)
		}
	}
}

func TestUnitMinutesMatchesConfig(t *testing.T) {
	cfg := vod.Config{ServerMbps: 320, Videos: 10, LengthMin: 120, RateMbps: 1.5}
	s, err := New(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s.UnitMinutes(), 120.0/41; math.Abs(got-want) > 1e-12 {
		t.Errorf("UnitMinutes = %v, want %v", got, want)
	}
	if s.Config() != cfg {
		t.Error("Config() does not round-trip")
	}
}
