package core

import (
	"fmt"
	"sort"
)

// ProfilePoint is one breakpoint of a client's piecewise-linear buffer
// occupancy curve: the buffered amount at a slope change.
type ProfilePoint struct {
	// Unit is the absolute time in D1 units.
	Unit int64
	// Occupancy is the buffered data at that instant, in D1 units of
	// data; one unit is 60*b*D1 Mbit.
	Occupancy int64
}

// BufferProfile is the client's disk-buffer occupancy over time implied by
// a Schedule: at every instant, the total data downloaded so far minus the
// total data played back so far. Download and playback both proceed at the
// display rate b, so the curve is piecewise linear with slope changes only
// where a download or the playback starts or ends; Points records exactly
// those breakpoints, which is where the curve's extremes occur. This is the
// machine-checked form of the hand-drawn curves in the paper's Figures 1-4.
type BufferProfile struct {
	// StartUnit is the playback start; EndUnit is when both playback and
	// all downloads have finished.
	StartUnit, EndUnit int64
	// Points are the slope-change breakpoints, strictly increasing in
	// Unit, beginning at StartUnit and ending at EndUnit.
	Points []ProfilePoint
}

// Max returns the profile's high-water mark in units.
func (bp *BufferProfile) Max() int64 {
	var m int64
	for _, p := range bp.Points {
		if p.Occupancy > m {
			m = p.Occupancy
		}
	}
	return m
}

// Final returns the occupancy at EndUnit; a correct schedule drains to 0.
func (bp *BufferProfile) Final() int64 {
	if len(bp.Points) == 0 {
		return 0
	}
	return bp.Points[len(bp.Points)-1].Occupancy
}

// At returns the occupancy at absolute time t by linear interpolation
// between breakpoints. Times outside [StartUnit, EndUnit] return 0.
func (bp *BufferProfile) At(t int64) int64 {
	if t <= bp.StartUnit || len(bp.Points) == 0 {
		if len(bp.Points) > 0 && t == bp.StartUnit {
			return bp.Points[0].Occupancy
		}
		return 0
	}
	if t >= bp.EndUnit {
		return bp.Final()
	}
	i := sort.Search(len(bp.Points), func(i int) bool { return bp.Points[i].Unit > t })
	// Points[i-1].Unit <= t < Points[i].Unit; interpolate.
	p0, p1 := bp.Points[i-1], bp.Points[i]
	return p0.Occupancy + (p1.Occupancy-p0.Occupancy)*(t-p0.Unit)/(p1.Unit-p0.Unit)
}

// MaxMbit converts the high-water mark into Mbit for a given display rate
// (Mbit/s) and unit duration D1 (minutes).
func (bp *BufferProfile) MaxMbit(rateMbps, unitMin float64) float64 {
	return float64(bp.Max()) * 60 * rateMbps * unitMin
}

// Profile computes the buffer occupancy implied by plan. It also verifies
// jitter-freeness: every fragment's bytes must be downloaded no later than
// they are played, and the buffer must never go negative; a violation
// returns an error (the paper proves none can occur, Section 4).
//
// The computation is sparse — O(groups log groups) regardless of the video
// length in units — so it works even for uncapped fragmentations whose unit
// counts exceed 10^12.
func (s *Scheme) Profile(plan *Schedule) (*BufferProfile, error) {
	start := plan.PlayStartUnit
	end := start + s.total
	type event struct {
		t     int64
		slope int64
	}
	events := make([]event, 0, 2*len(plan.Downloads)+2)
	// Playback is one continuous stream over the whole video.
	events = append(events, event{start, -1}, event{end, +1})
	for _, dl := range plan.Downloads {
		if e := dl.EndUnit(); e > end {
			end = e
		}
		events = append(events, event{dl.StartUnit, +1}, event{dl.EndUnit(), -1})
		// Per-fragment causality: fragment j must start downloading no
		// later than its playback starts.
		for j := 0; j < dl.Group.Count; j++ {
			dStart := dl.FragmentStart(j)
			pStart := start + dl.Group.StartUnit + int64(j)*dl.Group.Size
			if dStart > pStart {
				return nil, fmt.Errorf("core: jitter: fragment %d downloads at %d but plays at %d",
					dl.Group.First+j, dStart, pStart)
			}
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i].t < events[j].t })

	bp := &BufferProfile{StartUnit: start, EndUnit: end}
	var occ, slope, prevT int64
	prevT = start
	for i := 0; i < len(events); {
		t := events[i].t
		occ += slope * (t - prevT)
		if occ < 0 {
			return nil, fmt.Errorf("core: jitter: buffer underrun of %d units at time %d", -occ, t)
		}
		for i < len(events) && events[i].t == t {
			slope += events[i].slope
			i++
		}
		bp.Points = append(bp.Points, ProfilePoint{Unit: t, Occupancy: occ})
		prevT = t
	}
	if prevT != end {
		occ += slope * (end - prevT)
		bp.Points = append(bp.Points, ProfilePoint{Unit: end, Occupancy: occ})
	}
	if f := bp.Final(); f != 0 {
		return nil, fmt.Errorf("core: accounting error: buffer holds %d units after playback ends", f)
	}
	return bp, nil
}

// PhasePeriod returns the period after which client behavior repeats as a
// function of the playback start time: the least common multiple of all
// distinct fragment sizes (every channel's broadcast grid is a multiple of
// its fragment size). Enumerating playback starts in [0, PhasePeriod)
// covers every possible reception pattern. The result saturates at
// maxPeriod = 1<<50 for uncapped fragmentations.
func (s *Scheme) PhasePeriod() int64 {
	const maxPeriod = int64(1) << 50
	l := int64(1)
	seen := map[int64]bool{}
	for _, sz := range s.sizes {
		if !seen[sz] {
			seen[sz] = true
			g := gcd(l, sz)
			if l/g > maxPeriod/sz {
				return maxPeriod
			}
			l = l / g * sz
		}
	}
	return l
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// WorstCase holds the extremes of the scheme over every arrival phase.
type WorstCase struct {
	// BufferUnits is the maximum buffer occupancy in D1 units.
	BufferUnits int64
	// BufferPhase is a playback-start phase achieving it.
	BufferPhase int64
	// Phases is the number of distinct phases examined.
	Phases int64
}

// WorstCaseBuffer evaluates the buffer high-water mark over playback-start
// phases. If the phase period is at most maxPhases (or maxPhases <= 0), all
// phases are enumerated and the result is exact; otherwise phases are
// strided evenly and the result is a lower bound. The exact worst case
// equals the analytic bound 60*b*D1*(W-1), which the tests assert.
func (s *Scheme) WorstCaseBuffer(maxPhases int64) (WorstCase, error) {
	period := s.PhasePeriod()
	stride := int64(1)
	if maxPhases > 0 && period > maxPhases {
		stride = (period + maxPhases - 1) / maxPhases
	}
	wc := WorstCase{}
	for phase := int64(0); phase < period; phase += stride {
		plan, err := s.PlanSchedule(phase)
		if err != nil {
			return wc, err
		}
		bp, err := s.Profile(plan)
		if err != nil {
			return wc, err
		}
		wc.Phases++
		if m := bp.Max(); m > wc.BufferUnits {
			wc.BufferUnits = m
			wc.BufferPhase = phase
		}
	}
	return wc, nil
}

// BreakPoints returns the times at which the profile changes slope, for
// rendering the paper's Figure 2-4 style curves.
func (bp *BufferProfile) BreakPoints() []int64 {
	pts := make([]int64, len(bp.Points))
	for i, p := range bp.Points {
		pts[i] = p.Unit
	}
	return pts
}
