package core

import (
	"testing"

	"skyscraper/internal/series"
)

// TestEagerStillJitterFree: eager tuning never misses a deadline (every
// group arrives no later than under lazy tuning).
func TestEagerStillJitterFree(t *testing.T) {
	for _, tc := range []struct {
		serverMbps float64
		width      int64
	}{
		{320, 2}, {320, 12}, {320, 52}, {150, 5},
	} {
		s := mustScheme(t, tc.serverMbps, tc.width)
		period := s.PhasePeriod()
		stride := period/800 + 1
		for phase := int64(0); phase < period; phase += stride {
			plan, err := s.PlanScheduleEager(phase)
			if err != nil {
				t.Fatalf("B=%v W=%d phase %d: %v", tc.serverMbps, tc.width, phase, err)
			}
			if _, err := s.Profile(plan); err != nil {
				t.Fatalf("B=%v W=%d phase %d: %v", tc.serverMbps, tc.width, phase, err)
			}
		}
	}
}

// TestEagerOvershootsBound is the ablation behind the lazy-policy design
// note in DESIGN.md: eager tuning exceeds 60*b*D1*(W-1) on capped tails.
func TestEagerOvershootsBound(t *testing.T) {
	s := mustScheme(t, 320, 52)
	bound := s.EffectiveWidth() - 1
	var worst int64
	period := s.PhasePeriod()
	stride := period/2000 + 1
	for phase := int64(0); phase < period; phase += stride {
		plan, err := s.PlanScheduleEager(phase)
		if err != nil {
			t.Fatal(err)
		}
		bp, err := s.Profile(plan)
		if err != nil {
			t.Fatal(err)
		}
		if m := bp.Max(); m > worst {
			worst = m
		}
	}
	if worst <= bound {
		t.Errorf("eager worst buffer %d did not exceed the lazy bound %d; ablation expectation broken", worst, bound)
	}
	t.Logf("eager worst %d units vs lazy bound %d (overshoot %.1f%%)",
		worst, bound, 100*float64(worst-bound)/float64(bound))
}

// TestEagerNegativeStart rejects invalid playback starts.
func TestEagerNegativeStart(t *testing.T) {
	s := mustScheme(t, 150, 2)
	if _, err := s.PlanScheduleEager(-1); err == nil {
		t.Error("negative start accepted")
	}
}

// TestPlanGeneralMatchesTwoLoaderPlan: on the skyscraper series the
// general planner needs exactly two loaders and produces the same tune
// times as the parity-based planner.
func TestPlanGeneralMatchesTwoLoaderPlan(t *testing.T) {
	s := mustScheme(t, 320, 12)
	period := s.PhasePeriod()
	for phase := int64(0); phase < period; phase++ {
		want, err := s.PlanSchedule(phase)
		if err != nil {
			t.Fatal(err)
		}
		got, err := PlanGeneral(s.Groups(), phase, 2)
		if err != nil {
			t.Fatalf("phase %d: %v", phase, err)
		}
		if got.Loaders > 2 {
			t.Fatalf("phase %d: %d loaders", phase, got.Loaders)
		}
		for i := range want.Downloads {
			if got.Downloads[i].StartUnit != want.Downloads[i].StartUnit {
				t.Fatalf("phase %d group %d: general tunes at %d, parity planner at %d",
					phase, i+1, got.Downloads[i].StartUnit, want.Downloads[i].StartUnit)
			}
		}
	}
}

// TestSkyscraperNeedsTwoLoaders and TestDoublingNeedsThreeLoaders: the
// structural payoff of the paper's series design. A doubling series
// (1,2,4,8,... — Fast Broadcasting's shape) has consecutive even groups,
// so two tuners cannot cover it; the skyscraper series' odd/even
// interleaving makes two suffice at every width.
func TestSkyscraperNeedsTwoLoaders(t *testing.T) {
	for _, k := range []int{3, 7, 13, 21} {
		for _, w := range []int64{2, 5, 12, 52, 0} {
			groups := series.Groups(series.Values(series.Skyscraper{}, k, w))
			period := int64(1)
			for _, g := range groups {
				period = lcmSmall(period, g.Size, 5000)
			}
			got := MinLoaders(groups, period, 4)
			want := 1
			if len(groups) > 1 {
				want = 2
			}
			if got != want {
				t.Errorf("K=%d W=%d: MinLoaders = %d, want %d", k, w, got, want)
			}
		}
	}
}

func TestDoublingNeedsAllLoaders(t *testing.T) {
	// At phase 0 every channel's only deadline-feasible broadcast starts
	// at time 0, so a doubling-series client must receive from all K
	// channels at once — exactly Fast Broadcasting's receive model, and
	// the structural cost the skyscraper series' odd/even interleaving
	// avoids.
	groups := series.Groups(series.Values(series.Doubling{}, 6, 0)) // 1,2,4,8,16,32
	got := MinLoaders(groups, 64, 8)
	if got != 6 {
		t.Errorf("MinLoaders(doubling K=6) = %d, want 6 (all channels at the worst phase)", got)
	}
	if got > 0 {
		for phase := int64(0); phase < 64; phase++ {
			if _, err := PlanGeneral(groups, phase, got); err != nil {
				t.Fatalf("phase %d with %d loaders: %v", phase, got, err)
			}
		}
	}
}

func TestPlanGeneralValidation(t *testing.T) {
	groups := series.Groups([]int64{1, 2, 2})
	if _, err := PlanGeneral(groups, -1, 2); err == nil {
		t.Error("negative start accepted")
	}
	if _, err := PlanGeneral(groups, 0, 0); err == nil {
		t.Error("zero loaders accepted")
	}
	if _, err := PlanGeneral(nil, 0, 2); err == nil {
		t.Error("empty groups accepted")
	}
}

func TestMinLoadersBudgetExhaustion(t *testing.T) {
	groups := series.Groups(series.Values(series.Doubling{}, 8, 0))
	if got := MinLoaders(groups, 16, 1); got != 0 {
		t.Errorf("MinLoaders with budget 1 = %d, want 0 (insufficient)", got)
	}
}

// lcmSmall is a capped lcm for test phase periods.
func lcmSmall(a, b, cap int64) int64 {
	g := gcd(a, b)
	l := a / g * b
	if l > cap {
		return cap
	}
	return l
}

// TestNaivePairedGeneralizationFails documents why the paper's exact
// recurrence matters: a naive "next pair = smallest integer > 2*prev with
// opposite parity" series (1,4,4,9,9,...) makes group (4,4) undeliverable
// at some phases — its playback offset (1 unit) is smaller than size-1, so
// no broadcast of it can both start after admission and meet the deadline,
// regardless of how many tuners the client has. The skyscraper recurrence
// 2f+1 / 2f+2 grows as fast as possible *without* crossing that bound.
func TestNaivePairedGeneralizationFails(t *testing.T) {
	groups := series.Groups([]int64{1, 4, 4, 9, 9, 20, 20})
	if got := MinLoaders(groups, 64, 6); got != 0 {
		t.Errorf("naive paired series schedulable with %d loaders; expected structural infeasibility", got)
	}
	// Each skyscraper group satisfies the deliverability bound
	// size <= StartUnit + 1.
	for _, w := range []int64{0, 2, 12, 52} {
		for _, g := range series.Groups(series.Values(series.Skyscraper{}, 40, w)) {
			if g.Size > g.StartUnit+1 {
				t.Errorf("W=%d group %d %v: size %d > StartUnit+1 = %d", w, g.Index, g, g.Size, g.StartUnit+1)
			}
		}
	}
}
