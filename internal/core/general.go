package core

import (
	"fmt"

	"skyscraper/internal/series"
)

// PlanScheduleEager is the ablation counterpart of PlanSchedule: each
// loader tunes its next group at the *earliest* broadcast after it
// becomes free (but never before playback starts). The plan is still
// jitter-free — every group arrives no later than under lazy tuning — but
// capped tail groups are prefetched long before they are needed, so the
// buffer high-water mark can exceed the paper's 60*b*D1*(W-1) bound.
// DESIGN.md records the measured overshoot; BenchmarkAblationTuningPolicy
// regenerates it.
func (s *Scheme) PlanScheduleEager(playStart int64) (*Schedule, error) {
	if playStart < 0 {
		return nil, fmt.Errorf("core: PlanScheduleEager(%d): playback start must be >= 0", playStart)
	}
	free := map[LoaderID]int64{OddLoader: playStart, EvenLoader: playStart}
	plan := &Schedule{PlayStartUnit: playStart, Downloads: make([]Download, 0, len(s.groups))}
	for _, g := range s.groups {
		ld := LoaderFor(g)
		tune := nextMultiple(free[ld], g.Size)
		if deadline := playStart + g.StartUnit; tune > deadline {
			return nil, &ErrSchedule{Group: g, Earliest: tune, Deadline: deadline}
		}
		d := Download{Group: g, Loader: ld, StartUnit: tune}
		plan.Downloads = append(plan.Downloads, d)
		free[ld] = d.EndUnit()
	}
	return plan, nil
}

// nextMultiple returns the smallest multiple of period that is >= t, for
// t >= 0.
func nextMultiple(t, period int64) int64 {
	if period <= 0 {
		panic(fmt.Sprintf("core: nextMultiple: period %d must be positive", period))
	}
	if r := t % period; r != 0 {
		return t + period - r
	}
	return t
}

// GeneralDownload is one group reception in a plan with an arbitrary
// number of loaders.
type GeneralDownload struct {
	Group series.Group
	// Loader is a 0-based tuner index.
	Loader    int
	StartUnit int64
}

// EndUnit returns when the loader finishes the group's last fragment.
func (d GeneralDownload) EndUnit() int64 {
	return d.StartUnit + int64(d.Group.Count)*d.Group.Size
}

// GeneralSchedule is a reception plan over n >= 1 loaders, for broadcast
// series whose groups do not alternate parity (the paper's two-loader
// client is the special case its series was designed for; Section 6 notes
// SB is a family parameterized by the series).
type GeneralSchedule struct {
	PlayStartUnit int64
	Loaders       int
	Downloads     []GeneralDownload
}

// PlanGeneral computes a lazy-tuning reception plan using at most
// maxLoaders tuners: each group is assigned to any loader free by the
// group's latest feasible tune time, preferring the loader that has been
// idle longest (which keeps assignments stable). It returns *ErrSchedule
// when even an idle loader could not meet a deadline, and an error when
// more than maxLoaders concurrent tuners would be required.
func PlanGeneral(groups []series.Group, playStart int64, maxLoaders int) (*GeneralSchedule, error) {
	if playStart < 0 {
		return nil, fmt.Errorf("core: PlanGeneral(%d): playback start must be >= 0", playStart)
	}
	if maxLoaders < 1 {
		return nil, fmt.Errorf("core: PlanGeneral: need at least one loader, got %d", maxLoaders)
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("core: PlanGeneral: no transmission groups")
	}
	free := make([]int64, 1, maxLoaders) // loader free times; grows on demand
	free[0] = playStart
	plan := &GeneralSchedule{PlayStartUnit: playStart}
	for _, g := range groups {
		deadline := playStart + g.StartUnit
		tune := lastMultiple(deadline, g.Size)
		if tune < playStart {
			// Cannot tune before admission; groups early in the video
			// always satisfy tune >= playStart for sane series, but a
			// pathological first group is caught here.
			return nil, &ErrSchedule{Group: g, Earliest: playStart, Deadline: deadline}
		}
		// Pick the loader longest idle among those free by the tune
		// time; open a new tuner only when none is.
		best := -1
		for i, f := range free {
			if f <= tune && (best == -1 || f < free[best]) {
				best = i
			}
		}
		if best == -1 {
			if len(free) < maxLoaders {
				free = append(free, playStart)
				best = len(free) - 1
			} else {
				return nil, fmt.Errorf("core: series needs more than %d loaders: group %d %v (deadline %d) finds every tuner busy: %w",
					maxLoaders, g.Index, g, deadline, errLoadersExhausted)
			}
		}
		plan.Downloads = append(plan.Downloads, GeneralDownload{Group: g, Loader: best, StartUnit: tune})
		free[best] = tune + int64(g.Count)*g.Size
	}
	plan.Loaders = len(free)
	return plan, nil
}

// errLoadersExhausted marks loader-count failures for MinLoaders.
var errLoadersExhausted = fmt.Errorf("loader budget exhausted")

// MinLoaders returns the smallest number of tuners sufficient to receive
// the fragmentation jitter-free at every playback phase in [0, phases)
// (use the series' phase period for an exact answer), or 0 if no budget up
// to maxBudget suffices. For the paper's skyscraper series the answer is
// 2 at every width; for the doubling series (Fast Broadcasting's shape) it
// is 3 — the structural reason the paper's series interleaves odd and even
// groups.
func MinLoaders(groups []series.Group, phases int64, maxBudget int) int {
	if phases < 1 {
		phases = 1
	}
	for budget := 1; budget <= maxBudget; budget++ {
		ok := true
		for phase := int64(0); phase < phases; phase++ {
			if _, err := PlanGeneral(groups, phase, budget); err != nil {
				ok = false
				break
			}
		}
		if ok {
			return budget
		}
	}
	return 0
}
