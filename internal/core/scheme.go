// Package core implements Skyscraper Broadcasting (SB), the paper's primary
// contribution (Hua & Sheu, SIGCOMM '97, Sections 3-4).
//
// An SB Scheme divides the server bandwidth into floor(B/b) logical channels
// of one display rate each, dedicates K = floor(B/(b*M)) channels to each of
// the M popular videos, fragments each video according to the skyscraper
// broadcast series capped at a width W, and repeatedly broadcasts fragment i
// on channel i at the display rate. Clients receive the fragments with two
// loaders (odd and even transmission groups) and play back jitter-free after
// a worst-case wait of D1 = D / sum(min(f(i), W)) minutes.
//
// The package provides both the closed-form performance model of Table 1
// (access latency, client buffer space, client disk bandwidth) and an exact
// integer-time reception scheduler used to verify the closed forms and to
// drive the event simulator and the live network client.
package core

import (
	"fmt"

	"skyscraper/internal/series"
	"skyscraper/internal/vod"
)

// Scheme is an instantiated Skyscraper Broadcasting configuration for one
// video: the channel count K, the width W, and the derived fragmentation.
// All methods are safe for concurrent use; a Scheme is immutable after New.
type Scheme struct {
	cfg    vod.Config
	ser    series.Series
	width  int64
	k      int
	sizes  []int64 // capped relative fragment sizes, len k
	groups []series.Group
	total  int64 // sum of sizes: video length in D1 units
}

// New builds the SB scheme for cfg with the paper's skyscraper series and
// the given width W. width <= 0 means uncapped (the paper's W = infinity
// curves). New fails if cfg is invalid or cannot afford K >= 1 channels per
// video.
func New(cfg vod.Config, width int64) (*Scheme, error) {
	return NewWithSeries(cfg, series.Skyscraper{}, width)
}

// NewWithSeries builds an SB-style scheme over an arbitrary broadcast
// series (Section 6 notes SB is characterized by a series and a width). The
// series' transmission groups must alternate parity, otherwise the
// two-loader client design is unsound and an error is returned.
func NewWithSeries(cfg vod.Config, s series.Series, width int64) (*Scheme, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	k := cfg.ChannelsPerVideo()
	sizes := series.Values(s, k, width)
	groups := series.Groups(sizes)
	if err := series.CheckAlternation(groups); err != nil {
		return nil, err
	}
	sch := &Scheme{
		cfg:    cfg,
		ser:    s,
		width:  width,
		k:      k,
		sizes:  sizes,
		groups: groups,
		total:  series.Sum(s, k, width),
	}
	return sch, nil
}

// Config returns the system parameters the scheme was built for.
func (s *Scheme) Config() vod.Config { return s.cfg }

// K returns the number of logical channels (and fragments) per video.
func (s *Scheme) K() int { return s.k }

// Width returns the configured width W; 0 means uncapped.
func (s *Scheme) Width() int64 { return s.width }

// EffectiveWidth returns the largest fragment size actually used. With a
// small K the cap may never bind, so the effective width — which is what
// the buffer bound depends on — can be smaller than the configured W.
func (s *Scheme) EffectiveWidth() int64 { return s.sizes[s.k-1] }

// Sizes returns the relative fragment sizes in D1 units. The slice is
// shared; callers must not modify it.
func (s *Scheme) Sizes() []int64 { return s.sizes }

// Groups returns the transmission groups. The slice is shared; callers must
// not modify it.
func (s *Scheme) Groups() []series.Group { return s.groups }

// TotalUnits returns the video length measured in D1 units, i.e.
// sum(min(f(i), W)).
func (s *Scheme) TotalUnits() int64 { return s.total }

// UnitMinutes returns D1, the duration of one broadcast unit (= the first
// fragment = the worst access latency) in minutes:
//
//	D1 = D / sum_{i=1..K} min(f(i), W)     (Section 3.2)
func (s *Scheme) UnitMinutes() float64 {
	return s.cfg.LengthMin / float64(s.total)
}

// FragmentMinutes returns the playback duration of fragment i (1-based) in
// minutes.
func (s *Scheme) FragmentMinutes(i int) float64 {
	if i < 1 || i > s.k {
		panic(fmt.Sprintf("core: FragmentMinutes(%d): fragment out of range 1..%d", i, s.k))
	}
	return float64(s.sizes[i-1]) * s.UnitMinutes()
}

// FragmentMbits returns the size of fragment i in Mbit.
func (s *Scheme) FragmentMbits(i int) float64 {
	return 60 * s.cfg.RateMbps * s.FragmentMinutes(i)
}

// AccessLatencyMin returns the worst-case service latency in minutes, which
// equals D1: a new broadcast of the first fragment starts every D1 minutes
// on channel 1.
func (s *Scheme) AccessLatencyMin() float64 { return s.UnitMinutes() }

// BufferMbit returns the client buffer-space requirement in Mbit:
//
//	60 * b * D1 * (W - 1)     (Section 4)
//
// using the effective width, since the bound derives from the last group
// transition actually present in the fragmentation.
func (s *Scheme) BufferMbit() float64 {
	return 60 * s.cfg.RateMbps * s.UnitMinutes() * float64(s.EffectiveWidth()-1)
}

// DiskBandwidthMbps returns the client storage-I/O bandwidth requirement in
// Mbit/s (Section 5):
//
//	b        if W = 1 or K = 1  (a single just-in-time stream)
//	2b       if W = 2 or K in {2, 3}
//	3b       otherwise          (two loaders writing + the player reading)
func (s *Scheme) DiskBandwidthMbps() float64 {
	b := s.cfg.RateMbps
	w := s.EffectiveWidth()
	switch {
	case w == 1 || s.k == 1:
		return b
	case w == 2 || s.k == 2 || s.k == 3:
		return 2 * b
	default:
		return 3 * b
	}
}

// ChannelPeriodUnits returns the broadcast period, in D1 units, of the
// channel carrying fragment i: every channel rebroadcasts its fragment
// back-to-back, so the period equals the fragment's own size, and every
// broadcast starts at an absolute time that is a multiple of that size.
func (s *Scheme) ChannelPeriodUnits(i int) int64 {
	if i < 1 || i > s.k {
		panic(fmt.Sprintf("core: ChannelPeriodUnits(%d): fragment out of range 1..%d", i, s.k))
	}
	return s.sizes[i-1]
}

// ServerChannelsUsed returns the number of b-Mbit/s channels the scheme
// consumes across all M videos (K per video).
func (s *Scheme) ServerChannelsUsed() int { return s.k * s.cfg.Videos }

// Name implements the repository-wide performer convention, matching the
// paper's curve labels ("SB:W=52"; width 0 renders as "SB:W=infinite").
func (s *Scheme) Name() string {
	if s.width <= 0 {
		return "SB:W=infinite"
	}
	return fmt.Sprintf("SB:W=%d", s.width)
}

// String summarizes the scheme.
func (s *Scheme) String() string {
	return fmt.Sprintf("SB{K=%d W=%d series=%s D1=%.4fmin groups=%d}",
		s.k, s.width, s.ser.Name(), s.UnitMinutes(), len(s.groups))
}
