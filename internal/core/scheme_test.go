package core

import (
	"math"
	"strings"
	"testing"

	"skyscraper/internal/series"
	"skyscraper/internal/vod"
)

func mustScheme(t *testing.T, serverMbps float64, width int64) *Scheme {
	t.Helper()
	s, err := New(vod.DefaultConfig(serverMbps), width)
	if err != nil {
		t.Fatalf("New(B=%v, W=%d): %v", serverMbps, width, err)
	}
	return s
}

// TestPaperExampleW2B320 checks the paper's Section 5.4 quote: "when B is
// about 320 Mbits/sec ... SB scheme with W = 2 has smaller access latency
// and requires only 33 MBytes of disk space at the receiving end."
func TestPaperExampleW2B320(t *testing.T) {
	s := mustScheme(t, 320, 2)
	if s.K() != 21 {
		t.Fatalf("K = %d, want 21", s.K())
	}
	if got := vod.MbitToMByte(s.BufferMbit()); math.Abs(got-32.9) > 0.5 {
		t.Errorf("buffer = %.1f MByte, want about 33", got)
	}
	if lat := s.AccessLatencyMin(); math.Abs(lat-120.0/41) > 1e-9 {
		t.Errorf("latency = %v min, want %v", lat, 120.0/41)
	}
}

// TestPaperExampleW52B600 checks Section 5.4: "if the network-I/O bandwidth
// is 600 Mbits/sec, each client needs only 40 MBytes of buffer space in
// order to enjoy an access latency of about 0.1 minutes."
func TestPaperExampleW52B600(t *testing.T) {
	s := mustScheme(t, 600, 52)
	if s.K() != 40 {
		t.Fatalf("K = %d, want 40", s.K())
	}
	if lat := s.AccessLatencyMin(); math.Abs(lat-0.0706) > 0.005 {
		t.Errorf("latency = %v min, want about 0.07", lat)
	}
	if got := vod.MbitToMByte(s.BufferMbit()); math.Abs(got-40.5) > 1.0 {
		t.Errorf("buffer = %.1f MByte, want about 40", got)
	}
}

func TestDiskBandwidthTiers(t *testing.T) {
	b := 1.5
	cases := []struct {
		serverMbps float64
		width      int64
		want       float64
	}{
		{600, 1, b},      // W = 1
		{15, 100, b},     // K = 1
		{600, 2, 2 * b},  // W = 2
		{45, 100, 2 * b}, // K = 3
		{600, 52, 3 * b}, // general case
		{600, 0, 3 * b},  // uncapped
	}
	for _, c := range cases {
		s := mustScheme(t, c.serverMbps, c.width)
		if got := s.DiskBandwidthMbps(); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("B=%v W=%d: disk bw = %v, want %v", c.serverMbps, c.width, got, c.want)
		}
	}
}

func TestEffectiveWidth(t *testing.T) {
	// K = 3 (B = 45): fragments 1,2,2 - a configured W of 52 never binds.
	s := mustScheme(t, 45, 52)
	if s.EffectiveWidth() != 2 {
		t.Errorf("effective width = %d, want 2", s.EffectiveWidth())
	}
	// Buffer bound must use the effective width.
	want := 60 * 1.5 * s.UnitMinutes() * 1
	if got := s.BufferMbit(); math.Abs(got-want) > 1e-9 {
		t.Errorf("buffer = %v, want %v", got, want)
	}
}

func TestFragmentAccessors(t *testing.T) {
	s := mustScheme(t, 600, 52) // K = 40
	var total float64
	for i := 1; i <= s.K(); i++ {
		total += s.FragmentMinutes(i)
	}
	if math.Abs(total-120) > 1e-9 {
		t.Errorf("fragments sum to %v minutes, want 120", total)
	}
	if got := s.FragmentMbits(1); math.Abs(got-60*1.5*s.UnitMinutes()) > 1e-9 {
		t.Errorf("fragment 1 = %v Mbit", got)
	}
	if s.ServerChannelsUsed() != 400 {
		t.Errorf("server channels = %d, want 400", s.ServerChannelsUsed())
	}
}

func TestFragmentPanicsOutOfRange(t *testing.T) {
	s := mustScheme(t, 150, 2)
	for _, i := range []int{0, s.K() + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FragmentMinutes(%d) did not panic", i)
				}
			}()
			s.FragmentMinutes(i)
		}()
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(vod.Config{}, 2); err == nil {
		t.Error("New accepted zero config")
	}
	if _, err := New(vod.DefaultConfig(10), 2); err == nil {
		t.Error("New accepted B too small for one channel per video")
	}
}

func TestNewRejectsNonAlternatingSeries(t *testing.T) {
	cfg := vod.DefaultConfig(600)
	if _, err := NewWithSeries(cfg, series.Doubling{}, 0); err == nil {
		t.Error("NewWithSeries accepted the doubling series (groups 2 and 4 are both even)")
	}
}

func TestConstantSeriesIsStaggered(t *testing.T) {
	// The constant series under the SB machinery is plain staggered
	// broadcasting: K equal fragments, latency D/K, zero buffer.
	cfg := vod.DefaultConfig(300) // K = 20
	s, err := NewWithSeries(cfg, series.Constant{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.AccessLatencyMin(); math.Abs(got-6.0) > 1e-9 {
		t.Errorf("latency = %v, want 6 (=120/20)", got)
	}
	if s.BufferMbit() != 0 {
		t.Errorf("buffer = %v, want 0", s.BufferMbit())
	}
	if s.DiskBandwidthMbps() != 1.5 {
		t.Errorf("disk bw = %v, want b", s.DiskBandwidthMbps())
	}
}

func TestString(t *testing.T) {
	s := mustScheme(t, 320, 2)
	str := s.String()
	for _, want := range []string{"K=21", "W=2", "skyscraper"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() = %q missing %q", str, want)
		}
	}
}

func TestLatencyMonotoneInWidth(t *testing.T) {
	// Section 3.2: "we can reduce the access latency by using a larger W."
	prev := math.Inf(1)
	for _, w := range []int64{1, 2, 5, 12, 25, 52} {
		s := mustScheme(t, 320, w)
		if got := s.AccessLatencyMin(); got > prev {
			t.Errorf("latency increased from %v to %v at W=%d", prev, got, w)
		} else {
			prev = got
		}
	}
}

func TestLatencyImprovesWithBandwidth(t *testing.T) {
	prev := math.Inf(1)
	for b := 100.0; b <= 600; b += 50 {
		s := mustScheme(t, b, 52)
		if got := s.AccessLatencyMin(); got > prev+1e-12 {
			t.Errorf("latency increased from %v to %v at B=%v", prev, got, b)
		} else {
			prev = got
		}
	}
}
