package core

import (
	"fmt"

	"skyscraper/internal/series"
)

// LoaderID identifies one of the client's two download routines
// (Section 3.3). The Odd Loader fetches the odd transmission groups, the
// Even Loader the even ones.
type LoaderID int

// The two loaders.
const (
	OddLoader LoaderID = iota
	EvenLoader
)

// String implements fmt.Stringer.
func (l LoaderID) String() string {
	if l == OddLoader {
		return "odd"
	}
	return "even"
}

// LoaderFor returns which loader downloads group g.
func LoaderFor(g series.Group) LoaderID {
	if g.Odd() {
		return OddLoader
	}
	return EvenLoader
}

// Download is one scheduled group reception: the loader tunes to the
// group's channels in sequence, downloading each fragment in its entirety
// back-to-back. Times are absolute, in D1 units; the broadcast of a
// fragment of size A always begins at a multiple of A, so StartUnit is a
// multiple of the group's size.
type Download struct {
	Group  series.Group
	Loader LoaderID
	// StartUnit is when the loader begins receiving the group's first
	// fragment.
	StartUnit int64
}

// EndUnit returns when the loader finishes the group's last fragment.
func (d Download) EndUnit() int64 {
	return d.StartUnit + int64(d.Group.Count)*d.Group.Size
}

// FragmentStart returns when fragment j of the group (0-based within the
// group) begins downloading. Fragments of a group download back-to-back;
// this is sound because all channels of a group share the same period and
// the same absolute alignment.
func (d Download) FragmentStart(j int) int64 {
	return d.StartUnit + int64(j)*d.Group.Size
}

// Schedule is a client's complete, deterministic reception plan for one
// playback, computed at admission time. SB clients always tune to the
// beginning of a broadcast, so the whole plan follows from the playback
// start time alone.
type Schedule struct {
	// PlayStartUnit is when playback of the video begins (a multiple of
	// 1 D1 unit: the start of a fragment-1 broadcast).
	PlayStartUnit int64
	// Downloads lists one entry per transmission group, in video order.
	Downloads []Download
}

// ErrSchedule reports a violated reception deadline; under the paper's
// correctness theorem it never occurs for schemes built by New, and its
// presence in a simulation indicates a protocol bug.
type ErrSchedule struct {
	Group    series.Group
	Earliest int64
	Deadline int64
}

// Error implements error.
func (e *ErrSchedule) Error() string {
	return fmt.Sprintf("core: group %d %v cannot be received in time: earliest tune %d > deadline %d (D1 units)",
		e.Group.Index, e.Group, e.Earliest, e.Deadline)
}

// PlanSchedule computes the reception plan for a client whose playback
// starts at playStart (in absolute D1 units; playback always starts at an
// integer unit, the next fragment-1 broadcast after arrival).
//
// Each loader processes its groups in video order ("downloads its groups
// one at a time in its entirety, and in the order they occur in the video
// file", Section 3.3). A group of size A can only be tuned at a multiple of
// A, and data arrives exactly at the display rate, so the group must be
// tuned no later than its playback deadline. The loader tunes at the
// *latest* broadcast meeting the deadline — the policy behind the paper's
// Figure 2-4 analysis, whose "possible broadcast times" for a group of size
// A span at most A distinct phases ending at the deadline. Lazy tuning is
// what makes the client buffer bound 60*b*D1*(W-1) tight; an eager client
// would prefetch capped tail groups far too early.
//
// The plan fails — returning *ErrSchedule — if the latest feasible
// broadcast of a group would begin before the loader finished its previous
// group; Section 4 proves this never happens for skyscraper fragmentations
// (the parity interleaving of odd and even groups prevents it).
func (s *Scheme) PlanSchedule(playStart int64) (*Schedule, error) {
	return PlanForGroups(s.groups, playStart)
}

// PlanForGroups is PlanSchedule for a bare transmission-group list, used by
// network clients that learn the fragmentation from the server's handshake
// rather than holding a full Scheme.
func PlanForGroups(groups []series.Group, playStart int64) (*Schedule, error) {
	if playStart < 0 {
		return nil, fmt.Errorf("core: PlanForGroups(%d): playback start must be >= 0", playStart)
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("core: PlanForGroups: no transmission groups")
	}
	free := map[LoaderID]int64{OddLoader: playStart, EvenLoader: playStart}
	plan := &Schedule{PlayStartUnit: playStart, Downloads: make([]Download, 0, len(groups))}
	for _, g := range groups {
		ld := LoaderFor(g)
		deadline := playStart + g.StartUnit
		tune := lastMultiple(deadline, g.Size)
		if tune < free[ld] {
			return nil, &ErrSchedule{Group: g, Earliest: free[ld], Deadline: deadline}
		}
		d := Download{Group: g, Loader: ld, StartUnit: tune}
		plan.Downloads = append(plan.Downloads, d)
		free[ld] = d.EndUnit()
	}
	return plan, nil
}

// lastMultiple returns the largest multiple of period that is <= t, for
// t >= 0.
func lastMultiple(t, period int64) int64 {
	if period <= 0 {
		panic(fmt.Sprintf("core: lastMultiple: period %d must be positive", period))
	}
	return t - t%period
}

// EndUnit returns when the last group finishes downloading.
func (p *Schedule) EndUnit() int64 {
	if len(p.Downloads) == 0 {
		return p.PlayStartUnit
	}
	end := p.PlayStartUnit
	for _, d := range p.Downloads {
		if e := d.EndUnit(); e > end {
			end = e
		}
	}
	return end
}

// MaxConcurrentDownloads returns the peak number of simultaneously active
// group downloads in the plan. By construction it is at most 2 (one per
// loader); the tests assert this invariant across arrival phases.
func (p *Schedule) MaxConcurrentDownloads() int {
	type edge struct {
		t     int64
		delta int
	}
	edges := make([]edge, 0, 2*len(p.Downloads))
	for _, d := range p.Downloads {
		edges = append(edges, edge{d.StartUnit, +1}, edge{d.EndUnit(), -1})
	}
	// Insertion sort by time with -1 before +1 at equal times (a download
	// ending exactly when another starts does not overlap it).
	for i := 1; i < len(edges); i++ {
		for j := i; j > 0 && less(edges[j], edges[j-1]); j-- {
			edges[j], edges[j-1] = edges[j-1], edges[j]
		}
	}
	cur, peak := 0, 0
	for _, e := range edges {
		cur += e.delta
		if cur > peak {
			peak = cur
		}
	}
	return peak
}

func less(a, b struct {
	t     int64
	delta int
}) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.delta < b.delta
}
