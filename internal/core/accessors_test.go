package core

import (
	"math"
	"testing"

	"skyscraper/internal/series"
)

func TestSchemeAccessors(t *testing.T) {
	s := mustScheme(t, 150, 12) // K = 10, sizes 1,2,2,5,5,12,12,12,12,12
	if s.Width() != 12 {
		t.Errorf("Width = %d", s.Width())
	}
	sizes := s.Sizes()
	if len(sizes) != 10 || sizes[0] != 1 || sizes[9] != 12 {
		t.Errorf("Sizes = %v", sizes)
	}
	var sum int64
	for _, v := range sizes {
		sum += v
	}
	if s.TotalUnits() != sum {
		t.Errorf("TotalUnits = %d, want %d", s.TotalUnits(), sum)
	}
	if got := s.ChannelPeriodUnits(6); got != 12 {
		t.Errorf("ChannelPeriodUnits(6) = %d, want 12", got)
	}
	if s.Name() != "SB:W=12" {
		t.Errorf("Name = %q", s.Name())
	}
	unc := mustScheme(t, 150, 0)
	if unc.Name() != "SB:W=infinite" {
		t.Errorf("uncapped Name = %q", unc.Name())
	}
	for _, bad := range []int{0, 11} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ChannelPeriodUnits(%d) did not panic", bad)
				}
			}()
			s.ChannelPeriodUnits(bad)
		}()
	}
}

func TestScheduleEndUnit(t *testing.T) {
	s := mustScheme(t, 150, 12)
	plan, err := s.PlanSchedule(7)
	if err != nil {
		t.Fatal(err)
	}
	end := plan.EndUnit()
	for _, d := range plan.Downloads {
		if d.EndUnit() > end {
			t.Errorf("download ends at %d past plan end %d", d.EndUnit(), end)
		}
	}
	// The last group's download reaches exactly the plan end.
	last := plan.Downloads[len(plan.Downloads)-1]
	if last.EndUnit() != end {
		t.Errorf("plan end %d != last download end %d", end, last.EndUnit())
	}
	empty := &Schedule{PlayStartUnit: 9}
	if empty.EndUnit() != 9 {
		t.Errorf("empty plan EndUnit = %d", empty.EndUnit())
	}
}

func TestGeneralDownloadEndUnit(t *testing.T) {
	groups := series.Groups([]int64{1, 2, 2})
	plan, err := PlanGeneral(groups, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range plan.Downloads {
		if want := d.StartUnit + int64(d.Group.Count)*d.Group.Size; d.EndUnit() != want {
			t.Errorf("GeneralDownload.EndUnit = %d, want %d", d.EndUnit(), want)
		}
	}
}

func TestProfileAtAndMaxMbit(t *testing.T) {
	s := mustScheme(t, 45, 2) // K = 3: fragments 1,2,2
	plan, err := s.PlanSchedule(4)
	if err != nil {
		t.Fatal(err)
	}
	bp, err := s.Profile(plan)
	if err != nil {
		t.Fatal(err)
	}
	// Outside the window.
	if bp.At(bp.StartUnit-5) != 0 {
		t.Error("At before start != 0")
	}
	if bp.At(bp.EndUnit+5) != bp.Final() {
		t.Error("At past end != Final")
	}
	// Interpolation between breakpoints must agree with the max.
	var maxSeen int64
	for u := bp.StartUnit; u <= bp.EndUnit; u++ {
		if v := bp.At(u); v > maxSeen {
			maxSeen = v
		}
		if v := bp.At(u); v < 0 {
			t.Fatalf("negative occupancy %d at %d", v, u)
		}
	}
	if maxSeen != bp.Max() {
		t.Errorf("pointwise max %d != Max() %d", maxSeen, bp.Max())
	}
	// MaxMbit converts units into Mbit.
	want := float64(bp.Max()) * 60 * 1.5 * s.UnitMinutes()
	if got := bp.MaxMbit(1.5, s.UnitMinutes()); math.Abs(got-want) > 1e-12 {
		t.Errorf("MaxMbit = %v, want %v", got, want)
	}
}

func TestLastMultiple(t *testing.T) {
	cases := []struct{ t, period, want int64 }{
		{0, 5, 0}, {4, 5, 0}, {5, 5, 5}, {14, 5, 10}, {7, 1, 7},
	}
	for _, c := range cases {
		if got := lastMultiple(c.t, c.period); got != c.want {
			t.Errorf("lastMultiple(%d, %d) = %d, want %d", c.t, c.period, got, c.want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("lastMultiple with period 0 did not panic")
		}
	}()
	lastMultiple(3, 0)
}

func TestProfileFinalEmptyPoints(t *testing.T) {
	bp := &BufferProfile{}
	if bp.Final() != 0 || bp.Max() != 0 || bp.At(3) != 0 {
		t.Error("empty profile not all-zero")
	}
}
