package pyramid

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"skyscraper/internal/vod"
)

func mustNew(t *testing.T, serverMbps float64, m Method) *Scheme {
	t.Helper()
	s, err := New(vod.DefaultConfig(serverMbps), m)
	if err != nil {
		t.Fatalf("New(B=%v, %v): %v", serverMbps, m, err)
	}
	return s
}

func TestParameterDetermination(t *testing.T) {
	// B/(b*M*e) = B/40.77; PB:a ceils, PB:b floors.
	cases := []struct {
		serverMbps   float64
		method       Method
		wantK        int
		wantAlphaLoE bool // alpha <= e for MethodA, >= e for MethodB
	}{
		{100, MethodA, 3, true},
		{100, MethodB, 2, false},
		{300, MethodA, 8, true},
		{300, MethodB, 7, false},
		{600, MethodA, 15, true},
		{600, MethodB, 14, false},
	}
	for _, c := range cases {
		s := mustNew(t, c.serverMbps, c.method)
		if s.K() != c.wantK {
			t.Errorf("B=%v %v: K = %d, want %d", c.serverMbps, c.method, s.K(), c.wantK)
		}
		wantAlpha := c.serverMbps / (1.5 * 10 * float64(c.wantK))
		if math.Abs(s.Alpha()-wantAlpha) > 1e-12 {
			t.Errorf("B=%v %v: alpha = %v, want %v", c.serverMbps, c.method, s.Alpha(), wantAlpha)
		}
		if c.wantAlphaLoE && s.Alpha() > E+1e-12 {
			t.Errorf("B=%v %v: alpha = %v > e", c.serverMbps, c.method, s.Alpha())
		}
		if !c.wantAlphaLoE && s.Alpha() < E-1e-12 {
			t.Errorf("B=%v %v: alpha = %v < e", c.serverMbps, c.method, s.Alpha())
		}
	}
}

func TestInfeasibleBelow90(t *testing.T) {
	// Section 5.1: "PB and PPB do not work if the server bandwidth is
	// less than 90 Mbits/sec (i.e., alpha becomes less than one)."
	for _, b := range []float64{40, 60, 80} {
		if _, err := New(vod.DefaultConfig(b), MethodB); !errors.Is(err, vod.ErrInfeasible) {
			t.Errorf("B=%v PB:b: err = %v, want ErrInfeasible", b, err)
		}
	}
	if _, err := New(vod.DefaultConfig(100), MethodB); err != nil {
		t.Errorf("B=100 PB:b should be feasible: %v", err)
	}
}

func TestFragmentsSumToD(t *testing.T) {
	for _, b := range []float64{100, 200, 320, 600} {
		for _, m := range []Method{MethodA, MethodB} {
			s := mustNew(t, b, m)
			var sum float64
			for i := 1; i <= s.K(); i++ {
				sum += s.FragmentMinutes(i)
			}
			if math.Abs(sum-120) > 1e-6 {
				t.Errorf("B=%v %v: fragments sum to %v, want 120", b, m, sum)
			}
			// Geometric growth.
			for i := 2; i <= s.K(); i++ {
				r := s.FragmentMinutes(i) / s.FragmentMinutes(i-1)
				if math.Abs(r-s.Alpha()) > 1e-9 {
					t.Fatalf("B=%v %v: D_%d/D_%d = %v, want alpha=%v", b, m, i, i-1, r, s.Alpha())
				}
			}
		}
	}
}

// TestPaperDiskBandwidth checks Section 5.2: "an average bandwidth as high
// as 50 times the display rate (about 10 MBytes/sec) is required by PB."
func TestPaperDiskBandwidth(t *testing.T) {
	s := mustNew(t, 600, MethodB)
	got := s.DiskBandwidthMbps()
	if ratio := got / 1.5; ratio < 40 || ratio > 65 {
		t.Errorf("disk bandwidth = %.1fx display rate, want roughly 50x", ratio)
	}
	if mbps := vod.MbpsToMBps(got); mbps < 8 || mbps > 13 {
		t.Errorf("disk bandwidth = %.1f MByte/s, want about 10", mbps)
	}
}

// TestPaperStorage checks Section 5.4: "PB scheme requires each client to
// have more than 1.0 GBytes of disk space, which is more than 75% of the
// length of a video", and Section 2's asymptote 0.84*(60*b*D) for M = 10.
func TestPaperStorage(t *testing.T) {
	s := mustNew(t, 600, MethodB)
	gb := vod.MbitToMByte(s.BufferMbit()) / 1000
	if gb < 1.0 {
		t.Errorf("storage = %.2f GByte, want > 1.0", gb)
	}
	frac := s.BufferMbit() / s.Config().VideoMbits()
	if frac < 0.75 || frac > 0.9 {
		t.Errorf("storage fraction = %.3f of video, want 0.75..0.9", frac)
	}
	// Asymptote: alpha -> e exactly when B/(b*M*e) is integral.
	bExact := 1.5 * 10 * E * 40 // K = 40, alpha = e
	big, err := New(vod.Config{ServerMbps: bExact, Videos: 10, LengthMin: 120, RateMbps: 1.5}, MethodB)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(big.Alpha()-E) > 1e-9 {
		t.Fatalf("alpha = %v, want e", big.Alpha())
	}
	if frac := big.BufferMbit() / big.Config().VideoMbits(); math.Abs(frac-0.84) > 0.01 {
		t.Errorf("asymptotic storage fraction = %.4f, want about 0.84", frac)
	}
}

// TestLatencyExcellent checks Section 5.3: "PB offers excellent access
// latency ... improving the latency from 0.1 minutes to 0.0001 minutes".
func TestLatencyExcellent(t *testing.T) {
	s := mustNew(t, 300, MethodB)
	if lat := s.AccessLatencyMin(); lat > 0.1 {
		t.Errorf("latency at B=300 = %v min, want < 0.1", lat)
	}
	// Exponential improvement with B: doubling B must improve latency by
	// far more than 2x.
	l300 := mustNew(t, 300, MethodB).AccessLatencyMin()
	l600 := mustNew(t, 600, MethodB).AccessLatencyMin()
	if l300/l600 < 100 {
		t.Errorf("latency ratio B=300/B=600 = %v, want exponential (>100x)", l300/l600)
	}
}

func TestAccessLatencyIsCycleOfChannel1(t *testing.T) {
	// The latency formula must equal M broadcasts of S1 at rate B/K.
	s := mustNew(t, 320, MethodA)
	cycle := float64(s.Config().Videos) * s.BroadcastMinutes(1)
	if math.Abs(cycle-s.AccessLatencyMin()) > 1e-12 {
		t.Errorf("cycle = %v != latency %v", cycle, s.AccessLatencyMin())
	}
	// And D1/alpha.
	if want := s.FragmentMinutes(1) / s.Alpha(); math.Abs(want-s.AccessLatencyMin()) > 1e-12 {
		t.Errorf("latency = %v, want D1/alpha = %v", s.AccessLatencyMin(), want)
	}
}

func TestAccessors(t *testing.T) {
	s := mustNew(t, 320, MethodA)
	if s.Method() != MethodA || s.Name() != "PB:a" {
		t.Errorf("method accessors wrong: %v %q", s.Method(), s.Name())
	}
	if got := s.ChannelMbps(); math.Abs(got-320/float64(s.K())) > 1e-12 {
		t.Errorf("ChannelMbps = %v", got)
	}
	if !strings.Contains(s.String(), "PB:a") {
		t.Errorf("String() = %q", s.String())
	}
	var _ vod.Performer = s
}

func TestFragmentPanics(t *testing.T) {
	s := mustNew(t, 320, MethodA)
	for _, i := range []int{0, s.K() + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FragmentMinutes(%d) did not panic", i)
				}
			}()
			s.FragmentMinutes(i)
		}()
	}
}

func TestBadInputs(t *testing.T) {
	if _, err := New(vod.Config{}, MethodA); err == nil {
		t.Error("New accepted zero config")
	}
	if _, err := New(vod.DefaultConfig(300), Method(99)); err == nil {
		t.Error("New accepted unknown method")
	}
}

// TestInvariantsAcrossBandwidths property-checks every feasible PB
// instantiation on the study's bandwidth range.
func TestInvariantsAcrossBandwidths(t *testing.T) {
	f := func(bSel uint16, mSel bool) bool {
		b := 85 + float64(bSel%5160)/10 // 85..601
		method := MethodA
		if mSel {
			method = MethodB
		}
		s, err := New(vod.DefaultConfig(b), method)
		if err != nil {
			return true // infeasible is a legal outcome near the floor
		}
		var sum float64
		for i := 1; i <= s.K(); i++ {
			d := s.FragmentMinutes(i)
			if d <= 0 {
				return false
			}
			sum += d
		}
		return math.Abs(sum-120) < 1e-6 &&
			s.Alpha() > 1 &&
			s.AccessLatencyMin() > 0 &&
			s.BufferMbit() < s.Config().VideoMbits() &&
			s.DiskBandwidthMbps() > s.Config().RateMbps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
