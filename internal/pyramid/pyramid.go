// Package pyramid implements Pyramid Broadcasting (PB), the baseline scheme
// of Viswanathan and Imieliński that Section 2 of the skyscraper paper
// describes and Section 5 compares against.
//
// PB partitions each video into K segments of geometrically increasing
// size (factor alpha) and divides the server bandwidth into K logical
// channels of B/K Mbit/s. Channel i broadcasts the i-th segments of all M
// videos sequentially. Because the channel rate B/K far exceeds the display
// rate, a client downloads each segment much faster than it plays it,
// yielding excellent access latency at the cost of a very large client disk
// (more than 75% of the video) and disk bandwidth around 50x the display
// rate.
package pyramid

import (
	"fmt"
	"math"

	"skyscraper/internal/vod"
)

// E is Euler's constant, the alpha value PB's parameter methods aim for:
// for a fixed bandwidth budget, access latency is minimized near alpha = e.
const E = math.E

// Method selects PB's design-parameter determination rule (Section 2).
type Method int

const (
	// MethodA ("PB:a") chooses K = ceil(B/(b*M*e)), giving alpha <= e.
	MethodA Method = iota
	// MethodB ("PB:b") chooses K = floor(B/(b*M*e)), giving alpha >= e.
	MethodB
)

// String implements fmt.Stringer.
func (m Method) String() string {
	if m == MethodA {
		return "PB:a"
	}
	return "PB:b"
}

// Scheme is an instantiated Pyramid Broadcasting configuration.
type Scheme struct {
	cfg    vod.Config
	method Method
	k      int
	alpha  float64
}

// New determines PB's design parameters for cfg using the given method. It
// returns vod.ErrInfeasible (wrapped) when the continuity constraint
// alpha > 1 cannot be met — for the paper's workload this happens below
// roughly 90 Mbit/s ("PB and PPB do not work if the server bandwidth is
// less than 90 Mbits/sec", Section 5.1).
func New(cfg vod.Config, method Method) (*Scheme, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	raw := cfg.ServerMbps / (cfg.RateMbps * float64(cfg.Videos) * E)
	var k int
	switch method {
	case MethodA:
		k = int(math.Ceil(raw))
	case MethodB:
		k = int(math.Floor(raw))
	default:
		return nil, fmt.Errorf("pyramid: unknown method %d", method)
	}
	if k < 2 {
		return nil, fmt.Errorf("pyramid: %v needs K >= 2, got %d for B = %v Mbit/s: %w",
			method, k, cfg.ServerMbps, vod.ErrInfeasible)
	}
	alpha := cfg.ServerMbps / (cfg.RateMbps * float64(cfg.Videos) * float64(k))
	if alpha <= 1 {
		return nil, fmt.Errorf("pyramid: %v gives alpha = %v <= 1 for B = %v Mbit/s: %w",
			method, alpha, cfg.ServerMbps, vod.ErrInfeasible)
	}
	return &Scheme{cfg: cfg, method: method, k: k, alpha: alpha}, nil
}

// Config returns the system parameters the scheme was built for.
func (s *Scheme) Config() vod.Config { return s.cfg }

// Method returns the parameter-determination method.
func (s *Scheme) Method() Method { return s.method }

// K returns the number of segments per video (= logical channels).
func (s *Scheme) K() int { return s.k }

// Alpha returns the geometric fragmentation factor.
func (s *Scheme) Alpha() float64 { return s.alpha }

// Name implements vod.Performer.
func (s *Scheme) Name() string { return s.method.String() }

// ChannelMbps returns the bandwidth of one logical channel, B/K.
func (s *Scheme) ChannelMbps() float64 { return s.cfg.ServerMbps / float64(s.k) }

// FragmentMinutes returns D_i, the playback length in minutes of segment i
// (1-based):
//
//	D_i = D * alpha^(i-1) * (alpha-1) / (alpha^K - 1)
//
// so that the D_i form a geometric series with factor alpha summing to D.
func (s *Scheme) FragmentMinutes(i int) float64 {
	if i < 1 || i > s.k {
		panic(fmt.Sprintf("pyramid: FragmentMinutes(%d): segment out of range 1..%d", i, s.k))
	}
	return s.cfg.LengthMin * math.Pow(s.alpha, float64(i-1)) * (s.alpha - 1) / (math.Pow(s.alpha, float64(s.k)) - 1)
}

// FragmentMbits returns the size of segment i in Mbit.
func (s *Scheme) FragmentMbits(i int) float64 {
	return 60 * s.cfg.RateMbps * s.FragmentMinutes(i)
}

// BroadcastMinutes returns how long one broadcast of segment i occupies its
// logical channel: the segment's data transmitted at B/K Mbit/s.
func (s *Scheme) BroadcastMinutes(i int) float64 {
	return s.FragmentMbits(i) / (60 * s.ChannelMbps())
}

// AccessLatencyMin implements vod.Performer. The access time of a video is
// the access time of its first segment: channel 1 cycles through the first
// segments of all M videos, so the worst wait is one full cycle,
//
//	M * 60*b*D1 / (B/K) seconds = D1 * M*K*b/B minutes = D1/alpha.
func (s *Scheme) AccessLatencyMin() float64 {
	return s.FragmentMinutes(1) * float64(s.cfg.Videos*s.k) * s.cfg.RateMbps / s.cfg.ServerMbps
}

// DiskBandwidthMbps implements vod.Performer: the client plays back at b
// while downloading from up to two logical channels at B/K each,
//
//	b + 2*B/K    (approaches b*(2*M*e + 1), about 55x b for M = 10)
func (s *Scheme) DiskBandwidthMbps() float64 {
	return s.cfg.RateMbps + 2*s.ChannelMbps()
}

// BufferMbit implements vod.Performer. The maximum occupancy occurs while
// playing back segment K-1 and receiving both S_{K-1} and S_K: all of
// S_{K-1} plus the portion of S_K not yet consumed when its download
// completes,
//
//	60*b*(D_{K-1} + D_K*(1 - b*K/B)) Mbit
//
// which approaches 0.84 * (60*b*D) for M = 10 at large B — more than 80%
// of the video file (Section 2).
func (s *Scheme) BufferMbit() float64 {
	dPrev := s.FragmentMinutes(s.k - 1)
	dLast := s.FragmentMinutes(s.k)
	played := s.cfg.RateMbps * float64(s.k) / s.cfg.ServerMbps // = 1/(M*alpha)
	return 60 * s.cfg.RateMbps * (dPrev + dLast*(1-played))
}

// String summarizes the scheme.
func (s *Scheme) String() string {
	return fmt.Sprintf("%s{K=%d alpha=%.4f}", s.Name(), s.k, s.alpha)
}
