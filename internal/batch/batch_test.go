package batch

import (
	"math"
	"strings"
	"testing"

	"skyscraper/internal/catalog"
	"skyscraper/internal/trace"
	"skyscraper/internal/workload"
)

func TestPolicyByName(t *testing.T) {
	for _, name := range []string{"fcfs", "mql", "mfql", "FCFS", "MQL", "MFQL"} {
		p, err := PolicyByName(name)
		if err != nil || p == nil {
			t.Errorf("PolicyByName(%q) = %v, %v", name, p, err)
		}
	}
	if _, err := PolicyByName("lru"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestFCFSSelectsOldest(t *testing.T) {
	views := []QueueView{
		{Video: 0, Pending: 5, OldestArrivalMin: 10},
		{Video: 1, Pending: 1, OldestArrivalMin: 3},
		{Video: 2, Pending: 0},
	}
	if got := (FCFS{}).Select(20, views); got != 1 {
		t.Errorf("FCFS selected %d, want 1 (oldest head)", got)
	}
}

func TestMQLSelectsLongest(t *testing.T) {
	views := []QueueView{
		{Video: 0, Pending: 5, OldestArrivalMin: 10},
		{Video: 1, Pending: 9, OldestArrivalMin: 19},
		{Video: 2, Pending: 2, OldestArrivalMin: 1},
	}
	if got := (MQL{}).Select(20, views); got != 1 {
		t.Errorf("MQL selected %d, want 1 (longest queue)", got)
	}
}

func TestMFQLFactorsPopularity(t *testing.T) {
	// Equal queue lengths: the less popular video wins (its queue is
	// more surprising).
	views := []QueueView{
		{Video: 0, Pending: 4, Popularity: 0.5},
		{Video: 1, Pending: 4, Popularity: 0.02},
	}
	if got := (MFQL{}).Select(0, views); got != 1 {
		t.Errorf("MFQL selected %d, want 1 (rarer video)", got)
	}
	// But a much longer queue still wins.
	views[0].Pending = 100
	if got := (MFQL{}).Select(0, views); got != 0 {
		t.Errorf("MFQL selected %d, want 0 (overwhelming queue)", got)
	}
}

func TestEmptySelect(t *testing.T) {
	for _, p := range []Policy{FCFS{}, MQL{}, MFQL{}} {
		if got := p.Select(0, nil); got != -1 {
			t.Errorf("%s.Select(empty) = %d, want -1", p.Name(), got)
		}
	}
}

func genRequests(t *testing.T, n int, rate float64, videos int, patience float64, seed uint64) ([]workload.Request, *catalog.Catalog) {
	t.Helper()
	cat, err := catalog.New(videos, catalog.DefaultSkew, 120, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	g, err := workload.NewGenerator(workload.Config{RatePerMin: rate, Seed: seed, MeanPatienceMin: patience}, cat)
	if err != nil {
		t.Fatal(err)
	}
	return g.Take(n), cat
}

func TestRunServesEverythingWithoutReneging(t *testing.T) {
	reqs, _ := genRequests(t, 500, 2, 20, 0, 1)
	st, err := Run(ServerConfig{Channels: 8, Videos: 20, LengthMin: 120}, MQL{}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if st.Served != 500 || st.Reneged != 0 || st.Pending != 0 {
		t.Errorf("served/reneged/pending = %d/%d/%d, want 500/0/0", st.Served, st.Reneged, st.Pending)
	}
	if st.BatchSize.Mean() <= 1 {
		t.Errorf("mean batch size %v; batching should aggregate requests at rate 2/min", st.BatchSize.Mean())
	}
	if int(st.BatchSize.Sum()) != st.Served {
		t.Errorf("batch sizes sum to %v, served %d", st.BatchSize.Sum(), st.Served)
	}
	if st.StreamsStarted != st.BatchSize.Count() {
		t.Errorf("streams %d vs batches %d", st.StreamsStarted, st.BatchSize.Count())
	}
	if st.ChannelBusyFrac <= 0 || st.ChannelBusyFrac > 1 {
		t.Errorf("busy fraction %v outside (0, 1]", st.ChannelBusyFrac)
	}
}

func TestRunReneging(t *testing.T) {
	// Overload: 1 channel, long videos, impatient clients.
	reqs, _ := genRequests(t, 300, 4, 10, 3, 2)
	st, err := Run(ServerConfig{Channels: 1, Videos: 10, LengthMin: 120}, MQL{}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if st.Reneged == 0 {
		t.Error("no reneging under extreme overload with 3-minute patience")
	}
	if st.Served+st.Reneged+st.Pending != 300 {
		t.Errorf("requests unaccounted: %d+%d+%d != 300", st.Served, st.Reneged, st.Pending)
	}
}

// TestMQLBeatsFCFSOnThroughput reproduces the claim behind MQL's design
// (Section 1: "the objective of this approach is to maximize the server
// throughput"): under overload with reneging, MQL serves more requests than
// FCFS.
func TestMQLBeatsFCFSOnThroughput(t *testing.T) {
	cfg := ServerConfig{Channels: 2, Videos: 30, LengthMin: 120}
	reqs, cat := genRequests(t, 2000, 6, 30, 15, 3)
	probs := make([]float64, 30)
	for i := range probs {
		probs[i] = cat.Prob(i)
	}
	cfg.Popularity = probs
	mql, err := Run(cfg, MQL{}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	fcfs, err := Run(cfg, FCFS{}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if mql.Served <= fcfs.Served {
		t.Errorf("MQL served %d, FCFS served %d; MQL should maximize throughput", mql.Served, fcfs.Served)
	}
}

func TestWaitTimesNonNegative(t *testing.T) {
	reqs, _ := genRequests(t, 200, 1, 5, 0, 4)
	for _, p := range []Policy{FCFS{}, MQL{}, MFQL{}} {
		st, err := Run(ServerConfig{Channels: 3, Videos: 5, LengthMin: 60}, p, reqs)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if st.WaitMin.Min() < 0 {
			t.Errorf("%s: negative wait %v", p.Name(), st.WaitMin.Min())
		}
		if math.IsNaN(st.WaitMin.Mean()) {
			t.Errorf("%s: NaN mean wait", p.Name())
		}
	}
}

func TestRunValidation(t *testing.T) {
	reqs, _ := genRequests(t, 5, 1, 5, 0, 5)
	if _, err := Run(ServerConfig{Channels: 0, Videos: 5, LengthMin: 60}, MQL{}, reqs); err == nil {
		t.Error("accepted 0 channels")
	}
	if _, err := Run(ServerConfig{Channels: 1, Videos: 0, LengthMin: 60}, MQL{}, reqs); err == nil {
		t.Error("accepted 0 videos")
	}
	if _, err := Run(ServerConfig{Channels: 1, Videos: 5, LengthMin: 0}, MQL{}, reqs); err == nil {
		t.Error("accepted 0 length")
	}
	if _, err := Run(ServerConfig{Channels: 1, Videos: 5, LengthMin: 60}, nil, reqs); err == nil {
		t.Error("accepted nil policy")
	}
	if _, err := Run(ServerConfig{Channels: 1, Videos: 5, LengthMin: 60, Popularity: []float64{1}}, MQL{}, reqs); err == nil {
		t.Error("accepted mismatched popularity")
	}
	bad := []workload.Request{{ID: 0, ArrivalMin: 1, VideoRank: 99}}
	if _, err := Run(ServerConfig{Channels: 1, Videos: 5, LengthMin: 60}, MQL{}, bad); err == nil {
		t.Error("accepted out-of-catalog request")
	}
	unordered := []workload.Request{{ID: 0, ArrivalMin: 5}, {ID: 1, ArrivalMin: 1}}
	if _, err := Run(ServerConfig{Channels: 1, Videos: 5, LengthMin: 60}, MQL{}, unordered); err == nil {
		t.Error("accepted unordered arrivals")
	}
}

// TestBoundedWaitWithAmpleChannels: with one channel per video, every
// request waits at most one video length (the head-of-line stream).
func TestBoundedWaitWithAmpleChannels(t *testing.T) {
	reqs, _ := genRequests(t, 400, 3, 5, 0, 6)
	st, err := Run(ServerConfig{Channels: 5, Videos: 5, LengthMin: 30}, FCFS{}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if st.WaitMin.Max() > 30+1e-9 {
		t.Errorf("max wait %v exceeds one video length with a channel per video", st.WaitMin.Max())
	}
}

func TestRunTracing(t *testing.T) {
	reqs, _ := genRequests(t, 40, 2, 5, 1, 9)
	tr := trace.New(1024)
	_, err := Run(ServerConfig{Channels: 1, Videos: 5, LengthMin: 120, Trace: tr}, MQL{}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	var arrives, streams, reneges int
	for _, e := range tr.Events() {
		switch e.Kind {
		case "arrive":
			arrives++
		case "stream-start":
			streams++
		case "renege":
			reneges++
		}
	}
	if arrives != 40 {
		t.Errorf("traced %d arrivals, want 40", arrives)
	}
	if streams == 0 || reneges == 0 {
		t.Errorf("traced %d streams, %d reneges; want both > 0 under overload", streams, reneges)
	}
	var sb strings.Builder
	if _, err := tr.WriteTo(&sb); err != nil || sb.Len() == 0 {
		t.Errorf("WriteTo: %v, %d bytes", err, sb.Len())
	}
}
