package batch

import (
	"fmt"

	"skyscraper/internal/des"
	"skyscraper/internal/metrics"
	"skyscraper/internal/trace"
	"skyscraper/internal/workload"
)

// ServerConfig parameterizes a scheduled-multicast video server.
type ServerConfig struct {
	// Channels is the number of concurrent multicast streams the server
	// can sustain (its bandwidth divided by the display rate).
	Channels int
	// Videos is the catalog size served by batching.
	Videos int
	// LengthMin is each video's playback (and hence channel-occupancy)
	// duration in minutes.
	LengthMin float64
	// Popularity optionally supplies per-video access probabilities for
	// factored policies; nil means uniform.
	Popularity []float64
	// Trace, when non-nil, journals arrivals, stream starts and
	// reneging.
	Trace *trace.Buffer
}

// Stats reports the outcome of a batching run.
type Stats struct {
	// Served and Reneged count requests by outcome; Pending counts those
	// still queued when the run ended.
	Served, Reneged, Pending int
	// WaitMin summarizes the waiting times of served requests.
	WaitMin metrics.Summary
	// BatchSize summarizes how many requests each multicast stream
	// served — the paper's motivation for batching is this number
	// exceeding 1.
	BatchSize metrics.Summary
	// StreamsStarted is the number of multicast streams the server
	// launched.
	StreamsStarted int
	// ChannelBusyFrac is the time-averaged fraction of channels busy.
	ChannelBusyFrac float64
}

// Run simulates the server under the given policy over a fixed request
// sequence (as produced by workload.Generator), draining all queues at the
// end of arrivals. Requests whose PatienceMin elapses before service renege
// and never count as served.
func Run(cfg ServerConfig, policy Policy, reqs []workload.Request) (*Stats, error) {
	if cfg.Channels <= 0 {
		return nil, fmt.Errorf("batch: need at least one channel, got %d", cfg.Channels)
	}
	if cfg.Videos <= 0 {
		return nil, fmt.Errorf("batch: need at least one video, got %d", cfg.Videos)
	}
	if cfg.LengthMin <= 0 {
		return nil, fmt.Errorf("batch: video length %v must be positive", cfg.LengthMin)
	}
	if cfg.Popularity != nil && len(cfg.Popularity) != cfg.Videos {
		return nil, fmt.Errorf("batch: %d popularity entries for %d videos", len(cfg.Popularity), cfg.Videos)
	}
	if policy == nil {
		return nil, fmt.Errorf("batch: nil policy")
	}

	type pending struct {
		arrival float64
		expires float64 // 0 = never
	}
	var (
		sim      des.Sim
		queues   = make([][]pending, cfg.Videos)
		idle     = cfg.Channels
		st       Stats
		busy     metrics.Gauge
		lastTime float64
	)

	pop := func(v int) float64 {
		if cfg.Popularity == nil {
			return 1 / float64(cfg.Videos)
		}
		return cfg.Popularity[v]
	}

	// reap drops reneged requests from the front sections of a queue.
	reap := func(now float64, v int) {
		q := queues[v][:0]
		for _, p := range queues[v] {
			if p.expires > 0 && p.expires <= now {
				st.Reneged++
				cfg.Trace.Addf(now, "renege", "video %d request from t=%.2f gave up", v, p.arrival)
				continue
			}
			q = append(q, p)
		}
		queues[v] = q
	}

	var dispatch func(now float64)
	dispatch = func(now float64) {
		for idle > 0 {
			views := make([]QueueView, 0, cfg.Videos)
			for v := range queues {
				reap(now, v)
				if len(queues[v]) == 0 {
					continue
				}
				views = append(views, QueueView{
					Video:            v,
					Pending:          len(queues[v]),
					OldestArrivalMin: queues[v][0].arrival,
					Popularity:       pop(v),
				})
			}
			if len(views) == 0 {
				return
			}
			choice := policy.Select(now, views)
			if choice < 0 || choice >= len(views) {
				return // policy declines; channel stays idle
			}
			v := views[choice].Video
			// Serve the whole batch with one multicast stream.
			for _, p := range queues[v] {
				st.Served++
				st.WaitMin.Observe(now - p.arrival)
			}
			st.BatchSize.Observe(float64(len(queues[v])))
			st.StreamsStarted++
			cfg.Trace.Addf(now, "stream-start", "video %d serves a batch of %d", v, len(queues[v]))
			queues[v] = nil
			idle--
			busy.Set(now, float64(cfg.Channels-idle))
			sim.After(cfg.LengthMin, func(end float64) {
				idle++
				busy.Set(end, float64(cfg.Channels-idle))
				dispatch(end)
			})
		}
	}

	for _, r := range reqs {
		r := r
		if r.VideoRank < 0 || r.VideoRank >= cfg.Videos {
			return nil, fmt.Errorf("batch: request %d for video %d outside catalog 0..%d", r.ID, r.VideoRank, cfg.Videos-1)
		}
		if r.ArrivalMin < lastTime {
			return nil, fmt.Errorf("batch: request %d arrives at %v before request %d", r.ID, r.ArrivalMin, r.ID-1)
		}
		lastTime = r.ArrivalMin
		sim.At(r.ArrivalMin, func(now float64) {
			cfg.Trace.Addf(now, "arrive", "request %d for video %d", r.ID, r.VideoRank)
			p := pending{arrival: now}
			if r.PatienceMin > 0 {
				p.expires = now + r.PatienceMin
			}
			queues[r.VideoRank] = append(queues[r.VideoRank], p)
			dispatch(now)
		})
	}
	sim.RunAll()
	end := sim.Now()
	for v := range queues {
		reap(end, v)
		st.Pending += len(queues[v])
	}
	if cfg.Channels > 0 {
		st.ChannelBusyFrac = busy.TimeAverage(end) / float64(cfg.Channels)
	}
	return &st, nil
}
