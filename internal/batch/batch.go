// Package batch implements the scheduled-multicast substrate the paper
// assumes for the less popular videos (Section 1): client requests queue up
// per video, and whenever a server channel becomes available a scheduling
// policy picks one batch to serve with a single multicast stream. The
// policies implemented are the ones the paper cites — first-come-first-
// served, Maximum Queue Length (MQL, Dan et al.), and Maximum Factored
// Queue Length — plus the machinery to combine batching with periodic
// broadcast into the hybrid architecture the paper reports "offered the
// best performance".
package batch

import (
	"fmt"
	"math"
)

// QueueView is the per-video state a policy sees when a channel frees.
type QueueView struct {
	// Video is the catalog rank.
	Video int
	// Pending is the number of waiting requests.
	Pending int
	// OldestArrivalMin is the arrival time of the longest-waiting
	// request (undefined when Pending is 0).
	OldestArrivalMin float64
	// Popularity is the video's access probability, for factored
	// policies.
	Popularity float64
}

// Policy selects which video's batch a freed channel should serve.
type Policy interface {
	// Name identifies the policy.
	Name() string
	// Select returns the index within views of the queue to serve, or
	// -1 to leave the channel idle. Only non-empty queues are offered.
	Select(now float64, views []QueueView) int
}

// FCFS serves the batch containing the longest-waiting request,
// guaranteeing a bounded wait for every client at some cost in throughput.
type FCFS struct{}

// Name implements Policy.
func (FCFS) Name() string { return "FCFS" }

// Select implements Policy.
func (FCFS) Select(_ float64, views []QueueView) int {
	best := -1
	for i, v := range views {
		if v.Pending == 0 {
			continue
		}
		if best == -1 || v.OldestArrivalMin < views[best].OldestArrivalMin {
			best = i
		}
	}
	return best
}

// MQL is Maximum Queue Length (Dan, Sitaram and Shahabuddin): serve the
// video with the most pending requests, maximizing server throughput at the
// cost of starving unpopular titles.
type MQL struct{}

// Name implements Policy.
func (MQL) Name() string { return "MQL" }

// Select implements Policy.
func (MQL) Select(_ float64, views []QueueView) int {
	best := -1
	for i, v := range views {
		if v.Pending == 0 {
			continue
		}
		if best == -1 || v.Pending > views[best].Pending {
			best = i
		}
	}
	return best
}

// MFQL is Maximum Factored Queue Length: serve the video maximizing
// queue length divided by the square root of its popularity, a known
// fairness/throughput compromise between FCFS and MQL.
type MFQL struct{}

// Name implements Policy.
func (MFQL) Name() string { return "MFQL" }

// Select implements Policy.
func (MFQL) Select(_ float64, views []QueueView) int {
	best, bestScore := -1, math.Inf(-1)
	for i, v := range views {
		if v.Pending == 0 {
			continue
		}
		score := float64(v.Pending)
		if v.Popularity > 0 {
			score /= math.Sqrt(v.Popularity)
		}
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// PolicyByName returns the named policy ("fcfs", "mql" or "mfql").
func PolicyByName(name string) (Policy, error) {
	switch name {
	case "fcfs", "FCFS":
		return FCFS{}, nil
	case "mql", "MQL":
		return MQL{}, nil
	case "mfql", "MFQL":
		return MFQL{}, nil
	default:
		return nil, fmt.Errorf("batch: unknown policy %q (want fcfs, mql or mfql)", name)
	}
}
