package faults

import (
	"sync"
	"testing"
	"time"

	"skyscraper/internal/mcast"
	"skyscraper/internal/wire"
)

// recorder is an mcast.Sender that keeps a copy of every frame, in send
// order. Copies matter: the injector may pass through the caller's buffer,
// which real pacers reuse.
type recorder struct {
	mu     sync.Mutex
	frames map[mcast.Group][][]byte
}

func newRecorder() *recorder {
	return &recorder{frames: make(map[mcast.Group][][]byte)}
}

func (r *recorder) Send(g mcast.Group, frame []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.frames[g] = append(r.frames[g], append([]byte(nil), frame...))
	return len(frame), nil
}

func (r *recorder) offsets(g mcast.Group) []uint32 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []uint32
	for _, f := range r.frames[g] {
		_, _, _, off, ok := wire.PeekID(f)
		if !ok {
			out = append(out, ^uint32(0))
			continue
		}
		out = append(out, off)
	}
	return out
}

// sendStream pushes nchunks frames for one channel through the injector,
// reusing the encode buffer the way the server's pacer does.
func sendStream(t *testing.T, in *Injector, g mcast.Group, video, channel uint16, nchunks int) {
	t.Helper()
	var buf []byte
	for i := 0; i < nchunks; i++ {
		c := wire.Chunk{
			Video: video, Channel: channel, Seq: 1,
			Offset: uint32(i * 64), Total: uint32(nchunks * 64),
			Payload: make([]byte, 64),
		}
		frame, err := c.Encode(buf[:0])
		if err != nil {
			t.Fatal(err)
		}
		buf = frame
		if _, err := in.Send(g, frame); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFaultPlanValidate(t *testing.T) {
	bad := []Plan{
		{Drop: -0.1},
		{Duplicate: 1.5},
		{Reorder: 2},
		{Delay: -1},
		{Delay: 0.5}, // MaxDelay missing
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %d (%+v) accepted", i, p)
		}
	}
	good := Plan{Drop: 0.1, Duplicate: 0.2, Reorder: 0.3, Delay: 0.4, MaxDelay: time.Millisecond}
	if err := good.Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	if _, err := New(nil, Plan{}); err == nil {
		t.Error("nil sender accepted")
	}
}

// TestFaultPlanDeterministic is the heart of the chaos design: two
// injectors built from the same plan must injure exactly the same chunk
// positions, regardless of when they run.
func TestFaultPlanDeterministic(t *testing.T) {
	g := mcast.Group{}
	plan := Plan{Seed: 42, Drop: 0.3, Duplicate: 0.2, Reorder: 0.2}
	var seqs [2][]uint32
	var counts [2]Counts
	for run := 0; run < 2; run++ {
		rec := newRecorder()
		in, err := New(rec, plan)
		if err != nil {
			t.Fatal(err)
		}
		sendStream(t, in, g, 1, 3, 200)
		in.Flush()
		seqs[run] = rec.offsets(g)
		counts[run] = in.Counts()
	}
	if counts[0] != counts[1] {
		t.Errorf("fault counts differ between identical plans: %+v vs %+v", counts[0], counts[1])
	}
	if len(seqs[0]) != len(seqs[1]) {
		t.Fatalf("output lengths differ: %d vs %d", len(seqs[0]), len(seqs[1]))
	}
	for i := range seqs[0] {
		if seqs[0][i] != seqs[1][i] {
			t.Fatalf("send order diverges at %d: %d vs %d", i, seqs[0][i], seqs[1][i])
		}
	}
	if counts[0].Dropped == 0 || counts[0].Duplicated == 0 || counts[0].Reordered == 0 {
		t.Errorf("expected all enabled faults to fire over 200 chunks: %+v", counts[0])
	}
}

// TestFaultSeqIndependence checks the deliberate design choice that a chunk
// position injured in one broadcast repetition is injured in every one.
func TestFaultSeqIndependence(t *testing.T) {
	plan := Plan{Seed: 7, Drop: 0.4}
	g := mcast.Group{}
	var perSeq [2]Counts
	for i, seq := range []uint32{1, 900} {
		rec := newRecorder()
		in, err := New(rec, plan)
		if err != nil {
			t.Fatal(err)
		}
		for c := 0; c < 100; c++ {
			frame, err := (&wire.Chunk{
				Video: 2, Channel: 1, Seq: seq,
				Offset: uint32(c * 64), Total: 6400, Payload: make([]byte, 64),
			}).Encode(nil)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := in.Send(g, frame); err != nil {
				t.Fatal(err)
			}
		}
		perSeq[i] = in.Counts()
	}
	if perSeq[0] != perSeq[1] {
		t.Errorf("fault pattern depends on repetition number: %+v vs %+v", perSeq[0], perSeq[1])
	}
}

func TestFaultDropRate(t *testing.T) {
	const n, rate = 2000, 0.25
	rec := newRecorder()
	in, err := New(rec, Plan{Seed: 11, Drop: rate})
	if err != nil {
		t.Fatal(err)
	}
	sendStream(t, in, mcast.Group{}, 1, 2, n)
	dropped := float64(in.Counts().Dropped)
	if got := dropped / n; got < rate-0.05 || got > rate+0.05 {
		t.Errorf("drop rate %v far from configured %v", got, rate)
	}
	if sent := len(rec.offsets(mcast.Group{})); sent != n-int(dropped) {
		t.Errorf("sent %d frames, want %d", sent, n-int(dropped))
	}
}

// TestFaultReorderSwaps verifies held frames are released after their
// successor, and that Flush releases a frame held at stream end.
func TestFaultReorderSwaps(t *testing.T) {
	g := mcast.Group{}
	rec := newRecorder()
	in, err := New(rec, Plan{Seed: 3, Reorder: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	sendStream(t, in, g, 1, 1, n)
	in.Flush()
	offs := rec.offsets(g)
	if len(offs) != n {
		t.Fatalf("reordering changed frame count: %d vs %d", len(offs), n)
	}
	seen := make(map[uint32]bool)
	inOrder := true
	var prev uint32
	for i, o := range offs {
		if seen[o] {
			t.Fatalf("offset %d sent twice", o)
		}
		seen[o] = true
		if i > 0 && o < prev {
			inOrder = false
		}
		prev = o
	}
	if got := in.Counts().Reordered; got == 0 {
		t.Fatal("no reorders over 100 chunks at rate 0.3")
	}
	if inOrder {
		t.Error("reordering left the stream fully ordered")
	}
}

func TestFaultDelayDefers(t *testing.T) {
	g := mcast.Group{}
	rec := newRecorder()
	in, err := New(rec, Plan{Seed: 5, Delay: 0.5, MaxDelay: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	const n = 60
	sendStream(t, in, g, 1, 1, n)
	delayed := in.Counts().Delayed
	if delayed == 0 {
		t.Fatal("no delays over 60 chunks at rate 0.5")
	}
	// Deferred sends land within MaxDelay; wait it out, then everything
	// must have arrived exactly once.
	deadline := time.Now().Add(time.Second)
	for {
		if got := len(rec.offsets(g)); got == n {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("only %d/%d frames after delay window", got, n)
		}
		time.Sleep(time.Millisecond)
	}
}

// parityFrame encodes one parity frame covering count chunks from base
// (chunk index), with 64-byte chunks to match sendStream.
func parityFrame(t *testing.T, video, channel uint16, base, count, total int, index uint8) []byte {
	t.Helper()
	payload := wire.AppendParityPayload(nil, count, make([]byte, 64))
	frame, err := wire.EncodeParityFrame(nil, video, channel, 1,
		uint32(base*64), uint32(total*64), index, payload, wire.PayloadCRC(payload))
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

// dataOffsets is recorder.offsets restricted to data chunks.
func (r *recorder) dataOffsets(g mcast.Group) []uint32 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []uint32
	for _, f := range r.frames[g] {
		if wire.IsParity(f) {
			continue
		}
		if _, _, _, off, ok := wire.PeekID(f); ok {
			out = append(out, off)
		}
	}
	return out
}

func TestFaultBurstValidate(t *testing.T) {
	bad := []Plan{
		{BurstEnter: -0.1, BurstExit: 0.5, BurstDrop: 1, ChunkBytes: 64},
		{BurstEnter: 0.1}, // no exit rate
		{BurstEnter: 0.1, BurstExit: 0.5, BurstDrop: 1}, // no chunk size
		{BurstEnter: 0.1, BurstExit: 1.5, BurstDrop: 1, ChunkBytes: 64},
		{BurstEnter: 0.1, BurstExit: 0.5, BurstDrop: 2, ChunkBytes: 64},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("burst plan %d (%+v) accepted", i, p)
		}
	}
	good := Plan{BurstEnter: 0.05, BurstExit: 0.5, BurstDrop: 1, ChunkBytes: 64}
	if err := good.Validate(); err != nil {
		t.Errorf("valid burst plan rejected: %v", err)
	}
}

// TestFaultBurstDeterministic: the Gilbert–Elliott chain is part of the
// plan's reproducibility contract — same plan, same injured positions.
func TestFaultBurstDeterministic(t *testing.T) {
	g := mcast.Group{}
	plan := Plan{Seed: 21, BurstEnter: 0.05, BurstExit: 0.4, BurstDrop: 1, ChunkBytes: 64}
	var offs [2][]uint32
	var counts [2]Counts
	for run := 0; run < 2; run++ {
		rec := newRecorder()
		in, err := New(rec, plan)
		if err != nil {
			t.Fatal(err)
		}
		sendStream(t, in, g, 1, 2, 500)
		offs[run] = rec.offsets(g)
		counts[run] = in.Counts()
	}
	if counts[0] != counts[1] || counts[0].BurstDropped == 0 {
		t.Errorf("burst counts not reproducible (or zero): %+v vs %+v", counts[0], counts[1])
	}
	if len(offs[0]) != len(offs[1]) {
		t.Fatalf("output lengths differ: %d vs %d", len(offs[0]), len(offs[1]))
	}
	for i := range offs[0] {
		if offs[0][i] != offs[1][i] {
			t.Fatalf("burst pattern diverges at %d", i)
		}
	}
}

// TestFaultBurstShape: losses cluster — the stationary loss rate tracks
// enter/(enter+exit), and runs of consecutive drops (the whole point of
// the two-state chain) actually occur.
func TestFaultBurstShape(t *testing.T) {
	const n = 4000
	g := mcast.Group{}
	rec := newRecorder()
	in, err := New(rec, Plan{Seed: 13, BurstEnter: 0.05, BurstExit: 0.5, BurstDrop: 1, ChunkBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	sendStream(t, in, g, 1, 1, n)
	dropped := in.Counts().BurstDropped
	// Stationary bad fraction = enter/(enter+exit) ≈ 9.1%.
	if rate := float64(dropped) / n; rate < 0.04 || rate > 0.16 {
		t.Errorf("burst drop rate %v far from stationary 0.091", rate)
	}
	// Reconstruct the drop pattern and check for a multi-chunk burst: with
	// mean burst length 1/exit = 2, a run of >= 2 is effectively certain.
	sent := make(map[uint32]bool)
	for _, o := range rec.offsets(g) {
		sent[o] = true
	}
	longest, run := 0, 0
	for c := 0; c < n; c++ {
		if !sent[uint32(c*64)] {
			run++
		} else {
			run = 0
		}
		if run > longest {
			longest = run
		}
	}
	if longest < 2 {
		t.Errorf("longest loss run = %d, want >= 2 (iid-like pattern defeats the burst mode)", longest)
	}
}

// TestFaultBurstSeqIndependence: like the iid faults, the chain is keyed
// on chunk position, never the repetition number, so every repetition
// sees the same injured positions.
func TestFaultBurstSeqIndependence(t *testing.T) {
	plan := Plan{Seed: 17, BurstEnter: 0.1, BurstExit: 0.5, BurstDrop: 1, ChunkBytes: 64}
	g := mcast.Group{}
	var perSeq [2]Counts
	for i, seq := range []uint32{1, 900} {
		rec := newRecorder()
		in, err := New(rec, plan)
		if err != nil {
			t.Fatal(err)
		}
		for c := 0; c < 200; c++ {
			frame, err := (&wire.Chunk{
				Video: 2, Channel: 1, Seq: seq,
				Offset: uint32(c * 64), Total: 200 * 64, Payload: make([]byte, 64),
			}).Encode(nil)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := in.Send(g, frame); err != nil {
				t.Fatal(err)
			}
		}
		perSeq[i] = in.Counts()
	}
	if perSeq[0] != perSeq[1] {
		t.Errorf("burst pattern depends on repetition number: %+v vs %+v", perSeq[0], perSeq[1])
	}
}

// TestFaultParityDoesNotShiftData is the FEC-off golden gate at the
// injector level: interleaving parity frames into the stream must not
// change which data chunks are injured — parity rolls live on shifted
// substreams, so turning the stripe on cannot reshuffle the loss pattern
// a seeded run was recorded under.
func TestFaultParityDoesNotShiftData(t *testing.T) {
	const n, group = 240, 8
	plan := Plan{Seed: 29, Drop: 0.2, BurstEnter: 0.05, BurstExit: 0.5, BurstDrop: 1, ChunkBytes: 64}
	g := mcast.Group{}

	dataOnly := newRecorder()
	in, err := New(dataOnly, plan)
	if err != nil {
		t.Fatal(err)
	}
	sendStream(t, in, g, 1, 2, n)

	interleaved := newRecorder()
	in2, err := New(interleaved, plan)
	if err != nil {
		t.Fatal(err)
	}
	var buf []byte
	for c := 0; c < n; c++ {
		frame, err := (&wire.Chunk{
			Video: 1, Channel: 2, Seq: 1,
			Offset: uint32(c * 64), Total: uint32(n * 64), Payload: make([]byte, 64),
		}).Encode(buf[:0])
		if err != nil {
			t.Fatal(err)
		}
		buf = frame
		if _, err := in2.Send(g, frame); err != nil {
			t.Fatal(err)
		}
		if (c+1)%group == 0 {
			if _, err := in2.Send(g, parityFrame(t, 1, 2, c+1-group, group, n, 0)); err != nil {
				t.Fatal(err)
			}
		}
	}

	a, b := dataOnly.dataOffsets(g), interleaved.dataOffsets(g)
	if len(a) != len(b) {
		t.Fatalf("surviving data count changed with parity interleaved: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("data loss pattern shifted at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestFaultParityFaulted: parity frames are subject to the plan like any
// chunk — a Drop=1 plan eats them (they are not control passthrough),
// on their own roll substream.
func TestFaultParityFaulted(t *testing.T) {
	g := mcast.Group{}
	rec := newRecorder()
	in, err := New(rec, Plan{Seed: 31, Drop: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.Send(g, parityFrame(t, 1, 2, 0, 8, 64, 0)); err != nil {
		t.Fatal(err)
	}
	if len(rec.frames[g]) != 0 {
		t.Error("Drop=1 plan passed a parity frame through")
	}
	if c := in.Counts(); c.Dropped != 1 {
		t.Errorf("counts = %+v, want the parity frame counted dropped", c)
	}
}

// TestFaultNonChunkPassthrough: frames that are not data chunks go through
// untouched.
func TestFaultNonChunkPassthrough(t *testing.T) {
	g := mcast.Group{}
	rec := newRecorder()
	in, err := New(rec, Plan{Seed: 1, Drop: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.Send(g, []byte("not a chunk frame")); err != nil {
		t.Fatal(err)
	}
	if len(rec.frames[g]) != 1 {
		t.Errorf("non-chunk frame was dropped by a Drop=1 plan")
	}
}

// TestFaultZeroPlanTransparent: an all-zero plan must be a perfect wire.
func TestFaultZeroPlanTransparent(t *testing.T) {
	g := mcast.Group{}
	rec := newRecorder()
	in, err := New(rec, Plan{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	sendStream(t, in, g, 1, 1, 50)
	offs := rec.offsets(g)
	if len(offs) != 50 {
		t.Fatalf("zero plan changed frame count: %d", len(offs))
	}
	for i, o := range offs {
		if o != uint32(i*64) {
			t.Fatalf("zero plan changed order at %d: %d", i, o)
		}
	}
	if c := in.Counts(); c != (Counts{}) {
		t.Errorf("zero plan injected faults: %+v", c)
	}
}
