// Package faults is a deterministic fault-injection layer for the live
// broadcast stack. The paper proves its jitter-free guarantee over a
// lossless channel; this package makes the channel lossy on purpose — an
// Injector interposes between the server's channel pacers and the
// multicast hub and drops, duplicates, reorders, or delays data chunks
// according to a seeded Plan — so the client's loss-recovery path can be
// exercised and regression-tested.
//
// Every decision is a pure function of (seed, video, channel, chunk
// offset), derived through the same SplitMix64 substream machinery the
// sweep engine uses (des.SubSeed). Deliberately, the broadcast repetition
// number is NOT part of the key: a chunk position that the plan injures is
// injured in every repetition. Chaos runs are therefore bit-reproducible —
// the set of injured chunks is independent of wall time, of when a client
// tunes in, and of goroutine scheduling — which is what lets tests assert
// identical recovery statistics for identical seeds.
package faults

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"skyscraper/internal/des"
	"skyscraper/internal/mcast"
	"skyscraper/internal/trace"
	"skyscraper/internal/wire"
)

// Plan configures one chaos run. Rates are per-chunk probabilities in
// [0, 1]; independent decisions are drawn per chunk with the precedence
// drop > delay > reorder > duplicate (a dropped chunk is not also
// duplicated, and so on).
type Plan struct {
	// Seed roots every decision substream. Two injectors with equal
	// plans injure exactly the same chunk positions.
	Seed uint64
	// Drop is the probability a chunk never reaches the hub.
	Drop float64
	// Duplicate is the probability a chunk is sent twice back-to-back.
	Duplicate float64
	// Reorder is the probability a chunk is held back and released only
	// after the channel's next chunk, swapping the pair on the wire.
	Reorder float64
	// Delay is the probability a chunk is deferred by a deterministic
	// duration drawn uniformly from [0, MaxDelay].
	Delay float64
	// MaxDelay bounds injected delays; required positive when Delay > 0.
	MaxDelay time.Duration

	// BurstEnter enables Gilbert–Elliott burst loss: the channel walks a
	// seeded two-state chain per chunk position — good → bad with
	// probability BurstEnter, bad → good with BurstExit — and while bad,
	// each chunk drops with probability BurstDrop. The chain is walked
	// from chunk 0 over positions, never repetitions, so the injured
	// bursts sit at the same chunk indices in every repetition and every
	// run with the same seed (the package's reproducibility contract).
	// The expected burst length is 1/BurstExit chunks — size it against
	// the FEC stripe width to exercise stripe defeat.
	BurstEnter float64
	// BurstExit is the chain's bad → good transition probability;
	// required positive when BurstEnter > 0.
	BurstExit float64
	// BurstDrop is the per-chunk drop probability while the chain is in
	// the bad state.
	BurstDrop float64
	// ChunkBytes maps frame offsets to the chunk positions the burst
	// chain is walked over; required positive when BurstEnter > 0.
	ChunkBytes int
	// Trace, when non-nil, receives one event per injected fault so a
	// failing chaos run is diagnosable from the ring buffer dump.
	Trace *trace.Buffer
}

// Validate reports the first configuration error, or nil.
func (p Plan) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{{"Drop", p.Drop}, {"Duplicate", p.Duplicate}, {"Reorder", p.Reorder}, {"Delay", p.Delay},
		{"BurstEnter", p.BurstEnter}, {"BurstExit", p.BurstExit}, {"BurstDrop", p.BurstDrop}} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("faults: %s = %v outside [0, 1]", r.name, r.v)
		}
	}
	if p.Delay > 0 && p.MaxDelay <= 0 {
		return fmt.Errorf("faults: Delay = %v needs a positive MaxDelay", p.Delay)
	}
	if p.BurstEnter > 0 {
		if p.BurstExit <= 0 {
			return fmt.Errorf("faults: BurstEnter = %v needs a positive BurstExit", p.BurstEnter)
		}
		if p.ChunkBytes <= 0 {
			return fmt.Errorf("faults: BurstEnter = %v needs a positive ChunkBytes", p.BurstEnter)
		}
	}
	return nil
}

// Decision substream indices; each fault kind draws from its own
// substream so enabling one rate never shifts another's decisions.
const (
	rollDrop = iota
	rollDup
	rollReorder
	rollDelay
	rollDelayDur
	rollBurstEnter
	rollBurstExit
	rollBurstDrop
)

// parityRollStride shifts the decision substreams for parity frames. A
// parity frame carries its group's base offset — the same header offset
// as the group's first data chunk — and an unshifted roll would injure
// both with one decision: correlated loss that defeats the stripe
// exactly when it is supposed to help, and (worse for the golden gates)
// a data-chunk fault schedule that shifts when FEC turns on. The shift
// is scaled by 1+parity index so P and Q fail independently too.
const parityRollStride = 8

// roll maps one (chunk position, decision kind) to a uniform value in
// [0, 1). Seq is deliberately absent from the key — see the package
// comment.
func (p Plan) roll(kind int, video, channel uint16, offset uint32) float64 {
	key := uint64(video)<<40 | uint64(channel)<<8 | uint64(kind)
	u := des.SubSeed(des.SubSeed(p.Seed, key), uint64(offset))
	return float64(u>>11) / (1 << 53)
}

// Counts summarizes the faults an Injector has injected so far.
type Counts struct {
	Dropped    int64 `json:"dropped"`
	Duplicated int64 `json:"duplicated"`
	Reordered  int64 `json:"reordered"`
	Delayed    int64 `json:"delayed"`
	// BurstDropped counts drops decided by the Gilbert–Elliott chain,
	// separate from the iid Dropped so a chaos run can tell burst
	// casualties (which defeat an FEC stripe) from scattered ones
	// (which it heals).
	BurstDropped int64 `json:"burstDropped"`
}

// framePool recycles the frame copies the injector makes for delayed and
// held (reordered) chunks. The pacers reuse their send buffers, so every
// deferred send must own a copy; pooling those copies keeps sustained
// chaos runs from allocating one slab per injected fault.
var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, wire.EncodedSize(wire.MaxPayload))
		return &b
	},
}

// copyFrame checks a pooled buffer out and fills it with frame.
func copyFrame(frame []byte) *[]byte {
	bp := framePool.Get().(*[]byte)
	*bp = append((*bp)[:0], frame...)
	return bp
}

// Injector wraps a Sender with a fault plan. It is safe for concurrent
// use by multiple pacers; per-channel effects (reordering) assume each
// group's sends are themselves sequential, which the server guarantees
// (one pacer goroutine per channel).
type Injector struct {
	plan  Plan
	next  mcast.Sender
	epoch time.Time

	mu   sync.Mutex
	held map[mcast.Group]*[]byte

	// chains memoizes each channel's Gilbert–Elliott walk (nil when the
	// burst mode is off). Guarded by bmu, separate from mu so burst
	// decisions never contend with reorder holds.
	bmu    sync.Mutex
	chains map[mcast.Group]*burstChain

	dropped, duplicated, reordered, delayed, burstDropped atomic.Int64
}

// burstChain is one channel's memoized Gilbert–Elliott walk: bad[c/64]
// bit c%64 records the chain state at chunk position c for every
// position below next; state is the chain state entering position next.
// The walk is extended lazily and monotonically, so a decision for any
// chunk — in or out of order — reads the same bit forever.
type burstChain struct {
	bad   []uint64
	next  int
	state bool
}

// New validates the plan and wraps next with it.
func New(next mcast.Sender, plan Plan) (*Injector, error) {
	if next == nil {
		return nil, fmt.Errorf("faults: nil sender")
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	in := &Injector{plan: plan, next: next, epoch: time.Now(), held: make(map[mcast.Group]*[]byte)}
	if plan.BurstEnter > 0 {
		in.chains = make(map[mcast.Group]*burstChain)
	}
	return in, nil
}

// Counts reports the faults injected so far.
func (in *Injector) Counts() Counts {
	return Counts{
		Dropped:      in.dropped.Load(),
		Duplicated:   in.duplicated.Load(),
		Reordered:    in.reordered.Load(),
		Delayed:      in.delayed.Load(),
		BurstDropped: in.burstDropped.Load(),
	}
}

func (in *Injector) tracef(kind string, g mcast.Group, seq, offset uint32, format string, args ...any) {
	in.plan.Trace.Addf(trace.Wall(in.epoch, time.Now()), kind,
		"%v seq %d off %d%s", g, seq, offset, fmt.Sprintf(format, args...))
}

// Send applies the plan to one datagram. Frames that do not parse as data
// chunks or parity frames (control traffic never passes through here,
// but be safe) are forwarded untouched. Parity frames draw every
// decision from shifted substreams (parityRollStride), so turning the
// stripe on never moves a data chunk's fault schedule.
func (in *Injector) Send(g mcast.Group, frame []byte) (int, error) {
	video, channel, seq, offset, ok := wire.PeekID(frame)
	if !ok {
		return in.next.Send(g, frame)
	}
	shift := 0
	if wire.IsParity(frame) {
		shift = parityRollStride * (1 + wire.ParityIndexOf(frame))
	}

	// A frame held from the group's previous send is released after this
	// send completes, so the held chunk follows its successor onto the
	// wire.
	in.mu.Lock()
	prev := in.held[g]
	delete(in.held, g)
	in.mu.Unlock()

	n, err := in.apply(g, frame, video, channel, seq, offset, shift)
	if prev != nil {
		pn, perr := in.next.Send(g, *prev)
		framePool.Put(prev)
		n += pn
		if err == nil {
			err = perr
		}
	}
	return n, err
}

// apply executes the plan's decision for one chunk (or parity frame,
// whose substream shift keeps its rolls independent of the data chunk
// sharing its header offset).
func (in *Injector) apply(g mcast.Group, frame []byte, video, channel uint16, seq, offset uint32, shift int) (int, error) {
	p := in.plan
	switch {
	case p.Drop > 0 && p.roll(shift+rollDrop, video, channel, offset) < p.Drop:
		in.dropped.Add(1)
		in.tracef("fault-drop", g, seq, offset, "")
		return 0, nil

	case in.burstDrop(frame, video, channel, offset, shift):
		in.burstDropped.Add(1)
		in.tracef("fault-burst", g, seq, offset, "")
		return 0, nil

	case p.Delay > 0 && p.roll(shift+rollDelay, video, channel, offset) < p.Delay:
		d := time.Duration(p.roll(shift+rollDelayDur, video, channel, offset) * float64(p.MaxDelay))
		in.delayed.Add(1)
		in.tracef("fault-delay", g, seq, offset, " by %v", d)
		// The pacer reuses its frame buffer, so the deferred send must
		// own a copy (pooled). Errors after the hub closes are expected
		// noise.
		cp := copyFrame(frame)
		time.AfterFunc(d, func() {
			_, _ = in.next.Send(g, *cp)
			framePool.Put(cp)
		})
		return 0, nil

	case p.Reorder > 0 && p.roll(shift+rollReorder, video, channel, offset) < p.Reorder:
		in.reordered.Add(1)
		in.tracef("fault-reorder", g, seq, offset, " held for next send")
		in.mu.Lock()
		_, already := in.held[g]
		if !already {
			in.held[g] = copyFrame(frame)
		}
		in.mu.Unlock()
		if already {
			// Can only hold one frame per group; send straight through.
			return in.next.Send(g, frame)
		}
		return 0, nil

	default:
		n, err := in.next.Send(g, frame)
		if err == nil && p.Duplicate > 0 && p.roll(shift+rollDup, video, channel, offset) < p.Duplicate {
			in.duplicated.Add(1)
			in.tracef("fault-dup", g, seq, offset, "")
			if dn, derr := in.next.Send(g, frame); derr == nil {
				n += dn
			}
		}
		return n, err
	}
}

// burstDrop decides whether the Gilbert–Elliott chain kills this frame.
// A data chunk consults the chain state at its own position; a parity
// frame (shift > 0) at the last position it covers, because that is the
// chunk it rides immediately behind on the wire — a burst that swallows
// the end of a group swallows its parity too, which is exactly the
// correlated failure mode the stripe must escalate past.
func (in *Injector) burstDrop(frame []byte, video, channel uint16, offset uint32, shift int) bool {
	p := in.plan
	if p.BurstEnter <= 0 || p.BurstDrop <= 0 {
		return false
	}
	chunk := int(offset) / p.ChunkBytes
	if shift > 0 {
		if count := wire.ParityCountOf(frame); count > 0 {
			chunk += count - 1
		}
	}
	if !in.burstBad(video, channel, chunk) {
		return false
	}
	return p.roll(shift+rollBurstDrop, video, channel, uint32(chunk)) < p.BurstDrop
}

// burstBad reports the chain state at chunk position `chunk` of the
// channel, extending the memoized walk as needed. The transition roll
// at position c decides the state FOR c given the state after c-1, so a
// freshly-entered burst injures the chunk that triggered it and the
// expected burst length is 1/BurstExit.
func (in *Injector) burstBad(video, channel uint16, chunk int) bool {
	p := in.plan
	g := mcast.Group{Video: int(video), Channel: int(channel)}
	in.bmu.Lock()
	defer in.bmu.Unlock()
	ch := in.chains[g]
	if ch == nil {
		ch = &burstChain{}
		in.chains[g] = ch
	}
	for ch.next <= chunk {
		c := ch.next
		if ch.state {
			if p.roll(rollBurstExit, video, channel, uint32(c)) < p.BurstExit {
				ch.state = false
			}
		} else if p.roll(rollBurstEnter, video, channel, uint32(c)) < p.BurstEnter {
			ch.state = true
		}
		for len(ch.bad) <= c/64 {
			ch.bad = append(ch.bad, 0)
		}
		if ch.state {
			ch.bad[c/64] |= 1 << (c % 64)
		}
		ch.next++
	}
	return ch.bad[chunk/64]&(1<<(chunk%64)) != 0
}

// Flush releases every frame currently held for reordering. The server
// calls it on shutdown; tests call it after a bounded send sequence so no
// chunk is withheld forever.
func (in *Injector) Flush() {
	in.mu.Lock()
	held := in.held
	in.held = make(map[mcast.Group]*[]byte)
	in.mu.Unlock()
	for g, f := range held {
		_, _ = in.next.Send(g, *f)
		framePool.Put(f)
	}
}
