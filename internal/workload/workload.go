// Package workload generates client request streams for the simulators: a
// Poisson arrival process over a Zipf-distributed catalog, with optional
// reneging (a client abandoning the queue after waiting too long — the
// behavior periodic broadcast's guaranteed latency is designed to tame,
// Section 1).
package workload

import (
	"fmt"

	"skyscraper/internal/catalog"
	"skyscraper/internal/des"
)

// Request is one client's demand for a video.
type Request struct {
	// ID numbers requests in arrival order, from 0.
	ID int
	// ArrivalMin is the arrival time in minutes of virtual time.
	ArrivalMin float64
	// VideoRank is the requested video's popularity rank in the catalog.
	VideoRank int
	// PatienceMin is how long this client will wait before reneging;
	// 0 means infinite patience.
	PatienceMin float64
}

// Config parameterizes a request generator.
type Config struct {
	// RatePerMin is the Poisson arrival rate, requests per minute.
	RatePerMin float64
	// Seed makes the stream reproducible.
	Seed uint64
	// MeanPatienceMin, when positive, gives clients exponentially
	// distributed patience with this mean.
	MeanPatienceMin float64
}

// Generator produces a deterministic request stream.
type Generator struct {
	cfg Config
	cat *catalog.Catalog
	rnd *des.Rand

	next Request
	now  float64
}

// NewGenerator builds a generator over cat.
func NewGenerator(cfg Config, cat *catalog.Catalog) (*Generator, error) {
	if cfg.RatePerMin <= 0 {
		return nil, fmt.Errorf("workload: arrival rate %v must be positive", cfg.RatePerMin)
	}
	if cfg.MeanPatienceMin < 0 {
		return nil, fmt.Errorf("workload: mean patience %v must be non-negative", cfg.MeanPatienceMin)
	}
	if cat == nil {
		return nil, fmt.Errorf("workload: nil catalog")
	}
	g := &Generator{cfg: cfg, cat: cat, rnd: des.NewRand(cfg.Seed)}
	return g, nil
}

// Next returns the next request; arrival times are strictly increasing.
func (g *Generator) Next() Request {
	g.now += g.rnd.ExpFloat64(g.cfg.RatePerMin)
	r := Request{
		ID:         g.next.ID,
		ArrivalMin: g.now,
		VideoRank:  g.cat.Sample(g.rnd),
	}
	if g.cfg.MeanPatienceMin > 0 {
		r.PatienceMin = g.rnd.ExpFloat64(1 / g.cfg.MeanPatienceMin)
	}
	g.next.ID++
	return r
}

// Take returns the first n requests of the stream.
func (g *Generator) Take(n int) []Request {
	out := make([]Request, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, g.Next())
	}
	return out
}

// Until returns all requests arriving before the given time in minutes.
func (g *Generator) Until(endMin float64) []Request {
	var out []Request
	for {
		r := g.Next()
		if r.ArrivalMin >= endMin {
			return out
		}
		out = append(out, r)
	}
}
