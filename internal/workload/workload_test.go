package workload

import (
	"math"
	"testing"

	"skyscraper/internal/catalog"
)

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	c, err := catalog.New(50, catalog.DefaultSkew, 120, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGeneratorBasics(t *testing.T) {
	g, err := NewGenerator(Config{RatePerMin: 2, Seed: 1}, testCatalog(t))
	if err != nil {
		t.Fatal(err)
	}
	reqs := g.Take(1000)
	prev := 0.0
	for i, r := range reqs {
		if r.ID != i {
			t.Fatalf("request %d has ID %d", i, r.ID)
		}
		if r.ArrivalMin <= prev {
			t.Fatalf("arrivals not strictly increasing at %d: %v then %v", i, prev, r.ArrivalMin)
		}
		prev = r.ArrivalMin
		if r.VideoRank < 0 || r.VideoRank >= 50 {
			t.Fatalf("video rank %d out of range", r.VideoRank)
		}
		if r.PatienceMin != 0 {
			t.Fatalf("patience %v without MeanPatienceMin", r.PatienceMin)
		}
	}
	// Mean inter-arrival should be about 1/rate = 0.5 minutes.
	mean := prev / 1000
	if math.Abs(mean-0.5) > 0.05 {
		t.Errorf("mean inter-arrival %v, want about 0.5", mean)
	}
}

func TestDeterminism(t *testing.T) {
	cat := testCatalog(t)
	g1, _ := NewGenerator(Config{RatePerMin: 1, Seed: 9}, cat)
	g2, _ := NewGenerator(Config{RatePerMin: 1, Seed: 9}, cat)
	for i := 0; i < 100; i++ {
		a, b := g1.Next(), g2.Next()
		if a != b {
			t.Fatalf("same seed diverged at %d: %+v vs %+v", i, a, b)
		}
	}
}

func TestPatience(t *testing.T) {
	g, err := NewGenerator(Config{RatePerMin: 1, Seed: 2, MeanPatienceMin: 5}, testCatalog(t))
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		p := g.Next().PatienceMin
		if p <= 0 {
			t.Fatal("patience not positive")
		}
		sum += p
	}
	if mean := sum / n; math.Abs(mean-5) > 0.2 {
		t.Errorf("mean patience %v, want about 5", mean)
	}
}

func TestUntil(t *testing.T) {
	g, err := NewGenerator(Config{RatePerMin: 4, Seed: 3}, testCatalog(t))
	if err != nil {
		t.Fatal(err)
	}
	reqs := g.Until(100)
	if len(reqs) == 0 {
		t.Fatal("no requests in 100 minutes at rate 4")
	}
	for _, r := range reqs {
		if r.ArrivalMin >= 100 {
			t.Fatalf("request at %v past the window", r.ArrivalMin)
		}
	}
	// Expect about 400 requests.
	if len(reqs) < 300 || len(reqs) > 500 {
		t.Errorf("%d requests in 100 min at rate 4, want about 400", len(reqs))
	}
}

func TestErrors(t *testing.T) {
	cat := testCatalog(t)
	if _, err := NewGenerator(Config{RatePerMin: 0}, cat); err == nil {
		t.Error("accepted zero rate")
	}
	if _, err := NewGenerator(Config{RatePerMin: 1, MeanPatienceMin: -1}, cat); err == nil {
		t.Error("accepted negative patience")
	}
	if _, err := NewGenerator(Config{RatePerMin: 1}, nil); err == nil {
		t.Error("accepted nil catalog")
	}
}
