package catalog

import (
	"math"
	"testing"

	"skyscraper/internal/des"
)

func TestZipfProbabilities(t *testing.T) {
	c, err := New(100, DefaultSkew, 120, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 100 {
		t.Fatalf("Len = %d", c.Len())
	}
	var sum float64
	prev := math.Inf(1)
	for i := 0; i < c.Len(); i++ {
		p := c.Prob(i)
		if p <= 0 || p > prev {
			t.Fatalf("Prob(%d) = %v not positive-decreasing (prev %v)", i, p, prev)
		}
		prev = p
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %v", sum)
	}
	// Zipf ratio: p1/p2 = 2^(1-theta).
	want := math.Pow(2, 1-DefaultSkew)
	if got := c.Prob(0) / c.Prob(1); math.Abs(got-want) > 1e-9 {
		t.Errorf("p1/p2 = %v, want %v", got, want)
	}
}

// TestPaperHotSetClaim checks the motivation of Section 1: with the 0.271
// skew reported by Dan et al. (access probability proportional to
// 1/i^(1-0.271)), demand concentrates heavily on a small prefix of the
// catalog — here, half of all demand lands on well under a quarter of a
// 100-title library. (The paper's prose rounds this up to "most of the
// demand (80%) is for a few (10 to 20) very popular movies".)
func TestPaperHotSetClaim(t *testing.T) {
	c, err := New(100, DefaultSkew, 120, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	n := c.HotSet(0.5)
	if n < 5 || n > 25 {
		t.Errorf("hot set for 50%% of demand = %d titles of 100, want a small prefix (5-25)", n)
	}
	if got := c.CumulativeProb(n); got < 0.5 {
		t.Errorf("CumulativeProb(%d) = %v < 0.5", n, got)
	}
	if got := c.CumulativeProb(n - 1); got >= 0.5 {
		t.Errorf("hot set not minimal: %d titles already reach %v", n-1, got)
	}
	// The top-10 prefix must command several times its uniform share.
	if got := c.CumulativeProb(10); got < 0.3 {
		t.Errorf("top-10 share = %v, want heavy concentration (> 0.3)", got)
	}
}

func TestCumulativeEdges(t *testing.T) {
	c, err := New(5, 0.271, 120, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if c.CumulativeProb(0) != 0 {
		t.Error("CumulativeProb(0) != 0")
	}
	if c.CumulativeProb(5) != 1 || c.CumulativeProb(99) != 1 {
		t.Error("CumulativeProb at or past the end != 1")
	}
	if c.HotSet(1.0) != 5 {
		t.Errorf("HotSet(1.0) = %d, want 5", c.HotSet(1.0))
	}
}

func TestSampleDistribution(t *testing.T) {
	c, err := New(20, DefaultSkew, 120, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	r := des.NewRand(3)
	counts := make([]int, 20)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[c.Sample(r)]++
	}
	for i := 0; i < 20; i++ {
		got := float64(counts[i]) / n
		want := c.Prob(i)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("rank %d sampled frequency %v, want %v", i, got, want)
		}
	}
}

func TestVideoAccessors(t *testing.T) {
	c, err := New(3, 0, 90, 2)
	if err != nil {
		t.Fatal(err)
	}
	v := c.Video(1)
	if v.ID != 1 || v.LengthMin != 90 || v.RateMbps != 2 || v.Title == "" {
		t.Errorf("Video(1) = %+v", v)
	}
	// theta = 0 is pure Zipf 1/i.
	if got, want := c.Prob(0)/c.Prob(1), 2.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("theta=0 ratio = %v, want 2", got)
	}
	for _, bad := range []int{-1, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Video(%d) did not panic", bad)
				}
			}()
			c.Video(bad)
		}()
	}
}

func TestConstructorErrors(t *testing.T) {
	if _, err := New(0, 0.2, 120, 1.5); err == nil {
		t.Error("accepted 0 videos")
	}
	if _, err := New(5, 1.0, 120, 1.5); err == nil {
		t.Error("accepted theta = 1")
	}
	if _, err := New(5, -0.1, 120, 1.5); err == nil {
		t.Error("accepted negative theta")
	}
	if _, err := NewFromVideos(nil, 0.2); err == nil {
		t.Error("accepted empty video list")
	}
}
