// Package catalog models the video library of a metropolitan VoD service
// and its popularity distribution. The paper (Section 1, citing Dan,
// Sitaram and Shahabuddin) observes that "the popularities of movies follow
// the Zipf distribution with the skew factor of 0.271. That is, most of the
// demand (80%) is for a few (10 to 20) very popular movies" — which is the
// motivation for dedicating broadcast channels to the hot set and serving
// the cold tail with scheduled multicast.
package catalog

import (
	"fmt"
	"math"

	"skyscraper/internal/des"
)

// DefaultSkew is the Zipf skew factor theta = 0.271 reported for movie
// popularity; access probability of the rank-i title is proportional to
// 1/i^(1-theta).
const DefaultSkew = 0.271

// Video is one title in the library.
type Video struct {
	// ID is the 0-based rank of the video by popularity (0 = hottest).
	ID int
	// Title is a display name.
	Title string
	// LengthMin is the playback length in minutes.
	LengthMin float64
	// RateMbps is the display rate in Mbit/s.
	RateMbps float64
}

// Catalog is an immutable, popularity-ranked video library with a Zipf
// access distribution.
type Catalog struct {
	videos []Video
	// probs[i] is the access probability of videos[i]; cum is its
	// cumulative form for sampling.
	probs []float64
	cum   []float64
}

// New builds a catalog of n videos with the given Zipf skew factor theta in
// [0, 1). Every video gets the supplied length and rate (the paper's
// uniform 120-minute MPEG-1 workload); use NewFromVideos for heterogeneous
// libraries.
func New(n int, theta, lengthMin, rateMbps float64) (*Catalog, error) {
	if n <= 0 {
		return nil, fmt.Errorf("catalog: need at least one video, got %d", n)
	}
	videos := make([]Video, n)
	for i := range videos {
		videos[i] = Video{
			ID:        i,
			Title:     fmt.Sprintf("video-%02d", i),
			LengthMin: lengthMin,
			RateMbps:  rateMbps,
		}
	}
	return NewFromVideos(videos, theta)
}

// NewFromVideos builds a catalog over explicit videos, ranked in the given
// order (index = popularity rank).
func NewFromVideos(videos []Video, theta float64) (*Catalog, error) {
	if len(videos) == 0 {
		return nil, fmt.Errorf("catalog: empty video list")
	}
	if theta < 0 || theta >= 1 {
		return nil, fmt.Errorf("catalog: skew theta = %v outside [0, 1)", theta)
	}
	c := &Catalog{
		videos: append([]Video(nil), videos...),
		probs:  make([]float64, len(videos)),
		cum:    make([]float64, len(videos)),
	}
	var norm float64
	for i := range c.probs {
		c.probs[i] = 1 / math.Pow(float64(i+1), 1-theta)
		norm += c.probs[i]
	}
	var acc float64
	for i := range c.probs {
		c.probs[i] /= norm
		acc += c.probs[i]
		c.cum[i] = acc
	}
	c.cum[len(c.cum)-1] = 1 // guard against rounding
	return c, nil
}

// Len returns the number of videos.
func (c *Catalog) Len() int { return len(c.videos) }

// Video returns the rank-i video (0-based).
func (c *Catalog) Video(i int) Video {
	if i < 0 || i >= len(c.videos) {
		panic(fmt.Sprintf("catalog: Video(%d): rank out of range 0..%d", i, len(c.videos)-1))
	}
	return c.videos[i]
}

// Prob returns the access probability of the rank-i video.
func (c *Catalog) Prob(i int) float64 {
	if i < 0 || i >= len(c.probs) {
		panic(fmt.Sprintf("catalog: Prob(%d): rank out of range 0..%d", i, len(c.probs)-1))
	}
	return c.probs[i]
}

// CumulativeProb returns the total access probability of the top-n videos.
func (c *Catalog) CumulativeProb(n int) float64 {
	if n <= 0 {
		return 0
	}
	if n >= len(c.cum) {
		return 1
	}
	return c.cum[n-1]
}

// Sample draws a video rank according to the popularity distribution.
func (c *Catalog) Sample(r *des.Rand) int {
	u := r.Float64()
	// Binary search the cumulative distribution.
	lo, hi := 0, len(c.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if c.cum[mid] > u {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// HotSet returns the smallest prefix of the catalog capturing at least the
// given fraction of demand — the videos worth dedicating broadcast channels
// to under the paper's hybrid architecture.
func (c *Catalog) HotSet(fraction float64) int {
	for n := 1; n <= len(c.cum); n++ {
		if c.CumulativeProb(n) >= fraction {
			return n
		}
	}
	return len(c.cum)
}
