package ppb

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"skyscraper/internal/pyramid"
	"skyscraper/internal/vod"
)

func mustNew(t *testing.T, serverMbps float64, m Method) *Scheme {
	t.Helper()
	s, err := New(vod.DefaultConfig(serverMbps), m)
	if err != nil {
		t.Fatalf("New(B=%v, %v): %v", serverMbps, m, err)
	}
	return s
}

func TestParameterRanges(t *testing.T) {
	for b := 100.0; b <= 600; b += 20 {
		for _, m := range []Method{MethodA, MethodB} {
			s := mustNew(t, b, m)
			if s.K() < MinK || s.K() > MaxK {
				t.Errorf("B=%v %v: K = %d outside [%d, %d]", b, m, s.K(), MinK, MaxK)
			}
			if s.P() < 1 {
				t.Errorf("B=%v %v: P = %d < 1", b, m, s.P())
			}
			if s.Alpha() <= 1 {
				t.Errorf("B=%v %v: alpha = %v <= 1", b, m, s.Alpha())
			}
			// The bandwidth identity P + alpha = B/(K*M*b).
			ratio := b / (float64(s.K()) * 10 * 1.5)
			if math.Abs(float64(s.P())+s.Alpha()-ratio) > 1e-9 {
				t.Errorf("B=%v %v: P+alpha = %v, want %v", b, m, float64(s.P())+s.Alpha(), ratio)
			}
		}
	}
}

func TestKCapsAtSeven(t *testing.T) {
	// Section 2: "since K is limited to 7, the access latency and storage
	// requirement will eventually improve only linearly as B increases."
	if s := mustNew(t, 600, MethodA); s.K() != MaxK {
		t.Errorf("B=600: K = %d, want %d", s.K(), MaxK)
	}
	if s := mustNew(t, 100, MethodA); s.K() != MinK {
		t.Errorf("B=100: K = %d, want %d", s.K(), MinK)
	}
}

func TestInfeasibleBelow90(t *testing.T) {
	for _, b := range []float64{50, 70, 85} {
		if _, err := New(vod.DefaultConfig(b), MethodA); !errors.Is(err, vod.ErrInfeasible) {
			t.Errorf("B=%v PPB:a: err = %v, want ErrInfeasible", b, err)
		}
	}
	if _, err := New(vod.DefaultConfig(90), MethodA); err != nil {
		t.Errorf("B=90 PPB:a should be feasible: %v", err)
	}
	// PPB:b pins P at 2, so it additionally needs ratio > 3.
	if _, err := New(vod.DefaultConfig(90), MethodB); !errors.Is(err, vod.ErrInfeasible) {
		t.Error("B=90 PPB:b should be infeasible (alpha = 1)")
	}
}

// TestPaperQuoteB320 checks Section 5.4: "when B is about 320 Mbits/sec,
// PPB:b requires only 150 MBytes or so of disk space. Unfortunately, its
// access latency in this case is as high as five minutes."
func TestPaperQuoteB320(t *testing.T) {
	s := mustNew(t, 320, MethodB)
	if lat := s.AccessLatencyMin(); lat < 3.5 || lat > 6 {
		t.Errorf("PPB:b B=320 latency = %v min, want about 5", lat)
	}
	if mb := vod.MbitToMByte(s.BufferMbit()); mb < 120 || mb > 180 {
		t.Errorf("PPB:b B=320 storage = %.0f MByte, want about 150", mb)
	}
}

// TestPaperQuoteLatencyThreshold checks Section 5.3: "if the access latency
// is required to be less than 0.5 minutes, then we must have a network-I/O
// bandwidth of at least 300 Mbits/sec in order to use PPB."
func TestPaperQuoteLatencyThreshold(t *testing.T) {
	if lat := mustNew(t, 300, MethodA).AccessLatencyMin(); lat > 0.5 {
		t.Errorf("PPB:a B=300 latency = %v, want <= 0.5", lat)
	}
	if lat := mustNew(t, 200, MethodA).AccessLatencyMin(); lat < 0.5 {
		t.Errorf("PPB:a B=200 latency = %v, want > 0.5", lat)
	}
}

// TestDiskBandwidthComparableToSB checks Section 5.2: "SB and PPB have
// similar disk bandwidth requirements at the receiving ends" — both within
// a few multiples of the display rate, far below PB.
func TestDiskBandwidthComparableToSB(t *testing.T) {
	for b := 100.0; b <= 600; b += 100 {
		for _, m := range []Method{MethodA, MethodB} {
			s := mustNew(t, b, m)
			if ratio := s.DiskBandwidthMbps() / 1.5; ratio > 5 {
				t.Errorf("B=%v %v: disk bw = %.1fx display, want a small multiple", b, m, ratio)
			}
		}
	}
}

func TestFragmentsSumToD(t *testing.T) {
	for _, b := range []float64{100, 320, 600} {
		for _, m := range []Method{MethodA, MethodB} {
			s := mustNew(t, b, m)
			var sum float64
			for i := 1; i <= s.K(); i++ {
				sum += s.FragmentMinutes(i)
			}
			if math.Abs(sum-120) > 1e-6 {
				t.Errorf("B=%v %v: fragments sum to %v, want 120", b, m, sum)
			}
		}
	}
}

func TestSubchannelStructure(t *testing.T) {
	s := mustNew(t, 320, MethodB)
	// Subchannel rate must exceed the display rate (or playback could
	// never keep up after the first byte arrives just in time).
	if s.SubchannelMbps() <= s.Config().RateMbps {
		t.Errorf("subchannel rate %v <= display rate", s.SubchannelMbps())
	}
	// K*P*M subchannels account for the entire server bandwidth.
	total := s.SubchannelMbps() * float64(s.K()*s.P()*s.Config().Videos)
	if math.Abs(total-320) > 1e-9 {
		t.Errorf("subchannels total %v Mbit/s, want 320", total)
	}
	// The phase offset times P spans one broadcast period.
	if math.Abs(s.PhaseOffsetMinutes(1)*float64(s.P())-s.BroadcastMinutes(1)) > 1e-12 {
		t.Error("phase offsets do not tile the broadcast period")
	}
}

func TestLatencyIdentity(t *testing.T) {
	// latency = D1/(P+alpha) = D1*M*K*b/B.
	s := mustNew(t, 440, MethodA)
	d1 := s.FragmentMinutes(1)
	want := d1 / (float64(s.P()) + s.Alpha())
	if got := s.AccessLatencyMin(); math.Abs(got-want) > 1e-12 {
		t.Errorf("latency = %v, want D1/(P+alpha) = %v", got, want)
	}
}

func TestBufferIdentity(t *testing.T) {
	// buffer = 60*b*D*M*K*b*(alpha^K - alpha^(K-2)) / (B*(alpha^K - 1)).
	s := mustNew(t, 320, MethodB)
	a, k := s.Alpha(), float64(s.K())
	want := 60 * 1.5 * 120 * 10 * k * 1.5 * (math.Pow(a, k) - math.Pow(a, k-2)) / (320 * (math.Pow(a, k) - 1))
	if got := s.BufferMbit(); math.Abs(got-want) > 1e-6 {
		t.Errorf("buffer = %v, want %v", got, want)
	}
}

func TestAccessors(t *testing.T) {
	s := mustNew(t, 320, MethodA)
	if s.Name() != "PPB:a" || s.Method() != MethodA {
		t.Errorf("accessors: %q %v", s.Name(), s.Method())
	}
	if !strings.Contains(s.String(), "PPB:a") {
		t.Errorf("String() = %q", s.String())
	}
	var _ vod.Performer = s
}

func TestFragmentPanics(t *testing.T) {
	s := mustNew(t, 320, MethodA)
	for _, i := range []int{0, s.K() + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FragmentMinutes(%d) did not panic", i)
				}
			}()
			s.FragmentMinutes(i)
		}()
	}
}

func TestBadInputs(t *testing.T) {
	if _, err := New(vod.Config{}, MethodA); err == nil {
		t.Error("New accepted zero config")
	}
	if _, err := New(vod.DefaultConfig(300), Method(9)); err == nil {
		t.Error("New accepted unknown method")
	}
}

// TestInvariantsAcrossBandwidths property-checks every feasible PPB
// instantiation: parameter ranges, subchannel-rate dominance, and the
// claim that motivated PPB — its client buffer is always far below PB's
// at the same bandwidth.
func TestInvariantsAcrossBandwidths(t *testing.T) {
	f := func(bSel uint16, mSel bool) bool {
		b := 90 + float64(bSel%5110)/10 // 90..601
		method := MethodA
		if mSel {
			method = MethodB
		}
		s, err := New(vod.DefaultConfig(b), method)
		if err != nil {
			return true
		}
		if s.K() < MinK || s.K() > MaxK || s.P() < 1 || s.Alpha() <= 1 {
			return false
		}
		if s.SubchannelMbps() <= s.Config().RateMbps {
			return false
		}
		pb, err := pyramid.New(vod.DefaultConfig(b), pyramid.MethodB)
		if err != nil {
			return true
		}
		return s.BufferMbit() < pb.BufferMbit()/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
