// Package ppb implements Permutation-Based Pyramid Broadcasting (PPB), the
// baseline of Aggarwal, Wolf and Yu that Section 2 of the skyscraper paper
// describes and Section 5 compares against.
//
// PPB keeps PB's geometric fragmentation but further partitions each of the
// K logical channels into P*M subchannels of B/(K*P*M) Mbit/s. Segment i of
// each video is replicated on P subchannels, each broadcasting it
// periodically in its entirety, phase-shifted by 1/P of the broadcast
// period. The far lower per-stream rate shrinks the client disk space and
// disk bandwidth dramatically compared to PB, at the cost of a much larger
// access latency and of mid-broadcast tuning ("this is difficult to
// implement since a client must be able to tune to a channel during,
// instead of at the beginning of, a broadcast").
//
// The paper's text is OCR-damaged around PPB's parameter rules; the
// interpretation used here is documented in DESIGN.md and validated against
// the numbers the paper quotes in prose (PPB:b at B ≈ 320 Mbit/s: latency
// about five minutes, client disk about 150 MByte).
package ppb

import (
	"fmt"
	"math"

	"skyscraper/internal/vod"
)

// Method selects PPB's design-parameter determination rule (Section 2).
type Method int

const (
	// MethodA ("PPB:a") chooses P = floor(B/(K*M*b) - 2), favoring a
	// larger alpha (closer to e) and hence lower latency.
	MethodA Method = iota
	// MethodB ("PPB:b") chooses P = max(2, floor(B/(K*M*b)) - 2),
	// favoring more replicas (alpha just above 1) and hence smaller
	// client buffers, at a significant latency cost.
	MethodB
)

// String implements fmt.Stringer.
func (m Method) String() string {
	if m == MethodA {
		return "PPB:a"
	}
	return "PPB:b"
}

// MaxK is the upper bound the scheme places on K ("K ... is limited within
// the range 2 <= K <= 7", Section 2). Because of it, PPB's latency and
// storage eventually improve only linearly with B, unlike PB.
const MaxK = 7

// MinK is the corresponding lower bound.
const MinK = 2

// Scheme is an instantiated PPB configuration.
type Scheme struct {
	cfg    vod.Config
	method Method
	k, p   int
	alpha  float64
}

// New determines PPB's design parameters for cfg using the given method.
// K is the largest value within [2, 7] for which the per-channel bandwidth
// multiple B/(K*M*b) is at least P+1 with alpha > 1; P and alpha then
// follow the method's rule with P + alpha = B/(K*M*b). New returns
// vod.ErrInfeasible (wrapped) when no valid (K, P, alpha) exists, which for
// the paper's workload happens below roughly 90 Mbit/s.
func New(cfg vod.Config, method Method) (*Scheme, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if method != MethodA && method != MethodB {
		return nil, fmt.Errorf("ppb: unknown method %d", method)
	}
	// Largest K in [MinK, MaxK] for which the method yields a valid
	// P >= 1 with alpha > 1 under the bandwidth identity
	// P + alpha = B/(K*M*b). A larger K always means a lower latency, so
	// greedily prefer it.
	for k := MaxK; k >= MinK; k-- {
		ratio := cfg.ServerMbps / (float64(k*cfg.Videos) * cfg.RateMbps)
		var p int
		switch method {
		case MethodA:
			p = int(math.Floor(ratio - 2))
		case MethodB:
			p = int(math.Floor(ratio)) - 2
			if p < 2 {
				p = 2
			}
		}
		if p < 1 {
			continue
		}
		alpha := ratio - float64(p)
		if alpha <= 1 {
			continue
		}
		return &Scheme{cfg: cfg, method: method, k: k, p: p, alpha: alpha}, nil
	}
	return nil, fmt.Errorf("ppb: %v has no valid (K, P, alpha) for B = %v Mbit/s: %w",
		method, cfg.ServerMbps, vod.ErrInfeasible)
}

// Config returns the system parameters the scheme was built for.
func (s *Scheme) Config() vod.Config { return s.cfg }

// Method returns the parameter-determination method.
func (s *Scheme) Method() Method { return s.method }

// K returns the number of segments per video.
func (s *Scheme) K() int { return s.k }

// P returns the number of phase-shifted replicas per segment.
func (s *Scheme) P() int { return s.p }

// Alpha returns the geometric fragmentation factor.
func (s *Scheme) Alpha() float64 { return s.alpha }

// Name implements vod.Performer.
func (s *Scheme) Name() string { return s.method.String() }

// SubchannelMbps returns the bandwidth of one subchannel, B/(K*P*M). It
// exceeds the display rate by the factor (P+alpha)/P, which approaches 1
// as P grows — the source of PPB's storage savings.
func (s *Scheme) SubchannelMbps() float64 {
	return s.cfg.ServerMbps / float64(s.k*s.p*s.cfg.Videos)
}

// FragmentMinutes returns D_i, the playback length in minutes of segment i
// (1-based), identical to PB's geometric fragmentation.
func (s *Scheme) FragmentMinutes(i int) float64 {
	if i < 1 || i > s.k {
		panic(fmt.Sprintf("ppb: FragmentMinutes(%d): segment out of range 1..%d", i, s.k))
	}
	return s.cfg.LengthMin * math.Pow(s.alpha, float64(i-1)) * (s.alpha - 1) / (math.Pow(s.alpha, float64(s.k)) - 1)
}

// FragmentMbits returns the size of segment i in Mbit.
func (s *Scheme) FragmentMbits(i int) float64 {
	return 60 * s.cfg.RateMbps * s.FragmentMinutes(i)
}

// BroadcastMinutes returns the period of one subchannel's broadcast of
// segment i: its data transmitted at the subchannel rate.
func (s *Scheme) BroadcastMinutes(i int) float64 {
	return s.FragmentMbits(i) / (60 * s.SubchannelMbps())
}

// PhaseOffsetMinutes returns the phase delay between consecutive replicas
// of segment i: BroadcastMinutes(i)/P.
func (s *Scheme) PhaseOffsetMinutes(i int) float64 {
	return s.BroadcastMinutes(i) / float64(s.p)
}

// AccessLatencyMin implements vod.Performer: the worst wait for the next
// replica of the first segment,
//
//	BroadcastMinutes(1)/P = D1 * M*K*b/B = D1/(P+alpha).
func (s *Scheme) AccessLatencyMin() float64 {
	return s.PhaseOffsetMinutes(1)
}

// DiskBandwidthMbps implements vod.Performer: the display rate plus the
// rate of receiving data from one subchannel,
//
//	b + B/(K*P*M).
func (s *Scheme) DiskBandwidthMbps() float64 {
	return s.cfg.RateMbps + s.SubchannelMbps()
}

// BufferMbit implements vod.Performer: the PB-style worst case of holding
// the last two segments, scaled by the ratio of display rate to per-video
// channel bandwidth because the slow subchannels deliver data only
// marginally faster than the player drains it,
//
//	60*b*(D_{K-1} + D_K) * M*K*b/B
//	  = 60*b*D * M*K*b * (alpha^K - alpha^(K-2)) / (B * (alpha^K - 1)).
func (s *Scheme) BufferMbit() float64 {
	scale := float64(s.cfg.Videos*s.k) * s.cfg.RateMbps / s.cfg.ServerMbps // = 1/(P+alpha)
	return 60 * s.cfg.RateMbps * (s.FragmentMinutes(s.k-1) + s.FragmentMinutes(s.k)) * scale
}

// String summarizes the scheme.
func (s *Scheme) String() string {
	return fmt.Sprintf("%s{K=%d P=%d alpha=%.4f}", s.Name(), s.k, s.p, s.alpha)
}
