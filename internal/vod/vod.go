// Package vod holds the shared video-on-demand system model used by every
// broadcasting scheme in this repository: the server/network parameters the
// paper calls B, M, D and b, plus the derived per-video quantities that the
// analytic formulas and the simulator both consume.
//
// Units follow the paper exactly:
//
//   - bandwidth is in Mbit/s,
//   - video length and latency are in minutes,
//   - buffer space is in Mbit (the paper's figures divide by 8 to plot
//     MBytes; helpers for that conversion live here too).
package vod

import (
	"errors"
	"fmt"
)

// Config describes one metropolitan VoD deployment: a server with B Mbit/s
// of network-I/O bandwidth periodically broadcasting the M most popular
// videos, each D minutes long and displayed at b Mbit/s.
//
// The zero value is not usable; construct with the fields set and call
// Validate, or use DefaultConfig for the paper's Section 5 workload.
type Config struct {
	// ServerMbps is B, the total server network-I/O bandwidth in Mbit/s.
	ServerMbps float64
	// Videos is M, the number of popular videos being broadcast.
	Videos int
	// LengthMin is D, the length of each video in minutes.
	LengthMin float64
	// RateMbps is b, the display (consumption) rate of each video in
	// Mbit/s.
	RateMbps float64
}

// DefaultConfig returns the workload used throughout the paper's
// performance study (Section 5): M = 10 MPEG-1 videos of 120 minutes at
// 1.5 Mbit/s, with the server bandwidth supplied by the caller.
func DefaultConfig(serverMbps float64) Config {
	return Config{
		ServerMbps: serverMbps,
		Videos:     10,
		LengthMin:  120,
		RateMbps:   1.5,
	}
}

// Validate reports whether the configuration is internally consistent and
// sufficient to broadcast at least one channel per video.
func (c Config) Validate() error {
	switch {
	case c.ServerMbps <= 0:
		return fmt.Errorf("vod: server bandwidth B = %v Mbit/s must be positive", c.ServerMbps)
	case c.Videos <= 0:
		return fmt.Errorf("vod: video count M = %d must be positive", c.Videos)
	case c.LengthMin <= 0:
		return fmt.Errorf("vod: video length D = %v min must be positive", c.LengthMin)
	case c.RateMbps <= 0:
		return fmt.Errorf("vod: display rate b = %v Mbit/s must be positive", c.RateMbps)
	}
	if c.ChannelsPerVideo() < 1 {
		return fmt.Errorf("vod: B = %v Mbit/s cannot afford one %v Mbit/s channel per video for M = %d videos",
			c.ServerMbps, c.RateMbps, c.Videos)
	}
	return nil
}

// Channels returns floor(B/b), the number of b-Mbit/s logical channels the
// server bandwidth can sustain (Section 3.1).
func (c Config) Channels() int {
	return int(c.ServerMbps / c.RateMbps)
}

// ChannelsPerVideo returns K = floor(B/(b*M)), the number of logical
// channels dedicated to each video under Skyscraper Broadcasting's even
// allocation (Section 3.1).
func (c Config) ChannelsPerVideo() int {
	return int(c.ServerMbps / (c.RateMbps * float64(c.Videos)))
}

// VideoMbits returns the size of one whole video in Mbit: 60*b*D.
func (c Config) VideoMbits() float64 {
	return 60 * c.RateMbps * c.LengthMin
}

// ErrInfeasible is returned by scheme constructors when the configuration
// cannot satisfy a scheme's continuity constraints (for example PB and PPB
// require alpha > 1, which fails below roughly 90 Mbit/s for the paper's
// workload).
var ErrInfeasible = errors.New("vod: configuration infeasible for this scheme")

// MbitToMByte converts a quantity in Mbit to MByte, the unit the paper's
// storage figures are plotted in.
func MbitToMByte(mbit float64) float64 { return mbit / 8 }

// MbpsToMBps converts Mbit/s to MByte/s, the unit of the paper's disk
// bandwidth figure.
func MbpsToMBps(mbps float64) float64 { return mbps / 8 }

// Performer is the metric surface every broadcasting scheme in this
// repository exposes; the paper's Table 1 is exactly one row per Performer
// (Section 5 compares schemes on these three metrics).
type Performer interface {
	// Name identifies the scheme and its parameter method, e.g. "SB:W=52"
	// or "PPB:b".
	Name() string
	// AccessLatencyMin is the worst-case service latency in minutes.
	AccessLatencyMin() float64
	// BufferMbit is the client disk-space requirement in Mbit.
	BufferMbit() float64
	// DiskBandwidthMbps is the client storage-I/O bandwidth requirement
	// in Mbit/s.
	DiskBandwidthMbps() float64
}
