package vod

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultConfig(t *testing.T) {
	c := DefaultConfig(320)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Videos != 10 || c.LengthMin != 120 || c.RateMbps != 1.5 {
		t.Errorf("DefaultConfig = %+v, want the paper's Section 5 workload", c)
	}
	if c.Channels() != 213 {
		t.Errorf("Channels = %d, want 213", c.Channels())
	}
	if c.ChannelsPerVideo() != 21 {
		t.Errorf("ChannelsPerVideo = %d, want 21", c.ChannelsPerVideo())
	}
	if got := c.VideoMbits(); math.Abs(got-10800) > 1e-9 {
		t.Errorf("VideoMbits = %v, want 10800", got)
	}
}

func TestValidateRejections(t *testing.T) {
	bad := []Config{
		{},
		{ServerMbps: -1, Videos: 10, LengthMin: 120, RateMbps: 1.5},
		{ServerMbps: 300, Videos: 0, LengthMin: 120, RateMbps: 1.5},
		{ServerMbps: 300, Videos: 10, LengthMin: -5, RateMbps: 1.5},
		{ServerMbps: 300, Videos: 10, LengthMin: 120, RateMbps: 0},
		{ServerMbps: 10, Videos: 10, LengthMin: 120, RateMbps: 1.5}, // K = 0
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", c)
		}
	}
}

func TestUnitConversions(t *testing.T) {
	if MbitToMByte(800) != 100 {
		t.Error("MbitToMByte wrong")
	}
	if MbpsToMBps(12) != 1.5 {
		t.Error("MbpsToMBps wrong")
	}
}

func TestChannelsPerVideoProperty(t *testing.T) {
	f := func(bTenth uint16, m uint8) bool {
		c := Config{
			ServerMbps: float64(bTenth%6000)/10 + 15,
			Videos:     int(m%20) + 1,
			LengthMin:  120,
			RateMbps:   1.5,
		}
		k := c.ChannelsPerVideo()
		// K channels per video must fit within the budget, and K+1 must
		// not.
		fits := float64(k*c.Videos)*c.RateMbps <= c.ServerMbps
		tight := float64((k+1)*c.Videos)*c.RateMbps > c.ServerMbps
		return fits && tight
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
