package sim

import (
	"fmt"
	"math"

	"skyscraper/internal/ppb"
)

// PPB simulates a Permutation-Based Pyramid Broadcasting client. Each
// segment of each video is carried by P subchannels of B/(K*P*M) Mbit/s,
// each broadcasting the segment back-to-back, phase-shifted by 1/P of the
// broadcast period — so broadcast starts form a grid of pitch period/P, and
// byte x of the segment is in flight at every grid time plus x/rate.
//
// The client implements the paper's full PPB behavior, including the
// buffer-reduction mechanism SB criticizes for its synchronization cost:
// "PPB occasionally pauses the incoming stream to allow the playback to
// catch up. This is done by allowing a client to discontinue the current
// stream and tune to another subchannel, which broadcasts the same
// fragment, at a later time to collect the remaining data." Concretely,
// each segment is received as a sequence of bursts: the client tunes as
// late as the playback deadline permits, downloads until its lead over the
// player reaches one replica offset worth of data (60*b*period/P Mbit — the
// minimum lead that makes a pause safe), pauses, and resumes mid-broadcast
// on a later replica. This is what makes the Table 1 storage bound
// attainable.
type PPB struct {
	scheme *ppb.Scheme
}

// NewPPB wraps a PPB scheme for simulation.
func NewPPB(scheme *ppb.Scheme) *PPB { return &PPB{scheme: scheme} }

// Name implements ClientSim.
func (s *PPB) Name() string { return s.scheme.Name() }

// Scheme returns the underlying analytic scheme.
func (s *PPB) Scheme() *ppb.Scheme { return s.scheme }

// Client implements ClientSim.
func (s *PPB) Client(arrivalMin float64, video int) (ClientResult, error) {
	cfg := s.scheme.Config()
	if video < 0 || video >= cfg.Videos {
		return ClientResult{}, fmt.Errorf("sim: video %d outside broadcast set 0..%d", video, cfg.Videos-1)
	}
	if arrivalMin < 0 {
		return ClientResult{}, fmt.Errorf("sim: negative arrival %v", arrivalMin)
	}
	k := s.scheme.K()
	var downloads, playbacks []flow
	// Playback begins at the earliest replica of the first segment.
	playAt := firstAtOrAfter(arrivalMin, s.scheme.PhaseOffsetMinutes(1), 0)
	for i := 1; i <= k; i++ {
		playDur := s.scheme.FragmentMinutes(i)
		bursts, err := s.segmentBursts(i, playAt)
		if err != nil {
			return ClientResult{}, fmt.Errorf("sim: %s: %w", s.Name(), err)
		}
		downloads = append(downloads, bursts...)
		playbacks = append(playbacks, flow{segment: i, startMin: playAt, endMin: playAt + playDur, rateMbps: cfg.RateMbps})
		playAt += playDur
	}
	res, err := runFlows(downloads, playbacks, arrivalMin)
	if err != nil {
		return ClientResult{}, fmt.Errorf("sim: %s: %w", s.Name(), err)
	}
	return res, nil
}

// segmentBursts builds the pause/resume download schedule for segment i
// whose playback starts at playStart minutes.
func (s *PPB) segmentBursts(i int, playStart float64) ([]flow, error) {
	var (
		b     = s.scheme.Config().RateMbps
		r     = s.scheme.SubchannelMbps()
		step  = s.scheme.PhaseOffsetMinutes(i)     // replica phase pitch
		total = s.scheme.FragmentMbits(i)          // segment content
		theta = 60 * b * step                      // minimum lead that makes a pause safe
		x     = 0.0                                // Mbit received so far
		prev  = math.Inf(-1)                       // end of previous burst
		limit = 16 + 4*int(math.Ceil(total/theta)) // iteration guard
	)
	played := func(t float64) float64 {
		v := 60 * b * (t - playStart)
		if v < 0 {
			return 0
		}
		if v > total {
			return total
		}
		return v
	}
	var bursts []flow
	for n := 0; x < total-1e-9; n++ {
		if n >= limit {
			return nil, fmt.Errorf("ppb: segment %d burst schedule did not converge after %d bursts", i, n)
		}
		// Byte x is in flight at every grid time k*step plus x/(60r);
		// resume as late as the playback deadline of byte x permits.
		deadline := playStart + x/(60*b)
		base := x / (60 * r)
		// The epsilon absorbs float rounding when the deadline falls
		// exactly on the replica grid; overshooting the deadline by
		// step*1e-9 minutes is far below the data tolerance.
		kk := math.Floor((deadline-base)/step + 1e-9)
		start := base + kk*step
		if start < prev-1e-9 {
			return nil, fmt.Errorf("ppb: segment %d: no replica carries byte %.3f Mbit between %.6f and its deadline %.6f",
				i, x, prev, deadline)
		}
		if start < prev {
			start = prev
		}
		// Download until done, or until the lead over the player
		// reaches theta (then a pause of up to one replica offset is
		// safe).
		fullEnd := start + (total-x)/(60*r)
		pauseAt := math.Inf(1)
		if lead := x + 0 - played(start); lead < theta {
			// Before playback starts the lead grows at 60r; after,
			// at 60(r-b).
			if start < playStart {
				t := start + (theta-x)/(60*r)
				if t <= playStart {
					pauseAt = t
				} else {
					leadAtPlay := x + 60*r*(playStart-start)
					pauseAt = playStart + (theta-leadAtPlay)/(60*(r-b))
				}
			} else {
				pauseAt = start + (theta-lead)/(60*(r-b))
			}
		}
		end := math.Min(fullEnd, pauseAt)
		if end <= start+1e-12 {
			// Degenerate alignment: the lead is already theta at the
			// resume point; the next grid slot still meets the
			// deadline, so skip forward one replica.
			prev = start + step
			continue
		}
		bursts = append(bursts, flow{segment: i, startMin: start, endMin: end, rateMbps: r})
		x += 60 * r * (end - start)
		prev = end
	}
	return bursts, nil
}
