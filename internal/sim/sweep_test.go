package sim

import (
	"fmt"
	"runtime"
	"testing"
	"testing/quick"

	"skyscraper/internal/core"
	"skyscraper/internal/des"
	"skyscraper/internal/metrics"
	"skyscraper/internal/ppb"
	"skyscraper/internal/pyramid"
	"skyscraper/internal/staggered"
	"skyscraper/internal/vod"
)

// sweepWorkerCounts are the pool sizes the determinism contract is checked
// against: serial, even, odd/prime, and whatever this machine defaults to.
func sweepWorkerCounts() []int {
	return []int{1, 2, 7, runtime.GOMAXPROCS(0)}
}

// summaryStats flattens a Summary into the statistics the contract
// guarantees bit-identical.
func summaryStats(s *metrics.Summary) [8]float64 {
	return [8]float64{
		float64(s.Count()), s.Sum(), s.Mean(), s.Min(), s.Max(),
		s.Quantile(0.5), s.Quantile(0.99), s.StdDev(),
	}
}

func sweepStats(r *SweepResult) [3][8]float64 {
	return [3][8]float64{
		summaryStats(&r.WaitMin),
		summaryStats(&r.BufferMbit),
		summaryStats(&r.Streams),
	}
}

// TestSweepWorkersIdentical is the engine's core property: for every
// scheme family, Sweep with 1, 2, 7 and GOMAXPROCS workers produces
// bit-identical statistics (count, sum, mean, min, max, quantiles,
// stddev) for the same seed. The population spans several shards so the
// merge path is genuinely exercised.
func TestSweepWorkersIdentical(t *testing.T) {
	cfg := vod.DefaultConfig(320)
	sbSch, err := core.New(cfg, 52)
	if err != nil {
		t.Fatal(err)
	}
	pbSch, err := pyramid.New(cfg, pyramid.MethodB)
	if err != nil {
		t.Fatal(err)
	}
	ppbSch, err := ppb.New(cfg, ppb.MethodB)
	if err != nil {
		t.Fatal(err)
	}
	stSch, err := staggered.New(vod.DefaultConfig(300))
	if err != nil {
		t.Fatal(err)
	}
	sims := []ClientSim{NewSB(sbSch), NewPB(pbSch), NewPPB(ppbSch), NewStaggered(stSch)}
	const n, window, videos = 700, 500.0, 10
	for _, cs := range sims {
		want, err := Sweep(cs, n, window, videos, 42, Workers(1))
		if err != nil {
			t.Fatalf("%s serial: %v", cs.Name(), err)
		}
		wantStats := sweepStats(want)
		for _, w := range sweepWorkerCounts()[1:] {
			got, err := Sweep(cs, n, window, videos, 42, Workers(w))
			if err != nil {
				t.Fatalf("%s workers=%d: %v", cs.Name(), w, err)
			}
			if sweepStats(got) != wantStats {
				t.Errorf("%s: workers=%d stats diverged from serial:\n got %v\nwant %v",
					cs.Name(), w, sweepStats(got), wantStats)
			}
		}
	}
}

// TestSweepWorkersProperty drives the same contract over random seeds.
func TestSweepWorkersProperty(t *testing.T) {
	sch, err := core.New(vod.DefaultConfig(320), 12)
	if err != nil {
		t.Fatal(err)
	}
	cs := NewSB(sch)
	f := func(seed uint64) bool {
		a, err := Sweep(cs, 600, 300, 10, seed, Workers(1))
		if err != nil {
			return false
		}
		b, err := Sweep(cs, 600, 300, 10, seed, Workers(7))
		if err != nil {
			return false
		}
		return sweepStats(a) == sweepStats(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// failAfterSim violates the protocol for every client arriving at or past
// a threshold, for exercising the deterministic-failure path.
type failAfterSim struct{ threshold float64 }

func (f failAfterSim) Name() string { return "fail-after" }

func (f failAfterSim) Client(arrivalMin float64, video int) (ClientResult, error) {
	if arrivalMin >= f.threshold {
		return ClientResult{}, fmt.Errorf("violation at %.4f", arrivalMin)
	}
	return ClientResult{ArrivalMin: arrivalMin}, nil
}

// TestSweepErrorDeterministic checks that the reported violation is the
// one with the lowest client index, for every worker count.
func TestSweepErrorDeterministic(t *testing.T) {
	const n, window, videos, seed = 900, 100.0, 10, 5
	cs := failAfterSim{threshold: 40} // ~60% of clients violate
	// Recompute the expected winner from the substream derivation.
	wantIdx := -1
	for i := 0; i < n; i++ {
		r := des.NewRand(des.SubSeed(seed, uint64(i)))
		if r.Float64()*window >= cs.threshold {
			wantIdx = i
			break
		}
	}
	if wantIdx < 0 {
		t.Fatal("test setup: no client violates")
	}
	var want string
	for _, w := range sweepWorkerCounts() {
		_, err := Sweep(cs, n, window, videos, seed, Workers(w))
		if err == nil {
			t.Fatalf("workers=%d: violation not reported", w)
		}
		if want == "" {
			want = err.Error()
			wantPrefix := fmt.Sprintf("sim: client %d ", wantIdx)
			if len(want) < len(wantPrefix) || want[:len(wantPrefix)] != wantPrefix {
				t.Fatalf("error %q does not report lowest client %d", want, wantIdx)
			}
		} else if err.Error() != want {
			t.Errorf("workers=%d error %q differs from %q", w, err.Error(), want)
		}
	}
}

// TestSweepWorkersOptionDefaults: non-positive worker counts mean "use
// GOMAXPROCS", and pool size never exceeds the shard count.
func TestSweepWorkersOptionDefaults(t *testing.T) {
	sch, err := core.New(vod.DefaultConfig(320), 2)
	if err != nil {
		t.Fatal(err)
	}
	cs := NewSB(sch)
	for _, w := range []int{-3, 0, 1000} {
		res, err := Sweep(cs, 50, 100, 10, 1, Workers(w))
		if err != nil {
			t.Fatalf("Workers(%d): %v", w, err)
		}
		if res.Clients != 50 || res.WaitMin.Count() != 50 {
			t.Errorf("Workers(%d): counted %d/%d", w, res.Clients, res.WaitMin.Count())
		}
	}
}
