package sim

import (
	"fmt"
	"math"

	"skyscraper/internal/pyramid"
)

// PB simulates a Pyramid Broadcasting client. Channel i (one of K, at B/K
// Mbit/s) cycles through the i-th segments of all M videos sequentially;
// the client downloads its video's first segment at the first occurrence,
// plays it back concurrently, and tunes for each subsequent segment at the
// earliest broadcast after beginning to play back the current one
// (Section 2).
type PB struct {
	scheme *pyramid.Scheme
}

// NewPB wraps a PB scheme for simulation.
func NewPB(scheme *pyramid.Scheme) *PB { return &PB{scheme: scheme} }

// Name implements ClientSim.
func (s *PB) Name() string { return s.scheme.Name() }

// Scheme returns the underlying analytic scheme.
func (s *PB) Scheme() *pyramid.Scheme { return s.scheme }

// Client implements ClientSim.
func (s *PB) Client(arrivalMin float64, video int) (ClientResult, error) {
	cfg := s.scheme.Config()
	if video < 0 || video >= cfg.Videos {
		return ClientResult{}, fmt.Errorf("sim: video %d outside broadcast set 0..%d", video, cfg.Videos-1)
	}
	if arrivalMin < 0 {
		return ClientResult{}, fmt.Errorf("sim: negative arrival %v", arrivalMin)
	}
	k := s.scheme.K()
	var downloads, playbacks []flow
	var playAt, prevPlayStart float64
	for i := 1; i <= k; i++ {
		// Channel i broadcasts S_i of video v during
		// [cycle*n + v*T_i, ... + T_i), where T_i is the broadcast
		// duration of one segment at the channel rate.
		dur := s.scheme.BroadcastMinutes(i)
		cycle := float64(cfg.Videos) * dur
		offset := float64(video) * dur
		// "It downloads the next fragment at the earliest possible time
		// after beginning to play back the current fragment": tune for
		// segment i once segment i-1's playback has begun.
		ready := arrivalMin
		if i > 1 {
			ready = prevPlayStart
		}
		start := firstAtOrAfter(ready, cycle, offset)
		if i == 1 {
			playAt = start // playback begins with the first download
		}
		playDur := s.scheme.FragmentMinutes(i)
		downloads = append(downloads, flow{segment: i, startMin: start, endMin: start + dur, rateMbps: s.scheme.ChannelMbps()})
		playbacks = append(playbacks, flow{segment: i, startMin: playAt, endMin: playAt + playDur, rateMbps: cfg.RateMbps})
		prevPlayStart = playAt
		playAt += playDur
	}
	res, err := runFlows(downloads, playbacks, arrivalMin)
	if err != nil {
		return ClientResult{}, fmt.Errorf("sim: %s: %w", s.Name(), err)
	}
	return res, nil
}

// firstAtOrAfter returns the earliest element of {offset + n*period : n>=0}
// that is >= t; t at or before offset yields offset itself.
func firstAtOrAfter(t, period, offset float64) float64 {
	if t <= offset {
		return offset
	}
	n := math.Ceil((t - offset) / period)
	at := offset + n*period
	// Guard against float rounding placing us one period late when t
	// falls exactly on the grid.
	if prev := at - period; prev >= t {
		return prev
	}
	return at
}
