package sim

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"skyscraper/internal/core"
	"skyscraper/internal/ppb"
	"skyscraper/internal/pyramid"
	"skyscraper/internal/staggered"
	"skyscraper/internal/vod"
)

func sbSim(t *testing.T, serverMbps float64, width int64) *SB {
	t.Helper()
	sch, err := core.New(vod.DefaultConfig(serverMbps), width)
	if err != nil {
		t.Fatal(err)
	}
	return NewSB(sch)
}

func TestSBClientBasics(t *testing.T) {
	s := sbSim(t, 320, 2)
	res, err := s.Client(10.3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.WaitMin < 0 || res.WaitMin > s.Scheme().AccessLatencyMin()+1e-9 {
		t.Errorf("wait = %v, want within [0, %v]", res.WaitMin, s.Scheme().AccessLatencyMin())
	}
	if math.Abs(res.DownloadedMbit-10800) > 1e-6 {
		t.Errorf("downloaded %v Mbit, want 10800 (whole video, each byte once)", res.DownloadedMbit)
	}
	if res.MaxStreams > 2 {
		t.Errorf("max streams = %d, want <= 2", res.MaxStreams)
	}
	wantEnd := res.PlayStartMin + 120
	if math.Abs(res.PlaybackEndMin-wantEnd) > 1e-9 {
		t.Errorf("playback end %v, want %v", res.PlaybackEndMin, wantEnd)
	}
}

// TestSBMeasuredMatchesAnalytic sweeps arrival phases and checks that the
// measured worst-case latency and buffer equal the closed forms of
// Sections 3-4 — the central cross-validation of this reproduction.
func TestSBMeasuredMatchesAnalytic(t *testing.T) {
	for _, tc := range []struct {
		serverMbps float64
		width      int64
	}{
		{320, 2}, {320, 12}, {320, 52}, {600, 52}, {150, 5},
	} {
		s := sbSim(t, tc.serverMbps, tc.width)
		sch := s.Scheme()
		d1 := sch.UnitMinutes()
		period := sch.PhasePeriod()
		samples := int64(600)
		stride := period / samples
		if stride < 1 {
			stride = 1
		}
		var worstWait, worstBuf float64
		for u := int64(0); u < period; u += stride {
			// Arrive just after a unit boundary: worst-case wait.
			arrival := (float64(u) + 1e-9) * d1
			res, err := s.Client(arrival, 0)
			if err != nil {
				t.Fatalf("B=%v W=%d phase %d: %v", tc.serverMbps, tc.width, u, err)
			}
			if res.WaitMin > worstWait {
				worstWait = res.WaitMin
			}
			if res.MaxBufferMbit > worstBuf {
				worstBuf = res.MaxBufferMbit
			}
		}
		if lat := sch.AccessLatencyMin(); math.Abs(worstWait-lat) > 1e-6 {
			t.Errorf("B=%v W=%d: worst measured wait %v, analytic %v", tc.serverMbps, tc.width, worstWait, lat)
		}
		// Enumerated phases must reach the analytic buffer bound
		// exactly when all phases are covered, and never exceed it.
		bound := sch.BufferMbit()
		if worstBuf > bound+1e-6 {
			t.Errorf("B=%v W=%d: measured buffer %v exceeds bound %v", tc.serverMbps, tc.width, worstBuf, bound)
		}
		if stride == 1 && math.Abs(worstBuf-bound) > 1e-6 {
			t.Errorf("B=%v W=%d: measured worst buffer %v, want exactly %v", tc.serverMbps, tc.width, worstBuf, bound)
		}
	}
}

func TestSBRejectsBadInput(t *testing.T) {
	s := sbSim(t, 320, 2)
	if _, err := s.Client(-1, 0); err == nil {
		t.Error("negative arrival accepted")
	}
	if _, err := s.Client(1, 99); err == nil {
		t.Error("out-of-range video accepted")
	}
	if !strings.Contains(s.Name(), "SB") {
		t.Errorf("name %q", s.Name())
	}
}

func pbSim(t *testing.T, serverMbps float64, m pyramid.Method) *PB {
	t.Helper()
	sch, err := pyramid.New(vod.DefaultConfig(serverMbps), m)
	if err != nil {
		t.Fatal(err)
	}
	return NewPB(sch)
}

func TestPBClientJitterFreeAndBounded(t *testing.T) {
	for _, m := range []pyramid.Method{pyramid.MethodA, pyramid.MethodB} {
		for _, b := range []float64{100, 320, 600} {
			s := pbSim(t, b, m)
			lat := s.Scheme().AccessLatencyMin()
			bound := s.Scheme().BufferMbit()
			var worstWait, worstBuf float64
			for i := 0; i < 400; i++ {
				arrival := float64(i) * lat / 37.7 // irrational-ish phase coverage
				for v := 0; v < 3; v++ {
					res, err := s.Client(arrival, v)
					if err != nil {
						t.Fatalf("%v B=%v arrival %v video %d: %v", m, b, arrival, v, err)
					}
					if res.WaitMin > worstWait {
						worstWait = res.WaitMin
					}
					if res.MaxBufferMbit > worstBuf {
						worstBuf = res.MaxBufferMbit
					}
					if res.MaxStreams > 2 {
						t.Fatalf("%v B=%v: %d concurrent downloads, PB uses at most 2", m, b, res.MaxStreams)
					}
					if math.Abs(res.DownloadedMbit-10800) > 1e-4 {
						t.Fatalf("%v B=%v: downloaded %v", m, b, res.DownloadedMbit)
					}
				}
			}
			if worstWait > lat+1e-9 {
				t.Errorf("%v B=%v: measured wait %v exceeds analytic %v", m, b, worstWait, lat)
			}
			if worstWait < 0.5*lat {
				t.Errorf("%v B=%v: worst measured wait %v far below analytic %v; phase sweep broken?", m, b, worstWait, lat)
			}
			if worstBuf > bound*1.0001 {
				t.Errorf("%v B=%v: measured buffer %v exceeds analytic %v", m, b, worstBuf, bound)
			}
			if worstBuf < 0.8*bound {
				t.Errorf("%v B=%v: measured buffer %v far below analytic %v", m, b, worstBuf, bound)
			}
		}
	}
}

func ppbSim(t *testing.T, serverMbps float64, m ppb.Method) *PPB {
	t.Helper()
	sch, err := ppb.New(vod.DefaultConfig(serverMbps), m)
	if err != nil {
		t.Fatal(err)
	}
	return NewPPB(sch)
}

func TestPPBClientJitterFreeAndBounded(t *testing.T) {
	for _, m := range []ppb.Method{ppb.MethodA, ppb.MethodB} {
		for _, b := range []float64{100, 320, 600} {
			s := ppbSim(t, b, m)
			lat := s.Scheme().AccessLatencyMin()
			bound := s.Scheme().BufferMbit()
			var worstWait, worstBuf float64
			for i := 0; i < 400; i++ {
				arrival := float64(i) * lat / 23.3
				res, err := s.Client(arrival, 0)
				if err != nil {
					t.Fatalf("%v B=%v arrival %v: %v", m, b, arrival, err)
				}
				if res.WaitMin > worstWait {
					worstWait = res.WaitMin
				}
				if res.MaxBufferMbit > worstBuf {
					worstBuf = res.MaxBufferMbit
				}
				if math.Abs(res.DownloadedMbit-10800) > 1e-4 {
					t.Fatalf("%v B=%v: downloaded %v", m, b, res.DownloadedMbit)
				}
			}
			if worstWait > lat+1e-9 {
				t.Errorf("%v B=%v: measured wait %v exceeds analytic %v", m, b, worstWait, lat)
			}
			if worstWait < 0.5*lat {
				t.Errorf("%v B=%v: worst wait %v far below analytic %v", m, b, worstWait, lat)
			}
			// The eager client (no mid-broadcast pausing) must stay at
			// or below the paper's buffer bound.
			if worstBuf > bound*1.0001 {
				t.Errorf("%v B=%v: measured buffer %v exceeds analytic bound %v", m, b, worstBuf, bound)
			}
		}
	}
}

func TestStaggeredClient(t *testing.T) {
	sch, err := staggered.New(vod.DefaultConfig(300)) // N = 20, interval 6 min
	if err != nil {
		t.Fatal(err)
	}
	s := NewStaggered(sch)
	res, err := s.Client(7.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.PlayStartMin-12) > 1e-9 {
		t.Errorf("play start %v, want 12 (next 6-minute slot)", res.PlayStartMin)
	}
	if res.MaxBufferMbit > 1e-9 {
		t.Errorf("staggered client buffered %v Mbit, want 0", res.MaxBufferMbit)
	}
	if res.MaxStreams != 1 {
		t.Errorf("streams = %d, want 1", res.MaxStreams)
	}
	if res.WaitMin > sch.AccessLatencyMin() {
		t.Errorf("wait %v exceeds %v", res.WaitMin, sch.AccessLatencyMin())
	}
	if _, err := s.Client(-1, 0); err == nil {
		t.Error("negative arrival accepted")
	}
	if _, err := s.Client(0, 99); err == nil {
		t.Error("bad video accepted")
	}
}

func TestSweep(t *testing.T) {
	s := sbSim(t, 320, 52)
	res, err := Sweep(s, 200, 500, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clients != 200 || res.WaitMin.Count() != 200 {
		t.Errorf("sweep counted %d/%d", res.Clients, res.WaitMin.Count())
	}
	if res.WaitMin.Max() > s.Scheme().AccessLatencyMin()+1e-9 {
		t.Errorf("sweep max wait %v exceeds bound %v", res.WaitMin.Max(), s.Scheme().AccessLatencyMin())
	}
	if res.BufferMbit.Max() > s.Scheme().BufferMbit()+1e-6 {
		t.Errorf("sweep max buffer %v exceeds bound %v", res.BufferMbit.Max(), s.Scheme().BufferMbit())
	}
	if res.Streams.Max() > 2 {
		t.Errorf("sweep saw %v streams", res.Streams.Max())
	}
	if _, err := Sweep(s, 0, 1, 1, 1); err == nil {
		t.Error("Sweep accepted n=0")
	}
}

// TestSweepDeterministic checks that equal seeds reproduce results exactly.
func TestSweepDeterministic(t *testing.T) {
	s := sbSim(t, 320, 12)
	a, err := Sweep(s, 50, 100, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sweep(s, 50, 100, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.WaitMin.Mean() != b.WaitMin.Mean() || a.BufferMbit.Max() != b.BufferMbit.Max() {
		t.Error("same-seed sweeps diverged")
	}
}

func TestFirstAtOrAfter(t *testing.T) {
	cases := []struct {
		t, period, offset, want float64
	}{
		{0, 5, 0, 0},
		{0.1, 5, 0, 5},
		{5, 5, 0, 5},
		{4.9, 5, 3, 8},
		{2, 5, 3, 3},
	}
	for _, c := range cases {
		if got := firstAtOrAfter(c.t, c.period, c.offset); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("firstAtOrAfter(%v, %v, %v) = %v, want %v", c.t, c.period, c.offset, got, c.want)
		}
	}
}

func TestRunFlowsRejectsViolations(t *testing.T) {
	// Playback before download: jitter.
	d := []flow{{segment: 1, startMin: 5, endMin: 6, rateMbps: 1.5}}
	p := []flow{{segment: 1, startMin: 4, endMin: 5, rateMbps: 1.5}}
	if _, err := runFlows(d, p, 0); err == nil {
		t.Error("causality violation accepted")
	}
	// Mismatched totals.
	p2 := []flow{{segment: 1, startMin: 6, endMin: 8, rateMbps: 1.5}}
	if _, err := runFlows(d, p2, 0); err == nil {
		t.Error("size mismatch accepted")
	}
	// Played but never downloaded.
	p3 := []flow{{segment: 2, startMin: 6, endMin: 7, rateMbps: 1.5}}
	if _, err := runFlows(d, p3, 0); err == nil {
		t.Error("undownloaded segment accepted")
	}
	// Duplicate downloads.
	d2 := append(d, d[0])
	if _, err := runFlows(d2, append(p, p[0]), 0); err == nil {
		t.Error("duplicate download accepted")
	}
	// Count mismatch.
	if _, err := runFlows(d, nil, 0); err == nil {
		t.Error("count mismatch accepted")
	}
}

// TestSBDiskIOTiers validates Section 5's client I/O bandwidth formula
// empirically: the measured peak storage-I/O over all phases equals b for
// W=1, 2b for W=2 (or K<=3), and 3b otherwise.
func TestSBDiskIOTiers(t *testing.T) {
	cases := []struct {
		serverMbps float64
		width      int64
	}{
		{600, 1}, {600, 2}, {45, 52}, {320, 5}, {320, 12}, {320, 52}, {600, 52},
	}
	for _, tc := range cases {
		s := sbSim(t, tc.serverMbps, tc.width)
		want := s.Scheme().DiskBandwidthMbps()
		var worst float64
		period := s.Scheme().PhasePeriod()
		stride := period / 500
		if stride < 1 {
			stride = 1
		}
		d1 := s.Scheme().UnitMinutes()
		for u := int64(0); u < period; u += stride {
			res, err := s.Client(float64(u)*d1, 0)
			if err != nil {
				t.Fatalf("B=%v W=%d: %v", tc.serverMbps, tc.width, err)
			}
			if res.MaxIOMbps > worst {
				worst = res.MaxIOMbps
			}
		}
		if worst > want+1e-9 {
			t.Errorf("B=%v W=%d: measured peak I/O %v exceeds formula %v", tc.serverMbps, tc.width, worst, want)
		}
		if worst < want-1e-9 {
			t.Errorf("B=%v W=%d: measured peak I/O %v never reaches formula %v (tier too conservative?)",
				tc.serverMbps, tc.width, worst, want)
		}
	}
}

// TestPBDiskIOMatchesFormula checks the measured PB peak I/O against
// b + 2B/K.
func TestPBDiskIOMatchesFormula(t *testing.T) {
	s := pbSim(t, 320, pyramid.MethodB)
	want := s.Scheme().DiskBandwidthMbps()
	var worst float64
	for i := 0; i < 300; i++ {
		res, err := s.Client(float64(i)*0.173, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.MaxIOMbps > worst {
			worst = res.MaxIOMbps
		}
	}
	if worst > want+1e-9 {
		t.Errorf("measured peak I/O %v exceeds formula %v", worst, want)
	}
	if worst < 0.75*want {
		t.Errorf("measured peak I/O %v far below formula %v", worst, want)
	}
}

// TestPPBDiskIONearFormula checks PPB's measured peak I/O against b + r;
// the pause/resume client may transiently overlap two segments' bursts,
// so up to b + 2r is tolerated (Table 1 reports the steady rate).
func TestPPBDiskIONearFormula(t *testing.T) {
	s := ppbSim(t, 320, ppb.MethodB)
	b := s.Scheme().Config().RateMbps
	r := s.Scheme().SubchannelMbps()
	var worst float64
	for i := 0; i < 200; i++ {
		res, err := s.Client(float64(i)*0.37, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.MaxIOMbps > worst {
			worst = res.MaxIOMbps
		}
	}
	if worst > b+2*r+1e-9 {
		t.Errorf("measured peak I/O %v exceeds b+2r = %v", worst, b+2*r)
	}
	if worst < b+r-1e-9 {
		t.Errorf("measured peak I/O %v below the steady rate b+r = %v", worst, b+r)
	}
}

// TestStaggeredDiskIOIsDisplayRate: a pass-through client needs only b.
func TestStaggeredDiskIOIsDisplayRate(t *testing.T) {
	sch, err := staggered.New(vod.DefaultConfig(300))
	if err != nil {
		t.Fatal(err)
	}
	s := NewStaggered(sch)
	res, err := s.Client(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxIOMbps != 1.5 {
		t.Errorf("staggered peak I/O %v, want b", res.MaxIOMbps)
	}
}

// TestPPBProperty drives the pause/resume client with random bandwidths,
// methods and arrivals: always jitter-free, always within the Table 1
// buffer bound, every byte delivered exactly once.
func TestPPBProperty(t *testing.T) {
	f := func(bSel uint16, mSel bool, aSel uint16) bool {
		b := 95 + float64(bSel%5050)/10
		method := ppb.MethodA
		if mSel {
			method = ppb.MethodB
		}
		sch, err := ppb.New(vod.DefaultConfig(b), method)
		if err != nil {
			return true
		}
		s := NewPPB(sch)
		arrival := float64(aSel) * sch.AccessLatencyMin() / 997
		res, err := s.Client(arrival, 0)
		if err != nil {
			return false
		}
		return res.MaxBufferMbit <= sch.BufferMbit()*1.0001 &&
			math.Abs(res.DownloadedMbit-10800) < 1e-3 &&
			res.WaitMin <= sch.AccessLatencyMin()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestSBPropertyAgainstAnalytic is the sim-level counterpart of the core
// package's property test, exercising the full flow engine.
func TestSBPropertyAgainstAnalytic(t *testing.T) {
	widths := []int64{2, 5, 12, 25, 52}
	f := func(bSel uint8, wSel uint8, aSel uint16) bool {
		b := 90 + float64(bSel%52)*10
		sch, err := core.New(vod.DefaultConfig(b), widths[int(wSel)%len(widths)])
		if err != nil {
			return false
		}
		s := NewSB(sch)
		arrival := float64(aSel) * sch.UnitMinutes() / 7.3
		res, err := s.Client(arrival, 0)
		if err != nil {
			return false
		}
		return res.MaxBufferMbit <= sch.BufferMbit()+1e-6 &&
			res.MaxStreams <= 2 &&
			res.MaxIOMbps <= sch.DiskBandwidthMbps()+1e-9 &&
			res.WaitMin <= sch.AccessLatencyMin()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
