package sim

import (
	"fmt"
	"math"

	"skyscraper/internal/core"
)

// SB simulates a Skyscraper Broadcasting client: the server's K channels
// per video each rebroadcast their fragment back-to-back at the display
// rate (all aligned at virtual time 0), and the client executes the
// two-loader reception plan, tuning only at broadcast beginnings.
type SB struct {
	scheme *core.Scheme
	// videoPhase staggers different videos' channel groups; reception of
	// a single video is phase-invariant, so it defaults to 0.
}

// NewSB wraps an SB scheme for simulation.
func NewSB(scheme *core.Scheme) *SB { return &SB{scheme: scheme} }

// Name implements ClientSim.
func (s *SB) Name() string {
	return fmt.Sprintf("SB:W=%d", s.scheme.Width())
}

// Client implements ClientSim. The video index selects one of the M
// broadcast videos; all are symmetric under SB, but the index is validated
// against the configuration.
func (s *SB) Client(arrivalMin float64, video int) (ClientResult, error) {
	if video < 0 || video >= s.scheme.Config().Videos {
		return ClientResult{}, fmt.Errorf("sim: video %d outside broadcast set 0..%d", video, s.scheme.Config().Videos-1)
	}
	if arrivalMin < 0 {
		return ClientResult{}, fmt.Errorf("sim: negative arrival %v", arrivalMin)
	}
	d1 := s.scheme.UnitMinutes()
	// Playback starts at the next fragment-1 broadcast: channel 1 has
	// period D1 aligned to time 0.
	playUnit := int64(math.Ceil(arrivalMin / d1))
	plan, err := s.scheme.PlanSchedule(playUnit)
	if err != nil {
		return ClientResult{}, err
	}
	b := s.scheme.Config().RateMbps
	var downloads, playbacks []flow
	for _, dl := range plan.Downloads {
		g := dl.Group
		for j := 0; j < g.Count; j++ {
			seg := g.First + j
			// Compute every boundary as unit*d1 so that identical
			// instants are bitwise-equal floats; back-to-back
			// fragment downloads must not appear to overlap.
			dU := dl.FragmentStart(j)
			pU := playUnit + g.StartUnit + int64(j)*g.Size
			downloads = append(downloads, flow{
				segment: seg, startMin: float64(dU) * d1, endMin: float64(dU+g.Size) * d1, rateMbps: b})
			playbacks = append(playbacks, flow{
				segment: seg, startMin: float64(pU) * d1, endMin: float64(pU+g.Size) * d1, rateMbps: b})
		}
	}
	res, err := runFlows(downloads, playbacks, arrivalMin)
	if err != nil {
		return ClientResult{}, fmt.Errorf("sim: %s: %w", s.Name(), err)
	}
	return res, nil
}

// Scheme returns the underlying analytic scheme.
func (s *SB) Scheme() *core.Scheme { return s.scheme }
