package sim

import (
	"fmt"

	"skyscraper/internal/des"
	"skyscraper/internal/metrics"
)

// SweepResult aggregates a population of simulated clients under one
// scheme.
type SweepResult struct {
	Scheme string
	// WaitMin, BufferMbit and Streams summarize per-client measurements.
	WaitMin    metrics.Summary
	BufferMbit metrics.Summary
	Streams    metrics.Summary
	// Clients is the population size.
	Clients int
}

// Sweep simulates n clients with arrival times drawn uniformly over
// [0, windowMin) and videos drawn uniformly over the broadcast set,
// reporting aggregate statistics. It fails fast on any protocol violation.
func Sweep(cs ClientSim, n int, windowMin float64, videos int, seed uint64) (*SweepResult, error) {
	if n <= 0 || windowMin <= 0 || videos <= 0 {
		return nil, fmt.Errorf("sim: Sweep needs positive n, window and videos (got %d, %v, %d)", n, windowMin, videos)
	}
	r := des.NewRand(seed)
	res := &SweepResult{Scheme: cs.Name(), Clients: n}
	for i := 0; i < n; i++ {
		arrival := r.Float64() * windowMin
		video := r.Intn(videos)
		cr, err := cs.Client(arrival, video)
		if err != nil {
			return nil, fmt.Errorf("sim: client %d (arrival %.4f, video %d): %w", i, arrival, video, err)
		}
		res.WaitMin.Observe(cr.WaitMin)
		res.BufferMbit.Observe(cr.MaxBufferMbit)
		res.Streams.Observe(float64(cr.MaxStreams))
	}
	return res, nil
}
