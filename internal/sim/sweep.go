package sim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"skyscraper/internal/des"
	"skyscraper/internal/metrics"
)

// SweepResult aggregates a population of simulated clients under one
// scheme.
type SweepResult struct {
	Scheme string
	// WaitMin, BufferMbit and Streams summarize per-client measurements.
	WaitMin    metrics.Summary
	BufferMbit metrics.Summary
	Streams    metrics.Summary
	// Clients is the population size.
	Clients int
}

// SweepOption configures Sweep.
type SweepOption func(*sweepConfig)

type sweepConfig struct{ workers int }

// Workers sets the sweep's worker-pool size. n <= 0 (and the default)
// selects runtime.GOMAXPROCS(0). The worker count never changes results:
// see the determinism contract on Sweep.
func Workers(n int) SweepOption {
	return func(c *sweepConfig) { c.workers = n }
}

// sweepShardSize is the number of clients accumulated per shard. Shard
// boundaries depend only on the population size — never on the worker
// count — and shard summaries are merged in index order, so the sequence
// of floating-point additions behind every statistic is identical for any
// pool size.
const sweepShardSize = 256

// shardAcc is one shard's private accumulator; workers never share one.
type shardAcc struct {
	wait, buffer, streams metrics.Summary
	err                   error
	errClient             int
}

// Sweep simulates n clients with arrival times drawn uniformly over
// [0, windowMin) and videos drawn uniformly over the broadcast set,
// reporting aggregate statistics. It fails fast on any protocol violation.
//
// The population is sharded across a worker pool (Workers option; default
// runtime.GOMAXPROCS(0)). Client i's arrival and video come from its own
// substream source, des.SubSeed(seed, i), so its draws do not depend on
// which worker plays it or in what order: for a given seed the result —
// every count, sum, min, max and quantile — is bit-identical across any
// worker count, including 1. On protocol violations the pool drains early
// and the violation with the lowest client index is returned, again
// independent of scheduling.
func Sweep(cs ClientSim, n int, windowMin float64, videos int, seed uint64, opts ...SweepOption) (*SweepResult, error) {
	if n <= 0 || windowMin <= 0 || videos <= 0 {
		return nil, fmt.Errorf("sim: Sweep needs positive n, window and videos (got %d, %v, %d)", n, windowMin, videos)
	}
	var cfg sweepConfig
	for _, o := range opts {
		o(&cfg)
	}
	workers := cfg.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	shards := (n + sweepShardSize - 1) / sweepShardSize
	if workers > shards {
		workers = shards
	}

	accs := make([]shardAcc, shards)
	var (
		next  atomic.Int64 // next unclaimed shard index
		errAt atomic.Int64 // lowest erroring client index seen so far
		wg    sync.WaitGroup
	)
	errAt.Store(int64(n))
	worker := func() {
		defer wg.Done()
		for {
			si := int(next.Add(1) - 1)
			if si >= shards {
				return
			}
			lo := si * sweepShardSize
			// Shards are claimed in ascending order, so once a shard
			// starts at or past the lowest known violation, every
			// remaining one does too.
			if int64(lo) >= errAt.Load() {
				return
			}
			hi := lo + sweepShardSize
			if hi > n {
				hi = n
			}
			acc := &accs[si]
			acc.wait.ReserveHint(hi - lo)
			acc.buffer.ReserveHint(hi - lo)
			acc.streams.ReserveHint(hi - lo)
			for i := lo; i < hi; i++ {
				// Clients below the lowest known violation must still be
				// played — one of them may violate at a lower index —
				// which is what makes the returned error deterministic.
				if int64(i) >= errAt.Load() {
					break
				}
				r := des.NewRand(des.SubSeed(seed, uint64(i)))
				arrival := r.Float64() * windowMin
				video := r.Intn(videos)
				cr, err := cs.Client(arrival, video)
				if err != nil {
					acc.err = fmt.Errorf("sim: client %d (arrival %.4f, video %d): %w", i, arrival, video, err)
					acc.errClient = i
					for {
						cur := errAt.Load()
						if int64(i) >= cur || errAt.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
					break
				}
				acc.wait.Observe(cr.WaitMin)
				acc.buffer.Observe(cr.MaxBufferMbit)
				acc.streams.Observe(float64(cr.MaxStreams))
			}
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}
	wg.Wait()

	var firstErr error
	first := n
	for i := range accs {
		if accs[i].err != nil && accs[i].errClient < first {
			first, firstErr = accs[i].errClient, accs[i].err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}

	res := &SweepResult{Scheme: cs.Name(), Clients: n}
	res.WaitMin.ReserveHint(n)
	res.BufferMbit.ReserveHint(n)
	res.Streams.ReserveHint(n)
	for i := range accs {
		res.WaitMin.Merge(&accs[i].wait)
		res.BufferMbit.Merge(&accs[i].buffer)
		res.Streams.Merge(&accs[i].streams)
	}
	return res, nil
}
