package sim

import (
	"fmt"

	"skyscraper/internal/staggered"
)

// Staggered simulates a plain periodic-broadcast client: it waits for the
// next of N phase-shifted full-file streams of its video and plays it
// straight through, buffering nothing.
type Staggered struct {
	scheme *staggered.Scheme
}

// NewStaggered wraps a staggered scheme for simulation.
func NewStaggered(scheme *staggered.Scheme) *Staggered { return &Staggered{scheme: scheme} }

// Name implements ClientSim.
func (s *Staggered) Name() string { return s.scheme.Name() }

// Scheme returns the underlying analytic scheme.
func (s *Staggered) Scheme() *staggered.Scheme { return s.scheme }

// Client implements ClientSim.
func (s *Staggered) Client(arrivalMin float64, video int) (ClientResult, error) {
	cfg := s.scheme.Config()
	if video < 0 || video >= cfg.Videos {
		return ClientResult{}, fmt.Errorf("sim: video %d outside broadcast set 0..%d", video, cfg.Videos-1)
	}
	if arrivalMin < 0 {
		return ClientResult{}, fmt.Errorf("sim: negative arrival %v", arrivalMin)
	}
	start := firstAtOrAfter(arrivalMin, s.scheme.BatchingIntervalMin(), 0)
	f := flow{segment: 1, startMin: start, endMin: start + cfg.LengthMin, rateMbps: cfg.RateMbps}
	res, err := runFlows([]flow{f}, []flow{f}, arrivalMin)
	if err != nil {
		return ClientResult{}, fmt.Errorf("sim: %s: %w", s.Name(), err)
	}
	return res, nil
}
