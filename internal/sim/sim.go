// Package sim contains event-driven simulations of every broadcasting
// scheme in this repository. Where the analytic packages (core, pyramid,
// ppb, staggered) evaluate the paper's closed forms, this package actually
// plays the protocols out: server channels emit periodic broadcasts on a
// virtual clock, clients tune, loaders fill a buffer, and a player drains
// it — so access latency, buffer high-water marks and stream concurrency
// are *measured*, and jitter-freeness is checked rather than assumed. The
// tests cross-validate the measurements against the closed forms, which is
// this reproduction's substitute for the authors' testbed.
package sim

import (
	"fmt"
	"sort"

	"skyscraper/internal/des"
	"skyscraper/internal/metrics"
)

// ClientResult reports one simulated client's reception of one video.
type ClientResult struct {
	// ArrivalMin and PlayStartMin are in virtual minutes; WaitMin is
	// their difference (the service latency actually experienced).
	ArrivalMin, PlayStartMin, WaitMin float64
	// MaxBufferMbit is the client buffer high-water mark.
	MaxBufferMbit float64
	// AvgBufferMbit is the time-weighted mean occupancy between playback
	// start and end.
	AvgBufferMbit float64
	// MaxStreams is the peak number of simultaneously tuned channels.
	MaxStreams int
	// MaxIOMbps is the peak client storage-I/O bandwidth: the display
	// rate while playing plus the rates of all concurrently *buffering*
	// downloads (a download that streams straight through to the player
	// — identical interval and rate — touches no disk). This is the
	// measured counterpart of the paper's Table 1 disk-bandwidth column.
	MaxIOMbps float64
	// DownloadedMbit totals all received data; it must equal the video
	// size exactly (every byte received once).
	DownloadedMbit float64
	// PlaybackEndMin is when the player consumed the final byte.
	PlaybackEndMin float64
}

// ClientSim simulates one client reception under some scheme.
type ClientSim interface {
	// Name identifies the scheme, matching its analytic Performer.
	Name() string
	// Client simulates a client arriving at arrivalMin (virtual minutes)
	// requesting the given video, returning measurements or an error if
	// the protocol missed a deadline (jitter).
	Client(arrivalMin float64, video int) (ClientResult, error)
}

// flow is a constant-rate transfer of one segment's data over an interval.
type flow struct {
	segment  int // 1-based segment index
	startMin float64
	endMin   float64
	rateMbps float64
}

func (f flow) mbit() float64 { return (f.endMin - f.startMin) * 60 * f.rateMbps }

// cumulative returns the Mbit transferred by time t.
func (f flow) cumulative(t float64) float64 {
	if t <= f.startMin {
		return 0
	}
	if t >= f.endMin {
		return f.mbit()
	}
	return (t - f.startMin) * 60 * f.rateMbps
}

// runFlows executes a client's download and playback flows on a discrete
// event simulation, verifying per-segment causality (no byte is played
// before it arrives) and measuring buffer occupancy and stream concurrency.
// Every played segment must be covered by one or more download bursts (a
// pausing client, like PPB's, receives a segment in several bursts from
// phase-shifted replicas) delivering exactly the played volume.
func runFlows(downloads, playbacks []flow, arrivalMin float64) (ClientResult, error) {
	if len(playbacks) == 0 {
		return ClientResult{}, fmt.Errorf("sim: no playback flows")
	}
	dl := make(map[int][]flow, len(playbacks))
	for _, f := range downloads {
		if f.endMin < f.startMin || f.rateMbps <= 0 {
			return ClientResult{}, fmt.Errorf("sim: malformed download flow %+v", f)
		}
		dl[f.segment] = append(dl[f.segment], f)
	}
	// Tolerance for data-volume comparisons: 1e-4 Mbit is about 12 bytes,
	// far above accumulated float64 noise and far below any real jitter.
	const tol = 1e-4
	playStart, playEnd := playbacks[0].startMin, playbacks[0].endMin
	for _, p := range playbacks {
		bursts, ok := dl[p.segment]
		if !ok {
			return ClientResult{}, fmt.Errorf("sim: segment %d played but never downloaded", p.segment)
		}
		sort.Slice(bursts, func(i, j int) bool { return bursts[i].startMin < bursts[j].startMin })
		var got float64
		breakpoints := []float64{p.startMin, p.endMin}
		for i, b := range bursts {
			got += b.mbit()
			breakpoints = append(breakpoints, b.startMin, b.endMin)
			if i > 0 && b.startMin < bursts[i-1].endMin-1e-12 {
				return ClientResult{}, fmt.Errorf("sim: segment %d bursts overlap at t=%.6f", p.segment, b.startMin)
			}
		}
		if diff := got - p.mbit(); diff > tol || diff < -tol {
			return ClientResult{}, fmt.Errorf("sim: segment %d downloads %.6f Mbit but plays %.6f",
				p.segment, got, p.mbit())
		}
		// Causality is a piecewise-linear comparison; extremes occur at
		// breakpoints of either curve.
		for _, t := range breakpoints {
			var cum float64
			for _, b := range bursts {
				cum += b.cumulative(t)
			}
			if short := p.cumulative(t) - cum; short > tol {
				return ClientResult{}, fmt.Errorf("sim: jitter on segment %d: player is %.6f Mbit ahead at t=%.6f",
					p.segment, short, t)
			}
		}
		if p.startMin < playStart {
			playStart = p.startMin
		}
		if p.endMin > playEnd {
			playEnd = p.endMin
		}
	}

	// A download that coincides exactly with its segment's playback
	// streams through to the player and touches no disk; everything else
	// is written to (and later read from) the client buffer.
	passThrough := func(f flow) bool {
		for _, p := range playbacks {
			if p.segment == f.segment {
				return f.startMin == p.startMin && f.endMin == p.endMin && f.rateMbps == p.rateMbps
			}
		}
		return false
	}

	// Replay the flows on the event kernel to integrate the buffer gauge,
	// stream concurrency and storage-I/O rate.
	var (
		sim        des.Sim
		buf        metrics.Gauge
		streams    int
		maxStreams int
		total      float64
		playing    int     // active playback flows
		writeRate  float64 // Mbit/s being written to the buffer
		maxIO      float64
	)
	type edge struct {
		t      float64
		dRate  float64 // buffer fill-rate delta (downloads add, playback subtracts)
		stream int     // +1 tune, -1 untune, 0 for playback edges
		play   int     // +1 playback start, -1 playback end
		wRate  float64 // disk write-rate delta
	}
	var edges []edge
	for _, f := range downloads {
		e0 := edge{t: f.startMin, dRate: +f.rateMbps, stream: +1}
		e1 := edge{t: f.endMin, dRate: -f.rateMbps, stream: -1}
		if !passThrough(f) {
			e0.wRate, e1.wRate = +f.rateMbps, -f.rateMbps
		}
		edges = append(edges, e0, e1)
		total += f.mbit()
	}
	for _, p := range playbacks {
		edges = append(edges,
			edge{t: p.startMin, dRate: -p.rateMbps, play: +1},
			edge{t: p.endMin, dRate: +p.rateMbps, play: -1})
	}
	sort.SliceStable(edges, func(i, j int) bool { return edges[i].t < edges[j].t })
	playRate := playbacks[0].rateMbps
	var rate float64 // net fill rate Mbit/s
	prev := edges[0].t
	for _, e := range edges {
		e := e
		sim.At(e.t, func(now float64) {
			buf.Add(now, rate*60*(now-prev))
			prev = now
			rate += e.dRate
			streams += e.stream
			if streams > maxStreams {
				maxStreams = streams
			}
			playing += e.play
			writeRate += e.wRate
			io := writeRate
			if playing > 0 {
				io += playRate
			}
			if io > maxIO {
				maxIO = io
			}
		})
	}
	sim.RunAll()
	if lvl := buf.Level(); lvl > tol || lvl < -tol {
		return ClientResult{}, fmt.Errorf("sim: buffer did not drain: %.6f Mbit left", lvl)
	}

	return ClientResult{
		ArrivalMin:     arrivalMin,
		PlayStartMin:   playStart,
		WaitMin:        playStart - arrivalMin,
		MaxBufferMbit:  buf.High(),
		AvgBufferMbit:  buf.TimeAverage(playEnd),
		MaxStreams:     maxStreams,
		MaxIOMbps:      maxIO,
		DownloadedMbit: total,
		PlaybackEndMin: playEnd,
	}, nil
}
