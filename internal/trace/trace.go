// Package trace is a bounded, allocation-light event journal for the
// simulators and servers: fixed-capacity ring of timestamped events, safe
// for concurrent writers, dumpable as text. It exists so a failing
// simulation or live session can explain itself without unbounded logs.
package trace

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Wall converts a wall-clock instant to the journal's VirtualMin scale:
// minutes elapsed since epoch. Live components (the server, the fault
// injector, the client's loss-recovery path) journal on this scale so one
// dump of a shared buffer interleaves their events chronologically.
func Wall(epoch, t time.Time) float64 { return t.Sub(epoch).Minutes() }

// Event is one journal entry.
type Event struct {
	// Seq numbers events from 0 in record order.
	Seq int64
	// VirtualMin is the simulation clock (or wall-relative time for live
	// components), in minutes.
	VirtualMin float64
	// Kind is a short category, e.g. "tune", "stream-start", "renege".
	Kind string
	// Detail is a preformatted description.
	Detail string
}

// Buffer is a fixed-capacity ring journal. The zero value is unusable;
// create with New. A nil *Buffer is valid and discards all events, so
// components can expose optional tracing without nil checks.
type Buffer struct {
	mu      sync.Mutex
	ring    []Event
	next    int64 // total events ever recorded
	dropped int64
}

// New returns a journal keeping the most recent capacity events.
func New(capacity int) *Buffer {
	if capacity <= 0 {
		capacity = 256
	}
	return &Buffer{ring: make([]Event, 0, capacity)}
}

// Addf records an event. On a nil Buffer it is a no-op.
func (b *Buffer) Addf(virtualMin float64, kind, format string, args ...any) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e := Event{
		Seq:        b.next,
		VirtualMin: virtualMin,
		Kind:       kind,
		Detail:     fmt.Sprintf(format, args...),
	}
	if len(b.ring) < cap(b.ring) {
		b.ring = append(b.ring, e)
	} else {
		b.ring[b.next%int64(cap(b.ring))] = e
		b.dropped++
	}
	b.next++
}

// Len returns the number of retained events.
func (b *Buffer) Len() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.ring)
}

// Dropped returns how many events were evicted by the ring.
func (b *Buffer) Dropped() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// Events returns the retained events in record order.
func (b *Buffer) Events() []Event {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Event, 0, len(b.ring))
	if len(b.ring) < cap(b.ring) {
		return append(out, b.ring...)
	}
	// Ring is full: oldest entry is at next % cap.
	c := int64(cap(b.ring))
	for i := int64(0); i < c; i++ {
		out = append(out, b.ring[(b.next+i)%c])
	}
	return out
}

// WriteTo dumps the journal as one event per line.
func (b *Buffer) WriteTo(w io.Writer) (int64, error) {
	var total int64
	if d := b.Dropped(); d > 0 {
		n, err := fmt.Fprintf(w, "... %d earlier events dropped ...\n", d)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	for _, e := range b.Events() {
		n, err := fmt.Fprintf(w, "[%6d] t=%-10.4f %-14s %s\n", e.Seq, e.VirtualMin, e.Kind, e.Detail)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
