package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestRecordAndRead(t *testing.T) {
	b := New(10)
	b.Addf(1.5, "tune", "channel %d", 3)
	b.Addf(2.5, "play", "segment %d", 1)
	evs := b.Events()
	if len(evs) != 2 || b.Len() != 2 {
		t.Fatalf("events = %v", evs)
	}
	if evs[0].Seq != 0 || evs[0].Kind != "tune" || evs[0].Detail != "channel 3" || evs[0].VirtualMin != 1.5 {
		t.Errorf("event 0 = %+v", evs[0])
	}
	if evs[1].Seq != 1 {
		t.Errorf("event 1 seq = %d", evs[1].Seq)
	}
	if b.Dropped() != 0 {
		t.Errorf("dropped = %d", b.Dropped())
	}
}

func TestRingEviction(t *testing.T) {
	b := New(4)
	for i := 0; i < 10; i++ {
		b.Addf(float64(i), "k", "event %d", i)
	}
	evs := b.Events()
	if len(evs) != 4 {
		t.Fatalf("%d retained, want 4", len(evs))
	}
	// Oldest retained is event 6; order preserved.
	for i, e := range evs {
		if e.Seq != int64(6+i) {
			t.Errorf("position %d has seq %d, want %d", i, e.Seq, 6+i)
		}
	}
	if b.Dropped() != 6 {
		t.Errorf("dropped = %d, want 6", b.Dropped())
	}
}

func TestNilBufferIsSafe(t *testing.T) {
	var b *Buffer
	b.Addf(1, "k", "discarded")
	if b.Len() != 0 || b.Dropped() != 0 || b.Events() != nil {
		t.Error("nil buffer not inert")
	}
}

func TestWriteTo(t *testing.T) {
	b := New(2)
	for i := 0; i < 3; i++ {
		b.Addf(float64(i), "kind", "detail-%d", i)
	}
	var sb strings.Builder
	if _, err := b.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "1 earlier events dropped") {
		t.Errorf("missing drop notice:\n%s", out)
	}
	if !strings.Contains(out, "detail-2") || strings.Contains(out, "detail-0") {
		t.Errorf("wrong retained window:\n%s", out)
	}
}

func TestConcurrentWriters(t *testing.T) {
	b := New(128)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				b.Addf(0, "k", "x")
			}
		}()
	}
	wg.Wait()
	if got := b.Dropped() + int64(b.Len()); got != 8000 {
		t.Errorf("retained+dropped = %d, want 8000", got)
	}
	// Events must have distinct, increasing seqs.
	evs := b.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("seq order broken at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
}

func TestDefaultCapacity(t *testing.T) {
	b := New(0)
	for i := 0; i < 300; i++ {
		b.Addf(0, "k", "x")
	}
	if b.Len() != 256 {
		t.Errorf("default capacity retained %d, want 256", b.Len())
	}
}
