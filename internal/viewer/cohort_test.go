package viewer

import (
	"sync/atomic"
	"testing"
	"time"

	"skyscraper/internal/content"
	"skyscraper/internal/des"
	"skyscraper/internal/wire"
)

// ---------------------------------------------------------------------------
// Cohort-equivalence property: a cohort of N viewers multiplexed through one
// shared Observe-mode machine plus lazily-materialized per-viewer machines
// must produce bit-identical per-viewer stats to N independent repair-mode
// machines — the live client's exact configuration — fed the same broadcast
// arrivals and the same deterministic repair outcomes. Machines are pure
// state over explicit clocks, so the whole property runs in virtual time.
// ---------------------------------------------------------------------------

// equivGeometry is the fragment shape the property runs on: 8 chunks over
// 4 units, tuned at absolute unit 8, playing at unit 12.
func equivGeometry() FragmentParams {
	return FragmentParams{
		Video:        1,
		Channel:      3,
		Size:         4,
		TuneUnit:     8,
		PlayUnit:     12,
		TotalBytes:   8192,
		ChunkBytes:   1024,
		BytesPerUnit: 2048,
		Epoch:        time.Unix(1000, 0),
		Unit:         10 * time.Millisecond,
		Slack:        10 * time.Millisecond,
		Lag:          5 * time.Millisecond,
	}
}

// oracleOutcome is the deterministic repair-server stand-in: the outcome of
// viewer seed's attempt-th round trip for (channel, idx). Both harnesses
// consult it, so any stats divergence is the multiplexer's fault.
func oracleOutcome(seed uint64, channel, idx, attempt int) RepairOutcome {
	key := uint64(channel)<<40 | uint64(idx)<<16 | uint64(attempt)
	r := des.NewRand(des.SubSeed(des.SubSeed(seed, 0xFEED), key))
	switch p := r.Float64(); {
	case p < 0.30:
		return RepairOK
	case p < 0.55:
		return RepairBusy
	default:
		return RepairFailed
	}
}

// equivLedger is the per-viewer outcome record both harnesses produce.
type equivLedger struct {
	lost, late, dup, repaired int64
	reqs, busy                int64
}

type arrival struct {
	at  time.Time
	idx int
}

// dropPlan derives the cohort-wide drop set (the fault injector keys drops
// without Seq, so every viewer of a repetition-invariant broadcast sees the
// same injured positions) and the arrival schedule for surviving chunks.
func dropPlan(p FragmentParams, dropSeed uint64) (map[int]bool, []arrival) {
	n := (p.TotalBytes + p.ChunkBytes - 1) / p.ChunkBytes
	spacing := time.Duration(p.Size) * p.Unit / time.Duration(n)
	start := p.Epoch.Add(time.Duration(p.TuneUnit) * p.Unit)
	r := des.NewRand(dropSeed)
	drops := map[int]bool{}
	for idx := 0; idx < n; idx++ {
		if r.Float64() < 0.35 {
			drops[idx] = true
		}
	}
	if len(drops) == 0 {
		drops[3] = true
	}
	var arr []arrival
	for idx := 0; idx < n; idx++ {
		if !drops[idx] {
			arr = append(arr, arrival{at: start.Add(time.Duration(idx)*spacing + spacing/2), idx: idx})
		}
	}
	return drops, arr
}

// runIndependent drives one repair-mode machine — the live client's loader
// configuration — through the arrival schedule in virtual time.
func runIndependent(t *testing.T, p FragmentParams, seed uint64, arrivals []arrival) equivLedger {
	t.Helper()
	var led equivLedger
	p.Jitter = func(key, stream uint64, window time.Duration) time.Duration {
		return JitterIn(seed, key, stream, window)
	}
	p.OnLost = func(int, int) { led.lost++ }
	m := NewMachine(p)
	now := p.Epoch.Add(time.Duration(p.TuneUnit) * p.Unit)
	ai := 0
	for iter := 0; !m.Done() || ai < len(arrivals); iter++ {
		if iter > 100_000 {
			t.Fatal("independent driver did not converge")
		}
		if m.Done() {
			// Post-completion arrivals would book duplicates; the drop-only
			// plan never produces them (see the completion argument below).
			t.Fatalf("machine done with %d arrivals undelivered", len(arrivals)-ai)
		}
		act := m.Next(now)
		if act.Kind == ActRepair {
			led.reqs++
			out := oracleOutcome(seed, p.Channel, act.Idx, act.Attempt)
			if out == RepairBusy {
				led.busy++
			}
			m.RepairResult(act.Idx, out, 0, now)
			continue
		}
		// ActWait: advance to the earlier of the wake and the next arrival.
		if ai < len(arrivals) && !arrivals[ai].at.After(act.Wake) {
			now = arrivals[ai].at
			m.Chunk(arrivals[ai].idx, now)
			ai++
			continue
		}
		now = act.Wake
	}
	st := m.Stats()
	led.late, led.dup, led.repaired = st.Late, st.Duplicates, st.Repaired
	return led
}

// runCohortSim drives the multiplexer's exact divergence protocol in
// virtual time: a shared Observe machine detects gaps; the first gap
// materializes per-viewer machines with every other chunk pre-resolved;
// later gaps reopen them; finished viewers fold stat deltas into ledgers
// exactly as the worker pool does.
func runCohortSim(t *testing.T, base FragmentParams, muxSeed uint64, nviewers int, arrivals []arrival) []equivLedger {
	t.Helper()
	leds := make([]equivLedger, nviewers)

	var sharedLost int64
	op := base
	op.Observe = true
	op.OnLost = func(int, int) { sharedLost++ }
	shared := NewMachine(op)

	n := shared.NChunks()
	diverged := make([]bool, n)
	vms := []*Machine(nil)
	vmDone := make([]bool, nviewers)
	folded := make([]MachineStats, nviewers)

	materialize := func(gapIdx int) {
		vms = make([]*Machine, nviewers)
		for v := 0; v < nviewers; v++ {
			v := v
			p := base
			seed := ViewerSeed(muxSeed, v)
			p.Jitter = func(key, stream uint64, window time.Duration) time.Duration {
				return JitterIn(seed, key, stream, window)
			}
			p.OnLost = func(int, int) { leds[v].lost++ }
			vms[v] = NewMachine(p)
			for x := 0; x < n; x++ {
				if x != gapIdx {
					vms[v].ResolveRepaired(x)
				}
			}
		}
	}
	diverge := func(idx int) {
		diverged[idx] = true
		if vms == nil {
			materialize(idx)
			return
		}
		for v := range vms {
			vmDone[v] = false
			vms[v].Reopen(idx)
		}
	}
	// driveVM mirrors worker.step + worker.finish (delta folding included).
	driveVM := func(v int, now time.Time) (acted bool, wake time.Time) {
		seed := ViewerSeed(muxSeed, v)
		for {
			if vms[v].Done() {
				if !vmDone[v] {
					vmDone[v] = true
					st := vms[v].Stats()
					leds[v].late += st.Late - folded[v].Late
					leds[v].dup += st.Duplicates - folded[v].Duplicates
					leds[v].repaired += st.Repaired - folded[v].Repaired
					folded[v] = st
					acted = true
				}
				return acted, time.Time{}
			}
			act := vms[v].Next(now)
			if act.Kind != ActRepair {
				return acted, act.Wake
			}
			acted = true
			leds[v].reqs++
			out := oracleOutcome(seed, base.Channel, act.Idx, act.Attempt)
			if out == RepairBusy {
				leds[v].busy++
			}
			vms[v].RepairResult(act.Idx, out, 0, now)
		}
	}

	now := base.Epoch.Add(time.Duration(base.TuneUnit) * base.Unit)
	ai := 0
	for iter := 0; ; iter++ {
		if iter > 200_000 {
			t.Fatal("cohort driver did not converge")
		}
		// Fire everything due at now before advancing the clock.
		acted := false
		var wakes []time.Time
		if !shared.Done() {
			act := shared.Next(now)
			if act.Kind == ActGap {
				diverge(act.Idx)
				continue
			}
			wakes = append(wakes, act.Wake)
		}
		for v := range vms {
			if vmDone[v] {
				continue
			}
			a, wake := driveVM(v, now)
			acted = acted || a
			if !wake.IsZero() {
				wakes = append(wakes, wake)
			}
		}
		if acted {
			continue
		}
		allDone := shared.Done()
		for v := range vms {
			if !vmDone[v] {
				allDone = false
			}
		}
		if allDone {
			if ai < len(arrivals) {
				t.Fatalf("cohort done with %d arrivals undelivered", len(arrivals)-ai)
			}
			break
		}
		// Advance to the earliest wake or arrival.
		var next time.Time
		for _, w := range wakes {
			if next.IsZero() || w.Before(next) {
				next = w
			}
		}
		if ai < len(arrivals) && (next.IsZero() || !arrivals[ai].at.After(next)) {
			now = arrivals[ai].at
			idx := arrivals[ai].idx
			ai++
			if diverged[idx] {
				t.Fatalf("drop-only plan delivered diverged chunk %d", idx)
			}
			shared.Chunk(idx, now)
			continue
		}
		if next.IsZero() {
			t.Fatal("cohort driver stuck: nothing pending")
		}
		now = next
	}
	if sharedLost != 0 {
		t.Fatalf("shared Observe machine booked %d losses itself; all gaps belong to the viewer plane", sharedLost)
	}
	// Shared-machine outcomes apply to every cohort member.
	st := shared.Stats()
	for v := range leds {
		leds[v].late += st.Late
		leds[v].dup += st.Duplicates
	}
	return leds
}

func TestCohortEquivalenceProperty(t *testing.T) {
	base := equivGeometry()
	const nviewers = 3
	var divergedRuns, repairedTotal, lostTotal int64
	for _, muxSeed := range []uint64{1, 2, 3} {
		for _, dropSeed := range []uint64{10, 11, 12} {
			drops, arrivals := dropPlan(base, dropSeed)
			cohortLeds := runCohortSim(t, base, muxSeed, nviewers, arrivals)
			for v := 0; v < nviewers; v++ {
				want := runIndependent(t, base, ViewerSeed(muxSeed, v), arrivals)
				if got := cohortLeds[v]; got != want {
					t.Errorf("muxSeed %d dropSeed %d (drops %v) viewer %d:\n cohort      %+v\n independent %+v",
						muxSeed, dropSeed, drops, v, got, want)
				}
				repairedTotal += cohortLeds[v].repaired
				lostTotal += cohortLeds[v].lost
			}
			divergedRuns++
		}
	}
	// The property must have exercised real divergence, not vacuous runs.
	if repairedTotal == 0 || lostTotal == 0 {
		t.Errorf("weak coverage across %d runs: repaired %d, lost %d — tune drop rates",
			divergedRuns, repairedTotal, lostTotal)
	}
}

// TestCohortReopenAfterFinishFoldsDeltas pins the double-fold hazard: a
// viewer that finishes a fragment, is reopened by a later gap, and finishes
// again must credit its ledger with stat deltas, not cumulative totals.
func TestCohortReopenAfterFinishFoldsDeltas(t *testing.T) {
	base := equivGeometry()
	// Oracle for seed ViewerSeed(21, v) resolves both gaps; what matters is
	// only that two gap checkpoints are far enough apart that viewers finish
	// between them: drop chunks 0 and 7.
	start := base.Epoch.Add(time.Duration(base.TuneUnit) * base.Unit)
	spacing := time.Duration(base.Size) * base.Unit / 8
	var arrivals []arrival
	for idx := 1; idx < 7; idx++ {
		arrivals = append(arrivals, arrival{at: start.Add(time.Duration(idx)*spacing + spacing/2), idx: idx})
	}
	leds := runCohortSim(t, base, 21, 2, arrivals)
	for v, led := range leds {
		if led.repaired+led.lost != 2 {
			t.Errorf("viewer %d: repaired %d + lost %d chunks, want exactly the 2 dropped",
				v, led.repaired, led.lost)
		}
		want := runIndependent(t, base, ViewerSeed(21, v), arrivals)
		if led != want {
			t.Errorf("viewer %d:\n cohort      %+v\n independent %+v", v, led, want)
		}
	}
}

// ---------------------------------------------------------------------------
// Steady-state hot path: one converged datagram must cost zero allocations.
// ---------------------------------------------------------------------------

func TestCohortConvergedPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; run without -race for the gate")
	}
	const chunkBytes, nchunks = 512, 5
	m := &Mux{w: &wire.Welcome{ChunkBytes: chunkBytes, BytesPerUnit: 1024}}
	c := &cohort{mux: m, video: 1}
	f := &cohortFrag{
		c:       c,
		channel: 2,
		wantSeq: 3,
		params: FragmentParams{
			Video: 1, Channel: 2,
			Size: 2, TuneUnit: 6, PlayUnit: 100,
			TotalBytes: nchunks * chunkBytes, ChunkBytes: chunkBytes, BytesPerUnit: 1024,
			Epoch: time.Unix(2000, 0), Unit: 10 * time.Millisecond,
			Slack: time.Second, Lag: time.Second,
		},
		videoBase: 4096,
		wake:      make(chan struct{}, 1),
	}
	op := f.params
	op.Observe = true
	f.m = NewMachine(op)
	f.diverged = make([]bool, nchunks)
	f.arrived = make([]atomic.Int64, nchunks)

	// Only nchunks-1 distinct frames, so the machine never completes and
	// repeated deliveries walk the Accepted, then the Duplicate, branch.
	frames := make([][]byte, nchunks-1)
	for i := range frames {
		payload := make([]byte, chunkBytes)
		content.Fill(payload, 1, f.videoBase+int64(i*chunkBytes))
		ch := wire.Chunk{Video: 1, Channel: 2, Seq: 3, Offset: uint32(i * chunkBytes),
			Total: nchunks * chunkBytes, Payload: payload}
		frame, err := ch.Encode(nil)
		if err != nil {
			t.Fatal(err)
		}
		frames[i] = frame
	}
	now := f.params.Epoch.Add(60 * time.Millisecond)
	i := 0
	allocs := testing.AllocsPerRun(400, func() {
		if err := c.handleFrame(f, frames[i%len(frames)], now); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs != 0 {
		t.Errorf("converged receive path allocates %.1f bytes-objects per datagram, want 0", allocs)
	}
	if c.byteErrors.Load() != 0 || c.dup.Load() != 0 {
		t.Errorf("byteErrors %d dup %d after clean redeliveries", c.byteErrors.Load(), c.dup.Load())
	}
}

// ---------------------------------------------------------------------------
// Admission-wait histogram plumbing.
// ---------------------------------------------------------------------------

func TestWaitQuantile(t *testing.T) {
	hist := []WaitBucket{{MilliUnits: 100, Count: 5}, {MilliUnits: 500, Count: 3}, {MilliUnits: 900, Count: 2}}
	if got := WaitQuantile(hist, 10, 0.5); got != 0.101 {
		t.Errorf("p50 = %v, want 0.101", got)
	}
	if got := WaitQuantile(hist, 10, 0.99); got != 0.901 {
		t.Errorf("p99 = %v, want 0.901", got)
	}
	if got := WaitQuantile(nil, 0, 0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
	r := &Result{Viewers: 10, WaitHist: hist}
	if got := r.WaitQuantile(0.8); got != 0.501 {
		t.Errorf("result p80 = %v, want 0.501", got)
	}
}

func TestMergeWaitHists(t *testing.T) {
	a := []WaitBucket{{MilliUnits: 100, Count: 2}, {MilliUnits: 300, Count: 1}}
	b := []WaitBucket{{MilliUnits: 300, Count: 4}, {MilliUnits: 50, Count: 1}}
	got := MergeWaitHists(a, b)
	want := []WaitBucket{{MilliUnits: 50, Count: 1}, {MilliUnits: 100, Count: 2}, {MilliUnits: 300, Count: 5}}
	if len(got) != len(want) {
		t.Fatalf("merged %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged %v, want %v", got, want)
		}
	}
}
