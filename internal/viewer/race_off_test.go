//go:build !race

package viewer

// raceEnabled lets alloc-count assertions stand down under the race
// detector, whose instrumentation allocates; see race_on_test.go.
const raceEnabled = false
