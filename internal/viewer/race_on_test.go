//go:build race

package viewer

// raceEnabled lets alloc-count assertions stand down under the race
// detector, whose instrumentation allocates; see race_off_test.go.
const raceEnabled = true
