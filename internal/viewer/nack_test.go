package viewer

import (
	"testing"
	"time"
)

// nackParams is testParams with the multicast-first ladder on and enough
// deadline headroom to use it: the 1s aggregation window keeps the
// eligibility bound (window + 1.5 chunk intervals = 2.5s) under the
// geometry's 3.25s of checkpoint-to-deadline room. Jitter draws the full
// window, so window n fires exactly at anchor + 1s.
func nackParams(epoch time.Time) FragmentParams {
	p := testParams(epoch)
	p.NackEnabled = true
	p.NackWindow = time.Second
	p.Jitter = func(key, stream uint64, window time.Duration) time.Duration { return window }
	return p
}

// TestMachineNackAggregation: two chunks missing within one window are
// reported in a single ascending gap bitmap, re-listen, and both heal off
// the multicast re-send — zero unicast round trips.
func TestMachineNackAggregation(t *testing.T) {
	epoch := time.Unix(1000, 0)
	m := NewMachine(nackParams(epoch))
	m.Chunk(2, epoch.Add(7*time.Second))
	m.Chunk(3, epoch.Add(8*time.Second))

	// Chunk 0's checkpoint (5.25s) arms the window, anchored at the
	// checkpoint, firing one window later.
	fire := epoch.Add(6*time.Second + 250*time.Millisecond)
	act := m.Next(epoch.Add(5*time.Second + 250*time.Millisecond))
	if act.Kind != ActWait || !act.Wake.Equal(fire) {
		t.Fatalf("Next at first checkpoint = %+v, want wait until window fire %v", act, fire)
	}
	// At the fire time chunk 1 (checkpoint 6.25s) is due too: one bitmap.
	act = m.Next(fire)
	if act.Kind != ActNack || len(act.Chunks) != 2 || act.Chunks[0] != 0 || act.Chunks[1] != 1 {
		t.Fatalf("Next at window fire = %+v, want nack chunks [0 1]", act)
	}
	m.NackResult(act.Chunks, func(int) bool { return true }, fire.Add(50*time.Millisecond))

	// The machine re-listens; the multicast re-send heals both chunks.
	if act := m.Next(fire.Add(100 * time.Millisecond)); act.Kind != ActWait {
		t.Fatalf("Next while re-listening = %+v, want wait", act)
	}
	for idx := 0; idx < 2; idx++ {
		if v := m.Chunk(idx, fire.Add(250*time.Millisecond)); v != Accepted {
			t.Fatalf("re-sent chunk %d verdict = %v, want Accepted", idx, v)
		}
	}
	if !m.Done() {
		t.Fatal("machine not done after the re-send")
	}
	st := m.Stats()
	if st.Nacks != 1 || st.NackRepaired != 2 || st.NacksSuppressed != 0 {
		t.Errorf("nack stats = %+v, want 1 nack, 2 multicast repairs", st)
	}
	if st.Repaired != 0 || st.Lost != 0 || st.Late != 0 {
		t.Errorf("unicast/loss stats dirtied: %+v", st)
	}
}

// TestMachineNackSuppressedWindow: a window whose every chunk healed
// before it fired closes silently — the suppression that keeps control
// traffic O(cohorts) when someone else's NACK already triggered the
// re-send.
func TestMachineNackSuppressedWindow(t *testing.T) {
	epoch := time.Unix(1000, 0)
	m := NewMachine(nackParams(epoch))
	for idx := 1; idx < 4; idx++ {
		m.Chunk(idx, epoch.Add(time.Duration(5+idx)*time.Second))
	}
	if act := m.Next(epoch.Add(5*time.Second + 250*time.Millisecond)); act.Kind != ActWait {
		t.Fatalf("Next at checkpoint = %+v, want wait (window arming)", act)
	}
	// The broadcast (another viewer's re-send) delivers chunk 0 before
	// the window fires.
	m.Chunk(0, epoch.Add(5*time.Second+500*time.Millisecond))
	if act := m.Next(epoch.Add(6*time.Second + 300*time.Millisecond)); act.Kind != ActWait {
		t.Fatalf("Next past fire time = %+v, want wait (suppressed)", act)
	}
	st := m.Stats()
	if st.Nacks != 0 || st.NacksSuppressed != 1 {
		t.Errorf("nack stats = %+v, want 0 sent, 1 suppressed", st)
	}
}

// TestMachineNackEscalatesToUnicast: an accepted NACK whose re-send never
// arrives escalates to the unicast plane at the re-listen deadline — with
// too little room left for another round, the chunk goes straight to
// ActRepair.
func TestMachineNackEscalatesToUnicast(t *testing.T) {
	epoch := time.Unix(1000, 0)
	m := NewMachine(nackParams(epoch))
	for idx := 1; idx < 4; idx++ {
		m.Chunk(idx, epoch.Add(time.Duration(5+idx)*time.Second))
	}
	m.Next(epoch.Add(5*time.Second + 250*time.Millisecond)) // arm
	fire := epoch.Add(6*time.Second + 250*time.Millisecond)
	act := m.Next(fire)
	if act.Kind != ActNack || len(act.Chunks) != 1 || act.Chunks[0] != 0 {
		t.Fatalf("Next at fire = %+v, want nack [0]", act)
	}
	m.NackResult(act.Chunks, func(int) bool { return true }, fire)

	// Re-listen is clamped to LostBy-spacing = 7.5s; nothing arrives.
	relisten := epoch.Add(7*time.Second + 500*time.Millisecond)
	if act := m.Next(fire.Add(time.Second)); act.Kind != ActWait || !act.Wake.Equal(relisten) {
		t.Fatalf("Next while re-listening = %+v, want wait until %v", act, relisten)
	}
	act = m.Next(relisten)
	if act.Kind != ActRepair || act.Idx != 0 || act.Attempt != 1 {
		t.Fatalf("Next at re-listen expiry = %+v, want unicast repair chunk 0", act)
	}
	if d := m.RepairResult(0, RepairOK, 0, relisten.Add(10*time.Millisecond)); d != Repaired {
		t.Fatalf("repair disposition = %v, want Repaired", d)
	}
	st := m.Stats()
	if st.Nacks != 1 || st.NackRepaired != 0 || st.Repaired != 1 {
		t.Errorf("stats = %+v, want 1 nack escalated into 1 unicast repair", st)
	}
}

// TestMachineNackRenack: with deadline room to spare, an expired
// re-listen re-enters the ladder for another aggregation round on a fresh
// jitter stream instead of burning a unicast round trip.
func TestMachineNackRenack(t *testing.T) {
	epoch := time.Unix(1000, 0)
	p := nackParams(epoch)
	p.Slack = 5 * time.Second // LostBy(0) = 13s: room for several rounds
	m := NewMachine(p)
	for idx := 1; idx < 4; idx++ {
		m.Chunk(idx, epoch.Add(time.Duration(5+idx)*time.Second))
	}
	m.Next(epoch.Add(5*time.Second + 250*time.Millisecond)) // arm round 1
	fire := epoch.Add(6*time.Second + 250*time.Millisecond)
	act := m.Next(fire)
	if act.Kind != ActNack {
		t.Fatalf("round 1 = %+v, want nack", act)
	}
	m.NackResult(act.Chunks, func(int) bool { return true }, fire)

	// Re-listen (fire+2s, unclamped) expires: enough room remains, so the
	// chunk re-NACKs rather than escalating.
	expiry := fire.Add(2 * time.Second)
	act = m.Next(expiry) // back to nackPre, arms round 2 anchored at expiry
	if act.Kind != ActWait || !act.Wake.Equal(expiry.Add(time.Second)) {
		t.Fatalf("Next at expiry = %+v, want wait until round-2 fire %v", act, expiry.Add(time.Second))
	}
	act = m.Next(expiry.Add(time.Second))
	if act.Kind != ActNack || len(act.Chunks) != 1 || act.Chunks[0] != 0 {
		t.Fatalf("round 2 = %+v, want nack [0]", act)
	}
	if st := m.Stats(); st.Nacks != 2 {
		t.Errorf("Nacks = %d, want 2 rounds", st.Nacks)
	}
}

// TestMachineNackRefusedFallsBack: chunks the server refuses (budget) in
// the NackOK bitmap leave the ladder immediately and pull over unicast.
func TestMachineNackRefusedFallsBack(t *testing.T) {
	epoch := time.Unix(1000, 0)
	m := NewMachine(nackParams(epoch))
	for idx := 1; idx < 4; idx++ {
		m.Chunk(idx, epoch.Add(time.Duration(5+idx)*time.Second))
	}
	m.Next(epoch.Add(5*time.Second + 250*time.Millisecond))
	fire := epoch.Add(6*time.Second + 250*time.Millisecond)
	act := m.Next(fire)
	if act.Kind != ActNack {
		t.Fatalf("Next at fire = %+v, want nack", act)
	}
	m.NackResult(act.Chunks, func(int) bool { return false }, fire.Add(10*time.Millisecond))
	act = m.Next(fire.Add(20 * time.Millisecond))
	if act.Kind != ActRepair || act.Idx != 0 {
		t.Fatalf("Next after refusal = %+v, want immediate unicast repair", act)
	}
}

// TestMachineNackObserveEscalatesToGap: in the cohort's Observe mode the
// ladder's unicast fallback is the per-viewer plane — an exhausted chunk
// surfaces as ActGap, exactly once.
func TestMachineNackObserveEscalatesToGap(t *testing.T) {
	epoch := time.Unix(1000, 0)
	p := nackParams(epoch)
	p.Observe = true
	m := NewMachine(p)
	for idx := 1; idx < 4; idx++ {
		m.Chunk(idx, epoch.Add(time.Duration(5+idx)*time.Second))
	}
	m.Next(epoch.Add(5*time.Second + 250*time.Millisecond))
	fire := epoch.Add(6*time.Second + 250*time.Millisecond)
	act := m.Next(fire)
	if act.Kind != ActNack {
		t.Fatalf("Next at fire = %+v, want nack (ladder precedes divergence)", act)
	}
	m.NackResult(act.Chunks, func(int) bool { return false }, fire)
	act = m.Next(fire.Add(10 * time.Millisecond))
	if act.Kind != ActGap || act.Idx != 0 {
		t.Fatalf("Next after refusal = %+v, want gap handoff", act)
	}
	if act := m.Next(fire.Add(20 * time.Millisecond)); act.Kind != ActWait {
		t.Fatalf("gap handed twice: %+v", act)
	}
}

// TestMachineNackRoundCap: a chunk joins at most MaxNackRounds windows;
// past the cap an expired re-listen goes to the unicast plane even with
// deadline room left.
func TestMachineNackRoundCap(t *testing.T) {
	epoch := time.Unix(1000, 0)
	p := nackParams(epoch)
	p.Slack = 5 * time.Second
	p.MaxNackRounds = 1
	m := NewMachine(p)
	for idx := 1; idx < 4; idx++ {
		m.Chunk(idx, epoch.Add(time.Duration(5+idx)*time.Second))
	}
	m.Next(epoch.Add(5*time.Second + 250*time.Millisecond))
	fire := epoch.Add(6*time.Second + 250*time.Millisecond)
	act := m.Next(fire)
	if act.Kind != ActNack {
		t.Fatalf("round 1 = %+v, want nack", act)
	}
	m.NackResult(act.Chunks, func(int) bool { return true }, fire)
	act = m.Next(fire.Add(2 * time.Second)) // re-listen expired, cap spent
	if act.Kind != ActRepair || act.Idx != 0 {
		t.Fatalf("Next past round cap = %+v, want unicast repair", act)
	}
	if st := m.Stats(); st.Nacks != 1 {
		t.Errorf("Nacks = %d, want the cap of 1", st.Nacks)
	}
}

// TestMachineNackDeadlineIneligible: chunks whose loss deadline leaves no
// room for a multicast round never enter the ladder — with the default
// 2-interval window the test geometry's 3.25s of headroom is under the
// bound, so the first due chunk goes straight to unicast, exactly as with
// the ladder off.
func TestMachineNackDeadlineIneligible(t *testing.T) {
	epoch := time.Unix(1000, 0)
	p := testParams(epoch)
	p.NackEnabled = true // default window: 2 chunk intervals = 2s
	m := NewMachine(p)
	checkpoint := epoch.Add(5*time.Second + 250*time.Millisecond)
	act := m.Next(checkpoint)
	if act.Kind != ActRepair || act.Idx != 0 {
		t.Fatalf("Next at checkpoint = %+v, want unicast repair (ladder ineligible)", act)
	}
	if st := m.Stats(); st.Nacks != 0 {
		t.Errorf("ineligible geometry still sent %d nacks", st.Nacks)
	}
}

// TestMachineNackDisabledByRepairOff: DisableRepair wins over NackEnabled
// — no ladder state is allocated and gaps ride to their loss deadlines.
func TestMachineNackDisabledByRepairOff(t *testing.T) {
	epoch := time.Unix(1000, 0)
	p := nackParams(epoch)
	p.DisableRepair = true
	m := NewMachine(p)
	if m.nackPhase != nil {
		t.Fatal("ladder allocated under DisableRepair")
	}
	act := m.Next(epoch.Add(5*time.Second + 250*time.Millisecond))
	if act.Kind != ActWait {
		t.Fatalf("Next = %+v, want wait (no recovery at all)", act)
	}
}
