package viewer

import (
	"bytes"
	"testing"
	"time"

	"skyscraper/internal/wire"
)

// fecChunk builds a deterministic 8-byte payload for chunk idx.
func fecChunk(idx int) []byte {
	b := make([]byte, 8)
	for j := range b {
		b[j] = byte(idx*31 + j*7 + 1)
	}
	return b
}

// fecParity computes the group's parity block over chunks [base, base+count):
// index 0 is the XOR sum P, index 1 the GF(256)-weighted sum Q.
func fecParity(base, count int, index uint8) []byte {
	block := make([]byte, 8)
	for pos := 0; pos < count; pos++ {
		d := fecChunk(base + pos)
		if index == 0 {
			wire.XorAccum(block, d)
		} else {
			wire.GfMulAccum(block, d, wire.GfExpPow(pos))
		}
	}
	return block
}

func fecFrame(t *testing.T, base, count int, index uint8) *wire.Parity {
	t.Helper()
	return &wire.Parity{
		Base:   uint32(base * 8),
		Total:  64,
		Index:  index,
		Count:  count,
		Block:  fecParity(base, count, index),
		Bitmap: []byte{0xff},
	}
}

// TestStripeXorHeal: one chunk of a group lost; the parity frame arriving
// after the survivors reconstructs it exactly.
func TestStripeXorHeal(t *testing.T) {
	s := NewStripe(4, wire.FecModeXOR, 8, 8)
	var heals []Heal
	for _, idx := range []int{0, 2, 3} {
		heals = s.Data(idx, fecChunk(idx), heals)
	}
	if len(heals) != 0 {
		t.Fatalf("heals before parity: %v", heals)
	}
	heals = s.Parity(fecFrame(t, 0, 4, 0), heals)
	if len(heals) != 1 || heals[0].Idx != 1 {
		t.Fatalf("heals = %v, want one heal of chunk 1", heals)
	}
	if !bytes.Equal(heals[0].Payload, fecChunk(1)) {
		t.Errorf("healed payload %v, want %v", heals[0].Payload, fecChunk(1))
	}
}

// TestStripeParityBeforeData: reordering puts the parity frame first; the
// heal fires the moment the last covering data chunk lands.
func TestStripeParityBeforeData(t *testing.T) {
	s := NewStripe(4, wire.FecModeXOR, 8, 8)
	heals := s.Parity(fecFrame(t, 0, 4, 0), nil)
	for _, idx := range []int{0, 1} {
		heals = s.Data(idx, fecChunk(idx), heals)
	}
	if len(heals) != 0 {
		t.Fatalf("healed with two chunks still missing: %v", heals)
	}
	heals = s.Data(3, fecChunk(3), heals)
	if len(heals) != 1 || heals[0].Idx != 2 || !bytes.Equal(heals[0].Payload, fecChunk(2)) {
		t.Fatalf("heals = %v, want chunk 2 reconstructed", heals)
	}
}

// TestStripeRSTwoErasure: in Reed-Solomon mode the P+Q pair recovers two
// missing chunks of one group.
func TestStripeRSTwoErasure(t *testing.T) {
	s := NewStripe(4, wire.FecModeRS, 8, 8)
	var heals []Heal
	for _, idx := range []int{1, 3} {
		heals = s.Data(idx, fecChunk(idx), heals)
	}
	heals = s.Parity(fecFrame(t, 0, 4, 0), heals)
	if len(heals) != 0 {
		t.Fatalf("P alone healed a two-erasure group: %v", heals)
	}
	heals = s.Parity(fecFrame(t, 0, 4, 1), heals)
	if len(heals) != 2 {
		t.Fatalf("heals = %v, want chunks 0 and 2", heals)
	}
	for _, h := range heals {
		if h.Idx != 0 && h.Idx != 2 {
			t.Fatalf("healed unexpected chunk %d", h.Idx)
		}
		if !bytes.Equal(h.Payload, fecChunk(h.Idx)) {
			t.Errorf("chunk %d payload %v, want %v", h.Idx, h.Payload, fecChunk(h.Idx))
		}
	}
}

// TestStripeQOnlyHeal: the P frame was itself lost; Q alone still solves a
// single erasure (one GF scale).
func TestStripeQOnlyHeal(t *testing.T) {
	s := NewStripe(4, wire.FecModeRS, 8, 8)
	var heals []Heal
	for _, idx := range []int{0, 1, 3} {
		heals = s.Data(idx, fecChunk(idx), heals)
	}
	heals = s.Parity(fecFrame(t, 0, 4, 1), heals)
	if len(heals) != 1 || heals[0].Idx != 2 || !bytes.Equal(heals[0].Payload, fecChunk(2)) {
		t.Fatalf("heals = %v, want chunk 2 from Q alone", heals)
	}
}

// TestStripeTailGroup: the last group of a fragment is short; its parity
// covers only the remaining chunks.
func TestStripeTailGroup(t *testing.T) {
	s := NewStripe(4, wire.FecModeXOR, 8, 6) // groups {0..3}, {4,5}
	heals := s.Data(5, fecChunk(5), nil)
	heals = s.Parity(fecFrame(t, 4, 2, 0), heals)
	if len(heals) != 1 || heals[0].Idx != 4 || !bytes.Equal(heals[0].Payload, fecChunk(4)) {
		t.Fatalf("heals = %v, want tail chunk 4", heals)
	}
}

// TestStripeGeometryReject: parity whose geometry disagrees with the
// configured stripe is dropped, never folded.
func TestStripeGeometryReject(t *testing.T) {
	s := NewStripe(4, wire.FecModeXOR, 8, 8)
	var heals []Heal
	for _, idx := range []int{0, 2, 3} {
		heals = s.Data(idx, fecChunk(idx), heals)
	}
	bad := []*wire.Parity{
		{Base: 4, Count: 4, Index: 0, Block: fecParity(0, 4, 0)},     // misaligned byte base
		{Base: 8, Count: 4, Index: 0, Block: fecParity(0, 4, 0)},     // base not on a group boundary
		{Base: 0, Count: 3, Index: 0, Block: fecParity(0, 4, 0)},     // wrong coverage
		{Base: 0, Count: 4, Index: 0, Block: fecParity(0, 4, 0)[:4]}, // short block
		{Base: 0, Count: 4, Index: 1, Block: fecParity(0, 4, 1)},     // Q in XOR mode
		{Base: 64, Count: 4, Index: 0, Block: fecParity(0, 4, 0)},    // beyond the fragment
	}
	for i, p := range bad {
		if heals = s.Parity(p, heals); len(heals) != 0 {
			t.Fatalf("malformed parity %d produced heals: %v", i, heals)
		}
	}
	// The group is intact: the genuine parity frame still heals it.
	heals = s.Parity(fecFrame(t, 0, 4, 0), heals)
	if len(heals) != 1 || heals[0].Idx != 1 {
		t.Fatalf("heals after rejects = %v, want chunk 1", heals)
	}
}

// TestStripeDuplicateDataIgnored: retransmitted chunks must not fold into
// the accumulator twice, or the eventual heal would be garbage.
func TestStripeDuplicateDataIgnored(t *testing.T) {
	s := NewStripe(4, wire.FecModeXOR, 8, 8)
	var heals []Heal
	for _, idx := range []int{0, 0, 2, 2, 3} {
		heals = s.Data(idx, fecChunk(idx), heals)
	}
	heals = s.Parity(fecFrame(t, 0, 4, 0), heals)
	if len(heals) != 1 || !bytes.Equal(heals[0].Payload, fecChunk(1)) {
		t.Fatalf("heals = %v, want exact chunk 1 despite duplicates", heals)
	}
}

// TestStripeEviction: slots hold a handful of groups; touching more evicts
// the oldest, and a late parity frame for an evicted group heals nothing
// (its defeat deadline has passed in the machine anyway).
func TestStripeEviction(t *testing.T) {
	s := NewStripe(2, wire.FecModeXOR, 8, 2*(stripeSlots+1))
	var heals []Heal
	for g := 0; g <= stripeSlots; g++ {
		// First chunk of each group arrives, second is missing.
		heals = s.Data(2*g, fecChunk(2*g), heals)
	}
	// Group 0 was evicted by group stripeSlots; its parity re-creates an
	// empty accumulator and cannot heal.
	heals = s.Parity(fecFrame(t, 0, 2, 0), heals)
	if len(heals) != 0 {
		t.Fatalf("evicted group healed: %v", heals)
	}
	// A still-tracked group heals normally.
	base := 2 * stripeSlots
	heals = s.Parity(fecFrame(t, base, 2, 0), heals)
	if len(heals) != 1 || heals[0].Idx != base+1 || !bytes.Equal(heals[0].Payload, fecChunk(base+1)) {
		t.Fatalf("heals = %v, want chunk %d", heals, base+1)
	}
}

// TestStripeNil: group <= 0 means FEC off; a nil Stripe absorbs calls.
func TestStripeNil(t *testing.T) {
	s := NewStripe(0, wire.FecModeXOR, 8, 8)
	if s != nil {
		t.Fatalf("NewStripe(0) = %v, want nil", s)
	}
	if heals := s.Data(0, fecChunk(0), nil); len(heals) != 0 {
		t.Fatalf("nil stripe healed: %v", heals)
	}
	if heals := s.Parity(fecFrame(t, 0, 4, 0), nil); len(heals) != 0 {
		t.Fatalf("nil stripe healed: %v", heals)
	}
}

// fecNackParams is nackParams with a two-chunk parity stripe and a window
// small enough that chunks stay ladder-eligible from their later,
// defeat-anchored start (testParams geometry: checkpoints at 5.25+idx s,
// group {0,1} defeats at 6.75s, group {2,3} at 8.75s).
func fecNackParams(epoch time.Time) FragmentParams {
	p := nackParams(epoch)
	p.FecGroup = 2
	p.NackWindow = 100 * time.Millisecond
	return p
}

// TestMachineFecHoldThenHeal: a chunk missing at its checkpoint takes no
// reactive action while the stripe can still save it, and a reconstruction
// during the hold counts as a suppressed NACK — the window never armed.
func TestMachineFecHoldThenHeal(t *testing.T) {
	epoch := time.Unix(1000, 0)
	m := NewMachine(fecNackParams(epoch))
	for idx := 1; idx < 4; idx++ {
		m.Chunk(idx, epoch.Add(time.Duration(5+idx)*time.Second))
	}
	// Past chunk 0's checkpoint (5.25s) but before its stripe-defeat
	// instant (6.75s): hold, waking exactly at the defeat instant.
	defeat := epoch.Add(6*time.Second + 750*time.Millisecond)
	act := m.Next(epoch.Add(5*time.Second + 300*time.Millisecond))
	if act.Kind != ActWait || !act.Wake.Equal(defeat) {
		t.Fatalf("Next during hold = %+v, want wait until defeat %v", act, defeat)
	}
	if v := m.FecHealed(0, epoch.Add(6*time.Second+500*time.Millisecond)); v != Accepted {
		t.Fatalf("FecHealed verdict = %v, want Accepted", v)
	}
	if !m.Done() {
		t.Fatal("machine not done after the heal")
	}
	st := m.Stats()
	if st.FecHeals != 1 || st.StripeDefeats != 0 {
		t.Errorf("fec stats = %+v, want 1 heal, 0 defeats", st)
	}
	if st.Nacks != 0 || st.NacksSuppressed != 1 || st.NackRepaired != 0 {
		t.Errorf("nack stats = %+v, want only 1 suppressed (window never armed)", st)
	}
	if st.Late != 0 || st.Repaired != 0 || st.Lost != 0 {
		t.Errorf("ledger dirtied: %+v", st)
	}
}

// TestMachineFecDefeatAnchorsWindow: an unhealed hold expires into the
// NACK ladder with the aggregation window anchored at stripe-defeat time
// (6.75s + 100ms window), not at the 5.25s gap checkpoint; a heal landing
// during the re-listen books like a multicast re-send.
func TestMachineFecDefeatAnchorsWindow(t *testing.T) {
	epoch := time.Unix(1000, 0)
	m := NewMachine(fecNackParams(epoch))
	for idx := 1; idx < 4; idx++ {
		m.Chunk(idx, epoch.Add(time.Duration(5+idx)*time.Second))
	}
	fire := epoch.Add(6*time.Second + 850*time.Millisecond)
	act := m.Next(epoch.Add(6*time.Second + 800*time.Millisecond))
	if act.Kind != ActWait || !act.Wake.Equal(fire) {
		t.Fatalf("Next after defeat = %+v, want wait until defeat-anchored fire %v", act, fire)
	}
	if st := m.Stats(); st.StripeDefeats != 1 {
		t.Fatalf("stats after defeat = %+v, want 1 stripe defeat", st)
	}
	act = m.Next(fire)
	if act.Kind != ActNack || len(act.Chunks) != 1 || act.Chunks[0] != 0 {
		t.Fatalf("Next at fire = %+v, want nack [0]", act)
	}
	m.NackResult(act.Chunks, func(int) bool { return true }, fire.Add(20*time.Millisecond))
	if v := m.FecHealed(0, fire.Add(100*time.Millisecond)); v != Accepted {
		t.Fatalf("late FecHealed verdict = %v, want Accepted", v)
	}
	st := m.Stats()
	if st.FecHeals != 1 || st.StripeDefeats != 1 || st.Nacks != 1 || st.NackRepaired != 1 || st.NacksSuppressed != 0 {
		t.Errorf("stats = %+v, want 1 heal / 1 defeat / 1 nack / 1 nack-repaired", st)
	}
}

// TestMachineFecObserveGapWaits: in the cohort's Observe mode a gap is
// not handed to the per-viewer plane until its stripe hold expires, so
// divergence (the expensive path) waits for the free repair to miss.
func TestMachineFecObserveGapWaits(t *testing.T) {
	epoch := time.Unix(1000, 0)
	p := testParams(epoch)
	p.FecGroup = 2
	p.Observe = true
	m := NewMachine(p)
	for idx := 1; idx < 4; idx++ {
		m.Chunk(idx, epoch.Add(time.Duration(5+idx)*time.Second))
	}
	if act := m.Next(epoch.Add(5*time.Second + 300*time.Millisecond)); act.Kind != ActWait {
		t.Fatalf("Next during hold = %+v, want wait (no early divergence)", act)
	}
	act := m.Next(epoch.Add(6*time.Second + 800*time.Millisecond))
	if act.Kind != ActGap || act.Idx != 0 {
		t.Fatalf("Next after defeat = %+v, want gap handoff of chunk 0", act)
	}
	if st := m.Stats(); st.StripeDefeats != 1 {
		t.Errorf("stats = %+v, want 1 stripe defeat", st)
	}
}

// TestMachineFecHealedDuplicate: healing a resolved chunk is a duplicate,
// exactly like a retransmitted broadcast copy.
func TestMachineFecHealedDuplicate(t *testing.T) {
	epoch := time.Unix(1000, 0)
	m := NewMachine(fecNackParams(epoch))
	m.Chunk(0, epoch.Add(5*time.Second))
	if v := m.FecHealed(0, epoch.Add(5*time.Second+10*time.Millisecond)); v != Duplicate {
		t.Fatalf("FecHealed on resolved chunk = %v, want Duplicate", v)
	}
	st := m.Stats()
	if st.FecHeals != 0 || st.Duplicates != 1 {
		t.Errorf("stats = %+v, want 0 heals, 1 duplicate", st)
	}
}
