package viewer_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"skyscraper/internal/client"
	"skyscraper/internal/core"
	"skyscraper/internal/faults"
	"skyscraper/internal/server"
	"skyscraper/internal/viewer"
	"skyscraper/internal/vod"
)

// liveScheme builds a small broadcast: m videos, k channels each, width w.
func liveScheme(t *testing.T, m, k int, w int64) *core.Scheme {
	t.Helper()
	cfg := vod.Config{ServerMbps: 1.5 * float64(m*k), Videos: m, LengthMin: 120, RateMbps: 1.5}
	sch, err := core.New(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if sch.K() != k {
		t.Fatalf("K = %d, want %d", sch.K(), k)
	}
	return sch
}

func startServer(t *testing.T, sch *core.Scheme, unit time.Duration, plan *faults.Plan) *server.Server {
	t.Helper()
	srv, err := server.New(server.Config{
		Scheme:       sch,
		Unit:         unit,
		BytesPerUnit: 4096,
		ChunkBytes:   1024,
		Faults:       plan,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

// TestMuxGoldenSingleViewer is the cohort-equivalence anchor over real
// sockets: a one-viewer mux run and a real client.Watch session with the
// same derived seed, against a server injecting deterministic drops, must
// report identical recovery stats. The fault injector keys drops without
// the repetition number, so the two sessions see the same injured chunk
// positions even though they tune different repetitions.
func TestMuxGoldenSingleViewer(t *testing.T) {
	if testing.Short() {
		t.Skip("live network test")
	}
	sch := liveScheme(t, 1, 5, 2) // fragments 1,2,2,2,2 — 9 units per playback
	srv := startServer(t, sch, 200*time.Millisecond, &faults.Plan{Drop: 0.25, Seed: 11})

	const muxSeed = 42
	stats, err := client.Watch(client.Config{
		ServerAddr:   srv.Addr(),
		Video:        0,
		JoinLeadFrac: 0.9,
		// Three units of slack give every chunk enough deadline headroom
		// for the multicast-first NACK ladder (aggregation window plus
		// re-listen); with the tighter 2.0 the just-in-time channels
		// fall back to unicast and the NACK half of the equivalence
		// would be vacuous.
		SlackFrac: 3.0,
		// Over a unit of repair lag: merely-slow broadcast chunks on a
		// loaded CI machine must not shift between the repaired and
		// duplicate columns and break the golden equality (the same
		// hardening as the server chaos suite's determinism runs). The
		// extra eighth keeps the lag off the 50ms chunk-spacing grid: an
		// on-grid lag puts some chunk's repair checkpoint in an exact tie
		// with the next fragment's start on the same loader, and whether
		// that repair completes before the next join decides — by
		// scheduler luck — if the next fragment's first chunk is caught
		// off the broadcast or repaired. Off-grid, every checkpoint sits
		// a quarter-spacing clear of the boundary.
		RepairLagFrac: 1.125,
		Seed:          viewer.ViewerSeed(muxSeed, 0),
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatalf("client watch: %v (stats %+v)", err, stats)
	}
	res, err := viewer.Run(viewer.MuxConfig{
		ServerAddr:    srv.Addr(),
		Viewers:       1,
		Videos:        1,
		Seed:          muxSeed,
		JoinLeadFrac:  0.9,
		SlackFrac:     3.0,
		RepairLagFrac: 1.125,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatalf("mux run: %v (result %+v)", err, res)
	}

	if res.Cohorts != 1 || res.Viewers != 1 {
		t.Errorf("got %d cohorts / %d viewers, want 1/1", res.Cohorts, res.Viewers)
	}
	if stats.RepairedChunks+stats.MulticastRepairs == 0 {
		t.Error("client recovered no chunks under a 25% drop plan; the golden comparison is vacuous")
	}
	if stats.NacksSent == 0 {
		t.Error("client sent no NACKs under a 25% drop plan; the multicast-first ladder never engaged")
	}
	if res.Bytes != stats.Bytes {
		t.Errorf("bytes: mux %d, client %d", res.Bytes, stats.Bytes)
	}
	if res.RepairedChunks != stats.RepairedChunks {
		t.Errorf("repaired: mux %d, client %d", res.RepairedChunks, stats.RepairedChunks)
	}
	if res.RepairRequests != stats.RepairRequests {
		t.Errorf("repair requests: mux %d, client %d", res.RepairRequests, stats.RepairRequests)
	}
	// The NACK ladder is part of the equivalence: a one-viewer cohort
	// must aggregate, send, and suppress gap bitmaps exactly as the real
	// client does — window grouping is grid-anchored, so these counts are
	// deterministic, not merely close.
	if res.NacksSent != stats.NacksSent {
		t.Errorf("nacks sent: mux %d, client %d", res.NacksSent, stats.NacksSent)
	}
	if res.NacksSuppressed != stats.NacksSuppressed {
		t.Errorf("nacks suppressed: mux %d, client %d", res.NacksSuppressed, stats.NacksSuppressed)
	}
	if res.MulticastRepairs != stats.MulticastRepairs {
		t.Errorf("multicast repairs: mux %d, client %d", res.MulticastRepairs, stats.MulticastRepairs)
	}
	if res.LostChunks != 0 || stats.LostChunks != 0 {
		t.Errorf("lost: mux %d, client %d, want 0", res.LostChunks, stats.LostChunks)
	}
	if res.LateChunks != 0 || stats.LateChunks != 0 {
		t.Errorf("late: mux %d, client %d, want 0", res.LateChunks, stats.LateChunks)
	}
	if res.ByteErrors != 0 || stats.ByteErrors != 0 {
		t.Errorf("byte errors: mux %d, client %d, want 0", res.ByteErrors, stats.ByteErrors)
	}
	if res.Degraded != 0 {
		t.Errorf("degraded viewers = %d, want 0", res.Degraded)
	}
}

// TestMuxGoldenSingleViewerFec extends the equivalence anchor to the
// proactive parity stripe: with the server interleaving parity frames,
// the one-viewer mux must reconstruct inside the cohort path — shared
// stripe, shared machine — and report FEC heals, stripe defeats, and the
// (defeat-anchored) NACK ledger bit-identically to a real client doing
// its own reassembly.
//
// The equivalence is a pure function of (loss plan, seed) only while the
// broadcast grid holds. The client and mux runs are sequential, so on a
// loaded 1-core host a scheduling stall can push one run's server a full
// unit behind (a counted drift event) and the two sessions legitimately
// see different timelines. A ledger mismatch is therefore a failure only
// on a drift-free run; with drift on the books the attempt is discarded
// and retried on a fresh server.
func TestMuxGoldenSingleViewerFec(t *testing.T) {
	if testing.Short() {
		t.Skip("live network test")
	}
	sch := liveScheme(t, 1, 5, 2)
	const muxSeed = 42
	const attempts = 3
	for attempt := 1; ; attempt++ {
		srv, err := server.New(server.Config{
			Scheme:       sch,
			Unit:         200 * time.Millisecond,
			BytesPerUnit: 4096,
			ChunkBytes:   1024,
			FecGroup:     4,
			Faults:       &faults.Plan{Drop: 0.25, Seed: 11},
			Logf:         t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		stats, err := client.Watch(client.Config{
			ServerAddr:    srv.Addr(),
			Video:         0,
			JoinLeadFrac:  0.9,
			SlackFrac:     3.0,
			RepairLagFrac: 1.125,
			Seed:          viewer.ViewerSeed(muxSeed, 0),
			Logf:          t.Logf,
		})
		if err != nil {
			srv.Close()
			t.Fatalf("client watch: %v (stats %+v)", err, stats)
		}
		res, err := viewer.Run(viewer.MuxConfig{
			ServerAddr:    srv.Addr(),
			Viewers:       1,
			Videos:        1,
			Seed:          muxSeed,
			JoinLeadFrac:  0.9,
			SlackFrac:     3.0,
			RepairLagFrac: 1.125,
			Logf:          t.Logf,
		})
		drift := srv.PacerDriftEvents()
		srv.Close()
		if err != nil {
			t.Fatalf("mux run: %v (result %+v)", err, res)
		}

		var diffs []string
		mismatch := func(format string, args ...any) {
			diffs = append(diffs, fmt.Sprintf(format, args...))
		}
		if stats.FecHeals == 0 {
			mismatch("client healed nothing off the stripe under a 25%% drop plan; the FEC equivalence is vacuous")
		}
		if res.FecHeals != stats.FecHeals {
			mismatch("fec heals: mux %d, client %d", res.FecHeals, stats.FecHeals)
		}
		if res.StripeDefeats != stats.StripeDefeats {
			mismatch("stripe defeats: mux %d, client %d", res.StripeDefeats, stats.StripeDefeats)
		}
		if res.NacksSent != stats.NacksSent {
			mismatch("nacks sent: mux %d, client %d", res.NacksSent, stats.NacksSent)
		}
		if res.NacksSuppressed != stats.NacksSuppressed {
			mismatch("nacks suppressed: mux %d, client %d", res.NacksSuppressed, stats.NacksSuppressed)
		}
		if res.MulticastRepairs != stats.MulticastRepairs {
			mismatch("multicast repairs: mux %d, client %d", res.MulticastRepairs, stats.MulticastRepairs)
		}
		if res.RepairedChunks != stats.RepairedChunks {
			mismatch("repaired: mux %d, client %d", res.RepairedChunks, stats.RepairedChunks)
		}
		if res.Bytes != stats.Bytes {
			mismatch("bytes: mux %d, client %d", res.Bytes, stats.Bytes)
		}
		if res.LostChunks != 0 || stats.LostChunks != 0 || res.ByteErrors != 0 || stats.ByteErrors != 0 {
			mismatch("lost/byteErrors nonzero: mux %d/%d, client %d/%d",
				res.LostChunks, res.ByteErrors, stats.LostChunks, stats.ByteErrors)
		}
		if res.Degraded != 0 {
			mismatch("degraded viewers = %d, want 0", res.Degraded)
		}
		if len(diffs) == 0 {
			return
		}
		if drift > 0 && attempt < attempts {
			t.Logf("attempt %d: %d ledger mismatches with %d drift events on the books (grid broke under load); retrying on a fresh server", attempt, len(diffs), drift)
			continue
		}
		for _, d := range diffs {
			t.Error(d)
		}
		return
	}
}

// TestMuxMatchesIndependentClients scales the golden anchor to a small
// cohort: a mux run of n viewers must aggregate to exactly the sums of n
// independent client sessions seeded viewer-by-viewer — and the result must
// be bit-identical across worker-pool sizes, since per-viewer bookkeeping
// is sharded by viewer ID, not by scheduling order.
func TestMuxMatchesIndependentClients(t *testing.T) {
	if testing.Short() {
		t.Skip("live network test")
	}
	sch := liveScheme(t, 1, 5, 2)
	srv := startServer(t, sch, 200*time.Millisecond, &faults.Plan{Drop: 0.25, Seed: 11})

	const n = 3
	const muxSeed = 7
	mux := func(workers int) *viewer.Result {
		res, err := viewer.Run(viewer.MuxConfig{
			ServerAddr:    srv.Addr(),
			Viewers:       n,
			Videos:        1,
			Seed:          muxSeed,
			Workers:       workers,
			JoinLeadFrac:  0.9,
			SlackFrac:     2.0,
			RepairLagFrac: 1.125,
			// This property pins the per-viewer unicast plane: a cohort
			// NACKs once where n clients NACK n times, so with the ladder
			// on the sums cannot (and should not) match. Single-viewer
			// NACK equivalence is TestMuxGoldenSingleViewer's job.
			DisableNack: true,
		})
		if err != nil {
			t.Fatalf("mux run (%d workers): %v (result %+v)", workers, err, res)
		}
		return res
	}
	res1 := mux(1)
	res3 := mux(3)

	type sums struct {
		bytes, lost, late, dup, repaired, reqs, busy, byteErrors int64
	}
	fold := func(r *viewer.Result) sums {
		return sums{r.Bytes, r.LostChunks, r.LateChunks, r.DuplicateChunks,
			r.RepairedChunks, r.RepairRequests, r.BusyReplies, r.ByteErrors}
	}
	if fold(res1) != fold(res3) {
		t.Errorf("stats depend on worker count:\n 1 worker  %+v\n 3 workers %+v", fold(res1), fold(res3))
	}

	// The clients run sequentially: repetition invariance makes their
	// phase irrelevant to the stats, and one session at a time keeps the
	// comparison free of scheduling contention on small CI machines.
	var want sums
	for v := 0; v < n; v++ {
		st, err := client.Watch(client.Config{
			ServerAddr:    srv.Addr(),
			Video:         0,
			JoinLeadFrac:  0.9,
			SlackFrac:     2.0,
			RepairLagFrac: 1.125,
			Seed:          viewer.ViewerSeed(muxSeed, v),
			DisableNack:   true,
		})
		if err != nil {
			t.Fatalf("client %d: %v", v, err)
		}
		want.bytes += st.Bytes
		want.lost += st.LostChunks
		want.late += st.LateChunks
		want.dup += st.DuplicateChunks
		want.repaired += st.RepairedChunks
		want.reqs += st.RepairRequests
		want.busy += st.BusyReplies
		want.byteErrors += st.ByteErrors
	}
	if got := fold(res1); got != want {
		t.Errorf("mux aggregate differs from %d independent clients:\n mux     %+v\n clients %+v", n, got, want)
	}
	if res1.RepairedChunks == 0 {
		t.Error("no repairs under a 25% drop plan; the comparison is vacuous")
	}
}

// TestMuxScaleSmoke holds thousands of concurrent virtual viewers in one
// process against one live server — the cohort dedup makes the receive
// path O(cohorts) — and checks that server-side control load stays
// independent of the audience size.
func TestMuxScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("live network test")
	}
	sch := liveScheme(t, 2, 5, 2)
	srv := startServer(t, sch, 200*time.Millisecond, nil)
	statusURL, err := srv.ServeStatus()
	if err != nil {
		t.Fatal(err)
	}

	const viewers = 3000
	res, err := viewer.Run(viewer.MuxConfig{
		ServerAddr:    srv.Addr(),
		Viewers:       viewers,
		SpreadUnits:   2,
		Seed:          9,
		JoinLeadFrac:  0.9,
		SlackFrac:     2.0,
		RepairLagFrac: 1.125,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatalf("mux run: %v (result %+v)", err, res)
	}
	if res.Degraded != 0 || res.LostChunks != 0 || res.ByteErrors != 0 {
		t.Errorf("degraded %d lost %d byteErrors %d, want all 0", res.Degraded, res.LostChunks, res.ByteErrors)
	}
	wantBytes := int64(viewers) * int64(sch.TotalUnits()) * 4096
	if res.Bytes != wantBytes {
		t.Errorf("bytes %d, want %d (viewers x full video)", res.Bytes, wantBytes)
	}
	if res.PeakViewers != viewers {
		t.Errorf("peak viewers %d, want %d held concurrently", res.PeakViewers, viewers)
	}
	if res.Cohorts < 4 {
		t.Errorf("only %d cohorts for a 2-video, 2-unit admission spread", res.Cohorts)
	}
	if res.Datagrams == 0 {
		t.Error("shared receiver delivered no datagrams")
	}

	// The server must not have felt the audience: control sessions stay
	// bounded by the mux's connection pool, not the viewer count.
	resp, err := http.Get(statusURL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap server.StatusSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if limit := int64(res.Workers) + 1; snap.ControlSessionsPeak > limit {
		t.Errorf("server saw %d peak control sessions for %d viewers, want <= %d (mux pool)",
			snap.ControlSessionsPeak, viewers, limit)
	}
}
