package viewer

import (
	"bufio"
	"container/heap"
	"errors"
	"fmt"
	"math"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"skyscraper/internal/content"
	"skyscraper/internal/des"
	"skyscraper/internal/mcast"
	"skyscraper/internal/metrics"
	"skyscraper/internal/series"
	"skyscraper/internal/wire"
)

// errMuxDraining reports a server-initiated bye on a mux control
// connection: the repair plane is gone for every emulated viewer.
var errMuxDraining = errors.New("viewer: server draining (bye received)")

// busyError is the server's admission pushback on a repair request; it is
// flow control, not failure.
type busyError struct{ retryAfter time.Duration }

func (e *busyError) Error() string {
	if e.retryAfter <= 0 {
		return "viewer: server busy (re-listen to broadcast)"
	}
	return fmt.Sprintf("viewer: server busy (retry after %v)", e.retryAfter)
}

// arrivalStream keys each viewer's admission-offset draw. It is a direct
// substream of the viewer seed, one SubSeed layer above the jitter
// streams (which derive via SubSeed(SubSeed(seed, key), stream)), so no
// repair or reconnect jitter draw can collide with it.
const arrivalStream = ^uint64(1)

// ViewerSeed is virtual viewer v's session seed under a mux seeded with
// muxSeed. A real client.Config{Seed: ViewerSeed(muxSeed, v)} draws
// bit-identical repair jitter schedules to mux viewer v — the anchor the
// cohort-equivalence tests build on.
func ViewerSeed(muxSeed uint64, v int) uint64 {
	return des.SubSeed(muxSeed, uint64(v))
}

// MuxConfig parameterizes one virtual-viewer multiplexer run.
type MuxConfig struct {
	// ServerAddr is the server's TCP control address.
	ServerAddr string
	// Viewers is how many virtual sessions to emulate.
	Viewers int
	// Videos spreads viewers round-robin over the first Videos catalog
	// entries; zero (or anything past the catalog) selects the whole
	// catalog.
	Videos int
	// SpreadUnits is the admission window in D1 units: viewer arrival
	// offsets are drawn uniformly from [0, SpreadUnits), so viewers land
	// on about SpreadUnits+1 distinct playback start units per video.
	// Zero admits everyone at once (one cohort per video).
	SpreadUnits float64
	// Seed keys every viewer's deterministic substreams (arrival offset,
	// repair jitter) via ViewerSeed.
	Seed uint64
	// Workers sizes the repair-plane worker pool; per-viewer bookkeeping
	// for diverged viewers is sharded over it by viewer ID (viewer v is
	// owned by worker v mod Workers), so stats are independent of the
	// worker count. Zero selects GOMAXPROCS capped at 8. Each worker
	// lazily dials one control connection.
	Workers int
	// JoinLeadFrac, SlackFrac, RepairLagFrac mirror client.Config (all
	// default to 0.5).
	JoinLeadFrac  float64
	SlackFrac     float64
	RepairLagFrac float64
	// DisableRepair turns per-viewer loss recovery off: gaps become
	// cohort-wide losses at their playback deadlines.
	DisableRepair bool
	// DisableNack turns off the cohort-level multicast-first NACK ladder:
	// gaps go straight to the per-viewer unicast repair plane. The ladder
	// is on by default whenever the server advertises it
	// (Welcome.NackRepair): each cohort NACKs as one voice, so a burst of
	// losses costs one aggregated gap bitmap regardless of cohort size.
	DisableNack bool
	// ControlTimeout bounds each control round trip; defaults to 5s.
	ControlTimeout time.Duration
	// RecvBufBytes sizes the shared UDP socket's kernel buffer; zero
	// selects mcast.DefaultRecvBufBytes.
	RecvBufBytes int
	// RecvBatch is the most datagrams the shared receiver drains per
	// recvmmsg call; zero selects mcast.DefaultRecvBatch, 1 pins the
	// portable single-read path.
	RecvBatch int
	// SubDepth is the per-subscription slot ring depth; defaults to 256.
	SubDepth int
	// Logf, when non-nil, receives diagnostic output.
	Logf func(format string, args ...any)
}

// WaitBucket is one bin of the admission-latency histogram: Count viewers
// waited about MilliUnits/1000 D1 units for playback to start.
type WaitBucket struct {
	MilliUnits int64 `json:"milliUnits"`
	Count      int64 `json:"count"`
}

// Result reports a completed mux run. Aggregates are sums over all
// emulated viewers, so they compare directly against the same number of
// independent client sessions.
type Result struct {
	Viewers int `json:"viewers"`
	Cohorts int `json:"cohorts"`
	Workers int `json:"workers"`
	// ElapsedSec is the wall time from first admission to last cohort
	// completion.
	ElapsedSec float64 `json:"elapsedSec"`
	// Bytes is total payload credited across viewers (video bytes minus
	// each viewer's lost bytes); ByteErrors content-verification
	// mismatches (counted once per cohort on the shared path).
	Bytes      int64 `json:"bytes"`
	ByteErrors int64 `json:"byteErrors"`
	// Chunk outcome sums over viewers, as in client.Stats.
	LateChunks      int64 `json:"lateChunks"`
	DuplicateChunks int64 `json:"duplicateChunks"`
	LostChunks      int64 `json:"lostChunks"`
	RepairedChunks  int64 `json:"repairedChunks"`
	RepairRequests  int64 `json:"repairRequests"`
	BusyReplies     int64 `json:"busyReplies"`
	Reconnects      int64 `json:"reconnects"`
	// NacksSent counts gap-bitmap NACK round trips and NacksSuppressed
	// aggregation windows that closed with nothing left to report. Both
	// are per cohort, NOT per viewer — the cohort NACKs as one voice,
	// which is exactly the control-traffic reduction being measured.
	// MulticastRepairs counts chunks healed by a NACK-triggered multicast
	// re-send, summed over viewers like RepairedChunks.
	NacksSent        int64 `json:"nacksSent"`
	NacksSuppressed  int64 `json:"nacksSuppressed"`
	MulticastRepairs int64 `json:"multicastRepairs"`
	// FecHeals counts chunks reconstructed from the proactive parity
	// stripe, summed over viewers like MulticastRepairs (one shared-path
	// reconstruction heals the whole cohort, for zero control traffic).
	// StripeDefeats counts cohort-level escalations: gaps whose stripe
	// hold expired unhealed and entered the reactive ladder.
	FecHeals      int64 `json:"fecHeals"`
	StripeDefeats int64 `json:"stripeDefeats"`
	// Degraded counts viewers that finished with any lost or late chunk.
	Degraded int `json:"degraded"`
	// PeakViewers and PeakCohorts are the concurrency high-water marks.
	PeakViewers int64 `json:"peakViewers"`
	PeakCohorts int64 `json:"peakCohorts"`
	// Datagrams counts slot deliveries on the shared receiver (one per
	// subscribed datagram, not per viewer); RecvDropped the datagrams
	// lost to a full subscription ring (they surface as repairs).
	Datagrams   int64 `json:"datagrams"`
	RecvDropped int64 `json:"recvDropped"`
	// The ingress ledger of the shared receiver. BatchedReads counts
	// datagrams drained through the recvmmsg rung (after GRO splitting);
	// ReadSyscalls every kernel receive invocation —
	// BatchedReads/ReadSyscalls is the achieved ingress batching factor.
	// GroSegments counts frames recovered from coalesced GRO
	// super-frames; GroFallbacks declines/demotions of the GRO rung;
	// ReadErrors failed socket reads.
	BatchedReads int64 `json:"batchedReads"`
	ReadSyscalls int64 `json:"readSyscalls"`
	GroSegments  int64 `json:"groSegments"`
	GroFallbacks int64 `json:"groFallbacks,omitempty"`
	ReadErrors   int64 `json:"readErrors,omitempty"`
	// WaitHist is the per-viewer admission-wait histogram in milli-unit
	// bins, mergeable across emulator processes.
	WaitHist []WaitBucket `json:"waitHist"`
}

// WaitQuantile returns the q-quantile (0 < q <= 1) of per-viewer
// admission waits in D1 units, to the histogram's milli-unit resolution.
func (r *Result) WaitQuantile(q float64) float64 {
	return WaitQuantile(r.WaitHist, int64(r.Viewers), q)
}

// WaitQuantile computes a quantile over a merged admission-wait
// histogram with total viewers across all merged results.
func WaitQuantile(hist []WaitBucket, total int64, q float64) float64 {
	if total <= 0 || len(hist) == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for _, b := range hist {
		cum += b.Count
		if cum >= rank {
			return float64(b.MilliUnits+1) / 1000
		}
	}
	return float64(hist[len(hist)-1].MilliUnits+1) / 1000
}

// MergeWaitHists merges admission-wait histograms from several results.
func MergeWaitHists(hists ...[]WaitBucket) []WaitBucket {
	counts := map[int64]int64{}
	for _, h := range hists {
		for _, b := range h {
			counts[b.MilliUnits] += b.Count
		}
	}
	return histFromCounts(counts)
}

func histFromCounts(counts map[int64]int64) []WaitBucket {
	out := make([]WaitBucket, 0, len(counts))
	for mu, n := range counts {
		out = append(out, WaitBucket{MilliUnits: mu, Count: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].MilliUnits < out[j].MilliUnits })
	return out
}

// viewerLedger is one viewer's divergence bookkeeping: every field is
// written only by the viewer's owner worker (single-writer by the
// viewer-ID sharding), and read only after the worker pool has drained.
type viewerLedger struct {
	lost, late, dup, repaired int64
	repairReqs, busyReplies   int64
	byteErrors                int64
	lostBytes                 int64
	fecHeals                  int64
}

// Mux is the virtual-viewer multiplexer: one process emulating Viewers
// sessions against a live server. Viewers tuned to the same (video,
// playback start) form a cohort sharing one receiver subscription per
// channel and one decode/verify pass per datagram; per-viewer machines
// materialize only when a loss makes outcomes diverge.
type Mux struct {
	cfg   MuxConfig
	w     *wire.Welcome
	unit  time.Duration
	epoch time.Time

	rcv     *mcast.SharedReceiver
	jm      *joinManager
	workers []*worker
	stop    chan struct{}
	wwg     sync.WaitGroup

	// bye latches a server-initiated drain for every viewer at once.
	bye        atomic.Bool
	reconnects atomic.Int64

	ledgers []viewerLedger
	waits   []float64 // per-viewer admission wait in units; read-only after admission

	liveViewers   metrics.PaddedGauge
	activeCohorts metrics.PaddedGauge
}

// LiveViewers and ActiveCohorts expose the emulation's concurrency
// levels (and, via High, their peaks) for live sampling.
func (m *Mux) LiveViewers() *metrics.PaddedGauge   { return &m.liveViewers }
func (m *Mux) ActiveCohorts() *metrics.PaddedGauge { return &m.activeCohorts }

// Run emulates cfg.Viewers sessions to completion and aggregates their
// stats. Like client.Watch, a degraded run still returns its Result
// alongside the error.
func Run(cfg MuxConfig) (*Result, error) {
	m, err := NewMux(cfg)
	if err != nil {
		return nil, err
	}
	return m.Run()
}

// NewMux validates cfg, performs the control handshake, and prepares an
// emulation. Run executes it.
func NewMux(cfg MuxConfig) (*Mux, error) {
	if cfg.Viewers <= 0 {
		return nil, fmt.Errorf("viewer: mux needs a positive viewer count (got %d)", cfg.Viewers)
	}
	if cfg.JoinLeadFrac <= 0 {
		cfg.JoinLeadFrac = 0.5
	}
	if cfg.SlackFrac <= 0 {
		cfg.SlackFrac = 0.5
	}
	if cfg.RepairLagFrac <= 0 {
		cfg.RepairLagFrac = 0.5
	}
	if cfg.ControlTimeout <= 0 {
		cfg.ControlTimeout = 5 * time.Second
	}
	if cfg.SubDepth <= 0 {
		cfg.SubDepth = 256
	}
	if cfg.SpreadUnits < 0 {
		cfg.SpreadUnits = 0
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
		if cfg.Workers > 8 {
			cfg.Workers = 8
		}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	m := &Mux{cfg: cfg, stop: make(chan struct{})}
	cc := &controlConn{mux: m}
	w, err := cc.welcome()
	if err != nil {
		return nil, err
	}
	if len(w.SizeUnits) != w.ChannelsPerVideo || w.ChannelsPerVideo == 0 || w.Videos <= 0 {
		cc.close()
		return nil, fmt.Errorf("viewer: malformed welcome: %d sizes for %d channels, %d videos",
			len(w.SizeUnits), w.ChannelsPerVideo, w.Videos)
	}
	m.w = w
	m.unit = time.Duration(w.UnitNanos)
	m.epoch = time.Unix(0, w.EpochUnixNano)
	m.jm = &joinManager{cc: cc, refs: map[mcast.Group]int{}}
	return m, nil
}

// Run executes the emulation prepared by NewMux.
func (m *Mux) Run() (*Result, error) {
	defer m.jm.cc.close()
	rcv, err := mcast.NewSharedReceiverConfigured(mcast.SharedReceiverConfig{
		RecvBufBytes: m.cfg.RecvBufBytes,
		Batch:        m.cfg.RecvBatch,
		Logf:         m.cfg.Logf,
		Classify: func(frame []byte) (mcast.Group, bool) {
			v, ch, _, _, ok := wire.PeekID(frame)
			if !ok {
				return mcast.Group{}, false
			}
			return mcast.Group{Video: int(v), Channel: int(ch)}, true
		},
	})
	if err != nil {
		return nil, err
	}
	defer rcv.Close()
	m.rcv = rcv
	m.jm.port = rcv.Addr().Port

	groups := series.Groups(m.w.SizeUnits)
	cohorts := m.admit()
	m.cfg.Logf("viewer: %d viewers in %d cohorts over %d workers", m.cfg.Viewers, len(cohorts), m.cfg.Workers)

	m.workers = make([]*worker, m.cfg.Workers)
	for i := range m.workers {
		w := &worker{mux: m, in: make(chan wcmd, 1024)}
		w.conn = &controlConn{mux: m}
		m.workers[i] = w
		m.wwg.Add(1)
		go w.run()
	}

	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, len(cohorts))
	for _, co := range cohorts {
		wg.Add(1)
		go func(co *cohort) {
			defer wg.Done()
			if err := co.run(groups); err != nil {
				errCh <- err
			}
		}(co)
	}
	wg.Wait()
	close(m.stop)
	m.wwg.Wait()
	_, _ = m.jm.cc.roundTrip(&wire.Control{Kind: wire.KindBye}, false)
	for _, w := range m.workers {
		w.conn.close()
	}
	close(errCh)
	var firstErr error
	failed := 0
	for err := range errCh {
		failed++
		if firstErr == nil {
			firstErr = err
		}
	}

	res := m.aggregate(cohorts, time.Since(start))
	if firstErr != nil {
		return res, fmt.Errorf("viewer: %d of %d cohorts failed: %w", failed, len(cohorts), firstErr)
	}
	return res, nil
}

// admit assigns every viewer a video, an arrival offset, and a playback
// start unit, grouping viewers with identical (video, playback start)
// into cohorts. Everything here derives from the mux seed, so admission
// is reproducible; only the shared run start is wall time.
func (m *Mux) admit() []*cohort {
	videos := m.cfg.Videos
	if videos <= 0 || videos > m.w.Videos {
		videos = m.w.Videos
	}
	m.ledgers = make([]viewerLedger, m.cfg.Viewers)
	m.waits = make([]float64, m.cfg.Viewers)
	arrivalUnits := float64(time.Since(m.epoch)) / float64(m.unit)

	type ckey struct {
		video     int
		playStart int64
	}
	byKey := map[ckey]*cohort{}
	var order []*cohort
	for v := 0; v < m.cfg.Viewers; v++ {
		r := des.NewRand(des.SubSeed(ViewerSeed(m.cfg.Seed, v), arrivalStream))
		a := arrivalUnits + r.Float64()*m.cfg.SpreadUnits
		playStart := int64(math.Ceil(a + m.cfg.JoinLeadFrac))
		m.waits[v] = float64(playStart) - a
		k := ckey{video: v % videos, playStart: playStart}
		co := byKey[k]
		if co == nil {
			co = &cohort{mux: m, video: k.video, playStartUnit: k.playStart}
			byKey[k] = co
			order = append(order, co)
		}
		co.viewers = append(co.viewers, v)
	}
	return order
}

// aggregate folds cohort-shared counters (applied to every member) and
// per-viewer ledgers into the Result.
func (m *Mux) aggregate(cohorts []*cohort, elapsed time.Duration) *Result {
	res := &Result{
		Viewers:      m.cfg.Viewers,
		Cohorts:      len(cohorts),
		Workers:      m.cfg.Workers,
		ElapsedSec:   elapsed.Seconds(),
		PeakViewers:  m.liveViewers.High(),
		PeakCohorts:  m.activeCohorts.High(),
		Datagrams:    m.rcv.Delivered(),
		RecvDropped:  m.rcv.Dropped(),
		BatchedReads: m.rcv.BatchedReads(),
		ReadSyscalls: m.rcv.ReadSyscalls(),
		GroSegments:  m.rcv.GROSegments(),
		GroFallbacks: m.rcv.GROFallbacks(),
		ReadErrors:   m.rcv.ReadErrors(),
		Reconnects:   m.reconnects.Load(),
	}
	var totalUnits int64
	for _, s := range m.w.SizeUnits {
		totalUnits += s
	}
	videoBytes := totalUnits * int64(m.w.BytesPerUnit)
	for _, co := range cohorts {
		n := int64(len(co.viewers))
		sharedLate, sharedLost := co.late.Load(), co.lostShared.Load()
		res.LateChunks += sharedLate * n
		res.DuplicateChunks += co.dup.Load() * n
		res.LostChunks += sharedLost * n
		res.ByteErrors += co.byteErrors.Load()
		res.Bytes += n * (videoBytes - co.lostSharedBytes.Load())
		res.NacksSent += co.nacks.Load()
		res.NacksSuppressed += co.nackSuppressed.Load()
		res.BusyReplies += co.nackBusy.Load()
		// A multicast re-send lands on the shared subscription, so the one
		// healed chunk is credited to every member of the cohort; a parity
		// reconstruction on the shared path heals identically.
		res.MulticastRepairs += co.nackRepaired.Load() * n
		res.FecHeals += co.fecHeals.Load() * n
		res.StripeDefeats += co.stripeDefeats.Load()
		for _, v := range co.viewers {
			led := &m.ledgers[v]
			res.LateChunks += led.late
			res.DuplicateChunks += led.dup
			res.LostChunks += led.lost
			res.RepairedChunks += led.repaired
			res.FecHeals += led.fecHeals
			res.RepairRequests += led.repairReqs
			res.BusyReplies += led.busyReplies
			res.ByteErrors += led.byteErrors
			res.Bytes -= led.lostBytes
			if led.lost+sharedLost > 0 || led.late+sharedLate > 0 {
				res.Degraded++
			}
		}
	}
	counts := map[int64]int64{}
	for _, w := range m.waits {
		counts[int64(w*1000)]++
	}
	res.WaitHist = histFromCounts(counts)
	return res
}

// submit hands a viewer-fragment to its owner worker, tracking the
// handoff in the fragment's inflight count so the cohort loader cannot
// conclude the fragment while commands are still queued.
func (m *Mux) submit(vf *viewerFrag, reopen int) {
	vf.f.inflight.Add(1)
	m.workers[vf.viewer%len(m.workers)].in <- wcmd{vf: vf, reopen: reopen}
}

// wcmd is one loader-to-worker handoff: wake vf (and first reopen chunk
// `reopen`, when >= 0, re-arming it for repair).
type wcmd struct {
	vf     *viewerFrag
	reopen int
}

// worker owns the divergent side of the emulation for viewers v with
// v mod Workers == its index: their machines, their repair round trips
// (over one lazily-dialed control connection), and their ledgers. All
// state of a given viewer is touched by exactly one worker, which is
// what makes stats worker-count-independent.
type worker struct {
	mux  *Mux
	in   chan wcmd
	h    wakeHeap
	conn *controlConn
}

func (w *worker) run() {
	defer w.mux.wwg.Done()
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		var tc <-chan time.Time
		if len(w.h) > 0 {
			d := time.Until(w.h[0].at)
			if d < 0 {
				d = 0
			}
			resetTimer(timer, d)
			tc = timer.C
		}
		select {
		case cmd := <-w.in:
			w.exec(cmd)
		case <-tc:
			now := time.Now()
			for len(w.h) > 0 && !w.h[0].at.After(now) {
				e := heap.Pop(&w.h).(wakeEntry)
				w.step(e.vf, time.Now())
				e.vf.f.notify()
			}
		case <-w.mux.stop:
			return
		}
	}
}

// exec applies one loader command. A reopen on a finished viewer brings
// it back into the pending count before the chunk is re-armed.
func (w *worker) exec(cmd wcmd) {
	vf := cmd.vf
	f := vf.f
	if cmd.reopen >= 0 {
		if vf.done {
			vf.done = false
			f.pending.Add(1)
		}
		vf.vm.Reopen(cmd.reopen)
	}
	f.inflight.Add(-1)
	if !vf.done {
		w.step(vf, time.Now())
	}
	f.notify()
}

// step advances one viewer's machine: book any recorded broadcast
// arrivals, then run repairs until the machine parks (heap) or finishes.
func (w *worker) step(vf *viewerFrag, now time.Time) {
	if vf.done {
		return
	}
	f := vf.f
	led := &w.mux.ledgers[vf.viewer]
	for idx := range f.arrived {
		if t := f.arrived[idx].Load(); t != 0 && !vf.vm.Have(idx) {
			// A recorded stripe reconstruction books as a FEC heal — or a
			// duplicate, for a viewer that already unicast-repaired the
			// chunk — exactly as a live client's machine would book it.
			if f.healed[idx].Load() {
				vf.vm.FecHealed(idx, time.Unix(0, t))
			} else {
				vf.vm.Chunk(idx, time.Unix(0, t))
			}
		}
	}
	for {
		if vf.vm.Done() {
			w.finish(vf)
			return
		}
		act := vf.vm.Next(now)
		if act.Kind != ActRepair {
			heap.Push(&w.h, wakeEntry{at: act.Wake, vf: vf})
			return
		}
		idx := act.Idx
		led.repairReqs++
		off := int64(idx) * int64(f.params.ChunkBytes)
		data, err := w.conn.repair(f.c.video, f.channel, f.wantSeq, off, vf.vm.ChunkLen(idx))
		now = time.Now()
		outcome, retryAfter := RepairOK, time.Duration(0)
		if err != nil {
			var busy *busyError
			switch {
			case errors.As(err, &busy):
				led.busyReplies++
				outcome, retryAfter = RepairBusy, busy.retryAfter
			case errors.Is(err, errMuxDraining):
				outcome = RepairDisabled
			default:
				outcome = RepairFailed
			}
		}
		if vf.vm.RepairResult(idx, outcome, retryAfter, now) == Repaired {
			if bad := content.Verify(data, f.c.video, f.videoBase+off); bad >= 0 {
				led.byteErrors++
			}
		}
	}
}

// finish folds a completed viewer-fragment's machine stats into the
// viewer's ledger (losses and their bytes were already booked through
// the machine's OnLost callback).
func (w *worker) finish(vf *viewerFrag) {
	vf.done = true
	st := vf.vm.Stats()
	led := &w.mux.ledgers[vf.viewer]
	led.late += st.Late - vf.folded.Late
	led.dup += st.Duplicates - vf.folded.Duplicates
	led.repaired += st.Repaired - vf.folded.Repaired
	led.fecHeals += st.FecHeals - vf.folded.FecHeals
	vf.folded = st
	vf.f.pending.Add(-1)
}

// wakeHeap orders parked viewer-fragments by wake time. Stale entries
// (a viewer re-woken through the channel and finished) are filtered by
// the done flag in step.
type wakeEntry struct {
	at time.Time
	vf *viewerFrag
}

type wakeHeap []wakeEntry

func (h wakeHeap) Len() int           { return len(h) }
func (h wakeHeap) Less(i, j int) bool { return h[i].at.Before(h[j].at) }
func (h wakeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *wakeHeap) Push(x any)        { *h = append(*h, x.(wakeEntry)) }
func (h *wakeHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// resetTimer re-arms a timer whose channel is only read by its owner
// loop (the pre-Go-1.23 drain discipline).
func resetTimer(t *time.Timer, d time.Duration) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
	t.Reset(d)
}

// controlConn is one mux-side control connection: dialed on first use,
// re-dialed transparently on transport failure, serialized by a mutex.
// The join manager holds one; each worker holds its own, so repair round
// trips parallelize across workers without interleaving on one socket.
type controlConn struct {
	mux *Mux

	mu     sync.Mutex
	conn   net.Conn
	r      *bufio.Reader
	w      *wire.Welcome
	dialed bool
}

// welcome dials (if needed) and returns the server's welcome.
func (c *controlConn) welcome() (*wire.Welcome, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.ensureLocked(); err != nil {
		return nil, err
	}
	return c.w, nil
}

func (c *controlConn) ensureLocked() error {
	if c.conn != nil {
		return nil
	}
	conn, err := net.DialTimeout("tcp", c.mux.cfg.ServerAddr, c.mux.cfg.ControlTimeout)
	if err != nil {
		return fmt.Errorf("viewer: dialing control: %w", err)
	}
	r := bufio.NewReader(conn)
	w, err := muxHandshake(conn, r, c.mux.cfg.ControlTimeout)
	if err != nil {
		conn.Close()
		return err
	}
	if have := c.mux.w; have != nil && w.EpochUnixNano != have.EpochUnixNano {
		conn.Close()
		return errors.New("viewer: server restarted (broadcast epoch changed)")
	}
	c.conn, c.r, c.w = conn, r, w
	if c.dialed {
		c.mux.reconnects.Add(1)
	}
	c.dialed = true
	return nil
}

func muxHandshake(conn net.Conn, r *bufio.Reader, timeout time.Duration) (*wire.Welcome, error) {
	_ = conn.SetDeadline(time.Now().Add(timeout))
	defer conn.SetDeadline(time.Time{})
	if err := wire.WriteControl(conn, &wire.Control{Kind: wire.KindHello}); err != nil {
		return nil, err
	}
	m, err := wire.ReadControl(r)
	if err != nil {
		return nil, fmt.Errorf("viewer: reading welcome: %w", err)
	}
	if m.Kind != wire.KindWelcome || m.Welcome == nil {
		return nil, fmt.Errorf("viewer: expected welcome, got %q (%s)", m.Kind, m.Error)
	}
	return m.Welcome, nil
}

// roundTrip performs one control request, re-dialing a broken connection
// up to three attempts. A server bye latches the mux-wide drain flag.
func (c *controlConn) roundTrip(msg *wire.Control, wantReply bool) (*wire.Control, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		if c.conn == nil && !wantReply {
			return nil, nil // fire-and-forget on a dead link: drop it
		}
		if err := c.ensureLocked(); err != nil {
			lastErr = err
			continue
		}
		_ = c.conn.SetDeadline(time.Now().Add(c.mux.cfg.ControlTimeout))
		err := wire.WriteControl(c.conn, msg)
		var reply *wire.Control
		if err == nil && wantReply {
			reply, err = wire.ReadControl(c.r)
		}
		_ = c.conn.SetDeadline(time.Time{})
		if err == nil {
			if wantReply && reply.Kind == wire.KindBye {
				c.mux.bye.Store(true)
				c.mux.cfg.Logf("viewer: server draining (bye); repairs disabled for all viewers")
				c.conn.Close()
				c.conn, c.r = nil, nil
				return nil, errMuxDraining
			}
			return reply, nil
		}
		lastErr = err
		c.conn.Close()
		c.conn, c.r = nil, nil
	}
	return nil, lastErr
}

// repair pulls one chunk over unicast, exactly as the live client does.
func (c *controlConn) repair(video, channel int, seq uint32, offset int64, length int) ([]byte, error) {
	req := &wire.Repair{Video: video, Channel: channel, Seq: seq, Offset: offset, Length: length}
	reply, err := c.roundTrip(&wire.Control{Kind: wire.KindRepair, Repair: req}, true)
	if err != nil {
		return nil, err
	}
	if reply.Kind == wire.KindBusy {
		return nil, &busyError{retryAfter: time.Duration(reply.RetryAfterNanos)}
	}
	if reply.Kind != wire.KindRepairOK || reply.Repair == nil {
		return nil, fmt.Errorf("viewer: repair rejected: %s", reply.Error)
	}
	rp := reply.Repair
	if rp.Video != video || rp.Channel != channel || rp.Offset != offset || len(rp.Data) != length {
		return nil, fmt.Errorf("viewer: repair reply mismatch: got %d/%d@%d (%d bytes)", rp.Video, rp.Channel, rp.Offset, len(rp.Data))
	}
	return rp.Data, nil
}

// nack reports a burst of losses as one gap-bitmap NACK — the cohort's
// aggregated voice — and returns a predicate over the chunks the server
// accepted for multicast re-send, exactly as the live client does. A
// transport or protocol failure returns an error; the caller escalates
// every chunk to the per-viewer unicast plane.
func (c *controlConn) nack(video, channel int, seq uint32, chunks []int) (func(idx int) bool, error) {
	req := wire.NackFromChunks(video, channel, seq, chunks)
	reply, err := c.roundTrip(&wire.Control{Kind: wire.KindNack, Nack: req}, true)
	if err != nil {
		return nil, err
	}
	if reply.Kind == wire.KindBusy {
		return nil, &busyError{retryAfter: time.Duration(reply.RetryAfterNanos)}
	}
	if reply.Kind != wire.KindNackOK {
		return nil, fmt.Errorf("viewer: nack rejected: %s", reply.Error)
	}
	if acc := reply.Nack; acc != nil {
		return acc.Has, nil
	}
	return func(int) bool { return false }, nil
}

func (c *controlConn) close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		c.conn.Close()
		c.conn, c.r = nil, nil
	}
}

// joinManager refcounts group memberships across every cohort on one
// control connection: the first subscriber of a group joins it on the
// server, the last leaves, and overlapping cohorts in between share the
// membership — the server-side analogue of the shared receiver.
type joinManager struct {
	cc   *controlConn
	port int

	mu   sync.Mutex
	refs map[mcast.Group]int
}

func (jm *joinManager) join(g mcast.Group) error {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	if jm.refs[g]++; jm.refs[g] > 1 {
		return nil
	}
	reply, err := jm.cc.roundTrip(&wire.Control{Kind: wire.KindJoin, Video: g.Video, Channel: g.Channel, Port: jm.port}, true)
	if err != nil {
		jm.refs[g]--
		return fmt.Errorf("viewer: waiting for join ack: %w", err)
	}
	if reply.Kind != wire.KindJoined {
		jm.refs[g]--
		return fmt.Errorf("viewer: join rejected: %s", reply.Error)
	}
	return nil
}

func (jm *joinManager) leave(g mcast.Group) {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	if jm.refs[g] == 0 {
		return
	}
	if jm.refs[g]--; jm.refs[g] == 0 {
		delete(jm.refs, g)
		_, _ = jm.cc.roundTrip(&wire.Control{Kind: wire.KindLeave, Video: g.Video, Channel: g.Channel}, false)
	}
}
