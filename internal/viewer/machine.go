// Package viewer scales the receiving side of the live Skyscraper demo to
// metropolitan audiences. The paper's server cost is independent of the
// audience size; demonstrating that requires an audience the test machine
// can actually hold. This package supplies it in two layers:
//
//   - Machine (this file): the client's deterministic per-fragment loader
//     state machine — gap detection on the wire sequence numbering, repair
//     scheduling with deadline-bounded jittered backoff, and degradation
//     accounting — extracted from internal/client so one implementation
//     drives both a real single-viewer session and the multiplexer below.
//
//   - Mux (mux.go/cohort.go): a virtual-viewer multiplexer that emulates
//     100k+ sessions in one process by exploiting the scheme's repetition
//     invariance: viewers tuned to the same (video, channel set, phase)
//     form a cohort sharing one receiver subscription and one
//     decode/CRC/content-verify pass per datagram, with per-viewer state
//     materialized only when losses force viewers to diverge.
//
// Machine is pure state: every method takes the current time explicitly
// and touches no clock, socket, or goroutine, so the same transitions can
// run against wall time (the live client) or a scripted virtual time (the
// cohort equivalence property tests).
package viewer

import (
	"time"

	"skyscraper/internal/des"
)

// DefaultMaxRepairAttempts caps the unicast round trips spent on one chunk
// when FragmentParams leaves MaxRepairAttempts zero; it matches the
// historical client constant.
const DefaultMaxRepairAttempts = 5

// DefaultGraceUnits is the receive cutoff's slack past the broadcast's
// nominal end: several units absorb server pacing drift on a loaded
// machine before missing chunks are declared lost.
const DefaultGraceUnits = 6

// RepairJitterKey is the jitter substream key for repair retries of one
// chunk: distinct (channel, chunk) sites never share a stream.
func RepairJitterKey(channel, idx int) uint64 {
	return uint64(uint32(channel))<<32 | uint64(uint32(idx))
}

// JitterIn returns the deterministic full-jitter delay every retry site
// uses: uniform in (0, window], bounded below by 1ms so retries never
// spin, drawn from the substream of seed identified by (key, stream).
// Distinct seeds produce uncorrelated schedules (SubSeed is a SplitMix64
// finalizer), which is what breaks up viewer retry synchronization after
// a shared fault or a shared Busy release time.
func JitterIn(seed, key, stream uint64, window time.Duration) time.Duration {
	if window < time.Millisecond {
		window = time.Millisecond
	}
	r := des.NewRand(des.SubSeed(des.SubSeed(seed, key), stream))
	d := time.Duration(r.Float64() * float64(window))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// JitterFunc draws one deterministic backoff delay; the live client binds
// JitterIn to its session seed, the multiplexer to each viewer's seed.
type JitterFunc func(key, stream uint64, window time.Duration) time.Duration

// FragmentParams describes one fragment reception: the broadcast geometry
// a loader tunes to and the recovery policy it runs. All times derive from
// (Epoch, Unit) exactly as in the live client.
type FragmentParams struct {
	// Video and Channel identify the fragment's broadcast group.
	Video, Channel int
	// Size is the fragment length in D1 units; TuneUnit the absolute unit
	// the loader tunes at (a multiple of Size); PlayUnit the absolute unit
	// the fragment's first byte plays at.
	Size, TuneUnit, PlayUnit int64
	// TotalBytes is the fragment's payload size; ChunkBytes the datagram
	// payload size; BytesPerUnit the payload density (for playback times).
	TotalBytes, ChunkBytes, BytesPerUnit int
	// Epoch and Unit anchor the broadcast grid in wall time.
	Epoch time.Time
	Unit  time.Duration
	// Slack is how long after its scheduled playback a chunk may arrive
	// before it counts as jitter; Lag how long after a chunk's expected
	// broadcast arrival the gap detector waits before presuming it missing.
	Slack, Lag time.Duration
	// GraceUnits extends the receive cutoff past the broadcast's nominal
	// end; zero selects DefaultGraceUnits.
	GraceUnits int64

	// DisableRepair turns recovery off: gaps run out their deadlines and
	// become losses. MaxRepairAttempts caps round trips per chunk (zero
	// selects DefaultMaxRepairAttempts). RepairsEnabled, when non-nil, is
	// consulted before scheduling each repair — the live client parks
	// repairs after a server-initiated bye. Jitter draws retry backoff
	// (required unless DisableRepair or Observe).
	DisableRepair     bool
	MaxRepairAttempts int
	RepairsEnabled    func() bool
	Jitter            JitterFunc

	// Observe switches the machine into the cohort multiplexer's shared
	// mode: instead of scheduling repairs itself, Next reports each
	// detected gap exactly once (ActGap) and keeps only the loss
	// deadlines; the per-viewer repair ledgers take over from there.
	Observe bool

	// NackEnabled turns on the multicast-first NACK ladder (nack.go):
	// missing chunks are aggregated into jittered gap-bitmap NACKs
	// (ActNack) and heal off multicast re-sends, with the unicast plane
	// (ActRepair/ActGap) as last resort. Requires Jitter. NackWindow is
	// the aggregation window (zero selects two chunk intervals);
	// MaxNackRounds caps windows joined per chunk (zero selects
	// DefaultMaxNackRounds).
	NackEnabled   bool
	NackWindow    time.Duration
	MaxNackRounds int

	// FecGroup is the broadcast's proactive parity stripe width G (from
	// Welcome.FecGroup); zero means no stripe and leaves every legacy
	// path bit-identical. With a stripe, a chunk missing at its gap
	// checkpoint first waits for the group's parity frame — the stripe
	// heals single-datagram loss locally with no control traffic — and
	// only enters the reactive ladder (NACK window, unicast repair) at
	// stripe-defeat time: the grid instant by which the parity frame,
	// broadcast alongside the group's last data chunk, can no longer
	// save it. The driver reports reconstructions via FecHealed.
	FecGroup int

	// OnLost, when non-nil, observes each chunk declared unrecoverable
	// (for tracing); attempts is how many repair round trips it consumed.
	OnLost func(idx, attempts int)
}

// MachineStats counts a fragment reception's recovery outcomes.
type MachineStats struct {
	// Late counts chunks that arrived (or were repaired) after their
	// playback time plus slack; Duplicates retransmissions discarded;
	// Lost chunks neither broadcast nor repaired before their deadline;
	// Repaired chunks recovered over unicast.
	Late, Duplicates, Lost, Repaired int64
	// Nacks counts gap-bitmap NACK round trips issued; NacksSuppressed
	// aggregation windows that closed with nothing left to report (the
	// multicast re-send arrived first) plus gaps the parity stripe
	// healed before their window ever armed; NackRepaired chunks healed
	// by a multicast re-send while in the NACK re-listen phase.
	Nacks, NacksSuppressed, NackRepaired int64
	// FecHeals counts chunks reconstructed locally from the parity
	// stripe — zero control round trips; StripeDefeats chunks whose
	// stripe hold expired unhealed (burst loss beyond the stripe's
	// reach, or the parity frame itself lost) and escalated to the
	// reactive ladder.
	FecHeals, StripeDefeats int64
}

// ActionKind classifies what a Machine wants its driver to do next.
type ActionKind int

const (
	// ActWait blocks on the broadcast until Action.Wake, then polls again.
	ActWait ActionKind = iota
	// ActRepair requests one unicast round trip for chunk Action.Idx now.
	ActRepair
	// ActGap (Observe mode) reports chunk Action.Idx overdue, exactly once.
	ActGap
	// ActNack asks for one gap-bitmap NACK round trip covering
	// Action.Chunks; the driver reports the reply via NackResult.
	ActNack
)

// Action is one decision from Next.
type Action struct {
	Kind ActionKind
	// Idx is the chunk for ActRepair/ActGap.
	Idx int
	// Attempt is the 1-based repair attempt ActRepair begins.
	Attempt int
	// Wake is when to poll again for ActWait.
	Wake time.Time
	// Chunks are the missing chunk indices (ascending) for ActNack.
	Chunks []int
}

// RepairOutcome classifies one repair round trip's result.
type RepairOutcome int

const (
	// RepairOK recovered the chunk.
	RepairOK RepairOutcome = iota
	// RepairBusy is admission pushback: flow control, not failure.
	RepairBusy
	// RepairFailed is a transport or protocol failure, retried with
	// exponential backoff up to the attempt cap.
	RepairFailed
	// RepairDisabled reports the repair plane gone for the session
	// (server draining); the chunk rides the broadcast to its deadline.
	RepairDisabled
)

// Disposition reports what RepairResult did with the chunk.
type Disposition int

const (
	// Repaired: the chunk is recovered and booked.
	Repaired Disposition = iota
	// Rescheduled: a retry is planned at a backoff-jittered time.
	Rescheduled
	// Parked: no retry planned; the chunk waits on the broadcast.
	Parked
	// LostNow: the attempt cap is spent; the chunk was declared lost.
	LostNow
)

// Machine is the loader state machine for one fragment reception. It is
// not safe for concurrent use; the cohort multiplexer serializes access
// per cohort and the live client drives one machine per loader.
type Machine struct {
	p        FragmentParams
	nchunks  int
	spacing  time.Duration
	start    time.Time
	deadline time.Time
	wantSeq  uint32
	maxTries int

	have     []bool
	got      int
	tryAt    []time.Time
	attempts []int
	stats    MachineStats

	// NACK ladder state (nack.go); nackPhase is nil unless NackEnabled,
	// which keeps every legacy path untouched. nackSeq numbers armed
	// aggregation windows, providing the jitter stream.
	nackPhase     []uint8
	nackTries     []uint8
	nackAt        time.Time
	nackSeq       uint64
	nackWindow    time.Duration
	maxNackRounds int

	// fecUntil, nil unless FecGroup is set, holds each chunk's
	// stripe-defeat instant: a missing chunk takes no reactive action
	// before it, and the defeat instant becomes the chunk's ladder
	// anchor when the hold expires unhealed. A zero entry means the
	// hold is over (defeated, healed, or reopened by the cohort).
	fecUntil []time.Time
}

// NewMachine builds the state machine for one fragment. The gap
// detector's per-chunk checkpoints are fixed at construction: the server
// paces chunk idx at start + idx*spacing, so if it has not arrived one
// Lag past that it is presumed missing and repair begins — early enough,
// though, that a repair round trip still fits before the chunk's playback
// deadline.
func NewMachine(p FragmentParams) *Machine {
	if p.GraceUnits == 0 {
		p.GraceUnits = DefaultGraceUnits
	}
	maxTries := p.MaxRepairAttempts
	if maxTries == 0 {
		maxTries = DefaultMaxRepairAttempts
	}
	nchunks := (p.TotalBytes + p.ChunkBytes - 1) / p.ChunkBytes
	period := time.Duration(p.Size) * p.Unit
	m := &Machine{
		p:        p,
		nchunks:  nchunks,
		spacing:  period / time.Duration(nchunks),
		start:    p.Epoch.Add(time.Duration(p.TuneUnit) * p.Unit),
		deadline: p.Epoch.Add(time.Duration(p.TuneUnit+p.Size)*p.Unit + time.Duration(p.GraceUnits)*p.Unit),
		wantSeq:  uint32(p.TuneUnit / p.Size),
		maxTries: maxTries,
		have:     make([]bool, nchunks),
		tryAt:    make([]time.Time, nchunks),
		attempts: make([]int, nchunks),
	}
	for idx := range m.tryAt {
		m.tryAt[idx] = m.checkpoint(idx)
	}
	if p.FecGroup > 0 {
		m.fecUntil = make([]time.Time, nchunks)
		for idx := range m.fecUntil {
			m.fecUntil[idx] = m.fecDefeatAt(idx)
		}
	}
	if p.NackEnabled && !p.DisableRepair {
		m.nackPhase = make([]uint8, nchunks)
		m.nackTries = make([]uint8, nchunks)
		m.nackWindow = p.NackWindow
		if m.nackWindow == 0 {
			m.nackWindow = 2 * m.spacing
		}
		m.maxNackRounds = p.MaxNackRounds
		if m.maxNackRounds == 0 {
			m.maxNackRounds = DefaultMaxNackRounds
		}
		// A chunk whose loss deadline leaves no room for a multicast
		// round never enters the ladder: on the tight just-in-time
		// channels the unicast plane's immediate round trip is the only
		// recovery that fits. The room required is the worst-case window
		// fire (checkpoint + window) plus a re-listen that still ends a
		// full chunk interval before the deadline (relistenBy's floor is
		// half an interval), so even a lost re-send escalates to unicast
		// in time. The bound compares grid times (checkpoint vs
		// deadline): eligibility is a pure function of the broadcast
		// geometry, never of driver scheduling.
		for idx := range m.nackPhase {
			// With a parity stripe the ladder starts at the chunk's
			// stripe-defeat instant, not its gap checkpoint, so the
			// headroom is measured from there — still a pure grid-time
			// decision.
			ladderStart := m.tryAt[idx]
			if m.fecUntil != nil && m.fecUntil[idx].After(ladderStart) {
				ladderStart = m.fecUntil[idx]
			}
			if m.LostBy(idx).Sub(ladderStart) <= m.nackWindow+m.spacing*3/2 {
				m.nackPhase[idx] = nackDone
			}
		}
	}
	return m
}

// fecDefeatAt is the grid instant at which chunk idx's parity stripe is
// declared defeated: the parity frame rides the same dispatch as the
// group's last data chunk, so half a chunk interval past that chunk's
// gap checkpoint the stripe can no longer heal anything — either the
// reconstruction already happened or the loss exceeded the stripe. The
// instant is clamped like a checkpoint (a unicast round trip must still
// fit before the loss deadline) and never precedes the chunk's own
// checkpoint. A pure function of the broadcast geometry: cohorts and
// single viewers compute identical defeat times, which is what keeps
// NACK grouping bit-identical between them.
func (m *Machine) fecDefeatAt(idx int) time.Time {
	last := (idx/m.p.FecGroup+1)*m.p.FecGroup - 1
	if last >= m.nchunks {
		last = m.nchunks - 1
	}
	t := m.checkpoint(last).Add(m.spacing / 2)
	if latest := m.LostBy(idx).Add(-m.spacing); t.After(latest) {
		t = latest
	}
	if cp := m.tryAt[idx]; t.Before(cp) {
		t = cp
	}
	return t
}

// checkpoint is the gap detector's initial per-chunk deadline (see
// NewMachine).
func (m *Machine) checkpoint(idx int) time.Time {
	expected := m.start.Add(time.Duration(idx+1) * m.spacing)
	t := expected.Add(m.p.Lag)
	if latest := m.LostBy(idx).Add(-m.spacing); t.After(latest) {
		t = latest
	}
	if t.Before(expected) {
		t = expected
	}
	return t
}

// WantSeq is the broadcast repetition this reception tunes to.
func (m *Machine) WantSeq() uint32 { return m.wantSeq }

// NChunks is the fragment's chunk count.
func (m *Machine) NChunks() int { return m.nchunks }

// Done reports whether every chunk is resolved (received, repaired, or
// declared lost).
func (m *Machine) Done() bool { return m.got >= m.nchunks }

// Have reports whether chunk idx is resolved.
func (m *Machine) Have(idx int) bool { return m.have[idx] }

// Attempts returns how many repair round trips chunk idx has consumed.
func (m *Machine) Attempts(idx int) int { return m.attempts[idx] }

// Stats returns the recovery counters accumulated so far.
func (m *Machine) Stats() MachineStats { return m.stats }

// Deadline is the receive cutoff: the broadcast's nominal end plus grace.
func (m *Machine) Deadline() time.Time { return m.deadline }

// ChunkLen returns chunk idx's payload length (the tail chunk may be
// short).
func (m *Machine) ChunkLen(idx int) int {
	if rem := m.p.TotalBytes - idx*m.p.ChunkBytes; rem < m.p.ChunkBytes {
		return rem
	}
	return m.p.ChunkBytes
}

// PlayAt is when chunk idx's first byte is consumed by the player.
func (m *Machine) PlayAt(idx int) time.Time {
	off := idx * m.p.ChunkBytes
	base := m.p.Epoch.Add(time.Duration(m.p.PlayUnit) * m.p.Unit)
	return base.Add(time.Duration(float64(off) / float64(m.p.BytesPerUnit) * float64(m.p.Unit)))
}

// LostBy is the point past which chunk idx can no longer play jitter-free;
// recovery gives up there (bounded by the receive cutoff for chunks whose
// playback lies far in the future).
func (m *Machine) LostBy(idx int) time.Time {
	lb := m.PlayAt(idx).Add(m.p.Slack)
	if lb.After(m.deadline) {
		return m.deadline
	}
	return lb
}

// markLost books chunk idx as unrecoverable.
func (m *Machine) markLost(idx int) {
	m.have[idx] = true
	m.got++
	m.stats.Lost++
	if m.p.OnLost != nil {
		m.p.OnLost(idx, m.attempts[idx])
	}
}

// repairable reports whether chunk idx may still be pulled over unicast.
func (m *Machine) repairable(idx int) bool {
	if m.p.DisableRepair || m.p.Observe || m.attempts[idx] >= m.maxTries {
		return false
	}
	return m.p.RepairsEnabled == nil || m.p.RepairsEnabled()
}

// gapPending reports whether chunk idx still owes an ActGap notification
// (Observe mode: tryAt is cleared once the gap is handed over).
func (m *Machine) gapPending(idx int) bool {
	return m.p.Observe && !m.tryAt[idx].IsZero()
}

// Next runs one recovery pass at time now: overdue chunks are declared
// lost, the first due repair (or, in Observe mode, undelivered gap
// notification) is returned, and otherwise the next deadline to wake at.
// Drivers loop: act on the returned action, then call Next again with a
// fresh now until Done.
func (m *Machine) Next(now time.Time) Action {
	next := m.deadline
	nackDue := false
	var nackAnchor time.Time
	for idx := 0; idx < m.nchunks; idx++ {
		if m.have[idx] {
			continue
		}
		lb := m.LostBy(idx)
		if !now.Before(lb) {
			if m.p.Observe && m.tryAt[idx].IsZero() {
				// The gap was handed to the per-viewer repair ledgers; they
				// own its outcome, so the shared machine closes it silently.
				m.have[idx] = true
				m.got++
			} else {
				m.markLost(idx)
			}
			continue
		}
		if m.fecUntil != nil && !m.fecUntil[idx].IsZero() {
			if now.Before(m.fecUntil[idx]) {
				// The parity stripe may still heal this chunk for free;
				// every reactive rung holds until the defeat instant.
				if t := m.fecUntil[idx]; t.Before(next) {
					next = t
				}
				if lb.Before(next) {
					next = lb
				}
				continue
			}
			// Stripe defeated: burst loss beyond its reach, or the parity
			// frame itself lost. The reactive ladder starts here, anchored
			// at the defeat instant — a grid time — so the aggregation
			// window of a defeated burst arms from stripe-defeat time, not
			// first-gap time.
			if m.fecUntil[idx].After(m.tryAt[idx]) {
				m.stats.StripeDefeats++
				m.tryAt[idx] = m.fecUntil[idx]
			}
			m.fecUntil[idx] = time.Time{}
		}
		if m.nackPhase != nil && m.nackPhase[idx] != nackDone {
			// Multicast-first: the chunk is still in the NACK ladder.
			if m.nackPhase[idx] == nackWait && !now.Before(m.tryAt[idx]) {
				// The re-listen deadline passed without the re-send.
				m.escalateNack(idx, now)
			}
			if m.nackPhase[idx] == nackPre && !now.Before(m.tryAt[idx]) {
				if int(m.nackTries[idx]) >= m.maxNackRounds && m.nackAt.IsZero() {
					// Round cap spent: the unicast plane takes over now.
					m.nackPhase[idx] = nackDone
				} else {
					nackDue = true
					if nackAnchor.IsZero() || m.tryAt[idx].Before(nackAnchor) {
						nackAnchor = m.tryAt[idx]
					}
				}
			}
			if m.nackPhase[idx] != nackDone {
				if t := m.tryAt[idx]; now.Before(t) && t.Before(next) {
					next = t
				}
				if lb.Before(next) {
					next = lb
				}
				continue
			}
		}
		if m.gapPending(idx) {
			if !now.Before(m.tryAt[idx]) {
				// Hand the gap to the per-viewer repair plane exactly once;
				// the shared machine keeps only the loss deadline.
				m.tryAt[idx] = time.Time{}
				return Action{Kind: ActGap, Idx: idx}
			}
			if m.tryAt[idx].Before(next) {
				next = m.tryAt[idx]
			}
		}
		if m.repairable(idx) {
			if !now.Before(m.tryAt[idx]) {
				return Action{Kind: ActRepair, Idx: idx, Attempt: m.attempts[idx] + 1}
			}
			if m.tryAt[idx].Before(next) {
				next = m.tryAt[idx]
			}
		}
		if lb.Before(next) {
			next = lb
		}
	}
	// Arm, then fire, the NACK aggregation window: one seeded-jittered
	// window gathers a whole burst of losses into one gap bitmap. The
	// window is anchored at the earliest due checkpoint — a grid time —
	// not at the wall clock, and fireNack admits chunks by comparing
	// their checkpoints against the scheduled fire time, so which chunks
	// share a bitmap is a pure function of the loss pattern and the seed:
	// driver scheduling latency cannot split or merge bursts. (The
	// cohort-equivalence golden tests assert exactly this.)
	if nackDue && m.nackAt.IsZero() {
		m.nackSeq++
		m.nackAt = nackAnchor.Add(m.p.Jitter(NackJitterKey(m.p.Channel), m.nackSeq, m.nackWindow))
	}
	if !m.nackAt.IsZero() {
		if !now.Before(m.nackAt) {
			until := m.nackAt
			m.nackAt = time.Time{}
			if chunks := m.fireNack(until, now); len(chunks) > 0 {
				m.stats.Nacks++
				return Action{Kind: ActNack, Chunks: chunks}
			}
			// Everything the window covered healed before it fired: the
			// re-send another viewer's NACK triggered reached us first.
			m.stats.NacksSuppressed++
		} else if m.nackAt.Before(next) {
			next = m.nackAt
		}
	}
	return Action{Kind: ActWait, Wake: next}
}

// ChunkVerdict reports how an arriving broadcast chunk was booked.
type ChunkVerdict int

const (
	// Accepted: a fresh chunk, booked (and jitter-checked).
	Accepted ChunkVerdict = iota
	// Duplicate: already resolved; the retransmission was discarded.
	Duplicate
)

// Chunk books the broadcast arrival of chunk idx at time now. Data landing
// after its playback time plus slack counts as jitter.
func (m *Machine) Chunk(idx int, now time.Time) ChunkVerdict {
	if m.have[idx] {
		m.stats.Duplicates++
		return Duplicate
	}
	if m.nackPhase != nil && m.nackPhase[idx] == nackWait {
		// Healed by the multicast re-send while re-listening.
		m.stats.NackRepaired++
	}
	m.have[idx] = true
	m.got++
	if now.After(m.PlayAt(idx).Add(m.p.Slack)) {
		m.stats.Late++
	}
	return Accepted
}

// FecHealed books chunk idx reconstructed locally from the parity
// stripe at time now. A heal is an arrival with zero control cost: it
// counts FecHeals, and — when it lands before the chunk's aggregation
// window ever armed — NacksSuppressed, with no nackPre state churn at
// all (the chunk was holding on the stripe, never in the window). A
// heal that lands after the ladder engaged is booked like a broadcast
// arrival (NackRepaired while re-listening, Late past playback).
func (m *Machine) FecHealed(idx int, now time.Time) ChunkVerdict {
	if m.have[idx] {
		m.stats.Duplicates++
		return Duplicate
	}
	m.stats.FecHeals++
	if m.fecUntil != nil && !m.fecUntil[idx].IsZero() {
		if m.nackPhase != nil && m.nackPhase[idx] != nackDone {
			// The stripe beat the window to it: one NACK that will now
			// never be sent.
			m.stats.NacksSuppressed++
		}
		m.fecUntil[idx] = time.Time{}
	}
	if m.nackPhase != nil && m.nackPhase[idx] == nackWait {
		m.stats.NackRepaired++
	}
	m.have[idx] = true
	m.got++
	if now.After(m.PlayAt(idx).Add(m.p.Slack)) {
		m.stats.Late++
	}
	return Accepted
}

// ResolveRepaired marks a still-missing chunk resolved outside the
// broadcast — the cohort multiplexer calls it when every viewer has
// recovered the chunk over unicast, so the shared machine need not hold
// the fragment open to its deadline. Unlike Chunk it books no arrival
// stats (the per-viewer ledgers own them). It reports whether the chunk
// was still outstanding.
func (m *Machine) ResolveRepaired(idx int) bool {
	if m.have[idx] {
		return false
	}
	m.have[idx] = true
	m.got++
	return true
}

// Reopen reverses a ResolveRepaired: the chunk becomes outstanding again
// with its construction-time gap checkpoint and a zero attempt count. The
// cohort multiplexer materializes per-viewer machines lazily — at the
// first divergence every chunk except the diverging one is pre-resolved —
// and Reopen re-arms a chunk when a later gap on the same fragment
// diverges too, leaving the machine exactly as if the chunk had never
// been resolved.
func (m *Machine) Reopen(idx int) {
	if !m.have[idx] {
		return
	}
	m.have[idx] = false
	m.got--
	m.attempts[idx] = 0
	m.tryAt[idx] = m.checkpoint(idx)
	if m.nackPhase != nil {
		// A reopened chunk is already being repaired over unicast by the
		// per-viewer plane; the ladder does not re-enter for it.
		m.nackPhase[idx] = nackDone
	}
	if m.fecUntil != nil {
		// Likewise the stripe: the per-viewer plane owns the chunk.
		m.fecUntil[idx] = time.Time{}
	}
}

// RepairResult applies one repair round trip's outcome to chunk idx,
// mirroring the live client's recovery policy exactly:
//
//   - RepairOK books the chunk (jitter-checked at now).
//   - RepairBusy reschedules at now + hint (or two chunk intervals when
//     the hint is zero: the answer is in flight on the broadcast group)
//     plus half-window full jitter, so viewers released together do not
//     re-storm.
//   - RepairFailed retries under full-jitter exponential backoff until
//     the attempt cap, then declares the chunk lost.
//   - RepairDisabled parks the chunk on the broadcast.
//
// The attempt counter increments for every outcome, and jitter streams key
// on the post-increment count so no two retries share a draw.
func (m *Machine) RepairResult(idx int, outcome RepairOutcome, retryAfter time.Duration, now time.Time) Disposition {
	m.attempts[idx]++
	switch outcome {
	case RepairOK:
		if !m.have[idx] {
			m.have[idx] = true
			m.got++
			m.stats.Repaired++
			if now.After(m.PlayAt(idx).Add(m.p.Slack)) {
				m.stats.Late++
			}
		}
		return Repaired
	case RepairBusy:
		wait := retryAfter
		if wait <= 0 {
			wait = 2 * m.spacing
		}
		m.tryAt[idx] = now.Add(wait +
			m.p.Jitter(RepairJitterKey(m.p.Channel, idx), uint64(m.attempts[idx]), wait/2+time.Millisecond))
		return Rescheduled
	case RepairDisabled:
		return Parked
	default: // RepairFailed
		if m.attempts[idx] >= m.maxTries {
			m.markLost(idx)
			return LostNow
		}
		window := 4 * time.Millisecond << m.attempts[idx]
		m.tryAt[idx] = now.Add(m.p.Jitter(RepairJitterKey(m.p.Channel, idx), uint64(m.attempts[idx]), window))
		return Rescheduled
	}
}
