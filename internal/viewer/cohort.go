package viewer

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"skyscraper/internal/content"
	"skyscraper/internal/core"
	"skyscraper/internal/mcast"
	"skyscraper/internal/series"
	"skyscraper/internal/wire"
)

// cohort is one set of viewers tuned identically: same video, same
// playback start unit, hence the same channel set, the same broadcast
// repetitions, and — by repetition invariance — byte-identical datagrams.
// One pair of loader goroutines receives for the whole cohort; shared
// counters here apply to every member, and per-viewer ledgers take over
// only where losses make outcomes diverge.
type cohort struct {
	mux           *Mux
	video         int
	playStartUnit int64
	viewers       []int // global viewer IDs, ascending

	// Shared outcome counters, each applying to every viewer of the
	// cohort; written by the two loader goroutines.
	late, dup, lostShared, lostSharedBytes, byteErrors atomic.Int64

	// NACK-ladder counters. nacks and nackSuppressed are cohort-level
	// events (one NACK speaks for every member); nackRepaired chunks heal
	// every member at once, so the aggregator multiplies it by the cohort
	// size. nackBusy counts admission pushback on NACK round trips.
	nacks, nackSuppressed, nackRepaired, nackBusy atomic.Int64

	// Parity-stripe counters. fecHeals chunks are reconstructed on the
	// shared path before any divergence and heal every member at once
	// (multiplied by the cohort size, like nackRepaired); heals of
	// already-diverged chunks are booked per viewer through the machines
	// instead, because a member may have unicast-repaired the chunk
	// already (the heal is that viewer's duplicate, not a heal).
	// stripeDefeats are cohort-level escalation events, one per defeated
	// gap (like nacks).
	fecHeals, stripeDefeats atomic.Int64
}

func (c *cohort) run(groups []series.Group) error {
	m := c.mux
	m.activeCohorts.Inc()
	m.liveViewers.Add(int64(len(c.viewers)))
	defer func() {
		m.activeCohorts.Dec()
		m.liveViewers.Add(-int64(len(c.viewers)))
	}()

	plan, err := core.PlanForGroups(groups, c.playStartUnit)
	if err != nil {
		return fmt.Errorf("viewer: planning cohort (video %d, start %d): %w", c.video, c.playStartUnit, err)
	}
	byLoader := map[core.LoaderID][]core.Download{}
	for _, d := range plan.Downloads {
		byLoader[d.Loader] = append(byLoader[d.Loader], d)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for _, ld := range []core.LoaderID{core.OddLoader, core.EvenLoader} {
		downloads := byLoader[ld]
		if len(downloads) == 0 {
			continue
		}
		wg.Add(1)
		go func(ld core.LoaderID, downloads []core.Download) {
			defer wg.Done()
			if err := c.loader(downloads); err != nil {
				errs <- fmt.Errorf("viewer: cohort (video %d, start %d) %v loader: %w", c.video, c.playStartUnit, ld, err)
			}
		}(ld, downloads)
	}
	wg.Wait()
	close(errs)
	return <-errs
}

// tuneEntry is one fragment on a loader's tuning schedule: which channel
// to receive, when its join lead opens, and — once the tuner handoff has
// fired — the live subscription opened from inside the previous
// fragment's receive loop.
type tuneEntry struct {
	channel  int
	g        series.Group
	j        int
	tuneUnit int64
	joinAt   time.Time
	sub      *mcast.Subscription // non-nil once tuned
}

// loader receives this loader's transmission groups in order — the same
// two-service-routine shape as the live client, but over a shared
// subscription instead of a private socket.
func (c *cohort) loader(downloads []core.Download) error {
	m := c.mux
	// Flatten the schedule so each fragment's receive loop can see its
	// successor: consecutive broadcast windows on a skyscraper loader abut
	// exactly, so the handoff between them must not hinge on how fast the
	// previous fragment's repair tail drains.
	lead := time.Duration(m.cfg.JoinLeadFrac * float64(m.unit))
	var entries []*tuneEntry
	for _, d := range downloads {
		for j := 0; j < d.Group.Count; j++ {
			tuneUnit := d.FragmentStart(j)
			entries = append(entries, &tuneEntry{
				channel:  d.Group.First + j,
				g:        d.Group,
				j:        j,
				tuneUnit: tuneUnit,
				joinAt:   m.epoch.Add(time.Duration(tuneUnit)*m.unit - lead),
			})
		}
	}
	for i, e := range entries {
		var next *tuneEntry
		if i+1 < len(entries) {
			next = entries[i+1]
		}
		if err := c.receiveFragment(e, next); err != nil {
			if next != nil && next.sub != nil {
				// The handoff had already tuned the successor; release it.
				m.rcv.Unsubscribe(next.sub)
				m.jm.leave(mcast.Group{Video: c.video, Channel: next.channel})
			}
			return fmt.Errorf("group %d %v channel %d: %w", e.g.Index, e.g, e.channel, err)
		}
	}
	return nil
}

// tune opens the cohort's tap on entry e's channel: subscribe first so no
// datagram lands between the join ack and the tap, then join.
func (c *cohort) tune(e *tuneEntry) error {
	m := c.mux
	grp := mcast.Group{Video: c.video, Channel: e.channel}
	// Ring slots must hold the largest frame the group carries: with a
	// parity stripe that is the parity frame (count byte + coverage
	// bitmap on top of a chunk-sized block), not the data frame.
	slotBytes := wire.EncodedSize(m.w.ChunkBytes)
	if m.w.FecGroup > 0 {
		slotBytes = wire.EncodedSize(wire.ParityOverhead(m.w.FecGroup, m.w.ChunkBytes))
	}
	sub, err := m.rcv.Subscribe(grp, m.cfg.SubDepth, slotBytes)
	if err != nil {
		return err
	}
	if err := m.jm.join(grp); err != nil {
		m.rcv.Unsubscribe(sub)
		return err
	}
	e.sub = sub
	return nil
}

// cohortFrag is one fragment reception shared by the whole cohort: the
// Observe-mode machine the loader drives, plus the divergence state the
// worker pool picks up when gaps appear.
type cohortFrag struct {
	c         *cohort
	channel   int
	videoBase int64
	wantSeq   uint32
	// params is the per-viewer machine template (repair mode); the
	// loader's shared machine runs an Observe-mode copy of it.
	params FragmentParams
	m      *Machine

	// diverged marks chunks handed to the per-viewer plane (loader-owned).
	diverged []bool
	// arrived records the broadcast arrival (unix nanos) of each diverged
	// chunk, once; workers book it into viewer machines that still miss
	// it. healed marks the recorded arrival as a stripe reconstruction
	// (set before the arrived store publishes it), so workers book it as
	// a FEC heal rather than a broadcast chunk.
	arrived []atomic.Int64
	healed  []atomic.Bool
	// vfs are the per-viewer fragments, materialized at first divergence.
	vfs []*viewerFrag
	// pending counts unfinished viewer fragments; inflight counts
	// commands queued to workers. The fragment completes when the shared
	// machine is done and both reach zero.
	pending  atomic.Int64
	inflight atomic.Int64
	wake     chan struct{}

	// stripe reassembles the broadcast's parity stripe once for the whole
	// cohort (nil when the server sends none); heals is its reusable
	// reconstruction buffer, consumed before the next frame is read.
	stripe *Stripe
	heals  []Heal
}

// notify nudges the loader to re-check the completion condition.
func (f *cohortFrag) notify() {
	select {
	case f.wake <- struct{}{}:
	default:
	}
}

// viewerFrag is one viewer's divergent view of a fragment. After the
// loader materializes it, every field is owned by the viewer's worker.
type viewerFrag struct {
	f      *cohortFrag
	viewer int
	vm     *Machine
	done   bool
	// folded is the machine-stats prefix already credited to the ledger:
	// a viewer can finish, be reopened by a later gap, and finish again,
	// so each finish folds only the delta since the last one.
	folded MachineStats
}

func chunkLen(totalBytes, chunkBytes, idx int) int {
	if rem := totalBytes - idx*chunkBytes; rem < chunkBytes {
		return rem
	}
	return chunkBytes
}

// receiveFragment tunes one channel for the whole cohort: one join, one
// subscription, one decode/verify pass per datagram regardless of the
// cohort's size.
//
// When next is non-nil it is the successor fragment on the same loader,
// and this loop performs the tuner handoff itself: it tunes next once
// its join lead opens, so next's frames accumulate in its subscription
// ring while this fragment's repair tail drains — mirroring the
// single-tuner client, where they queue in the socket buffer.
func (c *cohort) receiveFragment(e, next *tuneEntry) error {
	channel, g, j, tuneUnit := e.channel, e.g, e.j, e.tuneUnit
	m := c.mux
	size := g.Size
	totalBytes := int(size) * m.w.BytesPerUnit
	f := &cohortFrag{
		c:         c,
		channel:   channel,
		videoBase: (g.StartUnit + int64(j)*size) * int64(m.w.BytesPerUnit),
		wantSeq:   uint32(tuneUnit / size),
		params: FragmentParams{
			Video:        c.video,
			Channel:      channel,
			Size:         size,
			TuneUnit:     tuneUnit,
			PlayUnit:     c.playStartUnit + g.StartUnit + int64(j)*size,
			TotalBytes:   totalBytes,
			ChunkBytes:   m.w.ChunkBytes,
			BytesPerUnit: m.w.BytesPerUnit,
			Epoch:        m.epoch,
			Unit:         m.unit,
			Slack:        time.Duration(m.cfg.SlackFrac * float64(m.unit)),
			Lag:          time.Duration(m.cfg.RepairLagFrac * float64(m.unit)),
			FecGroup:     m.w.FecGroup,
		},
		wake: make(chan struct{}, 1),
	}
	op := f.params
	// With repairs on, the shared machine only observes: gaps are handed
	// to the per-viewer plane. With repairs off there is nothing to
	// diverge over, so it keeps the deadline accounting itself and every
	// loss is cohort-wide.
	op.Observe = !m.cfg.DisableRepair
	op.DisableRepair = m.cfg.DisableRepair
	op.OnLost = func(idx, _ int) {
		m.cfg.Logf("viewer: cohort (video %d, start %d) channel %d lost chunk %d cohort-wide",
			c.video, c.playStartUnit, channel, idx)
		c.lostShared.Add(1)
		c.lostSharedBytes.Add(int64(chunkLen(totalBytes, m.w.ChunkBytes, idx)))
	}
	// The shared machine runs the multicast-first NACK ladder before any
	// gap is handed to the per-viewer unicast plane: one NACK speaks for
	// the whole cohort, and one re-send heals it. Timing keys on the first
	// member's seed, so a single-viewer cohort NACKs bit-identically to a
	// real client seeded with ViewerSeed — the golden-equivalence anchor.
	op.NackEnabled = m.w.NackRepair && !m.cfg.DisableNack
	if op.NackEnabled {
		seed := ViewerSeed(m.cfg.Seed, c.viewers[0])
		op.Jitter = func(key, stream uint64, window time.Duration) time.Duration {
			return JitterIn(seed, key, stream, window)
		}
	}
	f.m = NewMachine(op)
	f.diverged = make([]bool, f.m.NChunks())
	f.arrived = make([]atomic.Int64, f.m.NChunks())
	f.healed = make([]atomic.Bool, f.m.NChunks())
	// One stripe reassembler serves the whole cohort: a reconstruction on
	// the shared path heals every member at once, exactly like a chunk
	// caught off the broadcast.
	f.stripe = NewStripe(m.w.FecGroup, m.w.FecMode, m.w.ChunkBytes, f.m.NChunks())

	// Join ahead of the broadcast start — unless the previous fragment's
	// receive loop already tuned this entry during its handoff overlap.
	if e.sub == nil {
		if d := time.Until(e.joinAt); d > 0 {
			time.Sleep(d)
		}
		if err := c.tune(e); err != nil {
			return err
		}
	}
	sub := e.sub
	grp := mcast.Group{Video: c.video, Channel: channel}
	defer m.rcv.Unsubscribe(sub)
	defer m.jm.leave(grp)

	// Book the backlog that accumulated in the subscription ring during
	// the tuner handoff before the machine's first deadline pass, so a
	// boundary chunk that already arrived can never be mistaken for a
	// gap, however late this loop starts. (The single-tuner client does
	// the same with the handoff queue its predecessor read for it.)
drain:
	for {
		select {
		case slot, ok := <-sub.Ready():
			if !ok {
				return errors.New("shared receiver closed")
			}
			err := c.handleFrame(f, sub.Frame(slot), time.Now())
			sub.Release(slot)
			if err != nil {
				return err
			}
		default:
			break drain
		}
	}

	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		if f.vfs != nil && f.pending.Load() == 0 && f.inflight.Load() == 0 {
			// Every viewer has resolved its divergent chunks (repaired or
			// lost), so the shared machine need not hold them open to
			// their loss deadlines — lingering here would delay this
			// loader's next fragment past its join time. Only the loader
			// goroutine submits work, so the zero reading is stable.
			for idx, d := range f.diverged {
				if d && !f.m.Have(idx) {
					f.m.ResolveRepaired(idx)
				}
			}
		}
		if f.m.Done() && f.pending.Load() == 0 && f.inflight.Load() == 0 {
			break
		}
		now := time.Now()
		// Tuner handoff: once the successor's join lead opens, tune it
		// from here, so whether its first chunks are caught off the
		// broadcast no longer depends on how fast this loop exits.
		if next != nil && next.sub == nil && !now.Before(next.joinAt) {
			if err := c.tune(next); err != nil {
				return err
			}
		}
		var wake time.Time
		if !f.m.Done() {
			act := f.m.Next(now)
			if act.Kind == ActGap {
				c.diverge(f, act.Idx)
				continue
			}
			if act.Kind == ActNack {
				accepted, err := m.jm.cc.nack(c.video, channel, f.wantSeq, act.Chunks)
				if err != nil {
					var busy *busyError
					if errors.As(err, &busy) {
						c.nackBusy.Add(1)
					}
					m.cfg.Logf("viewer: cohort (video %d, start %d) channel %d nack (%d chunks) failed: %v",
						c.video, c.playStartUnit, channel, len(act.Chunks), err)
					accepted = nil
				}
				f.m.NackResult(act.Chunks, accepted, time.Now())
				continue
			}
			if f.m.Done() {
				continue // that pass resolved the rest
			}
			wake = act.Wake
		} else {
			// Only worker completions remain; f.wake is the primary
			// signal, the timer a backstop.
			wake = now.Add(20 * time.Millisecond)
		}
		if next != nil && next.sub == nil && next.joinAt.Before(wake) {
			wake = next.joinAt
		}
		d := wake.Sub(now)
		if d < time.Millisecond {
			d = time.Millisecond
		}
		resetTimer(timer, d)
		select {
		case slot, ok := <-sub.Ready():
			if !ok {
				return errors.New("shared receiver closed")
			}
			err := c.handleFrame(f, sub.Frame(slot), time.Now())
			sub.Release(slot)
			if err != nil {
				return err
			}
			// The batched ingress rung lands whole contiguous runs in the
			// ring at once; book the rest of the burst now — bounded by
			// the ring depth so a saturated group cannot starve the
			// repair passes — instead of paying one scheduler pass and
			// one deadline recomputation per frame.
			now = time.Now()
		burst:
			for i := 1; i < m.cfg.SubDepth; i++ {
				select {
				case slot, ok := <-sub.Ready():
					if !ok {
						return errors.New("shared receiver closed")
					}
					err := c.handleFrame(f, sub.Frame(slot), now)
					sub.Release(slot)
					if err != nil {
						return err
					}
				default:
					break burst
				}
			}
		case <-f.wake:
		case <-timer.C:
		}
	}

	// Fold the shared machine's ledger in: these outcomes hit every
	// viewer of the cohort identically. (Shared losses were booked
	// through OnLost, with their byte counts.)
	st := f.m.Stats()
	c.late.Add(st.Late)
	c.dup.Add(st.Duplicates)
	c.nacks.Add(st.Nacks)
	c.nackSuppressed.Add(st.NacksSuppressed)
	c.nackRepaired.Add(st.NackRepaired)
	c.fecHeals.Add(st.FecHeals)
	c.stripeDefeats.Add(st.StripeDefeats)
	return nil
}

// handleFrame books one datagram for the whole cohort: one decode, one
// CRC check, one content verification — O(1) in the cohort's size. This
// is the steady-state hot path; on the converged branch it allocates
// nothing.
func (c *cohort) handleFrame(f *cohortFrag, frame []byte, now time.Time) error {
	m := c.mux
	if wire.IsParity(frame) {
		// Parity rides the same group as data; fold it into the cohort's
		// stripe. Damaged or stray parity is dropped silently — redundancy
		// must never fail a reception that the data path could finish.
		if f.stripe == nil || f.m.Done() {
			return nil
		}
		p, err := wire.DecodeParity(frame)
		if err != nil || int(p.Video) != c.video || int(p.Channel) != f.channel || p.Seq != f.wantSeq {
			return nil
		}
		f.heals = f.stripe.Parity(&p, f.heals[:0])
		return c.bookHeals(f, now)
	}
	ch, err := wire.Decode(frame)
	if err != nil {
		if errors.Is(err, wire.ErrBadCRC) {
			c.byteErrors.Add(1)
			return nil
		}
		return err
	}
	if int(ch.Video) != c.video || int(ch.Channel) != f.channel || ch.Seq != f.wantSeq {
		return nil // stray datagram from an earlier membership or repetition
	}
	if int(ch.Total) != f.params.TotalBytes || int(ch.Offset)%m.w.ChunkBytes != 0 || int(ch.Offset) >= f.params.TotalBytes {
		return fmt.Errorf("inconsistent chunk: offset %d total %d", ch.Offset, ch.Total)
	}
	if f.m.Done() {
		return nil // post-deadline stray
	}
	idx := int(ch.Offset) / m.w.ChunkBytes
	if f.diverged[idx] {
		if f.arrived[idx].Load() != 0 {
			// A further broadcast copy of an already-recorded divergent
			// chunk: booked cohort-wide.
			c.dup.Add(1)
			return nil
		}
		if bad := content.Verify(ch.Payload, c.video, f.videoBase+int64(ch.Offset)); bad >= 0 {
			c.byteErrors.Add(1)
		}
		f.arrived[idx].Store(now.UnixNano())
		// The shared machine no longer waits on it; viewers that still
		// miss it book the recorded arrival on their own clocks.
		f.m.ResolveRepaired(idx)
		for _, vf := range f.vfs {
			m.submit(vf, -1)
		}
		if f.stripe != nil {
			f.heals = f.stripe.Data(idx, ch.Payload, f.heals[:0])
			return c.bookHeals(f, now)
		}
		return nil
	}
	if f.m.Chunk(idx, now) == Duplicate {
		return nil
	}
	if bad := content.Verify(ch.Payload, c.video, f.videoBase+int64(ch.Offset)); bad >= 0 {
		c.byteErrors.Add(1)
	}
	if f.stripe != nil {
		f.heals = f.stripe.Data(idx, ch.Payload, f.heals[:0])
		return c.bookHeals(f, now)
	}
	return nil
}

// bookHeals books every chunk the stripe just reconstructed, for the
// whole cohort at once. A heal is indistinguishable from a broadcast
// arrival except in its accounting: the shared machine counts it as a
// FEC heal (suppressing the NACK its window would have sent), and a
// heal of an already-diverged chunk feeds the per-viewer plane through
// the same recorded-arrival path a late broadcast copy would use —
// marked healed, so each viewer's machine books it as its own FEC heal
// or, if that viewer already unicast-repaired the chunk, a duplicate.
// Heal payloads alias the stripe's pooled accumulators, so they are
// consumed here, before the next frame is read.
func (c *cohort) bookHeals(f *cohortFrag, now time.Time) error {
	m := c.mux
	for _, h := range f.heals {
		idx := h.Idx
		payload := h.Payload[:chunkLen(f.params.TotalBytes, f.params.ChunkBytes, idx)]
		off := f.videoBase + int64(idx)*int64(f.params.ChunkBytes)
		if f.diverged[idx] {
			if f.arrived[idx].Load() != 0 {
				c.dup.Add(1)
				continue
			}
			if bad := content.Verify(payload, c.video, off); bad >= 0 {
				c.byteErrors.Add(1)
			}
			f.healed[idx].Store(true)
			f.arrived[idx].Store(now.UnixNano())
			f.m.ResolveRepaired(idx)
			for _, vf := range f.vfs {
				m.submit(vf, -1)
			}
			continue
		}
		if f.m.FecHealed(idx, now) == Duplicate {
			continue
		}
		if bad := content.Verify(payload, c.video, off); bad >= 0 {
			c.byteErrors.Add(1)
		}
	}
	f.heals = f.heals[:0]
	return nil
}

// diverge hands a gap to the per-viewer repair plane. The first gap of a
// fragment materializes one machine per viewer — with every other chunk
// pre-resolved, so per-viewer work stays proportional to divergence, not
// fragment size; later gaps re-arm (reopen) the existing machines.
func (c *cohort) diverge(f *cohortFrag, idx int) {
	f.diverged[idx] = true
	if f.vfs == nil {
		f.vfs = make([]*viewerFrag, len(c.viewers))
		f.pending.Store(int64(len(c.viewers)))
		for i, v := range c.viewers {
			f.vfs[i] = c.newViewerFrag(f, v, idx)
		}
		for _, vf := range f.vfs {
			c.mux.submit(vf, -1)
		}
		return
	}
	for _, vf := range f.vfs {
		c.mux.submit(vf, idx)
	}
}

// newViewerFrag builds viewer v's machine for fragment f with only the
// diverging chunk outstanding. Its policy parameters mirror the live
// client's exactly, keyed on the viewer's own seed.
func (c *cohort) newViewerFrag(f *cohortFrag, v, gapIdx int) *viewerFrag {
	m := c.mux
	p := f.params
	p.RepairsEnabled = func() bool { return !m.bye.Load() }
	seed := ViewerSeed(m.cfg.Seed, v)
	p.Jitter = func(key, stream uint64, window time.Duration) time.Duration {
		return JitterIn(seed, key, stream, window)
	}
	led := &m.ledgers[v]
	totalBytes, chunkBytes := f.params.TotalBytes, f.params.ChunkBytes
	p.OnLost = func(idx, _ int) {
		led.lost++
		led.lostBytes += int64(chunkLen(totalBytes, chunkBytes, idx))
	}
	vf := &viewerFrag{f: f, viewer: v, vm: NewMachine(p)}
	for x := 0; x < vf.vm.NChunks(); x++ {
		if x != gapIdx {
			vf.vm.ResolveRepaired(x)
		}
	}
	return vf
}
