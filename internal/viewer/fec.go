// Stripe reassembly: the receive half of the proactive FEC stripe. The
// broadcast interleaves one parity frame per transmission group of G
// data chunks (wire.KindParity); Stripe accumulates the running XOR
// (and, in Reed-Solomon mode, the GF(256)-weighted sum) of the group's
// arrivals so a single missing datagram — or two, with P+Q — is
// reconstructed the moment the last covering frame lands, with zero
// control round trips. Both the live client and the cohort multiplexer
// drive one Stripe per fragment reception; the accumulators are pooled
// and reused, so the steady-state receive path stays allocation-free.
package viewer

import "skyscraper/internal/wire"

// stripeSlots is how many groups a Stripe tracks at once. Groups
// broadcast (and complete) in schedule order; a handful of slots rides
// out datagram reordering, and anything older is dead weight — its
// defeat deadline has passed in the machine anyway — so the oldest
// group is evicted first.
const stripeSlots = 4

// Heal is one reconstructed chunk: the fragment-relative index and the
// recovered payload. The payload aliases a pooled accumulator — consume
// it (verify, copy, book) before the next call into the Stripe.
type Heal struct {
	Idx     int
	Payload []byte
}

// stripeState accumulates one group: a bitmap of arrived data chunks,
// and running parity folds. accP holds P ⊕ (XOR of arrived data): when
// exactly one covered chunk is missing and P arrived, accP IS that
// chunk. accQ (RS mode only) holds Q ⊕ Σ αⁱ·dataᵢ over the arrivals.
type stripeState struct {
	got        uint64
	gotN       int
	pGot, qGot bool
	accP, accQ []byte
}

func (st *stripeState) reset(chunkBytes int, rs bool) {
	st.got, st.gotN, st.pGot, st.qGot = 0, 0, false, false
	if st.accP == nil {
		st.accP = make([]byte, chunkBytes)
	} else {
		clear(st.accP)
	}
	if rs {
		if st.accQ == nil {
			st.accQ = make([]byte, chunkBytes)
		} else {
			clear(st.accQ)
		}
	}
}

// Stripe is the per-fragment reassembly buffer. Not safe for concurrent
// use; the client drives one per loader, the mux one per cohort
// fragment (both already serialize their receive paths).
type Stripe struct {
	group      int
	rs         bool
	chunkBytes int
	nchunks    int
	slots      [stripeSlots]struct {
		g  int // group index, -1 when empty
		st *stripeState
	}
	pool []*stripeState
}

// NewStripe builds the reassembly buffer for a fragment of nchunks
// chunks under a stripe of width group. mode is wire.FecModeXOR or
// wire.FecModeRS; group <= 0 returns nil (no stripe — callers treat a
// nil Stripe as FEC off).
func NewStripe(group int, mode string, chunkBytes, nchunks int) *Stripe {
	if group <= 0 {
		return nil
	}
	if group > wire.MaxFecGroup {
		group = wire.MaxFecGroup
	}
	s := &Stripe{group: group, rs: mode == wire.FecModeRS, chunkBytes: chunkBytes, nchunks: nchunks}
	for i := range s.slots {
		s.slots[i].g = -1
	}
	return s
}

// Group returns the stripe width G.
func (s *Stripe) Group() int { return s.group }

// count is how many data chunks group g covers (the tail group may be
// short).
func (s *Stripe) count(g int) int {
	c := s.nchunks - g*s.group
	if c > s.group {
		c = s.group
	}
	return c
}

// state finds or creates the accumulator for group g, evicting the
// oldest tracked group when the slots are full (reconstruction for it
// can no longer matter — see stripeSlots).
func (s *Stripe) state(g int) *stripeState {
	free := -1
	oldest := -1
	for i := range s.slots {
		switch sg := s.slots[i].g; {
		case sg == g:
			return s.slots[i].st
		case sg < 0:
			free = i
		case oldest < 0 || sg < s.slots[oldest].g:
			oldest = i
		}
	}
	if free < 0 {
		s.release(oldest)
		free = oldest
	}
	var st *stripeState
	if n := len(s.pool); n > 0 {
		st = s.pool[n-1]
		s.pool = s.pool[:n-1]
	} else {
		st = &stripeState{}
	}
	st.reset(s.chunkBytes, s.rs)
	s.slots[free].g = g
	s.slots[free].st = st
	return st
}

// release returns slot i's accumulator to the pool.
func (s *Stripe) release(i int) {
	s.pool = append(s.pool, s.slots[i].st)
	s.slots[i].g = -1
	s.slots[i].st = nil
}

// releaseGroup drops group g if tracked.
func (s *Stripe) releaseGroup(g int) {
	for i := range s.slots {
		if s.slots[i].g == g {
			s.release(i)
			return
		}
	}
}

// Data folds the arrival of data chunk idx into its group and appends
// any reconstruction it completes to heals. Duplicate arrivals are
// ignored (the accumulator must fold each chunk exactly once).
func (s *Stripe) Data(idx int, payload []byte, heals []Heal) []Heal {
	if s == nil || idx < 0 || idx >= s.nchunks {
		return heals
	}
	g := idx / s.group
	st := s.state(g)
	pos := idx - g*s.group
	if st.got&(1<<pos) != 0 {
		return heals
	}
	st.got |= 1 << pos
	st.gotN++
	wire.XorAccum(st.accP, payload)
	if s.rs {
		wire.GfMulAccum(st.accQ, payload, wire.GfExpPow(pos))
	}
	return s.tryHeal(g, st, heals)
}

// Parity folds a decoded parity frame into its group and appends any
// reconstruction it completes to heals. Frames whose geometry disagrees
// with the configured stripe (misaligned base, wrong coverage, short
// block) are dropped — the broadcast never emits them, so they are
// damage or misconfiguration, and folding them would corrupt heals.
func (s *Stripe) Parity(p *wire.Parity, heals []Heal) []Heal {
	if s == nil || int(p.Base)%s.chunkBytes != 0 {
		return heals
	}
	base := int(p.Base) / s.chunkBytes
	if base%s.group != 0 || base >= s.nchunks {
		return heals
	}
	g := base / s.group
	if p.Count != s.count(g) || len(p.Block) < s.chunkBytes {
		return heals
	}
	if p.Index == 1 && !s.rs {
		return heals
	}
	st := s.state(g)
	switch p.Index {
	case 0:
		if st.pGot {
			return heals
		}
		st.pGot = true
		wire.XorAccum(st.accP, p.Block)
	case 1:
		if st.qGot {
			return heals
		}
		st.qGot = true
		wire.XorAccum(st.accQ, p.Block)
	default:
		return heals
	}
	return s.tryHeal(g, st, heals)
}

// tryHeal reconstructs whatever the group's accumulated parity can
// prove, appending heals, and releases the group once nothing is
// missing. Heal payloads alias the group's accumulators; they stay
// valid until the next call into the Stripe (release only returns the
// buffers to the pool).
func (s *Stripe) tryHeal(g int, st *stripeState, heals []Heal) []Heal {
	count := s.count(g)
	missing := count - st.gotN
	if missing == 0 {
		s.releaseGroup(g)
		return heals
	}
	base := g * s.group
	switch {
	case missing == 1 && st.pGot:
		// accP = P ⊕ (XOR of all arrived) = the one missing chunk.
		pos := missingPos(st.got, count, 0)
		heals = append(heals, Heal{Idx: base + pos, Payload: st.accP})
		s.releaseGroup(g)
	case missing == 1 && st.qGot:
		// Only Q survived: accQ = α^pos · d, one scale recovers d.
		pos := missingPos(st.got, count, 0)
		gfScale(st.accQ, wire.GfDiv(1, wire.GfExpPow(pos)))
		heals = append(heals, Heal{Idx: base + pos, Payload: st.accQ})
		s.releaseGroup(g)
	case missing == 2 && st.pGot && st.qGot:
		// RAID-6 two-erasure solve at positions a < b:
		//   accP = d_a ⊕ d_b
		//   accQ = α^a·d_a ⊕ α^b·d_b
		// so (α^b·accP ⊕ accQ) = (α^a ⊕ α^b)·d_a.
		a := missingPos(st.got, count, 0)
		b := missingPos(st.got, count, 1)
		ca, cb := wire.GfExpPow(a), wire.GfExpPow(b)
		denom := ca ^ cb
		wire.GfMulAccum(st.accQ, st.accP, cb) // accQ ⊕= α^b·accP
		gfScale(st.accQ, wire.GfDiv(1, denom))
		wire.XorAccum(st.accP, st.accQ) // accP = d_a ⊕ d_b ⊕ d_a = d_b
		heals = append(heals, Heal{Idx: base + a, Payload: st.accQ}, Heal{Idx: base + b, Payload: st.accP})
		s.releaseGroup(g)
	}
	return heals
}

// missingPos returns the nth (0-based) unset bit among positions
// [0, count) of got.
func missingPos(got uint64, count, nth int) int {
	for pos := 0; pos < count; pos++ {
		if got&(1<<pos) == 0 {
			if nth == 0 {
				return pos
			}
			nth--
		}
	}
	return -1
}

// gfScale multiplies every byte of b by c in GF(256), in place.
func gfScale(b []byte, c byte) {
	for i, v := range b {
		if v != 0 {
			b[i] = wire.GfMul(c, v)
		}
	}
}
