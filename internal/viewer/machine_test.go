package viewer

import (
	"testing"
	"time"
)

// testParams is a small fragment with easy arithmetic: 4 chunks of 64
// bytes paced 1s apart, tuning at unit 4, playing at unit 8, so chunk
// idx is expected at epoch+(5+idx)s, plays at epoch+(8+idx)s, and is
// lost half a second later.
func testParams(epoch time.Time) FragmentParams {
	return FragmentParams{
		Video:        0,
		Channel:      2,
		Size:         4,
		TuneUnit:     4,
		PlayUnit:     8,
		TotalBytes:   256,
		ChunkBytes:   64,
		BytesPerUnit: 64,
		Epoch:        epoch,
		Unit:         time.Second,
		Slack:        500 * time.Millisecond,
		Lag:          250 * time.Millisecond,
		Jitter:       func(key, stream uint64, window time.Duration) time.Duration { return time.Millisecond },
	}
}

func TestMachineGeometry(t *testing.T) {
	epoch := time.Unix(1000, 0)
	m := NewMachine(testParams(epoch))
	if m.NChunks() != 4 {
		t.Fatalf("nchunks = %d, want 4", m.NChunks())
	}
	if m.WantSeq() != 1 {
		t.Errorf("wantSeq = %d, want 1 (tune unit 4 / size 4)", m.WantSeq())
	}
	if want := epoch.Add(14 * time.Second); !m.Deadline().Equal(want) {
		t.Errorf("deadline = %v, want %v (end + %d units grace)", m.Deadline(), want, DefaultGraceUnits)
	}
	for idx := 0; idx < 4; idx++ {
		if want := epoch.Add(time.Duration(8+idx) * time.Second); !m.PlayAt(idx).Equal(want) {
			t.Errorf("playAt(%d) = %v, want %v", idx, m.PlayAt(idx), want)
		}
		if want := m.PlayAt(idx).Add(500 * time.Millisecond); !m.LostBy(idx).Equal(want) {
			t.Errorf("lostBy(%d) = %v, want %v", idx, m.LostBy(idx), want)
		}
		if m.ChunkLen(idx) != 64 {
			t.Errorf("chunkLen(%d) = %d, want 64", idx, m.ChunkLen(idx))
		}
	}
}

func TestMachineTailChunkLen(t *testing.T) {
	p := testParams(time.Unix(1000, 0))
	p.TotalBytes = 250 // tail chunk short by 6 bytes
	m := NewMachine(p)
	if m.NChunks() != 4 {
		t.Fatalf("nchunks = %d, want 4", m.NChunks())
	}
	if m.ChunkLen(3) != 58 {
		t.Errorf("tail chunkLen = %d, want 58", m.ChunkLen(3))
	}
}

// TestMachineHappyPath: all chunks arrive on schedule; Next only ever
// waits, stats stay clean.
func TestMachineHappyPath(t *testing.T) {
	epoch := time.Unix(1000, 0)
	m := NewMachine(testParams(epoch))
	for idx := 0; idx < 4; idx++ {
		now := epoch.Add(time.Duration(5+idx)*time.Second - 100*time.Millisecond)
		if act := m.Next(now); act.Kind != ActWait {
			t.Fatalf("chunk %d: Next = %+v, want wait", idx, act)
		}
		if v := m.Chunk(idx, now); v != Accepted {
			t.Fatalf("chunk %d verdict = %v, want Accepted", idx, v)
		}
	}
	if !m.Done() {
		t.Fatal("machine not done after all chunks")
	}
	if st := m.Stats(); st != (MachineStats{}) {
		t.Errorf("clean reception dirtied stats: %+v", st)
	}
}

// TestMachineGapCheckpoint: the gap detector fires one Lag past a
// chunk's expected arrival, and Next's wake converges on that checkpoint.
func TestMachineGapCheckpoint(t *testing.T) {
	epoch := time.Unix(1000, 0)
	m := NewMachine(testParams(epoch))
	checkpoint := epoch.Add(5*time.Second + 250*time.Millisecond) // expected(0)+Lag

	act := m.Next(epoch.Add(4 * time.Second))
	if act.Kind != ActWait || !act.Wake.Equal(checkpoint) {
		t.Fatalf("Next before checkpoint = %+v, want wait until %v", act, checkpoint)
	}
	act = m.Next(checkpoint)
	if act.Kind != ActRepair || act.Idx != 0 || act.Attempt != 1 {
		t.Fatalf("Next at checkpoint = %+v, want repair chunk 0 attempt 1", act)
	}
}

// TestMachineRepairBusyThenOK: admission pushback reschedules at the
// hint plus jitter without burning the chunk, and a later success books
// it as repaired.
func TestMachineRepairBusyThenOK(t *testing.T) {
	epoch := time.Unix(1000, 0)
	m := NewMachine(testParams(epoch))
	now := epoch.Add(5*time.Second + 250*time.Millisecond)

	if d := m.RepairResult(0, RepairBusy, 100*time.Millisecond, now); d != Rescheduled {
		t.Fatalf("busy disposition = %v, want Rescheduled", d)
	}
	// Next must not re-fire before now + hint + jitter(=1ms).
	retry := now.Add(100*time.Millisecond + time.Millisecond)
	if act := m.Next(now.Add(50 * time.Millisecond)); act.Kind != ActWait || !act.Wake.Equal(retry) {
		t.Fatalf("Next during busy hold-off = %+v, want wait until %v", act, retry)
	}
	act := m.Next(retry)
	if act.Kind != ActRepair || act.Idx != 0 || act.Attempt != 2 {
		t.Fatalf("Next at retry = %+v, want repair chunk 0 attempt 2", act)
	}
	if d := m.RepairResult(0, RepairOK, 0, retry); d != Repaired {
		t.Fatalf("ok disposition = %v, want Repaired", d)
	}
	st := m.Stats()
	if st.Repaired != 1 || st.Late != 0 || st.Lost != 0 {
		t.Errorf("stats after repair = %+v, want 1 repaired", st)
	}
	if m.Attempts(0) != 2 {
		t.Errorf("attempts = %d, want 2", m.Attempts(0))
	}
}

// TestMachineBusyZeroHint: a zero retry hint means the answer is in
// flight on the broadcast group; the retry waits about two chunk
// intervals.
func TestMachineBusyZeroHint(t *testing.T) {
	epoch := time.Unix(1000, 0)
	m := NewMachine(testParams(epoch))
	now := epoch.Add(5*time.Second + 250*time.Millisecond)
	for idx := 1; idx < 4; idx++ { // resolve the rest so chunk 0 owns the wake
		m.Chunk(idx, now)
	}
	m.RepairResult(0, RepairBusy, 0, now)
	retry := now.Add(2*time.Second + time.Millisecond) // 2*spacing + jitter
	if act := m.Next(now); act.Kind != ActWait || !act.Wake.Equal(retry) {
		t.Fatalf("Next = %+v, want wait until %v", act, retry)
	}
}

// TestMachineRepairFailureExhaustsToLost: transport failures back off
// and retry until the attempt cap, then the chunk is declared lost.
func TestMachineRepairFailureExhaustsToLost(t *testing.T) {
	epoch := time.Unix(1000, 0)
	p := testParams(epoch)
	var lostIdx, lostAttempts = -1, -1
	p.OnLost = func(idx, attempts int) { lostIdx, lostAttempts = idx, attempts }
	m := NewMachine(p)
	now := epoch.Add(5*time.Second + 250*time.Millisecond)

	for try := 1; try < DefaultMaxRepairAttempts; try++ {
		if d := m.RepairResult(0, RepairFailed, 0, now); d != Rescheduled {
			t.Fatalf("attempt %d disposition = %v, want Rescheduled", try, d)
		}
		now = now.Add(2 * time.Millisecond)
	}
	if d := m.RepairResult(0, RepairFailed, 0, now); d != LostNow {
		t.Fatalf("final disposition = %v, want LostNow", d)
	}
	if lostIdx != 0 || lostAttempts != DefaultMaxRepairAttempts {
		t.Errorf("OnLost(%d, %d), want (0, %d)", lostIdx, lostAttempts, DefaultMaxRepairAttempts)
	}
	if st := m.Stats(); st.Lost != 1 {
		t.Errorf("stats = %+v, want 1 lost", st)
	}
	if !m.Have(0) {
		t.Error("lost chunk not resolved")
	}
}

// TestMachineRepairDisabledParks: a draining server parks the chunk on
// the broadcast; it is never repaired again but can still arrive.
func TestMachineRepairDisabledParks(t *testing.T) {
	epoch := time.Unix(1000, 0)
	enabled := true
	p := testParams(epoch)
	p.RepairsEnabled = func() bool { return enabled }
	m := NewMachine(p)
	now := epoch.Add(5*time.Second + 250*time.Millisecond)

	if d := m.RepairResult(0, RepairDisabled, 0, now); d != Parked {
		t.Fatalf("disposition = %v, want Parked", d)
	}
	enabled = false
	// No more repairs offered; the wake is the chunk's loss deadline.
	if act := m.Next(now.Add(time.Second)); act.Kind != ActWait || !act.Wake.Equal(m.LostBy(0)) {
		t.Fatalf("Next = %+v, want wait until lostBy(0) %v", act, m.LostBy(0))
	}
	// The broadcast can still deliver it.
	if v := m.Chunk(0, now.Add(2*time.Second)); v != Accepted {
		t.Fatalf("verdict = %v, want Accepted", v)
	}
}

// TestMachineDeadlinePassesToLost: a chunk neither broadcast nor
// repaired is declared lost the moment Next observes its deadline gone.
func TestMachineDeadlinePassesToLost(t *testing.T) {
	epoch := time.Unix(1000, 0)
	p := testParams(epoch)
	p.DisableRepair = true
	m := NewMachine(p)
	for idx := 1; idx < 4; idx++ {
		m.Chunk(idx, epoch.Add(time.Duration(5+idx)*time.Second))
	}
	act := m.Next(m.LostBy(0)) // exactly at the loss deadline
	if !m.Done() {
		t.Fatalf("machine not done after deadline pass (act %+v)", act)
	}
	if st := m.Stats(); st.Lost != 1 {
		t.Errorf("stats = %+v, want 1 lost", st)
	}
}

// TestMachineLateAndDuplicate: arrivals after playback+slack count as
// jitter; retransmissions of resolved chunks are discarded.
func TestMachineLateAndDuplicate(t *testing.T) {
	epoch := time.Unix(1000, 0)
	m := NewMachine(testParams(epoch))
	late := m.PlayAt(0).Add(501 * time.Millisecond)
	if v := m.Chunk(0, late); v != Accepted {
		t.Fatalf("late verdict = %v, want Accepted", v)
	}
	if v := m.Chunk(0, late); v != Duplicate {
		t.Fatalf("dup verdict = %v, want Duplicate", v)
	}
	st := m.Stats()
	if st.Late != 1 || st.Duplicates != 1 {
		t.Errorf("stats = %+v, want 1 late 1 dup", st)
	}
}

// TestMachineObserveGapOnce: in Observe mode the machine reports each
// gap exactly once and schedules no repairs of its own.
func TestMachineObserveGapOnce(t *testing.T) {
	epoch := time.Unix(1000, 0)
	p := testParams(epoch)
	p.Observe = true
	p.Jitter = nil // Observe mode draws no jitter
	m := NewMachine(p)
	checkpoint := epoch.Add(5*time.Second + 250*time.Millisecond)

	act := m.Next(checkpoint)
	if act.Kind != ActGap || act.Idx != 0 {
		t.Fatalf("Next = %+v, want gap chunk 0", act)
	}
	// The gap is handed over; only the loss deadline remains.
	act = m.Next(checkpoint)
	if act.Kind != ActWait {
		t.Fatalf("second Next = %+v, want wait", act)
	}
	if wantWake := epoch.Add(6*time.Second + 250*time.Millisecond); !act.Wake.Equal(wantWake) {
		t.Errorf("wake = %v, want chunk 1's checkpoint %v", act.Wake, wantWake)
	}
}

// TestMachineResolveRepaired: the cohort multiplexer closes a chunk all
// viewers recovered over unicast without touching arrival stats.
func TestMachineResolveRepaired(t *testing.T) {
	epoch := time.Unix(1000, 0)
	p := testParams(epoch)
	p.Observe = true
	p.Jitter = nil
	m := NewMachine(p)
	if !m.ResolveRepaired(2) {
		t.Fatal("resolve of outstanding chunk reported stale")
	}
	if m.ResolveRepaired(2) {
		t.Fatal("second resolve reported outstanding")
	}
	if st := m.Stats(); st != (MachineStats{}) {
		t.Errorf("resolve dirtied stats: %+v", st)
	}
	if !m.Have(2) {
		t.Error("resolved chunk not booked")
	}
}

// TestMachineObserveHandedOverClosesSilently: once a gap is handed to
// the per-viewer ledgers, the shared Observe machine closes it at its
// deadline without booking a loss — the viewers own the outcome.
func TestMachineObserveHandedOverClosesSilently(t *testing.T) {
	epoch := time.Unix(1000, 0)
	p := testParams(epoch)
	p.Observe = true
	p.Jitter = nil
	lostIdx := -1
	p.OnLost = func(idx, attempts int) { lostIdx = idx }
	m := NewMachine(p)
	if act := m.Next(epoch.Add(5*time.Second + 250*time.Millisecond)); act.Kind != ActGap || act.Idx != 0 {
		t.Fatalf("Next = %+v, want gap chunk 0", act)
	}
	// Resolve the rest so only the handed-over chunk remains, then pass
	// every deadline.
	for idx := 1; idx < 4; idx++ {
		m.Chunk(idx, epoch.Add(time.Duration(5+idx)*time.Second))
	}
	m.Next(m.Deadline().Add(time.Second))
	if !m.Done() {
		t.Fatal("machine not done past its deadline")
	}
	if st := m.Stats(); st.Lost != 0 {
		t.Errorf("handed-over chunk booked as lost: %+v", st)
	}
	if lostIdx != -1 {
		t.Errorf("OnLost fired for handed-over chunk %d", lostIdx)
	}
}

// TestMachineReopen: Reopen reverses a ResolveRepaired, restoring the
// construction-time checkpoint and attempt count.
func TestMachineReopen(t *testing.T) {
	epoch := time.Unix(1000, 0)
	m := NewMachine(testParams(epoch))
	fresh := NewMachine(testParams(epoch))
	if !m.ResolveRepaired(1) {
		t.Fatal("resolve of outstanding chunk reported stale")
	}
	m.Reopen(1)
	if m.Have(1) || m.Attempts(1) != 0 {
		t.Fatalf("reopened chunk: have=%v attempts=%d, want outstanding with 0 attempts", m.Have(1), m.Attempts(1))
	}
	// Both machines now want the same first repair at chunk 1's checkpoint.
	at := epoch.Add(6*time.Second + 250*time.Millisecond)
	m.Chunk(0, epoch.Add(5*time.Second))
	fresh.Chunk(0, epoch.Add(5*time.Second))
	got, want := m.Next(at), fresh.Next(at)
	if got.Kind != want.Kind || got.Idx != want.Idx || got.Attempt != want.Attempt || !got.Wake.Equal(want.Wake) {
		t.Errorf("reopened Next = %+v, fresh Next = %+v", got, want)
	}
	m.Reopen(2) // no-op on an outstanding chunk
	if m.Have(2) {
		t.Error("Reopen dirtied an outstanding chunk")
	}
}

// TestMachineLostByCappedByDeadline: chunks whose playback lies past the
// receive cutoff give up at the cutoff, not at playback.
func TestMachineLostByCappedByDeadline(t *testing.T) {
	epoch := time.Unix(1000, 0)
	p := testParams(epoch)
	p.PlayUnit = 40 // playback far beyond the broadcast's end
	m := NewMachine(p)
	for idx := 0; idx < 4; idx++ {
		if !m.LostBy(idx).Equal(m.Deadline()) {
			t.Errorf("lostBy(%d) = %v, want receive cutoff %v", idx, m.LostBy(idx), m.Deadline())
		}
	}
}

// TestJitterInDeterminismAndBounds: same (seed, key, stream) always
// draws the same delay; distinct streams desynchronize; every draw is
// within (0, window] with the 1ms floor.
func TestJitterInDeterminismAndBounds(t *testing.T) {
	const window = 80 * time.Millisecond
	d1 := JitterIn(7, 3, 1, window)
	d2 := JitterIn(7, 3, 1, window)
	if d1 != d2 {
		t.Fatalf("same substream drew %v then %v", d1, d2)
	}
	if d1 < time.Millisecond || d1 > window {
		t.Fatalf("draw %v outside [1ms, %v]", d1, window)
	}
	distinct := map[time.Duration]bool{}
	for stream := uint64(0); stream < 8; stream++ {
		distinct[JitterIn(7, 3, stream, window)] = true
	}
	if len(distinct) < 6 {
		t.Errorf("8 streams drew only %d distinct delays", len(distinct))
	}
	if d := JitterIn(7, 3, 1, 0); d < time.Millisecond {
		t.Errorf("zero window drew %v, want >= 1ms floor", d)
	}
}
