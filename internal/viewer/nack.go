package viewer

import "time"

// The NACK ladder makes recovery multicast-first: a missing chunk is
// reported to the server as part of an aggregated gap bitmap (one control
// message for a burst of losses), the server re-multicasts the chunks on
// their broadcast group, and the whole injured cohort heals off one
// re-send. Unicast KindRepair remains the deadline-bounded last resort.
//
// Per chunk the ladder is a three-phase escalation:
//
//	nackPre  — missing, not yet reported; past its gap checkpoint it joins
//	           the next aggregation window.
//	nackWait — reported; the machine re-listens on the broadcast group for
//	           the multicast re-send until a clamped re-listen deadline.
//	nackDone — the ladder is exhausted (or disabled); the chunk belongs to
//	           the legacy unicast plane (ActRepair / ActGap).
//
// The aggregation window is armed once per burst with a seeded full-jitter
// draw, so the viewers of different cohorts desynchronize their NACKs the
// same way repair retries already desynchronize — and a window that fires
// after the re-send (triggered by some other viewer's NACK) has already
// healed every gap is suppressed entirely: silence is the common case in a
// large audience, which is what keeps control traffic O(cohorts).
const (
	nackPre uint8 = iota
	nackWait
	nackDone
)

// DefaultMaxNackRounds caps how many aggregation windows one chunk may
// join before the ladder hands it to the unicast plane.
const DefaultMaxNackRounds = 3

// NackJitterKey is the jitter substream key for channel's NACK
// aggregation windows. Bit 63 keeps the NACK site disjoint from every
// RepairJitterKey (channel<<32|chunk, both 32-bit) and from the client's
// reconnect site, so a session seed never correlates its NACK timing with
// its unicast backoff.
func NackJitterKey(channel int) uint64 {
	return 1<<63 | uint64(uint32(channel))
}

// escalateNack moves a chunk on from an expired re-listen deadline: back
// to nackPre for another round when tries and deadline room remain,
// otherwise to the unicast plane, due immediately either way.
func (m *Machine) escalateNack(idx int, now time.Time) {
	if int(m.nackTries[idx]) < m.maxNackRounds &&
		m.LostBy(idx).Sub(now) > m.nackWindow+2*m.spacing {
		m.nackPhase[idx] = nackPre
	} else {
		m.nackPhase[idx] = nackDone
	}
	m.tryAt[idx] = now
}

// relistenBy is how long a NACKed chunk waits on the broadcast group for
// its multicast re-send: two chunk intervals (matching the Busy(0)
// re-listen policy), clamped so a unicast round trip still fits before
// the loss deadline — but never below half an interval, because the
// re-send is already in flight and racing it with a unicast pull would
// only manufacture duplicates.
func (m *Machine) relistenBy(idx int, now time.Time) time.Time {
	t := now.Add(2 * m.spacing)
	if latest := m.LostBy(idx).Add(-m.spacing); t.After(latest) {
		t = latest
	}
	if floor := now.Add(m.spacing / 2); t.Before(floor) {
		t = floor
	}
	return t
}

// fireNack closes the aggregation window that was scheduled to fire at
// until: every missing chunk whose checkpoint is at or before until and
// under its round cap moves to nackWait with a provisional re-listen
// deadline, and the collected indices (ascending) form the gap bitmap.
// Admission compares checkpoints against the scheduled fire time, not the
// wall clock, so the grouping is deterministic however late the driver
// runs this pass. An empty collection means the window was suppressed —
// the re-send some other viewer triggered healed the burst first.
func (m *Machine) fireNack(until, now time.Time) []int {
	var chunks []int
	for idx := 0; idx < m.nchunks; idx++ {
		if m.have[idx] || m.nackPhase[idx] != nackPre || m.tryAt[idx].After(until) {
			continue
		}
		if int(m.nackTries[idx]) >= m.maxNackRounds {
			continue
		}
		m.nackTries[idx]++
		m.nackPhase[idx] = nackWait
		m.tryAt[idx] = m.relistenBy(idx, now)
		chunks = append(chunks, idx)
	}
	return chunks
}

// NackResult applies the server's reply to one ActNack round trip.
// accepted reports whether a chunk's re-send was admitted (nil when the
// round trip failed outright): admitted chunks keep re-listening with a
// deadline refreshed past the reply, refused ones escalate to the unicast
// plane immediately.
func (m *Machine) NackResult(chunks []int, accepted func(idx int) bool, now time.Time) {
	for _, idx := range chunks {
		if idx < 0 || idx >= m.nchunks || m.have[idx] ||
			m.nackPhase == nil || m.nackPhase[idx] != nackWait {
			continue
		}
		if accepted != nil && accepted(idx) {
			m.tryAt[idx] = m.relistenBy(idx, now)
			continue
		}
		m.nackPhase[idx] = nackDone
		m.tryAt[idx] = now
	}
}
