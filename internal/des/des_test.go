package des

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestOrdering(t *testing.T) {
	var s Sim
	var got []int
	s.At(3, func(float64) { got = append(got, 3) })
	s.At(1, func(float64) { got = append(got, 1) })
	s.At(2, func(float64) { got = append(got, 2) })
	s.RunAll()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("execution order %v, want [1 2 3]", got)
	}
	if s.Now() != 3 {
		t.Errorf("clock at %v, want 3", s.Now())
	}
}

func TestStableTiebreak(t *testing.T) {
	var s Sim
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func(float64) { got = append(got, i) })
	}
	s.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events ran out of order: %v", got)
		}
	}
}

func TestAfterAndNesting(t *testing.T) {
	var s Sim
	var times []float64
	s.At(1, func(now float64) {
		times = append(times, now)
		s.After(2, func(now float64) {
			times = append(times, now)
		})
	})
	s.RunAll()
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Errorf("times = %v, want [1 3]", times)
	}
}

func TestCancel(t *testing.T) {
	var s Sim
	fired := false
	h := s.At(1, func(float64) { fired = true })
	s.Cancel(h)
	s.RunAll()
	if fired {
		t.Error("cancelled event fired")
	}
	if !h.Cancelled() {
		t.Error("handle not marked cancelled")
	}
	// Double-cancel is a no-op.
	s.Cancel(h)
}

func TestCancelMiddleOfHeap(t *testing.T) {
	var s Sim
	var got []float64
	var handles []Handle
	for i := 1; i <= 20; i++ {
		tm := float64(i)
		handles = append(handles, s.At(tm, func(now float64) { got = append(got, now) }))
	}
	for i := 0; i < 20; i += 2 {
		s.Cancel(handles[i])
	}
	s.RunAll()
	if len(got) != 10 {
		t.Fatalf("%d events fired, want 10", len(got))
	}
	if !sort.Float64sAreSorted(got) {
		t.Errorf("events fired out of order after cancellation: %v", got)
	}
}

func TestRunUntil(t *testing.T) {
	var s Sim
	var got []float64
	for _, tm := range []float64{1, 2, 3, 4, 5} {
		tm := tm
		s.At(tm, func(now float64) { got = append(got, now) })
	}
	s.Run(3)
	if len(got) != 3 {
		t.Errorf("%d events before t=3, want 3", len(got))
	}
	if s.Now() != 3 {
		t.Errorf("clock at %v, want 3", s.Now())
	}
	if s.Pending() != 2 {
		t.Errorf("%d events pending, want 2", s.Pending())
	}
	s.Run(math.Inf(1))
	if len(got) != 5 {
		t.Errorf("%d events total, want 5", len(got))
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	var s Sim
	s.At(5, func(float64) {})
	s.RunAll()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	s.At(1, func(float64) {})
}

func TestNilEventPanics(t *testing.T) {
	var s Sim
	defer func() {
		if recover() == nil {
			t.Error("nil event did not panic")
		}
	}()
	s.At(1, nil)
}

func TestStepsCounter(t *testing.T) {
	var s Sim
	for i := 0; i < 7; i++ {
		s.At(float64(i), func(float64) {})
	}
	s.RunAll()
	if s.Steps() != 7 {
		t.Errorf("Steps = %d, want 7", s.Steps())
	}
}

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRand(1).Uint64() == NewRand(2).Uint64() {
		t.Error("different seeds collided on first draw")
	}
}

func TestRandZeroSeed(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed produced a stuck generator")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v outside [0,1)", v)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRand(7)
	seen := map[int]bool{}
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("Intn(10) hit %d distinct values in 10k draws, want 10", len(seen))
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Intn(0) did not panic")
			}
		}()
		r.Intn(0)
	}()
}

func TestIntnUnbiased(t *testing.T) {
	// n = 3 does not divide 2^64, so the old modulo construction favored
	// small values by ~1 part in 2^63 per draw; Lemire's rejection makes
	// every value exactly equally likely. Statistically verify the three
	// bins stay within 4 sigma of uniform.
	r := NewRand(99)
	const n = 300000
	counts := [3]int{}
	for i := 0; i < n; i++ {
		counts[r.Intn(3)]++
	}
	want := float64(n) / 3
	sigma := math.Sqrt(float64(n) / 3 * (2.0 / 3))
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 4*sigma {
			t.Errorf("Intn(3) hit %d %d times, want about %.0f (±%.0f)", v, c, want, 4*sigma)
		}
	}
	for i := 0; i < 100; i++ {
		if r.Intn(1) != 0 {
			t.Fatal("Intn(1) != 0")
		}
	}
}

func TestIntnLargeRange(t *testing.T) {
	// Near-2^63 ranges exercise the rejection path's threshold math.
	r := NewRand(5)
	const n = 1<<62 + 12345
	for i := 0; i < 1000; i++ {
		v := r.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn(%d) = %d", n, v)
		}
	}
}

func TestSubSeedSubstreams(t *testing.T) {
	// Substream i is a pure function of (seed, i).
	if SubSeed(42, 7) != SubSeed(42, 7) {
		t.Error("SubSeed not deterministic")
	}
	// Distinct indices and distinct roots give distinct streams.
	seen := map[uint64]bool{}
	for i := uint64(0); i < 1000; i++ {
		s := SubSeed(42, i)
		if seen[s] {
			t.Fatalf("SubSeed(42, %d) collided", i)
		}
		seen[s] = true
	}
	if SubSeed(1, 0) == SubSeed(2, 0) {
		t.Error("different roots collided on substream 0")
	}
	// First draws of adjacent substreams are decorrelated (not equal and
	// not shifted copies of one another).
	a := NewRand(SubSeed(9, 0)).Uint64()
	b := NewRand(SubSeed(9, 1)).Uint64()
	if a == b {
		t.Error("adjacent substreams emitted identical first draws")
	}
}

func TestSplitDoesNotAdvance(t *testing.T) {
	r := NewRand(17)
	want := NewRand(17)
	sub := r.Split(3)
	if sub == nil || sub == r {
		t.Fatal("Split returned a bad source")
	}
	_ = sub.Uint64()
	if r.Uint64() != want.Uint64() {
		t.Error("Split advanced the parent stream")
	}
	// Split is reproducible from equal state.
	if NewRand(17).Split(3).Uint64() != NewRand(17).Split(3).Uint64() {
		t.Error("equal-state splits diverged")
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRand(11)
	const rate = 2.0 // mean 0.5
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.ExpFloat64(rate)
		if v < 0 {
			t.Fatalf("negative exponential variate %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("exponential mean = %v, want about 0.5", mean)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("ExpFloat64(0) did not panic")
			}
		}()
		r.ExpFloat64(0)
	}()
}

func TestEventHeapProperty(t *testing.T) {
	// Random scheduling orders always execute in time order.
	f := func(times []uint16) bool {
		var s Sim
		var got []float64
		for _, tm := range times {
			tm := float64(tm)
			s.At(tm, func(now float64) { got = append(got, now) })
		}
		s.RunAll()
		return sort.Float64sAreSorted(got) && len(got) == len(times)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
