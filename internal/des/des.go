// Package des is a small discrete-event simulation kernel: a virtual clock
// and a priority queue of timestamped events. Every scheme simulation in
// this repository (periodic broadcast channels, client loaders, batching
// queues) runs on it, so results are deterministic and independent of wall
// time.
//
// Time is a float64 in minutes, matching the paper's unit of analysis.
// Events scheduled at equal times fire in scheduling order (a stable
// tiebreak by sequence number), which keeps simulations reproducible.
package des

import (
	"container/heap"
	"fmt"
)

// Event is a callback scheduled to run at a virtual time.
type Event func(now float64)

type item struct {
	t   float64
	seq uint64
	fn  Event
	// index within the heap, or -1 once popped/cancelled.
	index int
}

// Handle allows cancelling a scheduled event.
type Handle struct{ it *item }

// Cancelled reports whether the event was cancelled or already fired.
func (h Handle) Cancelled() bool { return h.it == nil || h.it.index < 0 }

type eventHeap []*item

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	it := x.(*item)
	it.index = len(*h)
	*h = append(*h, it)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	it.index = -1
	*h = old[:n-1]
	return it
}

// Sim is one simulation instance. The zero value is ready to use. Sim is
// not safe for concurrent use: all events run on the caller's goroutine.
type Sim struct {
	now   float64
	seq   uint64
	queue eventHeap
	// Steps counts executed events, for runaway detection in tests.
	steps int64
}

// Now returns the current virtual time in minutes.
func (s *Sim) Now() float64 { return s.now }

// Steps returns the number of events executed so far.
func (s *Sim) Steps() int64 { return s.steps }

// At schedules fn to run at absolute time t, which must not be in the
// past. It returns a Handle for cancellation.
func (s *Sim) At(t float64, fn Event) Handle {
	if t < s.now {
		panic(fmt.Sprintf("des: At(%v) is before now (%v)", t, s.now))
	}
	if fn == nil {
		panic("des: At with nil event")
	}
	it := &item{t: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, it)
	return Handle{it: it}
}

// After schedules fn to run d minutes from now; d must be non-negative.
func (s *Sim) After(d float64, fn Event) Handle { return s.At(s.now+d, fn) }

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (s *Sim) Cancel(h Handle) {
	if h.Cancelled() {
		return
	}
	heap.Remove(&s.queue, h.it.index)
	h.it.index = -1
	h.it.fn = nil
}

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return len(s.queue) }

// Step executes the next event, advancing the clock to its time. It
// reports false when the queue is empty.
func (s *Sim) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	it := heap.Pop(&s.queue).(*item)
	s.now = it.t
	s.steps++
	fn := it.fn
	it.fn = nil
	fn(s.now)
	return true
}

// Run executes events until the queue drains or the clock passes until
// (exclusive); events at later times remain queued and the clock stops at
// until. Pass math.Inf(1) to drain completely.
func (s *Sim) Run(until float64) {
	for len(s.queue) > 0 && s.queue[0].t <= until {
		s.Step()
	}
	if s.now < until && until < maxTime {
		s.now = until
	}
}

// RunAll executes events until the queue drains.
func (s *Sim) RunAll() {
	for s.Step() {
	}
}

const maxTime = 1e300
