package des

import (
	"fmt"
	"math"
)

// Rand is a small deterministic pseudo-random source (xorshift64*),
// sufficient for workload generation and fully reproducible across
// platforms — simulations must not depend on math/rand's global state.
type Rand struct{ state uint64 }

// NewRand returns a source seeded with seed (0 is remapped to a fixed
// non-zero constant, since xorshift requires non-zero state).
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("des: Intn(%d): n must be positive", n))
	}
	return int(r.Uint64() % uint64(n))
}

// ExpFloat64 returns an exponential variate with the given rate (events
// per minute); its mean is 1/rate. It panics if rate <= 0.
func (r *Rand) ExpFloat64(rate float64) float64 {
	if rate <= 0 {
		panic(fmt.Sprintf("des: ExpFloat64(%v): rate must be positive", rate))
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / rate
}
