package des

import (
	"fmt"
	"math"
	"math/bits"
)

// Rand is a small deterministic pseudo-random source (xorshift64*),
// sufficient for workload generation and fully reproducible across
// platforms — simulations must not depend on math/rand's global state.
type Rand struct{ state uint64 }

// NewRand returns a source seeded with seed (0 is remapped to a fixed
// non-zero constant, since xorshift requires non-zero state).
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{state: seed}
}

// SubSeed derives the seed of substream i from a root seed using the
// SplitMix64 finalizer. Substreams of one root are pairwise decorrelated
// (the finalizer is a bijection on uint64 with full avalanche), so a
// population of clients can each own stream SubSeed(seed, i) and draw the
// same values no matter which worker, or how many workers, play them.
func SubSeed(seed, i uint64) uint64 {
	z := seed + 0x9E3779B97F4A7C15*(i+1)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// Split returns an independent source for substream i of r's current
// state. Splitting does not advance r.
func (r *Rand) Split(i uint64) *Rand { return NewRand(SubSeed(r.state, i)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
//
// It uses Lemire's multiply-shift method: the high 64 bits of a 64x64
// product map a draw into [0, n) without division, and the rare draws that
// land in the biased low-word region (fewer than n of 2^64 values) are
// rejected and redrawn, so every value is exactly equally likely — a plain
// Uint64() % n would favor small values whenever n does not divide 2^64.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("des: Intn(%d): n must be positive", n))
	}
	un := uint64(n)
	hi, lo := bits.Mul64(r.Uint64(), un)
	if lo < un {
		thresh := -un % un // (2^64 - n) % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), un)
		}
	}
	return int(hi)
}

// ExpFloat64 returns an exponential variate with the given rate (events
// per minute); its mean is 1/rate. It panics if rate <= 0.
func (r *Rand) ExpFloat64(rate float64) float64 {
	if rate <= 0 {
		panic(fmt.Sprintf("des: ExpFloat64(%v): rate must be positive", rate))
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / rate
}
