//go:build !(linux && (amd64 || arm64))

// Portable egress: platforms without the sendmmsg fast path (or without
// the uint64 Msghdr.Iovlen layout it needs) send every datagram with its
// own WriteToUDPAddrPort. The batch API keeps identical semantics — same
// per-destination best-effort delivery, same failure accounting, same
// ledger counters — just with one kernel crossing per datagram.
package mcast

// vecBuf has no portable state; it exists so batchBuf compiles unchanged.
type vecBuf struct{}

// initVectorized is a no-op: there is no vectorized path to arm here.
func (h *Hub) initVectorized() {}

// SetVectorized reports false: the sendmmsg path is not compiled in, and
// the hub already behaves exactly like the linux fallback.
func (h *Hub) SetVectorized(on bool) bool { return false }

// writeDestsVec delegates to the one-write-per-datagram loop. It is only
// reachable if vectorized were forced on, which SetVectorized here never
// does, but it must compile and it must behave identically if called.
func (h *Hub) writeDestsVec(bb *batchBuf) error { return h.writeDestsGeneric(bb.ds) }
