//go:build linux && (amd64 || arm64)

// The UDP GSO (UDP_SEGMENT) super-frame path: the rung of the egress
// ladder above sendmmsg. Where sendmmsg collapses syscalls (64 datagrams
// per kernel crossing, but still one kernel traversal per datagram), GSO
// collapses traversals: a run of same-group contiguous frames is handed
// to the kernel as ONE datagram-sized super-frame plus a cmsg naming the
// segment size, and the kernel splits it into MTU-sized wire datagrams
// after traversing the stack once. A transmission group's chunks for a
// tick are contiguous and repetition-invariant (the frame cache holds
// them back to back), which is exactly the shape GSO wants.
//
// The super-frames themselves still ride the sendmmsg machinery — up to
// sendmmsgBatch super-frames per syscall — so the two rungs stack: at 64
// members and 8-chunk runs one syscall can carry 64*8 = 512 wire
// datagrams. The path keeps the batch contract exactly: per-destination
// failure attribution (a failed super-frame marks exactly its run's
// entries to that member), pooled staging arrays, zero steady-state
// allocations, and a clean fall-back (probe failure, SKYSCRAPER_NO_GSO,
// or runtime demotion) to the per-datagram sendmmsg path.
package mcast

import (
	"fmt"
	"os"
	"syscall"
	"unsafe"
)

// gsoCompiled reports at compile time whether this build contains the
// GSO fast path; tests use it to decide what the kill-switch can prove.
const gsoCompiled = true

const (
	// solUDP/udpSegment are SOL_UDP and the UDP_SEGMENT socket option /
	// cmsg type (linux >= 4.18). The stdlib syscall tables predate UDP
	// GSO, so the numbers are hardcoded like sysSendmmsg is.
	solUDP     = 17
	udpSegment = 103

	// maxGSOSegs is the kernel's UDP_MAX_SEGMENTS: the most wire
	// datagrams one super-frame may split into.
	maxGSOSegs = 64

	// maxGSOBytes caps a super-frame's total payload. The kernel bounds
	// a GSO send by the maximum UDP payload (65507 on IPv4); staying a
	// little under leaves room for header accounting differences across
	// kernel versions rather than tripping EMSGSIZE at the boundary.
	maxGSOBytes = 65000
)

// gsoCmsg is the control message carrying the segment size, laid out
// exactly as cmsg(3) requires on these 64-bit targets: an 8-byte-aligned
// cmsghdr (Len counts header + 2 data bytes = 18) followed by the uint16
// segment size, padded to CmsgSpace(2) = 24.
type gsoCmsg struct {
	len   uint64
	level int32
	typ   int32
	size  uint16
	_     [6]byte
}

// gsoMsg is one staged super-frame: the half-open run ds[lo:hi) it
// gathers (every dest in the run shares one destination address), and
// the segment size the kernel should split at. A run of one is sent as a
// plain datagram — no cmsg, no splitting — so batches that never
// coalesce (mixed groups, odd sizes) cost exactly what the sendmmsg path
// charges.
type gsoMsg struct {
	lo, hi  int
	segSize int
}

// gsoBuf is the reusable staging state of one GSO batch: the run
// descriptors, the per-super-frame syscall arrays, and an iovec arena
// indexed by destination (ds[k]'s iovec is iovs[k], so a run's gather
// list is the contiguous iovs[lo:hi)). Pooled via batchBuf.
type gsoBuf struct {
	msgs  []gsoMsg
	iovs  []syscall.Iovec
	hdrs  [sendmmsgBatch]mmsghdr
	sa4   [sendmmsgBatch]syscall.RawSockaddrInet4
	sa6   [sendmmsgBatch]syscall.RawSockaddrInet6
	cmsgs [sendmmsgBatch]gsoCmsg

	h     *Hub
	ds    []dest
	idx   int
	first error
	fn    func(fd uintptr) bool
}

// initGSO arms the super-frame path at hub creation: declined by the
// SKYSCRAPER_NO_GSO kill-switch, skipped when the sendmmsg machinery it
// rides is unavailable, and probed against the kernel (a setsockopt
// trial of UDP_SEGMENT; value 0 is valid-but-disabled on supporting
// kernels and ENOPROTOOPT before 4.18). Each decline is logged once and
// counted in GSOFallbacks.
func (h *Hub) initGSO() {
	if os.Getenv(NoGSOEnv) != "" {
		h.gsoFallbacks.Inc()
		h.logf("mcast: UDP GSO disabled via %s; batches fall back to per-datagram sends", NoGSOEnv)
		return
	}
	if !h.vectorized.Load() {
		// GSO super-frames ride the sendmmsg arrays; without the
		// vectorized path there is nothing to attach the cmsg to.
		return
	}
	if !h.probeGSO() {
		h.gsoFallbacks.Inc()
		h.logf("mcast: kernel rejected UDP_SEGMENT probe; batches fall back to per-datagram sendmmsg")
		return
	}
	h.gsoCapable = true
	h.gsoOn.Store(true)
}

// probeGSO asks the kernel whether the sending socket accepts
// UDP_SEGMENT. Setting the option to 0 is a no-op on supporting kernels
// (per-socket GSO stays disabled; the hub segments per message via
// cmsg), so the probe has no side effect.
func (h *Hub) probeGSO() bool {
	ok := false
	if err := h.rc.Control(func(fd uintptr) {
		ok = syscall.SetsockoptInt(int(fd), solUDP, udpSegment, 0) == nil
	}); err != nil {
		return false
	}
	return ok
}

// SetGSO is a test hook that forces the super-frame path on or off,
// returning whether it is now active. Enabling fails where the creation-
// time probe did not pass or the sendmmsg machinery is off.
func (h *Hub) SetGSO(on bool) bool {
	if !on {
		h.gsoOn.Store(false)
		return false
	}
	if !h.gsoCapable || !h.vectorized.Load() {
		return false
	}
	h.gsoOn.Store(true)
	return true
}

// sendBatchGSO is SendBatch's super-frame body. It expands the batch
// run-major instead of entry-major: entries are first coalesced into
// maximal same-group runs that satisfy the kernel's GSO shape (every
// segment the same size except a shorter final one, at most maxGSOSegs
// segments and maxGSOBytes total; a group change, an oversized or empty
// frame, or a short segment closes the run), then each (run, member)
// pair becomes one staged message whose destinations are the contiguous
// ds[lo:hi). Every member still receives exactly the frames the
// entry-major paths would send — the golden equivalence gate holds —
// and a failed super-frame marks exactly its run's entries to that
// member, preserving per-destination attribution.
func (h *Hub) sendBatchGSO(entries []BatchEntry) (int, error) {
	m := *h.members.Load()
	bb := batchPool.Get().(*batchBuf)
	gb := bb.gso
	if gb == nil {
		gb = new(gsoBuf)
		gb.fn = gb.step
		bb.gso = gb
	}
	ds := bb.ds[:0]
	msgs := gb.msgs[:0]

	ei := 0
	for ei < len(entries) {
		g := entries[ei].Group
		members := m[g]
		if len(members) == 0 {
			ei++
			continue
		}
		// Grow the run [ei, hi): same group, GSO-legal segment shape.
		segSize := len(entries[ei].Frame)
		bytes := segSize
		hi := ei + 1
		if segSize > 0 {
			for hi < len(entries) && hi-ei < maxGSOSegs {
				f := entries[hi].Frame
				if entries[hi].Group != g || len(f) == 0 || len(f) > segSize || bytes+len(f) > maxGSOBytes {
					break
				}
				short := len(f) < segSize
				bytes += len(f)
				hi++
				if short {
					break // a short segment is only legal as the final one
				}
			}
		}
		for _, ap := range members {
			lo := len(ds)
			for k := ei; k < hi; k++ {
				ds = append(ds, dest{ap: ap, frame: entries[k].Frame, group: g})
			}
			msgs = append(msgs, gsoMsg{lo: lo, hi: len(ds), segSize: segSize})
		}
		ei = hi
	}
	bb.ds = ds
	gb.msgs = msgs
	if len(ds) == 0 {
		batchPool.Put(bb)
		return 0, nil
	}
	h.batches.Inc()
	if cap(gb.iovs) < len(ds) {
		gb.iovs = make([]syscall.Iovec, len(ds))
	}
	gb.iovs = gb.iovs[:len(ds)]

	gb.h = h
	gb.ds = ds
	gb.idx = 0
	gb.first = nil
	err := h.rc.Write(gb.fn)
	if err != nil {
		// The runtime refused the write (socket closed mid-batch):
		// every message past the cursor never reached the kernel.
		for i := gb.idx; i < len(gb.msgs); i++ {
			for k := gb.msgs[i].lo; k < gb.msgs[i].hi; k++ {
				ds[k].failed = true
			}
		}
		if gb.first == nil {
			gb.first = err
		}
	}
	first := gb.first
	gb.h = nil
	gb.ds = nil
	gb.first = nil

	n, nfail := h.settleDests(ds, first)
	total := len(ds)
	batchPool.Put(bb)
	if nfail > 0 {
		return n, fmt.Errorf("mcast: %d of %d batched sends failed: %w", nfail, total, first)
	}
	return n, nil
}

// step is the RawConn.Write callback of the GSO path: it advances the
// cursor through the staged messages one sendmmsg at a time, exactly
// like vecBuf.step but with each message a whole run. An errno marks
// exactly msgs[idx]'s run failed and resumes one past it. An EINVAL on a
// genuine super-frame additionally demotes the hub to the per-datagram
// path — the kernel accepted the probe but rejected the real shape, and
// failing every future tick would be worse than losing the optimization.
func (gb *gsoBuf) step(fd uintptr) bool {
	for gb.idx < len(gb.msgs) {
		n := gb.prepare()
		r1, _, errno := syscall.Syscall6(sysSendmmsg, fd,
			uintptr(unsafe.Pointer(&gb.hdrs[0])), uintptr(n), 0, 0, 0)
		gb.h.syscalls.Inc()
		gb.h.gsoSyscalls.Inc()
		if errno != 0 {
			switch errno {
			case syscall.EAGAIN:
				return false
			case syscall.EINTR:
				continue
			default:
				msg := &gb.msgs[gb.idx]
				for k := msg.lo; k < msg.hi; k++ {
					gb.ds[k].failed = true
				}
				if gb.first == nil {
					gb.first = errno
				}
				if errno == syscall.EINVAL && msg.hi-msg.lo > 1 && gb.h.gsoOn.CompareAndSwap(true, false) {
					gb.h.gsoFallbacks.Inc()
					gb.h.logf("mcast: kernel rejected a UDP_SEGMENT super-frame (EINVAL); demoting to per-datagram sendmmsg")
				}
				gb.idx++
			}
			continue
		}
		for i := 0; i < int(r1); i++ {
			msg := &gb.msgs[gb.idx+i]
			if segs := msg.hi - msg.lo; segs > 1 {
				gb.h.superframes.Inc()
				gb.h.gsoSegments.Add(int64(segs))
			}
		}
		gb.idx += int(r1)
	}
	return true
}

// prepare fills the syscall arrays from msgs[idx:] — up to sendmmsgBatch
// headers, each one super-frame (gather list iovs[lo:hi)) to one
// destination — and returns how many it staged. Runs of more than one
// segment carry the UDP_SEGMENT cmsg; runs of one go out as plain
// datagrams.
func (gb *gsoBuf) prepare() int {
	n := len(gb.msgs) - gb.idx
	if n > sendmmsgBatch {
		n = sendmmsgBatch
	}
	for i := 0; i < n; i++ {
		msg := &gb.msgs[gb.idx+i]
		for k := msg.lo; k < msg.hi; k++ {
			iov := &gb.iovs[k]
			f := gb.ds[k].frame
			if len(f) > 0 {
				iov.Base = &f[0]
			} else {
				iov.Base = nil
			}
			iov.SetLen(len(f))
		}

		hdr := &gb.hdrs[i].hdr
		d := &gb.ds[msg.lo]
		addr := d.ap.Addr()
		p := d.ap.Port()
		if addr.Is4() {
			sa := &gb.sa4[i]
			sa.Family = syscall.AF_INET
			sa.Port = p<<8 | p>>8 // network byte order on these LE targets
			sa.Addr = addr.As4()
			hdr.Name = (*byte)(unsafe.Pointer(sa))
			hdr.Namelen = syscall.SizeofSockaddrInet4
		} else {
			sa := &gb.sa6[i]
			sa.Family = syscall.AF_INET6
			sa.Port = p<<8 | p>>8
			sa.Flowinfo = 0
			sa.Addr = addr.As16()
			sa.Scope_id = 0
			hdr.Name = (*byte)(unsafe.Pointer(sa))
			hdr.Namelen = syscall.SizeofSockaddrInet6
		}
		hdr.Iov = &gb.iovs[msg.lo]
		hdr.Iovlen = uint64(msg.hi - msg.lo)
		if msg.hi-msg.lo > 1 {
			c := &gb.cmsgs[i]
			c.len = uint64(syscall.CmsgLen(2))
			c.level = solUDP
			c.typ = udpSegment
			c.size = uint16(msg.segSize)
			hdr.Control = (*byte)(unsafe.Pointer(c))
			hdr.Controllen = uint64(syscall.CmsgSpace(2))
		} else {
			hdr.Control = nil
			hdr.Controllen = 0
		}
		hdr.Flags = 0
		gb.hdrs[i].n = 0
	}
	return n
}
