//go:build linux && (amd64 || arm64)

package mcast

import (
	"syscall"
	"testing"
)

// groPut stages message i of a handcrafted drained batch: payload in the
// buffer ring, kernel-reported length, and optionally a GRO cmsg naming
// the segment size (seg < 0 means no cmsg).
func groPut(rb *recvBuf, i int, payload []byte, seg int) {
	copy(rb.bufs[i*maxDatagram:], payload)
	rb.hdrs[i].n = uint32(len(payload))
	hdr := &rb.hdrs[i].hdr
	if seg >= 0 {
		c := &rb.ctrls[i]
		c.len = uint64(syscall.CmsgLen(4))
		c.level = solUDP
		c.typ = udpGRO
		c.size = int32(seg)
		hdr.Controllen = uint64(syscall.CmsgSpace(4))
	} else {
		rb.ctrls[i] = groCmsg{}
		hdr.Controllen = 0
	}
}

// pattern fills a payload with a per-message byte so split results stay
// attributable to their source buffers.
func pattern(b byte, n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = b
	}
	return p
}

// TestGROSplit is the deterministic unit gate on the userspace splitter:
// GRO coalescing on a live socket is timing-dependent, so the exact cmsg
// shapes — no cmsg, equal segments with a short tail, an exact multiple,
// and a segment size covering the whole payload — are pinned here on
// handcrafted headers instead.
func TestGROSplit(t *testing.T) {
	rb := &recvBuf{s: &SharedReceiver{}}
	rb.bufs = make([]byte, 4*maxDatagram)
	rb.frames = make([][]byte, 0, 8)

	groPut(rb, 0, pattern('p', 100), -1)   // plain datagram, no cmsg
	groPut(rb, 1, pattern('c', 1700), 500) // 3×500 + 200 tail
	groPut(rb, 2, pattern('e', 600), 300)  // exact multiple: 2×300
	groPut(rb, 3, pattern('w', 600), 600)  // seg covers payload: no split
	rb.n = 4

	frames := rb.split()
	wantLens := []int{100, 500, 500, 500, 200, 300, 300, 600}
	wantByte := []byte{'p', 'c', 'c', 'c', 'c', 'e', 'e', 'w'}
	if len(frames) != len(wantLens) {
		t.Fatalf("split produced %d frames, want %d", len(frames), len(wantLens))
	}
	for i, f := range frames {
		if len(f) != wantLens[i] {
			t.Errorf("frame %d is %d bytes, want %d", i, len(f), wantLens[i])
		}
		if f[0] != wantByte[i] || f[len(f)-1] != wantByte[i] {
			t.Errorf("frame %d carries %q…%q, want all %q", i, f[0], f[len(f)-1], wantByte[i])
		}
	}
	if got := rb.s.GROSegments(); got != 6 {
		t.Errorf("GROSegments = %d, want 6 (4 from the tailed super-frame + 2 exact)", got)
	}

	// A foreign cmsg type must not trigger splitting.
	groPut(rb, 0, pattern('f', 900), 300)
	rb.ctrls[0].typ = udpGRO + 1
	rb.n = 1
	if frames := rb.split(); len(frames) != 1 || len(frames[0]) != 900 {
		t.Errorf("foreign cmsg split into %d frames, want 1 whole", len(frames))
	}
}

// TestRecvBatchedZeroAlloc is the alloc gate on the batched receive fast
// path: resetting the syscall arrays, splitting a drained batch, and
// dispatching it to subscriptions must not allocate. The batch is staged
// by hand (the syscall itself touches no Go heap), mirroring how
// TestSharedRecvZeroAlloc drives dispatch directly.
func TestRecvBatchedZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is unreliable under the race detector")
	}
	s, err := NewSharedReceiverConfigured(SharedReceiverConfig{Classify: testClassify})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if !s.RecvBatched() {
		t.Skip("recvmmsg rung unavailable on this platform/kernel")
	}
	// Park the read loop off the shared state: the gate drives the batch
	// machinery from this goroutine.
	s.SetRecvBatched(false)

	g := Group{Video: 9, Channel: 2}
	sub, err := s.Subscribe(g, 32, 2048)
	if err != nil {
		t.Fatal(err)
	}
	rb := s.rb
	const n = 16
	frame := testFrame(g, 1052)
	stage := func() {
		rb.prepare()
		for i := 0; i < n; i++ {
			copy(rb.bufs[i*maxDatagram:], frame)
			rb.hdrs[i].n = uint32(len(frame))
		}
		rb.n = n
	}
	stage() // warm the frame-view slice
	rb.split()

	allocs := testing.AllocsPerRun(100, func() {
		stage()
		frames := rb.split()
		s.dispatchFrames(frames)
		for i := 0; i < n; i++ {
			sub.Release(<-sub.Ready())
		}
	})
	if allocs != 0 {
		t.Errorf("batched receive fast path allocates %v objects per drain, want 0", allocs)
	}
}
