package mcast

import (
	"fmt"
	"net"
	"runtime"
	"sort"
	"testing"
	"time"
)

// newTestHub builds a hub with nmember receivers joined to each of the
// given groups, returning the hub, the per-group receivers, and a cleanup.
func newTestHub(t testing.TB, groups []Group, nmember int) (*Hub, map[Group][]*Receiver) {
	t.Helper()
	hub, err := NewHub()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { hub.Close() })
	rcvs := make(map[Group][]*Receiver)
	for _, g := range groups {
		for i := 0; i < nmember; i++ {
			r, err := NewReceiver()
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { r.Close() })
			if err := hub.Join(g, r.Addr()); err != nil {
				t.Fatal(err)
			}
			rcvs[g] = append(rcvs[g], r)
		}
	}
	return hub, rcvs
}

// drainFrames reads exactly want datagrams from r and returns their
// payloads as strings, sorted for set comparison.
func drainFrames(t *testing.T, r *Receiver, want int) []string {
	t.Helper()
	var got []string
	buf := make([]byte, 2048)
	for i := 0; i < want; i++ {
		r.Conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		n, _, err := r.Conn.ReadFromUDP(buf)
		if err != nil {
			t.Fatalf("read %d of %d: %v", i+1, want, err)
		}
		got = append(got, string(buf[:n]))
	}
	// Nothing further should arrive. (Loopback delivery is effectively
	// synchronous; a short probe keeps 160 receivers' worth of checks fast.)
	r.Conn.SetReadDeadline(time.Now().Add(5 * time.Millisecond))
	if n, _, err := r.Conn.ReadFromUDP(buf); err == nil {
		t.Fatalf("unexpected extra datagram %q", buf[:n])
	}
	sort.Strings(got)
	return got
}

func TestSendBatchFanOut(t *testing.T) {
	g0 := Group{Video: 0, Channel: 0}
	g1 := Group{Video: 0, Channel: 1}
	hub, rcvs := newTestHub(t, []Group{g0, g1}, 3)

	entries := []BatchEntry{
		{Group: g0, Frame: []byte("chunk-a")},
		{Group: g1, Frame: []byte("chunk-b")},
		{Group: g0, Frame: []byte("chunk-c")},
		{Group: Group{Video: 9, Channel: 9}, Frame: []byte("orphan")}, // empty group
	}
	n, err := hub.SendBatch(entries)
	if err != nil {
		t.Fatalf("SendBatch: %v", err)
	}
	if n != 9 { // 3 members × 2 entries for g0, 3 × 1 for g1
		t.Fatalf("SendBatch wrote %d datagrams, want 9", n)
	}
	for _, r := range rcvs[g0] {
		got := drainFrames(t, r, 2)
		if got[0] != "chunk-a" || got[1] != "chunk-c" {
			t.Errorf("g0 member got %q, want [chunk-a chunk-c]", got)
		}
	}
	for _, r := range rcvs[g1] {
		got := drainFrames(t, r, 1)
		if got[0] != "chunk-b" {
			t.Errorf("g1 member got %q, want [chunk-b]", got)
		}
	}
	if hub.Sent() != 9 {
		t.Errorf("Sent = %d, want 9", hub.Sent())
	}
	if hub.Batches() != 1 {
		t.Errorf("Batches = %d, want 1", hub.Batches())
	}
	wantBytes := int64(3*len("chunk-a") + 3*len("chunk-b") + 3*len("chunk-c"))
	if hub.BatchedBytes() != wantBytes {
		t.Errorf("BatchedBytes = %d, want %d", hub.BatchedBytes(), wantBytes)
	}
	if hub.SendSyscalls() == 0 {
		t.Error("SendSyscalls = 0, want > 0")
	}
	if hub.Vectorized() && hub.SendSyscalls() >= 9 {
		t.Errorf("vectorized path made %d syscalls for 9 datagrams, want fewer", hub.SendSyscalls())
	}
}

// TestSendBatchEmpty pins the trivial cases: an empty entry slice and a
// batch that expands to zero destinations both succeed without touching
// the batch ledger.
func TestSendBatchEmpty(t *testing.T) {
	hub, err := NewHub()
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	if n, err := hub.SendBatch(nil); n != 0 || err != nil {
		t.Fatalf("SendBatch(nil) = %d, %v; want 0, nil", n, err)
	}
	if n, err := hub.SendBatch([]BatchEntry{{Group: Group{1, 1}, Frame: []byte("x")}}); n != 0 || err != nil {
		t.Fatalf("SendBatch(empty group) = %d, %v; want 0, nil", n, err)
	}
	if hub.Batches() != 0 {
		t.Errorf("Batches = %d, want 0", hub.Batches())
	}
	hub.Close()
	if _, err := hub.SendBatch([]BatchEntry{{Group: Group{0, 0}, Frame: []byte("x")}}); err == nil {
		t.Error("SendBatch on closed hub succeeded, want error")
	}
}

// TestSendBatchBestEffort mirrors TestSendBestEffort for the batch path:
// a member whose address cannot be written (an IPv6 destination on the
// hub's IPv4 socket) is skipped and counted while the rest of the batch
// is delivered, on both the vectorized and fallback paths.
func TestSendBatchBestEffort(t *testing.T) {
	g := Group{Video: 0, Channel: 2}
	hub, rcvs := newTestHub(t, []Group{g}, 2)
	if err := hub.Join(g, &net.UDPAddr{IP: net.IPv6loopback, Port: 9}); err != nil {
		t.Fatal(err)
	}
	n, err := hub.SendBatch([]BatchEntry{{Group: g, Frame: []byte("best-effort")}})
	if err == nil {
		t.Fatal("SendBatch with poisoned member returned nil error")
	}
	if n != 2 {
		t.Fatalf("SendBatch wrote %d datagrams, want 2", n)
	}
	if hub.SendFailures() != 1 {
		t.Errorf("SendFailures = %d, want 1", hub.SendFailures())
	}
	if hub.Sent() != 2 {
		t.Errorf("Sent = %d, want 2", hub.Sent())
	}
	for _, r := range rcvs[g] {
		got := drainFrames(t, r, 1)
		if got[0] != "best-effort" {
			t.Errorf("member got %q, want best-effort", got)
		}
	}
}

// TestBatchPathsIdentical is the fan-out half of the golden equivalence
// gate: the sendmmsg fast path and the portable fallback must deliver
// exactly the same frame sets to the same members and report the same
// counts. On platforms without the fast path both runs use the fallback
// and the test still pins batch-vs-batch determinism.
func TestBatchPathsIdentical(t *testing.T) {
	g0 := Group{Video: 1, Channel: 0}
	g1 := Group{Video: 1, Channel: 1}

	entries := func() []BatchEntry {
		var es []BatchEntry
		// More destinations than one sendmmsg window (2 groups × 40
		// members × 2 frames = 160 datagrams) so window handoff is covered.
		for i := 0; i < 2; i++ {
			es = append(es,
				BatchEntry{Group: g0, Frame: []byte(fmt.Sprintf("g0-frame%d", i))},
				BatchEntry{Group: g1, Frame: []byte(fmt.Sprintf("g1-frame%d", i))})
		}
		return es
	}

	run := func(t *testing.T, vectorized bool) (int, map[Group][][]string) {
		hub, rcvs := newTestHub(t, []Group{g0, g1}, 40)
		if on := hub.SetVectorized(vectorized); on != vectorized && vectorized {
			t.Skip("vectorized path unavailable on this platform")
		}
		if hub.Vectorized() != vectorized {
			t.Fatalf("Vectorized = %v, want %v", hub.Vectorized(), vectorized)
		}
		n, err := hub.SendBatch(entries())
		if err != nil {
			t.Fatalf("SendBatch: %v", err)
		}
		frames := make(map[Group][][]string)
		for _, g := range []Group{g0, g1} {
			for _, r := range rcvs[g] {
				frames[g] = append(frames[g], drainFrames(t, r, 2))
			}
		}
		return n, frames
	}

	nVec, framesVec := run(t, true)
	nGen, framesGen := run(t, false)
	if nVec != nGen {
		t.Fatalf("vectorized wrote %d datagrams, fallback %d", nVec, nGen)
	}
	for _, g := range []Group{g0, g1} {
		for i := range framesVec[g] {
			for j := range framesVec[g][i] {
				if framesVec[g][i][j] != framesGen[g][i][j] {
					t.Fatalf("%v member %d frame %d: vectorized %q, fallback %q",
						g, i, j, framesVec[g][i][j], framesGen[g][i][j])
				}
			}
		}
	}
}

// TestNoSendmmsgEnvToggle pins the CI escape hatch: with the env var set,
// a fresh hub must come up on the fallback path.
func TestNoSendmmsgEnvToggle(t *testing.T) {
	t.Setenv(NoSendmmsgEnv, "1")
	hub, err := NewHub()
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	if hub.Vectorized() {
		t.Errorf("hub is vectorized despite %s=1", NoSendmmsgEnv)
	}
}

// TestSendBatchZeroAlloc is the alloc gate for the batched hot path.
func TestSendBatchZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts under the race detector; alloc count is meaningless")
	}
	g := Group{Video: 2, Channel: 0}
	hub, _ := newTestHub(t, []Group{g}, 4)
	frame := make([]byte, 1052)
	entries := []BatchEntry{{Group: g, Frame: frame}, {Group: g, Frame: frame}}
	// Warm the pools, then pin the steady state on one P so the pooled
	// buffers are actually reused.
	if _, err := hub.SendBatch(entries); err != nil {
		t.Fatal(err)
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := hub.SendBatch(entries); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("SendBatch allocates %v objects per call, want 0", allocs)
	}
}

// benchFanout measures the batched egress path at a given group size:
// one SendBatch per iteration delivering one chunk to every member.
func benchFanout(b *testing.B, members int, vectorized bool) {
	g := Group{Video: 0, Channel: 0}
	hub, rcvs := newTestHub(b, []Group{g}, members)
	if on := hub.SetVectorized(vectorized); on != vectorized && vectorized {
		b.Skip("vectorized path unavailable on this platform")
	}
	// Receivers must drain or their kernel buffers fill and datagrams
	// drop. ReadFromUDPAddrPort keeps the drain loops allocation-free so
	// they do not pollute the sender's allocs/op; they exit when the
	// benchmark cleanup closes their sockets.
	for _, rs := range rcvs {
		for _, r := range rs {
			go func(r *Receiver) {
				buf := make([]byte, 2048)
				for {
					if _, _, err := r.Conn.ReadFromUDPAddrPort(buf); err != nil {
						return
					}
				}
			}(r)
		}
	}
	frame := make([]byte, 1052)
	entries := []BatchEntry{{Group: g, Frame: frame}}
	b.SetBytes(int64(members * len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hub.SendBatch(entries); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(hub.Sent())/b.Elapsed().Seconds(), "datagrams/s")
	if s := hub.SendSyscalls(); s > 0 {
		b.ReportMetric(float64(hub.Sent())/float64(s), "datagrams/syscall")
	}
}

// BenchmarkEgressFanout is the acceptance benchmark: batched egress
// (sendmmsg where available) across the member counts named in the issue.
func BenchmarkEgressFanout(b *testing.B) {
	for _, members := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("members=%d", members), func(b *testing.B) {
			benchFanout(b, members, true)
		})
	}
}

// BenchmarkEgressFanoutFallback is the same workload on the portable
// one-write-per-datagram path — the seed behavior, kept as the baseline
// the vectorized numbers are compared against.
func BenchmarkEgressFanoutFallback(b *testing.B) {
	for _, members := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("members=%d", members), func(b *testing.B) {
			benchFanout(b, members, false)
		})
	}
}
