package mcast

import (
	"bytes"
	"fmt"
	"net"
	"runtime"
	"sort"
	"testing"
	"time"
)

// newTestHub builds a hub with nmember receivers joined to each of the
// given groups, returning the hub, the per-group receivers, and a cleanup.
func newTestHub(t testing.TB, groups []Group, nmember int) (*Hub, map[Group][]*Receiver) {
	t.Helper()
	hub, err := NewHub()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { hub.Close() })
	rcvs := make(map[Group][]*Receiver)
	for _, g := range groups {
		for i := 0; i < nmember; i++ {
			r, err := NewReceiver()
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { r.Close() })
			if err := hub.Join(g, r.Addr()); err != nil {
				t.Fatal(err)
			}
			rcvs[g] = append(rcvs[g], r)
		}
	}
	return hub, rcvs
}

// drainFrames reads exactly want datagrams from r and returns their
// payloads as strings, sorted for set comparison.
func drainFrames(t *testing.T, r *Receiver, want int) []string {
	t.Helper()
	var got []string
	buf := make([]byte, 2048)
	for i := 0; i < want; i++ {
		r.Conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		n, _, err := r.Conn.ReadFromUDPAddrPort(buf)
		if err != nil {
			t.Fatalf("read %d of %d: %v", i+1, want, err)
		}
		got = append(got, string(buf[:n]))
	}
	// Nothing further should arrive. (Loopback delivery is effectively
	// synchronous; a short probe keeps 160 receivers' worth of checks fast.)
	r.Conn.SetReadDeadline(time.Now().Add(5 * time.Millisecond))
	if n, _, err := r.Conn.ReadFromUDPAddrPort(buf); err == nil {
		t.Fatalf("unexpected extra datagram %q", buf[:n])
	}
	sort.Strings(got)
	return got
}

func TestSendBatchFanOut(t *testing.T) {
	g0 := Group{Video: 0, Channel: 0}
	g1 := Group{Video: 0, Channel: 1}
	hub, rcvs := newTestHub(t, []Group{g0, g1}, 3)

	entries := []BatchEntry{
		{Group: g0, Frame: []byte("chunk-a")},
		{Group: g1, Frame: []byte("chunk-b")},
		{Group: g0, Frame: []byte("chunk-c")},
		{Group: Group{Video: 9, Channel: 9}, Frame: []byte("orphan")}, // empty group
	}
	n, err := hub.SendBatch(entries)
	if err != nil {
		t.Fatalf("SendBatch: %v", err)
	}
	if n != 9 { // 3 members × 2 entries for g0, 3 × 1 for g1
		t.Fatalf("SendBatch wrote %d datagrams, want 9", n)
	}
	for _, r := range rcvs[g0] {
		got := drainFrames(t, r, 2)
		if got[0] != "chunk-a" || got[1] != "chunk-c" {
			t.Errorf("g0 member got %q, want [chunk-a chunk-c]", got)
		}
	}
	for _, r := range rcvs[g1] {
		got := drainFrames(t, r, 1)
		if got[0] != "chunk-b" {
			t.Errorf("g1 member got %q, want [chunk-b]", got)
		}
	}
	if hub.Sent() != 9 {
		t.Errorf("Sent = %d, want 9", hub.Sent())
	}
	if hub.Batches() != 1 {
		t.Errorf("Batches = %d, want 1", hub.Batches())
	}
	wantBytes := int64(3*len("chunk-a") + 3*len("chunk-b") + 3*len("chunk-c"))
	if hub.BatchedBytes() != wantBytes {
		t.Errorf("BatchedBytes = %d, want %d", hub.BatchedBytes(), wantBytes)
	}
	if hub.SendSyscalls() == 0 {
		t.Error("SendSyscalls = 0, want > 0")
	}
	if hub.Vectorized() && hub.SendSyscalls() >= 9 {
		t.Errorf("vectorized path made %d syscalls for 9 datagrams, want fewer", hub.SendSyscalls())
	}
}

// TestSendBatchEmpty pins the trivial cases: an empty entry slice and a
// batch that expands to zero destinations both succeed without touching
// the batch ledger.
func TestSendBatchEmpty(t *testing.T) {
	hub, err := NewHub()
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	if n, err := hub.SendBatch(nil); n != 0 || err != nil {
		t.Fatalf("SendBatch(nil) = %d, %v; want 0, nil", n, err)
	}
	if n, err := hub.SendBatch([]BatchEntry{{Group: Group{1, 1}, Frame: []byte("x")}}); n != 0 || err != nil {
		t.Fatalf("SendBatch(empty group) = %d, %v; want 0, nil", n, err)
	}
	if hub.Batches() != 0 {
		t.Errorf("Batches = %d, want 0", hub.Batches())
	}
	hub.Close()
	if _, err := hub.SendBatch([]BatchEntry{{Group: Group{0, 0}, Frame: []byte("x")}}); err == nil {
		t.Error("SendBatch on closed hub succeeded, want error")
	}
}

// TestSendBatchBestEffort mirrors TestSendBestEffort for the batch path:
// a member whose address cannot be written (an IPv6 destination on the
// hub's IPv4 socket) is skipped and counted while the rest of the batch
// is delivered, on both the vectorized and fallback paths.
func TestSendBatchBestEffort(t *testing.T) {
	g := Group{Video: 0, Channel: 2}
	hub, rcvs := newTestHub(t, []Group{g}, 2)
	if err := hub.Join(g, &net.UDPAddr{IP: net.IPv6loopback, Port: 9}); err != nil {
		t.Fatal(err)
	}
	n, err := hub.SendBatch([]BatchEntry{{Group: g, Frame: []byte("best-effort")}})
	if err == nil {
		t.Fatal("SendBatch with poisoned member returned nil error")
	}
	if n != 2 {
		t.Fatalf("SendBatch wrote %d datagrams, want 2", n)
	}
	if hub.SendFailures() != 1 {
		t.Errorf("SendFailures = %d, want 1", hub.SendFailures())
	}
	if hub.Sent() != 2 {
		t.Errorf("Sent = %d, want 2", hub.Sent())
	}
	for _, r := range rcvs[g] {
		got := drainFrames(t, r, 1)
		if got[0] != "best-effort" {
			t.Errorf("member got %q, want best-effort", got)
		}
	}
}

// goldenFrame builds a size-byte payload whose prefix names it, so frame
// sets stay distinguishable after the sorted set comparison.
func goldenFrame(tag string, size int) []byte {
	b := bytes.Repeat([]byte{'.'}, size)
	copy(b, tag)
	return b
}

// batchGoldenCase is one golden-equivalence workload: a batch shape
// chosen to exercise a specific edge of the GSO run builder, with the
// super-frame ledger the GSO path must report for it (per member).
type batchGoldenCase struct {
	name      string
	members   int
	entries   func() []BatchEntry
	perGroup  map[Group]int // frames each member of a group receives
	wantSuper int           // GSO super-frames per member
	wantSegs  int           // wire datagrams those super-frames carry, per member
}

var goldenG0 = Group{Video: 1, Channel: 0}
var goldenG1 = Group{Video: 1, Channel: 1}

func batchGoldenCases() []batchGoldenCase {
	return []batchGoldenCase{
		{
			// The original window-handoff workload: more destinations than
			// one sendmmsg window (2 groups × 40 members × 2 frames = 160
			// datagrams). Groups alternate entry by entry, so every GSO run
			// has length 1 and no super-frame may form.
			name:    "interleaved",
			members: 40,
			entries: func() []BatchEntry {
				var es []BatchEntry
				for i := 0; i < 2; i++ {
					es = append(es,
						BatchEntry{Group: goldenG0, Frame: []byte(fmt.Sprintf("g0-frame%d", i))},
						BatchEntry{Group: goldenG1, Frame: []byte(fmt.Sprintf("g1-frame%d", i))})
				}
				return es
			},
			perGroup: map[Group]int{goldenG0: 2, goldenG1: 2},
		},
		{
			// One same-group run whose final frame is shorter than the
			// segment size — the exact shape UDP GSO defines (equal segments,
			// short tail), which the run builder must keep in ONE super-frame.
			name:    "short-final-segment",
			members: 8,
			entries: func() []BatchEntry {
				var es []BatchEntry
				for i := 0; i < 4; i++ {
					es = append(es, BatchEntry{Group: goldenG0, Frame: goldenFrame(fmt.Sprintf("sf%d", i), 1052)})
				}
				return append(es, BatchEntry{Group: goldenG0, Frame: goldenFrame("sf4", 100)})
			},
			perGroup:  map[Group]int{goldenG0: 5, goldenG1: 0},
			wantSuper: 1,
			wantSegs:  5,
		},
		{
			// Mixed groups and a size regrow: a g0 run, a g1 run (group
			// change breaks coalescing), then a short g0 frame followed by a
			// longer one (a frame above the open run's segment size must
			// start fresh — two plain sends, no super-frame).
			name:    "mixed-groups",
			members: 8,
			entries: func() []BatchEntry {
				return []BatchEntry{
					{Group: goldenG0, Frame: goldenFrame("m0a", 1052)},
					{Group: goldenG0, Frame: goldenFrame("m0b", 1052)},
					{Group: goldenG0, Frame: goldenFrame("m0c", 1052)},
					{Group: goldenG1, Frame: goldenFrame("m1a", 1052)},
					{Group: goldenG1, Frame: goldenFrame("m1b", 1052)},
					{Group: goldenG0, Frame: goldenFrame("t0", 100)},
					{Group: goldenG0, Frame: goldenFrame("t1", 1052)},
				}
			},
			perGroup:  map[Group]int{goldenG0: 5, goldenG1: 2},
			wantSuper: 2,
			wantSegs:  5,
		},
	}
}

// runBatchPath sends one golden case through the named egress path on a
// fresh hub and returns what every member received. nil means the path is
// unavailable on this platform/kernel.
func runBatchPath(t *testing.T, mode string, tc batchGoldenCase) (int, map[Group][][]string) {
	t.Helper()
	groups := []Group{goldenG0, goldenG1}
	hub, rcvs := newTestHub(t, groups, tc.members)
	switch mode {
	case "generic":
		hub.SetGSO(false)
		hub.SetVectorized(false)
	case "sendmmsg":
		if !hub.SetVectorized(true) {
			return -1, nil
		}
		hub.SetGSO(false)
	case "gso":
		if !hub.SetVectorized(true) || !hub.SetGSO(true) {
			return -1, nil
		}
	case "uring":
		if err := hub.EnableUring(); err != nil {
			t.Logf("io_uring unavailable: %v", err)
			return -1, nil
		}
	}
	n, err := hub.SendBatch(tc.entries())
	if err != nil {
		t.Fatalf("%s SendBatch: %v", mode, err)
	}
	wantN := 0
	for _, c := range tc.perGroup {
		wantN += c * tc.members
	}
	if n != wantN {
		t.Fatalf("%s SendBatch wrote %d datagrams, want %d", mode, n, wantN)
	}
	switch mode {
	case "gso":
		if got, want := hub.Superframes(), int64(tc.wantSuper*tc.members); got != want {
			t.Errorf("gso: Superframes = %d, want %d", got, want)
		}
		if got, want := hub.GSOSegments(), int64(tc.wantSegs*tc.members); got != want {
			t.Errorf("gso: GSOSegments = %d, want %d", got, want)
		}
	case "uring":
		if hub.UringSubmits() == 0 {
			t.Error("uring: UringSubmits = 0, want > 0")
		}
		if got := hub.UringSQEs(); got != int64(n) {
			t.Errorf("uring: UringSQEs = %d, want %d", got, n)
		}
		fallthrough
	default:
		if hub.Superframes() != 0 {
			t.Errorf("%s: Superframes = %d, want 0", mode, hub.Superframes())
		}
	}
	frames := make(map[Group][][]string)
	for _, g := range groups {
		for _, r := range rcvs[g] {
			frames[g] = append(frames[g], drainFrames(t, r, tc.perGroup[g]))
		}
	}
	return n, frames
}

// TestBatchPathsIdentical is the fan-out half of the golden equivalence
// gate, now three-way (plus io_uring where it compiles and the kernel
// obliges): the portable fallback, the sendmmsg fast path, the GSO
// super-frame path, and the shared submission ring must deliver exactly
// the same frame sets to the same members. The cases cover the sendmmsg
// window handoff, a short final segment, and group/size breaks that
// force the run builder to split. Unavailable paths are logged and
// skipped — the generic baseline always runs.
func TestBatchPathsIdentical(t *testing.T) {
	for _, tc := range batchGoldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			nGen, framesGen := runBatchPath(t, "generic", tc)
			for _, mode := range []string{"sendmmsg", "gso", "uring"} {
				n, frames := runBatchPath(t, mode, tc)
				if frames == nil {
					t.Logf("%s path unavailable on this platform; not compared", mode)
					continue
				}
				if n != nGen {
					t.Errorf("%s wrote %d datagrams, generic %d", mode, n, nGen)
				}
				for _, g := range []Group{goldenG0, goldenG1} {
					for i := range framesGen[g] {
						for j := range framesGen[g][i] {
							if frames[g][i][j] != framesGen[g][i][j] {
								t.Fatalf("%v member %d frame %d: %s %q, generic %q",
									g, i, j, mode, frames[g][i][j], framesGen[g][i][j])
							}
						}
					}
				}
			}
		})
	}
}

// TestNoSendmmsgEnvToggle pins the CI escape hatch: with the env var set,
// a fresh hub must come up on the fallback path.
func TestNoSendmmsgEnvToggle(t *testing.T) {
	t.Setenv(NoSendmmsgEnv, "1")
	hub, err := NewHub()
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	if hub.Vectorized() {
		t.Errorf("hub is vectorized despite %s=1", NoSendmmsgEnv)
	}
}

// TestSendBatchZeroAlloc is the alloc gate for the batched hot path.
func TestSendBatchZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts under the race detector; alloc count is meaningless")
	}
	g := Group{Video: 2, Channel: 0}
	hub, _ := newTestHub(t, []Group{g}, 4)
	frame := make([]byte, 1052)
	entries := []BatchEntry{{Group: g, Frame: frame}, {Group: g, Frame: frame}}
	// Warm the pools, then pin the steady state on one P so the pooled
	// buffers are actually reused.
	if _, err := hub.SendBatch(entries); err != nil {
		t.Fatal(err)
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := hub.SendBatch(entries); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("SendBatch allocates %v objects per call, want 0", allocs)
	}
}

// benchFanout measures the batched egress path at a given group size:
// one SendBatch per iteration delivering one chunk to every member.
func benchFanout(b *testing.B, members int, vectorized bool) {
	g := Group{Video: 0, Channel: 0}
	hub, rcvs := newTestHub(b, []Group{g}, members)
	if on := hub.SetVectorized(vectorized); on != vectorized && vectorized {
		b.Skip("vectorized path unavailable on this platform")
	}
	// Receivers must drain or their kernel buffers fill and datagrams
	// drop. ReadFromUDPAddrPort keeps the drain loops allocation-free so
	// they do not pollute the sender's allocs/op; they exit when the
	// benchmark cleanup closes their sockets.
	for _, rs := range rcvs {
		for _, r := range rs {
			go func(r *Receiver) {
				buf := make([]byte, 2048)
				for {
					if _, _, err := r.Conn.ReadFromUDPAddrPort(buf); err != nil {
						return
					}
				}
			}(r)
		}
	}
	frame := make([]byte, 1052)
	entries := []BatchEntry{{Group: g, Frame: frame}}
	b.SetBytes(int64(members * len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hub.SendBatch(entries); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(hub.Sent())/b.Elapsed().Seconds(), "datagrams/s")
	if s := hub.SendSyscalls(); s > 0 {
		b.ReportMetric(float64(hub.Sent())/float64(s), "datagrams/syscall")
	}
}

// BenchmarkEgressFanout is the acceptance benchmark: batched egress
// (sendmmsg where available) across the member counts named in the issue.
func BenchmarkEgressFanout(b *testing.B) {
	for _, members := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("members=%d", members), func(b *testing.B) {
			benchFanout(b, members, true)
		})
	}
}

// BenchmarkEgressFanoutFallback is the same workload on the portable
// one-write-per-datagram path — the seed behavior, kept as the baseline
// the vectorized numbers are compared against.
func BenchmarkEgressFanoutFallback(b *testing.B) {
	for _, members := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("members=%d", members), func(b *testing.B) {
			benchFanout(b, members, false)
		})
	}
}
