package mcast

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"skyscraper/internal/metrics"
)

// Classifier maps a raw datagram to its broadcast group without decoding
// the payload. ok=false marks the datagram unroutable (garbage, foreign
// traffic); it is counted and dropped. The virtual-viewer multiplexer
// passes a wire.PeekID-based classifier, keeping this package free of any
// framing knowledge.
type Classifier func(frame []byte) (Group, bool)

// maxDatagram bounds one read from the shared socket: the largest UDP
// payload loopback can carry.
const maxDatagram = 64 << 10

// SharedReceiver is the fan-in complement of Hub's fan-out: one UDP
// socket whose datagrams are routed to per-group subscriptions. A cohort
// multiplexer emulating thousands of viewers holds one SharedReceiver and
// one subscription per tuned channel instead of one socket per viewer, so
// kernel-side cost scales with cohorts, not audience size.
//
// The dispatch path mirrors Send's discipline: subscriptions live in
// copy-on-write snapshots behind an atomic pointer (Subscribe and
// Unsubscribe copy under a mutex, the read loop only loads), frames are
// copied into slots the subscriber preallocated, and slot handoff rides
// buffered int channels — so a steady-state delivery allocates nothing.
// Delivery is best-effort, as multicast is: a subscriber that stops
// draining its ring loses its own datagrams, never its neighbors'.
type SharedReceiver struct {
	conn     *net.UDPConn
	classify Classifier

	// mu serializes the writers (Subscribe, Unsubscribe, Close); the read
	// loop never takes it.
	mu     sync.Mutex
	subs   atomic.Pointer[subMap]
	closed atomic.Bool
	done   chan struct{}

	delivered  metrics.PaddedCounter
	dropped    metrics.PaddedCounter
	unroutable metrics.PaddedCounter
}

// subMap is one immutable snapshot of every group's subscriptions.
type subMap map[Group][]*Subscription

// Subscription is one consumer's tap on a group: a ring of preallocated
// frame slots filled by the receiver's read loop. The consumer loop is
//
//	for slot := range sub.Ready() {
//	    frame := sub.Frame(slot)
//	    ... decode, dispatch ...
//	    sub.Release(slot)
//	}
//
// Ready is closed when the SharedReceiver shuts down. A slot's frame is
// stable until Release returns it to the ring; holding all slots while
// datagrams keep arriving drops the excess (counted in Dropped).
type Subscription struct {
	g     Group
	ring  [][]byte
	used  []int // frame length per slot
	ready chan int
	free  chan int

	dropped atomic.Int64
}

// NewSharedReceiver opens the shared socket with the given kernel receive
// buffer (zero or negative selects DefaultRecvBufBytes) and classifier,
// and starts the read loop. Close stops it.
func NewSharedReceiver(rcvBuf int, classify Classifier) (*SharedReceiver, error) {
	if classify == nil {
		return nil, fmt.Errorf("mcast: shared receiver needs a classifier")
	}
	r, err := NewReceiverSized(rcvBuf)
	if err != nil {
		return nil, err
	}
	s := &SharedReceiver{conn: r.Conn, classify: classify, done: make(chan struct{})}
	m := make(subMap)
	s.subs.Store(&m)
	go s.run()
	return s, nil
}

// Addr returns the shared socket's UDP address — the one every
// subscription's group is joined with.
func (s *SharedReceiver) Addr() *net.UDPAddr { return s.conn.LocalAddr().(*net.UDPAddr) }

// Subscribe taps group g with a ring of depth slots of slotBytes each.
// Datagrams larger than slotBytes are dropped for this subscription
// (counted), so size slots for the largest frame the group carries.
func (s *SharedReceiver) Subscribe(g Group, depth, slotBytes int) (*Subscription, error) {
	if depth <= 0 || slotBytes <= 0 {
		return nil, fmt.Errorf("mcast: subscription needs positive depth and slot size (got %d, %d)", depth, slotBytes)
	}
	sub := &Subscription{
		g:     g,
		ring:  make([][]byte, depth),
		used:  make([]int, depth),
		ready: make(chan int, depth),
		free:  make(chan int, depth),
	}
	backing := make([]byte, depth*slotBytes)
	for i := range sub.ring {
		sub.ring[i] = backing[i*slotBytes : (i+1)*slotBytes]
		sub.free <- i
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return nil, fmt.Errorf("mcast: shared receiver closed")
	}
	cur := *s.subs.Load()
	next := cur.clone(g)
	next[g] = append(next[g], sub)
	s.subs.Store(&next)
	return sub, nil
}

// clone copies the snapshot, deep-copying only group g's slice.
func (m subMap) clone(g Group) subMap {
	next := make(subMap, len(m)+1)
	for k, v := range m {
		next[k] = v
	}
	next[g] = append([]*Subscription(nil), m[g]...)
	return next
}

// Unsubscribe detaches sub. One in-flight delivery may still land after
// return; the consumer simply stops draining Ready.
func (s *SharedReceiver) Unsubscribe(sub *Subscription) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := *s.subs.Load()
	idx := -1
	for i, have := range cur[sub.g] {
		if have == sub {
			idx = i
			break
		}
	}
	if idx < 0 {
		return
	}
	next := cur.clone(sub.g)
	next[sub.g] = append(next[sub.g][:idx], next[sub.g][idx+1:]...)
	if len(next[sub.g]) == 0 {
		delete(next, sub.g)
	}
	s.subs.Store(&next)
}

// run is the read loop: one datagram in, zero or more slot deliveries
// out. It owns every ready channel and closes them all on exit.
func (s *SharedReceiver) run() {
	defer close(s.done)
	buf := make([]byte, maxDatagram)
	for {
		n, _, err := s.conn.ReadFromUDPAddrPort(buf)
		if err != nil {
			if s.closed.Load() {
				break
			}
			continue // transient (e.g. ICMP-induced) read error
		}
		s.dispatch(buf[:n])
	}
	// Wake every consumer: snapshot under mu so a racing Subscribe (which
	// fails after closed is set) cannot add an unclosed channel.
	s.mu.Lock()
	subs := *s.subs.Load()
	s.mu.Unlock()
	for _, list := range subs {
		for _, sub := range list {
			close(sub.ready)
		}
	}
}

// dispatch routes one datagram to every subscription of its group. It is
// the per-datagram hot path: a snapshot load, the classifier, and slot
// handoffs — no locks, no allocation.
func (s *SharedReceiver) dispatch(frame []byte) {
	g, ok := s.classify(frame)
	if !ok {
		s.unroutable.Inc()
		return
	}
	for _, sub := range (*s.subs.Load())[g] {
		sub.deliver(frame, s)
	}
}

// deliver copies frame into sub's next free slot, dropping it when the
// ring is exhausted (consumer too slow) or the slot too small.
func (sub *Subscription) deliver(frame []byte, s *SharedReceiver) {
	select {
	case slot := <-sub.free:
		if len(frame) > len(sub.ring[slot]) {
			sub.free <- slot
			sub.dropped.Add(1)
			s.dropped.Inc()
			return
		}
		copy(sub.ring[slot], frame)
		sub.used[slot] = len(frame)
		sub.ready <- slot // never blocks: slots are conserved
		s.delivered.Inc()
	default:
		sub.dropped.Add(1)
		s.dropped.Inc()
	}
}

// Ready delivers filled slot indices; it is closed when the shared
// receiver shuts down.
func (sub *Subscription) Ready() <-chan int { return sub.ready }

// Frame returns slot's datagram bytes, valid until Release.
func (sub *Subscription) Frame(slot int) []byte { return sub.ring[slot][:sub.used[slot]] }

// Release returns slot to the ring for reuse.
func (sub *Subscription) Release(slot int) { sub.free <- slot }

// Dropped returns how many datagrams this subscription lost to a full
// ring or an undersized slot.
func (sub *Subscription) Dropped() int64 { return sub.dropped.Load() }

// Delivered returns total slot deliveries across all subscriptions;
// Dropped the datagrams lost to full rings; Unroutable the datagrams the
// classifier rejected.
func (s *SharedReceiver) Delivered() int64  { return s.delivered.Value() }
func (s *SharedReceiver) Dropped() int64    { return s.dropped.Value() }
func (s *SharedReceiver) Unroutable() int64 { return s.unroutable.Value() }

// Close shuts the socket and stops the read loop; every subscription's
// Ready channel is closed before Close returns.
func (s *SharedReceiver) Close() error {
	s.mu.Lock()
	if s.closed.Swap(true) {
		s.mu.Unlock()
		return nil
	}
	err := s.conn.Close()
	s.mu.Unlock()
	<-s.done
	return err
}
