package mcast

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"skyscraper/internal/metrics"
)

// Classifier maps a raw datagram to its broadcast group without decoding
// the payload. ok=false marks the datagram unroutable (garbage, foreign
// traffic); it is counted and dropped. The virtual-viewer multiplexer
// passes a wire.PeekID-based classifier, keeping this package free of any
// framing knowledge.
type Classifier func(frame []byte) (Group, bool)

// maxDatagram bounds one read from the shared socket: the largest UDP
// payload loopback can carry.
const maxDatagram = 64 << 10

// DefaultRecvBatch is the most datagrams one recvmmsg call may drain —
// the ingress mirror of sendmmsgBatch, and for the same reason: large
// enough that the syscall cost amortizes to noise, small enough that the
// batch's buffer ring stays a few MiB. It is also the hard ceiling: the
// platform layer's syscall arrays are sized to it, so larger configured
// batches are clamped here.
const DefaultRecvBatch = 64

// Read-error backoff: a persistent (non-closed) receive error used to
// spin the read loop hot. After readErrStreak consecutive failures the
// loop sleeps, doubling from readErrBackoffStart up to readErrBackoffCap,
// so a wedged socket costs ~10 wakeups/s instead of a pegged core. Any
// successful read resets the streak.
const (
	readErrStreak       = 8
	readErrBackoffStart = time.Millisecond
	readErrBackoffCap   = 100 * time.Millisecond
)

// SharedReceiverConfig configures NewSharedReceiverConfigured.
type SharedReceiverConfig struct {
	// RecvBufBytes is the kernel receive buffer (SetReadBuffer); zero or
	// negative selects DefaultRecvBufBytes.
	RecvBufBytes int
	// Batch is the most datagrams drained per recvmmsg call, clamped to
	// [1, DefaultRecvBatch]; zero or negative selects DefaultRecvBatch.
	// A batch of 1 pins the portable single-read path.
	Batch int
	// Classify routes datagrams to groups; required.
	Classify Classifier
	// Logf receives the one-line notices of the ingress ladder (probe
	// failures, kill-switches, runtime demotions); nil discards them.
	Logf func(format string, args ...any)
}

// SharedReceiver is the fan-in complement of Hub's fan-out: one UDP
// socket whose datagrams are routed to per-group subscriptions. A cohort
// multiplexer emulating thousands of viewers holds one SharedReceiver and
// one subscription per tuned channel instead of one socket per viewer, so
// kernel-side cost scales with cohorts, not audience size.
//
// The read side is a two-rung ladder mirroring the hub's egress: a
// recvmmsg rung drains up to the configured batch of datagrams per
// syscall into a reusable buffer ring (recv_linux.go), and a UDP GRO rung
// on top receives the hub's GSO super-frames as one coalesced buffer
// that is split back into wire-sized frames in userspace. Platforms (or
// kill-switches) without the rungs read one datagram per syscall through
// the portable path — behavior-identical, just slower.
//
// The dispatch path mirrors Send's discipline: subscriptions live in
// copy-on-write snapshots behind an atomic pointer (Subscribe and
// Unsubscribe copy under a mutex, the read loop only loads), frames are
// copied into slots the subscriber preallocated, and slot handoff rides
// buffered int channels — so a steady-state delivery allocates nothing.
// A batched read classifies and routes the whole batch under one
// snapshot load. Delivery is best-effort, as multicast is: a subscriber
// that stops draining its ring loses its own datagrams, never its
// neighbors'.
type SharedReceiver struct {
	conn     *net.UDPConn
	classify Classifier
	logf     func(format string, args ...any)

	// The ingress-ladder state: the raw socket handle the batched reader
	// drives, the reusable syscall/buffer state, and the rung switches.
	// mmsgCapable/groCapable record what the creation-time probes proved;
	// mmsgOn/groOn are the live switches (runtime demotion, test hooks).
	rc          syscall.RawConn
	batch       int
	rb          *recvBuf
	mmsgOn      atomic.Bool
	groOn       atomic.Bool
	mmsgCapable bool
	groCapable  bool

	// errStreak counts consecutive read failures; owned by the run
	// goroutine.
	errStreak int

	// mu serializes the writers (Subscribe, Unsubscribe, Close); the read
	// loop never takes it.
	mu     sync.Mutex
	subs   atomic.Pointer[subMap]
	closed atomic.Bool
	done   chan struct{}

	delivered  metrics.PaddedCounter
	dropped    metrics.PaddedCounter
	unroutable metrics.PaddedCounter

	// The ingress ledger. batchedReads counts datagrams delivered through
	// the recvmmsg rung (post-GRO-split, i.e. wire-equivalent frames);
	// readSyscalls every kernel receive invocation on either path —
	// batchedReads/readSyscalls is the achieved ingress batching factor.
	// groSegments counts frames recovered by splitting coalesced GRO
	// buffers; groFallbacks how many times the GRO rung was declined or
	// abandoned; readErrors the socket read failures (satellite of the
	// backoff above).
	batchedReads metrics.PaddedCounter
	readSyscalls metrics.PaddedCounter
	groSegments  metrics.PaddedCounter
	groFallbacks metrics.PaddedCounter
	readErrors   metrics.PaddedCounter
}

// subMap is one immutable snapshot of every group's subscriptions.
type subMap map[Group][]*Subscription

// Subscription is one consumer's tap on a group: a ring of preallocated
// frame slots filled by the receiver's read loop. The consumer loop is
//
//	for slot := range sub.Ready() {
//	    frame := sub.Frame(slot)
//	    ... decode, dispatch ...
//	    sub.Release(slot)
//	}
//
// Ready is closed when the SharedReceiver shuts down. A slot's frame is
// stable until Release returns it to the ring; holding all slots while
// datagrams keep arriving drops the excess (counted in Dropped).
type Subscription struct {
	g     Group
	ring  [][]byte
	used  []int // frame length per slot
	ready chan int
	free  chan int

	dropped atomic.Int64
}

// NewSharedReceiver opens the shared socket with the given kernel receive
// buffer (zero or negative selects DefaultRecvBufBytes) and classifier,
// and starts the read loop with the default ingress batch. Close stops
// it.
func NewSharedReceiver(rcvBuf int, classify Classifier) (*SharedReceiver, error) {
	return NewSharedReceiverConfigured(SharedReceiverConfig{
		RecvBufBytes: rcvBuf,
		Classify:     classify,
	})
}

// NewSharedReceiverConfigured opens the shared socket, arms whatever
// ingress rungs the platform and kernel support (recvmmsg, then UDP GRO
// on top of it), and starts the read loop. Close stops it.
func NewSharedReceiverConfigured(cfg SharedReceiverConfig) (*SharedReceiver, error) {
	if cfg.Classify == nil {
		return nil, fmt.Errorf("mcast: shared receiver needs a classifier")
	}
	r, err := NewReceiverSized(cfg.RecvBufBytes)
	if err != nil {
		return nil, err
	}
	batch := cfg.Batch
	if batch <= 0 || batch > DefaultRecvBatch {
		batch = DefaultRecvBatch
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s := &SharedReceiver{
		conn:     r.Conn,
		classify: cfg.Classify,
		logf:     logf,
		batch:    batch,
		done:     make(chan struct{}),
	}
	m := make(subMap)
	s.subs.Store(&m)
	s.initRecv()
	registerIngress(s)
	go s.run()
	return s, nil
}

// Addr returns the shared socket's UDP address — the one every
// subscription's group is joined with.
func (s *SharedReceiver) Addr() *net.UDPAddr { return s.conn.LocalAddr().(*net.UDPAddr) }

// Subscribe taps group g with a ring of depth slots of slotBytes each.
// Datagrams larger than slotBytes are dropped for this subscription
// (counted), so size slots for the largest frame the group carries.
func (s *SharedReceiver) Subscribe(g Group, depth, slotBytes int) (*Subscription, error) {
	if depth <= 0 || slotBytes <= 0 {
		return nil, fmt.Errorf("mcast: subscription needs positive depth and slot size (got %d, %d)", depth, slotBytes)
	}
	sub := &Subscription{
		g:     g,
		ring:  make([][]byte, depth),
		used:  make([]int, depth),
		ready: make(chan int, depth),
		free:  make(chan int, depth),
	}
	backing := make([]byte, depth*slotBytes)
	for i := range sub.ring {
		sub.ring[i] = backing[i*slotBytes : (i+1)*slotBytes]
		sub.free <- i
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return nil, fmt.Errorf("mcast: shared receiver closed")
	}
	cur := *s.subs.Load()
	next := cur.clone(g)
	next[g] = append(next[g], sub)
	s.subs.Store(&next)
	return sub, nil
}

// clone copies the snapshot, deep-copying only group g's slice.
func (m subMap) clone(g Group) subMap {
	next := make(subMap, len(m)+1)
	for k, v := range m {
		next[k] = v
	}
	next[g] = append([]*Subscription(nil), m[g]...)
	return next
}

// Unsubscribe detaches sub. One in-flight delivery may still land after
// return; the consumer simply stops draining Ready.
func (s *SharedReceiver) Unsubscribe(sub *Subscription) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := *s.subs.Load()
	idx := -1
	for i, have := range cur[sub.g] {
		if have == sub {
			idx = i
			break
		}
	}
	if idx < 0 {
		return
	}
	next := cur.clone(sub.g)
	next[sub.g] = append(next[sub.g][:idx], next[sub.g][idx+1:]...)
	if len(next[sub.g]) == 0 {
		delete(next, sub.g)
	}
	s.subs.Store(&next)
}

// run is the read loop: one read (a single datagram or a whole recvmmsg
// batch, per the live rung) in, zero or more slot deliveries out. It owns
// every ready channel and closes them all on exit.
func (s *SharedReceiver) run() {
	defer close(s.done)
	buf := make([]byte, maxDatagram)
	for {
		var ok bool
		if s.mmsgOn.Load() {
			ok = s.readBatched()
		} else {
			ok = s.readSingle(buf)
		}
		if !ok {
			break
		}
	}
	// Wake every consumer: snapshot under mu so a racing Subscribe (which
	// fails after closed is set) cannot add an unclosed channel.
	s.mu.Lock()
	subs := *s.subs.Load()
	s.mu.Unlock()
	for _, list := range subs {
		for _, sub := range list {
			close(sub.ready)
		}
	}
}

// readSingle is the portable rung: one datagram per kernel crossing. It
// returns false only when the receiver is closed.
func (s *SharedReceiver) readSingle(buf []byte) bool {
	s.readSyscalls.Inc()
	n, _, err := s.conn.ReadFromUDPAddrPort(buf)
	if err != nil {
		return s.noteReadError()
	}
	s.errStreak = 0
	s.dispatch(buf[:n])
	return true
}

// noteReadError is the shared failure tail of both read rungs: it ends
// the loop on close, and otherwise counts the error and backs off once a
// streak shows the failure is persistent — a wedged socket (e.g. a
// firewall rejecting with ICMP faster than we drain errors) must not
// spin a core.
func (s *SharedReceiver) noteReadError() bool {
	if s.closed.Load() {
		return false
	}
	s.readErrors.Inc()
	s.errStreak++
	if over := s.errStreak - readErrStreak; over >= 0 {
		if over > 6 {
			over = 6 // 1ms << 6 = 64ms, the last doubling under the cap
		}
		d := readErrBackoffStart << over
		if d > readErrBackoffCap {
			d = readErrBackoffCap
		}
		time.Sleep(d)
	}
	return true
}

// dispatch routes one datagram to every subscription of its group. It is
// the per-datagram hot path: a snapshot load, the classifier, and slot
// handoffs — no locks, no allocation.
func (s *SharedReceiver) dispatch(frame []byte) {
	g, ok := s.classify(frame)
	if !ok {
		s.unroutable.Inc()
		return
	}
	for _, sub := range (*s.subs.Load())[g] {
		sub.deliver(frame, s)
	}
}

// dispatchFrames routes a whole received batch under ONE subscription-
// snapshot load — the batch mirror of dispatch, and the reason the
// batched rung beats per-datagram reads even after the syscall win: the
// atomic load and its cache traffic amortize across the run. Frames from
// one batch are delivered in receive order, so the sequence every
// subscription observes is identical to what per-datagram dispatch would
// have produced.
func (s *SharedReceiver) dispatchFrames(frames [][]byte) {
	subs := *s.subs.Load()
	for _, frame := range frames {
		g, ok := s.classify(frame)
		if !ok {
			s.unroutable.Inc()
			continue
		}
		for _, sub := range subs[g] {
			sub.deliver(frame, s)
		}
	}
}

// deliver copies frame into sub's next free slot, dropping it when the
// ring is exhausted (consumer too slow) or the slot too small.
func (sub *Subscription) deliver(frame []byte, s *SharedReceiver) {
	select {
	case slot := <-sub.free:
		if len(frame) > len(sub.ring[slot]) {
			sub.free <- slot
			sub.dropped.Add(1)
			s.dropped.Inc()
			return
		}
		copy(sub.ring[slot], frame)
		sub.used[slot] = len(frame)
		sub.ready <- slot // never blocks: slots are conserved
		s.delivered.Inc()
	default:
		sub.dropped.Add(1)
		s.dropped.Inc()
	}
}

// Ready delivers filled slot indices; it is closed when the shared
// receiver shuts down.
func (sub *Subscription) Ready() <-chan int { return sub.ready }

// Frame returns slot's datagram bytes, valid until Release.
func (sub *Subscription) Frame(slot int) []byte { return sub.ring[slot][:sub.used[slot]] }

// Release returns slot to the ring for reuse.
func (sub *Subscription) Release(slot int) { sub.free <- slot }

// Dropped returns how many datagrams this subscription lost to a full
// ring or an undersized slot.
func (sub *Subscription) Dropped() int64 { return sub.dropped.Load() }

// Delivered returns total slot deliveries across all subscriptions;
// Dropped the datagrams lost to full rings; Unroutable the datagrams the
// classifier rejected.
func (s *SharedReceiver) Delivered() int64  { return s.delivered.Value() }
func (s *SharedReceiver) Dropped() int64    { return s.dropped.Value() }
func (s *SharedReceiver) Unroutable() int64 { return s.unroutable.Value() }

// The ingress ledger: BatchedReads counts datagrams delivered through
// the recvmmsg rung (after GRO splitting); ReadSyscalls every kernel
// receive invocation on either rung; GROSegments frames recovered from
// coalesced super-frames; GROFallbacks declines and demotions of the GRO
// rung; ReadErrors failed socket reads.
func (s *SharedReceiver) BatchedReads() int64 { return s.batchedReads.Value() }
func (s *SharedReceiver) ReadSyscalls() int64 { return s.readSyscalls.Value() }
func (s *SharedReceiver) GROSegments() int64  { return s.groSegments.Value() }
func (s *SharedReceiver) GROFallbacks() int64 { return s.groFallbacks.Value() }
func (s *SharedReceiver) ReadErrors() int64   { return s.readErrors.Value() }

// RecvBatched reports whether the recvmmsg rung is live; GRO whether the
// coalesced-receive rung on top of it is.
func (s *SharedReceiver) RecvBatched() bool { return s.mmsgOn.Load() }
func (s *SharedReceiver) GRO() bool         { return s.groOn.Load() }

// Close shuts the socket and stops the read loop; every subscription's
// Ready channel is closed before Close returns.
func (s *SharedReceiver) Close() error {
	s.mu.Lock()
	if s.closed.Swap(true) {
		s.mu.Unlock()
		return nil
	}
	err := s.conn.Close()
	s.mu.Unlock()
	<-s.done
	retireIngress(s)
	return err
}

// IngressTotals is the process-wide ingress ledger: the summed counters
// of every SharedReceiver the process has opened, live and closed. A
// host runs many receivers over a session (one per cohort mux, recreated
// on retune), so per-receiver counters alone would undercount; this is
// what wire.Stats and /status report.
type IngressTotals struct {
	BatchedReads int64
	ReadSyscalls int64
	GROSegments  int64
	GROFallbacks int64
	ReadErrors   int64
}

var (
	ingressMu      sync.Mutex
	ingressLive    = make(map[*SharedReceiver]struct{})
	ingressRetired IngressTotals
)

func registerIngress(s *SharedReceiver) {
	ingressMu.Lock()
	ingressLive[s] = struct{}{}
	ingressMu.Unlock()
}

// retireIngress folds a closed receiver's final counter values into the
// retired totals so IngressStats keeps counting it after the receiver is
// gone.
func retireIngress(s *SharedReceiver) {
	ingressMu.Lock()
	defer ingressMu.Unlock()
	if _, ok := ingressLive[s]; !ok {
		return
	}
	delete(ingressLive, s)
	ingressRetired.add(s)
}

func (t *IngressTotals) add(s *SharedReceiver) {
	t.BatchedReads += s.BatchedReads()
	t.ReadSyscalls += s.ReadSyscalls()
	t.GROSegments += s.GROSegments()
	t.GROFallbacks += s.GROFallbacks()
	t.ReadErrors += s.ReadErrors()
}

// IngressStats returns the process-wide ingress ledger: retired
// receivers' final counts plus every live receiver's current ones.
func IngressStats() IngressTotals {
	ingressMu.Lock()
	defer ingressMu.Unlock()
	t := ingressRetired
	for s := range ingressLive {
		t.add(s)
	}
	return t
}
