package mcast

// sysSendmmsg is linux/arm64's sendmmsg(2) number (the asm-generic
// table shared by all post-2011 ports; see include/uapi/asm-generic/unistd.h).
const sysSendmmsg = 269
