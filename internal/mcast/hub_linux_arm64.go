package mcast

// sysSendmmsg and sysRecvmmsg are linux/arm64's sendmmsg(2) and
// recvmmsg(2) numbers (the asm-generic table shared by all post-2011
// ports; see include/uapi/asm-generic/unistd.h).
const (
	sysSendmmsg = 269
	sysRecvmmsg = 243
)
