//go:build !race

package mcast

// raceEnabled lets alloc-count assertions stand down under the race
// detector: sync.Pool deliberately drops a fraction of Puts when race
// instrumentation is on, so pooled hot paths cannot demonstrate zero
// allocs there (and AllocsPerRun is unreliable under -race anyway).
const raceEnabled = false
