//go:build !linux || (!amd64 && !arm64)

// Portable stubs for the ingress ladder. On platforms without the linux
// fast path the receiver never arms mmsgOn, so readBatched is
// unreachable; the stubs exist so shared.go compiles everywhere and
// behaves identically through the single-read rung.
package mcast

// recvCompiled reports at compile time whether this build contains the
// batched-receive fast path; tests use it to decide what the
// kill-switches can prove.
const recvCompiled = false

// recvBuf has no state on platforms without the batched-receive path.
type recvBuf struct{}

// initRecv is a no-op: there is no fast rung to arm, and the
// SKYSCRAPER_NO_RECVMMSG/SKYSCRAPER_NO_GRO kill-switches have nothing to
// switch off.
func (s *SharedReceiver) initRecv() {}

// SetRecvBatched reports false: the recvmmsg rung cannot be enabled here.
func (s *SharedReceiver) SetRecvBatched(on bool) bool { return false }

// SetGRO reports false: the GRO rung cannot be enabled here.
func (s *SharedReceiver) SetGRO(on bool) bool { return false }

// readBatched is unreachable on this platform — mmsgOn is never set.
func (s *SharedReceiver) readBatched() bool {
	panic("mcast: batched receive invoked without platform support")
}
