//go:build linux && (amd64 || arm64)

// The sendmmsg(2) fast path. One syscall puts up to sendmmsgBatch
// datagrams on the wire, so a chunk fanned out to a large group — or a
// whole scheduling tick's worth of chunks — costs ceil(n/64) kernel
// crossings instead of n. Everything the syscall needs (mmsghdr, iovec,
// and raw sockaddr arrays) lives in a pooled vecBuf, so the steady-state
// path allocates nothing.
//
// This file is restricted to linux/{amd64,arm64}: the stdlib syscall
// package's Msghdr.Iovlen is a uint64 only on those targets (there is no
// SetIovlen portability shim outside x/sys, which this repo does not
// depend on), and the sendmmsg syscall number is hardcoded per arch in
// hub_linux_{amd64,arm64}.go because the frozen stdlib tables predate the
// syscall. Every other platform compiles hub_generic.go instead.
package mcast

import (
	"os"
	"syscall"
	"unsafe"
)

// sendmmsgBatch is the most datagrams handed to one sendmmsg call. 64
// matches UIO_MAXIOV-scale batching used by DNS servers and QUIC stacks:
// large enough that the syscall cost amortizes to noise, small enough
// that the per-buffer sockaddr/iovec arrays stay a few KiB.
const sendmmsgBatch = 64

// mmsghdr mirrors C's struct mmsghdr: the msghdr plus the kernel's
// returned datagram length. The trailing pad matches the C struct's
// 8-byte alignment (sizeof == 64 on both supported targets).
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
	_   [4]byte
}

// vecBuf is the reusable syscall state of one batch write: fixed-size
// header/iovec/sockaddr arrays, a cursor into the destination vector, and
// the pre-bound RawConn.Write callback (bound once at construction so the
// hot path never allocates a closure).
type vecBuf struct {
	msgs [sendmmsgBatch]mmsghdr
	iovs [sendmmsgBatch]syscall.Iovec
	sa4  [sendmmsgBatch]syscall.RawSockaddrInet4
	sa6  [sendmmsgBatch]syscall.RawSockaddrInet6

	h     *Hub
	ds    []dest
	idx   int
	first error
	fn    func(fd uintptr) bool
}

// initVectorized arms the sendmmsg path: it caches the socket's RawConn
// and flips vectorized on, unless NoSendmmsgEnv is set (the CI toggle
// that forces the portable fallback on linux so both paths stay tested).
func (h *Hub) initVectorized() {
	if os.Getenv(NoSendmmsgEnv) != "" {
		return
	}
	rc, err := h.conn.SyscallConn()
	if err != nil {
		return
	}
	h.rc = rc
	h.vectorized.Store(true)
}

// SetVectorized is a test hook that forces the sendmmsg path on or off,
// returning whether it is now active. Enabling fails (returns false) if
// the raw socket handle is unavailable.
func (h *Hub) SetVectorized(on bool) bool {
	if !on {
		h.vectorized.Store(false)
		return false
	}
	if h.rc == nil {
		rc, err := h.conn.SyscallConn()
		if err != nil {
			return false
		}
		h.rc = rc
	}
	h.vectorized.Store(true)
	return true
}

// writeDestsVec drives the whole destination vector through sendmmsg,
// marking failed destinations in place. The RawConn.Write contract runs
// the callback until it returns true, parking the goroutine on the
// netpoller whenever the socket's send buffer is full.
func (h *Hub) writeDestsVec(bb *batchBuf) error {
	vb := bb.vec
	if vb == nil {
		vb = new(vecBuf)
		vb.fn = vb.step
		bb.vec = vb
	}
	vb.h = h
	vb.ds = bb.ds
	vb.idx = 0
	vb.first = nil
	err := h.rc.Write(vb.fn)
	if err != nil {
		// The runtime refused the write (socket closed mid-batch):
		// everything past the cursor never reached the kernel.
		for i := vb.idx; i < len(vb.ds); i++ {
			vb.ds[i].failed = true
		}
		if vb.first == nil {
			vb.first = err
		}
	}
	first := vb.first
	vb.h = nil
	vb.ds = nil
	vb.first = nil
	return first
}

// step is the RawConn.Write callback: it advances the cursor through the
// destination vector one sendmmsg at a time. Returning false parks the
// goroutine until the socket is writable again; returning true ends the
// batch. sendmmsg errors only when its *first* datagram fails, so an
// errno marks exactly ds[idx] failed and the loop resumes one past it —
// identical per-destination semantics to the fallback's one-write-each
// loop.
func (vb *vecBuf) step(fd uintptr) bool {
	for vb.idx < len(vb.ds) {
		n := vb.prepare()
		r1, _, errno := syscall.Syscall6(sysSendmmsg, fd,
			uintptr(unsafe.Pointer(&vb.msgs[0])), uintptr(n), 0, 0, 0)
		vb.h.syscalls.Inc()
		if errno != 0 {
			switch errno {
			case syscall.EAGAIN:
				return false
			case syscall.EINTR:
				continue
			default:
				vb.ds[vb.idx].failed = true
				if vb.first == nil {
					vb.first = errno
				}
				vb.idx++
			}
			continue
		}
		vb.idx += int(r1)
	}
	return true
}

// prepare fills the syscall arrays from ds[idx:] — up to sendmmsgBatch
// headers, each one datagram to one destination — and returns how many
// it staged.
func (vb *vecBuf) prepare() int {
	n := len(vb.ds) - vb.idx
	if n > sendmmsgBatch {
		n = sendmmsgBatch
	}
	for i := 0; i < n; i++ {
		d := &vb.ds[vb.idx+i]
		iov := &vb.iovs[i]
		if len(d.frame) > 0 {
			iov.Base = &d.frame[0]
		} else {
			iov.Base = nil
		}
		iov.SetLen(len(d.frame))

		hdr := &vb.msgs[i].hdr
		addr := d.ap.Addr()
		p := d.ap.Port()
		if addr.Is4() {
			sa := &vb.sa4[i]
			sa.Family = syscall.AF_INET
			sa.Port = p<<8 | p>>8 // network byte order on these LE targets
			sa.Addr = addr.As4()
			hdr.Name = (*byte)(unsafe.Pointer(sa))
			hdr.Namelen = syscall.SizeofSockaddrInet4
		} else {
			sa := &vb.sa6[i]
			sa.Family = syscall.AF_INET6
			sa.Port = p<<8 | p>>8
			sa.Flowinfo = 0
			sa.Addr = addr.As16()
			sa.Scope_id = 0
			hdr.Name = (*byte)(unsafe.Pointer(sa))
			hdr.Namelen = syscall.SizeofSockaddrInet6
		}
		hdr.Iov = iov
		hdr.Iovlen = 1
		hdr.Control = nil
		hdr.Controllen = 0
		hdr.Flags = 0
		vb.msgs[i].n = 0
	}
	return n
}
