//go:build race

package mcast

// See race_off_test.go.
const raceEnabled = true
