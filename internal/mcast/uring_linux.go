//go:build linux && (amd64 || arm64)

// The io_uring cross-shard submission path: the opt-in top rung of the
// egress ladder. Under the wheel engine every shard flushes its own
// SendBatch, so even with sendmmsg each shard pays its own kernel
// crossings. With the ring armed (Hub.EnableUring), shards instead
// enqueue their expanded destination vectors to ONE shared submission
// queue; a single submitter goroutine drains every vector that is
// pending — across shards — stages one IORING_OP_SENDMSG SQE per
// datagram, and pushes the whole cycle through single io_uring_enter
// calls. Egress therefore batches across shards, not just within one
// flush: the achieved SQE depth (UringSQEs/UringSubmits) rises above
// what any single shard's batch could reach whenever shards tick close
// together.
//
// The ring is set up raw — io_uring_setup/enter/register by syscall
// number, no liburing, no new dependencies — with SQPOLL off (plain
// enter; no kernel-side polling thread to manage or account for).
// Teardown is panic-safe and ordered: a submitter panic or a fatal
// enter error aborts the in-flight cycle, and aborted callers retry
// their vectors through the sendmmsg path (at worst re-sending a few
// datagrams the kernel already accepted — benign for best-effort UDP
// broadcast); Hub.Close stops the submitter before closing the socket
// so no SQE can reference a dead fd.
package mcast

import (
	"fmt"
	"sync"
	"sync/atomic"
	"syscall"
	"unsafe"
)

// uringCompiled reports at compile time whether this build contains the
// io_uring path.
const uringCompiled = true

// io_uring syscall numbers — identical on amd64 and arm64.
const (
	sysIoUringSetup    = 425
	sysIoUringEnter    = 426
	sysIoUringRegister = 427
)

const (
	// uringEntries is the submission-queue size. 256 comfortably covers a
	// full wheel tick (members * channels rarely exceeds it per cycle
	// window) while keeping the three ring mmaps under 64 KiB total.
	uringEntries = 256

	opSendmsg       = 9 // IORING_OP_SENDMSG
	enterGetevents  = 1 // IORING_ENTER_GETEVENTS
	registerProbe   = 8 // IORING_REGISTER_PROBE
	featSingleMmap  = 1 // IORING_FEAT_SINGLE_MMAP
	opFlagSupported = 1 // IO_URING_OP_SUPPORTED

	offSqRing = 0x0
	offCqRing = 0x8000000
	offSqes   = 0x10000000
)

// ioSqringOffsets / ioCqringOffsets / ioUringParams mirror the kernel
// ABI structs of io_uring_setup(2) (120 bytes total).
type ioSqringOffsets struct {
	head, tail, ringMask, ringEntries uint32
	flags, dropped, array, resv1      uint32
	userAddr                          uint64
}

type ioCqringOffsets struct {
	head, tail, ringMask, ringEntries uint32
	overflow, cqes, flags, resv1      uint32
	userAddr                          uint64
}

type ioUringParams struct {
	sqEntries    uint32
	cqEntries    uint32
	flags        uint32
	sqThreadCPU  uint32
	sqThreadIdle uint32
	features     uint32
	wqFd         uint32
	resv         [3]uint32
	sqOff        ioSqringOffsets
	cqOff        ioCqringOffsets
}

// ioUringSQE is one 64-byte submission-queue entry.
type ioUringSQE struct {
	opcode      uint8
	flags       uint8
	ioprio      uint16
	fd          int32
	off         uint64
	addr        uint64
	len         uint32
	msgFlags    uint32
	userData    uint64
	bufIndex    uint16
	personality uint16
	spliceFdIn  int32
	_           [2]uint64
}

// ioUringCQE is one 16-byte completion-queue entry.
type ioUringCQE struct {
	userData uint64
	res      int32
	flags    uint32
}

// ioUringProbeOp / ioUringProbe mirror IORING_REGISTER_PROBE's result:
// which opcodes this kernel supports.
type ioUringProbeOp struct {
	op    uint8
	resv  uint8
	flags uint16
	resv2 uint32
}

type ioUringProbe struct {
	lastOp uint8
	opsLen uint8
	resv   uint16
	resv2  [3]uint32
	ops    [256]ioUringProbeOp
}

// uringMsgState is the per-datagram syscall state one SQE points at:
// msghdr → iovec → frame bytes, plus the raw sockaddr. It must stay
// resident (and unmoved — Go's heap does not move) from submission to
// completion; items keep their states alive until the cycle signals.
type uringMsgState struct {
	hdr syscall.Msghdr
	iov syscall.Iovec
	sa4 syscall.RawSockaddrInet4
	sa6 syscall.RawSockaddrInet6
}

// uringItem is one shard's enqueued destination vector. The enqueuing
// goroutine blocks on done until the submitter has completed (or
// aborted) every datagram; first carries the item's first send error and
// aborted tells the caller to retry through the direct path.
type uringItem struct {
	ds      []dest
	states  []uringMsgState
	first   error
	aborted bool
	done    chan struct{}
}

// destRef names one datagram of the current submission cycle: an item
// and an index into its vector. A CQE's userData indexes the cycle's
// flat ref slice.
type destRef struct {
	it  *uringItem
	idx int
}

// uRing is the shared ring plus its submitter. One per hub, created by
// EnableUring, torn down by closeUring.
type uRing struct {
	h      *Hub
	fd     int
	sockFd int32

	sqHead    *uint32
	sqTail    *uint32
	sqMask    uint32
	sqEntries uint32
	sqArray   []uint32
	sqes      []ioUringSQE

	cqHead    *uint32
	cqTail    *uint32
	cqMask    uint32
	cqEntries uint32
	cqes      []ioUringCQE

	mmaps [][]byte // live mmap regions, unmapped at teardown

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*uringItem
	stopped bool
	wg      sync.WaitGroup

	itemPool sync.Pool
	cycle    []*uringItem
	refs     []destRef
}

// EnableUring arms the shared io_uring submission path: sets up the
// ring, probes that this kernel supports IORING_OP_SENDMSG, and starts
// the submitter. On any failure the hub is left exactly as it was —
// batches keep flowing through sendmmsg — and the error tells the
// caller what to log.
func (h *Hub) EnableUring() error {
	if h.uring != nil {
		return nil
	}
	if !h.vectorized.Load() {
		return fmt.Errorf("mcast: io_uring path needs the raw socket handle (vectorized path is off)")
	}
	var sockFd int32 = -1
	if err := h.rc.Control(func(fd uintptr) { sockFd = int32(fd) }); err != nil {
		return fmt.Errorf("mcast: io_uring: raw socket handle: %w", err)
	}
	r, err := newURing(h, sockFd)
	if err != nil {
		return err
	}
	h.uring = r
	r.wg.Add(1)
	go r.run()
	h.uringOn.Store(true)
	return nil
}

// newURing performs io_uring_setup, maps the three ring regions, and
// verifies sendmsg opcode support via IORING_REGISTER_PROBE.
func newURing(h *Hub, sockFd int32) (*uRing, error) {
	var p ioUringParams
	fd, _, errno := syscall.Syscall(sysIoUringSetup, uringEntries, uintptr(unsafe.Pointer(&p)), 0)
	if errno != 0 {
		return nil, fmt.Errorf("mcast: io_uring_setup: %w", errno)
	}
	r := &uRing{h: h, fd: int(fd), sockFd: sockFd}
	r.cond = sync.NewCond(&r.mu)
	r.itemPool.New = func() any { return &uringItem{done: make(chan struct{}, 1)} }

	fail := func(err error) (*uRing, error) {
		r.unmapAll()
		syscall.Close(r.fd)
		return nil, err
	}

	sqSize := uintptr(p.sqOff.array) + uintptr(p.sqEntries)*4
	cqSize := uintptr(p.cqOff.cqes) + uintptr(p.cqEntries)*unsafe.Sizeof(ioUringCQE{})
	if p.features&featSingleMmap != 0 && cqSize > sqSize {
		sqSize = cqSize
	}
	sqRing, err := syscall.Mmap(r.fd, offSqRing, int(sqSize),
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED|syscall.MAP_POPULATE)
	if err != nil {
		return fail(fmt.Errorf("mcast: io_uring sq ring mmap: %w", err))
	}
	r.mmaps = append(r.mmaps, sqRing)
	cqRing := sqRing
	if p.features&featSingleMmap == 0 {
		cqRing, err = syscall.Mmap(r.fd, offCqRing, int(cqSize),
			syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED|syscall.MAP_POPULATE)
		if err != nil {
			return fail(fmt.Errorf("mcast: io_uring cq ring mmap: %w", err))
		}
		r.mmaps = append(r.mmaps, cqRing)
	}
	sqesBytes, err := syscall.Mmap(r.fd, offSqes, int(uintptr(p.sqEntries)*unsafe.Sizeof(ioUringSQE{})),
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED|syscall.MAP_POPULATE)
	if err != nil {
		return fail(fmt.Errorf("mcast: io_uring sqes mmap: %w", err))
	}
	r.mmaps = append(r.mmaps, sqesBytes)

	sqBase := unsafe.Pointer(&sqRing[0])
	r.sqHead = (*uint32)(unsafe.Add(sqBase, p.sqOff.head))
	r.sqTail = (*uint32)(unsafe.Add(sqBase, p.sqOff.tail))
	r.sqMask = *(*uint32)(unsafe.Add(sqBase, p.sqOff.ringMask))
	r.sqEntries = p.sqEntries
	r.sqArray = unsafe.Slice((*uint32)(unsafe.Add(sqBase, p.sqOff.array)), p.sqEntries)
	r.sqes = unsafe.Slice((*ioUringSQE)(unsafe.Pointer(&sqesBytes[0])), p.sqEntries)

	cqBase := unsafe.Pointer(&cqRing[0])
	r.cqHead = (*uint32)(unsafe.Add(cqBase, p.cqOff.head))
	r.cqTail = (*uint32)(unsafe.Add(cqBase, p.cqOff.tail))
	r.cqMask = *(*uint32)(unsafe.Add(cqBase, p.cqOff.ringMask))
	r.cqEntries = p.cqEntries
	r.cqes = unsafe.Slice((*ioUringCQE)(unsafe.Add(cqBase, p.cqOff.cqes)), p.cqEntries)

	probe := new(ioUringProbe)
	if _, _, errno := syscall.Syscall6(sysIoUringRegister, uintptr(r.fd), registerProbe,
		uintptr(unsafe.Pointer(probe)), uintptr(len(probe.ops)), 0, 0); errno != 0 {
		return fail(fmt.Errorf("mcast: io_uring probe: %w", errno))
	}
	if int(probe.lastOp) < opSendmsg || probe.ops[opSendmsg].flags&opFlagSupported == 0 {
		return fail(fmt.Errorf("mcast: io_uring on this kernel lacks IORING_OP_SENDMSG"))
	}
	return r, nil
}

// writeDestsUring hands ds to the shared submitter and blocks until
// every datagram completed, marking failed destinations in place like
// the other writers. ok=false means the ring did not take the vector
// (teardown or submitter death raced the enqueue) and the caller must
// retry through the direct path.
func (h *Hub) writeDestsUring(ds []dest) (error, bool) {
	r := h.uring
	if r == nil {
		return nil, false
	}
	it := r.itemPool.Get().(*uringItem)
	it.ds = ds
	it.first = nil
	it.aborted = false
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		it.ds = nil
		r.itemPool.Put(it)
		return nil, false
	}
	r.queue = append(r.queue, it)
	r.cond.Signal()
	r.mu.Unlock()
	<-it.done
	first, aborted := it.first, it.aborted
	it.ds = nil
	it.first = nil
	r.itemPool.Put(it)
	if aborted {
		return nil, false
	}
	return first, true
}

// run is the submitter: it sleeps until work is queued, then drains
// EVERYTHING pending — every shard's vectors — into one submission
// cycle. On stop it aborts whatever is still queued so no enqueuer
// strands.
func (r *uRing) run() {
	defer r.wg.Done()
	for {
		r.mu.Lock()
		for len(r.queue) == 0 && !r.stopped {
			r.cond.Wait()
		}
		if r.stopped {
			q := r.queue
			r.queue = nil
			r.mu.Unlock()
			for _, it := range q {
				it.aborted = true
				it.done <- struct{}{}
			}
			return
		}
		r.cycle = append(r.cycle[:0], r.queue...)
		r.queue = r.queue[:0]
		r.mu.Unlock()
		r.submitCycle(r.cycle)
	}
}

// submitCycle pushes one coalesced cycle — every datagram of every item
// taken from the queue — through the ring with windowed enter/reap, then
// signals the items. A panic (including a deliberate one on a fatal
// enter error) stops the ring: unsignaled items are aborted so their
// shards retry via sendmmsg, and the hub's uring flag drops so new
// batches route directly.
func (r *uRing) submitCycle(items []*uringItem) {
	signaled := 0
	defer func() {
		if p := recover(); p != nil {
			r.h.uringOn.Store(false)
			r.mu.Lock()
			r.stopped = true
			r.mu.Unlock()
			r.h.logf("mcast: io_uring submitter failed (%v); egress falls back to sendmmsg", p)
			for _, it := range items[signaled:] {
				it.aborted = true
				it.done <- struct{}{}
			}
		}
	}()

	refs := r.refs[:0]
	for _, it := range items {
		if cap(it.states) < len(it.ds) {
			it.states = make([]uringMsgState, len(it.ds))
		}
		it.states = it.states[:len(it.ds)]
		for i := range it.ds {
			it.prep(i)
			refs = append(refs, destRef{it: it, idx: i})
		}
	}
	r.refs = refs

	staged, consumed, completed := 0, 0, 0
	for completed < len(refs) {
		canStage := len(refs) - staged
		if m := int(r.sqEntries) - (staged - consumed); canStage > m {
			canStage = m
		}
		if m := int(r.cqEntries) - (consumed - completed); canStage > m {
			canStage = m
		}
		for i := 0; i < canStage; i++ {
			r.pushSQE(&refs[staged+i], uint64(staged+i))
		}
		staged += canStage

		n, errno := r.enter(uint32(staged-consumed), 1)
		if errno == syscall.EINTR {
			continue
		}
		if errno != 0 {
			panic(fmt.Sprintf("io_uring_enter: %v", errno))
		}
		consumed += n
		r.h.uringSubmits.Inc()
		r.h.uringSQEs.Add(int64(n))
		completed += r.reap(refs)
	}

	for _, it := range items {
		signaled++
		it.done <- struct{}{}
	}
}

// prep fills item datagram i's msghdr/iovec/sockaddr, the memory its
// SQE will point at.
func (it *uringItem) prep(i int) {
	d := &it.ds[i]
	st := &it.states[i]
	if len(d.frame) > 0 {
		st.iov.Base = &d.frame[0]
	} else {
		st.iov.Base = nil
	}
	st.iov.SetLen(len(d.frame))

	hdr := &st.hdr
	addr := d.ap.Addr()
	p := d.ap.Port()
	if addr.Is4() {
		sa := &st.sa4
		sa.Family = syscall.AF_INET
		sa.Port = p<<8 | p>>8 // network byte order on these LE targets
		sa.Addr = addr.As4()
		hdr.Name = (*byte)(unsafe.Pointer(sa))
		hdr.Namelen = syscall.SizeofSockaddrInet4
	} else {
		sa := &st.sa6
		sa.Family = syscall.AF_INET6
		sa.Port = p<<8 | p>>8
		sa.Flowinfo = 0
		sa.Addr = addr.As16()
		sa.Scope_id = 0
		hdr.Name = (*byte)(unsafe.Pointer(sa))
		hdr.Namelen = syscall.SizeofSockaddrInet6
	}
	hdr.Iov = &st.iov
	hdr.Iovlen = 1
	hdr.Control = nil
	hdr.Controllen = 0
	hdr.Flags = 0
}

// pushSQE writes one IORING_OP_SENDMSG entry and publishes the new SQ
// tail. The submitter is the only producer, so a plain read of the tail
// shadowed by an atomic publish is the full protocol.
func (r *uRing) pushSQE(ref *destRef, userData uint64) {
	tail := atomic.LoadUint32(r.sqTail)
	slot := tail & r.sqMask
	sqe := &r.sqes[slot]
	*sqe = ioUringSQE{}
	sqe.opcode = opSendmsg
	sqe.fd = r.sockFd
	sqe.addr = uint64(uintptr(unsafe.Pointer(&ref.it.states[ref.idx].hdr)))
	sqe.len = 1
	sqe.userData = userData
	r.sqArray[slot] = slot
	atomic.StoreUint32(r.sqTail, tail+1)
}

// enter submits the ring's pending SQEs and waits for at least minWait
// completions, returning how many SQEs the kernel consumed.
func (r *uRing) enter(toSubmit, minWait uint32) (int, syscall.Errno) {
	n, _, errno := syscall.Syscall6(sysIoUringEnter, uintptr(r.fd),
		uintptr(toSubmit), uintptr(minWait), enterGetevents, 0, 0)
	if errno != 0 {
		return 0, errno
	}
	return int(n), 0
}

// reap drains every available CQE, attributing failures (res < 0) to the
// exact datagram the CQE's userData names.
func (r *uRing) reap(refs []destRef) int {
	n := 0
	head := atomic.LoadUint32(r.cqHead)
	tail := atomic.LoadUint32(r.cqTail)
	for head != tail {
		cqe := &r.cqes[head&r.cqMask]
		ref := &refs[cqe.userData]
		if cqe.res < 0 {
			ref.it.ds[ref.idx].failed = true
			if ref.it.first == nil {
				ref.it.first = syscall.Errno(-cqe.res)
			}
		}
		head++
		n++
	}
	atomic.StoreUint32(r.cqHead, head)
	return n
}

// closeUring stops the submitter (completing or aborting every in-flight
// item), unmaps the rings, and closes the ring fd. Called under Hub.mu
// from Close, before the socket closes, so no SQE can outlive the fd it
// names.
func (h *Hub) closeUring() {
	r := h.uring
	if r == nil {
		return
	}
	h.uringOn.Store(false)
	r.mu.Lock()
	r.stopped = true
	r.cond.Broadcast()
	r.mu.Unlock()
	r.wg.Wait()
	r.unmapAll()
	syscall.Close(r.fd)
	h.uring = nil
}

// unmapAll releases the ring's mmap regions and the unsafe slices that
// alias them.
func (r *uRing) unmapAll() {
	r.sqArray, r.sqes, r.cqes = nil, nil, nil
	r.sqHead, r.sqTail, r.cqHead, r.cqTail = nil, nil, nil, nil
	for _, m := range r.mmaps {
		syscall.Munmap(m)
	}
	r.mmaps = nil
}
