package mcast

import (
	"net"
	"testing"
	"time"
)

func TestJoinSendLeave(t *testing.T) {
	hub, err := NewHub()
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	rcv, err := NewReceiver()
	if err != nil {
		t.Fatal(err)
	}
	defer rcv.Close()

	g := Group{Video: 1, Channel: 2}
	if n, err := hub.Send(g, []byte("nobody")); err != nil || n != 0 {
		t.Fatalf("send to empty group: n=%d err=%v", n, err)
	}
	if err := hub.Join(g, rcv.Addr()); err != nil {
		t.Fatal(err)
	}
	if hub.Members(g) != 1 {
		t.Fatalf("members = %d", hub.Members(g))
	}
	// Double join is idempotent.
	if err := hub.Join(g, rcv.Addr()); err != nil {
		t.Fatal(err)
	}
	if hub.Members(g) != 1 {
		t.Fatalf("members after double join = %d", hub.Members(g))
	}

	msg := []byte("hello broadcast")
	if n, err := hub.Send(g, msg); err != nil || n != 1 {
		t.Fatalf("send: n=%d err=%v", n, err)
	}
	buf := make([]byte, 64)
	rcv.Conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, _, err := rcv.Conn.ReadFromUDP(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != string(msg) {
		t.Errorf("received %q", buf[:n])
	}
	if hub.Sent() != 1 {
		t.Errorf("Sent = %d", hub.Sent())
	}

	hub.Leave(g, rcv.Addr())
	if hub.Members(g) != 0 {
		t.Errorf("members after leave = %d", hub.Members(g))
	}
	// Sends after leave reach nobody.
	if n, err := hub.Send(g, msg); err != nil || n != 0 {
		t.Errorf("send after leave: n=%d err=%v", n, err)
	}
}

func TestGroupIsolation(t *testing.T) {
	hub, err := NewHub()
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	a, err := NewReceiver()
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewReceiver()
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	ga, gb := Group{Video: 0, Channel: 1}, Group{Video: 0, Channel: 2}
	if err := hub.Join(ga, a.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := hub.Join(gb, b.Addr()); err != nil {
		t.Fatal(err)
	}
	if _, err := hub.Send(ga, []byte("for-a")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	b.Conn.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
	if _, _, err := b.Conn.ReadFromUDP(buf); err == nil {
		t.Error("receiver b got traffic for group a")
	}
	a.Conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, _, err := a.Conn.ReadFromUDP(buf)
	if err != nil || string(buf[:n]) != "for-a" {
		t.Errorf("receiver a: %q, %v", buf[:n], err)
	}
}

func TestFanOut(t *testing.T) {
	hub, err := NewHub()
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	g := Group{Video: 3, Channel: 1}
	const nRcv = 5
	var rcvs []*Receiver
	for i := 0; i < nRcv; i++ {
		r, err := NewReceiver()
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		rcvs = append(rcvs, r)
		if err := hub.Join(g, r.Addr()); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := hub.Send(g, []byte("all")); err != nil || n != nRcv {
		t.Fatalf("fan out n=%d err=%v", n, err)
	}
	for i, r := range rcvs {
		buf := make([]byte, 8)
		r.Conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		n, _, err := r.Conn.ReadFromUDP(buf)
		if err != nil || string(buf[:n]) != "all" {
			t.Errorf("receiver %d: %q, %v", i, buf[:n], err)
		}
	}
}

func TestClosedHub(t *testing.T) {
	hub, err := NewHub()
	if err != nil {
		t.Fatal(err)
	}
	if err := hub.Close(); err != nil {
		t.Fatal(err)
	}
	if err := hub.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	g := Group{}
	if _, err := hub.Send(g, []byte("x")); err == nil {
		t.Error("send on closed hub succeeded")
	}
	if err := hub.Join(g, &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 9}); err == nil {
		t.Error("join on closed hub succeeded")
	}
	if err := hub.Join(Group{}, nil); err == nil {
		t.Error("nil join address accepted")
	}
}

func TestGroupString(t *testing.T) {
	if got := (Group{Video: 4, Channel: 2}).String(); got != "video4/ch2" {
		t.Errorf("String = %q", got)
	}
}
